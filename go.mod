module blobvfs

go 1.24
