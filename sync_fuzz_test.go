package blobvfs_test

import (
	"bytes"
	"reflect"
	"testing"

	"blobvfs"
	"blobvfs/internal/blob"
)

const (
	fuzzChunk = 1 << 10
	fuzzSize  = 4 << 10 // 4 chunks
)

// buildSyncSeeds produces one valid full archive (0,1] and one valid
// delta (1,2] from a tiny two-version lineage, for the fuzz corpus.
func buildSyncSeeds(f *testing.F) (full, delta []byte) {
	fab := blobvfs.NewLiveCluster(2)
	up, err := blobvfs.Open(fab,
		blobvfs.WithChunkSize(fuzzChunk),
		blobvfs.WithDedup(),
		blobvfs.WithSyncUUID(0xA))
	if err != nil {
		f.Fatal(err)
	}
	var fullBuf, deltaBuf bytes.Buffer
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, err := up.Create(ctx, "", img(fuzzSize, 3))
		if err != nil {
			f.Fatal(err)
		}
		disk, err := up.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := disk.WriteAt(ctx, img(fuzzChunk, 4), 2*fuzzChunk); err != nil {
			f.Fatal(err)
		}
		if _, err := disk.Commit(ctx); err != nil {
			f.Fatal(err)
		}
		if err := disk.Close(ctx); err != nil {
			f.Fatal(err)
		}
		if _, err := up.Export(ctx, &fullBuf, ref.Image, 0, 1); err != nil {
			f.Fatal(err)
		}
		if _, err := up.Export(ctx, &deltaBuf, ref.Image, 1, 2); err != nil {
			f.Fatal(err)
		}
	})
	return fullBuf.Bytes(), deltaBuf.Bytes()
}

// repoState captures everything an import may mutate: stored chunks
// and their refcounts, metadata nodes, pending allocations, and the
// live version set.
type repoState struct {
	Chunks      int
	StoredBytes int64
	Nodes       int
	PendingKeys int
	PendingRefs int
	Refs        map[blob.ChunkKey]int64
	Versions    []blobvfs.Version
}

func captureState(t *testing.T, ctx *blobvfs.Ctx, r *blobvfs.Repo, id blobvfs.ImageID) repoState {
	t.Helper()
	sys := r.System()
	st := repoState{
		Chunks:      sys.Providers.ChunkCount(),
		StoredBytes: sys.Providers.StoredBytes(),
		Nodes:       sys.Meta.NodeCount(),
		Refs:        map[blob.ChunkKey]int64{},
	}
	_, pk := sys.Providers.PendingSnapshot()
	_, pr := sys.Meta.PendingSnapshot()
	st.PendingKeys = len(pk)
	st.PendingRefs = len(pr)
	for _, k := range sys.Providers.RetainedKeys(sys.Providers.KeyWatermark()) {
		st.Refs[k] = sys.Providers.RefCount(k)
	}
	if id != 0 {
		vs, err := r.Versions(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		st.Versions = vs
	}
	return st
}

// FuzzImportArchive feeds arbitrary bytes to Repo.Import on a
// downstream that has already imported one valid full archive. The
// importer must never panic, and a rejected archive must leave the
// repository byte-identical: same chunks, same refcounts, same tree
// nodes, no leaked pending allocations, same version set.
func FuzzImportArchive(f *testing.F) {
	full, delta := buildSyncSeeds(f)
	f.Add(full)
	f.Add(delta)
	f.Add(full[:8])
	f.Add(full[:len(full)/2])
	f.Add(append([]byte(nil), []byte("BVFSYNC1")...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fab := blobvfs.NewLiveCluster(2)
		down, err := blobvfs.Open(fab,
			blobvfs.WithChunkSize(fuzzChunk),
			blobvfs.WithDedup(),
			blobvfs.WithSyncUUID(0xB))
		if err != nil {
			t.Fatal(err)
		}
		fab.Run(func(ctx *blobvfs.Ctx) {
			ist, err := down.Import(ctx, bytes.NewReader(full))
			if err != nil {
				t.Fatalf("seed import: %v", err)
			}
			before := captureState(t, ctx, down, ist.Image)
			if _, err := down.Import(ctx, bytes.NewReader(data)); err != nil {
				after := captureState(t, ctx, down, ist.Image)
				if !reflect.DeepEqual(before, after) {
					t.Fatalf("failed import mutated the repository:\nbefore %+v\nafter  %+v", before, after)
				}
			}
		})
	})
}
