package vmmodel

import (
	"fmt"
	"sort"

	"blobvfs/internal/cluster"
	"blobvfs/internal/sim"
)

// VirtualDisk is the VM-facing disk interface; it is implemented by
// mirror.Image, qcow2.Image and LocalRaw.
type VirtualDisk interface {
	Read(ctx *cluster.Ctx, off, n int64) error
	Write(ctx *cluster.Ctx, off, n int64) error
	Size() int64
}

// LocalRaw is a raw image file fully present on the node's local disk
// (the prepropagation baseline after broadcast). Reads are charged on
// the local disk with a reduced seek share, since the guest's
// readahead and the host page cache absorb most of the scattered-read
// positioning cost for a freshly written, contiguous file.
type LocalRaw struct {
	NodeID cluster.NodeID
	Bytes  int64
}

// Read charges a local-disk read.
func (d *LocalRaw) Read(ctx *cluster.Ctx, off, n int64) error {
	if off < 0 || off+n > d.Bytes {
		return fmt.Errorf("vmmodel: read [%d,%d) outside raw image %d", off, off+n, d.Bytes)
	}
	ctx.DiskRead(d.NodeID, n)
	return nil
}

// Write charges an asynchronous local-disk write.
func (d *LocalRaw) Write(ctx *cluster.Ctx, off, n int64) error {
	if off < 0 || off+n > d.Bytes {
		return fmt.Errorf("vmmodel: write [%d,%d) outside raw image %d", off, off+n, d.Bytes)
	}
	ctx.DiskWriteAsync(d.NodeID, n)
	return nil
}

// Size returns the image size.
func (d *LocalRaw) Size() int64 { return d.Bytes }

// TraceOp is one step of a VM disk trace.
type TraceOp struct {
	Off, Len int64
	Write    bool
	Think    float64 // CPU time consumed before issuing the op
}

// BootConfig parameterizes boot-trace generation. The defaults are
// calibrated so a boot against a fully local image takes ≈10 s and
// touches ≈110 MB of a 2 GB image, matching Fig. 4(a) and the ~13 GB /
// 110 instances of Fig. 4(d).
type BootConfig struct {
	ImageSize    int64   // bytes
	TouchedBytes int64   // total distinct bytes read during boot
	Extents      int     // number of sequentially-read extents ("files")
	MeanOpLen    int64   // mean read op size within an extent
	WriteOps     int     // small config/log writes during boot
	WriteLen     int64   // size of each boot write
	TotalThink   float64 // total CPU time spread over the trace
}

// DefaultBootConfig returns the calibrated boot model for the paper's
// 2 GB Debian image.
func DefaultBootConfig(imageSize int64) BootConfig {
	return BootConfig{
		ImageSize:    imageSize,
		TouchedBytes: 110 << 20,
		Extents:      220,
		MeanOpLen:    96 << 10,
		WriteOps:     60,
		WriteLen:     16 << 10,
		TotalThink:   5.0,
	}
}

// GenBootTrace produces a boot trace from cfg using rng. Extents are
// disjoint, randomly placed, and internally read in order; ops across
// extents follow extent order (the guest reads one file at a time).
func GenBootTrace(rng *sim.RNG, cfg BootConfig) []TraceOp {
	if cfg.Extents <= 0 || cfg.TouchedBytes <= 0 || cfg.ImageSize <= 0 {
		return nil
	}
	type extent struct{ off, len int64 }
	mean := cfg.TouchedBytes / int64(cfg.Extents)
	exts := make([]extent, 0, cfg.Extents)
	// Place extents on a shuffled grid so they never overlap: divide
	// the image into slots of 2*mean and pick Extents of them.
	slot := 2 * mean
	nslots := cfg.ImageSize / slot
	if nslots < int64(cfg.Extents) {
		nslots = int64(cfg.Extents)
		slot = cfg.ImageSize / nslots
	}
	perm := rng.Perm(int(nslots))
	for i := 0; i < cfg.Extents; i++ {
		l := int64(rng.Uniform(0.4, 1.6) * float64(mean))
		if l < 4096 {
			l = 4096
		}
		if l > slot {
			l = slot
		}
		off := int64(perm[i]) * slot
		if off+l > cfg.ImageSize {
			l = cfg.ImageSize - off
		}
		exts = append(exts, extent{off, l})
	}

	var ops []TraceOp
	for _, e := range exts {
		pos := e.off
		for pos < e.off+e.len {
			l := int64(rng.Uniform(0.25, 2.0) * float64(cfg.MeanOpLen))
			if l < 4096 {
				l = 4096
			}
			if pos+l > e.off+e.len {
				l = e.off + e.len - pos
			}
			ops = append(ops, TraceOp{Off: pos, Len: l})
			pos += l
		}
	}
	// Sprinkle small writes at random positions inside touched extents.
	for i := 0; i < cfg.WriteOps; i++ {
		e := exts[rng.Intn(len(exts))]
		off := e.off + rng.Int63n(max(1, e.len))
		l := cfg.WriteLen
		if off+l > cfg.ImageSize {
			l = cfg.ImageSize - off
		}
		at := rng.Intn(len(ops) + 1)
		ops = append(ops, TraceOp{})
		copy(ops[at+1:], ops[at:])
		ops[at] = TraceOp{Off: off, Len: l, Write: true}
	}
	// Spread think time: proportional shares with jitter.
	think := cfg.TotalThink / float64(len(ops))
	for i := range ops {
		ops[i].Think = think * rng.Uniform(0.25, 1.75)
	}
	return ops
}

// WithThinkJitter returns a copy of ops with freshly jittered think
// times summing to ~totalThink. All instances of a multideployment
// replay the same access pattern (they boot the same OS), but their
// CPU interleaving differs — this is the skew of §3.1.3 that spreads
// chunk accesses under concurrency.
func WithThinkJitter(ops []TraceOp, rng *sim.RNG, totalThink float64) []TraceOp {
	out := append([]TraceOp(nil), ops...)
	if len(out) == 0 {
		return out
	}
	think := totalThink / float64(len(out))
	for i := range out {
		out[i].Think = think * rng.Uniform(0.25, 1.75)
	}
	return out
}

// TraceBytes sums the bytes read (and separately written) by a trace.
func TraceBytes(ops []TraceOp) (read, written int64) {
	for _, op := range ops {
		if op.Write {
			written += op.Len
		} else {
			read += op.Len
		}
	}
	return
}

// TraceChunks counts the distinct chunkSize-aligned chunks a trace
// touches, i.e. the chunks a lazy mirror would fetch.
func TraceChunks(ops []TraceOp, chunkSize int64) int {
	touched := make(map[int64]bool)
	for _, op := range ops {
		for c := op.Off / chunkSize; c <= (op.Off+op.Len-1)/chunkSize; c++ {
			touched[c] = true
		}
	}
	return len(touched)
}

// VM drives a virtual disk through traces and application phases.
type VM struct {
	Node cluster.NodeID
	Disk VirtualDisk
}

// Boot replays the trace against the VM's disk: CPU think time then
// the disk op, sequentially, exactly as a single-queue guest would.
func (vm *VM) Boot(ctx *cluster.Ctx, trace []TraceOp) error {
	for _, op := range trace {
		if op.Think > 0 {
			ctx.Compute(op.Think)
		}
		var err error
		if op.Write {
			err = vm.Disk.Write(ctx, op.Off, op.Len)
		} else {
			err = vm.Disk.Read(ctx, op.Off, op.Len)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// SortOpsByOffset returns a copy of ops ordered by offset; useful in
// tests that verify extent disjointness.
func SortOpsByOffset(ops []TraceOp) []TraceOp {
	out := append([]TraceOp(nil), ops...)
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}
