// Package vmmodel models the life cycle and disk access pattern of a
// virtual machine instance as characterized in §2.3 of the paper:
//
//   - boot phase: scattered small reads and a few writes against the
//     image, interleaved with CPU work, touching only a fraction of
//     the image (the guest reads kernel, init, libraries, config);
//   - application phase: negligible image I/O, or read-your-writes
//     (log files, object caches);
//   - shutdown phase: negligible I/O.
//
// The boot-trace generator produces a reproducible synthetic trace
// with the structural properties that drive the evaluation: reads are
// grouped into sequentially-scanned extents ("files"), op sizes are
// small relative to the 256 KB chunk size, and per-instance start skew
// plus CPU interleaving spread the storm (paper §3.1.3 measures ~100ms
// natural skew between instances).
package vmmodel
