package vmmodel

import (
	"math"
	"testing"

	"blobvfs/internal/cluster"
	"blobvfs/internal/sim"
)

func TestBootTraceBudget(t *testing.T) {
	cfg := DefaultBootConfig(2 << 30)
	ops := GenBootTrace(sim.NewRNG(1), cfg)
	if len(ops) == 0 {
		t.Fatal("empty trace")
	}
	read, written := TraceBytes(ops)
	// Touched bytes within 25% of the configured budget.
	lo, hi := float64(cfg.TouchedBytes)*0.75, float64(cfg.TouchedBytes)*1.25
	if float64(read) < lo || float64(read) > hi {
		t.Fatalf("trace reads %d bytes, want within [%g,%g]", read, lo, hi)
	}
	if written != int64(cfg.WriteOps)*cfg.WriteLen {
		t.Fatalf("trace writes %d bytes, want %d", written, int64(cfg.WriteOps)*cfg.WriteLen)
	}
	var think float64
	for _, op := range ops {
		think += op.Think
		if op.Off < 0 || op.Off+op.Len > cfg.ImageSize {
			t.Fatalf("op [%d,%d) outside image", op.Off, op.Off+op.Len)
		}
		if op.Len <= 0 {
			t.Fatalf("non-positive op length %d", op.Len)
		}
	}
	if math.Abs(think-cfg.TotalThink) > 0.25*cfg.TotalThink {
		t.Fatalf("total think %v, want ~%v", think, cfg.TotalThink)
	}
}

func TestBootTraceTouchesFractionOfImage(t *testing.T) {
	cfg := DefaultBootConfig(2 << 30)
	ops := GenBootTrace(sim.NewRNG(2), cfg)
	touched := TraceChunks(ops, 256<<10)
	totalChunks := int(cfg.ImageSize / (256 << 10))
	if touched >= totalChunks/2 {
		t.Fatalf("boot touches %d of %d chunks; must be a small fraction (§2.3)", touched, totalChunks)
	}
	if touched < 300 {
		t.Fatalf("boot touches only %d chunks; trace too concentrated", touched)
	}
}

func TestBootTraceReadsAreExtentLocal(t *testing.T) {
	// Consecutive read ops should frequently be adjacent (sequential
	// file reads) — that locality is what chunk prefetching exploits.
	cfg := DefaultBootConfig(2 << 30)
	ops := GenBootTrace(sim.NewRNG(3), cfg)
	adjacent, reads := 0, 0
	var prevEnd int64 = -1
	for _, op := range ops {
		if op.Write {
			continue
		}
		if op.Off == prevEnd {
			adjacent++
		}
		prevEnd = op.Off + op.Len
		reads++
	}
	if float64(adjacent) < 0.5*float64(reads) {
		t.Fatalf("only %d/%d reads sequential; trace lacks extent locality", adjacent, reads)
	}
}

func TestBootTraceDeterminism(t *testing.T) {
	cfg := DefaultBootConfig(1 << 30)
	a := GenBootTrace(sim.NewRNG(7), cfg)
	b := GenBootTrace(sim.NewRNG(7), cfg)
	if len(a) != len(b) {
		t.Fatal("same seed, different trace lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, traces diverge at op %d", i)
		}
	}
}

func TestWithThinkJitterKeepsAccessesChangesThink(t *testing.T) {
	cfg := DefaultBootConfig(1 << 30)
	base := GenBootTrace(sim.NewRNG(7), cfg)
	j1 := WithThinkJitter(base, sim.NewRNG(100), cfg.TotalThink)
	j2 := WithThinkJitter(base, sim.NewRNG(200), cfg.TotalThink)
	sameThink := true
	for i := range base {
		if j1[i].Off != base[i].Off || j1[i].Len != base[i].Len || j1[i].Write != base[i].Write {
			t.Fatal("jitter changed the access pattern")
		}
		if j1[i].Think != j2[i].Think {
			sameThink = false
		}
	}
	if sameThink {
		t.Fatal("different jitter streams produced identical think times")
	}
}

func TestLocalRawBootCostsOnlyLocalDisk(t *testing.T) {
	cfg := cluster.DefaultConfig(2)
	fab := cluster.NewSim(cfg)
	bootCfg := DefaultBootConfig(2 << 30)
	trace := GenBootTrace(sim.NewRNG(9), bootCfg)
	var elapsed float64
	fab.Run(func(ctx *cluster.Ctx) {
		vm := &VM{Node: 0, Disk: &LocalRaw{NodeID: 0, Bytes: bootCfg.ImageSize}}
		if err := vm.Boot(ctx, trace); err != nil {
			t.Fatal(err)
		}
		elapsed = ctx.Now()
	})
	if fab.NetTraffic() != 0 {
		t.Fatalf("local boot generated %d bytes of traffic", fab.NetTraffic())
	}
	// Sanity window for the calibrated local boot time (paper ~10 s).
	if elapsed < 5 || elapsed > 25 {
		t.Fatalf("local boot took %.1f s, want 5-25 (calibration drifted)", elapsed)
	}
}

func TestLocalRawBoundsChecked(t *testing.T) {
	fab := cluster.NewLive(1)
	fab.Run(func(ctx *cluster.Ctx) {
		d := &LocalRaw{NodeID: 0, Bytes: 1000}
		if err := d.Read(ctx, 990, 20); err == nil {
			t.Error("read past end accepted")
		}
		if err := d.Write(ctx, -1, 5); err == nil {
			t.Error("negative write offset accepted")
		}
		if d.Size() != 1000 {
			t.Errorf("Size = %d", d.Size())
		}
	})
}
