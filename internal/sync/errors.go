package sync

import "errors"

// The sync error taxonomy, following the blob package's conventions:
// every failure path wraps one of these sentinels with %w, and the
// public façade re-exports them, so callers branch with errors.Is
// instead of matching message text.
var (
	// ErrArchiveCorrupt reports an archive that fails structural
	// validation: truncated or oversized sections, a bad magic or
	// format version, a checksum mismatch, counts that disagree with
	// section lengths, or tree records that violate the segment-tree
	// range invariants.
	ErrArchiveCorrupt = errors.New("archive corrupt")

	// ErrSequenceGap reports an archive that is not the exact
	// successor of the last one applied: a delta whose sequence
	// number or base version skips ahead (an intermediate archive was
	// never imported), a replay of an already-imported archive, or a
	// full archive for an image the importer already tracks.
	ErrSequenceGap = errors.New("archive out of sequence")

	// ErrBaseMissing reports a delta whose base version cannot anchor
	// the import: the importing side never imported the image at all,
	// or retired the base version and (possibly) reclaimed its
	// storage.
	ErrBaseMissing = errors.New("archive base version missing")

	// ErrSourceMismatch reports an archive from a different source
	// repository than the one this importer is synchronized with —
	// version numbers and sequence counters are only comparable
	// within one source's history.
	ErrSourceMismatch = errors.New("archive from different source repository")
)
