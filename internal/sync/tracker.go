package sync

import (
	"fmt"
	gosync "sync"

	"blobvfs/internal/blob"
)

// Tracker is a repository's disconnected-sync state, the analogue of
// oc-mirror's workspace metadata: on the export side a per-image
// monotone sequence counter stamped into every archive, on the import
// side the identity of the single source repository this one syncs
// from plus, per source image, a cursor recording the last archive
// applied. The cursor is what turns the sequence rules into typed
// errors before anything is written: a full archive is accepted only
// for an image the tracker has never seen, and a delta only when both
// its sequence number and its base version are the exact successors
// of the cursor.
type Tracker struct {
	uuid uint64

	mu        gosync.Mutex
	exportSeq map[blob.ID]uint64 // last sequence number exported, per image
	source    uint64             // source repo UUID, 0 until the first import
	cursors   map[blob.ID]*cursor

	// exportMu serializes exports (sequence numbers are assigned at
	// the head of the stream but burned only on success); importMu
	// serializes imports (an import is one atomic cursor transition).
	exportMu gosync.Mutex
	importMu gosync.Mutex
}

// cursor records where one source image's import chain stands.
type cursor struct {
	local blob.ID      // the image's ID in this repository
	seq   uint64       // sequence number of the last archive applied
	to    blob.Version // newest version that archive carried
}

// NewTracker creates the sync state for a repository identified (to
// its sync peers) by uuid.
func NewTracker(uuid uint64) *Tracker {
	return &Tracker{
		uuid:      uuid,
		exportSeq: make(map[blob.ID]uint64),
		cursors:   make(map[blob.ID]*cursor),
	}
}

// UUID returns the repository identity stamped into exported archives.
func (t *Tracker) UUID() uint64 { return t.uuid }

// nextExportSeq peeks the sequence number the next archive of an
// image will carry, without committing it — a failed export must not
// burn a number, or the importer would see a gap that never shipped.
func (t *Tracker) nextExportSeq(id blob.ID) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exportSeq[id] + 1
}

// commitExportSeq records a successfully streamed archive's sequence
// number.
func (t *Tracker) commitExportSeq(id blob.ID, seq uint64) {
	t.mu.Lock()
	t.exportSeq[id] = seq
	t.mu.Unlock()
}

// admit validates an archive header against the tracker's import
// state and returns the local image the archive applies to (0 when
// the archive is a full one and the image does not exist here yet).
// It only reads; the cursor moves in commitImport after the archive
// has been fully applied.
func (t *Tracker) admit(h Header) (blob.ID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h.SourceUUID == t.uuid {
		return 0, fmt.Errorf("sync: archive %#x was exported by this repository: %w", h.SourceUUID, ErrSourceMismatch)
	}
	if t.source != 0 && t.source != h.SourceUUID {
		return 0, fmt.Errorf("sync: archive from source %#x, repository syncs from %#x: %w",
			h.SourceUUID, t.source, ErrSourceMismatch)
	}
	cur, ok := t.cursors[h.Image]
	if h.From == 0 {
		if ok {
			return 0, fmt.Errorf("sync: full archive for image %d already imported through seq %d: %w",
				h.Image, cur.seq, ErrSequenceGap)
		}
		return 0, nil
	}
	if !ok {
		return 0, fmt.Errorf("sync: delta (%d,%d] for image %d never imported here: %w",
			h.From, h.To, h.Image, ErrBaseMissing)
	}
	if h.Seq != cur.seq+1 {
		return 0, fmt.Errorf("sync: archive seq %d for image %d, expected %d: %w",
			h.Seq, h.Image, cur.seq+1, ErrSequenceGap)
	}
	if h.From != cur.to {
		return 0, fmt.Errorf("sync: delta base %d for image %d, last import reached %d: %w",
			h.From, h.Image, cur.to, ErrSequenceGap)
	}
	return cur.local, nil
}

// commitImport advances the import state after an archive has been
// fully applied: the first import latches the source identity, and
// the image's cursor moves to the archive just replayed.
func (t *Tracker) commitImport(h Header, local blob.ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.source = h.SourceUUID
	t.cursors[h.Image] = &cursor{local: local, seq: h.Seq, to: h.To}
}

// Local resolves a source image ID to the local image it was imported
// as (false if the image was never imported).
func (t *Tracker) Local(source blob.ID) (blob.ID, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.cursors[source]
	if !ok {
		return 0, false
	}
	return cur.local, true
}
