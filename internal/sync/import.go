package sync

import (
	"errors"
	"fmt"
	"io"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
)

// ImportStats summarizes one applied archive.
type ImportStats struct {
	Image    blob.ID // the image's ID in this repository
	Source   blob.ID // the image's ID on the source side
	From, To blob.Version
	Seq      uint64

	Versions int // live versions published
	Retired  int // placeholders re-published and retired
	Nodes    int // tree nodes ingested
	Chunks   int // chunk records in the archive

	// DedupedChunks counts shipped chunks whose content an identical
	// stored chunk already covered — they cost zero provider disk
	// writes, riding the dedup/refcount machinery.
	DedupedChunks int

	ChunkBytes   int64 // logical bytes of the shipped chunks
	ArchiveBytes int64
}

// Import decodes, validates and applies one archive. Validation is
// strictly ordered before mutation: the archive is structurally
// checked (DecodeArchive), admitted against the tracker's uuid and
// sequence state, and its trees fully resolved against the local base
// version — all with read-only metadata access — before the first
// provider write. A rejected archive therefore leaves the repository
// byte-identical: no chunk refcount moves, no node is stored, no
// version appears.
//
// Applying remaps every shipped ref and key into this repository's
// space: archive nodes get freshly allocated (pending-marked) refs,
// archive chunks freshly allocated keys, and refs the archive shares
// with the base resolve by range-descent of the local base tree —
// imports reproduce the source's tree structure, so the subtree
// covering a range is the same on both sides. Chunks publish through
// the batched PutBatch path and dedup against content already
// present; versions then ticket and publish in order (placeholders
// for source-retired versions publish and immediately retire), so
// OpenDisk, retention and GC see the imported lineage exactly as if
// it had been committed locally.
func Import(ctx *cluster.Ctx, sys *blob.System, t *Tracker, src io.Reader) (ImportStats, error) {
	a, err := DecodeArchive(src)
	if err != nil {
		return ImportStats{}, err
	}
	h := a.Header
	if err := validateSemantics(a); err != nil {
		return ImportStats{}, err
	}

	t.importMu.Lock()
	defer t.importMu.Unlock()

	localID, err := t.admit(h)
	if err != nil {
		return ImportStats{}, err
	}

	// Anchor the delta: the local image must exist, stand exactly at
	// the base version, and the base must still be live — it is
	// pinned for the whole apply so a concurrent retire+GC cannot
	// reclaim the subtrees the new versions link to.
	var baseRoot blob.NodeRef
	if h.From > 0 {
		info, err := sys.VM.Info(ctx, localID)
		if err != nil {
			return ImportStats{}, fmt.Errorf("sync: local image %d: %w", localID, err)
		}
		if int32(info.ChunkSize) != h.ChunkSize || info.Size != h.ImageSize || info.Span != h.Span {
			return ImportStats{}, corrupt("archive geometry (size %d, chunk %d) disagrees with local image %d (size %d, chunk %d)",
				h.ImageSize, h.ChunkSize, localID, info.Size, info.ChunkSize)
		}
		if got := blob.Version(sys.VM.Published(localID)); got != h.From {
			return ImportStats{}, fmt.Errorf("sync: local image %d stands at version %d, archive base is %d: %w",
				localID, got, h.From, ErrSequenceGap)
		}
		baseRoot, err = sys.VM.Root(ctx, localID, h.From)
		if err != nil {
			if errors.Is(err, blob.ErrVersionRetired) || errors.Is(err, blob.ErrNotFound) {
				return ImportStats{}, fmt.Errorf("sync: base version %d of local image %d: %v: %w",
					h.From, localID, err, ErrBaseMissing)
			}
			return ImportStats{}, err
		}
		if err := sys.VM.Pin(localID, h.From); err != nil {
			return ImportStats{}, fmt.Errorf("sync: base version %d of local image %d: %v: %w",
				h.From, localID, err, ErrBaseMissing)
		}
		defer sys.VM.Unpin(localID, h.From)
	}

	// Allocate this repository's refs and keys for everything the
	// archive ships. The allocations are local counter increments,
	// pending-marked so a concurrent GC cycle exempts them, and the
	// deferred clears make a failed import leave no trace beyond the
	// advanced counters.
	refMap := make(map[blob.NodeRef]blob.NodeRef, len(a.Nodes))
	pendingRefs := make([]blob.NodeRef, 0, len(a.Nodes))
	nodeByRef := make(map[blob.NodeRef]*NodeRecord, len(a.Nodes))
	for i := range a.Nodes {
		rec := &a.Nodes[i]
		if _, dup := nodeByRef[rec.Ref]; dup {
			return ImportStats{}, corrupt("duplicate node ref %d", rec.Ref)
		}
		nodeByRef[rec.Ref] = rec
		local := sys.Meta.AllocPendingRef()
		refMap[rec.Ref] = local
		pendingRefs = append(pendingRefs, local)
	}
	defer sys.Meta.ClearPending(pendingRefs)

	keyMap := make(map[blob.ChunkKey]blob.ChunkKey, len(a.Chunks))
	pendingKeys := make([]blob.ChunkKey, 0, len(a.Chunks))
	for i := range a.Chunks {
		rec := &a.Chunks[i]
		if _, dup := keyMap[rec.Key]; dup {
			return ImportStats{}, corrupt("duplicate chunk key %d", rec.Key)
		}
		local := sys.Providers.AllocPendingKey()
		keyMap[rec.Key] = local
		pendingKeys = append(pendingKeys, local)
	}
	defer sys.Providers.ClearPending(pendingKeys)

	res := &resolver{
		ctx: ctx, meta: sys.Meta,
		baseRoot: baseRoot, span: h.Span,
		refMap: refMap, keyMap: keyMap, nodeByRef: nodeByRef,
		sharedRefs:   make(map[blob.NodeRef]blob.NodeRef),
		sharedChunks: make(map[blob.ChunkKey]blob.ChunkKey),
	}

	// Resolve every version's tree — still read-only. The walk
	// validates the range invariants of the shipped nodes, checks
	// that shared refs actually resolve in the local base tree, and
	// produces the rewritten roots.
	roots := make([]blob.NodeRef, len(a.Versions))
	for i, vr := range a.Versions {
		if vr.Retired {
			continue
		}
		local, err := res.resolve(vr.Root, 0, h.Span)
		if err != nil {
			return ImportStats{}, err
		}
		roots[i] = local
	}

	// Validation is complete; apply. Everything below mutates, in
	// dependency order: image registration, chunks, metadata nodes,
	// then the version publications that make them reachable.
	if h.From == 0 {
		localID, err = sys.VM.CreateBlob(ctx, h.ImageSize, int(h.ChunkSize))
		if err != nil {
			return ImportStats{}, err
		}
	}

	dedupBefore := sys.Providers.DedupHits.Load()
	if len(a.Chunks) > 0 {
		puts := make([]blob.ChunkPut, len(a.Chunks))
		for i, rec := range a.Chunks {
			puts[i] = blob.ChunkPut{Key: keyMap[rec.Key], Payload: rec.Payload}
		}
		if err := sys.Providers.PutBatch(ctx, puts); err != nil {
			return ImportStats{}, fmt.Errorf("sync: storing chunks: %w", err)
		}
	}
	sys.Meta.PutBatch(ctx, res.rewritten)

	stats := ImportStats{
		Image: localID, Source: h.Image,
		From: h.From, To: h.To, Seq: h.Seq,
		Nodes:         len(a.Nodes),
		Chunks:        len(a.Chunks),
		DedupedChunks: int(sys.Providers.DedupHits.Load() - dedupBefore),
		ArchiveBytes:  a.Size,
	}
	for _, rec := range a.Chunks {
		stats.ChunkBytes += int64(rec.Payload.Size)
	}

	for i, vr := range a.Versions {
		tv, err := sys.VM.Ticket(ctx, localID)
		if err != nil {
			return stats, err
		}
		if tv != vr.Version {
			return stats, fmt.Errorf("sync: local image %d issued ticket %d for archive version %d (concurrent writer?): %w",
				localID, tv, vr.Version, ErrSequenceGap)
		}
		if err := sys.VM.Publish(ctx, localID, vr.Version, roots[i]); err != nil {
			return stats, err
		}
		if vr.Retired {
			if err := sys.VM.Retire(ctx, localID, vr.Version); err != nil {
				return stats, err
			}
			stats.Retired++
		} else {
			stats.Versions++
		}
	}

	t.commitImport(h, localID)
	return stats, nil
}

// validateSemantics checks the decoded archive's internal consistency
// beyond the codec's structural checks: geometry, version-range
// contiguity, and that live versions carry roots.
func validateSemantics(a *Archive) error {
	h := a.Header
	if h.ChunkSize <= 0 || h.ImageSize < 0 || h.From < 0 || h.To <= h.From {
		return corrupt("header geometry/range (size %d, chunk %d, range (%d,%d])",
			h.ImageSize, h.ChunkSize, h.From, h.To)
	}
	chunks := (h.ImageSize + int64(h.ChunkSize) - 1) / int64(h.ChunkSize)
	span := int64(1)
	for span < chunks {
		span <<= 1
	}
	if h.Span != span {
		return corrupt("header span %d, geometry implies %d", h.Span, span)
	}
	if len(a.Versions) != int(h.To-h.From) {
		return corrupt("%d version records for range (%d,%d]", len(a.Versions), h.From, h.To)
	}
	for i, vr := range a.Versions {
		if vr.Version != h.From+blob.Version(i)+1 {
			return corrupt("version record %d is %d, expected %d", i, vr.Version, h.From+blob.Version(i)+1)
		}
		if !vr.Retired && vr.Root == 0 && h.ImageSize > 0 {
			return corrupt("live version %d has no root", vr.Version)
		}
	}
	return nil
}

// resolver rewrites the archive's trees into local ref/key space.
// Refs the archive ships map through refMap; refs it shares with the
// base version resolve by descending the local base tree to the
// subtree covering the same range (imports reproduce the source's
// tree structure, so the correspondence is positional). Results are
// memoized — shadowing shares whole subtrees across the archived
// versions, and each is resolved once.
type resolver struct {
	ctx  *cluster.Ctx
	meta *blob.MetaService

	baseRoot blob.NodeRef
	span     int64

	refMap    map[blob.NodeRef]blob.NodeRef
	keyMap    map[blob.ChunkKey]blob.ChunkKey
	nodeByRef map[blob.NodeRef]*NodeRecord

	sharedRefs   map[blob.NodeRef]blob.NodeRef   // foreign shared ref → local ref
	sharedChunks map[blob.ChunkKey]blob.ChunkKey // foreign shared key → local key

	resolved  map[blob.NodeRef][2]int64 // archive refs already rewritten → their range
	rewritten []blob.NewNode
}

// resolve returns the local ref for a foreign ref expected to cover
// [lo,hi), rewriting the archive subtree under it on first visit.
func (r *resolver) resolve(ref blob.NodeRef, lo, hi int64) (blob.NodeRef, error) {
	if ref == 0 {
		return 0, nil
	}
	rec, inArchive := r.nodeByRef[ref]
	if !inArchive {
		return r.resolveShared(ref, lo, hi)
	}
	local := r.refMap[ref]
	if r.resolved == nil {
		r.resolved = make(map[blob.NodeRef][2]int64)
	}
	if at, done := r.resolved[ref]; done {
		// A node is one fixed subtree; an archive linking the same
		// ref at two ranges is corrupt, not shared.
		if at != [2]int64{lo, hi} {
			return 0, corrupt("node %d linked at [%d,%d) and [%d,%d)", ref, at[0], at[1], lo, hi)
		}
		return local, nil
	}
	r.resolved[ref] = [2]int64{lo, hi}
	n := rec.Node
	if n.Lo != lo || n.Hi != hi {
		return 0, corrupt("node %d covers [%d,%d), expected [%d,%d)", ref, n.Lo, n.Hi, lo, hi)
	}
	out := blob.TreeNode{Lo: lo, Hi: hi}
	if n.Leaf() {
		key, err := r.resolveChunk(n.Chunk, lo)
		if err != nil {
			return 0, err
		}
		out.Chunk = key
	} else {
		mid := (lo + hi) / 2
		left, err := r.resolve(n.Left, lo, mid)
		if err != nil {
			return 0, err
		}
		right, err := r.resolve(n.Right, mid, hi)
		if err != nil {
			return 0, err
		}
		out.Left, out.Right = left, right
	}
	r.rewritten = append(r.rewritten, blob.NewNode{Ref: local, Node: out})
	return local, nil
}

// resolveShared finds the local node covering [lo,hi) by binary
// descent from the local base root. A delta can only share subtrees
// with its base, so failing to reach the range means the archive and
// the local image disagree structurally.
func (r *resolver) resolveShared(ref blob.NodeRef, lo, hi int64) (blob.NodeRef, error) {
	if local, ok := r.sharedRefs[ref]; ok {
		return local, nil
	}
	local, _, err := r.descend(lo, hi)
	if err != nil {
		return 0, err
	}
	r.sharedRefs[ref] = local
	return local, nil
}

// resolveChunk maps a foreign chunk key at leaf index lo: shipped
// keys map to their freshly allocated local keys; a key the archive
// shares with the base (a cloned single-chunk tree) resolves to the
// local base leaf's key at the same index.
func (r *resolver) resolveChunk(key blob.ChunkKey, lo int64) (blob.ChunkKey, error) {
	if key == 0 {
		return 0, nil
	}
	if local, ok := r.keyMap[key]; ok {
		return local, nil
	}
	if local, ok := r.sharedChunks[key]; ok {
		return local, nil
	}
	leafRef, leaf, err := r.descend(lo, lo+1)
	if err != nil {
		return 0, err
	}
	if leafRef == 0 || leaf.Chunk == 0 {
		return 0, corrupt("chunk %d not shipped and base leaf %d is sparse", key, lo)
	}
	r.sharedChunks[key] = leaf.Chunk
	return leaf.Chunk, nil
}

// descend walks the local base tree from its root to the node
// covering exactly [lo,hi) and returns its ref and content.
func (r *resolver) descend(lo, hi int64) (blob.NodeRef, blob.TreeNode, error) {
	if r.baseRoot == 0 {
		return 0, blob.TreeNode{}, corrupt("subtree [%d,%d) not shipped and archive has no base", lo, hi)
	}
	ref := r.baseRoot
	clo, chi := int64(0), r.span
	for {
		if ref == 0 {
			return 0, blob.TreeNode{}, corrupt("subtree [%d,%d) not shipped and sparse in local base", lo, hi)
		}
		n, err := r.meta.Get(r.ctx, ref)
		if err != nil {
			return 0, blob.TreeNode{}, err
		}
		if n.Lo != clo || n.Hi != chi {
			return 0, blob.TreeNode{}, fmt.Errorf("blob: node %d covers [%d,%d), expected [%d,%d): %w",
				ref, n.Lo, n.Hi, clo, chi, blob.ErrCorruptTree)
		}
		if clo == lo && chi == hi {
			return ref, n, nil
		}
		if n.Leaf() {
			return 0, blob.TreeNode{}, corrupt("subtree [%d,%d) not shipped and absent from local base", lo, hi)
		}
		mid := (clo + chi) / 2
		if hi <= mid {
			ref, chi = n.Left, mid
		} else if lo >= mid {
			ref, clo = n.Right, mid
		} else {
			return 0, blob.TreeNode{}, corrupt("subtree [%d,%d) straddles base split at %d", lo, hi, mid)
		}
	}
}
