package sync

import (
	"errors"
	"fmt"
	"io"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
)

// ExportStats summarizes one exported archive: how much the delta
// shipped versus what shipping the full image would have cost.
type ExportStats struct {
	Image    blob.ID
	From, To blob.Version
	Seq      uint64

	Versions int // live versions shipped
	Retired  int // retired placeholders (version number only)
	Nodes    int // tree nodes shipped
	Chunks   int // chunk payloads shipped

	ChunkBytes   int64 // logical bytes of the shipped chunks
	NodeBytes    int64 // shipped metadata, at the modeled node wire size
	FullBytes    int64 // the full-image baseline: the image's logical size
	ArchiveBytes int64 // serialized archive length
}

// DeltaBytes is the headline delta cost: the logical chunk bytes plus
// metadata the archive ships, comparable against FullBytes. (It is
// deliberately not ArchiveBytes: synthetic payloads serialize as tiny
// descriptors, which would make simulation-scale reductions
// meaningless.)
func (s ExportStats) DeltaBytes() int64 { return s.ChunkBytes + s.NodeBytes }

// Export walks the segment trees of versions (from, to] of an image,
// marks everything reachable from the base version `from` the way the
// garbage collector's mark phase does, and streams the rest — the
// delta — into w as a portable archive. from 0 exports the full
// lineage up to `to` with no base. Versions of the range that were
// retired on this side ship as placeholder records so the importer's
// version numbering stays aligned.
//
// The base and target versions (and every live intermediate) are
// pinned for the duration of the stream, so a concurrent GC cannot
// reclaim chunks or tree nodes the archive still needs. The image's
// export sequence number is committed only after the stream completes
// — a failed export burns no sequence number.
func Export(ctx *cluster.Ctx, sys *blob.System, t *Tracker, w io.Writer, id blob.ID, from, to blob.Version) (ExportStats, error) {
	if from < 0 || to <= from {
		return ExportStats{}, fmt.Errorf("sync: export range (%d,%d] of image %d: %w", from, to, id, blob.ErrOutOfRange)
	}
	t.exportMu.Lock()
	defer t.exportMu.Unlock()

	info, err := sys.VM.Info(ctx, id)
	if err != nil {
		return ExportStats{}, err
	}

	// Pin the whole range before walking anything: the target and base
	// must be live; an intermediate that was already retired ships as
	// a placeholder.
	if err := sys.VM.Pin(id, to); err != nil {
		return ExportStats{}, fmt.Errorf("sync: export target %d@%d: %w", id, to, err)
	}
	defer sys.VM.Unpin(id, to)
	if from > 0 {
		if err := sys.VM.Pin(id, from); err != nil {
			return ExportStats{}, fmt.Errorf("sync: export base %d@%d: %w", id, from, err)
		}
		defer sys.VM.Unpin(id, from)
	}
	retiredAt := make(map[blob.Version]bool)
	for v := from + 1; v < to; v++ {
		err := sys.VM.Pin(id, v)
		switch {
		case err == nil:
			defer sys.VM.Unpin(id, v)
		case errors.Is(err, blob.ErrVersionRetired):
			retiredAt[v] = true
		default:
			return ExportStats{}, fmt.Errorf("sync: export intermediate %d@%d: %w", id, v, err)
		}
	}

	seq := t.nextExportSeq(id)
	h := Header{
		SourceUUID: t.uuid,
		Image:      id,
		From:       from,
		To:         to,
		Seq:        seq,
		ChunkSize:  int32(info.ChunkSize),
		ImageSize:  info.Size,
		Span:       info.Span,
	}
	aw := newArchiveWriter(w)
	aw.writeHeader(h)

	// Mark phase A: everything reachable from the base version is
	// already on the importing side and must not ship.
	seen := make(map[blob.NodeRef]bool)
	baseChunks := make(map[blob.ChunkKey]bool)
	if from > 0 {
		baseRoot, err := sys.VM.Root(ctx, id, from)
		if err != nil {
			return ExportStats{}, fmt.Errorf("sync: export base %d@%d: %w", id, from, err)
		}
		err = walkFrontier(ctx, sys.Meta, baseRoot, info.Span,
			func(ref blob.NodeRef) bool {
				if seen[ref] {
					return false
				}
				seen[ref] = true
				return true
			},
			nil,
			func(key blob.ChunkKey) { baseChunks[key] = true })
		if err != nil {
			return ExportStats{}, err
		}
	}

	// Mark phase B: walk each live version of the range in ascending
	// order, pruning on the shared seen set — shadowing means each
	// version contributes only the nodes its commit created, and each
	// chunk ships at most once.
	var stats ExportStats
	var versions []VersionRecord
	var nodes []NodeRecord
	var keys []blob.ChunkKey
	shipped := make(map[blob.ChunkKey]bool)
	for v := from + 1; v <= to; v++ {
		if retiredAt[v] {
			versions = append(versions, VersionRecord{Version: v, Retired: true})
			stats.Retired++
			continue
		}
		root, err := sys.VM.Root(ctx, id, v)
		if err != nil {
			return ExportStats{}, fmt.Errorf("sync: export version %d@%d: %w", id, v, err)
		}
		err = walkFrontier(ctx, sys.Meta, root, info.Span,
			func(ref blob.NodeRef) bool {
				if seen[ref] {
					return false
				}
				seen[ref] = true
				return true
			},
			func(ref blob.NodeRef, n blob.TreeNode) {
				nodes = append(nodes, NodeRecord{Ref: ref, Node: n})
			},
			func(key blob.ChunkKey) {
				if baseChunks[key] || shipped[key] {
					return
				}
				shipped[key] = true
				keys = append(keys, key)
			})
		if err != nil {
			return ExportStats{}, err
		}
		versions = append(versions, VersionRecord{Version: v, Root: root})
		stats.Versions++
	}

	aw.writeSection(sectionVersions, encodeVersions(versions))
	aw.writeSection(sectionNodes, encodeNodes(nodes))

	// The chunk payloads are fetched only now, after the header and
	// tree sections are on the wire — mid-stream, which is exactly the
	// window the pins protect against a concurrent GC.
	chunks := make([]ChunkRecord, 0, len(keys))
	for _, key := range keys {
		p, err := sys.Providers.Get(ctx, key)
		if err != nil {
			return ExportStats{}, fmt.Errorf("sync: export chunk %d: %w", key, err)
		}
		chunks = append(chunks, ChunkRecord{Key: key, Payload: p, Digest: payloadDigest(p)})
		stats.ChunkBytes += int64(p.Size)
	}
	aw.writeSection(sectionChunks, encodeChunks(chunks))

	n, err := aw.finish()
	if err != nil {
		return ExportStats{}, fmt.Errorf("sync: writing archive: %w", err)
	}

	stats.Image = id
	stats.From, stats.To, stats.Seq = from, to, seq
	stats.Nodes = len(nodes)
	stats.Chunks = len(chunks)
	stats.NodeBytes = int64(len(nodes)) * nodeWire
	stats.FullBytes = info.Size
	stats.ArchiveBytes = n
	t.commitExportSeq(id, seq)
	return stats, nil
}

// walkFrontier is the batched twin of blob.WalkReachable: a
// level-order frontier descent that resolves each tree level in one
// MetaService.GetBatch round (the PR 7 read path), prunes subtrees
// whose root enter rejects, validates the range invariants as it
// goes, and reports every visited node and every reachable chunk.
func walkFrontier(ctx *cluster.Ctx, meta *blob.MetaService, root blob.NodeRef, span int64,
	enter func(blob.NodeRef) bool,
	visit func(blob.NodeRef, blob.TreeNode),
	chunk func(blob.ChunkKey)) error {

	type frame struct {
		ref      blob.NodeRef
		nlo, nhi int64
	}
	var frontier, next []frame
	push := func(fs []frame, ref blob.NodeRef, nlo, nhi int64) []frame {
		if ref == 0 || !enter(ref) {
			return fs
		}
		return append(fs, frame{ref, nlo, nhi})
	}
	frontier = push(frontier, root, 0, span)
	var refs []blob.NodeRef
	for len(frontier) > 0 {
		refs = refs[:0]
		for _, fr := range frontier {
			refs = append(refs, fr.ref)
		}
		nodes, err := meta.GetBatch(ctx, refs)
		if err != nil {
			return err
		}
		next = next[:0]
		for fi, fr := range frontier {
			n := nodes[fi]
			if n.Lo != fr.nlo || n.Hi != fr.nhi {
				return fmt.Errorf("blob: node %d covers [%d,%d), expected [%d,%d): %w",
					fr.ref, n.Lo, n.Hi, fr.nlo, fr.nhi, blob.ErrCorruptTree)
			}
			if visit != nil {
				visit(fr.ref, n)
			}
			if n.Leaf() {
				if n.Chunk != 0 && chunk != nil {
					chunk(n.Chunk)
				}
				continue
			}
			mid := (fr.nlo + fr.nhi) / 2
			next = push(next, n.Left, fr.nlo, mid)
			next = push(next, n.Right, mid, fr.nhi)
		}
		frontier, next = next, frontier
	}
	return nil
}
