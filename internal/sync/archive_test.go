package sync

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"blobvfs/internal/blob"
)

// encodeArchive serializes an archive the way Export does, for codec
// tests that need the bytes without a fabric.
func encodeArchive(a *Archive) []byte {
	var buf bytes.Buffer
	aw := newArchiveWriter(&buf)
	aw.writeHeader(a.Header)
	aw.writeSection(sectionVersions, encodeVersions(a.Versions))
	aw.writeSection(sectionNodes, encodeNodes(a.Nodes))
	aw.writeSection(sectionChunks, encodeChunks(a.Chunks))
	if _, err := aw.finish(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func sampleArchive() *Archive {
	data := []byte("delta payload bytes")
	real := blob.RealPayload(data)
	synth := blob.SyntheticPayload(4096, 77)
	return &Archive{
		Header: Header{
			SourceUUID: 0xA11CE,
			Image:      3,
			From:       2,
			To:         4,
			Seq:        7,
			ChunkSize:  4096,
			ImageSize:  8192,
			Span:       2,
		},
		Versions: []VersionRecord{
			{Version: 3, Retired: true},
			{Version: 4, Root: 101},
		},
		Nodes: []NodeRecord{
			{Ref: 101, Node: blob.TreeNode{Lo: 0, Hi: 2, Left: 102, Right: 55}},
			{Ref: 102, Node: blob.TreeNode{Lo: 0, Hi: 1, Chunk: 201}},
		},
		Chunks: []ChunkRecord{
			{Key: 201, Payload: real, Digest: payloadDigest(real)},
			{Key: 202, Payload: synth, Digest: payloadDigest(synth)},
		},
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	a := sampleArchive()
	raw := encodeArchive(a)
	got, err := DecodeArchive(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != int64(len(raw)) {
		t.Fatalf("Size = %d, want %d", got.Size, len(raw))
	}
	got.Size = 0
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, a)
	}
}

func TestDecodeRejectsEveryTruncation(t *testing.T) {
	raw := encodeArchive(sampleArchive())
	for n := 0; n < len(raw); n++ {
		if _, err := DecodeArchive(bytes.NewReader(raw[:n])); !errors.Is(err, ErrArchiveCorrupt) {
			t.Fatalf("truncation at %d of %d: err = %v, want ErrArchiveCorrupt", n, len(raw), err)
		}
	}
}

func TestDecodeRejectsEveryBitFlip(t *testing.T) {
	raw := encodeArchive(sampleArchive())
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		if _, err := DecodeArchive(bytes.NewReader(mut)); !errors.Is(err, ErrArchiveCorrupt) {
			t.Fatalf("bit flip at offset %d: err = %v, want ErrArchiveCorrupt", off, err)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	raw := encodeArchive(sampleArchive())
	raw = append(raw, 0xEE)
	if _, err := DecodeArchive(bytes.NewReader(raw)); !errors.Is(err, ErrArchiveCorrupt) {
		t.Fatalf("err = %v, want ErrArchiveCorrupt", err)
	}
}

func TestPayloadDigestDistinguishes(t *testing.T) {
	a := payloadDigest(blob.RealPayload([]byte("aaaa")))
	b := payloadDigest(blob.RealPayload([]byte("aaab")))
	if a == b {
		t.Fatal("distinct real payloads share a digest")
	}
	s1 := payloadDigest(blob.SyntheticPayload(4096, 1))
	s2 := payloadDigest(blob.SyntheticPayload(4096, 2))
	if s1 == s2 {
		t.Fatal("distinct synthetic payloads share a digest")
	}
}

func TestTrackerSequenceRules(t *testing.T) {
	up := NewTracker(0xA)
	down := NewTracker(0xB)
	h := func(image blob.ID, from, to blob.Version, seq uint64) Header {
		return Header{SourceUUID: up.uuid, Image: image, From: from, To: to, Seq: seq}
	}

	// Self-import is refused.
	if _, err := up.admit(h(1, 0, 1, 1)); !errors.Is(err, ErrSourceMismatch) {
		t.Fatalf("self-import: %v", err)
	}
	// A delta for an unknown image has no base.
	if _, err := down.admit(h(1, 1, 2, 2)); !errors.Is(err, ErrBaseMissing) {
		t.Fatalf("delta without base: %v", err)
	}
	// Full archive admits and latches the source.
	if _, err := down.admit(h(1, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	down.commitImport(h(1, 0, 1, 1), 11)
	if _, err := down.admit(Header{SourceUUID: 0xC, Image: 9, From: 0, To: 1, Seq: 1}); !errors.Is(err, ErrSourceMismatch) {
		t.Fatalf("foreign source: %v", err)
	}
	// Replaying the full archive is a sequence violation.
	if _, err := down.admit(h(1, 0, 1, 1)); !errors.Is(err, ErrSequenceGap) {
		t.Fatalf("full replay: %v", err)
	}
	// Skipping seq 2 is a gap; the exact successor admits.
	if _, err := down.admit(h(1, 2, 3, 3)); !errors.Is(err, ErrSequenceGap) {
		t.Fatalf("seq skip: %v", err)
	}
	local, err := down.admit(h(1, 1, 2, 2))
	if err != nil || local != 11 {
		t.Fatalf("successor: local=%d err=%v", local, err)
	}
	// Base/seq must both line up: right seq, wrong base.
	if _, err := down.admit(h(1, 2, 3, 2)); !errors.Is(err, ErrSequenceGap) {
		t.Fatalf("base mismatch: %v", err)
	}

	if _, ok := down.Local(1); !ok {
		t.Fatal("Local lost the cursor")
	}
	if _, ok := down.Local(42); ok {
		t.Fatal("Local invented a cursor")
	}
}
