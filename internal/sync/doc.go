// Package sync implements differential snapshot export/import: the
// disconnected-repository counterpart of the multisnapshotting design.
//
// Within one repository, successive versions of an image share almost
// all of their chunks and tree nodes through shadowing and dedup
// (Fig. 3 of the paper). This package makes those deltas portable: an
// export walks the segment trees of a version range (from, to] with
// the garbage collector's reachability marking and serializes exactly
// the tree nodes and chunks unreachable from the base version into a
// self-describing archive; an import replays the archive into another
// repository seeded at the base, re-publishing the versions so disks,
// retention and GC work on the importing side as if the snapshots had
// been committed locally.
//
// The workflow mirrors oc-mirror's mirror-to-disk / disk-to-mirror
// shape: archives carry the source repository's UUID and a per-image
// monotone sequence number, and a Tracker on the importing side
// accepts a full archive (base 0) only for a new image and a delta
// only when it is the exact successor of the last archive applied —
// a gap, a replay, or an archive from a different source fails with a
// typed error before anything is written.
//
// The archive format and its invariants are documented in
// docs/sync.md.
package sync
