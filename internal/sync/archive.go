package sync

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"

	"blobvfs/internal/blob"
)

// The archive wire format, little-endian throughout:
//
//	magic          8 bytes "BVFSYNC1"
//	header         formatVersion u32, sourceUUID u64, image i32,
//	               from i32, to i32, seq u64, chunkSize i32,
//	               imageSize i64, span i64, headerSum u64
//	section ×3     kind u32, length u64, body, bodySum u64
//	               (kinds in strict order: versions, nodes, chunks)
//	trailer        archiveSum u64
//
// Every checksum is FNV-64a: headerSum covers magic through span,
// each bodySum covers its section body, and archiveSum covers every
// byte before the trailer — so a flipped bit anywhere in the stream
// is caught before any record is acted on. Section bodies are
// length-prefixed and the decoder bounds every count against its
// section length, so a corrupted or adversarial archive fails with
// ErrArchiveCorrupt instead of an over-allocation or a panic (see
// FuzzImportArchive).

const (
	formatVersion = 1

	sectionVersions = 1
	sectionNodes    = 2
	sectionChunks   = 3

	// maxSectionLen bounds a section body; anything larger is treated
	// as corruption before allocation, not after.
	maxSectionLen = 1 << 30

	// nodeWire mirrors the blob package's modeled on-wire size of a
	// metadata node; stats use it to price shipped tree nodes.
	nodeWire = 64
)

var magic = [8]byte{'B', 'V', 'F', 'S', 'Y', 'N', 'C', '1'}

// Header is the archive's self-description: which source repository,
// which image, which version range the archive carries, and where it
// sits in the source's export sequence for that image.
type Header struct {
	SourceUUID uint64
	Image      blob.ID
	From, To   blob.Version
	Seq        uint64
	ChunkSize  int32
	ImageSize  int64
	Span       int64
}

// VersionRecord is one version of the range (From, To]. A retired
// record is a placeholder: the version was retired on the source
// before the export, its tree was not shipped, and the importer
// re-publishes and immediately retires it so version numbers stay
// aligned between the repositories.
type VersionRecord struct {
	Version blob.Version
	Retired bool
	Root    blob.NodeRef // source-side ref; 0 for retired placeholders
}

// NodeRecord is one shipped segment-tree node, under its source-side
// ref; child refs that name nodes outside the archive resolve against
// the importer's base tree.
type NodeRecord struct {
	Ref  blob.NodeRef
	Node blob.TreeNode
}

// ChunkRecord is one shipped chunk under its source-side key. Real
// payloads carry their bytes and an FNV-64a digest of them; synthetic
// payloads carry only the (size, tag) descriptor, digested the same
// way the provider set fingerprints them.
type ChunkRecord struct {
	Key     blob.ChunkKey
	Payload blob.Payload
	Digest  uint64
}

// Archive is a fully decoded (and checksum-verified) delta archive.
type Archive struct {
	Header   Header
	Versions []VersionRecord
	Nodes    []NodeRecord
	Chunks   []ChunkRecord
	Size     int64 // serialized length in bytes
}

// payloadDigest fingerprints a chunk payload for the per-chunk
// integrity check: FNV-64a over the bytes for real payloads, over the
// (tag, size) descriptor for synthetic ones.
func payloadDigest(p blob.Payload) uint64 {
	h := fnv.New64a()
	if p.Real() {
		h.Write(p.Data)
		return h.Sum64()
	}
	var buf [12]byte
	binary.LittleEndian.PutUint64(buf[0:], p.Tag)
	binary.LittleEndian.PutUint32(buf[8:], uint32(p.Size))
	h.Write(buf[:])
	return h.Sum64()
}

// archiveWriter serializes an archive incrementally — header first,
// then one section at a time — keeping the running whole-archive
// checksum. Export uses it so the stream starts before the chunk
// payloads are even fetched.
type archiveWriter struct {
	w   io.Writer
	sum hash.Hash64
	n   int64
	err error
}

func newArchiveWriter(w io.Writer) *archiveWriter {
	return &archiveWriter{w: w, sum: fnv.New64a()}
}

// write sends raw bytes to the underlying writer and the running
// checksum; errors stick.
func (aw *archiveWriter) write(b []byte) {
	if aw.err != nil {
		return
	}
	aw.sum.Write(b)
	n, err := aw.w.Write(b)
	aw.n += int64(n)
	aw.err = err
}

func (aw *archiveWriter) writeHeader(h Header) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	putU32(&buf, formatVersion)
	putU64(&buf, h.SourceUUID)
	putU32(&buf, uint32(h.Image))
	putU32(&buf, uint32(h.From))
	putU32(&buf, uint32(h.To))
	putU64(&buf, h.Seq)
	putU32(&buf, uint32(h.ChunkSize))
	putU64(&buf, uint64(h.ImageSize))
	putU64(&buf, uint64(h.Span))
	hs := fnv.New64a()
	hs.Write(buf.Bytes())
	putU64(&buf, hs.Sum64())
	aw.write(buf.Bytes())
}

func (aw *archiveWriter) writeSection(kind uint32, body []byte) {
	var hdr bytes.Buffer
	putU32(&hdr, kind)
	putU64(&hdr, uint64(len(body)))
	aw.write(hdr.Bytes())
	aw.write(body)
	bs := fnv.New64a()
	bs.Write(body)
	var tail bytes.Buffer
	putU64(&tail, bs.Sum64())
	aw.write(tail.Bytes())
}

// finish writes the whole-archive checksum trailer and returns the
// total byte count.
func (aw *archiveWriter) finish() (int64, error) {
	if aw.err != nil {
		return aw.n, aw.err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], aw.sum.Sum64())
	n, err := aw.w.Write(tail[:])
	aw.n += int64(n)
	aw.err = err
	return aw.n, aw.err
}

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.Write(tmp[:])
}

func encodeVersions(recs []VersionRecord) []byte {
	var b bytes.Buffer
	putU32(&b, uint32(len(recs)))
	for _, r := range recs {
		putU32(&b, uint32(r.Version))
		flags := byte(0)
		if r.Retired {
			flags = 1
		}
		b.WriteByte(flags)
		putU64(&b, uint64(r.Root))
	}
	return b.Bytes()
}

func encodeNodes(recs []NodeRecord) []byte {
	var b bytes.Buffer
	putU32(&b, uint32(len(recs)))
	for _, r := range recs {
		putU64(&b, uint64(r.Ref))
		putU64(&b, uint64(r.Node.Lo))
		putU64(&b, uint64(r.Node.Hi))
		putU64(&b, uint64(r.Node.Left))
		putU64(&b, uint64(r.Node.Right))
		putU64(&b, uint64(r.Node.Chunk))
	}
	return b.Bytes()
}

func encodeChunks(recs []ChunkRecord) []byte {
	var b bytes.Buffer
	putU32(&b, uint32(len(recs)))
	for _, r := range recs {
		putU64(&b, uint64(r.Key))
		putU32(&b, uint32(r.Payload.Size))
		putU64(&b, r.Payload.Tag)
		flags := byte(0)
		if r.Payload.Real() {
			flags = 1
		}
		b.WriteByte(flags)
		putU64(&b, r.Digest)
		if r.Payload.Real() {
			b.Write(r.Payload.Data)
		}
	}
	return b.Bytes()
}

// corrupt builds an ErrArchiveCorrupt with positional context.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("sync: "+format+": %w", append(args, ErrArchiveCorrupt)...)
}

// reader is a bounds-checked cursor over the archive bytes; every
// primitive read fails with ErrArchiveCorrupt on truncation.
type reader struct {
	buf []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || len(r.buf)-r.off < n {
		return nil, corrupt("truncated at offset %d (need %d bytes, have %d)", r.off, n, len(r.buf)-r.off)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// DecodeArchive reads and structurally validates a complete archive:
// magic, format version, all four checksums, section order, record
// counts against section lengths, and per-chunk payload digests. It
// does not touch any repository state — every failure is reported
// before an import acts on a single record.
func DecodeArchive(src io.Reader) (*Archive, error) {
	raw, err := io.ReadAll(src)
	if err != nil {
		return nil, corrupt("reading archive: %v", err)
	}
	if len(raw) < len(magic) {
		return nil, corrupt("truncated magic (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[:len(magic)], magic[:]) {
		return nil, corrupt("bad magic %q", raw[:len(magic)])
	}
	r := &reader{buf: raw, off: len(magic)}

	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, corrupt("unsupported format version %d", ver)
	}
	var a Archive
	h := &a.Header
	uuid, _ := r.u64()
	image, _ := r.u32()
	from, _ := r.u32()
	to, _ := r.u32()
	seq, _ := r.u64()
	chunkSize, _ := r.u32()
	imageSize, _ := r.u64()
	span, err := r.u64()
	if err != nil {
		return nil, err
	}
	h.SourceUUID = uuid
	h.Image = blob.ID(image)
	h.From = blob.Version(from)
	h.To = blob.Version(to)
	h.Seq = seq
	h.ChunkSize = int32(chunkSize)
	h.ImageSize = int64(imageSize)
	h.Span = int64(span)
	hs := fnv.New64a()
	hs.Write(raw[:r.off])
	want, err := r.u64()
	if err != nil {
		return nil, err
	}
	if want != hs.Sum64() {
		return nil, corrupt("header checksum mismatch")
	}

	for _, kind := range []uint32{sectionVersions, sectionNodes, sectionChunks} {
		body, err := r.section(kind)
		if err != nil {
			return nil, err
		}
		switch kind {
		case sectionVersions:
			a.Versions, err = decodeVersions(body)
		case sectionNodes:
			a.Nodes, err = decodeNodes(body)
		case sectionChunks:
			a.Chunks, err = decodeChunks(body)
		}
		if err != nil {
			return nil, err
		}
	}

	as := fnv.New64a()
	as.Write(raw[:r.off])
	want, err = r.u64()
	if err != nil {
		return nil, err
	}
	if want != as.Sum64() {
		return nil, corrupt("archive checksum mismatch")
	}
	if r.off != len(raw) {
		return nil, corrupt("%d trailing bytes after trailer", len(raw)-r.off)
	}
	a.Size = int64(len(raw))
	return &a, nil
}

// section reads one section envelope, verifies its kind and body
// checksum, and returns the body.
func (r *reader) section(wantKind uint32) ([]byte, error) {
	kind, err := r.u32()
	if err != nil {
		return nil, err
	}
	if kind != wantKind {
		return nil, corrupt("section kind %d, expected %d", kind, wantKind)
	}
	n, err := r.u64()
	if err != nil {
		return nil, err
	}
	if n > maxSectionLen {
		return nil, corrupt("section %d length %d exceeds limit", kind, n)
	}
	body, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	bs := fnv.New64a()
	bs.Write(body)
	want, err := r.u64()
	if err != nil {
		return nil, err
	}
	if want != bs.Sum64() {
		return nil, corrupt("section %d checksum mismatch", kind)
	}
	return body, nil
}

func decodeVersions(body []byte) ([]VersionRecord, error) {
	r := &reader{buf: body}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	const recSize = 4 + 1 + 8
	if uint64(count)*recSize != uint64(len(body)-r.off) {
		return nil, corrupt("version count %d disagrees with section length %d", count, len(body))
	}
	recs := make([]VersionRecord, count)
	for i := range recs {
		v, _ := r.u32()
		flags, _ := r.u8()
		root, err := r.u64()
		if err != nil {
			return nil, err
		}
		if flags > 1 {
			return nil, corrupt("version record %d: unknown flags %#x", i, flags)
		}
		recs[i] = VersionRecord{Version: blob.Version(v), Retired: flags == 1, Root: blob.NodeRef(root)}
		if recs[i].Retired && recs[i].Root != 0 {
			return nil, corrupt("retired version %d carries a root", recs[i].Version)
		}
	}
	return recs, nil
}

func decodeNodes(body []byte) ([]NodeRecord, error) {
	r := &reader{buf: body}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	const recSize = 6 * 8
	if uint64(count)*recSize != uint64(len(body)-r.off) {
		return nil, corrupt("node count %d disagrees with section length %d", count, len(body))
	}
	recs := make([]NodeRecord, count)
	for i := range recs {
		ref, _ := r.u64()
		lo, _ := r.u64()
		hi, _ := r.u64()
		left, _ := r.u64()
		right, _ := r.u64()
		chunk, err := r.u64()
		if err != nil {
			return nil, err
		}
		n := blob.TreeNode{
			Lo: int64(lo), Hi: int64(hi),
			Left: blob.NodeRef(left), Right: blob.NodeRef(right),
			Chunk: blob.ChunkKey(chunk),
		}
		if ref == 0 || n.Lo < 0 || n.Hi <= n.Lo {
			return nil, corrupt("node record %d: invalid ref %d or range [%d,%d)", i, ref, n.Lo, n.Hi)
		}
		if n.Leaf() && (n.Left != 0 || n.Right != 0) {
			return nil, corrupt("node record %d: leaf with children", i)
		}
		if !n.Leaf() && n.Chunk != 0 {
			return nil, corrupt("node record %d: inner node with chunk", i)
		}
		recs[i] = NodeRecord{Ref: blob.NodeRef(ref), Node: n}
	}
	return recs, nil
}

func decodeChunks(body []byte) ([]ChunkRecord, error) {
	r := &reader{buf: body}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Chunk records are variable-length (real payloads inline their
	// bytes), so the count is sanity-bounded by the minimum record
	// size and the exact fit is checked after the last record.
	const minRec = 8 + 4 + 8 + 1 + 8
	if uint64(count)*minRec > uint64(len(body)-r.off) {
		return nil, corrupt("chunk count %d disagrees with section length %d", count, len(body))
	}
	recs := make([]ChunkRecord, count)
	for i := range recs {
		key, _ := r.u64()
		size, _ := r.u32()
		tag, _ := r.u64()
		flags, _ := r.u8()
		digest, err := r.u64()
		if err != nil {
			return nil, err
		}
		if flags > 1 {
			return nil, corrupt("chunk record %d: unknown flags %#x", i, flags)
		}
		if key == 0 || int32(size) < 0 {
			return nil, corrupt("chunk record %d: invalid key %d or size %d", i, key, int32(size))
		}
		p := blob.Payload{Size: int32(size), Tag: tag}
		if flags == 1 {
			data, err := r.take(int(int32(size)))
			if err != nil {
				return nil, err
			}
			p.Data = data
			if p.Size == 0 {
				// Real() is Data != nil; a zero-length real payload
				// must keep a non-nil slice through the round trip.
				p.Data = []byte{}
			}
		}
		if payloadDigest(p) != digest {
			return nil, corrupt("chunk record %d (key %d): payload digest mismatch", i, key)
		}
		recs[i] = ChunkRecord{Key: blob.ChunkKey(key), Payload: p, Digest: digest}
	}
	if r.off != len(body) {
		return nil, corrupt("%d trailing bytes in chunk section", len(body)-r.off)
	}
	return recs, nil
}
