// Package workloads provides the application-level workloads of the
// paper's evaluation: a Bonnie++-style local I/O benchmark (§5.4) and
// the Monte Carlo π estimation application (§5.5).
package workloads
