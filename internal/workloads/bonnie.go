package workloads

import "blobvfs/internal/localio"

// BonnieConfig mirrors the setup of §5.4: 800 MB written, read back
// and overwritten in 8 KB blocks, plus seek/create/delete phases.
type BonnieConfig struct {
	TotalBytes int64
	BlockSize  int64
	Seeks      int
	Files      int
}

// DefaultBonnieConfig returns the paper's parameters.
func DefaultBonnieConfig() BonnieConfig {
	return BonnieConfig{
		TotalBytes: 800 << 20,
		BlockSize:  8 << 10,
		Seeks:      8000,
		Files:      16384,
	}
}

// BonnieResult reports sustained rates the way Bonnie++ does.
type BonnieResult struct {
	BlockWriteKBps int64 // sequential block writes
	BlockReadKBps  int64 // sequential block reads of written data
	BlockRewrKBps  int64 // block overwrite (read-modify-write)
	SeeksPerSec    int64
	CreatesPerSec  int64
	DeletesPerSec  int64
}

// RunBonnie drives the benchmark against a local I/O path model and
// returns the sustained rates.
func RunBonnie(p *localio.Path, cfg BonnieConfig) BonnieResult {
	blocks := cfg.TotalBytes / cfg.BlockSize
	rate := func(bytes int64, secs float64) int64 {
		if secs <= 0 {
			return 0
		}
		return int64(float64(bytes) / secs / 1024)
	}
	ops := func(n int, secs float64) int64 {
		if secs <= 0 {
			return 0
		}
		return int64(float64(n) / secs)
	}

	p.Reset()
	for i := int64(0); i < blocks; i++ {
		p.WriteBlock(cfg.BlockSize)
	}
	wSecs := p.Now()

	p.Reset()
	for i := int64(0); i < blocks; i++ {
		p.ReadBlock(cfg.BlockSize)
	}
	rSecs := p.Now()

	p.Reset()
	for i := int64(0); i < blocks; i++ {
		p.OverwriteBlock(cfg.BlockSize)
	}
	oSecs := p.Now()

	p.Reset()
	for i := 0; i < cfg.Seeks; i++ {
		p.Seek()
	}
	sSecs := p.Now()

	p.Reset()
	for i := 0; i < cfg.Files; i++ {
		p.CreateFile()
	}
	cSecs := p.Now()

	p.Reset()
	for i := 0; i < cfg.Files; i++ {
		p.DeleteFile()
	}
	dSecs := p.Now()

	return BonnieResult{
		BlockWriteKBps: rate(cfg.TotalBytes, wSecs),
		BlockReadKBps:  rate(cfg.TotalBytes, rSecs),
		BlockRewrKBps:  rate(cfg.TotalBytes, oSecs),
		SeeksPerSec:    ops(cfg.Seeks, sSecs),
		CreatesPerSec:  ops(cfg.Files, cSecs),
		DeletesPerSec:  ops(cfg.Files, dSecs),
	}
}
