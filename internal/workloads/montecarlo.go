package workloads

import (
	"blobvfs/internal/cluster"
	"blobvfs/internal/vmmodel"
)

// MonteCarloConfig describes the π-estimation application of §5.5:
// loosely coupled workers, each alternating CPU-bound sampling with
// saving intermediate results into a temporary file inside the VM
// image (~10 MB per instance).
type MonteCarloConfig struct {
	// ComputeSeconds is the total CPU time each worker needs.
	ComputeSeconds float64
	// SaveEvery is the CPU time between intermediate saves.
	SaveEvery float64
	// SaveBytes is the size of each intermediate result write.
	SaveBytes int64
	// SaveOffset is where in the image the temporary file lives.
	SaveOffset int64
}

// DefaultMonteCarloConfig returns the paper's setup (≈1000 s of total
// computation across phases, ≈10 MB state per instance).
func DefaultMonteCarloConfig() MonteCarloConfig {
	return MonteCarloConfig{
		ComputeSeconds: 1000,
		SaveEvery:      100,
		SaveBytes:      10 << 20,
		SaveOffset:     1 << 30, // scratch area deep in the 2 GB image
	}
}

// RunMonteCarloPhase runs `seconds` of one worker's computation on its
// VM: sampling (CPU) interleaved with intermediate-result writes. It
// is resumable: the caller tracks how many seconds have been executed.
func RunMonteCarloPhase(ctx *cluster.Ctx, disk vmmodel.VirtualDisk, cfg MonteCarloConfig, seconds float64) error {
	done := 0.0
	for done < seconds {
		step := cfg.SaveEvery
		if done+step > seconds {
			step = seconds - done
		}
		ctx.Compute(step)
		done += step
		if err := disk.Write(ctx, cfg.SaveOffset, cfg.SaveBytes); err != nil {
			return err
		}
	}
	return nil
}

// EstimatePi is the actual computation the workers perform, provided
// so the examples run a real Monte Carlo estimation rather than a
// stub: n pseudo-random points, returning the π estimate. The sampler
// is a small deterministic LCG so results are reproducible.
func EstimatePi(n int, seed uint64) float64 {
	if n <= 0 {
		return 0
	}
	state := seed*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	in := 0
	for i := 0; i < n; i++ {
		x, y := next(), next()
		if x*x+y*y <= 1 {
			in++
		}
	}
	return 4 * float64(in) / float64(n)
}
