package workloads

import (
	"math"
	"testing"

	"blobvfs/internal/cluster"
	"blobvfs/internal/localio"
)

func TestBonnieShapeMatchesPaper(t *testing.T) {
	// The qualitative claims of §5.4: reads equal, writes/overwrites
	// roughly double for the mirror path, ops/s lower for the mirror
	// path with the largest gap on deletions.
	r := RunBonnie(localio.DirectPath(), DefaultBonnieConfig())
	m := RunBonnie(localio.MirrorPath(), DefaultBonnieConfig())

	readRatio := float64(m.BlockReadKBps) / float64(r.BlockReadKBps)
	if readRatio < 0.85 || readRatio > 1.15 {
		t.Fatalf("read ratio %.2f, want ~1 (reads equal)", readRatio)
	}
	writeRatio := float64(m.BlockWriteKBps) / float64(r.BlockWriteKBps)
	if writeRatio < 1.5 || writeRatio > 2.5 {
		t.Fatalf("write ratio %.2f, want ~2 (mmap write-back)", writeRatio)
	}
	if m.SeeksPerSec >= r.SeeksPerSec {
		t.Fatal("mirror path seeks not slower")
	}
	if m.DeletesPerSec >= r.DeletesPerSec {
		t.Fatal("mirror path deletes not slower")
	}
	delGap := float64(m.DeletesPerSec) / float64(r.DeletesPerSec)
	creatGap := float64(m.CreatesPerSec) / float64(r.CreatesPerSec)
	if delGap >= creatGap {
		t.Fatalf("delete gap %.2f not worse than create gap %.2f", delGap, creatGap)
	}
}

func TestBonnieAbsoluteScale(t *testing.T) {
	// Keep the calibration in the paper's ballpark (Fig. 6 axes are
	// 0..500000 KB/s; local write ~230 MB/s, mirror write ~450 MB/s).
	r := RunBonnie(localio.DirectPath(), DefaultBonnieConfig())
	m := RunBonnie(localio.MirrorPath(), DefaultBonnieConfig())
	if r.BlockWriteKBps < 150e3 || r.BlockWriteKBps > 350e3 {
		t.Fatalf("local BlockW = %d KB/s, want 150k-350k", r.BlockWriteKBps)
	}
	if m.BlockWriteKBps < 350e3 || m.BlockWriteKBps > 600e3 {
		t.Fatalf("mirror BlockW = %d KB/s, want 350k-600k", m.BlockWriteKBps)
	}
	if r.SeeksPerSec < 20e3 || r.SeeksPerSec > 45e3 {
		t.Fatalf("local seeks = %d /s, want 20k-45k", r.SeeksPerSec)
	}
}

func TestMonteCarloPhaseTiming(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(1))
	cfg := MonteCarloConfig{ComputeSeconds: 100, SaveEvery: 30, SaveBytes: 1 << 20, SaveOffset: 0}
	var elapsed float64
	fab.Run(func(ctx *cluster.Ctx) {
		disk := &fakeDisk{size: 1 << 30}
		if err := RunMonteCarloPhase(ctx, disk, cfg, 100); err != nil {
			t.Fatal(err)
		}
		elapsed = ctx.Now()
		if disk.writes != 4 { // saves at 30, 60, 90, 100
			t.Fatalf("saves = %d, want 4", disk.writes)
		}
	})
	if elapsed < 100 {
		t.Fatalf("phase took %v < 100 s of compute", elapsed)
	}
}

func TestMonteCarloPhaseResumable(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(1))
	cfg := MonteCarloConfig{ComputeSeconds: 100, SaveEvery: 40, SaveBytes: 1 << 10, SaveOffset: 0}
	fab.Run(func(ctx *cluster.Ctx) {
		disk := &fakeDisk{size: 1 << 20}
		if err := RunMonteCarloPhase(ctx, disk, cfg, 50); err != nil {
			t.Fatal(err)
		}
		if err := RunMonteCarloPhase(ctx, disk, cfg, 50); err != nil {
			t.Fatal(err)
		}
		if ctx.Now() < 100 {
			t.Fatalf("two halves took %v < 100 s", ctx.Now())
		}
	})
}

func TestEstimatePiConverges(t *testing.T) {
	got := EstimatePi(2_000_000, 12345)
	if math.Abs(got-math.Pi) > 0.01 {
		t.Fatalf("EstimatePi = %v, want within 0.01 of π", got)
	}
	if EstimatePi(0, 1) != 0 {
		t.Fatal("EstimatePi(0) != 0")
	}
	if EstimatePi(1000, 7) != EstimatePi(1000, 7) {
		t.Fatal("EstimatePi not deterministic")
	}
}

type fakeDisk struct {
	size   int64
	writes int
}

func (d *fakeDisk) Read(*cluster.Ctx, int64, int64) error { return nil }
func (d *fakeDisk) Write(*cluster.Ctx, int64, int64) error {
	d.writes++
	return nil
}
func (d *fakeDisk) Size() int64 { return d.size }
