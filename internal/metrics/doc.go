// Package metrics provides the small statistics and table-formatting
// helpers the experiment harness uses to print the paper's figures as
// text series.
package metrics
