package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	want := math.Sqrt(1.25)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev, want)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("Summarize(nil) = %+v", z)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip degenerate inputs
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile(nil) not NaN")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	for i := 1; i <= 3; i++ {
		a.Add(float64(i), float64(i*10))
		b.Add(float64(i), float64(i*100))
	}
	tb := FromSeries("title", "x", "%.1f", a, b)
	out := tb.String()
	if !strings.Contains(out, "# title") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("missing columns:\n%s", out)
	}
	if !strings.Contains(out, "30.0") || !strings.Contains(out, "300.0") {
		t.Fatalf("missing values:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 3 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableMismatchedSeriesLengths(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(1, 10)
	a.Add(2, 20)
	b := &Series{Name: "b"}
	b.Add(1, 1)
	tb := FromSeries("t", "x", "%.0f", a, b)
	if !strings.Contains(tb.String(), "-") {
		t.Fatalf("missing placeholder for short series:\n%s", tb.String())
	}
}

func TestAddRowAlignment(t *testing.T) {
	tb := &Table{Columns: []string{"col", "value"}}
	tb.AddRow("x", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The "value" column must start at the same offset on each line.
	idx := strings.Index(lines[1], "1")
	idx2 := strings.Index(lines[2], "22")
	if idx != idx2 {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}
