package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary aggregates a sample set.
type Summary struct {
	N              int
	Mean, Min, Max float64
	StdDev         float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var varsum float64
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	s.StdDev = math.Sqrt(varsum / float64(len(xs)))
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-
// rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Series is one plotted line of a figure: y = f(x).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// FromSeries builds a table with one x column and one column per
// series, aligned by x (series must share their X grid).
func FromSeries(title, xName string, format string, series ...*Series) *Table {
	t := &Table{Title: title, Columns: []string{xName}}
	for _, s := range series {
		t.Columns = append(t.Columns, s.Name)
	}
	if len(series) == 0 {
		return t
	}
	for i := range series[0].X {
		row := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf(format, s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
