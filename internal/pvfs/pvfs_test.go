package pvfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"blobvfs/internal/cluster"
)

func servers(n int) []cluster.NodeID {
	out := make([]cluster.NodeID, n)
	for i := range out {
		out[i] = cluster.NodeID(i)
	}
	return out
}

func TestCreateOpenReadWrite(t *testing.T) {
	fab := cluster.NewLive(4)
	fs := New(servers(4), 64<<10)
	fab.Run(func(ctx *cluster.Ctx) {
		f, err := fs.Create(ctx, "img", 1<<20, true)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{7}, 300<<10)
		if err := f.WriteAt(ctx, data, 100<<10, int64(len(data))); err != nil {
			t.Fatal(err)
		}
		g, err := fs.Open(ctx, "img")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := g.ReadAt(ctx, got, 100<<10, int64(len(data))); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("read != written")
		}
	})
}

func TestErrors(t *testing.T) {
	fab := cluster.NewLive(2)
	fs := New(servers(2), 4<<10)
	fab.Run(func(ctx *cluster.Ctx) {
		if _, err := fs.Open(ctx, "missing"); err == nil {
			t.Error("open of missing file succeeded")
		}
		f, _ := fs.Create(ctx, "a", 1000, true)
		if _, err := fs.Create(ctx, "a", 1000, true); err == nil {
			t.Error("duplicate create succeeded")
		}
		if err := f.ReadAt(ctx, make([]byte, 10), 995, 10); err == nil {
			t.Error("read past end succeeded")
		}
		if err := f.WriteAt(ctx, nil, -1, 5); err == nil {
			t.Error("negative offset succeeded")
		}
		if err := f.ReadAt(ctx, make([]byte, 4), 0, 10); err == nil {
			t.Error("short buffer accepted")
		}
		syn, _ := fs.Create(ctx, "s", 1000, false)
		if err := syn.ReadAt(ctx, make([]byte, 10), 0, 10); err == nil {
			t.Error("data read on synthetic file succeeded")
		}
		if err := syn.ReadAt(ctx, nil, 0, 10); err != nil {
			t.Errorf("cost-only read failed: %v", err)
		}
	})
}

func TestStripingDistributesLoad(t *testing.T) {
	// Reading a full file must touch every server roughly evenly: with
	// 16 KiB stripes (above the fabric's small-payload cutoff, so each
	// response occupies the flow network), 64 stripes over 4 servers =
	// 16 responses of 16 KiB from each server's uplink.
	fab := cluster.NewSim(cluster.DefaultConfig(5))
	fs := New(servers(4), 16<<10)
	fab.Run(func(ctx *cluster.Ctx) {
		// Read from node 4, which is not a server, so every stripe
		// request crosses the network.
		done := ctx.Go("reader", 4, func(cc *cluster.Ctx) {
			f, err := fs.Create(cc, "img", 1<<20, false)
			if err != nil {
				t.Error(err)
				return
			}
			if err := f.ReadAt(cc, nil, 0, 1<<20); err != nil {
				t.Error(err)
			}
		})
		ctx.Wait(done)
	})
	// All four server uplinks must have carried ~256 KiB of payload.
	for i := 0; i < 4; i++ {
		carried := fab.Uplink(cluster.NodeID(i)).TotalBytes
		if carried < 250<<10 || carried > 270<<10 {
			t.Fatalf("server %d uplink carried %.0f bytes, want ~262144 (even striping)", i, carried)
		}
	}
}

func TestSmallReadsPayPerRequest(t *testing.T) {
	// The baseline property the paper leans on: k scattered small reads
	// cost k round trips (no prefetch). Verify via virtual time.
	cfg := cluster.DefaultConfig(3)
	fab := cluster.NewSim(cfg)
	fs := New(servers(2), 256<<10)
	var elapsed float64
	const k = 100
	fab.Run(func(ctx *cluster.Ctx) {
		f, _ := fs.Create(ctx, "img", 64<<20, false)
		start := ctx.Now()
		for i := 0; i < k; i++ {
			// 4 KiB reads scattered one per stripe.
			if err := f.ReadAt(ctx, nil, int64(i)*256<<10, 4<<10); err != nil {
				t.Fatal(err)
			}
		}
		elapsed = ctx.Now() - start
	})
	perReq := cfg.RTT + cfg.ReqOverhead
	if elapsed < float64(k)*perReq {
		t.Fatalf("elapsed %v < %v: scattered reads did not pay per-request cost", elapsed, float64(k)*perReq)
	}
}

func TestReadMatchesReferenceUnderRandomOps(t *testing.T) {
	type op struct {
		Off, Len uint16
		Write    bool
		Seed     byte
	}
	const size = 32 << 10
	f := func(ops []op, stripePow uint8) bool {
		stripe := 1 << (stripePow%5 + 9) // 512..8192
		fab := cluster.NewLive(3)
		fs := New(servers(3), stripe)
		ok := true
		fab.Run(func(ctx *cluster.Ctx) {
			file, err := fs.Create(ctx, "f", size, true)
			if err != nil {
				ok = false
				return
			}
			model := make([]byte, size)
			for _, o := range ops {
				off := int64(o.Off) % size
				l := int64(o.Len)%5000 + 1
				if off+l > size {
					l = size - off
				}
				if o.Write {
					data := bytes.Repeat([]byte{o.Seed | 1}, int(l))
					if err := file.WriteAt(ctx, data, off, l); err != nil {
						ok = false
						return
					}
					copy(model[off:off+l], data)
				} else {
					got := make([]byte, l)
					if err := file.ReadAt(ctx, got, off, l); err != nil {
						ok = false
						return
					}
					if !bytes.Equal(got, model[off:off+l]) {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
