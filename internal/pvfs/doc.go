// Package pvfs models the baseline distributed file system of the
// paper's evaluation (§5.2): a PVFS-style parallel file system that
// stripes file contents round-robin over server nodes and uses a
// distributed metadata scheme (no central metadata bottleneck).
//
// The defining differences from the blob store are that pvfs has no
// versioning (files are mutable in place) and that reads fetch exactly
// the requested byte range from each stripe server — there is no
// chunk-granular prefetching, so scattered small reads pay a full
// request round-trip each. Those two properties are what the paper's
// qcow2-over-PVFS baseline inherits.
package pvfs
