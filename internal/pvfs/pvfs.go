package pvfs

import (
	"fmt"
	"hash/fnv"
	"sync"

	"blobvfs/internal/cluster"
)

// FS is a deployed PVFS instance.
type FS struct {
	servers []cluster.NodeID
	stripe  int64

	mu    sync.Mutex
	files map[string]*fileMeta
}

type fileMeta struct {
	name string
	size int64
	home int    // index of the metadata server for this file
	data []byte // nil for synthetic files
}

// New deploys a file system striping over the given servers with the
// given stripe size in bytes.
func New(servers []cluster.NodeID, stripe int) *FS {
	if len(servers) == 0 {
		panic("pvfs: need at least one server")
	}
	if stripe <= 0 {
		panic("pvfs: stripe must be positive")
	}
	return &FS{servers: servers, stripe: int64(stripe), files: make(map[string]*fileMeta)}
}

// Stripe returns the stripe size in bytes.
func (fs *FS) Stripe() int { return int(fs.stripe) }

// metaServer returns the node handling a file's metadata (distributed
// by name hash).
func (fs *FS) metaServer(name string) cluster.NodeID {
	h := fnv.New32a()
	h.Write([]byte(name))
	return fs.servers[int(h.Sum32())%len(fs.servers)]
}

// stripeServer returns the node storing stripe index si of a file.
func (fs *FS) stripeServer(f *fileMeta, si int64) cluster.NodeID {
	return fs.servers[(int64(f.home)+si)%int64(len(fs.servers))]
}

// Create makes a file of fixed size. When real is true the file carries
// actual bytes (initially zero); synthetic files only track geometry.
func (fs *FS) Create(ctx *cluster.Ctx, name string, size int64, real bool) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("pvfs: negative size")
	}
	ctx.RPC(fs.metaServer(name), 64, 16)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("pvfs: file %q exists", name)
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	fm := &fileMeta{name: name, size: size, home: int(h.Sum32()) % len(fs.servers)}
	if real {
		fm.data = make([]byte, size)
	}
	fs.files[name] = fm
	return &File{fs: fs, meta: fm}, nil
}

// Open returns a handle to an existing file, charging one metadata RPC;
// geometry is cached in the handle afterwards.
func (fs *FS) Open(ctx *cluster.Ctx, name string) (*File, error) {
	ctx.RPC(fs.metaServer(name), 32, 48)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fm, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("pvfs: file %q not found", name)
	}
	return &File{fs: fs, meta: fm}, nil
}

// Exists reports (without cost) whether a file exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// File is an open handle.
type File struct {
	fs   *FS
	meta *fileMeta
}

// Size returns the file size.
func (f *File) Size() int64 { return f.meta.size }

// Name returns the file name.
func (f *File) Name() string { return f.meta.name }

// segment is one per-server piece of a byte range.
type segment struct {
	server cluster.NodeID
	off, n int64 // file-relative
}

// segments splits [off, off+n) by stripe boundary.
func (f *File) segments(off, n int64) []segment {
	var segs []segment
	for n > 0 {
		si := off / f.fs.stripe
		in := off % f.fs.stripe
		take := f.fs.stripe - in
		if take > n {
			take = n
		}
		segs = append(segs, segment{server: f.fs.stripeServer(f.meta, si), off: off, n: take})
		off += take
		n -= take
	}
	return segs
}

// ReadAt reads [off, off+n) into p (which may be nil for synthetic
// cost-only reads; otherwise len(p) must be ≥ n). Every touched stripe
// costs one request to its server — requested bytes only, no prefetch.
// Stripes are fetched in parallel, as PVFS clients do.
func (f *File) ReadAt(ctx *cluster.Ctx, p []byte, off, n int64) error {
	if err := f.check(p, off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	segs := f.segments(off, n)
	f.parallel(ctx, "pvfs-read", len(segs), func(cc *cluster.Ctx, i int) {
		s := segs[i]
		cc.DiskRead(s.server, s.n)
		cc.RPC(s.server, 32, s.n)
	})
	if p != nil {
		copy(p[:n], f.meta.data[off:off+n])
	}
	return nil
}

// WriteAt writes [off, off+n) from p (nil for synthetic). Each touched
// stripe costs one request and one disk write on its server.
func (f *File) WriteAt(ctx *cluster.Ctx, p []byte, off, n int64) error {
	if err := f.check(p, off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	segs := f.segments(off, n)
	f.parallel(ctx, "pvfs-write", len(segs), func(cc *cluster.Ctx, i int) {
		s := segs[i]
		cc.RPC(s.server, s.n+32, 16)
		cc.DiskWrite(s.server, s.n)
	})
	if p != nil {
		copy(f.meta.data[off:off+n], p[:n])
	}
	return nil
}

func (f *File) check(p []byte, off, n int64) error {
	if off < 0 || n < 0 || off+n > f.meta.size {
		return fmt.Errorf("pvfs: access [%d,%d) outside file %q of size %d", off, off+n, f.meta.name, f.meta.size)
	}
	if p != nil && f.meta.data == nil {
		return fmt.Errorf("pvfs: data access on synthetic file %q", f.meta.name)
	}
	if p != nil && int64(len(p)) < n {
		return fmt.Errorf("pvfs: buffer of %d bytes for %d-byte access", len(p), n)
	}
	return nil
}

// parallel fans out over at most 16 concurrent stripe requests (the
// client's connection window), deterministically striped.
func (f *File) parallel(ctx *cluster.Ctx, name string, n int, fn func(cc *cluster.Ctx, i int)) {
	const window = 16
	if n <= 1 {
		if n == 1 {
			fn(ctx, 0)
		}
		return
	}
	workers := window
	if n < workers {
		workers = n
	}
	tasks := make([]cluster.Task, 0, workers)
	for w := 0; w < workers; w++ {
		w := w
		tasks = append(tasks, ctx.Go(name, ctx.Node(), func(cc *cluster.Ctx) {
			for i := w; i < n; i += workers {
				fn(cc, i)
			}
		}))
	}
	ctx.WaitAll(tasks)
}
