// Package nfs models the centralized repository of the prepropagation
// baseline (§5.2): a single file server with one disk and one NIC,
// from which initial VM images are broadcast. It deliberately has no
// striping and no versioning — that is the point of the baseline.
package nfs
