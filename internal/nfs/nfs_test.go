package nfs

import (
	"bytes"
	"testing"

	"blobvfs/internal/cluster"
)

func TestPutGetRoundTrip(t *testing.T) {
	fab := cluster.NewLive(3)
	s := NewServer(0)
	fab.Run(func(ctx *cluster.Ctx) {
		data := bytes.Repeat([]byte{0x5A}, 4096)
		if err := s.Put(ctx, "img", 4096, data); err != nil {
			t.Fatal(err)
		}
		size, err := s.Size(ctx, "img")
		if err != nil || size != 4096 {
			t.Fatalf("Size = %d,%v; want 4096", size, err)
		}
		got := make([]byte, 1000)
		if err := s.ReadAt(ctx, "img", got, 100, 1000); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[100:1100]) {
			t.Fatal("read data mismatch")
		}
	})
}

func TestErrors(t *testing.T) {
	fab := cluster.NewLive(2)
	s := NewServer(1)
	fab.Run(func(ctx *cluster.Ctx) {
		if err := s.Put(ctx, "bad", 10, []byte{1, 2}); err == nil {
			t.Error("size/data mismatch accepted")
		}
		if _, err := s.Size(ctx, "missing"); err == nil {
			t.Error("Size of missing file succeeded")
		}
		if err := s.ReadAt(ctx, "missing", nil, 0, 1); err == nil {
			t.Error("read of missing file succeeded")
		}
		if err := s.Put(ctx, "syn", 1000, nil); err != nil {
			t.Fatal(err)
		}
		if err := s.ReadAt(ctx, "syn", make([]byte, 10), 0, 10); err == nil {
			t.Error("data read of synthetic file succeeded")
		}
		if err := s.ReadAt(ctx, "syn", nil, 990, 20); err == nil {
			t.Error("read past end succeeded")
		}
		if err := s.ReadAt(ctx, "syn", nil, 0, 1000); err != nil {
			t.Errorf("cost-only read failed: %v", err)
		}
	})
}

func TestCentralServerIsBottleneck(t *testing.T) {
	// N concurrent full reads share the server's disk and uplink:
	// completion must scale ~linearly with N (the pathology that
	// motivates striping in the paper).
	run := func(n int) float64 {
		fab := cluster.NewSim(cluster.DefaultConfig(n + 1))
		s := NewServer(0)
		var last float64
		fab.Run(func(ctx *cluster.Ctx) {
			if err := s.Put(ctx, "img", 50<<20, nil); err != nil {
				t.Fatal(err)
			}
			start := ctx.Now()
			var tasks []cluster.Task
			for i := 1; i <= n; i++ {
				node := cluster.NodeID(i)
				tasks = append(tasks, ctx.Go("reader", node, func(cc *cluster.Ctx) {
					if err := s.ReadAt(cc, "img", nil, 0, 50<<20); err != nil {
						t.Error(err)
					}
					if d := cc.Now() - start; d > last {
						last = d
					}
				}))
			}
			ctx.WaitAll(tasks)
		})
		return last
	}
	t2, t8 := run(2), run(8)
	if t8 < 3*t2 {
		t.Fatalf("t(8)=%v vs t(2)=%v: central server did not bottleneck", t8, t2)
	}
}
