package nfs

import (
	"fmt"
	"sync"

	"blobvfs/internal/cluster"
)

// Server is a central file server on one node.
type Server struct {
	node cluster.NodeID

	mu    sync.Mutex
	files map[string]*file
}

type file struct {
	size int64
	data []byte // nil for synthetic files
}

// NewServer creates a server hosted on the given node.
func NewServer(node cluster.NodeID) *Server {
	return &Server{node: node, files: make(map[string]*file)}
}

// Node returns the hosting node.
func (s *Server) Node() cluster.NodeID { return s.node }

// Put stores a file. A nil data slice with a positive size creates a
// synthetic file (costed but carrying no bytes). Storing charges the
// server's disk.
func (s *Server) Put(ctx *cluster.Ctx, name string, size int64, data []byte) error {
	if data != nil && int64(len(data)) != size {
		return fmt.Errorf("nfs: data length %d != declared size %d", len(data), size)
	}
	ctx.RPC(s.node, size+64, 16)
	ctx.DiskWrite(s.node, size)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = &file{size: size, data: data}
	return nil
}

// Size returns a file's size, charging a small metadata RPC.
func (s *Server) Size(ctx *cluster.Ctx, name string) (int64, error) {
	ctx.RPC(s.node, 32, 16)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("nfs: file %q not found", name)
	}
	return f.size, nil
}

// ReadAt serves [off, off+n) of a file into p (nil for cost-only).
// The server's single disk and NIC are the shared bottleneck.
func (s *Server) ReadAt(ctx *cluster.Ctx, name string, p []byte, off, n int64) error {
	s.mu.Lock()
	f, ok := s.files[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("nfs: file %q not found", name)
	}
	if off < 0 || n < 0 || off+n > f.size {
		return fmt.Errorf("nfs: read [%d,%d) outside %q of size %d", off, off+n, name, f.size)
	}
	if p != nil && f.data == nil {
		return fmt.Errorf("nfs: data read on synthetic file %q", name)
	}
	ctx.DiskRead(s.node, n)
	ctx.RPC(s.node, 32, n)
	if p != nil {
		copy(p[:n], f.data[off:off+n])
	}
	return nil
}
