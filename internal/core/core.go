// Package core is the library's public façade: a virtual file system
// for VM images that ties together the versioning blob store
// (internal/blob), the per-node mirroring modules (internal/mirror)
// and a name registry, behind an API shaped like the paper's cloud
// integration (Fig. 1): upload and download images, mirror them on
// compute nodes, CLONE and COMMIT snapshots.
//
// A minimal session looks like:
//
//	fab := cluster.NewLive(8)
//	store := core.New(core.Options{Fabric: fab})
//	fab.Run(func(ctx *cluster.Ctx) {
//		ref, _ := store.UploadBytes(ctx, "debian", imageBytes)
//		img, _ := store.Open(ctx, ref, true)   // raw file for the hypervisor
//		img.WriteAt(ctx, patch, off)           // local modification
//		snap, _ := store.Snapshot(ctx, img)    // CLONE+COMMIT → standalone image
//		store.Tag("debian-configured", snap)
//	})
package core

import (
	"fmt"
	"sync"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/mirror"
)

// Ref names one immutable image snapshot: a blob lineage and a version
// within it. Every Ref is a standalone raw image regardless of how
// much storage it physically shares with others.
type Ref struct {
	Blob    blob.ID
	Version blob.Version
}

// Options configures a Store.
type Options struct {
	// Fabric is the cluster to deploy on (live or simulated).
	Fabric cluster.Fabric
	// ProviderNodes lists the nodes whose local disks form the storage
	// pool; defaults to all nodes (§3.1.1: aggregate everything).
	ProviderNodes []cluster.NodeID
	// ManagerNode hosts the version manager; defaults to node 0.
	ManagerNode cluster.NodeID
	// Replicas is the chunk replication degree; defaults to 1.
	Replicas int
	// ChunkSize is the stripe unit; defaults to 256 KB (§5.2).
	ChunkSize int
	// Mirror configures the mirroring modules.
	Mirror mirror.Config
}

// Store is the image repository plus the per-node mirroring modules.
// It is safe for concurrent use from multiple activities.
type Store struct {
	opts Options
	sys  *blob.System

	mu      sync.Mutex
	names   map[string]Ref
	modules map[cluster.NodeID]*mirror.Module
}

// New deploys a Store on a fabric.
func New(opts Options) *Store {
	if opts.Fabric == nil {
		panic("core: Options.Fabric is required")
	}
	if opts.ChunkSize == 0 {
		opts.ChunkSize = 256 << 10
	}
	if opts.Replicas == 0 {
		opts.Replicas = 1
	}
	if opts.ProviderNodes == nil {
		for i := 0; i < opts.Fabric.Nodes(); i++ {
			opts.ProviderNodes = append(opts.ProviderNodes, cluster.NodeID(i))
		}
	}
	if opts.Mirror == (mirror.Config{}) {
		opts.Mirror = mirror.DefaultConfig()
	}
	return &Store{
		opts:    opts,
		sys:     blob.NewSystem(opts.ProviderNodes, opts.ManagerNode, opts.Replicas),
		names:   make(map[string]Ref),
		modules: make(map[cluster.NodeID]*mirror.Module),
	}
}

// System exposes the underlying blob system (for advanced callers and
// the experiment harness).
func (s *Store) System() *blob.System { return s.sys }

// module returns the mirroring module of a node, creating it on first
// use; each module owns a blob client and thus a metadata cache.
func (s *Store) module(node cluster.NodeID) *mirror.Module {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.modules[node]
	if !ok {
		m = mirror.NewModule(node, blob.NewClient(s.sys), s.opts.Mirror)
		s.modules[node] = m
	}
	return m
}

// UploadBytes stores data as a new image and returns its Ref,
// registering it under name (empty name skips registration).
func (s *Store) UploadBytes(ctx *cluster.Ctx, name string, data []byte) (Ref, error) {
	if len(data) == 0 {
		return Ref{}, fmt.Errorf("core: empty image")
	}
	c := blob.NewClient(s.sys)
	id, err := c.Create(ctx, int64(len(data)), s.opts.ChunkSize)
	if err != nil {
		return Ref{}, err
	}
	v, err := c.WriteAt(ctx, id, 0, data, 0)
	if err != nil {
		return Ref{}, err
	}
	ref := Ref{Blob: id, Version: v}
	if name != "" {
		s.Tag(name, ref)
	}
	return ref, nil
}

// UploadSynthetic registers an image of the given size whose content
// is synthetic (costed but carrying no bytes); used at simulation
// scale where a 2 GB byte slice per instance would be absurd.
func (s *Store) UploadSynthetic(ctx *cluster.Ctx, name string, size int64) (Ref, error) {
	c := blob.NewClient(s.sys)
	id, err := c.Create(ctx, size, s.opts.ChunkSize)
	if err != nil {
		return Ref{}, err
	}
	v, err := c.WriteFull(ctx, id, 0, uint64(id))
	if err != nil {
		return Ref{}, err
	}
	ref := Ref{Blob: id, Version: v}
	if name != "" {
		s.Tag(name, ref)
	}
	return ref, nil
}

// Tag registers (or moves) a name to a Ref.
func (s *Store) Tag(name string, ref Ref) {
	s.mu.Lock()
	s.names[name] = ref
	s.mu.Unlock()
}

// Resolve looks a name up.
func (s *Store) Resolve(name string) (Ref, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.names[name]
	return ref, ok
}

// Names returns all registered image names.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.names))
	for n := range s.names {
		out = append(out, n)
	}
	return out
}

// Open mirrors an image snapshot on the calling activity's node and
// returns the raw-file view the hypervisor would mount. real selects
// whether actual bytes are materialized.
func (s *Store) Open(ctx *cluster.Ctx, ref Ref, real bool) (*mirror.Image, error) {
	return s.module(ctx.Node()).Open(ctx, ref.Blob, ref.Version, real)
}

// Snapshot persists an open image's local modifications as a new
// standalone snapshot and returns its Ref. The first snapshot of an
// image opened from a shared base CLONEs it into its own lineage
// first, exactly as the middleware of §3.2 does.
func (s *Store) Snapshot(ctx *cluster.Ctx, im *mirror.Image, fresh bool) (Ref, error) {
	if fresh {
		if err := im.Clone(ctx); err != nil {
			return Ref{}, err
		}
	}
	v, err := im.Commit(ctx)
	if err != nil {
		return Ref{}, err
	}
	return Ref{Blob: im.BlobID(), Version: v}, nil
}

// Clone duplicates a snapshot into a new independent lineage without
// opening it (O(1) metadata; no data copied).
func (s *Store) Clone(ctx *cluster.Ctx, ref Ref) (Ref, error) {
	c := blob.NewClient(s.sys)
	id, err := c.Clone(ctx, ref.Blob, ref.Version)
	if err != nil {
		return Ref{}, err
	}
	return Ref{Blob: id, Version: 1}, nil
}

// Download reads a whole snapshot into buf (the cloud client's "get
// image" path). buf must be at least the image size.
func (s *Store) Download(ctx *cluster.Ctx, ref Ref, buf []byte) error {
	c := blob.NewClient(s.sys)
	inf, err := c.Info(ctx, ref.Blob)
	if err != nil {
		return err
	}
	if int64(len(buf)) < inf.Size {
		return fmt.Errorf("core: buffer %d < image size %d", len(buf), inf.Size)
	}
	return c.ReadAt(ctx, ref.Blob, ref.Version, buf[:inf.Size], 0)
}

// Size returns a snapshot's logical size.
func (s *Store) Size(ctx *cluster.Ctx, ref Ref) (int64, error) {
	c := blob.NewClient(s.sys)
	inf, err := c.Info(ctx, ref.Blob)
	if err != nil {
		return 0, err
	}
	return inf.Size, nil
}
