package core

import (
	"bytes"
	"testing"

	"blobvfs/internal/cluster"
)

func img(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*11)
	}
	return b
}

func newStore(nodes int) (*cluster.Live, *Store) {
	fab := cluster.NewLive(nodes)
	return fab, New(Options{Fabric: fab, ChunkSize: 4 << 10})
}

func TestUploadOpenSnapshotDownload(t *testing.T) {
	fab, store := newStore(4)
	fab.Run(func(ctx *cluster.Ctx) {
		base := img(64<<10, 1)
		ref, err := store.UploadBytes(ctx, "debian", base)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := store.Resolve("debian"); !ok || got != ref {
			t.Fatal("name not registered")
		}
		im, err := store.Open(ctx, ref, true)
		if err != nil {
			t.Fatal(err)
		}
		patch := []byte("configured!")
		if _, err := im.WriteAt(ctx, patch, 1000); err != nil {
			t.Fatal(err)
		}
		snap, err := store.Snapshot(ctx, im, true)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Blob == ref.Blob {
			t.Fatal("fresh snapshot did not clone into a new lineage")
		}
		store.Tag("debian-configured", snap)

		// Download the snapshot: base + patch.
		size, err := store.Size(ctx, snap)
		if err != nil || size != 64<<10 {
			t.Fatalf("Size = %d, %v", size, err)
		}
		buf := make([]byte, size)
		if err := store.Download(ctx, snap, buf); err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), base...)
		copy(want[1000:], patch)
		if !bytes.Equal(buf, want) {
			t.Fatal("downloaded snapshot wrong")
		}
		// The original image is untouched.
		if err := store.Download(ctx, ref, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, base) {
			t.Fatal("original image modified")
		}
	})
}

func TestSnapshotWithoutCloneStaysInLineage(t *testing.T) {
	fab, store := newStore(2)
	fab.Run(func(ctx *cluster.Ctx) {
		ref, _ := store.UploadBytes(ctx, "a", img(16<<10, 2))
		im, _ := store.Open(ctx, ref, true)
		if _, err := im.WriteAt(ctx, []byte{9}, 0); err != nil {
			t.Fatal(err)
		}
		snap, err := store.Snapshot(ctx, im, false)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Blob != ref.Blob || snap.Version != ref.Version+1 {
			t.Fatalf("snapshot = %+v, want same blob next version", snap)
		}
	})
}

func TestCloneWithoutOpen(t *testing.T) {
	fab, store := newStore(3)
	fab.Run(func(ctx *cluster.Ctx) {
		ref, _ := store.UploadBytes(ctx, "a", img(16<<10, 3))
		clone, err := store.Clone(ctx, ref)
		if err != nil {
			t.Fatal(err)
		}
		if clone.Blob == ref.Blob {
			t.Fatal("clone did not create a new lineage")
		}
		buf := make([]byte, 16<<10)
		if err := store.Download(ctx, clone, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, img(16<<10, 3)) {
			t.Fatal("clone contents differ")
		}
	})
}

func TestUploadSynthetic(t *testing.T) {
	fab, store := newStore(2)
	fab.Run(func(ctx *cluster.Ctx) {
		ref, err := store.UploadSynthetic(ctx, "big", 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		size, err := store.Size(ctx, ref)
		if err != nil || size != 8<<20 {
			t.Fatalf("Size = %d, %v", size, err)
		}
		im, err := store.Open(ctx, ref, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := im.Read(ctx, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
	})
}

func TestNamesAndTags(t *testing.T) {
	fab, store := newStore(2)
	fab.Run(func(ctx *cluster.Ctx) {
		r1, _ := store.UploadBytes(ctx, "x", img(4096, 1))
		store.Tag("y", r1)
		names := store.Names()
		if len(names) != 2 {
			t.Fatalf("Names = %v", names)
		}
		if _, ok := store.Resolve("z"); ok {
			t.Fatal("unknown name resolved")
		}
		store.Tag("x", Ref{Blob: r1.Blob, Version: r1.Version}) // retag is fine
	})
}

func TestValidation(t *testing.T) {
	fab, store := newStore(2)
	fab.Run(func(ctx *cluster.Ctx) {
		if _, err := store.UploadBytes(ctx, "e", nil); err == nil {
			t.Error("empty upload accepted")
		}
		ref, _ := store.UploadBytes(ctx, "a", img(4096, 1))
		if err := store.Download(ctx, ref, make([]byte, 10)); err == nil {
			t.Error("short download buffer accepted")
		}
		if _, err := store.Size(ctx, Ref{Blob: 99, Version: 1}); err == nil {
			t.Error("unknown ref accepted")
		}
	})
}

func TestDefaultOptions(t *testing.T) {
	fab := cluster.NewLive(5)
	store := New(Options{Fabric: fab})
	fab.Run(func(ctx *cluster.Ctx) {
		ref, err := store.UploadBytes(ctx, "d", img(300<<10, 7))
		if err != nil {
			t.Fatal(err)
		}
		// Default chunk size 256 KB: a 300 KB image occupies 2 chunks.
		inf, err := store.System().VM.Info(ctx, ref.Blob)
		if err != nil {
			t.Fatal(err)
		}
		if inf.ChunkSize != 256<<10 || inf.Chunks() != 2 {
			t.Fatalf("geometry = %+v", inf)
		}
	})
}
