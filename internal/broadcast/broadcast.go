package broadcast

import (
	"math/bits"
	"sort"

	"blobvfs/internal/cluster"
)

// DefaultEffRate is the calibrated per-hop effective throughput in
// bytes/s (see DESIGN.md §6; reproduces the paper's ~750 s broadcast
// of a 2 GB image to 110 nodes).
const DefaultEffRate = 30e6

// Result reports one target's completion.
type Result struct {
	Node cluster.NodeID
	Done float64 // virtual time at which the node has the image on disk
}

// Binomial broadcasts `bytes` from src to every target using a binomial
// tree rooted at src, and returns per-target completion times (sorted
// by node). The source first reads the image from its own disk (the
// NFS server reading the file); every hop transfers the full image and
// persists it on the receiver's disk before forwarding. effRate > 0
// throttles each hop (only meaningful on the sim fabric).
func Binomial(ctx *cluster.Ctx, src cluster.NodeID, targets []cluster.NodeID, bytes int64, effRate float64) []Result {
	order := append([]cluster.NodeID{src}, targets...)
	n := len(order)
	results := make([]Result, 0, len(targets))
	if n == 1 || bytes <= 0 {
		return results
	}
	// The source stages the image from its disk once.
	ctx.DiskRead(src, bytes)

	simFab, _ := ctx.Fabric().(*cluster.Sim)

	resCh := make(chan Result, len(targets))
	var forward func(cc *cluster.Ctx, rank int)
	forward = func(cc *cluster.Ctx, rank int) {
		var tasks []cluster.Task
		for _, cr := range childRanks(rank, n) {
			child := order[cr]
			// Store-and-forward hop: transfer (throttled), then persist.
			if simFab != nil && effRate > 0 {
				throttle := simFab.Net().NewLink("bcast-hop", effRate)
				simFab.TransferVia(cc, order[rank], child, bytes, throttle)
			} else {
				cc.RPC(child, bytes, 16)
			}
			cr := cr
			tasks = append(tasks, cc.Go("bcast-recv", child, func(childCtx *cluster.Ctx) {
				childCtx.DiskWrite(child, bytes)
				resCh <- Result{Node: child, Done: childCtx.Now()}
				forward(childCtx, cr)
			}))
		}
		cc.WaitAll(tasks)
	}
	forward(ctx, 0)
	close(resCh)
	for r := range resCh {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Node < results[j].Node })
	return results
}

// childRanks returns the children of rank i in a binomial tree over
// ranks 0..n-1: rank 0 feeds 1, 2, 4, ...; rank i>0 (first reached at
// round floor(log2 i)+1) feeds i+2^j for j starting above i's highest
// set bit.
func childRanks(i, n int) []int {
	var out []int
	jmin := 0
	if i > 0 {
		jmin = bits.Len(uint(i)) // highest set bit position + 1
	}
	for j := jmin; i+(1<<j) < n; j++ {
		out = append(out, i+(1<<j))
	}
	return out
}

// Control disseminates a small control message of the given size from
// src to every target along the same binomial tree as Binomial. Unlike
// the bulk broadcast there is no store-and-forward persistence: each
// hop is a plain RPC, so the whole dissemination costs O(log n) RPC
// latencies of depth. This is the primitive the p2p chunk-sharing
// layer piggybacks its cohort-membership and chunk-location digests
// on. It returns once every target has received the message.
func Control(ctx *cluster.Ctx, src cluster.NodeID, targets []cluster.NodeID, bytes int64) {
	order := append([]cluster.NodeID{src}, targets...)
	n := len(order)
	if n == 1 || bytes <= 0 {
		return
	}
	var forward func(cc *cluster.Ctx, rank int)
	forward = func(cc *cluster.Ctx, rank int) {
		var tasks []cluster.Task
		for _, cr := range childRanks(rank, n) {
			child := order[cr]
			cc.RPC(child, bytes, 16)
			cr := cr
			tasks = append(tasks, cc.Go("ctl-recv", child, func(childCtx *cluster.Ctx) {
				forward(childCtx, cr)
			}))
		}
		cc.WaitAll(tasks)
	}
	forward(ctx, 0)
}

// Completion returns the latest completion time among results (0 for
// an empty broadcast).
func Completion(results []Result) float64 {
	var max float64
	for _, r := range results {
		if r.Done > max {
			max = r.Done
		}
	}
	return max
}
