package broadcast

import (
	"math"
	"testing"

	"blobvfs/internal/cluster"
)

func nodes(from, to int) []cluster.NodeID {
	var out []cluster.NodeID
	for i := from; i < to; i++ {
		out = append(out, cluster.NodeID(i))
	}
	return out
}

func TestAllTargetsReceive(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(16))
	var results []Result
	fab.Run(func(ctx *cluster.Ctx) {
		results = Binomial(ctx, 0, nodes(1, 16), 100<<20, DefaultEffRate)
	})
	if len(results) != 15 {
		t.Fatalf("results = %d, want 15", len(results))
	}
	seen := map[cluster.NodeID]bool{}
	for _, r := range results {
		if r.Done <= 0 {
			t.Fatalf("node %d done at %v, want > 0", r.Node, r.Done)
		}
		seen[r.Node] = true
	}
	for _, n := range nodes(1, 16) {
		if !seen[n] {
			t.Fatalf("node %d never received the image", n)
		}
	}
}

func TestLogarithmicRounds(t *testing.T) {
	// Store-and-forward binomial: completion grows ~log2(N) hops, so
	// doubling N adds roughly one hop time, far from doubling.
	run := func(n int) float64 {
		fab := cluster.NewSim(cluster.DefaultConfig(n + 1))
		var done float64
		fab.Run(func(ctx *cluster.Ctx) {
			done = Completion(Binomial(ctx, 0, nodes(1, n+1), 1<<30, DefaultEffRate))
		})
		return done
	}
	t8, t64 := run(8), run(64)
	if t64 >= 3*t8 {
		t.Fatalf("t(64)=%v vs t(8)=%v: broadcast not logarithmic", t64, t8)
	}
	if t64 <= t8 {
		t.Fatalf("t(64)=%v <= t(8)=%v: more targets cannot be faster", t64, t8)
	}
}

func TestHopRateThrottle(t *testing.T) {
	// One hop of 300 MB at 30 MB/s effective rate ≈ 10 s transfer plus
	// the receiver's disk write (300 MB at 55 MB/s ≈ 5.45 s) plus the
	// source's initial read.
	cfg := cluster.DefaultConfig(2)
	fab := cluster.NewSim(cfg)
	var done float64
	fab.Run(func(ctx *cluster.Ctx) {
		done = Completion(Binomial(ctx, 0, nodes(1, 2), 300e6, 30e6))
	})
	srcRead := 300e6/cfg.DiskBandwidth + cfg.DiskSeek
	transfer := 300e6 / 30e6
	recvWrite := 300e6/cfg.DiskBandwidth + cfg.DiskSeek
	want := srcRead + transfer + recvWrite
	if math.Abs(done-want) > 0.1 {
		t.Fatalf("one-hop completion %v, want ~%v", done, want)
	}
}

func TestCalibratedScaleMatchesPaper(t *testing.T) {
	// The calibration target from Fig. 4(b): ~2 GB to 110 nodes lands
	// in the many-hundreds of seconds (the paper shows ≈700-800 s).
	fab := cluster.NewSim(cluster.DefaultConfig(111))
	var done float64
	fab.Run(func(ctx *cluster.Ctx) {
		done = Completion(Binomial(ctx, 0, nodes(1, 111), 2<<30, DefaultEffRate))
	})
	if done < 400 || done > 1100 {
		t.Fatalf("broadcast of 2 GB to 110 nodes took %.0f s, want 400-1100 (paper ~750)", done)
	}
}

func TestDegenerateBroadcasts(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(4))
	fab.Run(func(ctx *cluster.Ctx) {
		if got := Binomial(ctx, 0, nil, 1<<20, DefaultEffRate); len(got) != 0 {
			t.Errorf("broadcast to no targets returned %d results", len(got))
		}
		if got := Binomial(ctx, 0, nodes(1, 4), 0, DefaultEffRate); len(got) != 0 {
			t.Errorf("zero-byte broadcast returned %d results", len(got))
		}
	})
	if Completion(nil) != 0 {
		t.Error("Completion(nil) != 0")
	}
}

func TestLiveFabricFallback(t *testing.T) {
	// On the live fabric the broadcast must still deliver (at zero
	// cost) and count traffic: N transfers of the full image.
	fab := cluster.NewLive(8)
	fab.Run(func(ctx *cluster.Ctx) {
		rs := Binomial(ctx, 0, nodes(1, 8), 1000, 0)
		if len(rs) != 7 {
			t.Fatalf("results = %d, want 7", len(rs))
		}
	})
	if tr := fab.NetTraffic(); tr < 7*1000 {
		t.Fatalf("traffic = %d, want >= 7000", tr)
	}
}

func TestControlReachesAllTargets(t *testing.T) {
	// Each of the 7 targets receives the 100-byte message exactly once
	// plus a 16-byte ack: traffic accounts for every tree edge.
	fab := cluster.NewLive(8)
	fab.Run(func(ctx *cluster.Ctx) {
		Control(ctx, 0, nodes(1, 8), 100)
	})
	if tr := fab.NetTraffic(); tr != 7*(100+16) {
		t.Fatalf("traffic = %d, want %d", tr, 7*(100+16))
	}
}

func TestControlLogDepthOnSim(t *testing.T) {
	// 63 targets = 6 rounds of the binomial tree; with small payloads
	// each hop costs RTT + request overhead, so the whole dissemination
	// completes in ~6 hop latencies, far under a sequential fan-out.
	cfg := cluster.DefaultConfig(64)
	fab := cluster.NewSim(cfg)
	fab.Run(func(ctx *cluster.Ctx) {
		Control(ctx, 0, nodes(1, 64), 100)
	})
	hop := cfg.RTT + cfg.ReqOverhead
	if got := fab.Now(); got > 8*hop {
		t.Fatalf("control broadcast took %.4fs, want <= %.4fs (log-depth)", got, 8*hop)
	}
	if got := fab.Now(); got < 6*hop {
		t.Fatalf("control broadcast took %.4fs, faster than 6 tree rounds %.4fs", got, 6*hop)
	}
}

func TestControlDegenerate(t *testing.T) {
	fab := cluster.NewLive(4)
	fab.Run(func(ctx *cluster.Ctx) {
		Control(ctx, 0, nil, 100) // no targets
		Control(ctx, 0, nodes(1, 4), 0)
	})
	if tr := fab.NetTraffic(); tr != 0 {
		t.Fatalf("degenerate control broadcasts moved %d bytes", tr)
	}
}
