// Package broadcast implements the taktuk-style image prepropagation
// of the paper's baseline (§5.2): a binomial broadcast tree following
// the postal model (Bar-Noy & Kipnis), with store-and-forward hops —
// every node fully receives and persists the image before forwarding
// it to its children, one child at a time, as taktuk's adaptive trees
// effectively do for bulk file distribution.
//
// The per-hop effective rate is a calibrated constant (see DESIGN.md
// §6): measured taktuk deployments interleave TCP chain forwarding
// with local disk write-back and reach well below NIC line rate.
package broadcast
