package sim

import (
	"math/rand"
	"testing"
)

// TestCancelReleasesClosure: a canceled or fired event must drop its
// callback immediately — at 10k scale a retained timer closure pins
// mirror and pool state long after the timer is dead.
func TestCancelReleasesClosure(t *testing.T) {
	e := New()

	// Cancel of a pending event strips the closure and recycles.
	ev := e.At(1, func() { t.Error("canceled event fired") })
	e.Cancel(ev)
	if ev.fn != nil {
		t.Error("canceled pending event still holds its closure")
	}
	if len(e.free) != 1 {
		t.Errorf("canceled pending event not recycled: free list has %d entries", len(e.free))
	}

	// A fired event drops its closure when the dispatcher recycles it.
	ev2 := e.At(2, func() {})
	e.Run()
	if ev2.fn != nil {
		t.Error("fired event still holds its closure")
	}

	// Cancel after the event fired must not re-enter the free list:
	// double-recycling would hand the same Event to two At calls.
	before := len(e.free)
	e.Cancel(ev2)
	if ev2.fn != nil {
		t.Error("cancel-after-fire left a closure behind")
	}
	if len(e.free) != before {
		t.Errorf("cancel-after-fire re-recycled the event: free list went %d -> %d", before, len(e.free))
	}
	e.Cancel(nil) // must be a no-op
}

// TestCancelIdempotent: double cancel must neither fire nor recycle
// the event twice.
func TestCancelIdempotent(t *testing.T) {
	e := New()
	ev := e.At(1, func() { t.Error("canceled event fired") })
	e.Cancel(ev)
	free := len(e.free)
	e.Cancel(ev)
	if len(e.free) != free {
		t.Errorf("second cancel re-recycled the event: free list went %d -> %d", free, len(e.free))
	}
	e.Run()
}

// TestEventRecycling: the steady-state schedule/fire cycle must reuse
// events from the free list rather than allocating.
func TestEventRecycling(t *testing.T) {
	e := New()
	e.At(0, func() {})
	e.Run() // warm the free list and the heap's backing array
	var nop = func() {}
	allocs := testing.AllocsPerRun(100, func() {
		e.At(e.Now(), nop)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("schedule+fire of a pooled event allocated %.1f objects, want 0", allocs)
	}
}

// TestSemaphoreFIFONoBypass is a property test of the documented
// admission contract: random interleavings of Acquire, TryAcquire and
// Release must admit queued waiters strictly in arrival order,
// TryAcquire must never succeed while anyone is queued, and zero-sized
// Acquires must never queue.
func TestSemaphoreFIFONoBypass(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		e := New()
		s := NewSemaphore(e, 10)
		ticket := 0   // next queue position handed out
		admitted := 0 // next queue position expected to be admitted
		e.Go("driver", func(p *Proc) {
			for i := 0; i < 400; i++ {
				switch rng.Intn(8) {
				case 0, 1, 2, 3: // blocking acquirer that holds and releases
					n := int64(1 + rng.Intn(10))
					hold := float64(rng.Intn(4)) * 1e-3
					e.Go("acq", func(q *Proc) {
						if s.count > 0 || s.used+n > s.capacity {
							// Will queue: take the next ticket and demand
							// FIFO admission.
							my := ticket
							ticket++
							s.Acquire(q, n)
							if my != admitted {
								t.Errorf("seed %d: waiter %d admitted before waiter %d", seed, my, admitted)
							}
							admitted++
						} else {
							s.Acquire(q, n)
						}
						q.Sleep(hold)
						s.Release(n)
					})
				case 4, 5: // TryAcquire must not bypass the queue
					n := int64(1 + rng.Intn(10))
					queued := s.count
					if s.TryAcquire(n) {
						if queued > 0 {
							t.Errorf("seed %d: TryAcquire(%d) bypassed %d queued waiters", seed, n, queued)
						}
						d := float64(rng.Intn(3)) * 1e-3
						e.After(d, func() { s.Release(n) })
					}
				case 6: // zero-sized Acquire returns even with a full queue
					s.Acquire(p, 0)
				case 7:
					p.Sleep(float64(rng.Intn(3)) * 1e-3)
				}
			}
		})
		e.Run()
		if admitted != ticket {
			t.Errorf("seed %d: %d waiters queued but only %d admitted", seed, ticket, admitted)
		}
		if s.InUse() != 0 {
			t.Errorf("seed %d: %d units still held after drain", seed, s.InUse())
		}
		if s.Waiting() != 0 {
			t.Errorf("seed %d: %d waiters still queued after drain", seed, s.Waiting())
		}
	}
}

// TestSemaphoreRingGrowth exercises ring-buffer wraparound: interleave
// admissions and arrivals so head walks around the backing array while
// it grows.
func TestSemaphoreRingGrowth(t *testing.T) {
	e := New()
	s := NewSemaphore(e, 1)
	order := make([]int, 0, 64)
	e.Go("driver", func(p *Proc) {
		s.Acquire(p, 1) // everyone below queues behind this
		for i := 0; i < 64; i++ {
			i := i
			e.Go("w", func(q *Proc) {
				s.Acquire(q, 1)
				order = append(order, i)
				s.Release(1)
			})
			// Let a few spawn, then admit some so head advances while
			// the ring is partially full.
			if i%5 == 4 {
				p.Sleep(1e-3)
			}
		}
		s.Release(1)
	})
	e.Run()
	if len(order) != 64 {
		t.Fatalf("admitted %d of 64 waiters", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order[%d] = %d, want %d (full order %v)", i, got, i, order)
		}
	}
}
