package flownet

import (
	"math"
	"testing"
	"testing/quick"

	"blobvfs/internal/sim"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleFlowFullRate(t *testing.T) {
	e := sim.New()
	n := New(e)
	l := n.NewLink("l", 100)
	var done float64
	e.Go("t", func(p *sim.Proc) {
		n.Transfer(p, 500, l)
		done = p.Now()
	})
	e.Run()
	if !almostEq(done, 5) {
		t.Fatalf("done = %v, want 5", done)
	}
	if n.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", n.Completed)
	}
	if !almostEq(l.TotalBytes, 500) {
		t.Fatalf("link TotalBytes = %v, want 500", l.TotalBytes)
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	e := sim.New()
	n := New(e)
	l := n.NewLink("l", 100)
	var d1, d2 float64
	e.Go("a", func(p *sim.Proc) { n.Transfer(p, 100, l); d1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { n.Transfer(p, 100, l); d2 = p.Now() })
	e.Run()
	if !almostEq(d1, 2) || !almostEq(d2, 2) {
		t.Fatalf("done = %v,%v; want 2,2", d1, d2)
	}
}

func TestTwoLinkFlowTakesBottleneck(t *testing.T) {
	e := sim.New()
	n := New(e)
	fast := n.NewLink("fast", 1000)
	slow := n.NewLink("slow", 10)
	var done float64
	e.Go("t", func(p *sim.Proc) {
		n.Transfer(p, 100, fast, slow)
		done = p.Now()
	})
	e.Run()
	if !almostEq(done, 10) {
		t.Fatalf("done = %v, want 10 (bottleneck 10 B/s)", done)
	}
}

func TestMaxMinUnbottleneckedFlowGetsResidual(t *testing.T) {
	// Topology: flows A and B share link L1 (cap 10); flow B also crosses
	// L2 (cap 100); flow C crosses only L2.
	// Max-min: A=5, B=5 on L1; C gets 100-5=95 on L2.
	e := sim.New()
	n := New(e)
	l1 := n.NewLink("l1", 10)
	l2 := n.NewLink("l2", 100)
	var ra, rb, rc float64
	e.Go("obs", func(p *sim.Proc) {
		fa := n.Start(1e9, l1)
		fb := n.Start(1e9, l1, l2)
		fc := n.Start(1e9, l2)
		p.Sleep(0.001)
		ra, rb, rc = fa.Rate(), fb.Rate(), fc.Rate()
		// Stop the simulation by leaving; flows never finish but the
		// test only checks instantaneous rates.
		_ = fa
	})
	e.RunUntil(0.01)
	if !almostEq(ra, 5) || !almostEq(rb, 5) {
		t.Fatalf("rates on l1 = %v,%v; want 5,5", ra, rb)
	}
	if !almostEq(rc, 95) {
		t.Fatalf("rate c = %v, want 95", rc)
	}
}

func TestDepartureSpeedsUpRemaining(t *testing.T) {
	e := sim.New()
	n := New(e)
	l := n.NewLink("l", 100)
	var dShort, dLong float64
	e.Go("short", func(p *sim.Proc) { n.Transfer(p, 50, l); dShort = p.Now() })
	e.Go("long", func(p *sim.Proc) { n.Transfer(p, 150, l); dLong = p.Now() })
	e.Run()
	// Shared until short finishes: each at 50 B/s, short done at t=1.
	// Long then has 100 left at full 100 B/s: done at t=2.
	if !almostEq(dShort, 1) {
		t.Fatalf("dShort = %v, want 1", dShort)
	}
	if !almostEq(dLong, 2) {
		t.Fatalf("dLong = %v, want 2", dLong)
	}
}

func TestArrivalSlowsExisting(t *testing.T) {
	e := sim.New()
	n := New(e)
	l := n.NewLink("l", 100)
	var d1 float64
	e.Go("first", func(p *sim.Proc) { n.Transfer(p, 100, l); d1 = p.Now() })
	e.Go("second", func(p *sim.Proc) {
		p.Sleep(0.5)
		n.Transfer(p, 1000, l)
	})
	e.Run()
	// first: 50 B alone by 0.5, then 50 B at 50 B/s -> done 1.5.
	if !almostEq(d1, 1.5) {
		t.Fatalf("d1 = %v, want 1.5", d1)
	}
}

func TestZeroByteAndNoLinkTransfers(t *testing.T) {
	e := sim.New()
	n := New(e)
	l := n.NewLink("l", 10)
	ran := false
	e.Go("t", func(p *sim.Proc) {
		n.Transfer(p, 0, l)
		n.Transfer(p, 100) // no links
		if p.Now() != 0 {
			t.Error("degenerate transfers consumed time")
		}
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("proc did not finish")
	}
}

func TestWaitFlowOnFinishedFlow(t *testing.T) {
	e := sim.New()
	n := New(e)
	l := n.NewLink("l", 100)
	var f *Flow
	e.Go("a", func(p *sim.Proc) {
		f = n.Start(10, l)
		p.Sleep(5) // flow completes at 0.1
		n.WaitFlow(p, f)
		if !almostEq(p.Now(), 5) {
			t.Errorf("WaitFlow on finished flow blocked until %v", p.Now())
		}
		n.WaitFlow(p, nil) // must not block
	})
	e.Run()
	if !f.Finished() {
		t.Fatal("flow not finished")
	}
}

func TestManyFlowsAggregateThroughputEqualsCapacity(t *testing.T) {
	// N equal flows through one link of capacity C, each carrying B
	// bytes: everything completes at N*B/C (work conservation).
	e := sim.New()
	n := New(e)
	l := n.NewLink("l", 117.5e6)
	const N = 64
	const B = 10e6
	var last float64
	for i := 0; i < N; i++ {
		e.Go("f", func(p *sim.Proc) {
			n.Transfer(p, B, l)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run()
	want := N * B / 117.5e6
	if !almostEq(last, want) {
		t.Fatalf("last completion %v, want %v", last, want)
	}
}

func TestMaxMinProperties(t *testing.T) {
	// Property test: random star topologies (flows from random sources to
	// random destinations over per-node up/down links). Checks:
	//  1. no link's allocated sum exceeds capacity (feasibility);
	//  2. every flow has positive rate (no starvation);
	//  3. every flow is bottlenecked: it crosses at least one saturated
	//     link where it has a maximal rate (max-min optimality witness).
	type spec struct {
		Src, Dst []uint8
	}
	f := func(s spec) bool {
		if len(s.Src) == 0 || len(s.Dst) == 0 {
			return true
		}
		nFlows := len(s.Src)
		if nFlows > len(s.Dst) {
			nFlows = len(s.Dst)
		}
		if nFlows > 24 {
			nFlows = 24
		}
		const nodes = 8
		e := sim.New()
		net := New(e)
		up := make([]*Link, nodes)
		down := make([]*Link, nodes)
		for i := 0; i < nodes; i++ {
			up[i] = net.NewLink("up", 50+float64(i)*10)
			down[i] = net.NewLink("down", 80+float64(i)*5)
		}
		flows := make([]*Flow, 0, nFlows)
		e.Go("setup", func(p *sim.Proc) {
			for i := 0; i < nFlows; i++ {
				src := int(s.Src[i]) % nodes
				dst := int(s.Dst[i]) % nodes
				flows = append(flows, net.Start(1e12, up[src], down[dst]))
			}
		})
		e.RunUntil(0.001)

		load := make(map[*Link]float64)
		for _, fl := range flows {
			if fl.Rate() <= 0 {
				return false // starvation
			}
			for _, l := range fl.links {
				load[l] += fl.Rate()
			}
		}
		for l, sum := range load {
			if sum > l.capacity*(1+1e-9) {
				return false // infeasible
			}
		}
		for _, fl := range flows {
			witnessed := false
			for _, l := range fl.links {
				if load[l] < l.capacity*(1-1e-9) {
					continue // not saturated
				}
				maxOnLink := 0.0
				for _, other := range flows {
					for _, ol := range other.links {
						if ol == l && other.Rate() > maxOnLink {
							maxOnLink = other.Rate()
						}
					}
				}
				if fl.Rate() >= maxOnLink*(1-1e-9) {
					witnessed = true
					break
				}
			}
			if !witnessed {
				return false // not max-min optimal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		e := sim.New()
		n := New(e)
		links := make([]*Link, 10)
		for i := range links {
			links[i] = n.NewLink("l", 100+float64(i))
		}
		g := sim.NewRNG(99)
		var sum float64
		for i := 0; i < 40; i++ {
			src := links[g.Intn(10)]
			dst := links[g.Intn(10)]
			bytes := 100 + g.Float64()*1000
			start := g.Float64() * 3
			e.Go("f", func(p *sim.Proc) {
				p.Sleep(start)
				if src == dst {
					n.Transfer(p, bytes, src)
				} else {
					n.Transfer(p, bytes, src, dst)
				}
				sum += p.Now()
			})
		}
		e.Run()
		return sum, e.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", s1, t1, s2, t2)
	}
}
