package flownet

import (
	"fmt"
	"math"

	"blobvfs/internal/sim"
)

// Link is a capacity constraint in bytes per second. Create links with
// Net.NewLink so they receive deterministic identities.
type Link struct {
	id       int
	name     string
	capacity float64

	// scratch state used during recompute
	residual   float64
	unassigned int
	mark       int // generation marker for the dirty-link collection pass

	// TotalBytes accumulates all bytes ever carried by this link.
	TotalBytes float64
}

// Name returns the diagnostic name of the link.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's capacity in bytes per second.
func (l *Link) Capacity() float64 { return l.capacity }

// Flow is an in-flight transfer.
type Flow struct {
	links     []*Link
	remaining float64
	rate      float64
	assigned  bool
	mark      int // generation marker for the affected-component pass
	done      sim.Cond
	finished  bool

	// fn, when set, is the completion callback of a StartFunc flow.
	fn func()
	// pooled flows (Transfer/StartFunc — their handles never escape)
	// recycle onto the net's free list at completion.
	pooled bool
}

// Rate returns the flow's current allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Finished reports whether the flow has completed.
func (f *Flow) Finished() bool { return f.finished }

// Net manages the active flow set and completion scheduling.
type Net struct {
	env    *sim.Env
	flows  []*Flow // insertion order; order preserved on removal
	last   float64
	timer  *sim.Event
	nextID int
	gen    int

	// completeFn is the timer callback, bound once: the method value
	// n.complete allocates a closure on every rearm otherwise, and the
	// net rearms on every flow arrival and departure.
	completeFn func()

	// Scratch storage reused across recomputes so the steady-state flow
	// churn of a large simulation allocates nothing.
	scratchLinks []*Link
	scratchFlows []*Flow
	finishedScr  []*Flow
	freeFlows    []*Flow

	// Completed counts finished flows; TotalBytes counts bytes accepted.
	Completed  int64
	TotalBytes float64
}

// New returns an empty flow network on env.
func New(env *sim.Env) *Net {
	n := &Net{env: env}
	n.completeFn = n.complete
	return n
}

// NewLink creates a link with the given capacity in bytes per second.
func (n *Net) NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("flownet: link %q capacity must be positive", name))
	}
	l := &Link{id: n.nextID, name: name, capacity: capacity}
	n.nextID++
	return l
}

// Active returns the number of in-flight flows.
func (n *Net) Active() int { return len(n.flows) }

// Transfer moves bytes across the given links, blocking p until the
// flow completes under max-min fair sharing with all concurrent flows.
// A transfer with no links or zero bytes returns immediately.
func (n *Net) Transfer(p *sim.Proc, bytes float64, links ...*Link) {
	f := n.start(bytes, true, nil, links)
	if f == nil {
		return
	}
	n.WaitFlow(p, f)
}

// Start begins an asynchronous transfer and returns its Flow handle, or
// nil if there is nothing to do. Use WaitFlow to join it.
func (n *Net) Start(bytes float64, links ...*Link) *Flow {
	return n.start(bytes, false, nil, links)
}

// StartFunc begins a transfer that runs done (as a zero-delay event)
// when it completes, without occupying a process — the GoLite-compatible
// form of Transfer. The callback fires at exactly the virtual time — and
// event position — at which a blocked Transfer would have been resumed.
// A transfer with no links or zero bytes completes immediately.
func (n *Net) StartFunc(bytes float64, done func(), links ...*Link) {
	if bytes <= 0 || len(links) == 0 {
		n.env.At(n.env.Now(), done)
		return
	}
	n.start(bytes, true, done, links)
}

func (n *Net) getFlow(pooled bool) *Flow {
	if !pooled {
		return &Flow{}
	}
	if k := len(n.freeFlows); k > 0 {
		f := n.freeFlows[k-1]
		n.freeFlows[k-1] = nil
		n.freeFlows = n.freeFlows[:k-1]
		return f
	}
	return &Flow{pooled: true}
}

func (n *Net) start(bytes float64, pooled bool, fn func(), links []*Link) *Flow {
	if bytes <= 0 || len(links) == 0 {
		return nil
	}
	n.advance()
	f := n.getFlow(pooled)
	f.links = links
	f.remaining = bytes
	f.fn = fn
	n.flows = append(n.flows, f)
	for _, l := range links {
		l.TotalBytes += bytes
	}
	n.TotalBytes += bytes
	n.beginDirty()
	n.markLinks(links)
	n.recomputeDirty()
	n.reschedule()
	return f
}

// WaitFlow blocks p until f completes. Waiting on a nil or finished
// flow returns immediately.
func (n *Net) WaitFlow(p *sim.Proc, f *Flow) {
	if f == nil || f.finished {
		return
	}
	f.done.Wait(p)
}

// advance credits elapsed time to every active flow at its current rate.
func (n *Net) advance() {
	now := n.env.Now()
	dt := now - n.last
	n.last = now
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}

// beginDirty opens a new dirty set; markLinks seeds it. Together with
// recomputeDirty they make rate recomputation incremental: only the
// connected component (flows transitively sharing links) around the
// changed flows is refilled, and untouched bottleneck groups keep their
// rates. Max-min rates are per-component, and the filling arithmetic
// below is confined to a component, so the skipped components hold
// exactly — bit for bit — the rates a full recompute would assign them.
func (n *Net) beginDirty() {
	n.gen++
	n.scratchLinks = n.scratchLinks[:0]
}

func (n *Net) markLinks(links []*Link) {
	for _, l := range links {
		if l.mark != n.gen {
			l.mark = n.gen
			n.scratchLinks = append(n.scratchLinks, l)
		}
	}
}

// recomputeDirty expands the seeded dirty links to their full connected
// component and refills it.
func (n *Net) recomputeDirty() {
	if len(n.flows) == 0 || len(n.scratchLinks) == 0 {
		return
	}
	// Fixpoint: a flow touching any marked link joins the component and
	// marks the rest of its links; repeat until no flow joins. The pass
	// count is bounded by the component's link-sharing diameter, which
	// is tiny in practice (uplink–downlink topologies converge in two).
	for {
		changed := false
		for _, f := range n.flows {
			if f.mark == n.gen {
				continue
			}
			touched := false
			for _, l := range f.links {
				if l.mark == n.gen {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			f.mark = n.gen
			changed = true
			n.markLinks(f.links)
		}
		if !changed {
			break
		}
	}
	// Collect the affected flows in n.flows insertion order: progressive
	// filling subtracts shares in flow-iteration order, so preserving the
	// global order keeps the float arithmetic bitwise identical to a full
	// recompute restricted to this component.
	n.scratchFlows = n.scratchFlows[:0]
	for _, f := range n.flows {
		if f.mark == n.gen {
			n.scratchFlows = append(n.scratchFlows, f)
		}
	}
	n.fill(n.scratchFlows, n.scratchLinks)
}

// fill performs progressive filling over the given flows and links,
// which must form a union of whole components.
func (n *Net) fill(flows []*Flow, links []*Link) {
	for _, f := range flows {
		f.assigned = false
		f.rate = 0
	}
	for _, l := range links {
		l.residual = l.capacity
		l.unassigned = 0
	}
	for _, f := range flows {
		for _, l := range f.links {
			l.unassigned++
		}
	}
	unassigned := len(flows)
	for unassigned > 0 {
		// Find the bottleneck: the link offering the smallest fair share.
		// Ties resolve to the earliest-created link; max-min allocations
		// are unique, so tie order only affects intermediate state.
		var bottleneck *Link
		share := math.Inf(1)
		for _, l := range links {
			if l.unassigned == 0 {
				continue
			}
			s := l.residual / float64(l.unassigned)
			if s < share || (s == share && bottleneck != nil && l.id < bottleneck.id) {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break // cannot happen: every flow traverses at least one link
		}
		// Freeze every unassigned flow crossing the bottleneck at the
		// fair share and charge it along each of the flow's links.
		for _, f := range flows {
			if f.assigned {
				continue
			}
			crosses := false
			for _, l := range f.links {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = share
			f.assigned = true
			unassigned--
			for _, l := range f.links {
				l.residual -= share
				if l.residual < 0 {
					l.residual = 0
				}
				l.unassigned--
			}
		}
	}
}

// reschedule rearms the completion timer for the earliest-finishing
// flow. The completion instant is forced strictly past the current
// time: a residual small enough that now+dt rounds back to now (dt
// below the clock's ULP) would otherwise rearm a zero-progress timer
// forever.
func (n *Net) reschedule() {
	if n.timer != nil {
		n.env.Cancel(n.timer)
		n.timer = nil
	}
	if len(n.flows) == 0 {
		return
	}
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	target := n.env.Now() + next
	if target <= n.env.Now() {
		target = math.Nextafter(n.env.Now(), math.Inf(1))
	}
	n.timer = n.env.At(target, n.completeFn)
}

// complete settles progress, finishes any drained flows, and rearms.
func (n *Net) complete() {
	n.timer = nil
	n.advance()
	const eps = 0.5 // bytes; sub-byte residue is float noise
	kept := n.flows[:0]
	finished := n.finishedScr[:0]
	for _, f := range n.flows {
		if f.remaining <= eps {
			finished = append(finished, f)
		} else {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(n.flows); i++ {
		n.flows[i] = nil
	}
	n.flows = kept
	if len(finished) > 0 {
		n.beginDirty()
	}
	for _, f := range finished {
		f.finished = true
		f.remaining = 0
		n.Completed++
		n.markLinks(f.links)
		if f.fn != nil {
			n.env.At(n.env.Now(), f.fn)
			f.fn = nil
		} else {
			f.done.Broadcast(n.env)
		}
		if f.pooled {
			f.links = nil
			f.rate = 0
			f.assigned = false
			f.finished = false
			f.mark = 0
			n.freeFlows = append(n.freeFlows, f)
		}
	}
	if len(finished) > 0 {
		n.recomputeDirty()
	}
	for i := range finished {
		finished[i] = nil
	}
	n.finishedScr = finished[:0]
	n.reschedule()
}
