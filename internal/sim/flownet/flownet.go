package flownet

import (
	"fmt"
	"math"

	"blobvfs/internal/sim"
)

// Link is a capacity constraint in bytes per second. Create links with
// Net.NewLink so they receive deterministic identities.
type Link struct {
	id       int
	name     string
	capacity float64

	// scratch state used during recompute
	residual   float64
	unassigned int
	mark       int // generation marker for the link-collection pass

	// TotalBytes accumulates all bytes ever carried by this link.
	TotalBytes float64
}

// Name returns the diagnostic name of the link.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's capacity in bytes per second.
func (l *Link) Capacity() float64 { return l.capacity }

// Flow is an in-flight transfer.
type Flow struct {
	links     []*Link
	remaining float64
	rate      float64
	assigned  bool
	done      sim.Cond
	finished  bool
}

// Rate returns the flow's current allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Finished reports whether the flow has completed.
func (f *Flow) Finished() bool { return f.finished }

// Net manages the active flow set and completion scheduling.
type Net struct {
	env    *sim.Env
	flows  []*Flow // insertion order; order preserved on removal
	last   float64
	timer  *sim.Event
	nextID int
	gen    int

	// Completed counts finished flows; TotalBytes counts bytes accepted.
	Completed  int64
	TotalBytes float64
}

// New returns an empty flow network on env.
func New(env *sim.Env) *Net {
	return &Net{env: env}
}

// NewLink creates a link with the given capacity in bytes per second.
func (n *Net) NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("flownet: link %q capacity must be positive", name))
	}
	l := &Link{id: n.nextID, name: name, capacity: capacity}
	n.nextID++
	return l
}

// Active returns the number of in-flight flows.
func (n *Net) Active() int { return len(n.flows) }

// Transfer moves bytes across the given links, blocking p until the
// flow completes under max-min fair sharing with all concurrent flows.
// A transfer with no links or zero bytes returns immediately.
func (n *Net) Transfer(p *sim.Proc, bytes float64, links ...*Link) {
	f := n.Start(bytes, links...)
	if f == nil {
		return
	}
	n.WaitFlow(p, f)
}

// Start begins an asynchronous transfer and returns its Flow handle, or
// nil if there is nothing to do. Use WaitFlow to join it.
func (n *Net) Start(bytes float64, links ...*Link) *Flow {
	if bytes <= 0 || len(links) == 0 {
		return nil
	}
	n.advance()
	f := &Flow{links: links, remaining: bytes}
	n.flows = append(n.flows, f)
	for _, l := range links {
		l.TotalBytes += bytes
	}
	n.TotalBytes += bytes
	n.recompute()
	n.reschedule()
	return f
}

// WaitFlow blocks p until f completes. Waiting on a nil or finished
// flow returns immediately.
func (n *Net) WaitFlow(p *sim.Proc, f *Flow) {
	if f == nil || f.finished {
		return
	}
	f.done.Wait(p)
}

// advance credits elapsed time to every active flow at its current rate.
func (n *Net) advance() {
	now := n.env.Now()
	dt := now - n.last
	n.last = now
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}

// recompute performs progressive filling over the active flows.
func (n *Net) recompute() {
	if len(n.flows) == 0 {
		return
	}
	// Collect the distinct links touched by active flows, in first-use
	// order, using a generation marker to avoid allocation of a set.
	n.gen++
	var links []*Link
	for _, f := range n.flows {
		f.assigned = false
		f.rate = 0
		for _, l := range f.links {
			if l.mark != n.gen {
				l.mark = n.gen
				l.residual = l.capacity
				l.unassigned = 0
				links = append(links, l)
			}
		}
	}
	for _, f := range n.flows {
		for _, l := range f.links {
			l.unassigned++
		}
	}
	unassigned := len(n.flows)
	for unassigned > 0 {
		// Find the bottleneck: the link offering the smallest fair share.
		// Ties resolve to the earliest-created link; max-min allocations
		// are unique, so tie order only affects intermediate state.
		var bottleneck *Link
		share := math.Inf(1)
		for _, l := range links {
			if l.unassigned == 0 {
				continue
			}
			s := l.residual / float64(l.unassigned)
			if s < share || (s == share && bottleneck != nil && l.id < bottleneck.id) {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break // cannot happen: every flow traverses at least one link
		}
		// Freeze every unassigned flow crossing the bottleneck at the
		// fair share and charge it along each of the flow's links.
		for _, f := range n.flows {
			if f.assigned {
				continue
			}
			crosses := false
			for _, l := range f.links {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = share
			f.assigned = true
			unassigned--
			for _, l := range f.links {
				l.residual -= share
				if l.residual < 0 {
					l.residual = 0
				}
				l.unassigned--
			}
		}
	}
}

// reschedule rearms the completion timer for the earliest-finishing
// flow. The completion instant is forced strictly past the current
// time: a residual small enough that now+dt rounds back to now (dt
// below the clock's ULP) would otherwise rearm a zero-progress timer
// forever.
func (n *Net) reschedule() {
	if n.timer != nil {
		n.env.Cancel(n.timer)
		n.timer = nil
	}
	if len(n.flows) == 0 {
		return
	}
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	target := n.env.Now() + next
	if target <= n.env.Now() {
		target = math.Nextafter(n.env.Now(), math.Inf(1))
	}
	n.timer = n.env.At(target, n.complete)
}

// complete settles progress, finishes any drained flows, and rearms.
func (n *Net) complete() {
	n.timer = nil
	n.advance()
	const eps = 0.5 // bytes; sub-byte residue is float noise
	kept := n.flows[:0]
	var finished []*Flow
	for _, f := range n.flows {
		if f.remaining <= eps {
			finished = append(finished, f)
		} else {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(n.flows); i++ {
		n.flows[i] = nil
	}
	n.flows = kept
	for _, f := range finished {
		f.finished = true
		f.remaining = 0
		n.Completed++
		f.done.Broadcast(n.env)
	}
	if len(finished) > 0 {
		n.recompute()
	}
	n.reschedule()
}
