// Package flownet provides a flow-level network model with max-min fair
// bandwidth allocation, built on the sim engine.
//
// A Link is a capacity constraint (a NIC direction, a switch port, a
// shared uplink). A transfer is a Flow that traverses one or more links
// and carries a fixed number of bytes. Whenever a flow starts or ends,
// rates are recomputed with progressive filling (water-filling): the
// most contended link is saturated first, its flows are frozen at the
// fair share, and the process repeats on the residual network. This is
// the standard fluid approximation of TCP fairness, and is what gives
// the cluster model realistic congestion behaviour under boot storms
// and snapshot storms without simulating packets.
//
// All internal iteration is over insertion-ordered slices, never maps,
// so simulations are bit-for-bit reproducible.
package flownet
