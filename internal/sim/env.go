package sim

import (
	"fmt"
	"os"
	"time"

	"container/heap"
)

// debugSlowEvents enables wall-clock timing of every event dispatch;
// events slower than 20ms real time are reported on stderr. Controlled
// by the BLOBVFS_SIM_DEBUG environment variable.
var debugSlowEvents = os.Getenv("BLOBVFS_SIM_DEBUG") != ""

// Env is a simulation environment: a virtual clock plus an event queue.
// The zero value is not usable; create environments with New.
type Env struct {
	now    float64
	seq    int64
	steps  int64
	events eventHeap
	parked chan struct{}
	procs  int // number of live (started, not finished) processes

	// free recycles fired and canceled events: a 10k-instance flash
	// crowd schedules tens of millions of events, and allocating each
	// one fresh made Env.At the single largest allocation site of the
	// large simulations.
	free []*Event
	// freeWorkers recycles the goroutines behind finished processes
	// (see Env.Go); freeBatches recycles the waiter slices handed to
	// batch resume events (see Cond.Broadcast).
	freeWorkers []*worker
	freeBatches [][]*Proc
}

// New returns an empty environment with the clock at zero.
func New() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() float64 { return e.now }

// Procs returns the number of processes that have been started and have
// not yet returned. A nonzero value after Run drains the event queue
// indicates processes blocked forever (usually a modeling bug).
func (e *Env) Procs() int { return e.procs }

// Pending returns the number of events currently queued.
func (e *Env) Pending() int { return len(e.events) }

// Steps returns the total number of events executed so far; useful for
// diagnosing event storms.
func (e *Env) Steps() int64 { return e.steps }

// PendingTimes returns the scheduled times of up to max queued events,
// unordered; a diagnostic aid.
func (e *Env) PendingTimes(max int) []float64 {
	out := make([]float64, 0, max)
	for _, ev := range e.events {
		if len(out) == max {
			break
		}
		out = append(out, ev.t)
	}
	return out
}

// newEvent takes an event from the free list (or allocates one) and
// schedules it at absolute time t.
func (e *Env) newEvent(t float64) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.canceled = false
	} else {
		ev = &Event{}
	}
	ev.t = t
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// recycle returns a fired or canceled event to the free list. The
// dispatch payload is dropped eagerly so a dead event never pins the
// closure (and everything it captures — mirror and pool state at 10k
// scale) until the next reuse.
func (e *Env) recycle(ev *Event) {
	ev.fn = nil
	ev.proc = nil
	ev.batch = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it would silently reorder causality.
func (e *Env) At(t float64, fn func()) *Event {
	ev := e.newEvent(t)
	ev.fn = fn
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Env) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// resumeAt schedules process p to be resumed at absolute time t — the
// allocation-free form of At(t, func() { e.handoff(p) }) used by every
// hot scheduler (Sleep, semaphore admission, condition signaling).
func (e *Env) resumeAt(t float64, p *Proc) *Event {
	ev := e.newEvent(t)
	ev.proc = p
	return ev
}

// resumeBatch schedules one event at the current time that resumes
// every process in ws in order — a Cond broadcast as a single event
// instead of one per waiter. Ownership of ws transfers to the event;
// the slice returns to the batch pool after dispatch.
func (e *Env) resumeBatch(ws []*Proc) {
	ev := e.newEvent(e.now)
	ev.batch = ws
	ev.fn = nil
}

// getBatch takes a waiter-slice buffer from the batch pool.
func (e *Env) getBatch() []*Proc {
	if n := len(e.freeBatches); n > 0 {
		b := e.freeBatches[n-1]
		e.freeBatches[n-1] = nil
		e.freeBatches = e.freeBatches[:n-1]
		return b[:0]
	}
	return make([]*Proc, 0, 8)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired or was already canceled is a no-op. The event's callback
// (or resume target) is released immediately in every case, so a canceled
// timer never pins the state its closure captured.
func (e *Env) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	if ev.canceled || ev.index < 0 {
		// Already canceled, currently dispatching, or already fired: mark
		// and strip the payload, but leave recycling to the dispatcher —
		// the event must not enter the free list twice.
		ev.canceled = true
		ev.fn = nil
		ev.proc = nil
		ev.batch = nil
		return
	}
	ev.canceled = true
	heap.Remove(&e.events, ev.index)
	e.recycle(ev)
}

// dispatch runs one popped event's payload.
func (e *Env) dispatch(ev *Event) {
	switch {
	case ev.proc != nil:
		e.handoff(ev.proc)
	case ev.batch != nil:
		ws := ev.batch
		ev.batch = nil // the pool buffer is released below, not by recycle
		for i, q := range ws {
			ws[i] = nil
			e.handoff(q)
		}
		e.freeBatches = append(e.freeBatches, ws)
	case ev.fn != nil:
		ev.fn()
	}
}

// Run executes events until the queue drains.
func (e *Env) Run() { e.RunUntil(-1) }

// RunUntil executes events with time ≤ limit (limit < 0 means no limit)
// and stops when the queue drains or every remaining event lies beyond
// the limit. The clock is left at the last executed event's time, or at
// limit if that is later.
func (e *Env) RunUntil(limit float64) {
	for len(e.events) > 0 {
		next := e.events[0]
		if limit >= 0 && next.t > limit {
			break
		}
		heap.Pop(&e.events)
		if next.canceled {
			e.recycle(next)
			continue
		}
		e.now = next.t
		e.steps++
		if debugSlowEvents {
			start := time.Now()
			e.dispatch(next)
			if d := time.Since(start); d > 20*time.Millisecond {
				fmt.Fprintf(os.Stderr, "sim: SLOW event t=%v seq=%d took %v\n", next.t, next.seq, d)
			}
		} else {
			e.dispatch(next)
		}
		e.recycle(next)
	}
	if limit >= 0 && e.now < limit {
		e.now = limit
	}
}
