package sim

import (
	"container/heap"
	"fmt"
	"os"
	"time"
)

// debugSlowEvents enables wall-clock timing of every event dispatch;
// events slower than 20ms real time are reported on stderr. Controlled
// by the BLOBVFS_SIM_DEBUG environment variable.
var debugSlowEvents = os.Getenv("BLOBVFS_SIM_DEBUG") != ""

// Env is a simulation environment: a virtual clock plus an event queue.
// The zero value is not usable; create environments with New.
type Env struct {
	now    float64
	seq    int64
	steps  int64
	events eventHeap
	parked chan struct{}
	procs  int // number of live (started, not finished) processes
}

// New returns an empty environment with the clock at zero.
func New() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() float64 { return e.now }

// Procs returns the number of processes that have been started and have
// not yet returned. A nonzero value after Run drains the event queue
// indicates processes blocked forever (usually a modeling bug).
func (e *Env) Procs() int { return e.procs }

// Pending returns the number of events currently queued.
func (e *Env) Pending() int { return len(e.events) }

// Steps returns the total number of events executed so far; useful for
// diagnosing event storms.
func (e *Env) Steps() int64 { return e.steps }

// PendingTimes returns the scheduled times of up to max queued events,
// unordered; a diagnostic aid.
func (e *Env) PendingTimes(max int) []float64 {
	out := make([]float64, 0, max)
	for _, ev := range e.events {
		if len(out) == max {
			break
		}
		out = append(out, ev.t)
	}
	return out
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it would silently reorder causality.
func (e *Env) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{t: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Env) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired or was already canceled is a no-op.
func (e *Env) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.events, ev.index)
}

// Run executes events until the queue drains.
func (e *Env) Run() { e.RunUntil(-1) }

// RunUntil executes events with time ≤ limit (limit < 0 means no limit)
// and stops when the queue drains or every remaining event lies beyond
// the limit. The clock is left at the last executed event's time, or at
// limit if that is later.
func (e *Env) RunUntil(limit float64) {
	for len(e.events) > 0 {
		next := e.events[0]
		if limit >= 0 && next.t > limit {
			break
		}
		heap.Pop(&e.events)
		if next.canceled {
			continue
		}
		e.now = next.t
		e.steps++
		if debugSlowEvents {
			start := time.Now()
			next.fn()
			if d := time.Since(start); d > 20*time.Millisecond {
				fmt.Fprintf(os.Stderr, "sim: SLOW event t=%v seq=%d took %v\n", next.t, next.seq, d)
			}
		} else {
			next.fn()
		}
	}
	if limit >= 0 && e.now < limit {
		e.now = limit
	}
}
