package sim

import "time"

// Proc is a simulated process: a goroutine that runs cooperatively under
// the environment's scheduler. At most one process executes at a time;
// a process gives up control by sleeping, waiting on a Cond, or using a
// resource, and the scheduler resumes it when the corresponding virtual
// time arrives.
//
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	env      *Env
	name     string
	resume   chan struct{}
	parked   bool // blocked in yield (or at startup), awaiting resume
	finished bool
	done     Cond
}

// Go starts fn as a new process at the current virtual time. The name is
// used only for diagnostics.
//
// The completion handshake runs in a defer so that a process exiting
// abnormally — a panic unwinding, or runtime.Goexit as called by
// t.Fatal inside simulation tests — still returns control to the
// scheduler instead of wedging the whole simulation.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{}), parked: true}
	e.procs++
	go func() {
		defer func() {
			p.finished = true
			e.procs--
			p.done.Broadcast(e)
			e.parked <- struct{}{}
		}()
		<-p.resume
		fn(p)
	}()
	e.At(e.now, func() { e.handoff(p) })
	return p
}

// handoff transfers control from the scheduler to p and blocks until p
// parks again (by yielding or finishing). It must only be called from
// the scheduler's goroutine, i.e. from inside an event function.
//
// The invariant checks catch double-resume bugs (a process released by
// two pending events) at their source instead of as downstream
// deadlocks; the flags are only ever touched under the one-runner
// discipline, so there is no race.
func (e *Env) handoff(p *Proc) {
	if p.finished {
		panic("sim: resume of finished process " + p.name)
	}
	if !p.parked {
		panic("sim: double resume of process " + p.name)
	}
	p.parked = false
	p.resume <- struct{}{}
	if debugSlowEvents {
		select {
		case <-e.parked:
		case <-time.After(10 * time.Second):
			panic("sim: process " + p.name + " was resumed but never parked back")
		}
		return
	}
	<-e.parked
}

// yield parks the process and returns control to the scheduler. The
// process must have arranged (before calling yield) for some future
// event to resume it, or it will sleep forever.
func (p *Proc) yield() {
	p.parked = true
	p.env.parked <- struct{}{}
	<-p.resume
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the diagnostic name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.env.now }

// Finished reports whether the process function has returned.
func (p *Proc) Finished() bool { return p.finished }

// Sleep suspends the process for d seconds of virtual time. A negative
// duration panics; zero yields to other events scheduled at this time.
func (p *Proc) Sleep(d float64) {
	e := p.env
	e.After(d, func() { e.handoff(p) })
	p.yield()
}

// Join blocks until q finishes. Joining an already finished process
// returns immediately.
func (p *Proc) Join(q *Proc) {
	if q.finished {
		return
	}
	q.done.Wait(p)
}

// JoinAll blocks until every process in procs has finished.
func (p *Proc) JoinAll(procs []*Proc) {
	for _, q := range procs {
		p.Join(q)
	}
}

// Cond is a waitable condition: processes park on it with Wait and are
// released by Signal or Broadcast. Release is FIFO and takes effect as
// zero-delay events, preserving the one-process-at-a-time invariant.
// The zero value is ready to use.
type Cond struct {
	waiters []*Proc
}

// Wait parks p until the condition is signaled.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.yield()
}

// Signal releases the longest-waiting process, if any.
func (c *Cond) Signal(e *Env) {
	if len(c.waiters) == 0 {
		return
	}
	q := c.waiters[0]
	c.waiters = c.waiters[1:]
	e.At(e.now, func() { e.handoff(q) })
}

// Broadcast releases all waiting processes in FIFO order.
func (c *Cond) Broadcast(e *Env) {
	ws := c.waiters
	c.waiters = nil
	for _, q := range ws {
		q := q
		e.At(e.now, func() { e.handoff(q) })
	}
}

// Waiters returns the number of processes currently parked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
