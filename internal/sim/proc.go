package sim

import "time"

// Proc is a simulated process: a goroutine that runs cooperatively under
// the environment's scheduler. At most one process executes at a time;
// a process gives up control by sleeping, waiting on a Cond, or using a
// resource, and the scheduler resumes it when the corresponding virtual
// time arrives.
//
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	env      *Env
	name     string
	resume   chan struct{}
	parked   bool // blocked in yield (or at startup), awaiting resume
	finished bool
	done     Cond
}

// worker is a reusable goroutine that runs processes one after another.
// A 10k-instance flash crowd starts millions of short-lived activities
// (chunk fetchers, write-backs, broadcast hops); spawning a fresh OS
// goroutine plus resume channel for each made Env.Go the second-largest
// allocation site of the large simulations. Workers park on their job
// channel between processes and are recycled through Env.freeWorkers.
type worker struct {
	resume chan struct{}
	jobs   chan workerJob
}

type workerJob struct {
	p  *Proc
	fn func(p *Proc)
}

func newWorker(e *Env) *worker {
	w := &worker{resume: make(chan struct{}), jobs: make(chan workerJob, 1)}
	go func() {
		for j := range w.jobs {
			w.run(e, j)
		}
	}()
	return w
}

// run executes one process on the worker.
//
// The completion handshake runs in a defer so that a process exiting
// abnormally — a panic unwinding, or runtime.Goexit as called by
// t.Fatal inside simulation tests — still returns control to the
// scheduler instead of wedging the whole simulation. An abnormal exit
// kills the worker goroutine with it, so only cleanly-finished workers
// return to the free pool (the append is ordered before the parked
// handshake, which is what makes it visible to the scheduler without a
// lock).
func (w *worker) run(e *Env, j workerJob) {
	normal := false
	defer func() {
		p := j.p
		p.finished = true
		e.procs--
		p.done.Broadcast(e)
		if normal {
			e.freeWorkers = append(e.freeWorkers, w)
		}
		e.parked <- struct{}{}
	}()
	<-w.resume
	j.fn(j.p)
	normal = true
}

// Go starts fn as a new process at the current virtual time. The name is
// used only for diagnostics.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	var w *worker
	if n := len(e.freeWorkers); n > 0 {
		w = e.freeWorkers[n-1]
		e.freeWorkers[n-1] = nil
		e.freeWorkers = e.freeWorkers[:n-1]
	} else {
		w = newWorker(e)
	}
	p := &Proc{env: e, name: name, resume: w.resume, parked: true}
	e.procs++
	w.jobs <- workerJob{p: p, fn: fn}
	e.resumeAt(e.now, p)
	return p
}

// GoLite runs fn once at the current virtual time as a lightweight
// activity: a single scheduled callback with no goroutine and no
// channel handoffs. fn must not call blocking Proc APIs — it finishes
// within its callback, or continues by scheduling further events or by
// using the callback-completion resource APIs (PSPool.UseAsync,
// flownet.Net.StartFunc). This is the state-machine path the
// experiments' hot inner loops use so a 10k-instance herd does not
// mean 10k parked goroutines per fire-and-forget activity.
func (e *Env) GoLite(name string, fn func()) {
	_ = name // diagnostic parity with Go; not retained
	e.At(e.now, fn)
}

// handoff transfers control from the scheduler to p and blocks until p
// parks again (by yielding or finishing). It must only be called from
// the scheduler's goroutine, i.e. from inside an event function.
//
// The invariant checks catch double-resume bugs (a process released by
// two pending events) at their source instead of as downstream
// deadlocks; the flags are only ever touched under the one-runner
// discipline, so there is no race.
func (e *Env) handoff(p *Proc) {
	if p.finished {
		panic("sim: resume of finished process " + p.name)
	}
	if !p.parked {
		panic("sim: double resume of process " + p.name)
	}
	p.parked = false
	p.resume <- struct{}{}
	if debugSlowEvents {
		select {
		case <-e.parked:
		case <-time.After(10 * time.Second):
			panic("sim: process " + p.name + " was resumed but never parked back")
		}
		return
	}
	<-e.parked
}

// yield parks the process and returns control to the scheduler. The
// process must have arranged (before calling yield) for some future
// event to resume it, or it will sleep forever.
func (p *Proc) yield() {
	p.parked = true
	p.env.parked <- struct{}{}
	<-p.resume
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the diagnostic name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.env.now }

// Finished reports whether the process function has returned.
func (p *Proc) Finished() bool { return p.finished }

// Sleep suspends the process for d seconds of virtual time. A negative
// duration panics; zero yields to other events scheduled at this time.
func (p *Proc) Sleep(d float64) {
	e := p.env
	if d < 0 {
		panic("sim: negative sleep")
	}
	e.resumeAt(e.now+d, p)
	p.yield()
}

// Join blocks until q finishes. Joining an already finished process
// returns immediately.
func (p *Proc) Join(q *Proc) {
	if q.finished {
		return
	}
	q.done.Wait(p)
}

// JoinAll blocks until every process in procs has finished.
func (p *Proc) JoinAll(procs []*Proc) {
	for _, q := range procs {
		p.Join(q)
	}
}

// Cond is a waitable condition: processes park on it with Wait and are
// released by Signal or Broadcast. Release is FIFO and takes effect as
// zero-delay events, preserving the one-process-at-a-time invariant.
// The zero value is ready to use.
type Cond struct {
	waiters []*Proc
}

// Wait parks p until the condition is signaled.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.yield()
}

// Signal releases the longest-waiting process, if any. The remaining
// waiters shift down in place, so the backing array is retained and
// never re-grown (re-slicing would strand the head slots forever).
func (c *Cond) Signal(e *Env) {
	if len(c.waiters) == 0 {
		return
	}
	q := c.waiters[0]
	n := copy(c.waiters, c.waiters[1:])
	c.waiters[n] = nil
	c.waiters = c.waiters[:n]
	e.resumeAt(e.now, q)
}

// Broadcast releases all waiting processes in FIFO order. A single
// waiter resumes through one plain event; multiple waiters ride one
// batch event (instead of one scheduled event per waiter), which
// dispatches them back-to-back in the same order the per-waiter events
// would have run — their sequence numbers were consecutive, so no
// other event could have interleaved. The Cond keeps its backing
// array either way.
func (c *Cond) Broadcast(e *Env) {
	switch len(c.waiters) {
	case 0:
		return
	case 1:
		q := c.waiters[0]
		c.waiters[0] = nil
		c.waiters = c.waiters[:0]
		e.resumeAt(e.now, q)
		return
	}
	ws := e.getBatch()
	ws = append(ws, c.waiters...)
	for i := range c.waiters {
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
	e.resumeBatch(ws)
}

// Waiters returns the number of processes currently parked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
