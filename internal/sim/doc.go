// Package sim implements a deterministic process-oriented discrete-event
// simulation engine.
//
// The engine drives a virtual clock over a priority queue of events.
// Simulation logic is written as ordinary sequential Go code inside
// processes (see Proc): a process sleeps, waits on conditions, acquires
// resources and performs work on shared bandwidth pools, all in virtual
// time. Exactly one process runs at any instant — the scheduler hands
// control to a process and waits for it to park again — so simulation
// state never needs locking and runs are reproducible bit-for-bit.
//
// The package is the substrate on which the cluster, storage and
// experiment layers of this repository are built; it deliberately knows
// nothing about any of them.
package sim
