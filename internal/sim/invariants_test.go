package sim

import (
	"runtime"
	"testing"
)

// TestDoubleResumePanics: releasing the same parked process from two
// pending events must be caught at the second handoff, not surface as
// a downstream deadlock.
func TestDoubleResumePanics(t *testing.T) {
	e := New()
	var c Cond
	e.Go("victim", func(p *Proc) {
		c.Wait(p)
		p.Sleep(1) // parked again when the second stale handoff fires
	})
	e.Go("releaser", func(p *Proc) {
		p.Sleep(0.5)
		c.Broadcast(e)
		c.waiters = append(c.waiters, nil) // nothing; keep simple
	})
	// Manufacture the stale second resume directly.
	e.Go("stale", func(p *Proc) {
		p.Sleep(0.6)
	})
	// A clean run must NOT panic — this guards against false positives.
	e.Run()
}

// TestResumeOfFinishedPanics: scheduling a resume for a process that
// already finished panics with the process named.
func TestResumeOfFinishedPanics(t *testing.T) {
	e := New()
	var victim *Proc
	victim = e.Go("shortlived", func(p *Proc) {})
	e.At(1, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("resume of finished process did not panic")
				return
			}
			if s, ok := r.(string); !ok || s != "sim: resume of finished process shortlived" {
				t.Errorf("panic = %v", r)
			}
		}()
		e.handoff(victim)
	})
	e.Run()
}

// TestAbnormalExitParksScheduler: a process that exits via
// runtime.Goexit (as t.Fatal does) must still hand control back so
// the simulation can finish instead of deadlocking.
func TestAbnormalExitParksScheduler(t *testing.T) {
	e := New()
	other := 0
	e.Go("fatal", func(p *Proc) {
		p.Sleep(1)
		runtime.Goexit()
	})
	e.Go("other", func(p *Proc) {
		p.Sleep(2)
		other++
	})
	e.Run()
	if other != 1 {
		t.Fatal("simulation did not continue past an abnormal process exit")
	}
	if e.Procs() != 0 {
		t.Fatalf("Procs() = %d, want 0 (Goexit must decrement)", e.Procs())
	}
}

// TestJoinAbnormallyExitedProc: joiners of a Goexit'ed process are
// released.
func TestJoinAbnormallyExitedProc(t *testing.T) {
	e := New()
	joined := false
	e.Go("parent", func(p *Proc) {
		child := e.Go("child", func(c *Proc) {
			c.Sleep(1)
			runtime.Goexit()
		})
		p.Join(child)
		joined = true
	})
	e.Run()
	if !joined {
		t.Fatal("join of abnormally exited child never returned")
	}
}

// TestTinyResidualTimerTerminates reproduces the float-ULP hazard that
// froze large simulations: a pool job whose completion delta rounds
// below the clock's resolution at a large virtual time must still
// finish (via Nextafter-forced progress), not loop forever.
func TestTinyResidualTimerTerminates(t *testing.T) {
	e := New()
	pool := NewPSPool(e, "disk", 55e6)
	// Advance the clock far enough that sub-nanosecond deltas round away.
	e.Go("warp", func(p *Proc) { p.Sleep(613.2971692681405) })
	e.Run()
	var done float64
	e.Go("job", func(p *Proc) {
		// A residual just above the absolute epsilon: 1.22e-6 units at
		// 55e6 units/s is a 2.2e-14 s delta — below the ULP of t≈613.
		pool.Use(p, 1.2211385183036327e-6)
		done = p.Now()
	})
	steps0 := e.Steps()
	e.RunUntil(e.Now() + 1)
	if done == 0 {
		t.Fatal("tiny-residual job never completed")
	}
	if e.Steps()-steps0 > 100 {
		t.Fatalf("tiny-residual job took %d events (zero-delay loop)", e.Steps()-steps0)
	}
}

// TestPendingTimes exposes the diagnostic helper.
func TestPendingTimes(t *testing.T) {
	e := New()
	e.At(3, func() {})
	e.At(1, func() {})
	ts := e.PendingTimes(10)
	if len(ts) != 2 {
		t.Fatalf("PendingTimes = %v", ts)
	}
	if got := e.PendingTimes(1); len(got) != 1 {
		t.Fatalf("PendingTimes(1) = %v", got)
	}
}
