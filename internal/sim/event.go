package sim

import "container/heap"

// Event is a scheduled callback in the simulation. Events are ordered by
// (time, sequence number): ties in virtual time are broken by scheduling
// order, which makes every run fully deterministic.
type Event struct {
	t        float64
	seq      int64
	fn       func()
	canceled bool
	index    int // heap index; -1 once popped or canceled
}

// Time returns the virtual time at which the event is scheduled to fire.
func (ev *Event) Time() float64 { return ev.t }

// Canceled reports whether the event has been canceled.
func (ev *Event) Canceled() bool { return ev.canceled }

// eventHeap is a min-heap of events keyed by (t, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

var _ heap.Interface = (*eventHeap)(nil)
