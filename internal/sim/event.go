package sim

import "container/heap"

// Event is a scheduled callback in the simulation. Events are ordered by
// (time, sequence number): ties in virtual time are broken by scheduling
// order, which makes every run fully deterministic.
//
// Fired and canceled events are recycled onto the environment's free
// list, so an Event handle is only valid until the event fires or is
// canceled: calling Cancel (or Time/Canceled) on a handle after either
// point may observe — or, worse, cancel — an unrelated recycled event.
// The two in-tree retainers (PSPool and flownet timers) clear their
// handle on fire and cancel-before-rearm, which satisfies this.
type Event struct {
	t   float64
	seq int64

	// Exactly one of the three dispatch payloads is set: a plain
	// callback, a single process to resume, or a batch of processes to
	// resume in FIFO order (a Cond broadcast). The resume forms exist
	// so the hot schedulers — Sleep, semaphore admission, condition
	// signaling — need no per-call closure allocation.
	fn    func()
	proc  *Proc
	batch []*Proc

	canceled bool
	index    int // heap index; -1 once popped or canceled
}

// Time returns the virtual time at which the event is scheduled to fire.
func (ev *Event) Time() float64 { return ev.t }

// Canceled reports whether the event has been canceled.
func (ev *Event) Canceled() bool { return ev.canceled }

// eventHeap is a min-heap of events keyed by (t, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

var _ heap.Interface = (*eventHeap)(nil)
