package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestEnvStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(2.0, func() { order = append(order, 2) })
	e.At(1.0, func() { order = append(order, 1) })
	e.At(3.0, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 3.0 {
		t.Fatalf("Now() = %v, want 3.0", e.Now())
	}
}

func TestEventTieBreakBySequence(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (ties must fire in scheduling order)", i, v, i)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1.0, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Double-cancel and nil-cancel must be no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelOneOfSeveral(t *testing.T) {
	e := New()
	var got []int
	evs := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = e.At(float64(i+1), func() { got = append(got, i) })
	}
	e.Cancel(evs[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		tt := tt
		e.At(tt, func() { fired = append(fired, tt) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want 3 events", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %v, want 5 events", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10 (clock advances to limit)", e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := New()
	var wake float64
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(2.5)
		wake = p.Now()
	})
	e.Run()
	if !almostEq(wake, 2.5) {
		t.Fatalf("woke at %v, want 2.5", wake)
	}
	if e.Procs() != 0 {
		t.Fatalf("Procs() = %d after Run, want 0", e.Procs())
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := New()
	var times []float64
	e.Go("p", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(1)
			times = append(times, p.Now())
		}
	})
	e.Run()
	for i, want := range []float64{1, 2, 3, 4} {
		if !almostEq(times[i], want) {
			t.Fatalf("times = %v, want [1 2 3 4]", times)
		}
	}
}

func TestManyProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := New()
		var log []string
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			d := float64(5 - i)
			e.Go(name, func(p *Proc) {
				p.Sleep(d)
				log = append(log, p.Name())
				p.Sleep(10)
				log = append(log, p.Name())
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("run %d: length %d != %d", trial, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("run %d: log %v != %v (nondeterministic)", trial, got, first)
			}
		}
	}
}

func TestJoin(t *testing.T) {
	e := New()
	var joinedAt float64
	child := (*Proc)(nil)
	e.Go("parent", func(p *Proc) {
		child = e.Go("child", func(c *Proc) { c.Sleep(7) })
		p.Join(child)
		joinedAt = p.Now()
		p.Join(child) // joining a finished proc returns immediately
	})
	e.Run()
	if !almostEq(joinedAt, 7) {
		t.Fatalf("joined at %v, want 7", joinedAt)
	}
	if !child.Finished() {
		t.Fatal("child not finished")
	}
}

func TestJoinAll(t *testing.T) {
	e := New()
	var doneAt float64
	e.Go("parent", func(p *Proc) {
		var kids []*Proc
		for i := 1; i <= 4; i++ {
			d := float64(i)
			kids = append(kids, e.Go("kid", func(c *Proc) { c.Sleep(d) }))
		}
		p.JoinAll(kids)
		doneAt = p.Now()
	})
	e.Run()
	if !almostEq(doneAt, 4) {
		t.Fatalf("JoinAll returned at %v, want 4", doneAt)
	}
}

func TestCondSignalFIFO(t *testing.T) {
	e := New()
	var c Cond
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(float64(i)) // stagger arrival: 0, 1, 2
			c.Wait(p)
			order = append(order, i)
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(10)
		c.Signal(e)
		p.Sleep(1)
		c.Signal(e)
		p.Sleep(1)
		c.Signal(e)
	})
	e.Run()
	if len(order) != 3 {
		t.Fatalf("order = %v, want 3 wakeups", order)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO [0 1 2]", order)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	e := New()
	var c Cond
	woke := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(1)
		if c.Waiters() != 5 {
			t.Errorf("Waiters() = %d, want 5", c.Waiters())
		}
		c.Broadcast(e)
	})
	e.Run()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
	if c.Waiters() != 0 {
		t.Fatalf("Waiters() = %d after broadcast, want 0", c.Waiters())
	}
}

func TestSemaphoreBlocksAtCapacity(t *testing.T) {
	e := New()
	s := NewSemaphore(e, 10)
	var acquiredAt float64
	e.Go("holder", func(p *Proc) {
		s.Acquire(p, 10)
		p.Sleep(5)
		s.Release(10)
	})
	e.Go("waiter", func(p *Proc) {
		p.Sleep(1)
		s.Acquire(p, 4)
		acquiredAt = p.Now()
		s.Release(4)
	})
	e.Run()
	if !almostEq(acquiredAt, 5) {
		t.Fatalf("acquired at %v, want 5", acquiredAt)
	}
}

func TestSemaphoreFIFOPreventsStarvation(t *testing.T) {
	e := New()
	s := NewSemaphore(e, 10)
	var order []string
	e.Go("holder", func(p *Proc) {
		s.Acquire(p, 10)
		p.Sleep(5)
		s.Release(10)
	})
	// The big request arrives first and must be served before the later
	// small one even though the small one would fit sooner.
	e.Go("big", func(p *Proc) {
		p.Sleep(1)
		s.Acquire(p, 8)
		order = append(order, "big")
		p.Sleep(1)
		s.Release(8)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(2)
		s.Acquire(p, 2)
		order = append(order, "small")
		s.Release(2)
	})
	e.Run()
	if len(order) != 2 || order[0] != "big" {
		t.Fatalf("order = %v, want big first (FIFO)", order)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := New()
	s := NewSemaphore(e, 5)
	if !s.TryAcquire(3) {
		t.Fatal("TryAcquire(3) on empty semaphore failed")
	}
	if s.TryAcquire(3) {
		t.Fatal("TryAcquire(3) with 3/5 used succeeded")
	}
	if s.InUse() != 3 {
		t.Fatalf("InUse() = %d, want 3", s.InUse())
	}
	s.Release(3)
	if s.InUse() != 0 {
		t.Fatalf("InUse() = %d, want 0", s.InUse())
	}
}

func TestSemaphoreOverRelease(t *testing.T) {
	e := New()
	s := NewSemaphore(e, 5)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	s.Release(1)
}

func TestPSPoolSingleJob(t *testing.T) {
	e := New()
	pool := NewPSPool(e, "disk", 100) // 100 units/s
	var done float64
	e.Go("j", func(p *Proc) {
		pool.Use(p, 250)
		done = p.Now()
	})
	e.Run()
	if !almostEq(done, 2.5) {
		t.Fatalf("job done at %v, want 2.5", done)
	}
}

func TestPSPoolFairSharing(t *testing.T) {
	e := New()
	pool := NewPSPool(e, "disk", 100)
	var d1, d2 float64
	e.Go("a", func(p *Proc) {
		pool.Use(p, 100)
		d1 = p.Now()
	})
	e.Go("b", func(p *Proc) {
		pool.Use(p, 100)
		d2 = p.Now()
	})
	e.Run()
	// Two equal jobs sharing 100 u/s: each runs at 50 u/s, both done at 2.
	if !almostEq(d1, 2) || !almostEq(d2, 2) {
		t.Fatalf("done at %v, %v; want 2, 2", d1, d2)
	}
}

func TestPSPoolLateArrivalSlowsFirst(t *testing.T) {
	e := New()
	pool := NewPSPool(e, "disk", 100)
	var d1, d2 float64
	e.Go("a", func(p *Proc) {
		pool.Use(p, 100) // alone 0..0.5 (50 done), shared after
		d1 = p.Now()
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(0.5)
		pool.Use(p, 100)
		d2 = p.Now()
	})
	e.Run()
	// a: 50 units alone by t=0.5, then 50 at 50 u/s -> done 1.5.
	// b: 50 of its 100 by t=1.5, remaining 50 alone at 100 -> done 2.0.
	if !almostEq(d1, 1.5) {
		t.Fatalf("d1 = %v, want 1.5", d1)
	}
	if !almostEq(d2, 2.0) {
		t.Fatalf("d2 = %v, want 2.0", d2)
	}
}

func TestPSPoolWorkConservation(t *testing.T) {
	// Property: with any set of jobs arriving at time 0, total completion
	// time equals total work / capacity for the last finisher.
	f := func(sizes []uint16) bool {
		var work float64
		var n int
		for _, s := range sizes {
			if s == 0 {
				continue
			}
			work += float64(s)
			n++
		}
		if n == 0 {
			return true
		}
		e := New()
		pool := NewPSPool(e, "p", 37.5)
		var last float64
		for _, s := range sizes {
			if s == 0 {
				continue
			}
			amount := float64(s)
			e.Go("j", func(p *Proc) {
				pool.Use(p, amount)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run()
		want := work / 37.5
		return math.Abs(last-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPSPoolBusyTimeAndServed(t *testing.T) {
	e := New()
	pool := NewPSPool(e, "disk", 10)
	e.Go("a", func(p *Proc) { pool.Use(p, 50) })
	e.Run()
	if !almostEq(pool.BusyTime, 5) {
		t.Fatalf("BusyTime = %v, want 5", pool.BusyTime)
	}
	if !almostEq(pool.Served, 50) {
		t.Fatalf("Served = %v, want 50", pool.Served)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestRNGFork(t *testing.T) {
	g := NewRNG(7)
	f1 := g.Fork()
	g2 := NewRNG(7)
	f2 := g2.Fork()
	for i := 0; i < 50; i++ {
		if f1.Float64() != f2.Float64() {
			t.Fatal("forks of identical parents diverged")
		}
	}
}

func TestRNGRanges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := g.Uniform(3, 5); v < 3 || v >= 5 {
			t.Fatalf("Uniform(3,5) = %v out of range", v)
		}
		if v := g.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %v out of range", v)
		}
		if v := g.Exp(2); v < 0 {
			t.Fatalf("Exp(2) = %v negative", v)
		}
	}
}
