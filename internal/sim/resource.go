package sim

import (
	"fmt"
	"math"
	"os"
)

// Semaphore is a counting semaphore measured in arbitrary units (bytes,
// slots, ...). Acquisition is FIFO: a large request at the head of the
// queue blocks later small ones, which prevents starvation.
//
// The admission contract, precisely:
//
//   - Acquire with n <= 0 returns immediately without queuing and
//     without checking the waiter queue. A zero-sized request holds no
//     units, so admitting it ahead of the queue cannot starve anyone.
//   - TryAcquire never bypasses queued waiters: while any process is
//     queued, TryAcquire fails even if enough units are free — free
//     units belong to the queue head. Callers spinning on TryAcquire
//     therefore cannot starve the queue.
//   - Release admits queued waiters strictly FIFO, stopping at the
//     first waiter that does not fit.
//
// TestSemaphoreFIFONoBypass pins this contract under random
// interleavings of all three operations.
//
// Release may be called from any simulation context (process or event
// callback); Acquire must be called from a process.
//
// Waiters queue in a ring buffer (head + count over a power-of-two-ish
// backing array) rather than a re-sliced slice: re-slicing `waiters[1:]`
// on every admission permanently strands the popped head slots, so the
// backing array is re-grown forever under sustained churn.
type Semaphore struct {
	env      *Env
	capacity int64
	used     int64
	waiters  []semWait // ring: count entries starting at head
	head     int
	count    int
}

type semWait struct {
	p *Proc
	n int64
}

// NewSemaphore returns a semaphore with the given capacity in units.
func NewSemaphore(env *Env, capacity int64) *Semaphore {
	if capacity <= 0 {
		panic("sim: semaphore capacity must be positive")
	}
	return &Semaphore{env: env, capacity: capacity}
}

// Capacity returns the total capacity.
func (s *Semaphore) Capacity() int64 { return s.capacity }

// InUse returns the number of units currently held.
func (s *Semaphore) InUse() int64 { return s.used }

// Waiting returns the number of queued processes.
func (s *Semaphore) Waiting() int { return s.count }

func (s *Semaphore) pushWaiter(w semWait) {
	if s.count == len(s.waiters) {
		grown := make([]semWait, 2*s.count+8)
		for i := 0; i < s.count; i++ {
			grown[i] = s.waiters[(s.head+i)%len(s.waiters)]
		}
		s.waiters = grown
		s.head = 0
	}
	s.waiters[(s.head+s.count)%len(s.waiters)] = w
	s.count++
}

func (s *Semaphore) popWaiter() semWait {
	w := s.waiters[s.head]
	s.waiters[s.head] = semWait{}
	s.head = (s.head + 1) % len(s.waiters)
	s.count--
	return w
}

// Acquire blocks p until n units are available and takes them. Requests
// larger than the capacity panic, since they could never be satisfied.
// n <= 0 returns immediately without queuing (see the type comment).
func (s *Semaphore) Acquire(p *Proc, n int64) {
	if n > s.capacity {
		panic("sim: semaphore request exceeds capacity")
	}
	if n <= 0 {
		return
	}
	if s.count == 0 && s.used+n <= s.capacity {
		s.used += n
		return
	}
	s.pushWaiter(semWait{p, n})
	p.yield()
}

// TryAcquire takes n units if immediately available, reporting success.
// It fails whenever processes are queued, even if n units are free:
// those units belong to the queue head (see the type comment).
func (s *Semaphore) TryAcquire(n int64) bool {
	if n <= 0 {
		return true
	}
	if s.count == 0 && s.used+n <= s.capacity {
		s.used += n
		return true
	}
	return false
}

// Release returns n units and admits queued waiters in FIFO order.
func (s *Semaphore) Release(n int64) {
	if n <= 0 {
		return
	}
	s.used -= n
	if s.used < 0 {
		panic("sim: semaphore released more than acquired")
	}
	for s.count > 0 {
		w := s.waiters[s.head]
		if s.used+w.n > s.capacity {
			break
		}
		s.used += w.n
		s.popWaiter()
		s.env.resumeAt(s.env.now, w.p)
	}
}

// PSPool is a processor-sharing resource with a fixed service capacity
// in units per second (e.g. a disk delivering 55 MB/s). All active jobs
// progress simultaneously, each receiving capacity/len(jobs); completion
// events are rescheduled whenever the job set changes. This matches the
// fair-sharing behaviour of an OS block layer or a NIC under many
// streams far better than FCFS does, and is what shapes the contention
// curves of the paper's figures.
type PSPool struct {
	env      *Env
	name     string
	capacity float64
	jobs     []*psJob
	last     float64 // virtual time of last remaining-work update
	timer    *Event

	// completeFn is the timer callback, bound once: taking the method
	// value pool.complete inside reschedule allocates a closure on every
	// rearm, and the pool rearms on every job arrival and departure.
	completeFn func()
	// freeJobs recycles finished job records.
	freeJobs []*psJob

	// BusyTime accumulates the total virtual time during which at least
	// one job was active; useful for utilization metrics.
	BusyTime float64
	// Served accumulates total units of work completed.
	Served float64
}

type psJob struct {
	remaining float64
	done      Cond
	// fn, when set, is the completion callback of a UseAsync job; such
	// jobs have no waiting process and signal through an event instead.
	fn func()
}

// NewPSPool returns a processor-sharing pool with the given capacity in
// units per second.
func NewPSPool(env *Env, name string, capacity float64) *PSPool {
	if capacity <= 0 {
		panic("sim: PSPool capacity must be positive")
	}
	pool := &PSPool{env: env, name: name, capacity: capacity}
	pool.completeFn = pool.complete
	return pool
}

// Capacity returns the pool's total service rate.
func (pool *PSPool) Capacity() float64 { return pool.capacity }

// Active returns the number of in-progress jobs.
func (pool *PSPool) Active() int { return len(pool.jobs) }

func (pool *PSPool) getJob() *psJob {
	if n := len(pool.freeJobs); n > 0 {
		j := pool.freeJobs[n-1]
		pool.freeJobs[n-1] = nil
		pool.freeJobs = pool.freeJobs[:n-1]
		return j
	}
	return &psJob{}
}

// Use blocks p while `amount` units of work are serviced by the pool,
// sharing capacity equally with all concurrent jobs.
func (pool *PSPool) Use(p *Proc, amount float64) {
	if amount <= 0 {
		return
	}
	pool.advance()
	job := pool.getJob()
	job.remaining = amount
	pool.jobs = append(pool.jobs, job)
	pool.reschedule()
	job.done.Wait(p)
}

// UseAsync services `amount` units of work and runs done (as a
// zero-delay event) when they complete, without occupying a process.
// This is the GoLite-compatible form of Use: the callback fires at
// exactly the virtual time — and event position — at which a blocked
// Use call would have been resumed.
func (pool *PSPool) UseAsync(amount float64, done func()) {
	if amount <= 0 {
		pool.env.At(pool.env.now, done)
		return
	}
	pool.advance()
	job := pool.getJob()
	job.remaining = amount
	job.fn = done
	pool.jobs = append(pool.jobs, job)
	pool.reschedule()
}

// advance applies elapsed virtual time to every active job's remaining
// work at the rate in force since the last update.
func (pool *PSPool) advance() {
	now := pool.env.now
	dt := now - pool.last
	pool.last = now
	if dt <= 0 || len(pool.jobs) == 0 {
		return
	}
	pool.BusyTime += dt
	rate := pool.capacity / float64(len(pool.jobs))
	for _, j := range pool.jobs {
		d := rate * dt
		if d > j.remaining {
			d = j.remaining
		}
		j.remaining -= d
		pool.Served += d
	}
}

// reschedule cancels any pending completion timer and schedules one for
// the earliest job completion under the current sharing rate.
//
// The completion instant is forced to be strictly after the current
// time: with a large clock value and a tiny residual, now+dt can round
// to now in float64 (dt below the clock's ULP), and a timer at the
// same instant would fire, make zero progress, and rearm forever.
func (pool *PSPool) reschedule() {
	if pool.timer != nil {
		pool.env.Cancel(pool.timer)
		pool.timer = nil
	}
	if len(pool.jobs) == 0 {
		return
	}
	minRem := pool.jobs[0].remaining
	for _, j := range pool.jobs[1:] {
		if j.remaining < minRem {
			minRem = j.remaining
		}
	}
	rate := pool.capacity / float64(len(pool.jobs))
	target := pool.env.now + minRem/rate
	if target <= pool.env.now {
		target = math.Nextafter(pool.env.now, math.Inf(1))
	}
	pool.timer = pool.env.At(target, pool.completeFn)
}

// complete fires when the earliest job should finish: it settles
// remaining work, releases every finished job, and rearms the timer.
func (pool *PSPool) complete() {
	pool.timer = nil
	pool.advance()
	// A job is done when its residual is float noise: below an absolute
	// sub-unit bound, or below what one nanosecond of service at the
	// current per-job rate would clear (residuals smaller than that are
	// rounding artifacts of repeated advance() subtraction).
	eps := 1e-6
	if len(pool.jobs) > 0 {
		if rateEps := pool.capacity / float64(len(pool.jobs)) * 1e-9; rateEps > eps {
			eps = rateEps
		}
	}
	kept := pool.jobs[:0]
	finished := 0
	for _, j := range pool.jobs {
		if j.remaining <= eps {
			finished++
			if j.fn != nil {
				pool.env.At(pool.env.now, j.fn)
				j.fn = nil
			} else {
				j.done.Broadcast(pool.env)
			}
			j.remaining = 0
			pool.freeJobs = append(pool.freeJobs, j)
		} else {
			kept = append(kept, j)
		}
	}
	if debugPools && finished == 0 {
		rems := make([]float64, 0, 4)
		for _, j := range pool.jobs {
			if len(rems) == 4 {
				break
			}
			rems = append(rems, j.remaining)
		}
		fmt.Fprintf(os.Stderr, "pspool %s: barren complete now=%.17g jobs=%d last=%.17g rems=%v\n",
			pool.name, pool.env.now, len(pool.jobs), pool.last, rems)
	}
	// Zero the tail so finished jobs are not retained by the backing array.
	for i := len(kept); i < len(pool.jobs); i++ {
		pool.jobs[i] = nil
	}
	pool.jobs = kept
	pool.reschedule()
}

// debugPools enables barren-completion diagnostics on stderr.
var debugPools = os.Getenv("BLOBVFS_SIM_DEBUG") != ""
