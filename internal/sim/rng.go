package sim

import "math/rand"

// RNG is a deterministic random source for simulation models. It wraps
// math/rand with an explicit seed so that every experiment is exactly
// reproducible; models must never use the global rand functions.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a source seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream from this one; useful to give each
// simulated entity its own stream so entity counts don't perturb the
// sequences other entities observe.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0,n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Uniform returns a uniform value in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Normal returns a normally distributed value with mean mu and standard
// deviation sigma.
func (g *RNG) Normal(mu, sigma float64) float64 { return mu + sigma*g.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
