package p2p

import (
	"slices"
	"sort"
	"sync"

	"blobvfs/internal/blob"
	"blobvfs/internal/broadcast"
	"blobvfs/internal/cluster"
)

// Config carries the sharing layer's protocol constants.
type Config struct {
	// AnnounceBytes is the wire size of one chunk-location record.
	AnnounceBytes int64
	// DigestEvery pushes the accumulated location delta to all members
	// (via the broadcast tree) after this many fresh announcements.
	// 0 disables digests: every lookup then queries the tracker.
	DigestEvery int
	// MaxUploads caps a member's concurrent uploads to siblings; a
	// saturated holder is skipped. 0 means unlimited.
	MaxUploads int
}

// DefaultConfig returns the calibrated protocol constants.
func DefaultConfig() Config {
	return Config{AnnounceBytes: 24, DigestEvery: 64, MaxUploads: 4}
}

// Stats aggregates a cohort's protocol counters.
type Stats struct {
	Announced    int64 // chunk locations accepted by the tracker
	Duplicates   int64 // announcements dropped by (member, chunk) dedup
	Retracted    int64 // locations withdrawn (local copy diverged)
	Reclaimed    int64 // locations dropped because GC freed the chunk
	DeadDropped  int64 // locations dropped because their holder died
	PeerHits     int64 // Locate calls answered with a peer
	DigestHits   int64 // ... of which served from the local digest
	Misses       int64 // fell back to providers: no sibling holds it
	Saturated    int64 // fell back: every holder at MaxUploads
	DigestPushes int64 // location deltas broadcast to the cohort

	// TierHits breaks PeerHits down by the locality tier between the
	// requester and the chosen uploader (indexed by cluster.Tier).
	// Without a topology every hit lands in cluster.TierRack —
	// locality-aware selection is what moves mass toward the low
	// tiers.
	TierHits [cluster.NumTiers]int64
}

// Registry is the tracker-side sharing state: one Cohort per image.
type Registry struct {
	tracker cluster.NodeID
	cfg     Config
	// lv, when set, is the cluster liveness registry: Locate never
	// returns a holder it reports dead, and announcements from dead
	// members are ignored. Wire NodeChanged as its OnChange listener
	// so a death also drops the member's location records.
	lv *cluster.Liveness
	// topo, when enabled, makes Locate's pick locality-first: among
	// live holders with free upload slots, the nearest tier wins and
	// load only breaks ties within a tier. The zero topology keeps
	// the pure least-loaded pick byte-identical.
	topo cluster.Topology

	// mu is an RWMutex: cohort lookup sits on every module's fetch
	// path, while registration and reclamation are rare, so readers
	// share the lock.
	mu      sync.RWMutex
	cohorts map[blob.ID]*Cohort
}

// SetLiveness attaches the cluster liveness registry (see Registry.lv).
// Call it before any cohort traffic.
func (r *Registry) SetLiveness(lv *cluster.Liveness) { r.lv = lv }

// SetTopology attaches the cluster topology (see Registry.topo). Call
// it before any cohort traffic.
func (r *Registry) SetTopology(t cluster.Topology) { r.topo = t }

// peerAlive reports whether a node may serve or announce chunks: true
// without a liveness registry (no fault injection configured).
func (r *Registry) peerAlive(n cluster.NodeID) bool {
	return r.lv == nil || r.lv.Alive(n)
}

// NodeChanged is the cluster liveness hook: wire it with
// Liveness.OnChange. A death retracts every location record the dead
// member held across all cohorts — the tracker must never steer a
// reader to a dead uploader — and pushes the withdrawal to the
// members along the control tree. A revival needs no tracker action:
// the records are already gone, and the peer re-announces whatever it
// still mirrors on its next fetches (the (member, chunk) dedup pairs
// were cleared with the records).
func (r *Registry) NodeChanged(ctx *cluster.Ctx, node cluster.NodeID, alive bool) {
	if alive {
		return
	}
	r.mu.RLock()
	cohorts := make([]*Cohort, 0, len(r.cohorts))
	for _, co := range r.cohorts {
		cohorts = append(cohorts, co)
	}
	r.mu.RUnlock()
	// The per-cohort retraction broadcasts charge RPCs, so their order
	// must not come from map iteration (determinism convention).
	sort.Slice(cohorts, func(i, j int) bool { return cohorts[i].image < cohorts[j].image })
	for _, co := range cohorts {
		co.dropDeadMember(ctx, node)
	}
}

// dropDeadMember withdraws every location record node holds in the
// cohort and informs the surviving members.
func (co *Cohort) dropDeadMember(ctx *cluster.Ctx, node cluster.NodeID) {
	co.mu.Lock()
	dropped := 0
	for pair := range co.held {
		if pair.node != node {
			continue
		}
		delete(co.held, pair)
		co.holders[pair.key] = removeNode(co.holders[pair.key], node)
		co.digest[pair.key] = removeNode(co.digest[pair.key], node)
		dropped++
	}
	for i := 0; i < len(co.pending); {
		if co.pending[i].node == node {
			co.pending = append(co.pending[:i], co.pending[i+1:]...)
		} else {
			i++
		}
	}
	co.stats.DeadDropped += int64(dropped)
	var targets []cluster.NodeID
	if dropped > 0 {
		for _, m := range co.order {
			if m != node && co.reg.peerAlive(m) {
				targets = append(targets, m)
			}
		}
	}
	co.mu.Unlock()
	if dropped > 0 {
		co.reg.fromTracker(ctx, targets, int64(dropped)*co.reg.cfg.AnnounceBytes)
	}
}

// NewRegistry creates a registry hosted on the tracker node.
func NewRegistry(tracker cluster.NodeID, cfg Config) *Registry {
	return &Registry{tracker: tracker, cfg: cfg, cohorts: make(map[blob.ID]*Cohort)}
}

// Tracker returns the node hosting the registry.
func (r *Registry) Tracker() cluster.NodeID { return r.tracker }

// Register creates (or extends) the cohort for an image and
// disseminates the membership to all members along the broadcast tree.
// It is how the middleware's orchestrator enrolls a deployment: every
// node about to provision the image becomes a potential chunk source
// for its siblings. Register is idempotent per member. Membership is
// established at the tracker synchronously (Register is the tracker
// operation); the broadcast charges the cost of informing the members,
// and callers must not let members use the cohort before Register
// returns — the orchestrator guarantees this by registering in
// Prepare, before any instance is provisioned.
func (r *Registry) Register(ctx *cluster.Ctx, image blob.ID, members []cluster.NodeID) *Cohort {
	r.mu.Lock()
	co, ok := r.cohorts[image]
	if !ok {
		co = &Cohort{
			reg:     r,
			image:   image,
			members: make(map[cluster.NodeID]bool),
			holders: make(map[blob.ChunkKey][]cluster.NodeID),
			held:    make(map[holderPair]bool),
			digest:  make(map[blob.ChunkKey][]cluster.NodeID),
			uploads: make(map[cluster.NodeID]int),
		}
		r.cohorts[image] = co
	}
	r.mu.Unlock()

	co.mu.Lock()
	added := 0
	for _, m := range members {
		if m != r.tracker && !co.members[m] {
			co.members[m] = true
			co.order = append(co.order, m)
			added++
		}
	}
	targets := append([]cluster.NodeID(nil), co.order...)
	co.mu.Unlock()

	if added > 0 {
		// Membership rides the binomial control tree from the tracker.
		r.fromTracker(ctx, targets, int64(added)*r.cfg.AnnounceBytes)
	}
	return co
}

// Cohort returns the cohort registered for an image, or nil.
func (r *Registry) Cohort(image blob.ID) *Cohort {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cohorts[image]
}

// ChunksReclaimed implements blob.ReclaimListener: the garbage
// collector reports the chunk keys it released, and the tracker drops
// every location record for them across all cohorts — a reclaimed
// chunk must not be offered to siblings anymore. The drop is
// tracker-local (the registry state lives on the tracker node); each
// affected cohort's members are informed along the control broadcast
// tree so their digests converge. A Locate in flight during the drop
// can still steer a reader to a stale holder; the reader's provider
// fall-back (blob.Client.getChunk) absorbs exactly that race.
func (r *Registry) ChunksReclaimed(ctx *cluster.Ctx, keys []blob.ChunkKey) {
	r.mu.RLock()
	cohorts := make([]*Cohort, 0, len(r.cohorts))
	for _, co := range r.cohorts {
		cohorts = append(cohorts, co)
	}
	r.mu.RUnlock()
	for _, co := range cohorts {
		co.dropReclaimed(ctx, keys)
	}
}

// dropReclaimed removes every location record of the given keys from
// the cohort and pushes the withdrawal to the members.
func (co *Cohort) dropReclaimed(ctx *cluster.Ctx, keys []blob.ChunkKey) {
	co.mu.Lock()
	dropped := 0
	for _, key := range keys {
		any := len(co.holders[key]) > 0 || len(co.digest[key]) > 0
		// Clearing held pairs for every member also cancels phase-1
		// announce reservations still in flight: their phase 2 finds
		// the pair gone and leaves the freed chunk unpublished.
		for m := range co.members {
			if pair := (holderPair{m, key}); co.held[pair] {
				delete(co.held, pair)
				any = true
			}
		}
		if !any {
			continue
		}
		delete(co.holders, key)
		delete(co.digest, key)
		for i := 0; i < len(co.pending); {
			if co.pending[i].key == key {
				co.pending = append(co.pending[:i], co.pending[i+1:]...)
			} else {
				i++
			}
		}
		co.stats.Reclaimed++
		dropped++
	}
	var targets []cluster.NodeID
	if dropped > 0 {
		targets = append(targets, co.order...)
	}
	co.mu.Unlock()
	if dropped > 0 {
		co.reg.fromTracker(ctx, targets, int64(dropped)*co.reg.cfg.AnnounceBytes)
	}
}

// fromTracker runs a control broadcast rooted at the tracker node,
// spawning onto it first when the calling activity lives elsewhere.
func (r *Registry) fromTracker(ctx *cluster.Ctx, targets []cluster.NodeID, bytes int64) {
	if len(targets) == 0 || bytes <= 0 {
		return
	}
	if ctx.Node() == r.tracker {
		broadcast.Control(ctx, r.tracker, targets, bytes)
		return
	}
	t := ctx.Go("p2p-control", r.tracker, func(cc *cluster.Ctx) {
		broadcast.Control(cc, r.tracker, targets, bytes)
	})
	ctx.Wait(t)
}

// holderPair identifies one (member, chunk) location record.
type holderPair struct {
	node cluster.NodeID
	key  blob.ChunkKey
}

// Cohort is the sharing state of one deployed image. It implements
// blob.ChunkSharer; the member identity of every call is the calling
// activity's node.
type Cohort struct {
	reg   *Registry
	image blob.ID

	mu      sync.Mutex
	members map[cluster.NodeID]bool
	order   []cluster.NodeID // deterministic member iteration
	holders map[blob.ChunkKey][]cluster.NodeID
	held    map[holderPair]bool
	digest  map[blob.ChunkKey][]cluster.NodeID // as of the last push
	pending []holderPair                       // announced since then
	uploads map[cluster.NodeID]int
	stats   Stats
}

// Image returns the blob this cohort shares.
func (co *Cohort) Image() blob.ID { return co.image }

// Members returns the cohort membership in registration order.
func (co *Cohort) Members() []cluster.NodeID {
	co.mu.Lock()
	defer co.mu.Unlock()
	return append([]cluster.NodeID(nil), co.order...)
}

// Stats returns a snapshot of the protocol counters.
func (co *Cohort) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.stats
}

// Announce implements blob.ChunkSharer: it registers ctx.Node() as a
// holder of the given chunks with one small RPC to the tracker.
// Already-known (member, chunk) pairs are filtered out first — the
// guard that keeps a chunk announced both by a prefetch and by a
// concurrent demand fetch from being double-counted — and an
// all-duplicate announcement costs nothing. The new locations become
// visible to Locate only after the RPC completes: a sibling cannot be
// steered to a holder before the announcement could physically have
// reached the tracker. Crossing the digest threshold triggers an
// asynchronous location-delta broadcast.
func (co *Cohort) Announce(ctx *cluster.Ctx, keys []blob.ChunkKey) {
	member := ctx.Node()
	if !co.reg.peerAlive(member) {
		return // a dead node must not (re)register as an uploader
	}
	co.mu.Lock()
	if !co.members[member] {
		co.mu.Unlock()
		return
	}
	// Phase 1: reserve the fresh pairs (exact dedup against concurrent
	// announcers) without publishing them yet.
	var fresh []holderPair
	for _, key := range keys {
		if key == 0 {
			continue // sparse chunks have no payload to share
		}
		pair := holderPair{member, key}
		if co.held[pair] {
			co.stats.Duplicates++
			continue
		}
		co.held[pair] = true
		fresh = append(fresh, pair)
	}
	co.mu.Unlock()
	if len(fresh) == 0 {
		return
	}

	ctx.RPC(co.reg.tracker, int64(len(fresh))*co.reg.cfg.AnnounceBytes, 16)

	// Phase 2: the announcement has reached the tracker; publish the
	// locations. A pair retracted while the RPC was in flight (held
	// entry gone again) stays unpublished.
	co.mu.Lock()
	digests := co.reg.cfg.DigestEvery > 0
	for _, pair := range fresh {
		if !co.held[pair] {
			continue
		}
		co.holders[pair.key] = append(co.holders[pair.key], pair.node)
		// pending feeds the digest broadcast; with digests disabled it
		// would only accumulate, so don't collect it at all.
		if digests {
			co.pending = append(co.pending, pair)
		}
		co.stats.Announced++
	}
	var delta []holderPair
	var pushTargets []cluster.NodeID
	if digests && len(co.pending) >= co.reg.cfg.DigestEvery {
		delta = co.pending
		co.pending = nil
		pushTargets = append(pushTargets, co.order...)
		co.stats.DigestPushes++
	}
	co.mu.Unlock()

	if len(delta) > 0 {
		// The delta rides the broadcast tree in the background; the
		// announcer does not wait for the fan-out, and members' local
		// digests only incorporate it once the broadcast has delivered
		// it (pairs retracted in the meantime are dropped).
		reg := co.reg
		pushBytes := int64(len(delta)) * reg.cfg.AnnounceBytes
		ctx.Go("p2p-digest", reg.tracker, func(cc *cluster.Ctx) {
			broadcast.Control(cc, reg.tracker, pushTargets, pushBytes)
			co.mu.Lock()
			for _, pair := range delta {
				if co.held[pair] && !containsNode(co.digest[pair.key], pair.node) {
					co.digest[pair.key] = append(co.digest[pair.key], pair.node)
				}
			}
			co.mu.Unlock()
		})
	}
}

// Retract implements blob.ChunkSharer: ctx.Node() withdraws itself as
// a holder of the given chunks, with one small RPC to the tracker for
// the whole batch. Pairs the tracker does not know are ignored.
func (co *Cohort) Retract(ctx *cluster.Ctx, keys []blob.ChunkKey) {
	member := ctx.Node()
	co.mu.Lock()
	dropped := 0
	for _, key := range keys {
		pair := holderPair{member, key}
		if !co.held[pair] {
			continue
		}
		delete(co.held, pair)
		co.holders[key] = removeNode(co.holders[key], member)
		co.digest[key] = removeNode(co.digest[key], member)
		for i, p := range co.pending {
			if p == pair {
				co.pending = append(co.pending[:i], co.pending[i+1:]...)
				break
			}
		}
		co.stats.Retracted++
		dropped++
	}
	co.mu.Unlock()
	if dropped > 0 {
		ctx.RPC(co.reg.tracker, int64(dropped)*co.reg.cfg.AnnounceBytes, 16)
	}
}

// Locate implements blob.ChunkSharer: it returns the least-loaded
// cohort peer holding the chunk, reserving one of its upload slots.
// The local digest is consulted first at zero cost; a digest miss pays
// one small RPC to query the tracker's live map. ok=false sends the
// caller to the providers (nobody has the chunk, or every holder is
// at its upload cap).
func (co *Cohort) Locate(ctx *cluster.Ctx, key blob.ChunkKey) (cluster.NodeID, func(), bool) {
	req := ctx.Node()
	co.mu.Lock()
	if !co.members[req] {
		co.mu.Unlock()
		return 0, nil, false
	}
	peer, any, found := co.pickLocked(co.digest[key], req)
	if found {
		co.stats.DigestHits++
	} else {
		co.mu.Unlock()
		ctx.RPC(co.reg.tracker, 32, 32)
		co.mu.Lock()
		peer, any, found = co.pickLocked(co.holders[key], req)
	}
	if !found {
		if any {
			co.stats.Saturated++
		} else {
			co.stats.Misses++
		}
		co.mu.Unlock()
		return 0, nil, false
	}
	co.uploads[peer]++
	co.stats.PeerHits++
	co.stats.TierHits[co.reg.topo.Tier(req, peer)]++
	co.mu.Unlock()
	release := func() {
		co.mu.Lock()
		co.uploads[peer]--
		co.mu.Unlock()
	}
	return peer, release, true
}

// pickLocked chooses the eligible holder by locality first, load
// second (deterministic: first-announced wins ties). With a topology
// attached, a holder in a nearer tier always beats a farther one and
// the load comparison only breaks ties within a tier; without one,
// every holder is the same tier and the pick is the historical pure
// least-loaded choice. Holders the liveness registry reports dead are
// never eligible — the record drop of dropDeadMember and this check
// together guarantee a dead uploader is never selected, even in the
// window before the drop ran. any reports whether a non-self holder
// existed at all, so the caller can distinguish miss from saturation.
func (co *Cohort) pickLocked(holders []cluster.NodeID, req cluster.NodeID) (best cluster.NodeID, any, found bool) {
	maxUp := co.reg.cfg.MaxUploads
	var bestTier cluster.Tier
	var bestLoad int
	for _, h := range holders {
		if h == req || !co.reg.peerAlive(h) {
			continue
		}
		any = true
		load := co.uploads[h]
		if maxUp > 0 && load >= maxUp {
			continue
		}
		tier := co.reg.topo.Tier(req, h)
		if !found || tier < bestTier || (tier == bestTier && load < bestLoad) {
			best, bestTier, bestLoad, found = h, tier, load, true
		}
		if bestTier == cluster.TierRack && bestLoad == 0 {
			// Unbeatable: TierRack is the nearest tier two distinct
			// nodes can share and no load undercuts idle, while equal
			// (tier, load) never displaces an earlier pick. Stopping
			// here returns exactly the full scan's choice — which is
			// what keeps a 10k-member cohort's popular chunks (held by
			// nearly everyone) from costing O(members) per locate.
			break
		}
	}
	return best, any, found
}

func containsNode(nodes []cluster.NodeID, n cluster.NodeID) bool {
	return slices.Contains(nodes, n)
}

// removeNode deletes the first occurrence of n, in place.
func removeNode(nodes []cluster.NodeID, n cluster.NodeID) []cluster.NodeID {
	if i := slices.Index(nodes, n); i >= 0 {
		return slices.Delete(nodes, i, i+1)
	}
	return nodes
}
