package p2p

import (
	"testing"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
)

// topo2z splits 8 nodes into 2 zones × 2 racks × 2 nodes (node 7, the
// tracker, sits in zone 1).
func topo2z() cluster.Topology {
	return cluster.Topology{Zones: 2, RacksPerZone: 2, NodesPerRack: 2,
		RackBandwidth: 1, ZoneBandwidth: 1}
}

// TestPickPrefersNearTierOverLoad: locality outranks load — a loaded
// same-rack holder beats an idle cross-zone one; within a tier the
// least-loaded holder still wins.
func TestPickPrefersNearTierOverLoad(t *testing.T) {
	fab := cluster.NewLive(8)
	reg, co := newCohort(t, fab, DefaultConfig(), []cluster.NodeID{0, 1, 2, 4, 5})
	reg.SetTopology(topo2z())
	// Holders: node 1 (same rack as requester 0), nodes 4 and 5
	// (other zone).
	runOn(fab, 1, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) })
	runOn(fab, 4, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) })
	runOn(fab, 5, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) })
	runOn(fab, 0, func(ctx *cluster.Ctx) {
		// Occupy 3 of node 1's 4 upload slots: it stays the pick
		// because it is a tier closer, despite the load.
		var releases []func()
		for i := 0; i < 3; i++ {
			peer, release, ok := co.Locate(ctx, 7)
			if !ok || peer != 1 {
				t.Fatalf("Locate #%d = (%d, %v), want same-rack node 1", i, peer, ok)
			}
			releases = append(releases, release)
		}
		// Saturate the 4th slot: the pick falls outward to the other
		// zone, least-loaded first.
		_, last, ok := co.Locate(ctx, 7)
		if !ok {
			t.Fatal("Locate failed with free slots remaining")
		}
		peer, release, ok := co.Locate(ctx, 7)
		if !ok || (peer != 4 && peer != 5) {
			t.Fatalf("Locate past saturation = (%d, %v), want a zone-1 holder", peer, ok)
		}
		release()
		last()
		for _, r := range releases {
			r()
		}
	})
	st := co.Stats()
	if st.TierHits[cluster.TierRack] != 4 || st.TierHits[cluster.TierRemote] != 1 {
		t.Errorf("TierHits = %v, want 4 rack / 1 remote", st.TierHits)
	}
}

// TestPickWithoutTopologyStaysLeastLoaded pins the degenerate case:
// no topology (or one domain for everyone) keeps the historical pure
// least-loaded pick, and every hit books under TierRack.
func TestPickWithoutTopologyStaysLeastLoaded(t *testing.T) {
	for _, topo := range []cluster.Topology{
		{},
		{Zones: 1, RacksPerZone: 1, NodesPerRack: 8, RackBandwidth: 1, ZoneBandwidth: 1},
	} {
		fab := cluster.NewLive(8)
		reg, co := newCohort(t, fab, DefaultConfig(), []cluster.NodeID{0, 1, 2, 4, 5})
		if topo.Enabled() {
			reg.SetTopology(topo)
		}
		runOn(fab, 1, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) })
		runOn(fab, 4, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) })
		runOn(fab, 0, func(ctx *cluster.Ctx) {
			// First pick takes the first-announced holder; holding its
			// slot makes the second pick the other, less-loaded one.
			p1, r1, ok := co.Locate(ctx, 7)
			if !ok {
				t.Fatal("Locate found no holder")
			}
			p2, r2, ok := co.Locate(ctx, 7)
			if !ok {
				t.Fatal("Locate found no second holder")
			}
			if p1 == p2 {
				t.Errorf("least-loaded pick reused node %d over an idle holder", p1)
			}
			r1()
			r2()
		})
		st := co.Stats()
		if st.TierHits[cluster.TierRack] != 2 {
			t.Errorf("topo %+v: TierHits = %v, want both hits under rack", topo, st.TierHits)
		}
	}
}
