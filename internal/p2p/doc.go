// Package p2p implements peer-to-peer chunk sharing for concurrent
// multideployment — the scaling direction §7 of the paper names as
// avoiding provider hot-spots when N mirroring modules deploy the same
// image at once.
//
// Without sharing, every demand fetch of a hot chunk lands on the same
// small replica set, so per-provider load scales linearly with N. With
// sharing, a module that has already mirrored a chunk (by demand fetch,
// prefetch or commit) becomes an alternate source for its cohort
// siblings, and provider load per chunk drops to O(1): the first few
// fetches seed the cohort, everything after is peer traffic spread over
// the deployment's own NICs and disks.
//
// The design is tracker-based, like a registry-scale mirror fan-out
// (cf. oc-mirror's mirror-to-disk-then-redistribute flow):
//
//   - A Registry lives on a tracker node (the version-manager/service
//     node in the experiments). Per deployed image it keeps a Cohort:
//     the member nodes plus a chunk-key → holders location map.
//   - Members announce freshly mirrored chunks with one small RPC to
//     the tracker. Announcements are deduplicated per (member, chunk),
//     so a chunk fetched twice concurrently is only recorded once.
//   - Every Config.DigestEvery fresh announcements the tracker pushes
//     the accumulated location delta to all members along the binomial
//     tree of the broadcast package (Control). Lookups that hit the
//     local digest cost nothing; only digest misses pay a tracker RPC.
//   - Locate picks the least-loaded holder (all nodes are equidistant
//     behind the non-blocking switch, so "nearest" degenerates to
//     least-loaded) and reserves one of its Config.MaxUploads upload
//     slots. If every holder is saturated the caller falls back to the
//     providers — hot peers shed load instead of becoming the new
//     hot-spot.
//   - A member whose local copy diverges from the published content
//     (a mirrored chunk dirtied by a guest write) retracts itself.
//
// Cohort implements blob.ChunkSharer; the blob client consults it on
// every chunk read and mirror modules announce through it. State is
// shared memory guarded by a mutex that is never held across fabric
// operations, so the same code runs on the live fabric (real
// goroutines) and the discrete-event simulation.
package p2p
