package p2p

import (
	"testing"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/sim"
)

// TestLocateNeverSelectsDeadPeer: randomized member deaths against an
// announcing cohort. The tracker must retract every location record a
// dead member held, Locate must never return a dead uploader — neither
// from the live map nor from a stale digest — and a dead member's own
// announcements must be ignored.
func TestLocateNeverSelectsDeadPeer(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := sim.NewRNG(int64(9000 + trial))
		nMembers := 4 + rng.Intn(8)
		nKeys := 8 + rng.Intn(24)
		fab := cluster.NewSim(cluster.DefaultConfig(nMembers + 1))
		tracker := cluster.NodeID(0)
		members := make([]cluster.NodeID, nMembers)
		for i := range members {
			members[i] = cluster.NodeID(i + 1)
		}
		// A tiny digest threshold so stale digests are actually in play.
		reg := NewRegistry(tracker, Config{AnnounceBytes: 24, DigestEvery: 4, MaxUploads: 4})
		lv := cluster.NewLiveness(nMembers + 1)
		reg.SetLiveness(lv)
		lv.OnChange(reg.NodeChanged)

		fab.Run(func(ctx *cluster.Ctx) {
			co := reg.Register(ctx, 1, members)
			keys := make([]blob.ChunkKey, nKeys)
			for i := range keys {
				keys[i] = blob.ChunkKey(i + 1)
			}
			// Every member announces a random subset.
			for _, m := range members {
				var mine []blob.ChunkKey
				for _, k := range keys {
					if rng.Intn(2) == 0 {
						mine = append(mine, k)
					}
				}
				m := m
				ctx.Wait(ctx.Go("announce", m, func(cc *cluster.Ctx) {
					co.Announce(cc, mine)
				}))
			}
			// Kill members one at a time, asserting after each death
			// that no Locate from any surviving member returns a dead
			// peer.
			perm := rng.Perm(nMembers)
			for _, vi := range perm[:nMembers/2] {
				victim := members[vi]
				lv.Kill(ctx, victim)
				for _, m := range members {
					if !lv.Alive(m) {
						continue
					}
					m := m
					ctx.Wait(ctx.Go("locate", m, func(cc *cluster.Ctx) {
						for _, k := range keys {
							peer, release, ok := co.Locate(cc, k)
							if !ok {
								continue
							}
							if !lv.Alive(peer) {
								t.Errorf("Locate(%d) from %d returned dead peer %d", k, m, peer)
							}
							release()
						}
					}))
				}
				// A dead member's announcements must be dropped.
				st := co.Stats()
				if st.DeadDropped == 0 {
					t.Fatal("death retracted no location records")
				}
				// ... and its re-announcements ignored.
				victimKeys := keys[:2]
				ctx.Wait(ctx.Go("dead-announce", victim, func(cc *cluster.Ctx) {
					co.Announce(cc, victimKeys)
				}))
				for _, k := range victimKeys {
					for _, h := range co.holders[k] {
						if h == victim {
							t.Fatalf("dead member %d re-registered as holder of %d", victim, k)
						}
					}
				}
			}
			// Revived members start clean and may announce again.
			revived := members[perm[0]]
			lv.Revive(ctx, revived)
			ctx.Wait(ctx.Go("re-announce", revived, func(cc *cluster.Ctx) {
				co.Announce(cc, keys[:1])
			}))
			found := false
			for _, h := range co.holders[keys[0]] {
				if h == revived {
					found = true
				}
			}
			if !found {
				t.Fatalf("revived member %d could not re-announce", revived)
			}
		})
	}
}
