package p2p

import (
	"sync"
	"testing"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
)

// runOn executes fn as an activity on the given node of a live fabric.
func runOn(fab *cluster.Live, node cluster.NodeID, fn func(ctx *cluster.Ctx)) {
	fab.Run(func(ctx *cluster.Ctx) {
		t := ctx.Go("test", node, fn)
		ctx.Wait(t)
	})
}

func newCohort(t *testing.T, fab *cluster.Live, cfg Config, members []cluster.NodeID) (*Registry, *Cohort) {
	t.Helper()
	reg := NewRegistry(cluster.NodeID(fab.Nodes()-1), cfg)
	var co *Cohort
	fab.Run(func(ctx *cluster.Ctx) {
		co = reg.Register(ctx, 1, members)
	})
	return reg, co
}

// TestLocateFallsBackToProvidersWhenNoPeer: a chunk nobody announced
// must miss, sending the caller to the providers.
func TestLocateFallsBackToProvidersWhenNoPeer(t *testing.T) {
	fab := cluster.NewLive(4)
	_, co := newCohort(t, fab, DefaultConfig(), []cluster.NodeID{0, 1, 2})
	runOn(fab, 1, func(ctx *cluster.Ctx) {
		if _, _, ok := co.Locate(ctx, 7); ok {
			t.Error("Locate found a peer for a never-announced chunk")
		}
	})
	if st := co.Stats(); st.Misses != 1 || st.PeerHits != 0 {
		t.Errorf("stats = %+v, want 1 miss and no hits", st)
	}
}

// TestLocateNeverReturnsSelf: the only holder of a chunk must not be
// offered to itself; it falls back to the providers instead.
func TestLocateNeverReturnsSelf(t *testing.T) {
	fab := cluster.NewLive(4)
	_, co := newCohort(t, fab, DefaultConfig(), []cluster.NodeID{0, 1, 2})
	runOn(fab, 0, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) })
	runOn(fab, 0, func(ctx *cluster.Ctx) {
		if _, _, ok := co.Locate(ctx, 7); ok {
			t.Error("Locate returned the requester as its own peer")
		}
	})
	runOn(fab, 1, func(ctx *cluster.Ctx) {
		peer, release, ok := co.Locate(ctx, 7)
		if !ok || peer != 0 {
			t.Errorf("Locate = (%d, %v), want node 0", peer, ok)
		}
		if ok {
			release()
		}
	})
}

// TestAnnounceDeduplicates: the same (member, chunk) pair announced
// twice — e.g. by a prefetch racing a demand fetch — is recorded once.
func TestAnnounceDeduplicates(t *testing.T) {
	fab := cluster.NewLive(4)
	_, co := newCohort(t, fab, DefaultConfig(), []cluster.NodeID{0, 1, 2})
	runOn(fab, 0, func(ctx *cluster.Ctx) {
		co.Announce(ctx, []blob.ChunkKey{7, 8})
		co.Announce(ctx, []blob.ChunkKey{8, 9})
	})
	st := co.Stats()
	if st.Announced != 3 || st.Duplicates != 1 {
		t.Errorf("stats = %+v, want 3 announced and 1 duplicate", st)
	}
	runOn(fab, 1, func(ctx *cluster.Ctx) {
		for _, key := range []blob.ChunkKey{7, 8, 9} {
			peer, release, ok := co.Locate(ctx, key)
			if !ok || peer != 0 {
				t.Errorf("Locate(%d) = (%d, %v), want node 0", key, peer, ok)
				continue
			}
			release()
		}
	})
}

// TestAnnounceIgnoresNonMembersAndSparseChunks.
func TestAnnounceIgnoresNonMembersAndSparseChunks(t *testing.T) {
	fab := cluster.NewLive(4)
	_, co := newCohort(t, fab, DefaultConfig(), []cluster.NodeID{0, 1})
	runOn(fab, 2, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) }) // not a member
	runOn(fab, 0, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{0}) }) // sparse
	if st := co.Stats(); st.Announced != 0 {
		t.Errorf("announced = %d, want 0", st.Announced)
	}
}

// TestUploadCapShedsToProviders: once every holder's upload slots are
// taken, Locate reports saturation and the caller uses the providers.
func TestUploadCapShedsToProviders(t *testing.T) {
	fab := cluster.NewLive(4)
	cfg := DefaultConfig()
	cfg.MaxUploads = 2
	_, co := newCohort(t, fab, cfg, []cluster.NodeID{0, 1, 2})
	runOn(fab, 0, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) })
	runOn(fab, 1, func(ctx *cluster.Ctx) {
		var releases []func()
		for i := 0; i < cfg.MaxUploads; i++ {
			_, release, ok := co.Locate(ctx, 7)
			if !ok {
				t.Fatalf("Locate %d refused below the cap", i)
			}
			releases = append(releases, release)
		}
		if _, _, ok := co.Locate(ctx, 7); ok {
			t.Error("Locate handed out an upload slot beyond MaxUploads")
		}
		if st := co.Stats(); st.Saturated != 1 {
			t.Errorf("saturated = %d, want 1", st.Saturated)
		}
		for _, release := range releases {
			release()
		}
		if _, release, ok := co.Locate(ctx, 7); !ok {
			t.Error("Locate refused after slots were released")
		} else {
			release()
		}
	})
}

// TestLocatePrefersLeastLoadedHolder.
func TestLocatePrefersLeastLoadedHolder(t *testing.T) {
	fab := cluster.NewLive(5)
	_, co := newCohort(t, fab, DefaultConfig(), []cluster.NodeID{0, 1, 2, 3})
	runOn(fab, 0, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) })
	runOn(fab, 1, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) })
	runOn(fab, 2, func(ctx *cluster.Ctx) {
		// First pick ties at load 0: the first announcer wins.
		p1, r1, _ := co.Locate(ctx, 7)
		// Second pick must move to the idle holder.
		p2, r2, _ := co.Locate(ctx, 7)
		if p1 != 0 || p2 != 1 {
			t.Errorf("picks = %d, %d; want 0 then 1", p1, p2)
		}
		r1()
		r2()
	})
}

// TestRetractRemovesHolder: a retracted chunk is no longer served by
// the retracting member.
func TestRetractRemovesHolder(t *testing.T) {
	fab := cluster.NewLive(4)
	_, co := newCohort(t, fab, DefaultConfig(), []cluster.NodeID{0, 1, 2})
	runOn(fab, 0, func(ctx *cluster.Ctx) {
		co.Announce(ctx, []blob.ChunkKey{7})
		co.Retract(ctx, []blob.ChunkKey{7})
	})
	runOn(fab, 1, func(ctx *cluster.Ctx) {
		if _, _, ok := co.Locate(ctx, 7); ok {
			t.Error("Locate served a retracted chunk")
		}
	})
	if st := co.Stats(); st.Retracted != 1 {
		t.Errorf("retracted = %d, want 1", st.Retracted)
	}
	// Re-announcing after retraction works.
	runOn(fab, 0, func(ctx *cluster.Ctx) { co.Announce(ctx, []blob.ChunkKey{7}) })
	runOn(fab, 1, func(ctx *cluster.Ctx) {
		if _, release, ok := co.Locate(ctx, 7); !ok {
			t.Error("Locate missed a re-announced chunk")
		} else {
			release()
		}
	})
}

// TestRegisterIsIdempotentAndIncremental.
func TestRegisterIsIdempotentAndIncremental(t *testing.T) {
	fab := cluster.NewLive(6)
	reg := NewRegistry(5, DefaultConfig())
	fab.Run(func(ctx *cluster.Ctx) {
		a := reg.Register(ctx, 1, []cluster.NodeID{0, 1})
		b := reg.Register(ctx, 1, []cluster.NodeID{1, 2})
		if a != b {
			t.Error("Register created two cohorts for one image")
		}
		if got := len(a.Members()); got != 3 {
			t.Errorf("members = %d, want 3", got)
		}
		if reg.Cohort(1) != a {
			t.Error("Cohort lookup mismatch")
		}
		if reg.Cohort(2) != nil {
			t.Error("Cohort invented an unregistered image")
		}
	})
	// The tracker itself is never enrolled as a member.
	fab.Run(func(ctx *cluster.Ctx) {
		co := reg.Register(ctx, 1, []cluster.NodeID{5})
		for _, m := range co.Members() {
			if m == 5 {
				t.Error("tracker enrolled as a cohort member")
			}
		}
	})
}

// TestCohortRegistryRace hammers one cohort from many concurrent
// activities on the live fabric — announce, locate, retract and stats
// all interleaving — so `go test -race` exercises the registry's
// locking.
func TestCohortRegistryRace(t *testing.T) {
	const members = 8
	fab := cluster.NewLive(members + 1)
	nodes := make([]cluster.NodeID, members)
	for i := range nodes {
		nodes[i] = cluster.NodeID(i)
	}
	cfg := DefaultConfig()
	cfg.DigestEvery = 4 // force frequent digest pushes
	reg := NewRegistry(members, cfg)
	var co *Cohort
	fab.Run(func(ctx *cluster.Ctx) { co = reg.Register(ctx, 1, nodes) })

	var wg sync.WaitGroup
	fab.Run(func(ctx *cluster.Ctx) {
		for n := 0; n < members; n++ {
			n := n
			wg.Add(1)
			ctx.Go("member", cluster.NodeID(n), func(cc *cluster.Ctx) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					key := blob.ChunkKey(i%17 + 1)
					co.Announce(cc, []blob.ChunkKey{key, key + 1})
					if peer, release, ok := co.Locate(cc, key); ok {
						if peer == cc.Node() {
							t.Errorf("node %d located itself", peer)
						}
						release()
					}
					if i%5 == 0 {
						co.Retract(cc, []blob.ChunkKey{key})
					}
					_ = co.Stats()
				}
			})
		}
	})
	wg.Wait()
	st := co.Stats()
	if st.Announced == 0 || st.PeerHits == 0 {
		t.Errorf("race test did no work: %+v", st)
	}
}
