package mirror

import (
	"testing"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/p2p"
)

// TestConcurrentPrefetchAndDemandCountOnce is the regression test for
// the double-counting guard: a prefetch and a demand read racing on
// the same chunk must leave the chunk counted once in the image stats
// and announced once to the sharing cohort.
//
// The race is staged deterministically on the simulated fabric: both
// activities start at the same virtual time, the prefetch begins
// fetching chunk 0, and while its transfer is in flight the demand
// read fetches the same chunk. One merge wins; the loser is recorded
// as a DuplicateFetch instead of inflating the counters.
func TestConcurrentPrefetchAndDemandCountOnce(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(4))
	sys := blob.NewSystem([]cluster.NodeID{1, 2}, 3, 1)
	reg := p2p.NewRegistry(3, p2p.DefaultConfig())
	mod := NewModule(0, blob.NewClient(sys), DefaultConfig())

	var im *Image
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		id, err := c.Create(ctx, 64<<10, 8<<10)
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.WriteFull(ctx, id, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		mod.SetSharer(reg.Register(ctx, id, []cluster.NodeID{0, 1}))
		im, err = mod.Open(ctx, id, v, false)
		if err != nil {
			t.Fatal(err)
		}
	})

	fab.Run(func(ctx *cluster.Ctx) {
		pre := ctx.Go("prefetch", 0, func(cc *cluster.Ctx) {
			if err := im.Prefetch(cc, []int64{0, 1, 2, 3}); err != nil {
				t.Error(err)
			}
		})
		dem := ctx.Go("demand", 0, func(cc *cluster.Ctx) {
			if err := im.Read(cc, 0, 100); err != nil { // chunk 0
				t.Error(err)
			}
		})
		ctx.Wait(pre)
		ctx.Wait(dem)
	})

	st := im.Stats()
	if st.RemoteChunkFetches != 4 {
		t.Errorf("RemoteChunkFetches = %d, want 4 (each chunk counted once)", st.RemoteChunkFetches)
	}
	if st.DuplicateFetches != 1 {
		t.Errorf("DuplicateFetches = %d, want 1 (the lost merge race)", st.DuplicateFetches)
	}
	// The demand-read chunk appears in the access profile exactly once,
	// whichever side won the merge race.
	hits := 0
	for _, ci := range im.AccessOrder() {
		if ci == 0 {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("chunk 0 appears %d times in access profile %v, want once", hits, im.AccessOrder())
	}
	cs := reg.Cohort(im.BlobID()).Stats()
	if cs.Announced != 4 {
		t.Errorf("cohort saw %d announcements, want 4", cs.Announced)
	}
	if cs.Duplicates != 0 {
		t.Errorf("cohort deduplicated %d announcements; the mirror guard should have prevented them", cs.Duplicates)
	}
}

// TestPrefetchSkipsInflightDemandFetch: a prefetch arriving while a
// demand fetch of the same chunk is in flight skips it entirely — no
// second transfer is issued for a chunk the boot is already fetching.
func TestPrefetchSkipsInflightDemandFetch(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(4))
	sys := blob.NewSystem([]cluster.NodeID{1, 2}, 3, 1)
	mod := NewModule(0, blob.NewClient(sys), DefaultConfig())

	var im *Image
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		id, err := c.Create(ctx, 64<<10, 8<<10)
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.WriteFull(ctx, id, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		im, err = mod.Open(ctx, id, v, false)
		if err != nil {
			t.Fatal(err)
		}
	})

	fab.Run(func(ctx *cluster.Ctx) {
		dem := ctx.Go("demand", 0, func(cc *cluster.Ctx) {
			if err := im.Read(cc, 0, 100); err != nil {
				t.Error(err)
			}
		})
		pre := ctx.Go("prefetch", 0, func(cc *cluster.Ctx) {
			// Let the demand fetch get in flight first (it pays the
			// 20 µs FUSE crossing before fetching, and its transfer
			// lasts hundreds of µs), then prefetch the same chunk: it
			// must be skipped, not fetched twice.
			cc.Sleep(1e-4)
			if err := im.Prefetch(cc, []int64{0}); err != nil {
				t.Error(err)
			}
		})
		ctx.Wait(dem)
		ctx.Wait(pre)
	})

	st := im.Stats()
	if st.RemoteChunkFetches != 1 || st.DuplicateFetches != 0 || st.PrefetchedChunks != 0 {
		t.Errorf("stats = %+v, want exactly one demand fetch and no prefetch work", st)
	}
}
