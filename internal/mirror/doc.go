// Package mirror implements the paper's core contribution: the
// mirroring module that exposes a BlobSeer snapshot to the hypervisor
// as a plain raw image file on the local disk, while lazily fetching
// content on first access and keeping all modifications local until a
// snapshot is requested (paper §3.1.2, §3.3, §4.2).
//
// In the paper the module is a FUSE file system; here it is a library
// with the same structure. The R/W translator turns hypervisor reads
// and writes into local and remote operations; the local modification
// manager tracks, per chunk, one contiguous mirrored region and one
// contiguous dirty region, which bounds fragmentation metadata to
// O(chunks) (strategy 2 of §3.3). Remote reads always fetch the full
// minimal set of chunks covering the requested range (strategy 1).
//
// The control primitives CLONE and COMMIT — ioctls in the paper — are
// the Image.Clone and Image.Commit methods.
//
// When the module is attached to a peer-to-peer sharing cohort
// (SetSharer), an image announces every chunk it mirrors — demand
// fetch, prefetch or commit — so cohort siblings can fetch it from
// this node instead of the providers, and retracts chunks whose local
// copy diverges from the published content (guest writes).
package mirror
