package mirror

import (
	"math/rand"
	"sync"
	"testing"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/p2p"
)

// TestGCConcurrentFetchAnnounceRetract is the race test for the
// garbage collector against the full sharing data path — the race the
// fall-back in blob.Client.getChunk exists for: cohort members demand-
// fetch (announcing mirrored chunks), overwrite (retracting them),
// commit new versions, and retire old ones, while a collector with the
// registry as its reclaim listener runs continuously. On the live
// fabric all of this is real goroutines, so -race checks the lifecycle
// locks, and the content assertions check that no live byte is lost:
// every read an image serves must match the writer's shadow copy.
func TestGCConcurrentFetchAnnounceRetract(t *testing.T) {
	const (
		members = 4
		rounds  = 10
		chunks  = 16
		csize   = 512
	)
	// Nodes 0..members-1 run mirrors; members..members+1 are providers;
	// the last node hosts the version manager and the p2p tracker.
	fab := cluster.NewLive(members + 3)
	provs := []cluster.NodeID{members, members + 1}
	service := cluster.NodeID(members + 2)
	sys := blob.NewSystem(provs, service, 1)
	reg := p2p.NewRegistry(service, p2p.DefaultConfig())
	gc := blob.NewCollector(sys)
	gc.SetListener(reg)

	var baseID blob.ID
	var baseV blob.Version
	baseData := make([]byte, chunks*csize)
	for i := range baseData {
		baseData[i] = byte(i * 13)
	}
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		var err error
		baseID, err = c.Create(ctx, chunks*csize, csize)
		if err != nil {
			t.Fatal(err)
		}
		baseV, err = c.WriteAt(ctx, baseID, 0, baseData, 0)
		if err != nil {
			t.Fatal(err)
		}
		var nodes []cluster.NodeID
		for i := 0; i < members; i++ {
			nodes = append(nodes, cluster.NodeID(i))
		}
		reg.Register(ctx, baseID, nodes)
	})

	var wg sync.WaitGroup
	finalID := make([]blob.ID, members)
	finalV := make([]blob.Version, members)
	fab.Run(func(ctx *cluster.Ctx) {
		cohort := reg.Cohort(baseID)
		done := make(chan struct{})
		var tasks []cluster.Task
		for w := 0; w < members; w++ {
			w := w
			wg.Add(1)
			tasks = append(tasks, ctx.Go("member", cluster.NodeID(w), func(cc *cluster.Ctx) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(31 + w)))
				mod := NewModule(cluster.NodeID(w), blob.NewClient(sys), DefaultConfig())
				mod.SetSharer(cohort)
				im, err := mod.Open(cc, baseID, baseV, true)
				if err != nil {
					t.Error(err)
					return
				}
				shadow := append([]byte(nil), baseData...)
				for r := 0; r < rounds; r++ {
					// Demand-read a random range: fetches announce to
					// the cohort, and may be served by a sibling whose
					// copy the GC is about to invalidate.
					lo := rng.Intn(chunks * csize)
					ln := 1 + rng.Intn(chunks*csize-lo)
					buf := make([]byte, ln)
					if _, err := im.ReadAt(cc, buf, int64(lo)); err != nil {
						t.Errorf("member %d read: %v", w, err)
						return
					}
					for i := range buf {
						if buf[i] != shadow[lo+i] {
							t.Errorf("member %d: read diverged at byte %d", w, lo+i)
							return
						}
					}
					// Overwrite a chunk-sized region: retracts the
					// announcement and dirties the chunk.
					ci := rng.Intn(chunks)
					patch := make([]byte, csize)
					for i := range patch {
						patch[i] = byte(w*32 + r + i)
					}
					if _, err := im.WriteAt(cc, patch, int64(ci*csize)); err != nil {
						t.Errorf("member %d write: %v", w, err)
						return
					}
					copy(shadow[ci*csize:], patch)
					// Snapshot: first round clones into an own lineage,
					// then commits — announcing the committed chunks.
					if im.BlobID() == baseID {
						if err := im.Clone(cc); err != nil {
							t.Errorf("member %d clone: %v", w, err)
							return
						}
					}
					v, err := im.Commit(cc)
					if err != nil {
						t.Errorf("member %d commit: %v", w, err)
						return
					}
					// Keep-last-2 retention on the own lineage feeds the
					// collector retired versions to reclaim.
					if v > 2 {
						if _, err := sys.VM.RetireUpTo(cc, im.BlobID(), v-2); err != nil {
							t.Errorf("member %d retire: %v", w, err)
							return
						}
					}
				}
				// Final full read against the shadow.
				buf := make([]byte, chunks*csize)
				if _, err := im.ReadAt(cc, buf, 0); err != nil {
					t.Errorf("member %d final read: %v", w, err)
					return
				}
				for i := range buf {
					if buf[i] != shadow[i] {
						t.Errorf("member %d: final content diverged at byte %d", w, i)
						return
					}
				}
				finalID[w], finalV[w] = im.BlobID(), im.Version()
				im.Close(cc)
			}))
		}
		collector := ctx.Go("gc", service, func(cc *cluster.Ctx) {
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := gc.Collect(cc); err != nil {
					t.Errorf("concurrent Collect: %v", err)
					return
				}
			}
		})
		wg.Wait()
		close(done)
		ctx.Wait(collector)
		for _, task := range tasks {
			ctx.Wait(task)
		}
	})

	// Quiesced: one deterministic cycle reclaims whatever the racing
	// collector did not catch in flight.
	fab.Run(func(ctx *cluster.Ctx) {
		if _, err := gc.Collect(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if sys.Providers.Reclaimed.Load() == 0 {
		t.Fatal("churning members never made the collector reclaim a chunk")
	}

	// A member's own garbage never leaves a stale location record: the
	// write that makes a committed chunk unreachable also retracts it.
	// The stale records the GC retraction exists for come from a
	// sibling mirroring a snapshot that is later retired: node 0 mirrors
	// member 1's final snapshot (announcing its chunks), closes without
	// dirtying, the lineage is retired, and the collector must then
	// withdraw node 0's announcements from the cohort.
	fab.Run(func(ctx *cluster.Ctx) {
		cohort := reg.Cohort(baseID)
		task := ctx.Go("migrate", 0, func(cc *cluster.Ctx) {
			mod := NewModule(0, blob.NewClient(sys), DefaultConfig())
			mod.SetSharer(cohort)
			im, err := mod.Open(cc, finalID[1], finalV[1], false)
			if err != nil {
				t.Error(err)
				return
			}
			if err := im.Read(cc, 0, int64(chunks*csize)); err != nil {
				t.Error(err)
			}
			im.Close(cc)
		})
		ctx.Wait(task)
		if _, err := sys.VM.RetireUpTo(ctx, finalID[1], finalV[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := gc.Collect(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if st := reg.Cohort(baseID).Stats(); st.Reclaimed == 0 {
		t.Fatal("no reclaimed chunk was ever retracted from the cohort")
	}
}

// TestReopenRetractsStaleAnnouncement: announcements survive a
// close/reopen cycle (the node is still a registered holder — its
// local mirror file survived), so a dirtying write after the reopen
// must still retract the stale location record.
func TestReopenRetractsStaleAnnouncement(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(4))
	sys := blob.NewSystem([]cluster.NodeID{1, 2}, 3, 1)
	reg := p2p.NewRegistry(3, p2p.DefaultConfig())
	mod := NewModule(0, blob.NewClient(sys), DefaultConfig())

	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		id, err := c.Create(ctx, 64<<10, 8<<10)
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.WriteFull(ctx, id, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		co := reg.Register(ctx, id, []cluster.NodeID{0, 1})
		mod.SetSharer(co)
		im, err := mod.Open(ctx, id, v, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := im.Read(ctx, 0, 100); err != nil { // announce chunk 0
			t.Fatal(err)
		}
		if st := co.Stats(); st.Announced != 1 {
			t.Fatalf("Announced = %d, want 1", st.Announced)
		}
		im.Close(ctx)

		im, err = mod.Open(ctx, id, v, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := im.Write(ctx, 10, 20); err != nil { // dirty chunk 0
			t.Fatal(err)
		}
		if st := co.Stats(); st.Retracted != 1 {
			t.Fatalf("Retracted = %d after post-reopen dirtying write, want 1 (stale holder record must be withdrawn)", st.Retracted)
		}
	})
}
