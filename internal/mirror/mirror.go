package mirror

import (
	"errors"
	"fmt"
	"sync"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
)

// Config carries the module's modeling constants.
type Config struct {
	// OpOverhead is the per-operation user/kernel crossing cost of the
	// FUSE layer in seconds (context switches, §4.1 of the paper).
	OpOverhead float64
	// MetadataPrefetch resolves the mirrored snapshot's complete chunk
	// map in one batched level-order descent at Open. The whole segment
	// tree of even a 2 GB image is ~1 MB of 64-byte nodes, so paying
	// depth rounds once lets every demand fetch afterwards skip tree
	// descent (and its metadata RPCs) entirely — the metadata analogue
	// of the paper's "fetch the full minimal chunk set" strategy 1.
	MetadataPrefetch bool
	// FetchRetries is how many times a remote chunk fetch that failed
	// because every replica was down (blob.ErrNoReplica) is retried
	// before the error propagates to the hypervisor. Between attempts
	// the module backs off RetryDelay seconds — the window in which
	// re-replication restores a copy or a cohort sibling announces
	// one. 0 propagates the first failure.
	FetchRetries int
	// RetryDelay is the backoff between fetch retries in seconds.
	RetryDelay float64
	// BatchedCommit overlaps the CLONE of a forking Snapshot with the
	// commit's local prepare phase (gap fill and payload capture). It
	// is set together with the client's write batching (one provider
	// RPC per provider per commit round); both default off — the
	// unbatched commit costs are pinned by the figure scenarios.
	BatchedCommit bool
}

// DefaultConfig returns the calibrated FUSE crossing cost, with
// metadata prefetch at open enabled and two fetch retries 50 ms apart
// (enough for one synchronous re-replication round to land).
func DefaultConfig() Config {
	return Config{OpOverhead: 20e-6, MetadataPrefetch: true, FetchRetries: 2, RetryDelay: 0.05}
}

// Module is the per-node mirroring module. It owns the node's local
// mirror files and their persisted modification metadata, so an image
// closed on this node can be reopened with its local state restored
// (paper §4.2: the local modification manager writes its metadata next
// to the local file on close).
type Module struct {
	node   cluster.NodeID
	client *blob.Client
	cfg    Config
	sharer blob.ChunkSharer // optional p2p cohort; set before opening images

	// pinHook is a test seam: Clone's pin of the fresh clone (normally
	// infallible — version 1 was published moments before) consults it
	// first, so tests can force the pin-failure cleanup path, which is
	// unreachable deterministically otherwise (Pin is a local call).
	pinHook func(id blob.ID, v blob.Version) error

	mu     sync.Mutex
	closed map[blob.ID]*localState // persisted local state by origin blob
}

type localState struct {
	version   blob.Version
	chunks    []chunkState
	local     []byte
	announced map[int64]blob.ChunkKey
}

// chunkState is the local modification manager's record for one chunk:
// at most one contiguous mirrored byte range [MirLo,MirHi) and one
// contiguous dirty byte range [DirtyLo,DirtyHi), both chunk-relative.
// Dirty is always contained in mirrored.
type chunkState struct {
	MirLo, MirHi     int32
	DirtyLo, DirtyHi int32
}

func (cs chunkState) mirrored() bool { return cs.MirHi > cs.MirLo }
func (cs chunkState) dirty() bool    { return cs.DirtyHi > cs.DirtyLo }

// NewModule creates the mirroring module for a node, attached to the
// blob storage service through client.
func NewModule(node cluster.NodeID, client *blob.Client, cfg Config) *Module {
	return &Module{
		node:   node,
		client: client,
		cfg:    cfg,
		closed: make(map[blob.ID]*localState),
	}
}

// Node returns the node this module runs on.
func (m *Module) Node() cluster.NodeID { return m.node }

// SetSharer attaches the module (and its blob client) to a p2p sharing
// cohort: subsequent image opens announce mirrored chunks and consult
// cohort peers on demand misses. Call it before opening images.
func (m *Module) SetSharer(s blob.ChunkSharer) {
	m.sharer = s
	m.client.SetSharer(s)
}

// Stats aggregates an image's access accounting.
type Stats struct {
	Reads, Writes      int64 // hypervisor-issued operations
	RemoteChunkFetches int64 // chunks fetched from the repository
	RemoteBytesFetched int64 // payload bytes fetched
	LocalReads         int64 // reads served entirely from the mirror
	GapFills           int64 // writes that forced a remote gap fill
	Commits, Clones    int64
	CommittedChunks    int64
	CommittedBytes     int64
	PrefetchedChunks   int64 // chunks brought in by Prefetch, not demand
	DuplicateFetches   int64 // concurrent fetches of the same chunk, counted once
	FetchRetries       int64 // remote fetches re-attempted after ErrNoReplica
}

// Image is an open mirrored image: the raw file the hypervisor sees.
// Hypervisor-facing methods must be called from the owning activity (a
// VM's virtual disk has one queue here, like the paper's
// one-FUSE-mount-per-VM deployment), with one sanctioned exception:
// Prefetch may run from a concurrent activity to overlap with the
// boot. The mutable state below is therefore guarded by mu, which is
// never held across fabric operations.
type Image struct {
	mod  *Module
	info blob.Info

	mu      sync.Mutex
	blobID  blob.ID      // changes on Clone
	version blob.Version // changes on Commit
	chunks  []chunkState
	local   []byte // real local mirror; nil when running synthetic
	open    bool
	stats   Stats

	// accessOrder records the chunk indices fetched on demand, in
	// order — the access profile of §7's proposed prefetching scheme.
	accessOrder []int64
	// announced maps chunk index → the key this image announced to its
	// sharing cohort, so a dirtying write can retract it.
	announced map[int64]blob.ChunkKey
	// inflight counts remote fetches currently running per chunk, so a
	// prefetch skips chunks a demand fetch is already bringing in.
	inflight map[int64]int
	// publishing marks chunk indices whose captured payload a commit is
	// currently pushing to the fabric; during records the dirty hull of
	// writes landing on those chunks inside that window, so commit
	// completion re-marks exactly the bytes the published snapshot does
	// not contain instead of wiping them from the dirty map.
	publishing map[int64]bool
	during     map[int64]dirtyRange
}

// dirtyRange is a chunk-relative [Lo,Hi) byte hull.
type dirtyRange struct {
	Lo, Hi int32
}

// Open mirrors snapshot (id, v) as a local raw image file. If the
// module holds persisted local state for this blob (from a previous
// Close on this node), it is restored, including dirty data. When
// real is true the image materializes a local byte buffer and serves
// actual data; synthetic images only track state and costs.
func (m *Module) Open(ctx *cluster.Ctx, id blob.ID, v blob.Version, real bool) (*Image, error) {
	if ctx.Node() != m.node {
		return nil, fmt.Errorf("mirror: open from node %d on module of node %d: %w", ctx.Node(), m.node, ErrWrongNode)
	}
	inf, err := m.client.Info(ctx, id)
	if err != nil {
		return nil, err
	}
	// Pin the mirrored snapshot for the image's lifetime: an open image
	// keeps demand-fetching from (id, v), so retention must not retire
	// it and the garbage collector must keep its chunks. Opening a
	// retired (or never published) version fails here.
	if err := m.client.PinVersion(id, v); err != nil {
		return nil, err
	}
	if m.cfg.MetadataPrefetch {
		if err := m.client.PrefetchExtents(ctx, id, v); err != nil {
			m.client.UnpinVersion(id, v)
			return nil, err
		}
	}
	im := &Image{
		mod: m, blobID: id, version: v, info: inf, open: true,
		announced:  make(map[int64]blob.ChunkKey),
		inflight:   make(map[int64]int),
		publishing: make(map[int64]bool),
		during:     make(map[int64]dirtyRange),
	}
	m.mu.Lock()
	st := m.closed[id]
	if st != nil && st.version == v {
		delete(m.closed, id)
	} else {
		st = nil
	}
	m.mu.Unlock()
	if st != nil {
		im.chunks = st.chunks
		im.local = st.local
		if st.announced != nil {
			// The node is still registered as a holder of everything it
			// announced before closing (the local mirror file survived),
			// so the map must survive too: a post-reopen dirtying write
			// has to retract the stale location record.
			im.announced = st.announced
		}
		// Re-reading the persisted modification metadata costs one
		// local-disk access.
		ctx.DiskRead(m.node, int64(len(st.chunks))*16)
		if real && im.local == nil {
			m.client.UnpinVersion(id, v)
			return nil, fmt.Errorf("mirror: image %d was closed synthetic, cannot reopen real: %w", id, ErrSynthetic)
		}
		return im, nil
	}
	im.chunks = make([]chunkState, inf.Chunks())
	if real {
		im.local = make([]byte, inf.Size)
	}
	return im, nil
}

// Close releases the image and persists its local modification state
// on the module, so a later Open of the same snapshot on this node
// resumes where it left off.
func (im *Image) Close(ctx *cluster.Ctx) {
	im.mu.Lock()
	if !im.open {
		im.mu.Unlock()
		return
	}
	im.open = false
	id, v := im.blobID, im.version
	st := &localState{version: im.version, chunks: im.chunks, local: im.local, announced: im.announced}
	n := int64(len(im.chunks)) * 16
	im.mu.Unlock()
	// Writing the modification metadata next to the local file.
	ctx.DiskWrite(im.mod.node, n)
	im.mod.mu.Lock()
	im.mod.closed[id] = st
	im.mod.mu.Unlock()
	// The mirrored snapshot is no longer held open; it becomes eligible
	// for retirement and reclamation (a later reopen re-pins it, and
	// fails cleanly if retention retired it in between).
	im.mod.client.UnpinVersion(id, v)
}

// Size returns the image size in bytes.
func (im *Image) Size() int64 { return im.info.Size }

// BlobID returns the blob currently backing the image (changes after
// Clone).
func (im *Image) BlobID() blob.ID {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.blobID
}

// Version returns the snapshot the image currently mirrors (changes
// after Commit).
func (im *Image) Version() blob.Version {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.version
}

// Stats returns a copy of the image's counters.
func (im *Image) Stats() Stats {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.stats
}

// Dirty reports whether the image has uncommitted local modifications.
func (im *Image) Dirty() bool {
	im.mu.Lock()
	defer im.mu.Unlock()
	for i := range im.chunks {
		if im.chunks[i].dirty() {
			return true
		}
	}
	return false
}

// chunkLen returns the length of chunk ci (last chunk may be short).
func (im *Image) chunkLen(ci int64) int32 {
	cs := int64(im.info.ChunkSize)
	if (ci+1)*cs <= im.info.Size {
		return int32(cs)
	}
	return int32(im.info.Size - ci*cs)
}

// ReadAt implements the hypervisor read path on a real image.
func (im *Image) ReadAt(ctx *cluster.Ctx, p []byte, off int64) (int, error) {
	if err := im.access(ctx, off, int64(len(p)), p, false); err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteAt implements the hypervisor write path on a real image.
func (im *Image) WriteAt(ctx *cluster.Ctx, p []byte, off int64) (int, error) {
	if err := im.access(ctx, off, int64(len(p)), p, true); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Read charges a read of [off, off+n) without moving data (synthetic
// images; the boot-trace driver uses this).
func (im *Image) Read(ctx *cluster.Ctx, off, n int64) error {
	return im.access(ctx, off, n, nil, false)
}

// Write charges a write of [off, off+n) without moving data.
func (im *Image) Write(ctx *cluster.Ctx, off, n int64) error {
	return im.access(ctx, off, n, nil, true)
}

// access is the R/W translator (§3.3). It validates the range, charges
// the FUSE crossing, and dispatches per overlapped chunk.
func (im *Image) access(ctx *cluster.Ctx, off, n int64, p []byte, write bool) error {
	im.mu.Lock()
	if !im.open {
		im.mu.Unlock()
		return fmt.Errorf("mirror: access: %w", ErrClosed)
	}
	if n == 0 {
		im.mu.Unlock()
		return nil
	}
	if off < 0 || off+n > im.info.Size {
		im.mu.Unlock()
		return fmt.Errorf("mirror: access [%d,%d) outside image size %d: %w", off, off+n, im.info.Size, blob.ErrOutOfRange)
	}
	if p != nil && im.local == nil {
		im.mu.Unlock()
		return fmt.Errorf("mirror: data access: %w", ErrSynthetic)
	}
	if write {
		im.stats.Writes++
	} else {
		im.stats.Reads++
	}
	im.mu.Unlock()
	ctx.Sleep(im.mod.cfg.OpOverhead)

	cs := int64(im.info.ChunkSize)
	lo, hi := off/cs, (off+n+cs-1)/cs
	if !write {
		// Strategy 1: fetch the full minimal set of chunks covering the
		// requested region that are not fully mirrored, as whole chunks,
		// grouped into contiguous runs so the repository sees ranged
		// requests.
		if err := im.ensureMirrored(ctx, lo, hi); err != nil {
			return err
		}
		im.mu.Lock()
		im.stats.LocalReads++ // now served locally
		if p != nil {
			copy(p, im.local[off:off+n])
		}
		im.mu.Unlock()
		return nil
	}
	// Write path: per chunk, keep the mirrored region contiguous. A
	// write onto an announced chunk diverges the local copy from the
	// published content, so the cohort announcement is retracted.
	var retract []blob.ChunkKey
	for ci := lo; ci < hi; ci++ {
		cstart := ci * cs
		wlo := int32(max(off, cstart) - cstart)
		whi := int32(min(off+n, cstart+int64(im.chunkLen(ci))) - cstart)
		im.mu.Lock()
		st := &im.chunks[ci]
		gapFill := false
		switch {
		case !st.mirrored():
			st.MirLo, st.MirHi = wlo, whi
		case wlo <= st.MirHi && whi >= st.MirLo:
			// Overlaps or adjoins: extend the contiguous region.
			if wlo < st.MirLo {
				st.MirLo = wlo
			}
			if whi > st.MirHi {
				st.MirHi = whi
			}
		default:
			// Strategy 2: the write would fragment the mirrored region;
			// fill the gap by fetching the whole chunk remotely first.
			im.stats.GapFills++
			gapFill = true
		}
		im.mu.Unlock()
		if gapFill {
			// The chunk is dirtied right below, so don't offer it to
			// the cohort just to retract it again.
			if err := im.fetchChunks(ctx, ci, ci+1, fetchNoAnnounce); err != nil {
				return err
			}
		}
		im.mu.Lock()
		st = &im.chunks[ci]
		// Track the dirty hull (contained in the mirrored region).
		if !st.dirty() {
			st.DirtyLo, st.DirtyHi = wlo, whi
		} else {
			if wlo < st.DirtyLo {
				st.DirtyLo = wlo
			}
			if whi > st.DirtyHi {
				st.DirtyHi = whi
			}
		}
		if im.publishing[ci] {
			// A commit captured this chunk and is publishing it right
			// now: record the write separately so completion re-marks
			// it dirty instead of wiping it with the committed range.
			if d, ok := im.during[ci]; ok {
				if wlo < d.Lo {
					d.Lo = wlo
				}
				if whi > d.Hi {
					d.Hi = whi
				}
				im.during[ci] = d
			} else {
				im.during[ci] = dirtyRange{Lo: wlo, Hi: whi}
			}
		}
		if key, ok := im.announced[ci]; ok {
			retract = append(retract, key)
			delete(im.announced, ci)
		}
		im.mu.Unlock()
	}
	im.mu.Lock()
	if p != nil {
		copy(im.local[off:off+n], p)
	}
	im.mu.Unlock()
	if s := im.mod.sharer; s != nil && len(retract) > 0 {
		s.Retract(ctx, retract)
	}
	// The mmap'd local file absorbs the write; the kernel writes back
	// asynchronously (§4.2).
	ctxDiskWriteAsync(ctx, im.mod.node, n)
	return nil
}

// ensureMirrored makes chunks [lo,hi) fully mirrored, fetching missing
// ones in contiguous runs.
func (im *Image) ensureMirrored(ctx *cluster.Ctx, lo, hi int64) error {
	runStart := int64(-1)
	for ci := lo; ci <= hi; ci++ {
		missing := ci < hi && !im.fullyMirrored(ci)
		if missing && runStart < 0 {
			runStart = ci
		}
		if !missing && runStart >= 0 {
			if err := im.fetchChunks(ctx, runStart, ci, fetchDemand); err != nil {
				return err
			}
			runStart = -1
		}
	}
	return nil
}

func (im *Image) fullyMirrored(ci int64) bool {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.fullyMirroredLocked(ci)
}

func (im *Image) fullyMirroredLocked(ci int64) bool {
	st := im.chunks[ci]
	return st.MirLo == 0 && st.MirHi == im.chunkLen(ci)
}

// fetchMode says on whose behalf fetchChunks runs: a demand access, a
// Prefetch, or a write-path gap fill (which suppresses the cohort
// announcement — the chunk is dirtied immediately after the fetch).
type fetchMode int

const (
	fetchDemand fetchMode = iota
	fetchPrefetch
	fetchNoAnnounce
)

// fetchChunks fetches whole chunks [lo,hi) from the repository and
// merges them into the local mirror, preserving dirty bytes. After the
// merge each chunk is fully mirrored. Fetched content is persisted on
// the local disk by the kernel's asynchronous write-back.
//
// A chunk that a concurrent fetch (demand vs. prefetch racing) already
// merged while this one was in flight is skipped: its payload was
// transferred twice — the wasted transfer is charged, as in reality —
// but it is counted and announced to the sharing cohort exactly once,
// and recorded in the access profile exactly once (by the demand side,
// even when the prefetch's merge won the race).
func (im *Image) fetchChunks(ctx *cluster.Ctx, lo, hi int64, mode fetchMode) error {
	prefetch := mode == fetchPrefetch
	sharing := im.mod.sharer != nil && mode != fetchNoAnnounce
	im.mu.Lock()
	id, v := im.blobID, im.version
	for ci := lo; ci < hi; ci++ {
		im.inflight[ci]++
	}
	im.mu.Unlock()
	fetched, err := im.mod.client.FetchChunks(ctx, id, v, lo, hi)
	// Retry-with-backoff instead of propagating the first failure: a
	// fetch that lost the race with a provider death (every replica of
	// some chunk down) is re-attempted after RetryDelay — by then
	// re-replication has restored a copy, or a cohort sibling's
	// announcement offers an alternate source.
	for attempt := 0; err != nil && attempt < im.mod.cfg.FetchRetries && errors.Is(err, blob.ErrNoReplica); attempt++ {
		im.mu.Lock()
		im.stats.FetchRetries++
		im.mu.Unlock()
		ctx.Sleep(im.mod.cfg.RetryDelay)
		fetched, err = im.mod.client.FetchChunks(ctx, id, v, lo, hi)
	}
	im.mu.Lock()
	for ci := lo; ci < hi; ci++ {
		if im.inflight[ci]--; im.inflight[ci] == 0 {
			delete(im.inflight, ci)
		}
	}
	if err != nil {
		im.mu.Unlock()
		return err
	}
	type announced struct {
		index int64
		key   blob.ChunkKey
	}
	cs := int64(im.info.ChunkSize)
	var announce []announced
	var bytes int64
	for _, fc := range fetched {
		st := &im.chunks[fc.Index]
		clen := im.chunkLen(fc.Index)
		if st.MirLo == 0 && st.MirHi == clen {
			// A concurrent fetch of this chunk won the merge race;
			// count the chunk once. A demand access still belongs in
			// the access profile even when the prefetch's merge won.
			im.stats.DuplicateFetches++
			if mode == fetchDemand {
				im.accessOrder = append(im.accessOrder, fc.Index)
			}
			continue
		}
		if im.local != nil {
			cstart := fc.Index * cs
			dst := im.local[cstart : cstart+int64(clen)]
			for i := int32(0); i < clen; i++ {
				if i >= st.DirtyLo && i < st.DirtyHi {
					continue // local modification wins
				}
				if fc.Payload.Real() && int(i) < len(fc.Payload.Data) {
					dst[i] = fc.Payload.Data[i]
				} else {
					dst[i] = 0
				}
			}
		}
		st.MirLo, st.MirHi = 0, clen
		im.stats.RemoteChunkFetches++
		im.stats.RemoteBytesFetched += int64(fc.Payload.Size)
		if prefetch {
			im.stats.PrefetchedChunks++
		} else {
			im.accessOrder = append(im.accessOrder, fc.Index)
		}
		if sharing && fc.Key != 0 && !st.dirty() {
			announce = append(announce, announced{fc.Index, fc.Key})
			im.announced[fc.Index] = fc.Key
		}
		bytes += int64(fc.Payload.Size)
	}
	im.mu.Unlock()
	ctxDiskWriteAsync(ctx, im.mod.node, bytes)
	if len(announce) > 0 {
		keys := make([]blob.ChunkKey, len(announce))
		for i, a := range announce {
			keys[i] = a.key
		}
		im.mod.sharer.Announce(ctx, keys)
		// A write may have dirtied one of these chunks between the
		// merge above and the announcement reaching the cohort: its
		// Retract found nothing to withdraw yet and deleted the
		// announced entry, so re-check and retract those now.
		im.mu.Lock()
		var late []blob.ChunkKey
		for _, a := range announce {
			if im.announced[a.index] != a.key {
				late = append(late, a.key)
			}
		}
		im.mu.Unlock()
		if len(late) > 0 {
			im.mod.sharer.Retract(ctx, late)
		}
	}
	return nil
}

// AccessOrder returns the chunk indices this image fetched on demand,
// in first-access order — a reusable access profile for deployments
// of the same image (§7's "prefetching scheme based on previous
// experience with the access pattern").
func (im *Image) AccessOrder() []int64 {
	im.mu.Lock()
	defer im.mu.Unlock()
	return append([]int64(nil), im.accessOrder...)
}

// Prefetch walks an access profile and fetches every not-yet-mirrored
// chunk in profile order, so that a boot following the same pattern
// finds its working set already local. Call it from a concurrent
// activity to overlap with the boot, or beforehand for a warm start.
// Chunks fetched here are counted as PrefetchedChunks, not demand
// fetches, and do not pollute the image's own access profile.
//
// Chunks the boot is concurrently demand-fetching (in flight at the
// time Prefetch considers them) are skipped, and a lost merge race is
// resolved by fetchChunks, so no chunk is ever double-counted or
// double-announced.
func (im *Image) Prefetch(ctx *cluster.Ctx, profile []int64) error {
	for _, ci := range profile {
		im.mu.Lock()
		if !im.open {
			im.mu.Unlock()
			return fmt.Errorf("mirror: prefetch: %w", ErrClosed)
		}
		if ci < 0 || ci >= int64(len(im.chunks)) {
			im.mu.Unlock()
			return fmt.Errorf("mirror: prefetch chunk %d outside image: %w", ci, blob.ErrOutOfRange)
		}
		skip := im.fullyMirroredLocked(ci) || im.inflight[ci] > 0
		im.mu.Unlock()
		if skip {
			continue
		}
		if err := im.fetchChunks(ctx, ci, ci+1, fetchPrefetch); err != nil {
			return err
		}
	}
	return nil
}

// Clone redirects the image to a fresh blob that logically duplicates
// the currently mirrored snapshot (the CLONE primitive). Local state —
// mirrored regions and dirty data — is untouched; only the identity of
// the remote object changes, at O(1) metadata cost (Fig. 3(b)).
func (im *Image) Clone(ctx *cluster.Ctx) error {
	im.mu.Lock()
	if !im.open {
		im.mu.Unlock()
		return fmt.Errorf("mirror: clone: %w", ErrClosed)
	}
	id, v := im.blobID, im.version
	im.mu.Unlock()
	clone, err := im.mod.client.Clone(ctx, id, v)
	if err != nil {
		return err
	}
	// Move the image's open-pin to the clone's first version before
	// releasing the source snapshot.
	if err := im.pinVersion(clone, 1); err != nil {
		// The image keeps pointing at the base, so nobody adopted the
		// freshly published clone: retire it, or it survives as a
		// zombie blob no retention policy knows about, pinning its
		// shared chunks against garbage collection forever. Best
		// effort — the pin failure is what propagates.
		if rerr := im.mod.client.Retire(ctx, clone, 1); rerr != nil && !errors.Is(rerr, blob.ErrVersionRetired) {
			return fmt.Errorf("mirror: clone %d unadopted and not retired (%v) after pin: %w", clone, rerr, err)
		}
		return err
	}
	im.mod.client.UnpinVersion(id, v)
	im.mu.Lock()
	im.blobID = clone
	im.version = 1
	im.stats.Clones++
	im.mu.Unlock()
	return nil
}

// Commit publishes all local modifications as a new standalone snapshot
// of the image's blob (the COMMIT primitive) and returns its version.
// Dirty chunks are pushed whole (chunk-granular copy-on-write); a dirty
// chunk that is not fully mirrored is gap-filled first so its complete
// content exists locally. With no local modifications Commit returns
// the current version unchanged. When the module shares with a cohort,
// the committed chunks are announced by the write path: after COMMIT
// the local copy equals the published snapshot.
func (im *Image) Commit(ctx *cluster.Ctx) (blob.Version, error) {
	plan, err := im.prepareCommit(ctx)
	if err != nil {
		return 0, err
	}
	if plan == nil {
		return im.Version(), nil
	}
	return im.publishCommit(ctx, plan)
}

// commitPlan carries a prepared commit between its two phases: the
// captured payloads and the chunk indices whose publish window is open.
type commitPlan struct {
	writes   []blob.ChunkWrite
	dirtyIdx []int64
}

// prepareCommit is COMMIT's local half: gap-fill dirty chunks that lack
// full content, then capture their payloads and open the publish window
// (mark them publishing). A nil plan means nothing was dirty. Every
// fabric operation it performs reads; it never publishes, so it can
// safely overlap a concurrent Clone (Snapshot's pipelined mode).
func (im *Image) prepareCommit(ctx *cluster.Ctx) (*commitPlan, error) {
	im.mu.Lock()
	if !im.open {
		im.mu.Unlock()
		return nil, fmt.Errorf("mirror: commit: %w", ErrClosed)
	}
	var dirtyIdx []int64
	for ci := range im.chunks {
		if im.chunks[ci].dirty() {
			dirtyIdx = append(dirtyIdx, int64(ci))
		}
	}
	im.mu.Unlock()
	if len(dirtyIdx) == 0 {
		return nil, nil
	}
	// Gap-fill dirty chunks that lack full local content.
	for _, ci := range dirtyIdx {
		im.mu.Lock()
		if im.fullyMirroredLocked(ci) {
			im.mu.Unlock()
			continue
		}
		if st := im.chunks[ci]; st.DirtyLo == 0 && st.DirtyHi == im.chunkLen(ci) {
			// Entirely dirty: nothing to fill.
			im.chunks[ci].MirLo, im.chunks[ci].MirHi = 0, im.chunkLen(ci)
			im.mu.Unlock()
			continue
		}
		im.mu.Unlock()
		if err := im.fetchChunks(ctx, ci, ci+1, fetchNoAnnounce); err != nil {
			return nil, err
		}
	}
	// Reading the dirty content back from the local mirror (page cache
	// makes this cheap; charge the disk for the cold fraction). Payload
	// capture and the publishing mark happen under one lock acquisition:
	// from here until completion, a concurrent write on a captured chunk
	// is recorded in `during` as well as in the dirty hull.
	cs := int64(im.info.ChunkSize)
	writes := make([]blob.ChunkWrite, 0, len(dirtyIdx))
	im.mu.Lock()
	id, base := im.blobID, im.version
	for _, ci := range dirtyIdx {
		clen := im.chunkLen(ci)
		var payload blob.Payload
		if im.local != nil {
			cstart := ci * cs
			data := make([]byte, clen)
			copy(data, im.local[cstart:cstart+int64(clen)])
			payload = blob.RealPayload(data)
		} else {
			// The tag stands in for the chunk's content identity, so it
			// must differ per chunk: blob, target version and chunk
			// index mixed (a tag without the index would alias every
			// synthetic chunk of the round under deduplication).
			payload = blob.SyntheticPayload(clen, uint64(id)<<44|(uint64(base)+1)<<24|uint64(ci))
		}
		writes = append(writes, blob.ChunkWrite{Index: ci, Payload: payload})
		im.stats.CommittedBytes += int64(clen)
		im.publishing[ci] = true
	}
	im.mu.Unlock()
	return &commitPlan{writes: writes, dirtyIdx: dirtyIdx}, nil
}

// publishCommit is COMMIT's fabric half: push the captured payloads,
// publish the new version, and close the publish window — clearing the
// dirty record only for chunks no write touched while the publish was
// in flight, and re-marking exactly the bytes written meanwhile on the
// ones a write did touch.
func (im *Image) publishCommit(ctx *cluster.Ctx, plan *commitPlan) (blob.Version, error) {
	im.mu.Lock()
	id, base := im.blobID, im.version
	im.mu.Unlock()
	v, keyOf, err := im.mod.client.WriteChunksKeyed(ctx, id, base, plan.writes)
	if err != nil {
		im.closeWindow(plan.dirtyIdx)
		return 0, err
	}
	// The image now mirrors the freshly published snapshot; move its
	// open-pin from the base to the new version. The new version is
	// the blob's latest, so the pin cannot fail.
	if err := im.mod.client.PinVersion(id, v); err != nil {
		im.closeWindow(plan.dirtyIdx)
		return 0, err
	}
	im.mod.client.UnpinVersion(id, base)
	sharing := im.mod.sharer != nil
	var retract []blob.ChunkKey
	im.mu.Lock()
	im.version = v
	im.stats.Commits++
	im.stats.CommittedChunks += int64(len(plan.writes))
	for _, ci := range plan.dirtyIdx {
		delete(im.publishing, ci)
		if d, wrote := im.during[ci]; wrote {
			// A write landed between payload capture and publication:
			// the published snapshot does not contain it. Keep exactly
			// those bytes dirty for the next commit instead of wiping
			// the record, and withdraw this node as a holder of the
			// committed key — the local chunk already diverged from it.
			delete(im.during, ci)
			im.chunks[ci].DirtyLo, im.chunks[ci].DirtyHi = d.Lo, d.Hi
			if sharing {
				retract = append(retract, keyOf[ci])
			}
			continue
		}
		im.chunks[ci].DirtyLo, im.chunks[ci].DirtyHi = 0, 0
		if sharing {
			// The client announced the committed keys; record them so
			// a later dirtying write retracts this node as a holder.
			im.announced[ci] = keyOf[ci]
		}
	}
	im.mu.Unlock()
	if len(retract) > 0 {
		im.mod.sharer.Retract(ctx, retract)
	}
	return v, nil
}

// closeWindow abandons an open publish window after a failed commit:
// the dirty hulls were never cleared (and already absorbed any writes
// that landed during the attempt), so the window records just fold
// away and every modification remains committed by the next attempt.
func (im *Image) closeWindow(dirtyIdx []int64) {
	im.mu.Lock()
	for _, ci := range dirtyIdx {
		delete(im.publishing, ci)
		delete(im.during, ci)
	}
	im.mu.Unlock()
}

// pinVersion pins (id, v) through the module's test seam.
func (im *Image) pinVersion(id blob.ID, v blob.Version) error {
	if hook := im.mod.pinHook; hook != nil {
		if err := hook(id, v); err != nil {
			return err
		}
	}
	return im.mod.client.PinVersion(id, v)
}

// Snapshot is the CLONE+COMMIT sequence as one primitive: with fork the
// image first redirects to a fresh clone of the mirrored snapshot, then
// commits its local modifications; without fork it is Commit. It
// returns the blob and version now mirrored. When the module runs with
// Config.BatchedCommit, the forking form pipelines the two phases: the
// clone's metadata round trips overlap the commit's local prepare
// phase (gap fill and payload capture), and the publish then lands on
// the clone — the paper's multisnapshot pattern with the serial
// per-instance latency folded away.
func (im *Image) Snapshot(ctx *cluster.Ctx, fork bool) (blob.ID, blob.Version, error) {
	if fork && im.mod.cfg.BatchedCommit {
		var cloneErr error
		ct := ctx.Go("clone", ctx.Node(), func(cc *cluster.Ctx) { cloneErr = im.Clone(cc) })
		plan, prepErr := im.prepareCommit(ctx)
		ctx.WaitAll([]cluster.Task{ct})
		if cloneErr != nil {
			if plan != nil {
				im.closeWindow(plan.dirtyIdx)
			}
			return 0, 0, cloneErr
		}
		if prepErr != nil {
			return 0, 0, prepErr
		}
		if plan == nil {
			return im.BlobID(), im.Version(), nil
		}
		v, err := im.publishCommit(ctx, plan)
		if err != nil {
			return 0, 0, err
		}
		return im.BlobID(), v, nil
	}
	if fork {
		if err := im.Clone(ctx); err != nil {
			return 0, 0, err
		}
	}
	v, err := im.Commit(ctx)
	if err != nil {
		return 0, 0, err
	}
	return im.BlobID(), v, nil
}

// ctxDiskWriteAsync charges an asynchronous local write, skipping
// no-ops.
func ctxDiskWriteAsync(ctx *cluster.Ctx, node cluster.NodeID, n int64) {
	if n > 0 {
		ctx.DiskWriteAsync(node, n)
	}
}
