package mirror

import (
	"bytes"
	"testing"
	"testing/quick"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
)

// testRig deploys storage + one mirroring module per node on a live
// fabric and uploads a real base image.
type testRig struct {
	fab     *cluster.Live
	sys     *blob.System
	modules []*Module
	imageID blob.ID
	imageV  blob.Version
	base    []byte
}

func newRig(t *testing.T, nodes int, size int64, chunkSize int) *testRig {
	t.Helper()
	fab := cluster.NewLive(nodes)
	provs := make([]cluster.NodeID, nodes)
	for i := range provs {
		provs[i] = cluster.NodeID(i)
	}
	sys := blob.NewSystem(provs, 0, 1)
	rig := &testRig{fab: fab, sys: sys}
	for i := 0; i < nodes; i++ {
		rig.modules = append(rig.modules, NewModule(cluster.NodeID(i), blob.NewClient(sys), DefaultConfig()))
	}
	rig.base = make([]byte, size)
	for i := range rig.base {
		rig.base[i] = byte(i*13 + 7)
	}
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		id, err := c.Create(ctx, size, chunkSize)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		v, err := c.WriteAt(ctx, id, 0, rig.base, 0)
		if err != nil {
			t.Fatalf("upload: %v", err)
		}
		rig.imageID, rig.imageV = id, v
	})
	return rig
}

func (r *testRig) run(t *testing.T, fn func(ctx *cluster.Ctx)) {
	t.Helper()
	r.fab.Run(fn)
}

func (r *testRig) open(t *testing.T, ctx *cluster.Ctx, node int) *Image {
	t.Helper()
	im, err := r.modules[node].Open(ctx, r.imageID, r.imageV, true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return im
}

func TestLazyReadFetchesOnlyCoveringChunks(t *testing.T) {
	rig := newRig(t, 4, 64<<10, 4<<10) // 16 chunks of 4 KiB
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		buf := make([]byte, 100)
		// Read 100 bytes spanning chunks 2 and 3 (offset 12k-100..).
		off := int64(3*4096 - 50)
		if _, err := im.ReadAt(ctx, buf, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, rig.base[off:off+100]) {
			t.Fatal("read data mismatch")
		}
		st := im.Stats()
		if st.RemoteChunkFetches != 2 {
			t.Fatalf("fetched %d chunks, want 2 (minimal covering set)", st.RemoteChunkFetches)
		}
		if st.RemoteBytesFetched != 2*4096 {
			t.Fatalf("fetched %d bytes, want %d (whole chunks)", st.RemoteBytesFetched, 2*4096)
		}
		// Re-reading the same region is a local hit: no new fetches.
		if _, err := im.ReadAt(ctx, buf, off); err != nil {
			t.Fatal(err)
		}
		if im.Stats().RemoteChunkFetches != 2 {
			t.Fatal("second read fetched remotely again")
		}
	})
}

func TestReadYourWrites(t *testing.T) {
	rig := newRig(t, 2, 32<<10, 4<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		data := []byte("hello, mirrored world")
		if _, err := im.WriteAt(ctx, data, 5000); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := im.ReadAt(ctx, got, 5000); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read-your-writes: got %q, want %q", got, data)
		}
		// The write itself was local; the read-back fell inside the
		// written extent of chunk 1, but the chunk was not fully
		// mirrored, so strategy 1 fetched that one whole chunk.
		if im.Stats().RemoteChunkFetches != 1 {
			t.Fatalf("fetches = %d, want 1 (whole chunk 1)", im.Stats().RemoteChunkFetches)
		}
	})
}

func TestWritesAreLocalUntilCommit(t *testing.T) {
	rig := newRig(t, 2, 32<<10, 4<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		before := rig.sys.Providers.ChunkCount()
		if _, err := im.WriteAt(ctx, make([]byte, 8<<10), 0); err != nil {
			t.Fatal(err)
		}
		if rig.sys.Providers.ChunkCount() != before {
			t.Fatal("write pushed chunks to the repository before COMMIT")
		}
		if !im.Dirty() {
			t.Fatal("image not dirty after write")
		}
	})
}

func TestGapFillKeepsOneRegionPerChunk(t *testing.T) {
	rig := newRig(t, 2, 16<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		// Two scattered writes in chunk 0 with a gap between them.
		if _, err := im.WriteAt(ctx, []byte{1, 2, 3}, 100); err != nil {
			t.Fatal(err)
		}
		if im.Stats().GapFills != 0 {
			t.Fatal("first write triggered a gap fill")
		}
		if _, err := im.WriteAt(ctx, []byte{4, 5, 6}, 4000); err != nil {
			t.Fatal(err)
		}
		st := im.Stats()
		if st.GapFills != 1 {
			t.Fatalf("gap fills = %d, want 1", st.GapFills)
		}
		if st.RemoteChunkFetches != 1 {
			t.Fatalf("fetches = %d, want 1 (the gap fill)", st.RemoteChunkFetches)
		}
		// The chunk must now be fully mirrored, with base content in the
		// gap and both writes intact.
		got := make([]byte, 8<<10)
		if _, err := im.ReadAt(ctx, got, 0); err != nil {
			t.Fatal(err)
		}
		if im.Stats().RemoteChunkFetches != 1 {
			t.Fatal("read after gap fill fetched again")
		}
		want := append([]byte(nil), rig.base[:8<<10]...)
		copy(want[100:], []byte{1, 2, 3})
		copy(want[4000:], []byte{4, 5, 6})
		if !bytes.Equal(got, want) {
			t.Fatal("gap fill corrupted chunk content")
		}
	})
}

func TestAdjacentWritesExtendRegionWithoutFill(t *testing.T) {
	rig := newRig(t, 2, 16<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		for i := 0; i < 8; i++ {
			if _, err := im.WriteAt(ctx, bytes.Repeat([]byte{byte(i)}, 512), int64(i)*512); err != nil {
				t.Fatal(err)
			}
		}
		st := im.Stats()
		if st.GapFills != 0 || st.RemoteChunkFetches != 0 {
			t.Fatalf("sequential writes caused %d gap fills, %d fetches; want 0", st.GapFills, st.RemoteChunkFetches)
		}
	})
}

func TestCommitPublishesStandaloneSnapshot(t *testing.T) {
	rig := newRig(t, 3, 64<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		patch := bytes.Repeat([]byte{0xAB}, 5000)
		if _, err := im.WriteAt(ctx, patch, 10000); err != nil {
			t.Fatal(err)
		}
		v2, err := im.Commit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v2 != rig.imageV+1 {
			t.Fatalf("commit produced version %d, want %d", v2, rig.imageV+1)
		}
		if im.Dirty() {
			t.Fatal("image still dirty after commit")
		}
		// The snapshot must read as a standalone image from anywhere.
		c := blob.NewClient(rig.sys)
		got := make([]byte, 64<<10)
		if err := c.ReadAt(ctx, rig.imageID, v2, got, 0); err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), rig.base...)
		copy(want[10000:], patch)
		if !bytes.Equal(got, want) {
			t.Fatal("snapshot contents wrong")
		}
		// And the original version is untouched.
		if err := c.ReadAt(ctx, rig.imageID, rig.imageV, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, rig.base) {
			t.Fatal("original version modified by commit")
		}
	})
}

func TestCommitOnlyShipsDirtyChunks(t *testing.T) {
	rig := newRig(t, 2, 256<<10, 8<<10) // 32 chunks
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		// Dirty exactly 3 chunks.
		for _, ci := range []int64{2, 7, 30} {
			if _, err := im.WriteAt(ctx, []byte{1}, ci*8<<10+17); err != nil {
				t.Fatal(err)
			}
		}
		before := rig.sys.Providers.ChunkCount()
		if _, err := im.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		if got := rig.sys.Providers.ChunkCount() - before; got != 3 {
			t.Fatalf("commit stored %d chunks, want 3 (incremental diff only)", got)
		}
		if im.Stats().CommittedChunks != 3 {
			t.Fatalf("CommittedChunks = %d, want 3", im.Stats().CommittedChunks)
		}
	})
}

func TestCommitWithoutChangesIsNoOp(t *testing.T) {
	rig := newRig(t, 2, 16<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		v, err := im.Commit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v != rig.imageV {
			t.Fatalf("no-op commit produced version %d, want %d", v, rig.imageV)
		}
	})
}

func TestCloneThenCommitLeavesOriginalLineageUntouched(t *testing.T) {
	rig := newRig(t, 3, 64<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		if _, err := im.WriteAt(ctx, []byte("diverged"), 100); err != nil {
			t.Fatal(err)
		}
		origBlob := im.BlobID()
		if err := im.Clone(ctx); err != nil {
			t.Fatal(err)
		}
		if im.BlobID() == origBlob {
			t.Fatal("clone did not change backing blob")
		}
		if im.Version() != 1 {
			t.Fatalf("clone version = %d, want 1", im.Version())
		}
		v2, err := im.Commit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		// Original blob still has exactly the upload version.
		if n := rig.sys.VM.Published(origBlob); n != 1 {
			t.Fatalf("original blob has %d versions, want 1", n)
		}
		// Clone's snapshot contains the divergence on the base content.
		c := blob.NewClient(rig.sys)
		got := make([]byte, 64<<10)
		if err := c.ReadAt(ctx, im.BlobID(), v2, got, 0); err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), rig.base...)
		copy(want[100:], []byte("diverged"))
		if !bytes.Equal(got, want) {
			t.Fatal("clone snapshot contents wrong")
		}
	})
}

func TestSuccessiveCommitsShareUnchangedContent(t *testing.T) {
	rig := newRig(t, 2, 128<<10, 8<<10) // 16 chunks
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		if err := im.Clone(ctx); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 5; round++ {
			before := rig.sys.Providers.ChunkCount()
			if _, err := im.WriteAt(ctx, []byte{byte(round)}, int64(round)*8<<10); err != nil {
				t.Fatal(err)
			}
			if _, err := im.Commit(ctx); err != nil {
				t.Fatal(err)
			}
			if got := rig.sys.Providers.ChunkCount() - before; got != 1 {
				t.Fatalf("round %d stored %d chunks, want 1", round, got)
			}
		}
		if got := rig.sys.VM.Published(im.BlobID()); got != 6 {
			t.Fatalf("clone has %d versions, want 6 (clone + 5 commits)", got)
		}
	})
}

func TestCloseReopenRestoresLocalState(t *testing.T) {
	rig := newRig(t, 2, 32<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		if _, err := im.WriteAt(ctx, []byte("persisted"), 1234); err != nil {
			t.Fatal(err)
		}
		fetchesBefore := im.Stats().RemoteChunkFetches
		im.Close(ctx)
		if _, err := im.ReadAt(ctx, make([]byte, 1), 0); err == nil {
			t.Fatal("read on closed image succeeded")
		}
		im2, err := rig.modules[0].Open(ctx, rig.imageID, rig.imageV, true)
		if err != nil {
			t.Fatal(err)
		}
		if !im2.Dirty() {
			t.Fatal("reopened image lost dirty state")
		}
		got := make([]byte, 9)
		if _, err := im2.ReadAt(ctx, got, 1234); err != nil {
			t.Fatal(err)
		}
		if string(got) != "persisted" {
			t.Fatalf("reopened image read %q, want %q", got, "persisted")
		}
		_ = fetchesBefore
	})
}

func TestOpenOnWrongNodeFails(t *testing.T) {
	rig := newRig(t, 2, 16<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		// ctx runs on node 0; module 1 must refuse.
		if _, err := rig.modules[1].Open(ctx, rig.imageID, rig.imageV, true); err == nil {
			t.Fatal("open from foreign node succeeded")
		}
	})
}

func TestAccessValidation(t *testing.T) {
	rig := newRig(t, 2, 16<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		if _, err := im.ReadAt(ctx, make([]byte, 10), 16<<10-5); err == nil {
			t.Error("read past end accepted")
		}
		if _, err := im.WriteAt(ctx, make([]byte, 10), -1); err == nil {
			t.Error("negative offset accepted")
		}
		if err := im.Read(ctx, 0, 0); err != nil {
			t.Errorf("zero-length read failed: %v", err)
		}
	})
}

func TestSyntheticImageRejectsDataAccess(t *testing.T) {
	rig := newRig(t, 2, 16<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im, err := rig.modules[0].Open(ctx, rig.imageID, rig.imageV, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := im.ReadAt(ctx, make([]byte, 8), 0); err == nil {
			t.Error("data read on synthetic image succeeded")
		}
		if err := im.Read(ctx, 0, 4096); err != nil {
			t.Errorf("costed read failed: %v", err)
		}
		if err := im.Write(ctx, 100, 200); err != nil {
			t.Errorf("costed write failed: %v", err)
		}
		if _, err := im.Commit(ctx); err != nil {
			t.Errorf("synthetic commit failed: %v", err)
		}
	})
}

// TestMirrorMatchesFlatFile is the central property test: a random
// sequence of reads and writes against the mirrored image must behave
// exactly like the same sequence against a plain in-memory file
// initialized with the base image; and the LMM invariants must hold
// after every operation (dirty ⊆ mirrored, both contiguous).
func TestMirrorMatchesFlatFile(t *testing.T) {
	type op struct {
		Off, Len uint16
		Write    bool
		Seed     byte
	}
	const size, cs = 32 << 10, 4 << 10
	f := func(ops []op) bool {
		rig := newRig(t, 2, size, cs)
		ok := true
		rig.run(t, func(ctx *cluster.Ctx) {
			im, err := rig.modules[0].Open(ctx, rig.imageID, rig.imageV, true)
			if err != nil {
				ok = false
				return
			}
			model := append([]byte(nil), rig.base...)
			for _, o := range ops {
				off := int64(o.Off) % size
				l := int64(o.Len)%3000 + 1
				if off+l > size {
					l = size - off
				}
				if o.Write {
					data := bytes.Repeat([]byte{o.Seed | 1}, int(l))
					if _, err := im.WriteAt(ctx, data, off); err != nil {
						ok = false
						return
					}
					copy(model[off:off+l], data)
				} else {
					got := make([]byte, l)
					if _, err := im.ReadAt(ctx, got, off); err != nil {
						ok = false
						return
					}
					if !bytes.Equal(got, model[off:off+l]) {
						ok = false
						return
					}
				}
				// LMM invariants.
				for ci := range im.chunks {
					st := im.chunks[ci]
					clen := im.chunkLen(int64(ci))
					if st.MirLo < 0 || st.MirHi > clen || st.MirLo > st.MirHi {
						ok = false
						return
					}
					if st.dirty() && (st.DirtyLo < st.MirLo || st.DirtyHi > st.MirHi) {
						ok = false
						return
					}
				}
			}
			// Final: full image must equal the model.
			got := make([]byte, size)
			if _, err := im.ReadAt(ctx, got, 0); err != nil {
				ok = false
				return
			}
			if !bytes.Equal(got, model) {
				ok = false
				return
			}
			// And a commit must publish exactly the model.
			v, err := im.Commit(ctx)
			if err != nil {
				ok = false
				return
			}
			c := blob.NewClient(rig.sys)
			snap := make([]byte, size)
			if err := c.ReadAt(ctx, rig.imageID, v, snap, 0); err != nil {
				ok = false
				return
			}
			if !bytes.Equal(snap, model) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMirrorsOnDistinctNodes(t *testing.T) {
	// The multideployment pattern in miniature: every node mirrors the
	// same snapshot, writes its own data, clones and commits; each
	// snapshot must contain exactly that node's divergence.
	const nodes = 8
	rig := newRig(t, nodes, 64<<10, 8<<10)
	type result struct {
		id  blob.ID
		v   blob.Version
		tag byte
	}
	results := make([]result, nodes)
	rig.run(t, func(ctx *cluster.Ctx) {
		var tasks []cluster.Task
		for n := 0; n < nodes; n++ {
			n := n
			tasks = append(tasks, ctx.Go("vm", cluster.NodeID(n), func(cc *cluster.Ctx) {
				im, err := rig.modules[n].Open(cc, rig.imageID, rig.imageV, true)
				if err != nil {
					t.Errorf("node %d open: %v", n, err)
					return
				}
				tag := byte(n + 1)
				if _, err := im.WriteAt(cc, bytes.Repeat([]byte{tag}, 1000), int64(n)*1000); err != nil {
					t.Errorf("node %d write: %v", n, err)
					return
				}
				if err := im.Clone(cc); err != nil {
					t.Errorf("node %d clone: %v", n, err)
					return
				}
				v, err := im.Commit(cc)
				if err != nil {
					t.Errorf("node %d commit: %v", n, err)
					return
				}
				results[n] = result{im.BlobID(), v, tag}
			}))
		}
		ctx.WaitAll(tasks)
		c := blob.NewClient(rig.sys)
		for n, r := range results {
			got := make([]byte, 64<<10)
			if err := c.ReadAt(ctx, r.id, r.v, got, 0); err != nil {
				t.Fatalf("node %d snapshot read: %v", n, err)
			}
			want := append([]byte(nil), rig.base...)
			copy(want[n*1000:], bytes.Repeat([]byte{r.tag}, 1000))
			if !bytes.Equal(got, want) {
				t.Fatalf("node %d snapshot contents wrong", n)
			}
		}
	})
}
