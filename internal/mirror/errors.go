package mirror

import "errors"

// Sentinel errors of the mirroring module. Range violations reuse
// blob.ErrOutOfRange so a caller can treat "outside the image" and
// "outside the blob" uniformly through errors.Is; the sentinels below
// cover the module's own failure modes. All are re-exported by the
// public blobvfs façade.
var (
	// ErrClosed reports an operation on something that has been closed —
	// a mirrored image here, or the repository handle at the façade
	// level, which reuses the sentinel. The message is deliberately
	// neutral; wrap sites name what was closed.
	ErrClosed = errors.New("closed")

	// ErrWrongNode reports an open attempted from an activity running on
	// a different node than the module (a mirror is strictly node-local,
	// like the FUSE mount it models).
	ErrWrongNode = errors.New("wrong node")

	// ErrSynthetic reports a data-carrying operation on a synthetic
	// image — one that tracks state and costs but materializes no bytes.
	ErrSynthetic = errors.New("synthetic image")
)
