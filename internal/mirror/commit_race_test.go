package mirror

import (
	"bytes"
	"errors"
	"testing"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
)

// simRig is the deterministic twin of testRig: storage + modules on the
// simulated fabric, so concurrent activities interleave at virtual-time
// yield points in a reproducible order.
type simRig struct {
	fab     *cluster.Sim
	sys     *blob.System
	modules []*Module
	imageID blob.ID
	imageV  blob.Version
	base    []byte
}

func newSimRig(t *testing.T, nodes int, size int64, chunkSize int) *simRig {
	t.Helper()
	fab := cluster.NewSim(cluster.DefaultConfig(nodes))
	provs := make([]cluster.NodeID, nodes)
	for i := range provs {
		provs[i] = cluster.NodeID(i)
	}
	sys := blob.NewSystem(provs, 0, 1)
	rig := &simRig{fab: fab, sys: sys}
	for i := 0; i < nodes; i++ {
		rig.modules = append(rig.modules, NewModule(cluster.NodeID(i), blob.NewClient(sys), DefaultConfig()))
	}
	rig.base = make([]byte, size)
	for i := range rig.base {
		rig.base[i] = byte(i*13 + 7)
	}
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		id, err := c.Create(ctx, size, chunkSize)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		v, err := c.WriteAt(ctx, id, 0, rig.base, 0)
		if err != nil {
			t.Fatalf("upload: %v", err)
		}
		rig.imageID, rig.imageV = id, v
	})
	return rig
}

// TestCommitDoesNotLoseConcurrentWrites is the regression test for the
// commit-path lost update: a WriteAt landing between Commit's payload
// capture and its publish completion used to be wiped from the dirty
// map (Commit unconditionally zeroed DirtyLo/DirtyHi), so the write was
// never published by any later commit — the local mirror silently
// diverged from every snapshot. The interleaving is deterministic: the
// commit captures its payloads synchronously before its first fabric
// yield, the publish of a 256 KB chunk takes milliseconds of virtual
// time, and the writer wakes after microseconds — inside the window.
func TestCommitDoesNotLoseConcurrentWrites(t *testing.T) {
	const chunk = 256 << 10
	rig := newSimRig(t, 2, 2*chunk, chunk)
	overwrite := bytes.Repeat([]byte{0xAA}, chunk)
	late := bytes.Repeat([]byte{0xBB}, 50)
	var v2, v3 blob.Version
	rig.fab.Run(func(ctx *cluster.Ctx) {
		im, err := rig.modules[0].Open(ctx, rig.imageID, rig.imageV, true)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		// Dirty chunk 0 completely so the commit needs no gap fill and
		// captures its payload before the first yield.
		if _, err := im.WriteAt(ctx, overwrite, 0); err != nil {
			t.Fatal(err)
		}
		var commitErr, writeErr error
		commit := ctx.Go("commit", 0, func(cc *cluster.Ctx) {
			v2, commitErr = im.Commit(cc)
		})
		writer := ctx.Go("writer", 0, func(cc *cluster.Ctx) {
			// Wake inside the publish window: after capture (virtual
			// time zero), well before the 256 KB publish completes.
			cc.Sleep(1e-4)
			_, writeErr = im.WriteAt(cc, late, 100)
		})
		ctx.WaitAll([]cluster.Task{commit, writer})
		if commitErr != nil {
			t.Fatalf("commit: %v", commitErr)
		}
		if writeErr != nil {
			t.Fatalf("concurrent write: %v", writeErr)
		}
		if v2 <= rig.imageV {
			t.Fatalf("commit did not advance the version: %d", v2)
		}
		// The published snapshot carries the captured payload, not the
		// late write.
		reader := blob.NewClient(rig.sys)
		got := make([]byte, 50)
		if err := reader.ReadAt(ctx, rig.imageID, v2, got, 100); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, overwrite[100:150]) {
			t.Fatalf("published snapshot has the late write (or wrong data): %x", got[:4])
		}
		// The late write must still be pending: this is the lost update.
		if !im.Dirty() {
			t.Fatal("late write wiped from the dirty map by the commit (lost update)")
		}
		v3, err = im.Commit(ctx)
		if err != nil {
			t.Fatalf("second commit: %v", err)
		}
		if v3 <= v2 {
			t.Fatalf("second commit published nothing (v=%d): late write lost", v3)
		}
		if err := reader.ReadAt(ctx, rig.imageID, v3, got, 100); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, late) {
			t.Fatalf("late write not in the follow-up snapshot: %x", got[:4])
		}
	})
}

// TestCommitRemarksOnlyBytesWrittenDuringPublish pins the precision of
// the fix: completion re-marks exactly the bytes written inside the
// publish window, not the whole originally dirty range.
func TestCommitRemarksOnlyBytesWrittenDuringPublish(t *testing.T) {
	const chunk = 256 << 10
	rig := newSimRig(t, 2, 2*chunk, chunk)
	rig.fab.Run(func(ctx *cluster.Ctx) {
		im, err := rig.modules[0].Open(ctx, rig.imageID, rig.imageV, true)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := im.WriteAt(ctx, bytes.Repeat([]byte{1}, chunk), 0); err != nil {
			t.Fatal(err)
		}
		commit := ctx.Go("commit", 0, func(cc *cluster.Ctx) {
			if _, err := im.Commit(cc); err != nil {
				t.Errorf("commit: %v", err)
			}
		})
		writer := ctx.Go("writer", 0, func(cc *cluster.Ctx) {
			cc.Sleep(1e-4)
			if _, err := im.WriteAt(cc, []byte{2, 2, 2, 2}, 4096); err != nil {
				t.Errorf("write: %v", err)
			}
		})
		ctx.WaitAll([]cluster.Task{commit, writer})
		im.mu.Lock()
		st := im.chunks[0]
		im.mu.Unlock()
		if st.DirtyLo != 4096 || st.DirtyHi != 4100 {
			t.Fatalf("dirty range after commit = [%d,%d), want [4096,4100) (only the in-window write)", st.DirtyLo, st.DirtyHi)
		}
		if len(im.publishing) != 0 || len(im.during) != 0 {
			t.Fatalf("publish window not closed: publishing=%v during=%v", im.publishing, im.during)
		}
	})
}

// TestCloneCleansUpOnPinFailure: a Clone whose pin of the fresh clone
// fails must retire the clone it just published — otherwise the image
// keeps pointing at the base while a zombie blob survives retention and
// GC forever.
func TestCloneCleansUpOnPinFailure(t *testing.T) {
	rig := newRig(t, 2, 32<<10, 4<<10)
	boom := errors.New("forced pin failure")
	var cloneID blob.ID
	rig.modules[0].pinHook = func(id blob.ID, v blob.Version) error {
		if id != rig.imageID {
			cloneID = id
			return boom
		}
		return nil
	}
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		err := im.Clone(ctx)
		if !errors.Is(err, boom) {
			t.Fatalf("clone error = %v, want forced pin failure", err)
		}
		if cloneID == 0 {
			t.Fatal("pin hook never saw the clone")
		}
		if got := im.BlobID(); got != rig.imageID {
			t.Fatalf("image redirected to %d despite failed pin", got)
		}
		if rig.sys.VM.IsLive(cloneID, 1) {
			t.Fatalf("clone blob %d still live after failed pin: leaked", cloneID)
		}
		// The image still works against the base lineage.
		buf := make([]byte, 16)
		if _, err := im.ReadAt(ctx, buf, 0); err != nil {
			t.Fatalf("read after failed clone: %v", err)
		}
		if !bytes.Equal(buf, rig.base[:16]) {
			t.Fatal("read wrong data after failed clone")
		}
	})
}

// TestCommitSurvivesProviderDeathMidCommit: on a replicated rig, a
// provider dying between a commit's local prepare and its publish must
// not fail the commit — the chunk and metadata puts write around the
// dead node. A commit attempted with every provider down DOES fail,
// with the dirty map intact, so the same data commits cleanly once
// providers return.
func TestCommitSurvivesProviderDeathMidCommit(t *testing.T) {
	const chunk = 4 << 10
	const nodes = 4
	fab := cluster.NewSim(cluster.DefaultConfig(nodes))
	provs := make([]cluster.NodeID, nodes)
	for i := range provs {
		provs[i] = cluster.NodeID(i)
	}
	sys := blob.NewSystem(provs, 0, 2)
	sys.Meta.SetReplication(2)
	lv := cluster.NewLiveness(nodes)
	lv.OnChange(sys.Meta.NodeChanged)
	lv.OnChange(sys.Providers.NodeChanged)
	mod := NewModule(0, blob.NewClient(sys), DefaultConfig())

	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		id, err := c.Create(ctx, 2*chunk, chunk)
		if err != nil {
			t.Fatal(err)
		}
		base := bytes.Repeat([]byte{0x11}, 2*chunk)
		v1, err := c.WriteAt(ctx, id, 0, base, 0)
		if err != nil {
			t.Fatal(err)
		}
		im, err := mod.Open(ctx, id, v1, true)
		if err != nil {
			t.Fatal(err)
		}

		// A kill lands between prepare and publish: the commit must
		// still go through, writing around the dead provider.
		first := bytes.Repeat([]byte{0x22}, chunk)
		if _, err := im.WriteAt(ctx, first, 0); err != nil {
			t.Fatal(err)
		}
		plan, err := im.prepareCommit(ctx)
		if err != nil {
			t.Fatalf("prepare: %v", err)
		}
		lv.Kill(ctx, 1)
		v2, err := im.publishCommit(ctx, plan)
		if err != nil {
			t.Fatalf("publish with a dead provider: %v", err)
		}
		got := make([]byte, chunk)
		if err := blob.NewClient(sys).ReadAt(ctx, id, v2, got, 0); err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !bytes.Equal(got, first) {
			t.Fatal("mid-commit kill corrupted the committed data")
		}

		// Total outage: the commit fails cleanly — no version consumed,
		// dirty map intact — and succeeds verbatim after the revives.
		second := bytes.Repeat([]byte{0x33}, chunk)
		if _, err := im.WriteAt(ctx, second, chunk); err != nil {
			t.Fatal(err)
		}
		for _, n := range provs {
			lv.Kill(ctx, n)
		}
		if _, err := im.Commit(ctx); !errors.Is(err, blob.ErrNoReplica) {
			t.Fatalf("commit during total outage: %v, want ErrNoReplica", err)
		}
		if !im.Dirty() {
			t.Fatal("failed commit wiped the dirty map")
		}
		for _, n := range provs {
			lv.Revive(ctx, n)
		}
		v3, err := im.Commit(ctx)
		if err != nil {
			t.Fatalf("commit after revival: %v", err)
		}
		if v3 <= v2 {
			t.Fatalf("post-outage commit published nothing (v=%d)", v3)
		}
		if err := blob.NewClient(sys).ReadAt(ctx, id, v3, got, chunk); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, second) {
			t.Fatal("data written before the outage is wrong after the recovery commit")
		}
	})
}

// TestSyntheticCommitTagsDistinctPerChunk: the synthetic fallback
// payload tag must mix in the chunk index — a commit of N synthetic
// chunks under deduplication must store N distinct chunks, not alias
// N-1 of them onto the first (which skewed dedup and GC accounting).
func TestSyntheticCommitTagsDistinctPerChunk(t *testing.T) {
	fab := cluster.NewLive(2)
	sys := blob.NewSystem([]cluster.NodeID{0, 1}, 0, 1)
	sys.Providers.EnableDedup()
	mod := NewModule(0, blob.NewClient(sys), DefaultConfig())
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		id, err := c.Create(ctx, 16<<10, 4<<10)
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.WriteFull(ctx, id, 0, uint64(id))
		if err != nil {
			t.Fatal(err)
		}
		im, err := mod.Open(ctx, id, v, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := im.Write(ctx, 0, 16<<10); err != nil {
			t.Fatal(err)
		}
		hits0 := sys.Providers.DedupHits.Load()
		chunks0 := sys.Providers.ChunkCount()
		if _, err := im.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		if hits := sys.Providers.DedupHits.Load() - hits0; hits != 0 {
			t.Fatalf("synthetic commit aliased %d of its chunks (identical tags)", hits)
		}
		if got := sys.Providers.ChunkCount() - chunks0; got != 4 {
			t.Fatalf("stored %d new chunks, want 4 distinct", got)
		}
	})
}
