package mirror

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/sim"
)

// TestFetchRetryAfterOutage (sim, deterministic): a demand fetch that
// hits the window where every replica of a chunk is down must not
// propagate ErrNoReplica — the module backs off RetryDelay and
// re-fetches, by which time the outage is over.
func TestFetchRetryAfterOutage(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(3))
	provs := []cluster.NodeID{1, 2}
	sys := blob.NewSystem(provs, 0, 1)
	mod := NewModule(0, blob.NewClient(sys), DefaultConfig())
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		id, err := c.Create(ctx, 64<<10, 8<<10)
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.WriteFull(ctx, id, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		im, err := mod.Open(ctx, id, v, false)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Sleep(1.0)
		// Total outage: both providers die, shorter than the retry
		// backoff; nothing can repair (no survivor to copy from).
		sys.Providers.Kill(1)
		sys.Providers.Kill(2)
		rev := ctx.Go("revive", 0, func(cc *cluster.Ctx) {
			cc.Sleep(0.03)
			sys.Providers.Revive(1)
			sys.Providers.Revive(2)
		})
		if err := im.Read(ctx, 0, 8<<10); err != nil {
			t.Fatalf("read during outage = %v, want retried success", err)
		}
		ctx.Wait(rev)
		st := im.Stats()
		if st.FetchRetries == 0 {
			t.Fatal("outage read succeeded without a retry being counted")
		}
		if st.RemoteChunkFetches != 1 {
			t.Fatalf("RemoteChunkFetches = %d, want 1", st.RemoteChunkFetches)
		}
		// With retries exhausted while the outage persists, the error
		// does propagate (and is ErrNoReplica end to end).
		sys.Providers.Kill(1)
		sys.Providers.Kill(2)
		if err := im.Read(ctx, 8<<10, 8<<10); err == nil {
			t.Fatal("read with permanent outage succeeded")
		}
		sys.Providers.Revive(1)
		sys.Providers.Revive(2)
	})
}

// TestMirrorFailoverRace (live fabric, meant for -race): hypervisor
// reads with real bytes race against provider kill/revive transitions
// and the repair sweeps they trigger. Every read must return the
// correct content — failover, re-replication bookkeeping and the
// retry loop must be memory-safe under real concurrency.
func TestMirrorFailoverRace(t *testing.T) {
	const size, chunk = 128 << 10, 8 << 10
	fab := cluster.NewLive(6)
	provs := []cluster.NodeID{1, 2, 3, 4}
	sys := blob.NewSystem(provs, 0, 2)
	lv := cluster.NewLiveness(6)
	lv.OnChange(sys.Providers.NodeChanged)

	base := make([]byte, size)
	for i := range base {
		base[i] = byte(i*13 + 5)
	}
	var stop atomic.Bool
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		id, err := c.Create(ctx, size, chunk)
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.WriteAt(ctx, id, 0, base, 0)
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		// Chaos activity: kill one provider at a time, repair, revive.
		// One victim at a time plus the sweep keeps every chunk at one
		// live copy or more, so reads must always succeed.
		chaos := ctx.Go("chaos", 5, func(cc *cluster.Ctx) {
			rng := sim.NewRNG(4242)
			for !stop.Load() {
				victim := provs[rng.Intn(len(provs))]
				lv.Kill(cc, victim)
				lv.Revive(cc, victim)
			}
		})
		// Reader activities on two nodes, each with its own module.
		for _, node := range []cluster.NodeID{0, 5} {
			node := node
			wg.Add(1)
			ctx.Go("reader", node, func(cc *cluster.Ctx) {
				defer wg.Done()
				mod := NewModule(node, blob.NewClient(sys), DefaultConfig())
				im, err := mod.Open(cc, id, v, true)
				if err != nil {
					t.Errorf("open on %d: %v", node, err)
					return
				}
				rng := sim.NewRNG(int64(100 + node))
				buf := make([]byte, chunk)
				for i := 0; i < 200; i++ {
					off := int64(rng.Intn(size/chunk)) * chunk
					if _, err := im.ReadAt(cc, buf, off); err != nil {
						t.Errorf("read at %d: %v", off, err)
						return
					}
					if !bytes.Equal(buf, base[off:off+chunk]) {
						t.Errorf("read at %d returned wrong bytes under failover", off)
						return
					}
				}
			})
		}
		wg.Wait()
		stop.Store(true)
		ctx.Wait(chaos)
	})
}
