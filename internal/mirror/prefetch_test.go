package mirror

import (
	"testing"

	"blobvfs/internal/cluster"
)

// TestAccessOrderRecordsDemandFetches: the access profile lists the
// chunks fetched on demand in first-touch order.
func TestAccessOrderRecordsDemandFetches(t *testing.T) {
	rig := newRig(t, 2, 64<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		// Touch chunks 5, 1, 3 in that order.
		for _, ci := range []int64{5, 1, 3} {
			if _, err := im.ReadAt(ctx, make([]byte, 16), ci*8<<10); err != nil {
				t.Fatal(err)
			}
		}
		order := im.AccessOrder()
		want := []int64{5, 1, 3}
		if len(order) != 3 {
			t.Fatalf("order = %v, want %v", order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order = %v, want %v", order, want)
			}
		}
	})
}

// TestPrefetchEliminatesDemandFetches: replaying a profile on a fresh
// mirror of the same image makes the subsequent identical access
// sequence fully local.
func TestPrefetchEliminatesDemandFetches(t *testing.T) {
	rig := newRig(t, 3, 64<<10, 8<<10)
	var profile []int64
	rig.run(t, func(ctx *cluster.Ctx) {
		first := rig.open(t, ctx, 0)
		for _, ci := range []int64{0, 2, 4, 6} {
			if _, err := first.ReadAt(ctx, make([]byte, 100), ci*8<<10); err != nil {
				t.Fatal(err)
			}
		}
		profile = first.AccessOrder()

		// Second deployment of the same image on another node, with the
		// profile prefetched before the boot replays the same accesses.
		done := ctx.Go("second", 1, func(cc *cluster.Ctx) {
			im, err := rig.modules[1].Open(cc, rig.imageID, rig.imageV, true)
			if err != nil {
				t.Error(err)
				return
			}
			if err := im.Prefetch(cc, profile); err != nil {
				t.Error(err)
				return
			}
			st := im.Stats()
			if st.PrefetchedChunks != 4 {
				t.Errorf("prefetched %d chunks, want 4", st.PrefetchedChunks)
			}
			for _, ci := range []int64{0, 2, 4, 6} {
				if _, err := im.ReadAt(cc, make([]byte, 100), ci*8<<10); err != nil {
					t.Error(err)
					return
				}
			}
			st = im.Stats()
			if st.RemoteChunkFetches != st.PrefetchedChunks {
				t.Errorf("boot still fetched %d chunks on demand after prefetch",
					st.RemoteChunkFetches-st.PrefetchedChunks)
			}
			if len(im.AccessOrder()) != 0 {
				t.Errorf("prefetch polluted the access profile: %v", im.AccessOrder())
			}
		})
		ctx.Wait(done)
	})
}

// TestPrefetchPreservesDirtyData: prefetching a chunk with local
// modifications must not clobber them.
func TestPrefetchPreservesDirtyData(t *testing.T) {
	rig := newRig(t, 2, 32<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		if _, err := im.WriteAt(ctx, []byte("dirty"), 100); err != nil {
			t.Fatal(err)
		}
		if err := im.Prefetch(ctx, []int64{0, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 5)
		if _, err := im.ReadAt(ctx, got, 100); err != nil {
			t.Fatal(err)
		}
		if string(got) != "dirty" {
			t.Fatalf("prefetch clobbered dirty data: %q", got)
		}
	})
}

// TestPrefetchValidation covers error paths.
func TestPrefetchValidation(t *testing.T) {
	rig := newRig(t, 2, 16<<10, 8<<10)
	rig.run(t, func(ctx *cluster.Ctx) {
		im := rig.open(t, ctx, 0)
		if err := im.Prefetch(ctx, []int64{99}); err == nil {
			t.Error("out-of-range prefetch accepted")
		}
		im.Close(ctx)
		if err := im.Prefetch(ctx, []int64{0}); err == nil {
			t.Error("prefetch on closed image accepted")
		}
	})
}
