package blob

import (
	"testing"

	"blobvfs/internal/cluster"
)

// topo3z is 3 zones × 1 rack × 3 nodes: nodes 0-2 in zone 0, 3-5 in
// zone 1, 6-8 in zone 2 (bandwidths are irrelevant to placement).
func topo3z() cluster.Topology {
	return cluster.Topology{Zones: 3, RacksPerZone: 1, NodesPerRack: 3,
		RackBandwidth: 1, ZoneBandwidth: 1}
}

func allNodes(n int) []cluster.NodeID {
	out := make([]cluster.NodeID, n)
	for i := range out {
		out[i] = cluster.NodeID(i)
	}
	return out
}

// TestReplicasSpreadAcrossZones: with a topology, a key's replica set
// takes one node per zone (the failure-domain spread), primary first,
// for every key of the ring.
func TestReplicasSpreadAcrossZones(t *testing.T) {
	ps := NewProviderSet(allNodes(9), 3)
	ps.SetTopology(topo3z())
	for key := ChunkKey(0); key < 32; key++ {
		locs := ps.Replicas(key)
		if len(locs) != 3 {
			t.Fatalf("key %d: %d replicas, want 3", key, len(locs))
		}
		if locs[0] != ps.nodes[ps.primarySlot(key)] {
			t.Errorf("key %d: primary %d moved (want slot %d)", key, locs[0], ps.primarySlot(key))
		}
		zones := map[int]bool{}
		for _, n := range locs {
			zones[topo3z().Zone(n)] = true
		}
		if len(zones) != 3 {
			t.Errorf("key %d: replicas %v cover %d zones, want 3", key, locs, len(zones))
		}
	}
}

// TestReplicasSpreadAcrossRacks: when the replication degree exceeds
// the zone count, the surplus copies still land in fresh racks before
// doubling up.
func TestReplicasSpreadAcrossRacks(t *testing.T) {
	// 1 zone × 4 racks × 2 nodes.
	topo := cluster.Topology{Zones: 1, RacksPerZone: 4, NodesPerRack: 2,
		RackBandwidth: 1, ZoneBandwidth: 1}
	ps := NewProviderSet(allNodes(8), 3)
	ps.SetTopology(topo)
	for key := ChunkKey(0); key < 16; key++ {
		locs := ps.Replicas(key)
		racks := map[int]bool{}
		for _, n := range locs {
			racks[topo.Rack(n)] = true
		}
		if len(racks) != 3 {
			t.Errorf("key %d: replicas %v cover %d racks, want 3", key, locs, len(racks))
		}
	}
}

// TestReplicasSingleDomainMatchesFlat pins the degenerate case: a
// topology whose nodes all share one zone and rack must reproduce the
// flat consecutive ring walk exactly, key by key.
func TestReplicasSingleDomainMatchesFlat(t *testing.T) {
	flat := NewProviderSet(allNodes(7), 3)
	single := NewProviderSet(allNodes(7), 3)
	single.SetTopology(cluster.Topology{Zones: 1, RacksPerZone: 1, NodesPerRack: 7,
		RackBandwidth: 1, ZoneBandwidth: 1})
	for key := ChunkKey(0); key < 64; key++ {
		a, b := flat.Replicas(key), single.Replicas(key)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("key %d: single-domain ring %v != flat ring %v", key, b, a)
			}
		}
	}
}

// TestOrderByLocality: the reader's nearest copies come first and ties
// keep their failover order (the sort is stable).
func TestOrderByLocality(t *testing.T) {
	ps := NewProviderSet(allNodes(9), 3)
	ps.SetTopology(topo3z())
	// Reader in zone 1; list arrives remote-first.
	locs := []cluster.NodeID{0, 6, 4, 3, 8}
	ps.orderByLocality(4, locs)
	want := []cluster.NodeID{4, 3, 0, 6, 8}
	for i := range want {
		if locs[i] != want[i] {
			t.Fatalf("orderByLocality = %v, want %v", locs, want)
		}
	}
	// Disabled topology: untouched.
	flat := NewProviderSet(allNodes(9), 3)
	locs = []cluster.NodeID{7, 2, 5}
	flat.orderByLocality(4, locs)
	if locs[0] != 7 || locs[1] != 2 || locs[2] != 5 {
		t.Fatalf("flat orderByLocality reordered: %v", locs)
	}
}

// TestGetPrefersNearestReplicaAndCountsTiers: a topology-aware Get
// serves from the reader's own zone and books the read under the
// right tier counter; killing the near copy fails over outward.
func TestGetPrefersNearestReplicaAndCountsTiers(t *testing.T) {
	fab := cluster.NewLive(9)
	ps := NewProviderSet(allNodes(9), 3)
	ps.SetTopology(topo3z())
	fab.Run(func(ctx *cluster.Ctx) {
		key := ps.AllocKey()
		if err := ps.Put(ctx, key, SyntheticPayload(4096, 1)); err != nil {
			t.Fatal(err)
		}
		locs := ps.Replicas(key)
		// Read from a node in the same zone as the second replica: the
		// copy in the reader's zone must serve, not the primary.
		reader := locs[1]
		done := ctx.Go("read", reader, func(rctx *cluster.Ctx) {
			if _, err := ps.Get(rctx, key); err != nil {
				t.Error(err)
			}
		})
		ctx.Wait(done)
		if n := ps.readsBy[locs[1]].Load(); n != 1 {
			t.Errorf("same-zone replica served %d reads, want 1", n)
		}
		tiers := ps.TierReads()
		if tiers[cluster.TierLocal] != 1 {
			t.Errorf("tier reads = %v, want 1 under local (reader == replica)", tiers)
		}
		// Kill the whole near zone: the read fails over to another
		// zone and books under the remote tier.
		z := topo3z().Zone(reader)
		for n := 3 * z; n < 3*z+3; n++ {
			ps.Kill(cluster.NodeID(n))
		}
		done = ctx.Go("failover", reader, func(rctx *cluster.Ctx) {
			if _, err := ps.Get(rctx, key); err != nil {
				t.Error(err)
			}
		})
		ctx.Wait(done)
		tiers = ps.TierReads()
		if tiers[cluster.TierRemote] != 1 {
			t.Errorf("tier reads = %v, want 1 under remote after zone kill", tiers)
		}
	})
}
