package blob

import (
	"sync"

	"blobvfs/internal/cluster"
)

// This file holds the client's singleflight machinery: concurrent
// cold-cache operations on the same key are coalesced so only one
// caller (the leader) pays the RPC and everyone else (followers)
// shares its result. The protocol is subtle in two ways, so it lives
// here exactly once:
//
//   - Waiting is fabric-aware: followers block on a cluster.Gate,
//     which parks correctly both as a real goroutine and as a
//     discrete-event simulation process (blocking on a bare sync
//     primitive across the leader's RPC would stall the sim
//     scheduler). The gate is allocated lazily, under the group
//     lock, by the first follower — the common uncontended miss
//     pays one small struct and no channel.
//
//   - The leader completes a flight by removing it from the map
//     BEFORE opening the gate (finish): a caller that arrives after
//     removal takes the cache path instead, and a follower that
//     already holds the flight reads its result only after the gate
//     opens, which orders the leader's writes ahead of the read on
//     both fabrics.

// flight is one in-flight operation; followers share the leader's
// val/err through it.
type flight[V any] struct {
	gate *cluster.Gate // allocated by the first follower, under the group mu
	val  V
	err  error
}

// follow returns the flight's gate for a follower to wait on,
// allocating it on first use. Must be called with the group lock
// held.
func (f *flight[V]) follow() *cluster.Gate {
	if f.gate == nil {
		f.gate = cluster.NewGate()
	}
	return f.gate
}

// flightGroup coalesces concurrent operations keyed by K.
type flightGroup[K comparable, V any] struct {
	mu      sync.Mutex
	flights map[K]*flight[V]
}

func newFlightGroup[K comparable, V any]() *flightGroup[K, V] {
	return &flightGroup[K, V]{flights: make(map[K]*flight[V])}
}

// do returns recheck's value if it finds one, joins an existing
// flight for key, or leads a new one running fetch. recheck (may be
// nil) runs under the group lock, closing the window between a
// completed flight's cache store and its removal from the map.
func (g *flightGroup[K, V]) do(ctx *cluster.Ctx, key K, recheck func() (V, bool), fetch func() (V, error)) (V, error) {
	g.mu.Lock()
	if recheck != nil {
		if v, ok := recheck(); ok {
			g.mu.Unlock()
			return v, nil
		}
	}
	if f, ok := g.flights[key]; ok {
		gate := f.follow()
		g.mu.Unlock()
		gate.Wait(ctx)
		return f.val, f.err
	}
	f := &flight[V]{}
	g.flights[key] = f
	g.mu.Unlock()

	f.val, f.err = fetch()
	g.finish(ctx, key, f)
	return f.val, f.err
}

// finish completes a led flight: it is removed from the map and its
// followers (if any) released. The flight's val/err must be set
// before the call.
func (g *flightGroup[K, V]) finish(ctx *cluster.Ctx, key K, f *flight[V]) {
	g.mu.Lock()
	delete(g.flights, key)
	gate := f.gate
	g.mu.Unlock()
	if gate != nil {
		gate.Open(ctx)
	}
}

// finishAll is finish for a batch of led flights under one lock
// acquisition.
func (g *flightGroup[K, V]) finishAll(ctx *cluster.Ctx, keys []K, fs []*flight[V]) {
	var gates []*cluster.Gate
	g.mu.Lock()
	for i, key := range keys {
		delete(g.flights, key)
		if fs[i].gate != nil {
			gates = append(gates, fs[i].gate)
		}
	}
	g.mu.Unlock()
	for _, gate := range gates {
		gate.Open(ctx)
	}
}
