package blob

import (
	"fmt"
	"sync"
	"sync/atomic"

	"blobvfs/internal/cluster"
)

// VersionManager is BlobSeer's serialization point: it registers blobs,
// hands out version tickets, and publishes snapshot roots in strict
// total order per blob. A snapshot becomes visible only when every
// earlier ticket of the same blob has been published, which is what
// lets writers push chunks and metadata concurrently and out of order
// (the decoupled publication that makes COMMIT cheap, paper §4.2).
//
// The manager runs on a single designated node; every operation is a
// small RPC. SetStandbys extends it to a replicated journal group:
// every mutating operation appends a journal record to the standby
// nodes before it is acknowledged, and when the manager's host is down
// the first live standby serves in its place — so Latest/Root/pin
// state survives the death of its host. Without standbys (the
// default) every cost stays byte-identical to the unreplicated
// manager and the host is assumed fault-free.
type VersionManager struct {
	node cluster.NodeID
	// hosts is the journal group: the manager's own node followed by
	// the configured standbys.
	hosts []cluster.NodeID
	alive map[cluster.NodeID]*atomic.Bool // journal-member liveness flags

	// retireEpoch counts retirement events. Versions are immutable and
	// only ever disappear through retirement, so a client-side cache of
	// resolved version metadata (Client's extent cache) stays valid for
	// exactly as long as this counter does not move; checking it is one
	// atomic load, off the manager's mutex.
	retireEpoch atomic.Uint64

	// Failovers counts operations a dead manager host pushed onto a
	// journal standby. Zero without standbys.
	Failovers atomic.Int64

	mu    sync.Mutex
	blobs map[ID]*blobState
	next  ID
}

type blobState struct {
	info      Info
	published []NodeRef           // published roots; index = version-1
	tickets   Version             // highest ticket handed out
	pending   map[Version]NodeRef // out-of-order completed commits
	gates     map[Version]*cluster.Gate
	retired   map[Version]bool // logically deleted versions
	pins      map[Version]int  // open-reference counts (mirrors, in-flight commits)
}

// NewVersionManager creates a version manager hosted on the given node.
func NewVersionManager(node cluster.NodeID) *VersionManager {
	vm := &VersionManager{
		node:  node,
		hosts: []cluster.NodeID{node},
		alive: make(map[cluster.NodeID]*atomic.Bool),
	}
	vm.blobs = make(map[ID]*blobState)
	up := &atomic.Bool{}
	up.Store(true)
	vm.alive[node] = up
	return vm
}

// Node returns the node hosting the manager.
func (vm *VersionManager) Node() cluster.NodeID { return vm.node }

// SetStandbys configures the journal standby nodes. Call before any
// traffic; the manager's own node and duplicates are skipped.
func (vm *VersionManager) SetStandbys(nodes []cluster.NodeID) {
	for _, n := range nodes {
		if _, ok := vm.alive[n]; ok {
			continue
		}
		up := &atomic.Bool{}
		up.Store(true)
		vm.alive[n] = up
		vm.hosts = append(vm.hosts, n)
	}
}

// Standbys returns the configured journal standby nodes.
func (vm *VersionManager) Standbys() []cluster.NodeID { return vm.hosts[1:] }

// NodeChanged is the cluster.Liveness listener for the journal group:
// it records the member's transition (transitions for other nodes are
// ignored). The journal needs no repair sweep — every live member
// already holds the full record stream, and a revived member is
// deterministically caught up by replaying it, which the model treats
// as free against the mutation costs already charged.
func (vm *VersionManager) NodeChanged(_ *cluster.Ctx, node cluster.NodeID, alive bool) {
	if a, ok := vm.alive[node]; ok {
		a.Store(alive)
	}
}

func (vm *VersionManager) isAlive(node cluster.NodeID) bool {
	a, ok := vm.alive[node]
	return ok && a.Load()
}

// activeHost returns the journal member currently serving manager
// operations: the manager's own node while it is up, else the first
// live standby (counted as a failover). With the whole group down the
// primary is still charged — the model has no notion of a hung RPC,
// and the caller's operation is doomed with the control plane gone
// entirely, which the metadata tier's failed gets already surface.
func (vm *VersionManager) activeHost() cluster.NodeID {
	if len(vm.hosts) == 1 || vm.isAlive(vm.node) {
		return vm.node
	}
	for _, h := range vm.hosts[1:] {
		if vm.isAlive(h) {
			vm.Failovers.Add(1)
			return h
		}
	}
	return vm.node
}

// charge costs one read-only manager RPC to the active journal host.
func (vm *VersionManager) charge(ctx *cluster.Ctx, req, resp int64) {
	ctx.RPC(vm.activeHost(), req, resp)
}

// chargeMut costs one mutating manager RPC: the operation to the
// active host plus a small journal-append record to every other live
// member of the group, so manager state survives the host's death.
// Without standbys the loop never runs and the cost is the legacy
// single RPC.
func (vm *VersionManager) chargeMut(ctx *cluster.Ctx, req, resp int64) {
	active := vm.activeHost()
	ctx.RPC(active, req, resp)
	for _, h := range vm.hosts {
		if h != active && vm.isAlive(h) {
			ctx.RPC(h, 24, 16)
		}
	}
}

// CreateBlob registers a new empty blob with the given geometry and
// returns its ID. The blob has no published versions yet.
func (vm *VersionManager) CreateBlob(ctx *cluster.Ctx, size int64, chunkSize int) (ID, error) {
	if size < 0 || chunkSize <= 0 {
		return 0, fmt.Errorf("blob: geometry size=%d chunkSize=%d: %w", size, chunkSize, ErrOutOfRange)
	}
	vm.chargeMut(ctx, 32, 16)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.next++
	id := vm.next
	chunks := (size + int64(chunkSize) - 1) / int64(chunkSize)
	vm.blobs[id] = &blobState{
		info:    Info{ID: id, Size: size, ChunkSize: chunkSize, Span: span2(chunks)},
		pending: make(map[Version]NodeRef),
		gates:   make(map[Version]*cluster.Gate),
		retired: make(map[Version]bool),
		pins:    make(map[Version]int),
	}
	return id, nil
}

// Info returns a blob's geometry. The result is immutable, so clients
// cache it; the first fetch charges an RPC.
func (vm *VersionManager) Info(ctx *cluster.Ctx, id ID) (Info, error) {
	vm.charge(ctx, 16, 48)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return Info{}, notFound("blob", id)
	}
	return st.info, nil
}

// Latest returns the newest published version that has not been
// retired (0 if none). Retirement unpublishes a version from the
// Latest chain: clients building on "the current image" never see a
// snapshot that is scheduled for reclamation.
func (vm *VersionManager) Latest(ctx *cluster.Ctx, id ID) (Version, error) {
	vm.charge(ctx, 16, 16)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0, notFound("blob", id)
	}
	for v := Version(len(st.published)); v >= 1; v-- {
		if !st.retired[v] {
			return v, nil
		}
	}
	return 0, nil
}

// LiveVersions returns every published version of id that has not been
// retired, in ascending order (empty if none). One listing RPC is
// charged for the whole enumeration, before the state is read — the
// same observation ordering as every other manager operation.
func (vm *VersionManager) LiveVersions(ctx *cluster.Ctx, id ID) ([]Version, error) {
	vm.charge(ctx, 16, 64)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return nil, notFound("blob", id)
	}
	out := make([]Version, 0, len(st.published))
	for v := Version(1); int(v) <= len(st.published); v++ {
		if !st.retired[v] {
			out = append(out, v)
		}
	}
	return out, nil
}

// Root returns the published root of (id, v). A retired version is
// logically deleted: its root is no longer resolvable, even before the
// garbage collector has physically reclaimed its storage.
func (vm *VersionManager) Root(ctx *cluster.Ctx, id ID, v Version) (NodeRef, error) {
	vm.charge(ctx, 24, 16)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0, notFound("blob", id)
	}
	if v < 1 || int(v) > len(st.published) {
		return 0, notFound("version", fmt.Sprintf("%d@%d", id, v))
	}
	if st.retired[v] {
		return 0, retired(id, v)
	}
	return st.published[v-1], nil
}

// Ticket reserves the next version number of the blob. The caller must
// eventually Publish it or the blob's version sequence stalls.
func (vm *VersionManager) Ticket(ctx *cluster.Ctx, id ID) (Version, error) {
	vm.chargeMut(ctx, 16, 16)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0, notFound("blob", id)
	}
	st.tickets++
	return st.tickets, nil
}

// Publish reports that the snapshot for ticket v of blob id is complete
// (chunks and metadata durable) with the given root, and blocks until
// the version becomes visible, i.e. all earlier tickets are published.
func (vm *VersionManager) Publish(ctx *cluster.Ctx, id ID, v Version, root NodeRef) error {
	vm.chargeMut(ctx, 40, 16)
	vm.mu.Lock()
	st, ok := vm.blobs[id]
	if !ok {
		vm.mu.Unlock()
		return notFound("blob", id)
	}
	if v < 1 || v > st.tickets {
		vm.mu.Unlock()
		return fmt.Errorf("blob: publish of unticketed version %d@%d: %w", id, v, ErrOutOfRange)
	}
	if int(v) <= len(st.published) {
		vm.mu.Unlock()
		return fmt.Errorf("blob: version %d@%d: %w", id, v, ErrAlreadyPublished)
	}
	st.pending[v] = root
	// Fold any now-contiguous pending versions into the published list.
	var released []*cluster.Gate
	for {
		nextV := Version(len(st.published) + 1)
		r, ok := st.pending[nextV]
		if !ok {
			break
		}
		delete(st.pending, nextV)
		st.published = append(st.published, r)
		if g, ok := st.gates[nextV]; ok {
			released = append(released, g)
			delete(st.gates, nextV)
		}
	}
	var wait *cluster.Gate
	if int(v) > len(st.published) {
		wait = st.gates[v]
		if wait == nil {
			wait = cluster.NewGate()
			st.gates[v] = wait
		}
	}
	vm.mu.Unlock()
	for _, g := range released {
		g.Open(ctx)
	}
	if wait != nil {
		wait.Wait(ctx)
	}
	return nil
}

// Published returns (without cost) how many versions of id are visible.
func (vm *VersionManager) Published(id ID) int {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0
	}
	return len(st.published)
}

// PinnedError reports an attempt to retire a version that is still
// open somewhere (a mirror has it mounted, or a commit is building on
// it). It wraps ErrVersionPinned.
type PinnedError struct {
	ID ID
	V  Version
}

func (e *PinnedError) Error() string {
	return fmt.Sprintf("blob: version %d@%d is pinned", e.ID, e.V)
}

// Unwrap makes errors.Is(err, ErrVersionPinned) true.
func (e *PinnedError) Unwrap() error { return ErrVersionPinned }

// Pin marks (id, v) as in use: a pinned version cannot be retired, so
// the garbage collector treats its snapshot as live. Mirrors pin the
// version they mirror for as long as the image is open, and clients
// pin the base of an in-flight commit or clone. Pinning a retired or
// unpublished version fails. Pins nest; every Pin needs one Unpin.
//
// The pin piggybacks on the RPC its caller is already making to the
// manager (Info/Root/Ticket), so no separate cost is charged.
func (vm *VersionManager) Pin(id ID, v Version) error {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return notFound("blob", id)
	}
	if v < 1 || int(v) > len(st.published) {
		return notFound("version", fmt.Sprintf("%d@%d", id, v))
	}
	if st.retired[v] {
		return retired(id, v)
	}
	st.pins[v]++
	return nil
}

// Unpin releases one pin on (id, v). Unknown pins are ignored.
func (vm *VersionManager) Unpin(id ID, v Version) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return
	}
	if st.pins[v] > 0 {
		if st.pins[v]--; st.pins[v] == 0 {
			delete(st.pins, v)
		}
	}
}

// Pins returns (without cost) the pin count of (id, v).
func (vm *VersionManager) Pins(id ID, v Version) int {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0
	}
	return st.pins[v]
}

// Retire logically deletes version v of blob id: it disappears from
// Latest and Root immediately; the storage it holds exclusively is
// reclaimed by the next garbage collection. Retiring a pinned version
// fails with *PinnedError — the caller retries after the holder closes.
func (vm *VersionManager) Retire(ctx *cluster.Ctx, id ID, v Version) error {
	vm.chargeMut(ctx, 24, 16)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return notFound("blob", id)
	}
	if v < 1 || int(v) > len(st.published) {
		return notFound("version", fmt.Sprintf("%d@%d", id, v))
	}
	if st.retired[v] {
		return retired(id, v)
	}
	if st.pins[v] > 0 {
		return &PinnedError{ID: id, V: v}
	}
	st.retired[v] = true
	vm.retireEpoch.Add(1)
	return nil
}

// RetireEpoch returns (without cost) the retirement event counter. See
// the field comment: snapshot-resolution caches are valid as long as
// the epoch they were filled under is still current.
func (vm *VersionManager) RetireEpoch() uint64 {
	return vm.retireEpoch.Load()
}

// IsLive reports (without cost) whether (id, v) is published and not
// retired. Snapshot-resolution caches use it as ground truth when the
// retirement epoch has moved since an entry was validated.
func (vm *VersionManager) IsLive(id ID, v Version) bool {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	return ok && v >= 1 && int(v) <= len(st.published) && !st.retired[v]
}

// RetireUpTo retires every published, unpinned version of id up to and
// including upTo, skipping pinned ones (they retire on a later sweep,
// once their holders close). It returns how many versions it retired.
// This is the primitive behind the keep-last-K retention policy.
func (vm *VersionManager) RetireUpTo(ctx *cluster.Ctx, id ID, upTo Version) (int, error) {
	vm.chargeMut(ctx, 24, 16)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0, notFound("blob", id)
	}
	if int(upTo) > len(st.published) {
		upTo = Version(len(st.published))
	}
	retired := 0
	for v := Version(1); v <= upTo; v++ {
		if !st.retired[v] && st.pins[v] == 0 {
			st.retired[v] = true
			retired++
		}
	}
	if retired > 0 {
		vm.retireEpoch.Add(1)
	}
	return retired, nil
}

// Retired returns (without cost) how many versions of id are retired.
func (vm *VersionManager) Retired(id ID) int {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0
	}
	return len(st.retired)
}

// LiveRoot names one snapshot the garbage collector must treat as
// reachable: a published version that is not retired, or retired but
// still pinned (retirement of pinned versions is skipped, so the
// second case cannot normally arise — it is kept for safety).
type LiveRoot struct {
	ID   ID
	V    Version
	Root NodeRef
	Span int64
}

// LiveRoots returns every live snapshot root across all blobs, in
// (blob, version) order — the garbage collector's mark roots. One scan
// RPC to the manager is charged for the whole listing.
func (vm *VersionManager) LiveRoots(ctx *cluster.Ctx) []LiveRoot {
	vm.mu.Lock()
	var out []LiveRoot
	for id := ID(1); id <= vm.next; id++ {
		st, ok := vm.blobs[id]
		if !ok {
			continue
		}
		for v := Version(1); int(v) <= len(st.published); v++ {
			if st.retired[v] && st.pins[v] == 0 {
				continue
			}
			out = append(out, LiveRoot{ID: id, V: v, Root: st.published[v-1], Span: st.info.Span})
		}
	}
	vm.mu.Unlock()
	vm.charge(ctx, 16, int64(len(out))*24+16)
	return out
}
