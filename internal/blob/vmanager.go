package blob

import (
	"fmt"
	"sync"

	"blobvfs/internal/cluster"
)

// VersionManager is BlobSeer's serialization point: it registers blobs,
// hands out version tickets, and publishes snapshot roots in strict
// total order per blob. A snapshot becomes visible only when every
// earlier ticket of the same blob has been published, which is what
// lets writers push chunks and metadata concurrently and out of order
// (the decoupled publication that makes COMMIT cheap, paper §4.2).
//
// The manager runs on a single designated node; every operation is a
// small RPC.
type VersionManager struct {
	node cluster.NodeID

	mu    sync.Mutex
	blobs map[ID]*blobState
	next  ID
}

type blobState struct {
	info      Info
	published []NodeRef           // published roots; index = version-1
	tickets   Version             // highest ticket handed out
	pending   map[Version]NodeRef // out-of-order completed commits
	gates     map[Version]*cluster.Gate
}

// NewVersionManager creates a version manager hosted on the given node.
func NewVersionManager(node cluster.NodeID) *VersionManager {
	return &VersionManager{node: node, blobs: make(map[ID]*blobState)}
}

// Node returns the node hosting the manager.
func (vm *VersionManager) Node() cluster.NodeID { return vm.node }

// CreateBlob registers a new empty blob with the given geometry and
// returns its ID. The blob has no published versions yet.
func (vm *VersionManager) CreateBlob(ctx *cluster.Ctx, size int64, chunkSize int) (ID, error) {
	if size < 0 || chunkSize <= 0 {
		return 0, fmt.Errorf("blob: invalid geometry size=%d chunkSize=%d", size, chunkSize)
	}
	ctx.RPC(vm.node, 32, 16)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.next++
	id := vm.next
	chunks := (size + int64(chunkSize) - 1) / int64(chunkSize)
	vm.blobs[id] = &blobState{
		info:    Info{ID: id, Size: size, ChunkSize: chunkSize, Span: span2(chunks)},
		pending: make(map[Version]NodeRef),
		gates:   make(map[Version]*cluster.Gate),
	}
	return id, nil
}

// Info returns a blob's geometry. The result is immutable, so clients
// cache it; the first fetch charges an RPC.
func (vm *VersionManager) Info(ctx *cluster.Ctx, id ID) (Info, error) {
	ctx.RPC(vm.node, 16, 48)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return Info{}, notFound("blob", id)
	}
	return st.info, nil
}

// Latest returns the newest published version (0 if none).
func (vm *VersionManager) Latest(ctx *cluster.Ctx, id ID) (Version, error) {
	ctx.RPC(vm.node, 16, 16)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0, notFound("blob", id)
	}
	return Version(len(st.published)), nil
}

// Root returns the published root of (id, v).
func (vm *VersionManager) Root(ctx *cluster.Ctx, id ID, v Version) (NodeRef, error) {
	ctx.RPC(vm.node, 24, 16)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0, notFound("blob", id)
	}
	if v < 1 || int(v) > len(st.published) {
		return 0, notFound("version", fmt.Sprintf("%d@%d", id, v))
	}
	return st.published[v-1], nil
}

// Ticket reserves the next version number of the blob. The caller must
// eventually Publish it or the blob's version sequence stalls.
func (vm *VersionManager) Ticket(ctx *cluster.Ctx, id ID) (Version, error) {
	ctx.RPC(vm.node, 16, 16)
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0, notFound("blob", id)
	}
	st.tickets++
	return st.tickets, nil
}

// Publish reports that the snapshot for ticket v of blob id is complete
// (chunks and metadata durable) with the given root, and blocks until
// the version becomes visible, i.e. all earlier tickets are published.
func (vm *VersionManager) Publish(ctx *cluster.Ctx, id ID, v Version, root NodeRef) error {
	ctx.RPC(vm.node, 40, 16)
	vm.mu.Lock()
	st, ok := vm.blobs[id]
	if !ok {
		vm.mu.Unlock()
		return notFound("blob", id)
	}
	if v < 1 || v > st.tickets {
		vm.mu.Unlock()
		return fmt.Errorf("blob: publish of unticketed version %d@%d", id, v)
	}
	if int(v) <= len(st.published) {
		vm.mu.Unlock()
		return fmt.Errorf("blob: version %d@%d already published", id, v)
	}
	st.pending[v] = root
	// Fold any now-contiguous pending versions into the published list.
	var released []*cluster.Gate
	for {
		nextV := Version(len(st.published) + 1)
		r, ok := st.pending[nextV]
		if !ok {
			break
		}
		delete(st.pending, nextV)
		st.published = append(st.published, r)
		if g, ok := st.gates[nextV]; ok {
			released = append(released, g)
			delete(st.gates, nextV)
		}
	}
	var wait *cluster.Gate
	if int(v) > len(st.published) {
		wait = st.gates[v]
		if wait == nil {
			wait = cluster.NewGate()
			st.gates[v] = wait
		}
	}
	vm.mu.Unlock()
	for _, g := range released {
		g.Open(ctx)
	}
	if wait != nil {
		wait.Wait(ctx)
	}
	return nil
}

// Published returns (without cost) how many versions of id are visible.
func (vm *VersionManager) Published(id ID) int {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	st, ok := vm.blobs[id]
	if !ok {
		return 0
	}
	return len(st.published)
}
