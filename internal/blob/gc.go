package blob

import (
	"sync"
	"sync/atomic"

	"blobvfs/internal/cluster"
)

// This file implements the snapshot garbage collector: the storage
// reclamation §7 of the paper lists among the extensions a production
// deployment needs. The repeated snapshotting of the "going back and
// forth" workflow makes every VM accumulate versions; retirement (see
// vmanager.go) makes old versions logically disappear, and the
// collector reclaims the chunks and segment-tree nodes no live
// snapshot reaches — while shadowing and cloning keep everything a
// live version still shares fully intact.
//
// The collector is a concurrent mark-free design:
//
//   - Watermarks + pending sets. Chunk keys and node refs are
//     allocated from monotonic counters, so the collector snapshots
//     both counters first; anything allocated later is exempt from
//     this cycle's sweep. Keys and refs allocated *before* the
//     snapshot whose commit has not published yet are registered as
//     pending at allocation time (atomically with the counter, see
//     AllocPendingKey/AllocPendingRef) and equally exempt — they are
//     unreachable from any root only because their version is still
//     in flight.
//   - Mark. The live snapshot roots (published, not retired, plus
//     anything pinned) are fetched from the version manager, and their
//     trees are walked through the metadata service. Shared subtrees
//     are visited once: shadowing means most of a version's tree
//     belongs to its ancestors.
//   - Sweep. Unmarked tree nodes at or below the watermark are dropped
//     from the metadata providers; unmarked chunk keys give up their
//     content reference, and chunks whose reference count reaches zero
//     are physically freed (dedup aliases keep shared content alive).
//
// Safety against concurrent activity rests on two invariants: new
// allocations are above the watermark or pending at the snapshot, and
// every version a client is actively using — a mirrored image, the
// base of an in-flight commit or clone — is pinned and therefore
// marked. A retirement that races with the mark phase only delays
// reclamation to the next cycle.

// ReclaimListener is notified after a collection cycle with the chunk
// keys that were released, so location caches can drop them — the p2p
// sharing registry retracts reclaimed chunks from its cohorts.
type ReclaimListener interface {
	ChunksReclaimed(ctx *cluster.Ctx, keys []ChunkKey)
}

// GCReport summarizes one collection cycle.
type GCReport struct {
	Skipped      bool  // another cycle was in progress; nothing was done
	LiveVersions int   // snapshot roots marked from
	MarkedNodes  int   // tree nodes reachable from live roots
	MarkedChunks int   // distinct chunk keys reachable
	FreedNodes   int   // tree nodes swept
	FreedKeys    int   // chunk keys released (incl. dedup aliases)
	FreedChunks  int64 // chunk payloads physically freed
	FreedBytes   int64 // payload bytes physically freed
}

// Collector reclaims storage unreachable from any live snapshot.
// One collector per system; at most one cycle runs at a time — a
// Collect that finds another in progress returns immediately with
// Skipped set (the running cycle is doing the work). The guard is an
// atomic flag rather than a lock so the collector never blocks an
// activity across fabric operations (which the single-threaded sim
// fabric forbids).
type Collector struct {
	sys     *System
	running atomic.Bool

	mu       sync.Mutex // guards listener and accumulated stats
	listener ReclaimListener
	cycles   int
	total    GCReport
}

// NewCollector creates a collector for the system.
func NewCollector(sys *System) *Collector {
	return &Collector{sys: sys}
}

// SetListener registers the reclaim listener (nil to remove).
func (g *Collector) SetListener(l ReclaimListener) {
	g.mu.Lock()
	g.listener = l
	g.mu.Unlock()
}

// Cycles returns how many collection cycles have completed and the
// accumulated totals across them.
func (g *Collector) Cycles() (int, GCReport) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cycles, g.total
}

// Collect runs one mark-free cycle and reports what it reclaimed.
// It runs concurrently with deployments, commits and fetches; a call
// overlapping another cycle skips (see Collector).
func (g *Collector) Collect(ctx *cluster.Ctx) (GCReport, error) {
	if !g.running.CompareAndSwap(false, true) {
		return GCReport{Skipped: true}, nil
	}
	defer g.running.Store(false)

	// Watermark + pending snapshots first: anything allocated after
	// this point is above the watermark, and anything allocated before
	// it for a commit that has not yet published is in the pending set
	// — both exempt from this cycle's sweep. A commit that published
	// before this point is reached through LiveRoots below.
	refWM, pendingRefs := g.sys.Meta.PendingSnapshot()
	keyWM, pendingKeys := g.sys.Providers.PendingSnapshot()

	roots := g.sys.VM.LiveRoots(ctx)
	rep := GCReport{LiveVersions: len(roots)}

	liveNodes := make(map[NodeRef]bool)
	liveChunks := make(map[ChunkKey]bool)
	getter := GetterFunc(func(ref NodeRef) (TreeNode, error) {
		return g.sys.Meta.Get(ctx, ref)
	})
	for _, lr := range roots {
		err := WalkReachable(getter, lr.Root, lr.Span,
			func(ref NodeRef) bool {
				if liveNodes[ref] {
					return false // shared subtree already marked
				}
				liveNodes[ref] = true
				return true
			},
			func(key ChunkKey) { liveChunks[key] = true })
		if err != nil {
			return rep, err
		}
	}
	rep.MarkedNodes = len(liveNodes)
	rep.MarkedChunks = len(liveChunks)

	rep.FreedNodes = g.sys.Meta.Sweep(ctx, refWM, liveNodes, pendingRefs)

	var dead []ChunkKey
	for _, key := range g.sys.Providers.RetainedKeys(keyWM) {
		if !liveChunks[key] && !pendingKeys[key] {
			dead = append(dead, key)
		}
	}
	beforeChunks := g.sys.Providers.Reclaimed.Load()
	released, freedBytes := g.sys.Providers.Release(ctx, dead)
	rep.FreedKeys = len(released)
	rep.FreedChunks = g.sys.Providers.Reclaimed.Load() - beforeChunks
	rep.FreedBytes = freedBytes

	g.mu.Lock()
	l := g.listener
	g.cycles++
	g.total.LiveVersions = rep.LiveVersions
	g.total.MarkedNodes = rep.MarkedNodes
	g.total.MarkedChunks = rep.MarkedChunks
	g.total.FreedNodes += rep.FreedNodes
	g.total.FreedKeys += rep.FreedKeys
	g.total.FreedChunks += rep.FreedChunks
	g.total.FreedBytes += rep.FreedBytes
	g.mu.Unlock()

	if l != nil && len(released) > 0 {
		l.ChunksReclaimed(ctx, released)
	}
	return rep, nil
}
