package blob

import (
	"errors"
	"fmt"
	"testing"

	"blobvfs/internal/cluster"
	"blobvfs/internal/sim"
)

// Chaos/property tests for the failure-resilience layer: randomized
// fault plans are thrown at the provider set and the collector, and
// the invariants that make "handles node failure" a real property are
// asserted after every transition — no published chunk is lost while
// at least one copy lives, reads fail over rather than fail, and the
// garbage collector never reclaims a reachable chunk no matter how the
// failover reshuffled the copies.

// TestFailoverNoLostChunksProperty: random kill/revive sequences
// against a replicated provider set. After every transition with
// synchronous re-replication, every stored chunk must keep at least
// one live location and stay readable; Get must only fail once every
// copy of a chunk is gone.
func TestFailoverNoLostChunksProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := sim.NewRNG(int64(1000 + trial))
			nProv := 4 + rng.Intn(5)    // 4..8 providers
			replicas := 2 + rng.Intn(2) // 2..3 copies
			if replicas > nProv {
				replicas = nProv
			}
			nChunks := 32 + rng.Intn(64)
			fab := cluster.NewSim(cluster.DefaultConfig(nProv + 1))
			nodes := make([]cluster.NodeID, nProv)
			for i := range nodes {
				nodes[i] = cluster.NodeID(i + 1)
			}
			ps := NewProviderSet(nodes, replicas)
			lv := cluster.NewLiveness(nProv + 1)
			lv.OnChange(ps.NodeChanged)

			fab.Run(func(ctx *cluster.Ctx) {
				keys := make([]ChunkKey, nChunks)
				for i := range keys {
					keys[i] = ps.AllocKey()
					if err := ps.Put(ctx, keys[i], SyntheticPayload(4096, uint64(i+1))); err != nil {
						t.Fatalf("put %d: %v", i, err)
					}
				}
				// Random walk over kill/revive, never below one live
				// provider. Every step also publishes a fresh chunk —
				// often while providers are down, exercising the
				// write-around-failure path of Put.
				for step := 0; step < 24; step++ {
					victim := nodes[rng.Intn(nProv)]
					if lv.Alive(victim) && lv.AliveCount() > 2 {
						lv.Kill(ctx, victim)
					} else {
						lv.Revive(ctx, victim)
					}
					k := ps.AllocKey()
					if err := ps.Put(ctx, k, SyntheticPayload(4096, uint64(1000+step))); err != nil {
						t.Fatalf("step %d: degraded put: %v", step, err)
					}
					keys = append(keys, k)
					for _, k := range keys {
						locs := ps.LiveLocations(k)
						if len(locs) == 0 {
							t.Fatalf("step %d: chunk %d lost every live location", step, k)
						}
						if _, err := ps.Get(ctx, k); err != nil {
							t.Fatalf("step %d: chunk %d unreadable with %d live copies: %v",
								step, k, len(locs), err)
						}
					}
				}
			})
		})
	}
}

// TestFailoverCounters: a single provider death must be visible in the
// Failovers and Rereplicated counters, and reads of a chunk whose
// every copy died must fail with ErrNoReplica (counted as a failed
// read) — not a wrong payload.
func TestFailoverCounters(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(4))
	nodes := []cluster.NodeID{0, 1, 2, 3}
	ps := NewProviderSet(nodes, 2)
	fab.Run(func(ctx *cluster.Ctx) {
		key := ps.AllocKey()
		if err := ps.Put(ctx, key, SyntheticPayload(1024, 7)); err != nil {
			t.Fatal(err)
		}
		ring := ps.Replicas(key)
		// Kill the primary without repair: the read fails over to the
		// second ring replica and costs a probe.
		ps.Kill(ring[0])
		before := fab.Now()
		if _, err := ps.Get(ctx, key); err != nil {
			t.Fatalf("read with one live replica: %v", err)
		}
		if ps.Failovers.Load() != 1 {
			t.Fatalf("Failovers = %d, want 1", ps.Failovers.Load())
		}
		cfg := fab.Config()
		if got := fab.Now() - before; got < cfg.RTT+cfg.ReqOverhead {
			t.Fatalf("failover read took %g, want >= probe cost %g", got, cfg.RTT+cfg.ReqOverhead)
		}
		// Kill the second replica too (still no repair): now every copy
		// is gone.
		ps.Kill(ring[1])
		if _, err := ps.Get(ctx, key); !errors.Is(err, ErrNoReplica) {
			t.Fatalf("read with all replicas dead = %v, want ErrNoReplica", err)
		}
		if ps.FailedReads.Load() != 1 {
			t.Fatalf("FailedReads = %d, want 1", ps.FailedReads.Load())
		}
		// Revive the primary and run the repair sweep: the chunk is at
		// degree 1 (only the revived primary), so one copy is created.
		ps.Revive(ring[0])
		created := ps.ReReplicate(ctx)
		if created != 1 {
			t.Fatalf("ReReplicate created %d copies, want 1", created)
		}
		if ps.Rereplicated.Load() != 1 {
			t.Fatalf("Rereplicated = %d, want 1", ps.Rereplicated.Load())
		}
		if got := len(ps.LiveLocations(key)); got != 2 {
			t.Fatalf("live locations after repair = %d, want 2", got)
		}
		// The repair must survive the repaired node dying later: kill
		// the revived primary again, the repair copy serves.
		ps.Kill(ring[0])
		if _, err := ps.Get(ctx, key); err != nil {
			t.Fatalf("read from repair copy: %v", err)
		}
	})
}

// TestDegradedPutWritesAroundFailure: a Put while a ring replica is
// down must place the missing copy on a live substitute immediately
// (not wait for the next liveness transition), and a later revival
// must not count the skipped replica as a holder — the copy it never
// received cannot serve reads until a repair sweep backfills it.
func TestDegradedPutWritesAroundFailure(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(4))
	nodes := []cluster.NodeID{0, 1, 2, 3}
	ps := NewProviderSet(nodes, 2)
	fab.Run(func(ctx *cluster.Ctx) {
		key := ps.AllocKey()
		ring := ps.Replicas(key)
		// Primary down at write time: the writer pushes the second copy
		// to a substitute outside the ring.
		ps.Kill(ring[0])
		if err := ps.Put(ctx, key, SyntheticPayload(2048, 3)); err != nil {
			t.Fatal(err)
		}
		locs := ps.LiveLocations(key)
		if len(locs) != 2 {
			t.Fatalf("degraded put placed %d live copies (%v), want 2", len(locs), locs)
		}
		if containsProvider(locs, ring[0]) {
			t.Fatalf("dead primary %d listed as a holder right after the put", ring[0])
		}
		// Reviving the primary must not resurrect the copy it never
		// received: it stays a void until a repair sweep backfills it.
		ps.Revive(ring[0])
		if locs := ps.LiveLocations(key); containsProvider(locs, ring[0]) {
			t.Fatalf("revived primary %d counted as holder without a backfill (locs %v)", ring[0], locs)
		}
		// Even with both other holders down, the read must fail over to
		// real copies only — never be served by the void primary.
		if err := func() error { _, err := ps.Get(ctx, key); return err }(); err != nil {
			t.Fatalf("read before backfill: %v", err)
		}
		// The sweep backfills the void ring member first (it is the
		// chunk's rightful home), making it a holder again.
		ps.Kill(ring[1]) // drops the chunk to one live copy (the substitute)
		if created := ps.ReReplicate(ctx); created == 0 {
			t.Fatal("sweep created no copies with a void ring member available")
		}
		if locs := ps.LiveLocations(key); !containsProvider(locs, ring[0]) {
			t.Fatalf("void primary not backfilled by the sweep (locs %v)", locs)
		}
		ps.Revive(ring[1])
	})
}

// TestDedupUnderFailure: the dedup bookkeeping must stay consistent
// across failed and degraded writes — a Put that failed with every
// provider down must not leave its fingerprint behind (a later
// identical write would alias to a never-stored chunk), and an
// aliasing Put whose own ring is dead must still succeed via the
// canonical chunk's live holders.
func TestDedupUnderFailure(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(4))
	nodes := []cluster.NodeID{0, 1, 2, 3}
	ps := NewProviderSet(nodes, 1)
	ps.EnableDedup()
	fab.Run(func(ctx *cluster.Ctx) {
		payload := SyntheticPayload(2048, 42)
		// Total outage: the first write of this content fails, and its
		// fingerprint claim must be rolled back.
		for _, n := range nodes {
			ps.Kill(n)
		}
		k1 := ps.AllocKey()
		if err := ps.Put(ctx, k1, payload); !errors.Is(err, ErrNoReplica) {
			t.Fatalf("put with all providers dead = %v, want ErrNoReplica", err)
		}
		for _, n := range nodes {
			ps.Revive(n)
		}
		// The same content stored after the outage must become a real
		// canonical chunk, not an alias to the failed key.
		k2 := ps.AllocKey()
		if err := ps.Put(ctx, k2, payload); err != nil {
			t.Fatal(err)
		}
		if ps.DedupHits.Load() != 0 {
			t.Fatal("second write aliased to the failed put's phantom chunk")
		}
		if _, err := ps.Get(ctx, k2); err != nil {
			t.Fatalf("read of re-stored content: %v", err)
		}
		// An aliasing write whose own ring is entirely dead still
		// succeeds: the transfer lands on the canonical chunk's holder.
		var k3 ChunkKey
		for {
			k3 = ps.AllocKey()
			if ps.Replicas(k3)[0] != ps.Replicas(k2)[0] {
				break
			}
		}
		ps.Kill(ps.Replicas(k3)[0])
		if err := ps.Put(ctx, k3, payload); err != nil {
			t.Fatalf("aliasing put with its ring dead = %v, want success via canonical holder", err)
		}
		if ps.DedupHits.Load() != 1 {
			t.Fatalf("DedupHits = %d, want 1", ps.DedupHits.Load())
		}
		if _, err := ps.Get(ctx, k3); err != nil {
			t.Fatalf("read through the alias: %v", err)
		}
		ps.Revive(ps.Replicas(k3)[0])
	})
}

// TestGCNeverReclaimsReachableDuringFailover: provider deaths and
// repairs run between GC cycles; collection must only ever reclaim
// chunks of retired versions, never a chunk some live version
// references, and reads of live versions keep working throughout.
func TestGCNeverReclaimsReachableDuringFailover(t *testing.T) {
	rng := sim.NewRNG(77)
	fab := cluster.NewSim(cluster.DefaultConfig(6))
	provs := []cluster.NodeID{1, 2, 3, 4, 5}
	sys := &System{
		Meta:      NewMetaService(provs),
		VM:        NewVersionManager(0),
		Providers: NewProviderSet(provs, 2),
	}
	lv := cluster.NewLiveness(6)
	lv.OnChange(sys.Providers.NodeChanged)
	col := NewCollector(sys)
	c := NewClient(sys)

	fab.Run(func(ctx *cluster.Ctx) {
		id, err := c.Create(ctx, 64<<10, 4<<10)
		if err != nil {
			t.Fatal(err)
		}
		var versions []Version
		v := Version(0)
		for i := 0; i < 6; i++ {
			v, err = c.WriteFull(ctx, id, v, uint64(i+1))
			if err != nil {
				t.Fatal(err)
			}
			versions = append(versions, v)
		}
		for step := 0; step < 10; step++ {
			victim := provs[rng.Intn(len(provs))]
			if lv.Alive(victim) && lv.AliveCount() > 3 {
				lv.Kill(ctx, victim)
			} else {
				lv.Revive(ctx, victim)
			}
			// Retire the oldest still-live version every other step.
			if step%2 == 0 && len(versions) > 2 {
				if err := sys.VM.Retire(ctx, id, versions[0]); err != nil {
					t.Fatal(err)
				}
				versions = versions[1:]
			}
			if _, err := col.Collect(ctx); err != nil {
				t.Fatal(err)
			}
			// Every chunk of every live version stays fetchable.
			for _, live := range versions {
				if _, err := c.FetchChunks(ctx, id, live, 0, 16); err != nil {
					t.Fatalf("step %d: live version %d unreadable after GC+failover: %v", step, live, err)
				}
			}
		}
	})
}
