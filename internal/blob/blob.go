package blob

// ID identifies a blob (a virtual machine image lineage).
type ID int32

// Version is a 1-based snapshot number within a blob; 0 is invalid.
type Version int32

// NodeRef identifies an immutable metadata tree node; 0 is the nil ref.
type NodeRef uint64

// ChunkKey identifies a stored chunk; 0 means "no data" (reads as zeros).
type ChunkKey uint64

// Payload is chunk content. Data may be nil, in which case the chunk is
// synthetic: it has the declared size for costing purposes and carries
// only an identity tag. The large-scale experiments run with synthetic
// payloads (moving 110 instances × 2 GB of real bytes would measure the
// host, not the model); unit tests run with real bytes.
type Payload struct {
	Size int32
	Data []byte
	Tag  uint64
}

// Real reports whether the payload carries actual bytes.
func (p Payload) Real() bool { return p.Data != nil }

// RealPayload wraps bytes as a payload.
func RealPayload(data []byte) Payload {
	return Payload{Size: int32(len(data)), Data: data}
}

// SyntheticPayload describes a chunk of the given size without bytes.
func SyntheticPayload(size int32, tag uint64) Payload {
	return Payload{Size: size, Tag: tag}
}

// TreeNode is one immutable node of a version's segment tree. A node
// covers the chunk-index range [Lo,Hi). Leaves (Hi-Lo == 1) carry the
// chunk key; inner nodes reference children that may belong to older
// versions of the same blob or, after CLONE, to a different blob.
type TreeNode struct {
	Lo, Hi      int64
	Left, Right NodeRef  // inner nodes; 0 = fully sparse subtree
	Chunk       ChunkKey // leaves; 0 = sparse (zeros)
}

// Leaf reports whether the node is a leaf.
func (n TreeNode) Leaf() bool { return n.Hi-n.Lo == 1 }

// valid reports whether the node covers a non-empty range. Every
// stored node does; the zero TreeNode (e.g. a ref a batch fetch could
// not resolve) does not.
func (n TreeNode) valid() bool { return n.Hi > n.Lo }

// treeNodeWire is the modeled on-wire size of a metadata node in bytes,
// used for RPC costing.
const treeNodeWire = 64

// Info describes a blob as registered with the version manager.
type Info struct {
	ID        ID
	Size      int64 // logical size in bytes
	ChunkSize int   // stripe unit in bytes
	Span      int64 // padded power-of-two chunk count covered by trees
}

// Chunks returns the number of chunks the blob's size occupies.
func (inf Info) Chunks() int64 {
	return (inf.Size + int64(inf.ChunkSize) - 1) / int64(inf.ChunkSize)
}

// span2 returns the smallest power of two ≥ n (and ≥ 1).
func span2(n int64) int64 {
	s := int64(1)
	for s < n {
		s <<= 1
	}
	return s
}
