package blob

import (
	"sync"
	"sync/atomic"

	"blobvfs/internal/cluster"
)

// metaShards stripes the node store so concurrent readers (the 16-way
// parallel fetchers of every client, times the number of clients in a
// deployment) do not serialize on one map mutex. Power of two; node
// refs are allocated sequentially, so masking spreads them evenly.
const metaShards = 16

type metaShard struct {
	mu    sync.RWMutex
	nodes map[NodeRef]TreeNode
}

// MetaService is the distributed metadata store: immutable segment-tree
// nodes spread over a set of metadata provider nodes by reference hash,
// as in BlobSeer's metadata DHT. Because nodes are immutable, clients
// cache them freely (see Client); the service itself never invalidates.
//
// The in-memory store is hash-striped (metaShards segments, RWMutex
// each): nodes are written once and read many times, so the hot read
// path takes only a shared lock on one stripe.
type MetaService struct {
	providers []cluster.NodeID
	nextRef   atomic.Uint64

	shards [metaShards]metaShard

	pendMu  sync.Mutex
	pending map[NodeRef]bool // refs of in-flight, unpublished versions

	// Puts and Gets count service operations (after batching);
	// NodesServed counts individual tree nodes returned by Get/GetBatch
	// (so Gets/NodesServed exposes the batching factor); Freed counts
	// tree nodes reclaimed by garbage-collection sweeps.
	Puts, Gets, NodesServed, Freed atomic.Int64
}

// NewMetaService creates a metadata store over the given provider nodes.
func NewMetaService(providers []cluster.NodeID) *MetaService {
	if len(providers) == 0 {
		panic("blob: metadata service needs at least one provider")
	}
	m := &MetaService{
		providers: providers,
		pending:   make(map[NodeRef]bool),
	}
	for i := range m.shards {
		m.shards[i].nodes = make(map[NodeRef]TreeNode)
	}
	return m
}

func (m *MetaService) shard(ref NodeRef) *metaShard {
	return &m.shards[uint64(ref)&(metaShards-1)]
}

// Home returns the metadata provider responsible for a reference.
func (m *MetaService) Home(ref NodeRef) cluster.NodeID {
	return m.providers[uint64(ref)%uint64(len(m.providers))]
}

// Get fetches one tree node, charging a small RPC to its home provider.
func (m *MetaService) Get(ctx *cluster.Ctx, ref NodeRef) (TreeNode, error) {
	ctx.RPC(m.Home(ref), 16, treeNodeWire)
	m.Gets.Add(1)
	sh := m.shard(ref)
	sh.mu.RLock()
	n, ok := sh.nodes[ref]
	sh.mu.RUnlock()
	if !ok {
		return TreeNode{}, notFound("metadata node", ref)
	}
	m.NodesServed.Add(1)
	return n, nil
}

// GetBatch fetches many tree nodes at once, grouping the refs by home
// provider and charging one RPC per distinct provider — the read-side
// twin of PutBatch, and what turns a client's level-order tree descent
// into depth rounds instead of node-count round trips. The result is
// aligned with refs; a ref with no stored node fails the batch with
// the same not-found error Get returns (the full round is still
// charged — the providers did the lookups).
func (m *MetaService) GetBatch(ctx *cluster.Ctx, refs []NodeRef) ([]TreeNode, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	out := make([]TreeNode, len(refs))
	if err := m.GetBatchInto(ctx, refs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetBatchInto is GetBatch resolving into a caller-provided slice
// (len(out) must be len(refs)), so tight descent loops can reuse one
// buffer per level instead of allocating twice. On a missing-ref
// error the found refs are still filled in (their out entries are
// valid()); missing ones stay the zero TreeNode.
func (m *MetaService) GetBatchInto(ctx *cluster.Ctx, refs []NodeRef, out []TreeNode) error {
	// Per-ring-position request counts (refs map to providers by
	// modulo, so the position IS the provider): one small slice
	// instead of a map per descent level.
	counts := make([]int64, len(m.providers))
	for _, ref := range refs {
		counts[uint64(ref)%uint64(len(m.providers))]++
	}
	// Charge per-provider batches in deterministic (provider ring) order.
	for pi, prov := range m.providers {
		if c := counts[pi]; c > 0 {
			ctx.RPC(prov, c*16, c*treeNodeWire)
			m.Gets.Add(1)
		}
	}
	var missing error
	served := int64(0)
	for i, ref := range refs {
		sh := m.shard(ref)
		sh.mu.RLock()
		n, ok := sh.nodes[ref]
		sh.mu.RUnlock()
		if !ok {
			if missing == nil {
				missing = notFound("metadata node", ref)
			}
			continue
		}
		out[i] = n
		served++
	}
	m.NodesServed.Add(served)
	return missing
}

// PutBatch stores freshly built nodes, batching the RPCs per provider
// (one request per distinct home node). This is what a BlobSeer client
// library does when it writes the new subtree of a version.
func (m *MetaService) PutBatch(ctx *cluster.Ctx, nodes []NewNode) {
	if len(nodes) == 0 {
		return
	}
	counts := make(map[cluster.NodeID]int64)
	for _, nn := range nodes {
		counts[m.Home(nn.Ref)]++
	}
	// Charge per-provider batches in deterministic (provider ring) order.
	for _, prov := range m.providers {
		if c := counts[prov]; c > 0 {
			ctx.RPC(prov, c*treeNodeWire, 16)
			m.Puts.Add(1)
		}
	}
	for _, nn := range nodes {
		sh := m.shard(nn.Ref)
		sh.mu.Lock()
		sh.nodes[nn.Ref] = nn.Node
		sh.mu.Unlock()
	}
}

// RefWatermark returns the highest node reference allocated so far.
// Like ProviderSet.KeyWatermark, the garbage collector snapshots it
// before marking so nodes of in-flight versions are exempt from the
// sweep.
func (m *MetaService) RefWatermark() NodeRef {
	return NodeRef(m.nextRef.Load())
}

// AllocPendingRef returns a fresh globally unique node reference for
// a version being built (refs are client-generated in BlobSeer as
// well, so no RPC is charged): the ref is atomically registered as
// pending so a concurrent sweep will not reclaim the node before its
// version publishes. The writer must ClearPending after publication
// (or abort). See ProviderSet.AllocPendingKey for the
// snapshot-atomicity argument.
func (m *MetaService) AllocPendingRef() NodeRef {
	m.pendMu.Lock()
	ref := NodeRef(m.nextRef.Add(1))
	m.pending[ref] = true
	m.pendMu.Unlock()
	return ref
}

// ClearPending removes the in-flight mark from refs (idempotent).
func (m *MetaService) ClearPending(refs []NodeRef) {
	m.pendMu.Lock()
	for _, r := range refs {
		delete(m.pending, r)
	}
	m.pendMu.Unlock()
}

// PendingSnapshot atomically samples the ref watermark and the set of
// in-flight refs, taken at the start of a collection cycle.
func (m *MetaService) PendingSnapshot() (NodeRef, map[NodeRef]bool) {
	m.pendMu.Lock()
	defer m.pendMu.Unlock()
	wm := NodeRef(m.nextRef.Load())
	pending := make(map[NodeRef]bool, len(m.pending))
	for r := range m.pending {
		pending[r] = true
	}
	return wm, pending
}

// Sweep deletes every stored node up to the watermark that is neither
// in the live set nor in the pending snapshot, and returns how many it
// removed, charging one batched RPC per affected home provider
// (immutable nodes need no further coordination to drop). The caller
// guarantees the live set covers every node reachable from a live
// snapshot root.
func (m *MetaService) Sweep(ctx *cluster.Ctx, upTo NodeRef, live, pending map[NodeRef]bool) int {
	counts := make(map[cluster.NodeID]int64)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for ref := range sh.nodes {
			if ref <= upTo && !live[ref] && !pending[ref] {
				delete(sh.nodes, ref)
				counts[m.Home(ref)]++
			}
		}
		sh.mu.Unlock()
	}
	freed := 0
	for _, prov := range m.providers {
		if c := counts[prov]; c > 0 {
			ctx.RPC(prov, c*16, 16)
			freed += int(c)
		}
	}
	m.Freed.Add(int64(freed))
	return freed
}

// NodeCount returns the number of stored tree nodes (metadata footprint).
func (m *MetaService) NodeCount() int {
	total := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		total += len(sh.nodes)
		sh.mu.RUnlock()
	}
	return total
}

// peek returns a node without charging any cost; used by in-process
// verification and tests.
func (m *MetaService) peek(ref NodeRef) (TreeNode, bool) {
	sh := m.shard(ref)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	n, ok := sh.nodes[ref]
	return n, ok
}
