package blob

import (
	"fmt"
	"sync"
	"sync/atomic"

	"blobvfs/internal/cluster"
)

// metaShards stripes the node store so concurrent readers (the 16-way
// parallel fetchers of every client, times the number of clients in a
// deployment) do not serialize on one map mutex. Power of two; node
// refs are allocated sequentially, so masking spreads them evenly.
const metaShards = 16

type metaShard struct {
	mu    sync.RWMutex
	nodes map[NodeRef]TreeNode
}

// MetaService is the distributed metadata store: immutable segment-tree
// nodes spread over a set of metadata provider nodes by reference hash,
// as in BlobSeer's metadata DHT. Because nodes are immutable, clients
// cache them freely (see Client); the service itself never invalidates.
//
// The in-memory store is hash-striped (metaShards segments, RWMutex
// each): nodes are written once and read many times, so the hot read
// path takes only a shared lock on one stripe.
//
// At replication degree 1 (the default) every ref lives on exactly one
// home provider and the control plane is assumed fault-free — the
// pre-replication layout, kept byte-identical for every recorded
// scenario. SetReplication(r) switches each ref to an r-replica ring
// over the providers, mirroring the chunk plane: writes fan out to
// every live ring member and write around dead ones (voids +
// substitutes), reads probe the nearest live replica first and fail
// over down the ring, and a liveness-driven repair sweep
// (metarepair.go) restores the degree after every transition.
type MetaService struct {
	providers []cluster.NodeID
	replicas  int
	// topo, when enabled, makes replicated placement and reads
	// locality-aware, exactly as in ProviderSet: rings spread across
	// failure domains and gets probe the reader's nearest live copy
	// first.
	topo    cluster.Topology
	nextRef atomic.Uint64

	shards [metaShards]metaShard

	pendMu  sync.Mutex
	pending map[NodeRef]bool // refs of in-flight, unpublished versions

	// repMu guards the degraded-placement bookkeeping. repairs holds
	// substitute copies created by degraded puts or repair sweeps;
	// voids lists ring replicas that never received their copy (down
	// at put time) — not locations until a sweep backfills them. Both
	// stay empty at replication degree 1.
	repMu   sync.RWMutex
	repairs map[NodeRef][]cluster.NodeID
	voids   map[NodeRef][]cluster.NodeID

	alive map[cluster.NodeID]*atomic.Bool // provider liveness flags

	// Puts and Gets count service operations (after batching);
	// NodesServed counts individual tree nodes returned by Get/GetBatch
	// (so Gets/NodesServed exposes the batching factor); Freed counts
	// tree nodes reclaimed by garbage-collection sweeps.
	Puts, Gets, NodesServed, Freed atomic.Int64
	// Failovers counts gets a dead replica pushed onto a surviving
	// one; FailedGets counts gets that found no live copy (the failed
	// descents a metadata outage is judged by); Rereplicated counts
	// tree-node copies restored by repair sweeps. All three stay zero
	// at replication degree 1.
	Failovers, FailedGets, Rereplicated atomic.Int64
	// tierGets counts replicated gets by the locality tier of the
	// replica that served them (meaningful only with a topology).
	tierGets [cluster.NumTiers]atomic.Int64
}

// NewMetaService creates a metadata store over the given provider nodes.
func NewMetaService(providers []cluster.NodeID) *MetaService {
	if len(providers) == 0 {
		panic("blob: metadata service needs at least one provider")
	}
	m := &MetaService{
		providers: providers,
		replicas:  1,
		pending:   make(map[NodeRef]bool),
		repairs:   make(map[NodeRef][]cluster.NodeID),
		voids:     make(map[NodeRef][]cluster.NodeID),
		alive:     make(map[cluster.NodeID]*atomic.Bool, len(providers)),
	}
	for i := range m.shards {
		m.shards[i].nodes = make(map[NodeRef]TreeNode)
	}
	for _, n := range providers {
		a := &atomic.Bool{}
		a.Store(true)
		m.alive[n] = a
	}
	return m
}

// SetReplication sets the metadata replication degree. Call before any
// traffic; degree 1 is the legacy single-home layout.
func (m *MetaService) SetReplication(r int) {
	if r < 1 || r > len(m.providers) {
		panic("blob: metadata replication degree out of range")
	}
	m.replicas = r
}

// SetTopology makes replicated placement and reads locality-aware.
// Call before any traffic.
func (m *MetaService) SetTopology(t cluster.Topology) { m.topo = t }

// ReplicationDegree returns the configured metadata replication degree.
func (m *MetaService) ReplicationDegree() int { return m.replicas }

// TierGets returns the per-tier counts of replicated gets, indexed by
// cluster.Tier.
func (m *MetaService) TierGets() [cluster.NumTiers]int64 {
	var out [cluster.NumTiers]int64
	for i := range m.tierGets {
		out[i] = m.tierGets[i].Load()
	}
	return out
}

func (m *MetaService) shard(ref NodeRef) *metaShard {
	return &m.shards[uint64(ref)&(metaShards-1)]
}

// Home returns the metadata provider primarily responsible for a
// reference (the first ring member at any replication degree).
func (m *MetaService) Home(ref NodeRef) cluster.NodeID {
	return m.providers[uint64(ref)%uint64(len(m.providers))]
}

// primarySlot returns the index into m.providers of a ref's primary
// replica; the ring walks of Replicas, ReReplicate and substitutes all
// start here.
func (m *MetaService) primarySlot(ref NodeRef) int {
	return int(uint64(ref) % uint64(len(m.providers)))
}

// Replicas returns the metadata providers responsible for a ref,
// primary first — the same ring walk as ProviderSet.Replicas: plain
// consecutive ring without a topology, failure-domain spread (fresh
// zones, then fresh racks, then remainder) with one.
func (m *MetaService) Replicas(ref NodeRef) []cluster.NodeID {
	n := len(m.providers)
	first := m.primarySlot(ref)
	out := make([]cluster.NodeID, 0, m.replicas)
	if !m.topo.Enabled() || m.replicas == 1 {
		for i := 0; i < m.replicas; i++ {
			out = append(out, m.providers[(first+i)%n])
		}
		return out
	}
	usedZones := make([]int, 0, m.replicas)
	usedRacks := make([]int, 0, m.replicas)
	taken := make([]bool, n)
	for pass := 0; pass < 3 && len(out) < m.replicas; pass++ {
		for i := 0; i < n && len(out) < m.replicas; i++ {
			slot := (first + i) % n
			if taken[slot] {
				continue
			}
			nd := m.providers[slot]
			if pass == 0 && containsInt(usedZones, m.topo.Zone(nd)) {
				continue
			}
			if pass == 1 && containsInt(usedRacks, m.topo.Rack(nd)) {
				continue
			}
			taken[slot] = true
			usedZones = append(usedZones, m.topo.Zone(nd))
			usedRacks = append(usedRacks, m.topo.Rack(nd))
			out = append(out, nd)
		}
	}
	return out
}

// orderByLocality stably reorders a location list so the reader's
// nearest copies come first (see ProviderSet.orderByLocality).
func (m *MetaService) orderByLocality(reader cluster.NodeID, locs []cluster.NodeID) {
	if !m.topo.Enabled() || len(locs) < 2 {
		return
	}
	for i := 1; i < len(locs); i++ {
		ti := m.topo.Tier(reader, locs[i])
		for j := i; j > 0 && m.topo.Tier(reader, locs[j-1]) > ti; j-- {
			locs[j-1], locs[j] = locs[j], locs[j-1]
		}
	}
}

// locationsLocked returns the nodes holding a ref's copies in failover
// order: ring replicas that actually stored it (minus voids), then the
// substitute locations degraded puts and repair sweeps created. The
// caller holds m.repMu (either side).
func (m *MetaService) locationsLocked(ref NodeRef) []cluster.NodeID {
	ring := m.Replicas(ref)
	voids := m.voids[ref]
	out := make([]cluster.NodeID, 0, len(ring)+len(m.repairs[ref]))
	for _, r := range ring {
		if !containsProvider(voids, r) {
			out = append(out, r)
		}
	}
	return append(out, m.repairs[ref]...)
}

// locations is locationsLocked taking the lock itself, with a fast
// path for the fault-free common case (no voids or repairs anywhere:
// the location set IS the ring).
func (m *MetaService) locations(ref NodeRef) []cluster.NodeID {
	m.repMu.RLock()
	if len(m.voids) == 0 && len(m.repairs) == 0 {
		m.repMu.RUnlock()
		return m.Replicas(ref)
	}
	locs := m.locationsLocked(ref)
	m.repMu.RUnlock()
	return locs
}

// substitutes picks n live providers outside ref's ring, walking the
// provider list from the ref's primary slot (deterministic). Fewer
// than n may be returned when not enough providers are up.
func (m *MetaService) substitutes(ref NodeRef, ring []cluster.NodeID, n int) []cluster.NodeID {
	first := m.primarySlot(ref)
	var out []cluster.NodeID
	for i := 0; i < len(m.providers) && len(out) < n; i++ {
		cand := m.providers[(first+i)%len(m.providers)]
		if m.isAlive(cand) && !containsProvider(ring, cand) {
			out = append(out, cand)
		}
	}
	return out
}

// pickReplica chooses the replica that serves a get: locations in
// failover order, nearest first when a topology is set, skipping dead
// holders. Each dead holder probed costs the reader a timed-out
// request (the probes return value; callers charge the wait so
// batches can overlap their probes). ok is false when every copy is
// down, which counts as a failed get.
func (m *MetaService) pickReplica(reader cluster.NodeID, ref NodeRef) (prov cluster.NodeID, probes int, ok bool) {
	locs := m.locations(ref)
	m.orderByLocality(reader, locs)
	prov = -1
	failover := false
	for i, r := range locs {
		if m.isAlive(r) {
			prov, failover = r, i > 0
			break
		}
		probes++
	}
	if prov < 0 {
		m.FailedGets.Add(1)
		return -1, probes, false
	}
	if failover {
		m.Failovers.Add(1)
	}
	m.tierGets[m.topo.Tier(reader, prov)].Add(1)
	return prov, probes, true
}

// Get fetches one tree node, charging a small RPC to the replica that
// serves it. At replication degree 1 that is always the home provider
// (the legacy fault-free layout, liveness ignored); otherwise the
// nearest live replica serves, dead ones cost a probe each, and a ref
// with every copy down fails with ErrNoReplica.
func (m *MetaService) Get(ctx *cluster.Ctx, ref NodeRef) (TreeNode, error) {
	prov := m.Home(ref)
	if m.replicas > 1 {
		p, probes, ok := m.pickReplica(ctx.Node(), ref)
		if probes > 0 {
			cfg := ctx.Fabric().Config()
			ctx.Sleep(float64(probes) * (cfg.RTT + cfg.ReqOverhead))
		}
		if !ok {
			return TreeNode{}, fmt.Errorf("blob: metadata node %d: %w", ref, ErrNoReplica)
		}
		prov = p
	}
	ctx.RPC(prov, 16, treeNodeWire)
	m.Gets.Add(1)
	sh := m.shard(ref)
	sh.mu.RLock()
	n, ok := sh.nodes[ref]
	sh.mu.RUnlock()
	if !ok {
		return TreeNode{}, notFound("metadata node", ref)
	}
	m.NodesServed.Add(1)
	return n, nil
}

// MissingNodesError reports how many refs of a batched metadata get
// could not be served — refs with no stored node and, with
// replication, refs whose every copy was down. It unwraps to a
// *NotFoundError for the first failing ref (and through it to
// ErrNotFound), so existing errors.Is and errors.As checks keep
// matching.
type MissingNodesError struct {
	// Missing is the number of refs the batch could not serve.
	Missing int
	// First is the first failing ref, in batch order.
	First NodeRef
}

// Error renders the count and the first failing ref.
func (e *MissingNodesError) Error() string {
	return fmt.Sprintf("blob: batched metadata get missing %d node(s), first ref %d: not found", e.Missing, e.First)
}

// Unwrap yields the first failing ref's *NotFoundError.
func (e *MissingNodesError) Unwrap() error {
	return &NotFoundError{Kind: "metadata node", What: e.First}
}

// GetBatch fetches many tree nodes at once, grouping the refs by
// serving provider and charging one RPC per distinct provider — the
// read-side twin of PutBatch, and what turns a client's level-order
// tree descent into depth rounds instead of node-count round trips.
// The result is aligned with refs; a ref with no stored node fails
// the batch with a *MissingNodesError (the full round is still
// charged — the providers did the lookups).
func (m *MetaService) GetBatch(ctx *cluster.Ctx, refs []NodeRef) ([]TreeNode, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	out := make([]TreeNode, len(refs))
	if err := m.GetBatchInto(ctx, refs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetBatchInto is GetBatch resolving into a caller-provided slice
// (len(out) must be len(refs)), so tight descent loops can reuse one
// buffer per level instead of allocating twice.
//
// Partial-fill contract: on error every found ref is still filled in
// (its out entry is valid()); the missing ones stay the zero
// TreeNode, and the returned *MissingNodesError carries how many refs
// failed and the first failing ref. With replication a ref whose
// every copy is down also counts as missing (and as a failed get);
// the rest of the batch is still charged and filled.
func (m *MetaService) GetBatchInto(ctx *cluster.Ctx, refs []NodeRef, out []TreeNode) error {
	var down []bool // refs with no live replica (replicated mode only)
	if m.replicas == 1 {
		// Legacy single-home layout: per-ring-position request counts
		// (refs map to providers by modulo, so the position IS the
		// provider) — one small slice instead of a map per descent
		// level — charged unconditionally, liveness ignored.
		counts := make([]int64, len(m.providers))
		for _, ref := range refs {
			counts[uint64(ref)%uint64(len(m.providers))]++
		}
		// Charge per-provider batches in deterministic (provider ring) order.
		for pi, prov := range m.providers {
			if c := counts[pi]; c > 0 {
				ctx.RPC(prov, c*16, c*treeNodeWire)
				m.Gets.Add(1)
			}
		}
	} else {
		// Replicated layout: pick each ref's serving replica, then
		// charge per-provider batches. The refs of one level are
		// probed in parallel, so the batch waits once for the worst
		// ref's dead-holder probes rather than summing them.
		counts := make(map[cluster.NodeID]int64, len(m.providers))
		maxProbes := 0
		for i, ref := range refs {
			prov, probes, ok := m.pickReplica(ctx.Node(), ref)
			if probes > maxProbes {
				maxProbes = probes
			}
			if !ok {
				if down == nil {
					down = make([]bool, len(refs))
				}
				down[i] = true
				continue
			}
			counts[prov]++
		}
		if maxProbes > 0 {
			cfg := ctx.Fabric().Config()
			ctx.Sleep(float64(maxProbes) * (cfg.RTT + cfg.ReqOverhead))
		}
		for _, prov := range m.providers {
			if c := counts[prov]; c > 0 {
				ctx.RPC(prov, c*16, c*treeNodeWire)
				m.Gets.Add(1)
			}
		}
	}
	var missing *MissingNodesError
	served := int64(0)
	for i, ref := range refs {
		if down != nil && down[i] {
			if missing == nil {
				missing = &MissingNodesError{First: ref}
			}
			missing.Missing++
			continue
		}
		sh := m.shard(ref)
		sh.mu.RLock()
		n, ok := sh.nodes[ref]
		sh.mu.RUnlock()
		if !ok {
			if missing == nil {
				missing = &MissingNodesError{First: ref}
			}
			missing.Missing++
			continue
		}
		out[i] = n
		served++
	}
	m.NodesServed.Add(served)
	if missing == nil {
		return nil
	}
	return missing
}

// PutBatch stores freshly built nodes, batching the RPCs per provider
// (one request per distinct provider). This is what a BlobSeer client
// library does when it writes the new subtree of a version. With
// replication each node fans out to every live ring member; a ring
// member that is down takes no copy — the writer records it as a void
// and pushes the missing copy to a live substitute instead (writing
// around the failure), so nodes are born at full degree whenever
// enough providers are up. A node with every provider down cannot be
// placed and is dropped (its later gets fail, and count as failed).
func (m *MetaService) PutBatch(ctx *cluster.Ctx, nodes []NewNode) {
	if len(nodes) == 0 {
		return
	}
	counts := make(map[cluster.NodeID]int64)
	var store []bool
	if m.replicas == 1 {
		// Legacy layout: one copy on the home provider, liveness
		// ignored (the fault-free control-plane assumption).
		for _, nn := range nodes {
			counts[m.Home(nn.Ref)]++
		}
	} else {
		type degradedPut struct {
			ref         NodeRef
			voids, subs []cluster.NodeID
		}
		var degraded []degradedPut
		store = make([]bool, len(nodes))
		for i, nn := range nodes {
			ring := m.Replicas(nn.Ref)
			var deadRing []cluster.NodeID
			stored := 0
			for _, prov := range ring {
				if !m.isAlive(prov) {
					deadRing = append(deadRing, prov)
					continue
				}
				counts[prov]++
				stored++
			}
			var subs []cluster.NodeID
			if len(deadRing) > 0 {
				subs = m.substitutes(nn.Ref, ring, len(deadRing))
				for _, s := range subs {
					counts[s]++
					stored++
				}
			}
			if stored == 0 {
				continue
			}
			store[i] = true
			if len(deadRing) > 0 {
				degraded = append(degraded, degradedPut{nn.Ref, deadRing, subs})
			}
		}
		if len(degraded) > 0 {
			m.repMu.Lock()
			for _, d := range degraded {
				m.voids[d.ref] = d.voids
				if len(d.subs) > 0 {
					m.repairs[d.ref] = d.subs
				}
			}
			m.repMu.Unlock()
		}
	}
	// Charge per-provider batches in deterministic (provider ring) order.
	for _, prov := range m.providers {
		if c := counts[prov]; c > 0 {
			ctx.RPC(prov, c*treeNodeWire, 16)
			m.Puts.Add(1)
		}
	}
	for i, nn := range nodes {
		if store != nil && !store[i] {
			continue
		}
		sh := m.shard(nn.Ref)
		sh.mu.Lock()
		sh.nodes[nn.Ref] = nn.Node
		sh.mu.Unlock()
	}
}

// RefWatermark returns the highest node reference allocated so far.
// Like ProviderSet.KeyWatermark, the garbage collector snapshots it
// before marking so nodes of in-flight versions are exempt from the
// sweep.
func (m *MetaService) RefWatermark() NodeRef {
	return NodeRef(m.nextRef.Load())
}

// AllocPendingRef returns a fresh globally unique node reference for
// a version being built (refs are client-generated in BlobSeer as
// well, so no RPC is charged): the ref is atomically registered as
// pending so a concurrent sweep will not reclaim the node before its
// version publishes. The writer must ClearPending after publication
// (or abort). See ProviderSet.AllocPendingKey for the
// snapshot-atomicity argument.
func (m *MetaService) AllocPendingRef() NodeRef {
	m.pendMu.Lock()
	ref := NodeRef(m.nextRef.Add(1))
	m.pending[ref] = true
	m.pendMu.Unlock()
	return ref
}

// ClearPending removes the in-flight mark from refs (idempotent).
func (m *MetaService) ClearPending(refs []NodeRef) {
	m.pendMu.Lock()
	for _, r := range refs {
		delete(m.pending, r)
	}
	m.pendMu.Unlock()
}

// PendingSnapshot atomically samples the ref watermark and the set of
// in-flight refs, taken at the start of a collection cycle.
func (m *MetaService) PendingSnapshot() (NodeRef, map[NodeRef]bool) {
	m.pendMu.Lock()
	defer m.pendMu.Unlock()
	wm := NodeRef(m.nextRef.Load())
	pending := make(map[NodeRef]bool, len(m.pending))
	for r := range m.pending {
		pending[r] = true
	}
	return wm, pending
}

// Sweep deletes every stored node up to the watermark that is neither
// in the live set nor in the pending snapshot, and returns how many it
// removed, charging one batched RPC per affected home provider
// (immutable nodes need no further coordination to drop). The caller
// guarantees the live set covers every node reachable from a live
// snapshot root.
func (m *MetaService) Sweep(ctx *cluster.Ctx, upTo NodeRef, live, pending map[NodeRef]bool) int {
	counts := make(map[cluster.NodeID]int64)
	var dropped []NodeRef
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for ref := range sh.nodes {
			if ref <= upTo && !live[ref] && !pending[ref] {
				delete(sh.nodes, ref)
				counts[m.Home(ref)]++
				dropped = append(dropped, ref)
			}
		}
		sh.mu.Unlock()
	}
	// Swept refs no longer need their degraded-placement records.
	if len(dropped) > 0 {
		m.repMu.Lock()
		if len(m.voids) > 0 || len(m.repairs) > 0 {
			for _, ref := range dropped {
				delete(m.voids, ref)
				delete(m.repairs, ref)
			}
		}
		m.repMu.Unlock()
	}
	freed := 0
	for _, prov := range m.providers {
		if c := counts[prov]; c > 0 {
			ctx.RPC(prov, c*16, 16)
			freed += int(c)
		}
	}
	m.Freed.Add(int64(freed))
	return freed
}

// NodeCount returns the number of stored tree nodes (metadata footprint).
func (m *MetaService) NodeCount() int {
	total := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		total += len(sh.nodes)
		sh.mu.RUnlock()
	}
	return total
}

// peek returns a node without charging any cost; used by in-process
// verification and tests.
func (m *MetaService) peek(ref NodeRef) (TreeNode, bool) {
	sh := m.shard(ref)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	n, ok := sh.nodes[ref]
	return n, ok
}
