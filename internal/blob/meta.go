package blob

import (
	"sync"
	"sync/atomic"

	"blobvfs/internal/cluster"
)

// MetaService is the distributed metadata store: immutable segment-tree
// nodes spread over a set of metadata provider nodes by reference hash,
// as in BlobSeer's metadata DHT. Because nodes are immutable, clients
// cache them freely (see Client); the service itself never invalidates.
type MetaService struct {
	providers []cluster.NodeID
	nextRef   atomic.Uint64

	mu      sync.Mutex
	nodes   map[NodeRef]TreeNode
	pending map[NodeRef]bool // refs of in-flight, unpublished versions

	// Puts and Gets count service operations (after batching); Freed
	// counts tree nodes reclaimed by garbage-collection sweeps.
	Puts, Gets, Freed atomic.Int64
}

// NewMetaService creates a metadata store over the given provider nodes.
func NewMetaService(providers []cluster.NodeID) *MetaService {
	if len(providers) == 0 {
		panic("blob: metadata service needs at least one provider")
	}
	return &MetaService{
		providers: providers,
		nodes:     make(map[NodeRef]TreeNode),
		pending:   make(map[NodeRef]bool),
	}
}

// Home returns the metadata provider responsible for a reference.
func (m *MetaService) Home(ref NodeRef) cluster.NodeID {
	return m.providers[uint64(ref)%uint64(len(m.providers))]
}

// Get fetches one tree node, charging a small RPC to its home provider.
func (m *MetaService) Get(ctx *cluster.Ctx, ref NodeRef) (TreeNode, error) {
	ctx.RPC(m.Home(ref), 16, treeNodeWire)
	m.Gets.Add(1)
	m.mu.Lock()
	n, ok := m.nodes[ref]
	m.mu.Unlock()
	if !ok {
		return TreeNode{}, notFound("metadata node", ref)
	}
	return n, nil
}

// PutBatch stores freshly built nodes, batching the RPCs per provider
// (one request per distinct home node). This is what a BlobSeer client
// library does when it writes the new subtree of a version.
func (m *MetaService) PutBatch(ctx *cluster.Ctx, nodes []NewNode) {
	if len(nodes) == 0 {
		return
	}
	counts := make(map[cluster.NodeID]int64)
	for _, nn := range nodes {
		counts[m.Home(nn.Ref)]++
	}
	// Charge per-provider batches in deterministic (provider ring) order.
	for _, prov := range m.providers {
		if c := counts[prov]; c > 0 {
			ctx.RPC(prov, c*treeNodeWire, 16)
			m.Puts.Add(1)
		}
	}
	m.mu.Lock()
	for _, nn := range nodes {
		m.nodes[nn.Ref] = nn.Node
	}
	m.mu.Unlock()
}

// RefWatermark returns the highest node reference allocated so far.
// Like ProviderSet.KeyWatermark, the garbage collector snapshots it
// before marking so nodes of in-flight versions are exempt from the
// sweep.
func (m *MetaService) RefWatermark() NodeRef {
	return NodeRef(m.nextRef.Load())
}

// AllocPendingRef returns a fresh globally unique node reference for
// a version being built (refs are client-generated in BlobSeer as
// well, so no RPC is charged): the ref is atomically registered as
// pending so a concurrent sweep will not reclaim the node before its
// version publishes. The writer must ClearPending after publication
// (or abort). See ProviderSet.AllocPendingKey for the
// snapshot-atomicity argument.
func (m *MetaService) AllocPendingRef() NodeRef {
	m.mu.Lock()
	ref := NodeRef(m.nextRef.Add(1))
	m.pending[ref] = true
	m.mu.Unlock()
	return ref
}

// ClearPending removes the in-flight mark from refs (idempotent).
func (m *MetaService) ClearPending(refs []NodeRef) {
	m.mu.Lock()
	for _, r := range refs {
		delete(m.pending, r)
	}
	m.mu.Unlock()
}

// PendingSnapshot atomically samples the ref watermark and the set of
// in-flight refs, taken at the start of a collection cycle.
func (m *MetaService) PendingSnapshot() (NodeRef, map[NodeRef]bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wm := NodeRef(m.nextRef.Load())
	pending := make(map[NodeRef]bool, len(m.pending))
	for r := range m.pending {
		pending[r] = true
	}
	return wm, pending
}

// Sweep deletes every stored node up to the watermark that is neither
// in the live set nor in the pending snapshot, and returns how many it
// removed, charging one batched RPC per affected home provider
// (immutable nodes need no further coordination to drop). The caller
// guarantees the live set covers every node reachable from a live
// snapshot root.
func (m *MetaService) Sweep(ctx *cluster.Ctx, upTo NodeRef, live, pending map[NodeRef]bool) int {
	counts := make(map[cluster.NodeID]int64)
	m.mu.Lock()
	for ref := range m.nodes {
		if ref <= upTo && !live[ref] && !pending[ref] {
			delete(m.nodes, ref)
			counts[m.Home(ref)]++
		}
	}
	m.mu.Unlock()
	freed := 0
	for _, prov := range m.providers {
		if c := counts[prov]; c > 0 {
			ctx.RPC(prov, c*16, 16)
			freed += int(c)
		}
	}
	m.Freed.Add(int64(freed))
	return freed
}

// NodeCount returns the number of stored tree nodes (metadata footprint).
func (m *MetaService) NodeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.nodes)
}

// peek returns a node without charging any cost; used by in-process
// verification and tests.
func (m *MetaService) peek(ref NodeRef) (TreeNode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[ref]
	return n, ok
}
