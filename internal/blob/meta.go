package blob

import (
	"sync"
	"sync/atomic"

	"blobvfs/internal/cluster"
)

// MetaService is the distributed metadata store: immutable segment-tree
// nodes spread over a set of metadata provider nodes by reference hash,
// as in BlobSeer's metadata DHT. Because nodes are immutable, clients
// cache them freely (see Client); the service itself never invalidates.
type MetaService struct {
	providers []cluster.NodeID
	nextRef   atomic.Uint64

	mu    sync.Mutex
	nodes map[NodeRef]TreeNode

	// Puts and Gets count service operations (after batching).
	Puts, Gets atomic.Int64
}

// NewMetaService creates a metadata store over the given provider nodes.
func NewMetaService(providers []cluster.NodeID) *MetaService {
	if len(providers) == 0 {
		panic("blob: metadata service needs at least one provider")
	}
	return &MetaService{
		providers: providers,
		nodes:     make(map[NodeRef]TreeNode),
	}
}

// AllocRef returns a fresh globally unique node reference. Refs are
// client-generated in BlobSeer as well, so no RPC is charged.
func (m *MetaService) AllocRef() NodeRef {
	return NodeRef(m.nextRef.Add(1))
}

// Home returns the metadata provider responsible for a reference.
func (m *MetaService) Home(ref NodeRef) cluster.NodeID {
	return m.providers[uint64(ref)%uint64(len(m.providers))]
}

// Get fetches one tree node, charging a small RPC to its home provider.
func (m *MetaService) Get(ctx *cluster.Ctx, ref NodeRef) (TreeNode, error) {
	ctx.RPC(m.Home(ref), 16, treeNodeWire)
	m.Gets.Add(1)
	m.mu.Lock()
	n, ok := m.nodes[ref]
	m.mu.Unlock()
	if !ok {
		return TreeNode{}, notFound("metadata node", ref)
	}
	return n, nil
}

// PutBatch stores freshly built nodes, batching the RPCs per provider
// (one request per distinct home node). This is what a BlobSeer client
// library does when it writes the new subtree of a version.
func (m *MetaService) PutBatch(ctx *cluster.Ctx, nodes []NewNode) {
	if len(nodes) == 0 {
		return
	}
	counts := make(map[cluster.NodeID]int64)
	for _, nn := range nodes {
		counts[m.Home(nn.Ref)]++
	}
	// Charge per-provider batches in deterministic (provider ring) order.
	for _, prov := range m.providers {
		if c := counts[prov]; c > 0 {
			ctx.RPC(prov, c*treeNodeWire, 16)
			m.Puts.Add(1)
		}
	}
	m.mu.Lock()
	for _, nn := range nodes {
		m.nodes[nn.Ref] = nn.Node
	}
	m.mu.Unlock()
}

// NodeCount returns the number of stored tree nodes (metadata footprint).
func (m *MetaService) NodeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.nodes)
}

// peek returns a node without charging any cost; used by in-process
// verification and tests.
func (m *MetaService) peek(ref NodeRef) (TreeNode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[ref]
	return n, ok
}
