package blob

import (
	"errors"
	"testing"

	"blobvfs/internal/cluster"
)

// TestRetireUnpublishesFromLatest: a retired version disappears from
// Latest and Root immediately, and Latest falls back to the newest
// surviving version.
func TestRetireUnpublishesFromLatest(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 400, 100)
		v1, _ := c.WriteAt(ctx, id, 0, pattern(400, 1), 0)
		v2, err := c.WriteAt(ctx, id, v1, pattern(100, 2), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.VM.Retire(ctx, id, v2); err != nil {
			t.Fatalf("Retire(v2): %v", err)
		}
		if latest, _ := c.Latest(ctx, id); latest != v1 {
			t.Fatalf("Latest after retiring v2 = %d, want %d", latest, v1)
		}
		if _, err := sys.VM.Root(ctx, id, v2); err == nil {
			t.Fatal("Root of retired version resolved")
		}
		if err := sys.VM.Retire(ctx, id, v2); !errors.Is(err, ErrVersionRetired) {
			t.Fatalf("double Retire = %v, want ErrVersionRetired", err)
		}
		if err := sys.VM.Retire(ctx, id, v1); err != nil {
			t.Fatal(err)
		}
		if latest, _ := c.Latest(ctx, id); latest != 0 {
			t.Fatalf("Latest with all versions retired = %d, want 0", latest)
		}
		// A write on an empty Latest builds over an empty tree again.
		v3, err := c.WriteAt(ctx, id, 0, pattern(400, 3), 0)
		if err != nil {
			t.Fatal(err)
		}
		if latest, _ := c.Latest(ctx, id); latest != v3 {
			t.Fatalf("Latest after fresh write = %d, want %d", latest, v3)
		}
	})
}

// TestRetirePinnedFails: a pinned version refuses to retire and
// RetireUpTo skips it; after unpinning it retires normally.
func TestRetirePinnedFails(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 400, 100)
		v1, _ := c.WriteAt(ctx, id, 0, pattern(400, 1), 0)
		v2, _ := c.WriteAt(ctx, id, v1, pattern(100, 2), 0)
		if err := c.PinVersion(id, v1); err != nil {
			t.Fatal(err)
		}
		var pinned *PinnedError
		if err := sys.VM.Retire(ctx, id, v1); !errors.As(err, &pinned) {
			t.Fatalf("Retire of pinned = %v, want PinnedError", err)
		}
		if n, _ := sys.VM.RetireUpTo(ctx, id, v2); n != 1 {
			t.Fatalf("RetireUpTo retired %d versions, want 1 (v2 only)", n)
		}
		if latest, _ := c.Latest(ctx, id); latest != v1 {
			t.Fatalf("Latest = %d, want pinned %d", latest, v1)
		}
		c.UnpinVersion(id, v1)
		if err := sys.VM.Retire(ctx, id, v1); err != nil {
			t.Fatalf("Retire after unpin: %v", err)
		}
		// Pinning a retired version must fail: it may already be swept.
		if err := c.PinVersion(id, v1); err == nil {
			t.Fatal("Pin of retired version succeeded")
		}
	})
}

// TestGCReclaimsRetiredVersions: after retiring the old version of a
// two-version blob, exactly the chunks it held exclusively (those the
// newer version overwrote) and its exclusive tree nodes are freed, and
// the surviving version reads back intact.
func TestGCReclaimsRetiredVersions(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 800, 100) // 8 chunks
		base := pattern(800, 1)
		v1, _ := c.WriteAt(ctx, id, 0, base, 0)
		patch := pattern(200, 9) // overwrites chunks 2 and 3
		v2, err := c.WriteAt(ctx, id, v1, patch, 200)
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.Providers.ChunkCount(); got != 10 {
			t.Fatalf("chunks before GC = %d, want 10", got)
		}

		gc := NewCollector(sys)
		rep, err := gc.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FreedChunks != 0 || rep.FreedNodes != 0 {
			t.Fatalf("GC with all versions live freed %+v, want nothing", rep)
		}

		if err := sys.VM.Retire(ctx, id, v1); err != nil {
			t.Fatal(err)
		}
		rep, err = gc.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FreedChunks != 2 {
			t.Fatalf("FreedChunks = %d, want 2 (the overwritten originals)", rep.FreedChunks)
		}
		if rep.FreedNodes == 0 {
			t.Fatal("no tree nodes freed for the retired version")
		}
		if got := sys.Providers.ChunkCount(); got != 8 {
			t.Fatalf("chunks after GC = %d, want 8", got)
		}
		want := append([]byte(nil), base...)
		copy(want[200:], patch)
		got := make([]byte, 800)
		if err := c.ReadAt(ctx, id, v2, got, 0); err != nil {
			t.Fatalf("read of surviving version: %v", err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("surviving version corrupted at byte %d", i)
			}
		}
	})
}

// TestGCKeepsClonedShares: retiring the clone source must not free
// anything the clone still shares — only the source's root node, which
// the clone copied rather than referenced, becomes unreachable.
func TestGCKeepsClonedShares(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 800, 100)
		base := pattern(800, 4)
		v1, _ := c.WriteAt(ctx, id, 0, base, 0)
		clone, err := c.Clone(ctx, id, v1)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.VM.Retire(ctx, id, v1); err != nil {
			t.Fatal(err)
		}
		gc := NewCollector(sys)
		rep, err := gc.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FreedChunks != 0 {
			t.Fatalf("FreedChunks = %d, want 0 (all shared with the clone)", rep.FreedChunks)
		}
		if rep.FreedNodes != 1 {
			t.Fatalf("FreedNodes = %d, want 1 (the source root)", rep.FreedNodes)
		}
		got := make([]byte, 800)
		if err := c.ReadAt(ctx, clone, 1, got, 0); err != nil {
			t.Fatalf("clone read after source retirement: %v", err)
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("clone corrupted at byte %d", i)
			}
		}
	})
}

// TestGCDedupAliases: under deduplication, reclaiming one of two
// identical snapshots must keep the shared content alive until the
// last reference goes.
func TestGCDedupAliases(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	sys.Providers.EnableDedup()
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		data := pattern(400, 6)
		idA, _ := c.Create(ctx, 400, 100)
		vA, _ := c.WriteAt(ctx, idA, 0, data, 0)
		idB, _ := c.Create(ctx, 400, 100)
		vB, _ := c.WriteAt(ctx, idB, 0, data, 0)
		if hits := sys.Providers.DedupHits.Load(); hits != 4 {
			t.Fatalf("DedupHits = %d, want 4", hits)
		}

		gc := NewCollector(sys)
		if err := sys.VM.Retire(ctx, idA, vA); err != nil {
			t.Fatal(err)
		}
		rep, err := gc.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FreedChunks != 0 {
			t.Fatalf("FreedChunks = %d, want 0 (content shared through aliases)", rep.FreedChunks)
		}
		if rep.FreedKeys != 4 {
			t.Fatalf("FreedKeys = %d, want 4 (A's references released)", rep.FreedKeys)
		}
		got := make([]byte, 400)
		if err := c.ReadAt(ctx, idB, vB, got, 0); err != nil {
			t.Fatalf("read of surviving duplicate: %v", err)
		}
		for i := range got {
			if got[i] != data[i] {
				t.Fatalf("surviving duplicate corrupted at byte %d", i)
			}
		}

		if err := sys.VM.Retire(ctx, idB, vB); err != nil {
			t.Fatal(err)
		}
		rep, err = gc.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FreedChunks != 4 {
			t.Fatalf("FreedChunks = %d, want 4 (last reference gone)", rep.FreedChunks)
		}
		if got := sys.Providers.ChunkCount(); got != 0 {
			t.Fatalf("chunks after final GC = %d, want 0", got)
		}
	})
}

// TestReleaseIdempotent: releasing the same key twice is a no-op the
// second time, and RefCount tracks the content references.
func TestReleaseIdempotent(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		key := sys.Providers.AllocKey()
		if err := sys.Providers.Put(ctx, key, RealPayload(pattern(100, 1))); err != nil {
			t.Fatal(err)
		}
		if rc := sys.Providers.RefCount(key); rc != 1 {
			t.Fatalf("RefCount = %d, want 1", rc)
		}
		released, bytes := sys.Providers.Release(ctx, []ChunkKey{key})
		if len(released) != 1 || bytes != 100 {
			t.Fatalf("Release = (%v, %d), want 1 key, 100 bytes", released, bytes)
		}
		released, bytes = sys.Providers.Release(ctx, []ChunkKey{key})
		if len(released) != 0 || bytes != 0 {
			t.Fatalf("second Release = (%v, %d), want no-op", released, bytes)
		}
	})
}

// TestCollectorSkipsOverlappingCycle: the second of two overlapping
// Collect calls reports Skipped instead of blocking or double-freeing.
func TestCollectorSkipsOverlappingCycle(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	gc := NewCollector(sys)
	gc.running.Store(true) // simulate a cycle in progress
	fab.Run(func(ctx *cluster.Ctx) {
		rep, err := gc.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Skipped {
			t.Fatal("overlapping Collect did not skip")
		}
	})
	gc.running.Store(false)
}
