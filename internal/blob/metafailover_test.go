package blob

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"blobvfs/internal/cluster"
	"blobvfs/internal/sim"
)

// Chaos/property and deterministic tests for the replicated metadata
// tier and the version-manager journal: the control-plane twins of
// failover_prop_test.go. The invariants: no stored tree node loses its
// last live copy while enough providers survive, gets fail over to a
// live replica rather than fail, degraded puts write around dead ring
// members, and the version manager keeps serving from a journal
// standby when its host dies.

func metaTestRing(t *testing.T, m *MetaService, ref NodeRef) []cluster.NodeID {
	t.Helper()
	ring := m.Replicas(ref)
	if len(ring) != m.ReplicationDegree() {
		t.Fatalf("ref %d: ring %v, want %d members", ref, ring, m.ReplicationDegree())
	}
	return ring
}

// TestMetaFailoverNoLostNodesProperty: random kill/revive sequences
// against a replicated metadata service. After every transition (each
// one runs a synchronous re-replication sweep), every stored ref must
// keep at least one live location and stay readable; puts issued while
// providers are down must still store at full achievable degree.
func TestMetaFailoverNoLostNodesProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := sim.NewRNG(int64(4000 + trial))
			nProv := 4 + rng.Intn(5)    // 4..8 providers
			replicas := 2 + rng.Intn(2) // 2..3 copies
			if replicas > nProv {
				replicas = nProv
			}
			nRefs := 32 + rng.Intn(64)
			fab := cluster.NewSim(cluster.DefaultConfig(nProv + 1))
			nodes := make([]cluster.NodeID, nProv)
			for i := range nodes {
				nodes[i] = cluster.NodeID(i + 1)
			}
			m := NewMetaService(nodes)
			m.SetReplication(replicas)
			lv := cluster.NewLiveness(nProv + 1)
			lv.OnChange(m.NodeChanged)

			fab.Run(func(ctx *cluster.Ctx) {
				var refs []NodeRef
				put := func(ref NodeRef) {
					m.PutBatch(ctx, []NewNode{{Ref: ref, Node: TreeNode{Lo: int64(ref), Hi: int64(ref) + 1, Chunk: ChunkKey(ref)}}})
					refs = append(refs, ref)
				}
				for i := 0; i < nRefs; i++ {
					put(NodeRef(i))
				}
				// Random walk over kill/revive, never below one live
				// provider. Every step also stores a fresh ref — often
				// while providers are down, exercising the
				// write-around path of PutBatch.
				for step := 0; step < 24; step++ {
					victim := nodes[rng.Intn(nProv)]
					if lv.Alive(victim) && lv.AliveCount() > 2 {
						lv.Kill(ctx, victim)
					} else {
						lv.Revive(ctx, victim)
					}
					put(NodeRef(10000 + step))
					for _, ref := range refs {
						locs := m.LiveLocations(ref)
						if len(locs) == 0 {
							t.Fatalf("step %d: ref %d lost every live location", step, ref)
						}
						if n, err := m.Get(ctx, ref); err != nil || n.Chunk != ChunkKey(ref) {
							t.Fatalf("step %d: ref %d unreadable with %d live copies: (%+v, %v)",
								step, ref, len(locs), n, err)
						}
					}
				}
			})
		})
	}
}

// TestMetaReplicaFailover: deterministic failover and counter
// behavior — a get served by a survivor counts one failover, and a ref
// whose every copy is down fails with ErrNoReplica and counts a failed
// get. The liveness flags are flipped directly (no registry, hence no
// repair sweep), so the ring alone decides.
func TestMetaReplicaFailover(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(5))
	nodes := []cluster.NodeID{1, 2, 3, 4}
	m := NewMetaService(nodes)
	m.SetReplication(2)

	fab.Run(func(ctx *cluster.Ctx) {
		const ref = NodeRef(7)
		m.PutBatch(ctx, []NewNode{{Ref: ref, Node: TreeNode{Lo: 7, Hi: 8, Chunk: 77}}})
		ring := metaTestRing(t, m, ref)

		if _, err := m.Get(ctx, ref); err != nil {
			t.Fatalf("healthy get: %v", err)
		}
		if f := m.Failovers.Load(); f != 0 {
			t.Fatalf("healthy get counted %d failovers", f)
		}

		m.Kill(ring[0])
		if n, err := m.Get(ctx, ref); err != nil || n.Chunk != 77 {
			t.Fatalf("get with dead primary: (%+v, %v)", n, err)
		}
		if f := m.Failovers.Load(); f != 1 {
			t.Fatalf("Failovers = %d after one failed-over get, want 1", f)
		}

		m.Kill(ring[1])
		if _, err := m.Get(ctx, ref); !errors.Is(err, ErrNoReplica) {
			t.Fatalf("get with every copy down: %v, want ErrNoReplica", err)
		}
		if fg := m.FailedGets.Load(); fg != 1 {
			t.Fatalf("FailedGets = %d, want 1", fg)
		}

		m.Revive(ring[1])
		if _, err := m.Get(ctx, ref); err != nil {
			t.Fatalf("get after revive: %v", err)
		}

		var served int64
		for _, n := range m.TierGets() {
			served += n
		}
		if served != 3 {
			t.Fatalf("TierGets sums to %d, want the 3 served gets", served)
		}
	})
}

// TestMetaReReplicateRestoresDegree: a kill through the liveness
// registry triggers a sweep that restores every affected ref to full
// degree on a substitute, and the repaired copy serves reads even
// after the surviving ring member also dies.
func TestMetaReReplicateRestoresDegree(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(5))
	nodes := []cluster.NodeID{1, 2, 3, 4}
	m := NewMetaService(nodes)
	m.SetReplication(2)
	lv := cluster.NewLiveness(5)
	lv.OnChange(m.NodeChanged)

	fab.Run(func(ctx *cluster.Ctx) {
		var batch []NewNode
		for i := 0; i < 16; i++ {
			batch = append(batch, NewNode{Ref: NodeRef(i), Node: TreeNode{Lo: int64(i), Hi: int64(i) + 1, Chunk: ChunkKey(i)}})
		}
		m.PutBatch(ctx, batch)

		lv.Kill(ctx, nodes[0])
		if r := m.Rereplicated.Load(); r == 0 {
			t.Fatal("kill through the registry re-replicated nothing")
		}
		for i := 0; i < 16; i++ {
			if locs := m.LiveLocations(NodeRef(i)); len(locs) != 2 {
				t.Fatalf("ref %d: %d live copies after the sweep, want 2", i, len(locs))
			}
		}

		// The second ring member dies too: only repaired copies remain,
		// and they serve.
		lv.Kill(ctx, nodes[1])
		for i := 0; i < 16; i++ {
			if n, err := m.Get(ctx, NodeRef(i)); err != nil || n.Chunk != ChunkKey(i) {
				t.Fatalf("ref %d after double kill: (%+v, %v)", i, n, err)
			}
		}
		if fg := m.FailedGets.Load(); fg != 0 {
			t.Fatalf("FailedGets = %d, want 0 (repairs must serve)", fg)
		}
	})
}

// TestMetaPutBatchWriteAround: a put whose ring contains a dead member
// writes around it — the copy lands on a live substitute, the dead
// member is recorded as a void (it holds nothing, so it never serves
// that ref, even after reviving).
func TestMetaPutBatchWriteAround(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(5))
	nodes := []cluster.NodeID{1, 2, 3, 4}
	m := NewMetaService(nodes)
	m.SetReplication(2)

	fab.Run(func(ctx *cluster.Ctx) {
		const probe = NodeRef(3)
		ring := metaTestRing(t, m, probe)
		m.Kill(ring[0])

		m.PutBatch(ctx, []NewNode{{Ref: probe, Node: TreeNode{Lo: 3, Hi: 4, Chunk: 33}}})
		locs := m.LiveLocations(probe)
		if len(locs) != 2 {
			t.Fatalf("degraded put stored %d live copies, want 2 (write-around)", len(locs))
		}
		for _, l := range locs {
			if l == ring[0] {
				t.Fatalf("dead ring member %d listed as a location", ring[0])
			}
		}

		// Reviving the void member must not resurrect a copy it never
		// received.
		m.Revive(ring[0])
		for _, l := range m.LiveLocations(probe) {
			if l == ring[0] {
				t.Fatalf("void member %d serves a copy it never stored", ring[0])
			}
		}
		if n, err := m.Get(ctx, probe); err != nil || n.Chunk != 33 {
			t.Fatalf("get after revive: (%+v, %v)", n, err)
		}
	})
}

// TestMetaGetBatchIntoMissingCount: the batched get's partial-fill
// contract — the error carries how many refs failed and the first
// failing ref, found entries are still filled, and the error keeps
// matching both errors.Is(ErrNotFound) and errors.As(*NotFoundError).
func TestMetaGetBatchIntoMissingCount(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(5))
	nodes := []cluster.NodeID{1, 2, 3, 4}

	check := func(t *testing.T, m *MetaService, ctx *cluster.Ctx) {
		m.PutBatch(ctx, []NewNode{
			{Ref: 1, Node: TreeNode{Lo: 1, Hi: 2, Chunk: 11}},
			{Ref: 2, Node: TreeNode{Lo: 2, Hi: 3, Chunk: 22}},
		})
		refs := []NodeRef{1, 404, 2, 505}
		out := make([]TreeNode, len(refs))
		err := m.GetBatchInto(ctx, refs, out)
		var missing *MissingNodesError
		if !errors.As(err, &missing) {
			t.Fatalf("err = %v, want *MissingNodesError", err)
		}
		if missing.Missing != 2 || missing.First != 404 {
			t.Fatalf("missing = %d first = %d, want 2 and 404", missing.Missing, missing.First)
		}
		if msg := missing.Error(); !strings.Contains(msg, "2 node(s)") || !strings.Contains(msg, "404") {
			t.Fatalf("error text %q does not name the count and the first ref", msg)
		}
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v does not match ErrNotFound", err)
		}
		var nf *NotFoundError
		if !errors.As(err, &nf) {
			t.Fatalf("err = %v does not match *NotFoundError", err)
		}
		if out[0].Chunk != 11 || out[2].Chunk != 22 {
			t.Fatalf("found refs not filled on error: %+v", out)
		}
		if out[1] != (TreeNode{}) || out[3] != (TreeNode{}) {
			t.Fatalf("missing refs not left zero: %+v", out)
		}
	}

	t.Run("legacy", func(t *testing.T) {
		fab.Run(func(ctx *cluster.Ctx) {
			check(t, NewMetaService(nodes), ctx)
		})
	})
	t.Run("replicated", func(t *testing.T) {
		fab.Run(func(ctx *cluster.Ctx) {
			m := NewMetaService(nodes)
			m.SetReplication(2)
			check(t, m, ctx)

			// A stored ref with every copy down also counts as missing —
			// and as a failed get — while the rest of the batch fills.
			for _, prov := range m.Replicas(1) {
				m.Kill(prov)
			}
			out := make([]TreeNode, 2)
			err := m.GetBatchInto(ctx, []NodeRef{1, 2}, out)
			var missing *MissingNodesError
			if !errors.As(err, &missing) || missing.Missing != 1 || missing.First != 1 {
				t.Fatalf("all-copies-down batch: err = %v, want 1 missing, first ref 1", err)
			}
			if m.FailedGets.Load() == 0 {
				t.Fatal("all-copies-down ref did not count as a failed get")
			}
			if out[1].Chunk != 22 {
				t.Fatalf("live ref not filled: %+v", out)
			}
		})
	})
}

// TestVersionManagerJournalFailover: with standbys configured, killing
// the manager's host moves reads and mutations to the first live
// journal member; reviving the host moves them back. State written
// while the primary was down must be visible throughout — the journal
// is the mechanism that makes VM state survive host death.
func TestVersionManagerJournalFailover(t *testing.T) {
	fab := cluster.NewSim(cluster.DefaultConfig(4))
	vm := NewVersionManager(1)
	vm.SetStandbys([]cluster.NodeID{2, 3})
	if vm.Node() != 1 {
		t.Fatalf("Node() = %d, want 1", vm.Node())
	}
	if sb := vm.Standbys(); len(sb) != 2 || sb[0] != 2 || sb[1] != 3 {
		t.Fatalf("Standbys() = %v, want [2 3]", sb)
	}
	lv := cluster.NewLiveness(4)
	lv.OnChange(vm.NodeChanged)

	fab.Run(func(ctx *cluster.Ctx) {
		id, err := vm.CreateBlob(ctx, 1<<20, 1<<16)
		if err != nil {
			t.Fatalf("CreateBlob: %v", err)
		}
		v1, err := vm.Ticket(ctx, id)
		if err != nil {
			t.Fatalf("Ticket: %v", err)
		}
		if err := vm.Publish(ctx, id, v1, 42); err != nil {
			t.Fatalf("Publish: %v", err)
		}

		lv.Kill(ctx, 1)
		if got, err := vm.Latest(ctx, id); err != nil || got != v1 {
			t.Fatalf("Latest with dead host: (%v, %v), want %v", got, err, v1)
		}
		if vm.Failovers.Load() == 0 {
			t.Fatal("read with dead host counted no failover")
		}
		// Mutations keep working against the standby, and their state
		// survives.
		v2, err := vm.Ticket(ctx, id)
		if err != nil {
			t.Fatalf("Ticket with dead host: %v", err)
		}
		if err := vm.Publish(ctx, id, v2, 43); err != nil {
			t.Fatalf("Publish with dead host: %v", err)
		}

		lv.Revive(ctx, 1)
		if got, err := vm.Latest(ctx, id); err != nil || got != v2 {
			t.Fatalf("Latest after revive: (%v, %v), want %v", got, err, v2)
		}
		if root, err := vm.Root(ctx, id, v2); err != nil || root != 43 {
			t.Fatalf("Root of the version published during the outage: (%v, %v)", root, err)
		}
	})
}
