package blob

import (
	"errors"

	"blobvfs/internal/cluster"
)

// ChunkSharer is the hook the peer-to-peer chunk-sharing layer
// (internal/p2p) plugs into the client's data path. A client with a
// sharer consults it before every provider read: if a cohort peer
// already mirrors the chunk, the transfer is served from that peer's
// local disk instead of the chunk's home provider, so provider load
// stops scaling with the number of concurrent readers of a hot image.
//
// The interface lives here (and not in internal/p2p) so the storage
// client stays free of a dependency on the sharing layer; p2p.Cohort
// is the production implementation.
type ChunkSharer interface {
	// Locate returns a peer node currently holding the chunk that is
	// willing to serve it, or ok=false to fall back to the providers.
	// The caller must invoke release once the transfer is finished so
	// the peer's upload slot is freed. The requesting node (ctx.Node())
	// is never returned as its own peer.
	Locate(ctx *cluster.Ctx, key ChunkKey) (peer cluster.NodeID, release func(), ok bool)
	// Announce registers ctx.Node() as a holder of the given chunks.
	// Implementations must deduplicate (node, key) pairs so that a
	// chunk announced twice — e.g. once by a prefetch and once by a
	// concurrent demand fetch — is only counted and charged once.
	Announce(ctx *cluster.Ctx, keys []ChunkKey)
	// Retract withdraws ctx.Node() as a holder of the chunks (the
	// local copies diverged from the published content, e.g. mirrored
	// chunks were dirtied by a guest write). Like Announce, one call
	// covers a batch; unknown pairs are ignored.
	Retract(ctx *cluster.Ctx, keys []ChunkKey)
}

// SetSharer attaches a peer-to-peer chunk sharer to the client. Reads
// then prefer cohort peers over providers, and WriteChunks announces
// freshly written chunks (the writer holds their full content
// locally). A nil sharer restores provider-only reads.
func (c *Client) SetSharer(s ChunkSharer) { c.sharer = s }

// getChunk fetches one chunk payload, preferring a cohort peer over
// the chunk's home providers. The payload itself always comes from the
// authoritative store (peers mirror published content verbatim); what
// the peer path changes is where the disk read and the transfer are
// charged — and therefore where the load lands.
//
// The fetch does not propagate the first failure: when the providers
// report every replica dead (ErrNoReplica), the cohort is consulted
// once more — a sibling that mirrored the chunk before the failure is
// a fully valid alternate source, and the first Locate may have missed
// only because every holder's upload slot was taken.
func (c *Client) getChunk(ctx *cluster.Ctx, key ChunkKey) (Payload, error) {
	if p, ok := c.fromPeer(ctx, key); ok {
		return p, nil
	}
	p, err := c.sys.Providers.Get(ctx, key)
	if err != nil && errors.Is(err, ErrNoReplica) {
		if p, ok := c.fromPeer(ctx, key); ok {
			return p, nil
		}
	}
	return p, err
}

// fromPeer tries to serve key from a cohort peer: locate a live
// holder, then read from its local mirror. ok=false sends the caller
// to the providers (no sharer, no willing holder, or the chunk was
// reclaimed under a stale location record).
func (c *Client) fromPeer(ctx *cluster.Ctx, key ChunkKey) (Payload, bool) {
	if c.sharer == nil {
		return Payload{}, false
	}
	peer, release, ok := c.sharer.Locate(ctx, key)
	if !ok {
		return Payload{}, false
	}
	if p, found := c.sys.Providers.Peek(key); found {
		ctx.DiskRead(peer, int64(p.Size))
		ctx.RPC(peer, 32, int64(p.Size))
		release()
		return p, true
	}
	// The tracker knew a holder but the store has no such chunk: a
	// garbage-collection sweep (gc.go) freed it after the holder was
	// located but before this read — the tracker-side retraction
	// (ReclaimListener) is asynchronous with respect to in-flight
	// lookups. Release the slot and fall back to the providers' error
	// path.
	release()
	return Payload{}, false
}
