package blob

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"blobvfs/internal/cluster"
)

// This file holds the garbage collector's property-based invariant
// tests, in the spirit of internal/sim/invariants_test.go: instead of
// hand-picked scenarios, randomized op sequences drive the real stack
// on the live fabric against a flat reference model, and after every
// collection two invariants are checked:
//
//  1. Safety — no chunk reachable from a live version is ever
//     reclaimed: every live snapshot still resolves, its tree yields
//     exactly the model's chunk map, and every mapped chunk is still
//     stored.
//  2. Liveness — every unreachable chunk is eventually reclaimed: a
//     quiescent Collect leaves exactly the union of the live
//     versions' chunk references retained, and exactly the marked
//     tree nodes stored.

// propVersion is the flat reference model of one published snapshot:
// chunk index → key (0 = sparse).
type propVersion map[int64]ChunkKey

// propBlob models one blob lineage.
type propBlob struct {
	id       ID
	chunks   int64
	versions map[Version]propVersion
	retired  map[Version]bool
}

func (pb *propBlob) latest() Version {
	for v := Version(len(pb.versions)); v >= 1; v-- {
		if !pb.retired[v] {
			return v
		}
	}
	return 0
}

// liveRefs collects every chunk key reachable from the blob's live
// versions into out.
func (pb *propBlob) liveRefs(out map[ChunkKey]bool) {
	for v, m := range pb.versions {
		if pb.retired[v] {
			continue
		}
		for _, key := range m {
			if key != 0 {
				out[key] = true
			}
		}
	}
}

// checkLiveVersions verifies invariant 1 for every live version of
// every model blob.
func checkLiveVersions(t *testing.T, ctx *cluster.Ctx, c *Client, blobs []*propBlob) {
	t.Helper()
	for _, pb := range blobs {
		for v, want := range pb.versions {
			if pb.retired[v] {
				continue
			}
			root, err := c.sys.VM.Root(ctx, pb.id, v)
			if err != nil {
				t.Fatalf("live version %d@%d unresolvable: %v", pb.id, v, err)
			}
			inf, err := c.Info(ctx, pb.id)
			if err != nil {
				t.Fatal(err)
			}
			leaves, err := CollectLeaves(GetterFunc(func(ref NodeRef) (TreeNode, error) {
				return c.sys.Meta.Get(ctx, ref)
			}), root, inf.Span, 0, pb.chunks)
			if err != nil {
				t.Fatalf("live version %d@%d tree walk: %v (GC freed shared metadata?)", pb.id, v, err)
			}
			for _, lf := range leaves {
				if lf.Chunk != want[lf.Index] {
					t.Fatalf("version %d@%d chunk %d: key %d, model %d",
						pb.id, v, lf.Index, lf.Chunk, want[lf.Index])
				}
				if lf.Chunk == 0 {
					continue
				}
				if _, ok := c.sys.Providers.Peek(lf.Chunk); !ok {
					t.Fatalf("version %d@%d chunk %d (key %d) reclaimed while reachable",
						pb.id, v, lf.Index, lf.Chunk)
				}
			}
		}
	}
}

// TestGCRandomLifecycleInvariants drives randomized sequences of
// write/clone/retire/collect and checks both invariants after every
// collection.
func TestGCRandomLifecycleInvariants(t *testing.T) {
	const (
		trials   = 30
		steps    = 60
		chunks   = 8
		csize    = 64
		maxBlobs = 5
	)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			fab, sys := liveSystem(4, 1)
			if trial%2 == 1 {
				sys.Providers.EnableDedup()
			}
			gc := NewCollector(sys)
			fab.Run(func(ctx *cluster.Ctx) {
				c := NewClient(sys)
				var blobs []*propBlob

				newBlob := func() *propBlob {
					id, err := c.Create(ctx, chunks*csize, csize)
					if err != nil {
						t.Fatal(err)
					}
					pb := &propBlob{
						id:       id,
						chunks:   chunks,
						versions: make(map[Version]propVersion),
						retired:  make(map[Version]bool),
					}
					blobs = append(blobs, pb)
					return pb
				}
				write := func(pb *propBlob) {
					base := pb.latest()
					n := 1 + rng.Intn(chunks)
					perm := rng.Perm(chunks)[:n]
					writes := make([]ChunkWrite, n)
					for i, ci := range perm {
						// Small payload pool so dedup trials alias often.
						writes[i] = ChunkWrite{
							Index:   int64(ci),
							Payload: RealPayload(pattern(csize, byte(rng.Intn(4)))),
						}
					}
					v, keyOf, err := c.WriteChunksKeyed(ctx, pb.id, base, writes)
					if err != nil {
						t.Fatal(err)
					}
					m := make(propVersion, chunks)
					for k, key := range pb.versions[base] {
						m[k] = key
					}
					for idx, key := range keyOf {
						m[idx] = key
					}
					pb.versions[v] = m
				}
				clone := func(pb *propBlob, v Version) {
					id, err := c.Clone(ctx, pb.id, v)
					if err != nil {
						t.Fatal(err)
					}
					cp := &propBlob{
						id:       id,
						chunks:   chunks,
						versions: make(map[Version]propVersion),
						retired:  make(map[Version]bool),
					}
					m := make(propVersion, chunks)
					for k, key := range pb.versions[v] {
						m[k] = key
					}
					cp.versions[1] = m
					blobs = append(blobs, cp)
				}
				retire := func(pb *propBlob, v Version) {
					if err := sys.VM.Retire(ctx, pb.id, v); err != nil {
						t.Fatalf("Retire(%d@%d): %v", pb.id, v, err)
					}
					pb.retired[v] = true
				}
				collect := func() {
					rep, err := gc.Collect(ctx)
					if err != nil {
						t.Fatalf("Collect: %v", err)
					}
					if rep.Skipped {
						t.Fatal("sequential Collect skipped")
					}
					// Invariant 1: nothing live was touched.
					checkLiveVersions(t, ctx, c, blobs)
					// Invariant 2: everything unreachable is gone. The
					// run is quiescent, so the retained key set must
					// equal the union of live references, and the node
					// count must equal the marked set.
					want := make(map[ChunkKey]bool)
					for _, pb := range blobs {
						pb.liveRefs(want)
					}
					got := sys.Providers.RetainedKeys(sys.Providers.KeyWatermark())
					if len(got) != len(want) {
						t.Fatalf("retained %d keys, model has %d live refs", len(got), len(want))
					}
					for _, key := range got {
						if !want[key] {
							t.Fatalf("key %d retained but unreachable", key)
						}
					}
					if n := sys.Meta.NodeCount(); n != rep.MarkedNodes {
						t.Fatalf("%d nodes stored after GC, %d marked", n, rep.MarkedNodes)
					}
				}

				newBlob()
				for step := 0; step < steps; step++ {
					pb := blobs[rng.Intn(len(blobs))]
					switch op := rng.Intn(10); {
					case op < 4: // write a new version
						write(pb)
					case op < 5 && len(blobs) < maxBlobs: // clone a live version
						if v := pb.latest(); v > 0 {
							clone(pb, v)
						}
					case op < 8: // retire a random live version
						var live []Version
						for v := range pb.versions {
							if !pb.retired[v] {
								live = append(live, v)
							}
						}
						if len(live) > 0 {
							retire(pb, live[rng.Intn(len(live))])
						}
					default:
						collect()
					}
				}
				collect() // final quiescent cycle checks both invariants
			})
		})
	}
}

// TestGCConcurrentChurnInvariants runs writer activities (each
// committing on its own lineage and retiring everything but its two
// newest versions) concurrently with a continuously running collector
// on the live fabric, then verifies no surviving snapshot lost a byte.
// Under -race this also exercises the lifecycle locks.
func TestGCConcurrentChurnInvariants(t *testing.T) {
	const (
		workers = 4
		rounds  = 12
		chunks  = 8
		csize   = 128
	)
	fab, sys := liveSystem(workers, 1)
	gc := NewCollector(sys)
	var wg sync.WaitGroup
	type result struct {
		id      ID
		version Version
		want    []byte
	}
	results := make([]result, workers)

	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		baseData := pattern(chunks*csize, 7)
		baseID, err := c.Create(ctx, chunks*csize, csize)
		if err != nil {
			t.Fatal(err)
		}
		baseV, err := c.WriteAt(ctx, baseID, 0, baseData, 0)
		if err != nil {
			t.Fatal(err)
		}

		done := make(chan struct{})
		var tasks []cluster.Task
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			tasks = append(tasks, ctx.Go("churn", cluster.NodeID(w), func(cc *cluster.Ctx) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(77 + w)))
				wc := NewClient(sys)
				id, err := wc.Clone(cc, baseID, baseV)
				if err != nil {
					t.Error(err)
					return
				}
				shadow := append([]byte(nil), baseData...)
				v := Version(1)
				for r := 0; r < rounds; r++ {
					n := 1 + rng.Intn(3)
					writes := make([]ChunkWrite, 0, n)
					seen := map[int64]bool{}
					for i := 0; i < n; i++ {
						ci := int64(rng.Intn(chunks))
						if seen[ci] {
							continue
						}
						seen[ci] = true
						data := pattern(csize, byte(w*16+r))
						copy(shadow[ci*csize:], data)
						writes = append(writes, ChunkWrite{Index: ci, Payload: RealPayload(data)})
					}
					nv, err := wc.WriteChunks(cc, id, v, writes)
					if err != nil {
						t.Errorf("worker %d round %d: %v", w, r, err)
						return
					}
					v = nv
					// Keep the two newest versions, retire the rest.
					if v > 2 {
						if _, err := sys.VM.RetireUpTo(cc, id, v-2); err != nil {
							t.Errorf("worker %d retire: %v", w, err)
							return
						}
					}
					// Read a random range of the newest version back and
					// compare against the shadow while GC churns.
					lo := rng.Intn(chunks * csize)
					ln := 1 + rng.Intn(chunks*csize-lo)
					buf := make([]byte, ln)
					if err := wc.ReadAt(cc, id, v, buf, int64(lo)); err != nil {
						t.Errorf("worker %d read: %v", w, err)
						return
					}
					for i := range buf {
						if buf[i] != shadow[lo+i] {
							t.Errorf("worker %d: live read diverged at byte %d", w, lo+i)
							return
						}
					}
				}
				results[w] = result{id: id, version: v, want: append([]byte(nil), shadow...)}
			}))
		}
		collector := ctx.Go("gc", 0, func(cc *cluster.Ctx) {
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := gc.Collect(cc); err != nil {
					t.Errorf("concurrent Collect: %v", err)
					return
				}
			}
		})
		wg.Wait()
		close(done)
		ctx.Wait(collector)
		for _, task := range tasks {
			ctx.Wait(task)
		}

		// Quiesced: a final cycle must leave every survivor intact.
		if _, err := gc.Collect(ctx); err != nil {
			t.Fatal(err)
		}
		for w, res := range results {
			if res.id == 0 {
				continue // worker failed above; already reported
			}
			got := make([]byte, chunks*csize)
			if err := c.ReadAt(ctx, res.id, res.version, got, 0); err != nil {
				t.Fatalf("worker %d final read: %v", w, err)
			}
			for i := range got {
				if got[i] != res.want[i] {
					t.Fatalf("worker %d: surviving snapshot corrupted at byte %d", w, i)
				}
			}
		}
	})
}
