package blob

import (
	"sort"

	"blobvfs/internal/cluster"
)

// This file is the metadata tier's half of the failure-resilience
// subsystem — the twin of repair.go for segment-tree nodes. The
// MetaService subscribes to the cluster liveness registry; every
// transition flips the provider's flag and, at replication degree > 1,
// triggers a deterministic re-replication sweep that restores each
// stored ref to full degree (sorted refs, one puller activity per
// destination provider), so no tree node is lost while at least one
// copy lives. At degree 1 the sweep is skipped entirely: the legacy
// layout keeps its fault-free assumption and its byte-identical costs.

// Kill marks a metadata provider as failed: it stops serving gets and
// accepting puts (replicated mode; at degree 1 liveness is ignored).
func (m *MetaService) Kill(node cluster.NodeID) {
	if a, ok := m.alive[node]; ok {
		a.Store(false)
	}
}

// Revive brings a failed metadata provider back (it serves its old
// tree nodes again; copies missed while down stay voids until a
// repair sweep backfills them).
func (m *MetaService) Revive(node cluster.NodeID) {
	if a, ok := m.alive[node]; ok {
		a.Store(true)
	}
}

func (m *MetaService) isAlive(node cluster.NodeID) bool {
	a, ok := m.alive[node]
	return ok && a.Load()
}

// NodeChanged is the cluster.Liveness listener: it records the
// transition and, in replicated mode, runs a re-replication sweep —
// after kills to restore the degree from the survivors, and after
// revives to use the returning provider as a fresh substitute target.
// Transitions for nodes outside the metadata provider set are ignored.
func (m *MetaService) NodeChanged(ctx *cluster.Ctx, node cluster.NodeID, alive bool) {
	if _, ok := m.alive[node]; !ok {
		return
	}
	if alive {
		m.Revive(node)
	} else {
		m.Kill(node)
	}
	if m.replicas == 1 {
		return
	}
	m.ReReplicate(ctx)
}

// metaRepairJob is one tree-node copy a sweep pushes to a destination.
type metaRepairJob struct {
	ref NodeRef
	src cluster.NodeID
}

// ReReplicate scans every stored ref and restores its replication
// degree where copies were lost: walking the refs in sorted order, a
// ref with at least one live copy but fewer than the configured
// degree gains copies on live providers walking the ring from its
// primary slot — void ring members are backfilled first (they stop
// being voids), then substitutes outside the ring are appended — each
// copy pulled from the ref's first live location. Registration is one
// critical section; the transfers then run as one puller activity per
// destination provider, in provider-list order, so the sweep is
// deterministic. Returns how many copies it created (also added to
// Rereplicated).
func (m *MetaService) ReReplicate(ctx *cluster.Ctx) int {
	refs := make([]NodeRef, 0, m.NodeCount())
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for ref := range sh.nodes {
			refs = append(refs, ref)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })

	perDst := make(map[cluster.NodeID][]metaRepairJob)
	created := 0
	m.repMu.Lock()
	for _, ref := range refs {
		ring := m.Replicas(ref)
		locs := m.locationsLocked(ref)
		live := locs[:0:0]
		for _, l := range locs {
			if m.isAlive(l) {
				live = append(live, l)
			}
		}
		if len(live) == 0 || len(live) >= m.replicas {
			continue
		}
		src := live[0]
		n := len(m.providers)
		first := m.primarySlot(ref)
		for i := 0; i < n && len(live) < m.replicas; i++ {
			cand := m.providers[(first+i)%n]
			if !m.isAlive(cand) || containsProvider(locs, cand) {
				continue
			}
			if containsProvider(ring, cand) {
				// A void ring member coming back into service: the
				// new copy makes it a real ring location again.
				m.voids[ref] = removeProvider(m.voids[ref], cand)
				if len(m.voids[ref]) == 0 {
					delete(m.voids, ref)
				}
			} else {
				m.repairs[ref] = append(m.repairs[ref], cand)
			}
			locs = append(locs, cand)
			live = append(live, cand)
			perDst[cand] = append(perDst[cand], metaRepairJob{ref: ref, src: src})
			created++
		}
	}
	m.repMu.Unlock()
	if created == 0 {
		return 0
	}
	m.Rereplicated.Add(int64(created))

	// Charge the copies: tree nodes live in provider memory, so each
	// pull is one small RPC from the source (no disk legs, unlike
	// chunk repair).
	var tasks []cluster.Task
	for _, dst := range m.providers {
		jobs := perDst[dst]
		if len(jobs) == 0 {
			continue
		}
		tasks = append(tasks, ctx.Go("meta-rereplicate", dst, func(cc *cluster.Ctx) {
			for _, j := range jobs {
				cc.RPC(j.src, 16, treeNodeWire)
			}
		}))
	}
	ctx.WaitAll(tasks)
	return created
}

// LiveLocations returns the live providers currently holding a copy of
// ref, in failover order, without charging any cost — the inspection
// hook the chaos tests assert replication invariants with. A ref with
// no stored node returns nil.
func (m *MetaService) LiveLocations(ref NodeRef) []cluster.NodeID {
	if _, ok := m.peek(ref); !ok {
		return nil
	}
	m.repMu.RLock()
	locs := m.locationsLocked(ref)
	m.repMu.RUnlock()
	out := locs[:0:0]
	for _, l := range locs {
		if m.isAlive(l) {
			out = append(out, l)
		}
	}
	return out
}
