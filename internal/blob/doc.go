// Package blob reimplements the BlobSeer distributed versioning storage
// service the paper builds on (Nicolae et al., JPDC 2011): BLOBs are
// striped into fixed-size chunks distributed over provider nodes, and
// every version's metadata is a segment tree whose inner nodes may be
// shared with older versions (shadowing) or with other blobs (cloning),
// exactly as in Fig. 3 of the paper.
//
// The package is organized as BlobSeer itself is:
//
//   - providers (provider.go): store chunk payloads on the compute
//     nodes' local disks, with optional replication;
//   - metadata providers (meta.go): a distributed store of immutable
//     segment-tree nodes;
//   - the version manager (vmanager.go): assigns version numbers and
//     publishes snapshots in total order per blob;
//   - the client (client.go): striped reads, atomic multi-chunk writes
//     (the COMMIT data path), CLONE, and a node cache exploiting tree
//     immutability.
//
// All cost-bearing operations take a *cluster.Ctx, so the same code is
// exercised at zero cost by unit tests (live fabric) and with full
// contention modeling by the experiments (sim fabric).
package blob
