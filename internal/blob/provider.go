package blob

import (
	"fmt"
	"sync"
	"sync/atomic"

	"blobvfs/internal/cluster"
)

// ProviderSet is the data plane: chunk payloads stored on the local
// disks of provider nodes, placed round-robin by key with an optional
// replication degree (paper §3.1.3). Providers can be killed to test
// fault tolerance; reads fail over to surviving replicas.
//
// With deduplication enabled (§7 of the paper lists it as future
// work), payloads carrying a content fingerprint are stored once:
// a Put whose content is already present stores a reference instead
// of a second copy, skipping the disk write (the transfer is still
// paid — the client cannot know the content is duplicate). Real
// payloads are fingerprinted by hashing; synthetic payloads use their
// Tag as the fingerprint.
type ProviderSet struct {
	nodes    []cluster.NodeID
	replicas int
	dedup    bool
	// topo, when enabled, makes placement and reads locality-aware:
	// Replicas spreads a chunk's copies across failure domains (zones
	// first, then racks), and Get probes the reader's nearest live
	// copy first. The zero topology keeps the flat ring behavior
	// byte-identical to a set without the topology machinery.
	topo    cluster.Topology
	nextKey atomic.Uint64

	// mu guards the chunk/dedup/refcount maps. It is a RWMutex so the
	// hot fetch path (Get/Peek: two map lookups) runs under a shared
	// lock and the 16-way parallel fetchers of every client in a
	// deployment stop serializing here; writers (Put, Release) take the
	// exclusive side. Liveness flags and per-provider read counters are
	// atomics preallocated per node, off the lock entirely.
	mu       sync.RWMutex
	chunks   map[ChunkKey]Payload
	byPrint  map[uint64]ChunkKey // content fingerprint → canonical key
	printOf  map[ChunkKey]uint64 // canonical key → its fingerprint
	refs     map[ChunkKey]int64  // content references: canonical self + aliases
	aliases  map[ChunkKey]ChunkKey
	retained map[ChunkKey]bool // keys Put and not yet Released
	pending  map[ChunkKey]bool // keys of in-flight, unpublished commits
	// repairs holds the substitute replica locations created for a
	// canonical chunk — by a repair sweep after one of its ring
	// replicas died, or by a degraded Put that pushed a dead replica's
	// copy to a substitute (repair.go). Reads consult them after the
	// ring. voids lists ring replicas that never received their copy
	// (down at Put time): they are not locations until a repair sweep
	// backfills them, even after a revival.
	repairs map[ChunkKey][]cluster.NodeID
	voids   map[ChunkKey][]cluster.NodeID

	alive    map[cluster.NodeID]*atomic.Bool  // provider liveness flags
	readsBy  map[cluster.NodeID]*atomic.Int64 // chunk reads served, per provider
	writesBy map[cluster.NodeID]*atomic.Int64 // write RPCs received, per provider

	// Reads and Writes count chunk-level operations; DedupHits counts
	// Puts absorbed by an existing identical chunk. Reclaimed and
	// ReclaimedBytes count chunk payloads physically freed by Release.
	Reads, Writes, DedupHits  atomic.Int64
	Reclaimed, ReclaimedBytes atomic.Int64
	// PutRPCs counts the provider-bound RPCs the write path issued
	// (after batching): one per replica per chunk through Put, one per
	// distinct provider per round through PutBatch. Writes/PutRPCs is
	// therefore the write-side batching factor, the twin of the
	// metadata service's Gets/NodesServed.
	PutRPCs atomic.Int64
	// Failovers counts reads a dead primary pushed onto a surviving
	// replica (or a repair copy); FailedReads counts reads that found
	// no live copy at all (ErrNoReplica); Rereplicated counts chunk
	// copies re-created on substitute providers after a node death.
	Failovers, FailedReads, Rereplicated atomic.Int64
	// tierReads counts chunk reads by the locality tier between the
	// reader and the provider that served it (everything lands in
	// TierRack on a flat topology, TierLocal when reader == provider).
	tierReads [cluster.NumTiers]atomic.Int64
}

// NewProviderSet creates a chunk store over the given nodes with the
// given replication degree (≥1).
func NewProviderSet(nodes []cluster.NodeID, replicas int) *ProviderSet {
	if len(nodes) == 0 {
		panic("blob: provider set needs at least one node")
	}
	if replicas < 1 || replicas > len(nodes) {
		panic(fmt.Sprintf("blob: replication degree %d invalid for %d providers", replicas, len(nodes)))
	}
	alive := make(map[cluster.NodeID]*atomic.Bool, len(nodes))
	readsBy := make(map[cluster.NodeID]*atomic.Int64, len(nodes))
	writesBy := make(map[cluster.NodeID]*atomic.Int64, len(nodes))
	for _, n := range nodes {
		alive[n] = &atomic.Bool{}
		alive[n].Store(true)
		readsBy[n] = &atomic.Int64{}
		writesBy[n] = &atomic.Int64{}
	}
	return &ProviderSet{
		nodes:    nodes,
		replicas: replicas,
		chunks:   make(map[ChunkKey]Payload),
		byPrint:  make(map[uint64]ChunkKey),
		printOf:  make(map[ChunkKey]uint64),
		refs:     make(map[ChunkKey]int64),
		aliases:  make(map[ChunkKey]ChunkKey),
		retained: make(map[ChunkKey]bool),
		pending:  make(map[ChunkKey]bool),
		repairs:  make(map[ChunkKey][]cluster.NodeID),
		voids:    make(map[ChunkKey][]cluster.NodeID),
		alive:    alive,
		readsBy:  readsBy,
		writesBy: writesBy,
	}
}

// EnableDedup turns on content deduplication for subsequent Puts.
func (ps *ProviderSet) EnableDedup() { ps.dedup = true }

// SetTopology makes placement and reads locality-aware (see the topo
// field). Call it right after construction, before any chunk traffic:
// placement must not change under stored chunks, or their ring walks
// would resolve to different replicas than the ones holding the data.
func (ps *ProviderSet) SetTopology(t cluster.Topology) { ps.topo = t }

// TierReads returns the chunk reads served per locality tier, indexed
// by cluster.Tier — the distribution topology-aware selection shifts
// toward the near tiers.
func (ps *ProviderSet) TierReads() [cluster.NumTiers]int64 {
	var out [cluster.NumTiers]int64
	for i := range ps.tierReads {
		out[i] = ps.tierReads[i].Load()
	}
	return out
}

// fingerprint derives a content identity for a payload: an FNV-1a
// hash of real bytes, or the (size, tag) pair for synthetic payloads.
// Tag 0 synthetic payloads are never deduplicated (no identity).
func fingerprint(p Payload) (uint64, bool) {
	if p.Real() {
		const offset64, prime64 = 14695981039346656037, 1099511628211
		h := uint64(offset64)
		for _, b := range p.Data {
			h ^= uint64(b)
			h *= prime64
		}
		return h, true
	}
	if p.Tag == 0 {
		return 0, false
	}
	return p.Tag<<16 ^ uint64(p.Size), true
}

// AllocKey returns a fresh chunk key. Sequential keys give round-robin
// placement, matching the even striping of §3.1.3. The key is NOT
// registered as in-flight: when a garbage Collector runs concurrently,
// chunks of a not-yet-published version must be allocated with
// AllocPendingKey instead or a sweep may reclaim them before the
// version's tree references them.
func (ps *ProviderSet) AllocKey() ChunkKey {
	return ChunkKey(ps.nextKey.Add(1))
}

// AllocPendingKey is AllocKey for a commit in flight: the key is
// atomically registered as pending, so a garbage-collection sweep that
// starts before the commit publishes will not reclaim it even though
// no published tree references it yet. The writer must ClearPending
// once the version is published (or the write aborted). Allocation and
// registration happen under one lock so the collector's snapshot
// (PendingSnapshot) can never observe the key allocated but untracked.
func (ps *ProviderSet) AllocPendingKey() ChunkKey {
	ps.mu.Lock()
	key := ChunkKey(ps.nextKey.Add(1))
	ps.pending[key] = true
	ps.mu.Unlock()
	return key
}

// ClearPending removes the in-flight mark from keys (idempotent). The
// chunks become ordinary sweep candidates: reachable from the version
// just published, or garbage of an aborted write for the next cycle.
func (ps *ProviderSet) ClearPending(keys []ChunkKey) {
	ps.mu.Lock()
	for _, k := range keys {
		delete(ps.pending, k)
	}
	ps.mu.Unlock()
}

// PendingSnapshot atomically samples the key watermark and the set of
// in-flight keys. Taken at the start of a collection cycle, it makes
// the exemption airtight: a key at or below the watermark was either
// pending at the snapshot (exempt) or its commit had already
// published (so the mark phase reaches it through the version's root).
func (ps *ProviderSet) PendingSnapshot() (ChunkKey, map[ChunkKey]bool) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	wm := ChunkKey(ps.nextKey.Load())
	pending := make(map[ChunkKey]bool, len(ps.pending))
	for k := range ps.pending {
		pending[k] = true
	}
	return wm, pending
}

// primarySlot returns the index into ps.nodes of a key's primary
// replica — the single place the placement hash lives; the ring walks
// of Replicas, ReReplicate and substitutes all start here.
func (ps *ProviderSet) primarySlot(key ChunkKey) int {
	return int(uint64(key) % uint64(len(ps.nodes)))
}

// Replicas returns the provider nodes responsible for a key, primary
// first. Without a topology the ring is walked consecutively (§3.1.3
// round-robin striping). With one, the walk spreads the copies across
// failure domains: the first pass only takes nodes in zones no earlier
// replica occupies, the second pass fresh racks, and the final pass
// fills any remainder in plain ring order — so a chunk at replication
// degree z survives z-1 zone losses, and the degenerate single-domain
// topology reproduces the flat ring walk exactly.
func (ps *ProviderSet) Replicas(key ChunkKey) []cluster.NodeID {
	n := len(ps.nodes)
	first := ps.primarySlot(key)
	out := make([]cluster.NodeID, 0, ps.replicas)
	if !ps.topo.Enabled() || ps.replicas == 1 {
		for i := 0; i < ps.replicas; i++ {
			out = append(out, ps.nodes[(first+i)%n])
		}
		return out
	}
	usedZones := make([]int, 0, ps.replicas)
	usedRacks := make([]int, 0, ps.replicas)
	taken := make([]bool, n)
	for pass := 0; pass < 3 && len(out) < ps.replicas; pass++ {
		for i := 0; i < n && len(out) < ps.replicas; i++ {
			slot := (first + i) % n
			if taken[slot] {
				continue
			}
			nd := ps.nodes[slot]
			if pass == 0 && containsInt(usedZones, ps.topo.Zone(nd)) {
				continue
			}
			if pass == 1 && containsInt(usedRacks, ps.topo.Rack(nd)) {
				continue
			}
			taken[slot] = true
			usedZones = append(usedZones, ps.topo.Zone(nd))
			usedRacks = append(usedRacks, ps.topo.Rack(nd))
			out = append(out, nd)
		}
	}
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// orderByLocality stably reorders a location list so the reader's
// nearest copies come first; within a tier the existing failover order
// is preserved. A disabled topology leaves the order untouched. The
// sort is an adjacent-swap insertion sort: location lists are a
// handful of entries, and adjacent swaps keep it stable.
func (ps *ProviderSet) orderByLocality(reader cluster.NodeID, locs []cluster.NodeID) {
	if !ps.topo.Enabled() || len(locs) < 2 {
		return
	}
	for i := 1; i < len(locs); i++ {
		ti := ps.topo.Tier(reader, locs[i])
		for j := i; j > 0 && ps.topo.Tier(reader, locs[j-1]) > ti; j-- {
			locs[j-1], locs[j] = locs[j], locs[j-1]
		}
	}
}

// Kill marks a provider as failed: it stops serving reads and accepting
// writes. Data already replicated elsewhere stays readable.
func (ps *ProviderSet) Kill(node cluster.NodeID) {
	if a, ok := ps.alive[node]; ok {
		a.Store(false)
	}
}

// Revive brings a failed provider back (it serves its old chunks again).
func (ps *ProviderSet) Revive(node cluster.NodeID) {
	if a, ok := ps.alive[node]; ok {
		a.Store(true)
	}
}

func (ps *ProviderSet) isAlive(node cluster.NodeID) bool {
	a, ok := ps.alive[node]
	return ok && a.Load()
}

// Put stores a payload under key on all replicas, charging the chunk
// transfer to each living replica and an asynchronous local-disk write
// there (BlobSeer acknowledges once the data is in the provider's
// write-back buffer; see paper §5.3). A ring replica that is down
// takes no copy — the writer records it as a void and pushes the
// missing copy to a live substitute instead (writing around the
// failure), so the chunk is born at full replication degree whenever
// enough providers are up. Returns an error if no copy could be
// placed anywhere. Under deduplication, a payload whose content
// fingerprint is already stored becomes an alias of the existing
// chunk: the transfer is still charged (the client pushed the bytes)
// but the disk write and the second copy are skipped.
func (ps *ProviderSet) Put(ctx *cluster.Ctx, key ChunkKey, p Payload) error {
	dup, registered := false, false
	var canonical ChunkKey
	var fprint uint64
	if ps.dedup {
		if fp, ok := fingerprint(p); ok {
			ps.mu.Lock()
			if existing, hit := ps.byPrint[fp]; hit {
				dup = true
				canonical = existing
			} else {
				ps.byPrint[fp] = key
				ps.printOf[key] = fp
				registered, fprint = true, fp
			}
			ps.mu.Unlock()
		}
	}
	stored := 0
	var deadRing []cluster.NodeID
	ring := ps.Replicas(key)
	for _, prov := range ring {
		if !ps.isAlive(prov) {
			deadRing = append(deadRing, prov)
			continue
		}
		ctx.RPC(prov, int64(p.Size)+32, 16)
		ps.countPutRPC(prov)
		if !dup {
			ctx.DiskWriteAsync(prov, int64(p.Size))
		}
		stored++
	}
	// Write around dead replicas: push their copies to live providers
	// outside the ring. For an aliased (dup) payload the content
	// already lives on its canonical chunk's providers, so the alias
	// needs no substitutes of its own — but if its entire ring is
	// dead, the transfer goes to the canonical chunk's first live
	// holder (the node that detects the duplicate) so the zero-copy
	// alias still succeeds.
	var subs []cluster.NodeID
	if stored == 0 && dup {
		ps.mu.RLock()
		canonLocs := ps.locationsLocked(canonical)
		ps.mu.RUnlock()
		for _, n := range canonLocs {
			if ps.isAlive(n) {
				ctx.RPC(n, int64(p.Size)+32, 16)
				ps.countPutRPC(n)
				stored++
				break
			}
		}
	}
	if len(deadRing) > 0 && !dup {
		subs = ps.substitutes(key, ring, len(deadRing))
		for _, s := range subs {
			ctx.RPC(s, int64(p.Size)+32, 16)
			ps.countPutRPC(s)
			ctx.DiskWriteAsync(s, int64(p.Size))
			stored++
		}
	}
	if stored == 0 {
		// Nothing could take a copy (or, for an alias, even record the
		// reference). Unregister the fingerprint claimed above: a later
		// identical write must not alias to this never-stored chunk.
		if registered {
			ps.mu.Lock()
			if ps.byPrint[fprint] == key {
				delete(ps.byPrint, fprint)
			}
			delete(ps.printOf, key)
			ps.mu.Unlock()
		}
		return fmt.Errorf("blob: chunk %d: %w", key, ErrNoReplica)
	}
	ps.mu.Lock()
	if dup {
		ps.aliases[key] = canonical
		ps.refs[canonical]++
		ps.DedupHits.Add(1)
	} else {
		ps.chunks[key] = p
		ps.refs[key]++
		if len(deadRing) > 0 {
			ps.voids[key] = deadRing
			if len(subs) > 0 {
				ps.repairs[key] = subs
			}
		}
	}
	ps.retained[key] = true
	ps.mu.Unlock()
	ps.Writes.Add(1)
	return nil
}

// countPutRPC records one provider-bound write RPC.
func (ps *ProviderSet) countPutRPC(prov cluster.NodeID) {
	ps.PutRPCs.Add(1)
	if c, ok := ps.writesBy[prov]; ok {
		c.Add(1)
	}
}

// NodePutRPCs returns a copy of the per-provider write-RPC counters —
// the distribution the batched commit path flattens to one RPC per
// provider per round.
func (ps *ProviderSet) NodePutRPCs() map[cluster.NodeID]int64 {
	out := make(map[cluster.NodeID]int64, len(ps.writesBy))
	for n, w := range ps.writesBy {
		if v := w.Load(); v > 0 {
			out[n] = v
		}
	}
	return out
}

// ChunkPut names one key/payload pair for PutBatch.
type ChunkPut struct {
	Key     ChunkKey
	Payload Payload
}

// PutBatch stores a whole commit round of chunks with Put's exact
// per-key semantics — replica placement, write-around of dead ring
// replicas, deduplication — but charges the network per provider
// instead of per chunk: every payload bound for one provider travels
// in a single RPC (the write-side twin of MetaService.PutBatch), and
// with deduplication enabled the round's fingerprint lookups are
// decided under one lock acquisition, so an identical payload later in
// the batch aliases to its first occurrence without a second lookup.
// All providers receive their share concurrently, so the round's
// transfer time stays that of the slowest provider, as with the
// unbatched parallel puts. Keys that could not be placed anywhere
// fail with ErrNoReplica (first error returned); the rest of the
// round commits regardless, exactly as independent Puts would.
func (ps *ProviderSet) PutBatch(ctx *cluster.Ctx, puts []ChunkPut) error {
	if len(puts) == 0 {
		return nil
	}
	n := len(puts)
	dup := make([]bool, n)
	canonical := make([]ChunkKey, n)
	registered := make([]bool, n)
	fprints := make([]uint64, n)
	if ps.dedup {
		ps.mu.Lock()
		for i, pt := range puts {
			fp, ok := fingerprint(pt.Payload)
			if !ok {
				continue
			}
			if existing, hit := ps.byPrint[fp]; hit {
				dup[i], canonical[i] = true, existing
			} else {
				ps.byPrint[fp] = pt.Key
				ps.printOf[pt.Key] = fp
				registered[i], fprints[i] = true, fp
			}
		}
		ps.mu.Unlock()
	}

	// Placement pass: accumulate each provider's share of the round.
	bytesTo := make(map[cluster.NodeID]int64)
	diskTo := make(map[cluster.NodeID]int64)
	stored := make([]int, n)
	deadRings := make([][]cluster.NodeID, n)
	subsOf := make([][]cluster.NodeID, n)
	charge := func(prov cluster.NodeID, p Payload, disk bool) {
		bytesTo[prov] += int64(p.Size) + 32
		if disk {
			diskTo[prov] += int64(p.Size)
		}
	}
	for i, pt := range puts {
		ring := ps.Replicas(pt.Key)
		for _, prov := range ring {
			if !ps.isAlive(prov) {
				deadRings[i] = append(deadRings[i], prov)
				continue
			}
			charge(prov, pt.Payload, !dup[i])
			stored[i]++
		}
		if stored[i] == 0 && dup[i] {
			ps.mu.RLock()
			canonLocs := ps.locationsLocked(canonical[i])
			ps.mu.RUnlock()
			for _, nd := range canonLocs {
				if ps.isAlive(nd) {
					charge(nd, pt.Payload, false)
					stored[i]++
					break
				}
			}
		}
		if len(deadRings[i]) > 0 && !dup[i] {
			subsOf[i] = ps.substitutes(pt.Key, ring, len(deadRings[i]))
			for _, s := range subsOf[i] {
				charge(s, pt.Payload, true)
				stored[i]++
			}
		}
	}

	// One RPC per distinct provider carries its whole share, all
	// providers transferring concurrently (as the unbatched 16-way
	// parallel puts did), spawned in ring order for determinism.
	tasks := make([]cluster.Task, 0, len(bytesTo))
	for _, prov := range ps.nodes {
		b, ok := bytesTo[prov]
		if !ok {
			continue
		}
		prov, d := prov, diskTo[prov]
		ps.countPutRPC(prov)
		tasks = append(tasks, ctx.Go("put-batch", ctx.Node(), func(cc *cluster.Ctx) {
			cc.RPC(prov, b, 16)
			if d > 0 {
				cc.DiskWriteAsync(prov, d)
			}
		}))
	}
	ctx.WaitAll(tasks)

	var firstErr error
	ps.mu.Lock()
	for i, pt := range puts {
		if stored[i] == 0 {
			// Nothing could take a copy; unregister the fingerprint
			// claimed above so a later identical write does not alias to
			// this never-stored chunk.
			if registered[i] {
				if ps.byPrint[fprints[i]] == pt.Key {
					delete(ps.byPrint, fprints[i])
				}
				delete(ps.printOf, pt.Key)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("blob: chunk %d: %w", pt.Key, ErrNoReplica)
			}
			continue
		}
		if dup[i] {
			ps.aliases[pt.Key] = canonical[i]
			ps.refs[canonical[i]]++
			ps.DedupHits.Add(1)
		} else {
			ps.chunks[pt.Key] = pt.Payload
			ps.refs[pt.Key]++
			if len(deadRings[i]) > 0 {
				ps.voids[pt.Key] = deadRings[i]
				if len(subsOf[i]) > 0 {
					ps.repairs[pt.Key] = subsOf[i]
				}
			}
		}
		ps.retained[pt.Key] = true
		ps.Writes.Add(1)
	}
	ps.mu.Unlock()
	return firstErr
}

// substitutes picks n live providers outside key's ring, walking the
// node list from the key's primary slot (deterministic). Fewer than n
// may be returned when not enough providers are up.
func (ps *ProviderSet) substitutes(key ChunkKey, ring []cluster.NodeID, n int) []cluster.NodeID {
	first := ps.primarySlot(key)
	var out []cluster.NodeID
	for i := 0; i < len(ps.nodes) && len(out) < n; i++ {
		cand := ps.nodes[(first+i)%len(ps.nodes)]
		if ps.isAlive(cand) && !containsProvider(ring, cand) {
			out = append(out, cand)
		}
	}
	return out
}

// locationsLocked returns the nodes holding key's payload in failover
// order: ring replicas that actually stored it (a replica down at Put
// time never received its copy — see voids), then the substitute
// locations degraded writes and repair sweeps created. The caller
// holds ps.mu (either side); key must be canonical.
func (ps *ProviderSet) locationsLocked(key ChunkKey) []cluster.NodeID {
	ring := ps.Replicas(key)
	voids := ps.voids[key]
	out := make([]cluster.NodeID, 0, len(ring)+len(ps.repairs[key]))
	for _, r := range ring {
		if !containsProvider(voids, r) {
			out = append(out, r)
		}
	}
	return append(out, ps.repairs[key]...)
}

// Get fetches the payload for key, charging the provider's disk read
// and the transfer back. Location choice is primary-first with
// failover: dead holders are skipped (each one probed costs the
// reader a timed-out request), and only when every copy is gone does
// the read fail with ErrNoReplica. Aliased (deduplicated) keys
// resolve to their canonical chunk, whose home provider serves the
// read.
func (ps *ProviderSet) Get(ctx *cluster.Ctx, key ChunkKey) (Payload, error) {
	ps.mu.RLock()
	if canon, ok := ps.aliases[key]; ok {
		key = canon
	}
	p, ok := ps.chunks[key]
	// Fast path for the fault-free common case: with no voids or
	// repair locations anywhere, the location set IS the ring, and the
	// hot read path keeps its single slice allocation.
	var locs []cluster.NodeID
	if len(ps.voids) == 0 && len(ps.repairs) == 0 {
		ps.mu.RUnlock()
		locs = ps.Replicas(key)
	} else {
		locs = ps.locationsLocked(key)
		ps.mu.RUnlock()
	}
	if !ok {
		return Payload{}, notFound("chunk", key)
	}
	// Nearest live copy first: reorder the failover list by the
	// reader's locality tier (a no-op on the flat topology), keeping
	// the existing order within each tier.
	ps.orderByLocality(ctx.Node(), locs)
	prov := cluster.NodeID(-1)
	probes, failover := 0, false
	for i, r := range locs {
		if ps.isAlive(r) {
			prov, failover = r, i > 0
			break
		}
		probes++
	}
	if probes > 0 {
		// Every dead copy probed costs the reader one timed-out
		// request before it moves to the next candidate.
		cfg := ctx.Fabric().Config()
		ctx.Sleep(float64(probes) * (cfg.RTT + cfg.ReqOverhead))
	}
	if prov < 0 {
		ps.FailedReads.Add(1)
		return Payload{}, fmt.Errorf("blob: chunk %d: %w", key, ErrNoReplica)
	}
	if failover {
		ps.Failovers.Add(1)
	}
	ctx.DiskRead(prov, int64(p.Size))
	ctx.RPC(prov, 32, int64(p.Size))
	ps.Reads.Add(1)
	ps.readsBy[prov].Add(1)
	ps.tierReads[ps.topo.Tier(ctx.Node(), prov)].Add(1)
	return p, nil
}

// Peek returns the stored payload for key (resolving dedup aliases)
// without charging any provider cost. This is the escape hatch the p2p
// sharing layer uses to serve a chunk from a peer's local mirror: the
// payload bytes are authoritative, only the costs move to the peer.
func (ps *ProviderSet) Peek(key ChunkKey) (Payload, bool) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	if canon, ok := ps.aliases[key]; ok {
		key = canon
	}
	p, ok := ps.chunks[key]
	return p, ok
}

// NodeReads returns a copy of the per-provider chunk-read counters —
// the distribution whose maximum is the hot-spot a flash crowd builds.
func (ps *ProviderSet) NodeReads() map[cluster.NodeID]int64 {
	out := make(map[cluster.NodeID]int64, len(ps.readsBy))
	for n, r := range ps.readsBy {
		if v := r.Load(); v > 0 {
			out[n] = v
		}
	}
	return out
}

// MaxNodeReads returns the chunk reads served by the busiest provider.
func (ps *ProviderSet) MaxNodeReads() int64 {
	var most int64
	for _, r := range ps.readsBy {
		if v := r.Load(); v > most {
			most = v
		}
	}
	return most
}

// ChunkCount returns the number of distinct chunks stored.
func (ps *ProviderSet) ChunkCount() int {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return len(ps.chunks)
}

// KeyWatermark returns the highest chunk key allocated so far. The
// garbage collector snapshots it before marking: keys allocated after
// the snapshot belong to versions still being written and are exempt
// from the sweep, which is what lets collection run while deployments
// and commits proceed.
func (ps *ProviderSet) KeyWatermark() ChunkKey {
	return ChunkKey(ps.nextKey.Load())
}

// RetainedKeys returns every key up to the watermark that still holds
// a reference — canonical chunks that own their self-reference and
// dedup aliases. This is the sweep candidate set; keys absent from it
// were already released (their content may live on through aliases).
func (ps *ProviderSet) RetainedKeys(upTo ChunkKey) []ChunkKey {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	out := make([]ChunkKey, 0, len(ps.retained))
	for k := range ps.retained {
		if k <= upTo {
			out = append(out, k)
		}
	}
	return out
}

// Release drops the reference held by each key: an alias decrements
// its canonical chunk's count; a canonical key gives up its
// self-reference. A chunk whose count reaches zero is physically
// freed (its payload, fingerprint entry and replicas' disk space).
// Keys already released or never stored are ignored, so Release is
// idempotent per key. It returns the keys actually released and the
// payload bytes freed, and charges one small batched RPC per replica
// provider of the released keys — deletion is a metadata operation;
// the freed blocks are trimmed asynchronously.
func (ps *ProviderSet) Release(ctx *cluster.Ctx, keys []ChunkKey) (released []ChunkKey, freedBytes int64) {
	perNode := make(map[cluster.NodeID]int64)
	ps.mu.Lock()
	for _, key := range keys {
		if !ps.retained[key] {
			continue
		}
		delete(ps.retained, key)
		canon := key
		if c, ok := ps.aliases[key]; ok {
			canon = c
			delete(ps.aliases, key)
		}
		released = append(released, key)
		if ps.refs[canon]--; ps.refs[canon] <= 0 {
			delete(ps.refs, canon)
			delete(ps.repairs, canon)
			delete(ps.voids, canon)
			if p, ok := ps.chunks[canon]; ok {
				delete(ps.chunks, canon)
				freedBytes += int64(p.Size)
				ps.Reclaimed.Add(1)
				ps.ReclaimedBytes.Add(int64(p.Size))
			}
			if fp, ok := ps.printOf[canon]; ok {
				delete(ps.printOf, canon)
				if ps.byPrint[fp] == canon {
					delete(ps.byPrint, fp)
				}
			}
		}
		for _, prov := range ps.Replicas(key) {
			perNode[prov]++
		}
	}
	ps.mu.Unlock()
	// Charge per-provider deletion batches in deterministic ring order.
	for _, prov := range ps.nodes {
		if c := perNode[prov]; c > 0 && ps.isAlive(prov) {
			ctx.RPC(prov, c*24, 16)
		}
	}
	return released, freedBytes
}

// RefCount returns (without cost) the content reference count behind a
// key: the canonical chunk's count for aliases, the key's own count
// otherwise. Zero means the content is gone.
func (ps *ProviderSet) RefCount(key ChunkKey) int64 {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	if canon, ok := ps.aliases[key]; ok {
		key = canon
	}
	return ps.refs[key]
}

// StoredBytes returns the total payload bytes stored (one copy counted
// per chunk; multiply by the replication degree for raw usage).
func (ps *ProviderSet) StoredBytes() int64 {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	var total int64
	for _, p := range ps.chunks {
		total += int64(p.Size)
	}
	return total
}
