package blob

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the client's per-version extent cache: resolved
// [lo,hi) → []LeafEntry interval maps keyed by (blob, version).
// Versions are immutable, so a resolved interval never invalidates —
// the only event that can make an entry wrong is version retirement
// (the snapshot stops being resolvable at all). Each entry remembers
// the retirement epoch it was last validated under; a lookup whose
// current epoch differs revalidates the one entry it touches against
// the version manager's ground truth (VersionManager.IsLive, a
// zero-cost in-process check) — so retirements cost one liveness
// check per surviving entry and unrelated entries stay hot. Repeated
// reads over a deployed snapshot — the mirroring module's
// demand-fetch path, exactly the flash-crowd hot loop — skip the
// whole tree descent: no version-manager root lookup, no metadata
// RPCs, no per-node cache traffic.
//
// The cache is bounded by an LRU over versions so churn workloads
// (many short-lived snapshots) stay flat instead of accumulating every
// version ever read.

// defaultExtentVersions bounds how many (blob, version) extent maps a
// client keeps. A mirroring module reads from a handful of snapshots
// at a time, so the default is generous; SetExtentCacheCap tunes it.
const defaultExtentVersions = 128

type extentKey struct {
	id ID
	v  Version
}

// extentIv is one resolved interval: leaves[i] is the entry for chunk
// index lo+i, exactly as CollectLeaves returns it.
type extentIv struct {
	lo, hi int64
	leaves []LeafEntry
}

type extentEntry struct {
	key   extentKey
	epoch uint64     // retirement epoch the entry was last validated under
	ivs   []extentIv // sorted by lo, pairwise disjoint and non-adjacent

	// LRU chain (most recent at head).
	prev, next *extentEntry
}

// extentCache is the container: a map over (blob, version) plus an
// intrusive LRU list, guarded by one short mutex (critical sections
// are slicing and pointer swaps only — never held across fabric
// operations).
type extentCache struct {
	mu         sync.Mutex
	entries    map[extentKey]*extentEntry
	head, tail *extentEntry
	cap        int

	// Hits and Misses count lookups served from / missing the cache.
	hits, misses atomic.Int64
}

func newExtentCache() *extentCache {
	return &extentCache{
		entries: make(map[extentKey]*extentEntry),
		cap:     defaultExtentVersions,
	}
}

// setCap rebounds the cache, evicting down if needed. cap < 1 disables
// the cache entirely.
func (ec *extentCache) setCap(n int) {
	ec.mu.Lock()
	ec.cap = n
	for len(ec.entries) > ec.cap && ec.tail != nil {
		ec.evictTailLocked()
	}
	ec.mu.Unlock()
}

func (ec *extentCache) unlinkLocked(e *extentEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		ec.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		ec.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (ec *extentCache) pushFrontLocked(e *extentEntry) {
	e.prev, e.next = nil, ec.head
	if ec.head != nil {
		ec.head.prev = e
	}
	ec.head = e
	if ec.tail == nil {
		ec.tail = e
	}
}

func (ec *extentCache) evictTailLocked() {
	e := ec.tail
	ec.unlinkLocked(e)
	delete(ec.entries, e.key)
}

// lookup returns the cached leaves for [lo,hi) of (id, v), or nil.
// epoch is the version manager's current retirement epoch and live
// the manager's liveness check: when a retirement has happened since
// the entry was last validated, the entry is revalidated (and dropped
// if the version is gone) before being served. The returned slice is
// shared and must be treated as read-only (LeafEntry values are
// immutable anyway).
func (ec *extentCache) lookup(id ID, v Version, lo, hi int64, epoch uint64, live func(ID, Version) bool) []LeafEntry {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	e := ec.entries[extentKey{id, v}]
	if e == nil {
		ec.misses.Add(1)
		return nil
	}
	if e.epoch != epoch {
		if !live(id, v) {
			ec.unlinkLocked(e)
			delete(ec.entries, e.key)
			ec.misses.Add(1)
			return nil
		}
		e.epoch = epoch
	}
	// First interval that could contain lo: the last one with iv.lo <= lo.
	i := sort.Search(len(e.ivs), func(i int) bool { return e.ivs[i].lo > lo }) - 1
	if i < 0 || e.ivs[i].hi < hi {
		ec.misses.Add(1)
		return nil
	}
	ec.hits.Add(1)
	if e != ec.head {
		ec.unlinkLocked(e)
		ec.pushFrontLocked(e)
	}
	iv := e.ivs[i]
	return iv.leaves[lo-iv.lo : hi-iv.lo]
}

// insert records the resolved leaves for [lo,hi) of (id, v), merging
// with any cached intervals it overlaps or adjoins (the version is
// immutable, so overlapping resolutions are identical). The cache
// takes ownership of the leaves slice — callers pass the freshly
// resolved result and must not mutate it afterwards. epoch is the
// retirement epoch sampled BEFORE the resolution started: if a
// retirement raced the descent, the entry lands with a stale epoch
// and the next lookup revalidates it against the version manager
// before serving it.
func (ec *extentCache) insert(id ID, v Version, lo, hi int64, leaves []LeafEntry, epoch uint64) {
	if lo >= hi || ec.cap < 1 {
		return
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	key := extentKey{id, v}
	e := ec.entries[key]
	if e == nil {
		for len(ec.entries) >= ec.cap && ec.tail != nil {
			ec.evictTailLocked()
		}
		e = &extentEntry{key: key, epoch: epoch}
		ec.entries[key] = e
		ec.pushFrontLocked(e)
	} else if e != ec.head {
		ec.unlinkLocked(e)
		ec.pushFrontLocked(e)
	}
	if epoch < e.epoch {
		// Keep the newest validation stamp; leaves of overlapping
		// resolutions are identical either way (immutability).
		epoch = e.epoch
	}
	e.epoch = epoch

	// Window of existing intervals that overlap or adjoin [lo,hi).
	i := sort.Search(len(e.ivs), func(i int) bool { return e.ivs[i].hi >= lo })
	j := sort.Search(len(e.ivs), func(j int) bool { return e.ivs[j].lo > hi })
	if j-i == 1 && lo >= e.ivs[i].lo {
		// The common sequential-read shape: the new range is contained
		// in, or extends, a single interval to the right. Append only
		// the new tail — amortized linear over a whole image, where
		// rebuilding the merged run each time would be quadratic.
		iv := &e.ivs[i]
		if hi > iv.hi {
			iv.leaves = append(iv.leaves, leaves[iv.hi-lo:]...)
			iv.hi = hi
		}
		return
	}
	if i == j {
		// Disjoint from everything: splice the new interval in.
		nv := extentIv{lo: lo, hi: hi, leaves: leaves}
		e.ivs = append(e.ivs, extentIv{})
		copy(e.ivs[i+1:], e.ivs[i:])
		e.ivs[i] = nv
		return
	}
	mlo := min(lo, e.ivs[i].lo)
	mhi := max(hi, e.ivs[j-1].hi)
	merged := make([]LeafEntry, mhi-mlo)
	for _, iv := range e.ivs[i:j] {
		copy(merged[iv.lo-mlo:], iv.leaves)
	}
	copy(merged[lo-mlo:], leaves)
	e.ivs[i] = extentIv{lo: mlo, hi: mhi, leaves: merged}
	e.ivs = append(e.ivs[:i+1], e.ivs[j:]...)
}

// Stats reporting for tests and benchmarks.

// ExtentCacheStats reports the client's extent-cache effectiveness.
type ExtentCacheStats struct {
	Hits, Misses int64
	Versions     int // cached (blob, version) entries
}

// ExtentStats returns a snapshot of the extent cache counters.
func (c *Client) ExtentStats() ExtentCacheStats {
	c.extents.mu.Lock()
	n := len(c.extents.entries)
	c.extents.mu.Unlock()
	return ExtentCacheStats{
		Hits:     c.extents.hits.Load(),
		Misses:   c.extents.misses.Load(),
		Versions: n,
	}
}

// SetExtentCacheCap bounds the extent cache to n (blob, version)
// entries, evicting least-recently-used entries beyond it. n < 1
// disables extent caching. The default is defaultExtentVersions.
func (c *Client) SetExtentCacheCap(n int) {
	c.extents.setCap(n)
}
