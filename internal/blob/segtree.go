package blob

import "fmt"

// This file holds the pure segment-tree algorithms: collecting the
// leaves that cover a chunk range, and building the O(D·log C) new
// nodes of a shadowed version. They are pure so that property-based
// tests can drive them against a flat reference model without any
// fabric; the client wires them to the distributed metadata store.

// Getter resolves metadata node references. Implementations may fetch
// remotely (client) or from a local map (tests).
type Getter interface {
	GetNode(ref NodeRef) (TreeNode, error)
}

// GetterFunc adapts a function to the Getter interface.
type GetterFunc func(ref NodeRef) (TreeNode, error)

// GetNode calls f.
func (f GetterFunc) GetNode(ref NodeRef) (TreeNode, error) { return f(ref) }

// LeafRange is a run of consecutive chunk indices sharing sparseness
// status; for non-sparse runs the chunk keys are listed individually.
type LeafEntry struct {
	Index int64
	Chunk ChunkKey // 0 = sparse
}

// CollectLeaves walks the tree under root and returns one entry per
// chunk index in [lo,hi), in index order. Sparse subtrees (ref 0)
// produce entries with Chunk 0. The root covering span [0,span) may
// itself be 0 for a completely empty tree.
func CollectLeaves(g Getter, root NodeRef, span, lo, hi int64) ([]LeafEntry, error) {
	if lo < 0 || hi > span || lo > hi {
		return nil, fmt.Errorf("blob: leaf range [%d,%d) outside span %d", lo, hi, span)
	}
	out := make([]LeafEntry, 0, hi-lo)
	var walk func(ref NodeRef, nlo, nhi int64) error
	walk = func(ref NodeRef, nlo, nhi int64) error {
		if nhi <= lo || nlo >= hi {
			return nil
		}
		if ref == 0 {
			from, to := max64(nlo, lo), min64(nhi, hi)
			for i := from; i < to; i++ {
				out = append(out, LeafEntry{Index: i})
			}
			return nil
		}
		n, err := g.GetNode(ref)
		if err != nil {
			return err
		}
		if n.Lo != nlo || n.Hi != nhi {
			return fmt.Errorf("blob: tree corruption: node %d covers [%d,%d), expected [%d,%d)", ref, n.Lo, n.Hi, nlo, nhi)
		}
		if n.Leaf() {
			out = append(out, LeafEntry{Index: n.Lo, Chunk: n.Chunk})
			return nil
		}
		mid := (nlo + nhi) / 2
		if err := walk(n.Left, nlo, mid); err != nil {
			return err
		}
		return walk(n.Right, mid, nhi)
	}
	if err := walk(root, 0, span); err != nil {
		return nil, err
	}
	return out, nil
}

// DirtyLeaf names a chunk index to be replaced in a new version.
type DirtyLeaf struct {
	Index int64
	Chunk ChunkKey
}

// NewNode is a freshly built tree node awaiting storage.
type NewNode struct {
	Ref  NodeRef
	Node TreeNode
}

// BuildVersion constructs the metadata of a shadowed snapshot: a new
// tree that references the chunks in `dirty` at their indices and
// shares every other subtree with the tree under oldRoot. Only the
// nodes on root-to-leaf paths that contain a dirty index are created;
// this is the mechanism of Fig. 3(c) in the paper.
//
// alloc must return fresh unique refs. The returned slice lists every
// created node (the last entry is the new root). dirty must be sorted
// by index, without duplicates, all within [0,span).
func BuildVersion(g Getter, oldRoot NodeRef, span int64, dirty []DirtyLeaf, alloc func() NodeRef) (NodeRef, []NewNode, error) {
	if len(dirty) == 0 {
		return oldRoot, nil, nil
	}
	for i, d := range dirty {
		if d.Index < 0 || d.Index >= span {
			return nil2(), nil, fmt.Errorf("blob: dirty index %d outside span %d", d.Index, span)
		}
		if i > 0 && dirty[i-1].Index >= d.Index {
			return nil2(), nil, fmt.Errorf("blob: dirty indices not sorted/unique at %d", i)
		}
	}
	var created []NewNode
	// rebuild returns the ref of the subtree for [nlo,nhi) in the new
	// version, given the dirty leaves di[lo:hi) falling in that range.
	var rebuild func(oldRef NodeRef, nlo, nhi int64, d []DirtyLeaf) (NodeRef, error)
	rebuild = func(oldRef NodeRef, nlo, nhi int64, d []DirtyLeaf) (NodeRef, error) {
		if len(d) == 0 {
			return oldRef, nil // share the old subtree unchanged
		}
		ref := alloc()
		if nhi-nlo == 1 {
			created = append(created, NewNode{Ref: ref, Node: TreeNode{Lo: nlo, Hi: nhi, Chunk: d[0].Chunk}})
			return ref, nil
		}
		mid := (nlo + nhi) / 2
		var oldLeft, oldRight NodeRef
		if oldRef != 0 {
			old, err := g.GetNode(oldRef)
			if err != nil {
				return 0, err
			}
			if old.Leaf() {
				return 0, fmt.Errorf("blob: tree corruption: leaf %d at inner range [%d,%d)", oldRef, nlo, nhi)
			}
			oldLeft, oldRight = old.Left, old.Right
		}
		split := 0
		for split < len(d) && d[split].Index < mid {
			split++
		}
		left, err := rebuild(oldLeft, nlo, mid, d[:split])
		if err != nil {
			return 0, err
		}
		right, err := rebuild(oldRight, mid, nhi, d[split:])
		if err != nil {
			return 0, err
		}
		created = append(created, NewNode{Ref: ref, Node: TreeNode{Lo: nlo, Hi: nhi, Left: left, Right: right}})
		return ref, nil
	}
	root, err := rebuild(oldRoot, 0, span, dirty)
	if err != nil {
		return 0, nil, err
	}
	return root, created, nil
}

// CloneRoot builds the single new node that makes blob B version 1 an
// alias of blob A's snapshot under srcRoot — Fig. 3(b) of the paper.
// For a leaf-rooted (single chunk) tree the clone shares the chunk key.
func CloneRoot(g Getter, srcRoot NodeRef, span int64, alloc func() NodeRef) (NodeRef, []NewNode, error) {
	if srcRoot == 0 {
		return 0, nil, nil // cloning an empty tree is an empty tree
	}
	src, err := g.GetNode(srcRoot)
	if err != nil {
		return 0, nil, err
	}
	if src.Lo != 0 || src.Hi != span {
		return 0, nil, fmt.Errorf("blob: clone source root covers [%d,%d), want [0,%d)", src.Lo, src.Hi, span)
	}
	ref := alloc()
	n := TreeNode{Lo: 0, Hi: span, Left: src.Left, Right: src.Right, Chunk: src.Chunk}
	return ref, []NewNode{{Ref: ref, Node: n}}, nil
}

// WalkReachable visits every tree node and chunk key reachable from
// root, pruning subtrees whose root the caller has already seen:
// visitNode returns false to stop descending (the ref was reached from
// another version's tree — shadowing and cloning share whole subtrees,
// so a mark phase over many roots visits each node exactly once).
// Sparse subtrees (ref 0) are skipped. This is the pure mark primitive
// of the snapshot garbage collector; like CollectLeaves it validates
// the range invariants as it walks, so corruption surfaces as an error
// instead of an under- or over-mark.
func WalkReachable(g Getter, root NodeRef, span int64, visitNode func(NodeRef) bool, visitChunk func(ChunkKey)) error {
	var walk func(ref NodeRef, nlo, nhi int64) error
	walk = func(ref NodeRef, nlo, nhi int64) error {
		if ref == 0 {
			return nil
		}
		if !visitNode(ref) {
			return nil
		}
		n, err := g.GetNode(ref)
		if err != nil {
			return err
		}
		if n.Lo != nlo || n.Hi != nhi {
			return fmt.Errorf("blob: tree corruption: node %d covers [%d,%d), expected [%d,%d)", ref, n.Lo, n.Hi, nlo, nhi)
		}
		if n.Leaf() {
			if n.Chunk != 0 {
				visitChunk(n.Chunk)
			}
			return nil
		}
		mid := (nlo + nhi) / 2
		if err := walk(n.Left, nlo, mid); err != nil {
			return err
		}
		return walk(n.Right, mid, nhi)
	}
	return walk(root, 0, span)
}

func nil2() NodeRef { return 0 }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
