package blob

import "fmt"

// This file holds the pure segment-tree algorithms: collecting the
// leaves that cover a chunk range, and building the O(D·log C) new
// nodes of a shadowed version. They are pure so that property-based
// tests can drive them against a flat reference model without any
// fabric; the client wires them to the distributed metadata store.

// Getter resolves metadata node references. Implementations may fetch
// remotely (client) or from a local map (tests).
type Getter interface {
	GetNode(ref NodeRef) (TreeNode, error)
}

// BatchGetter is a Getter that can resolve many references in one
// round. CollectLeaves uses it to fetch a whole tree level at once —
// depth rounds of metadata access instead of one round per node. The
// result is aligned with refs (result[i] resolves refs[i]); a ref that
// cannot be resolved makes GetNodes return the same error GetNode
// would.
type BatchGetter interface {
	Getter
	GetNodes(refs []NodeRef) ([]TreeNode, error)
}

// GetterFunc adapts a function to the Getter interface.
type GetterFunc func(ref NodeRef) (TreeNode, error)

// GetNode calls f.
func (f GetterFunc) GetNode(ref NodeRef) (TreeNode, error) { return f(ref) }

// LeafRange is a run of consecutive chunk indices sharing sparseness
// status; for non-sparse runs the chunk keys are listed individually.
type LeafEntry struct {
	Index int64
	Chunk ChunkKey // 0 = sparse
}

// CollectLeaves walks the tree under root and returns one entry per
// chunk index in [lo,hi), in index order. Sparse subtrees (ref 0)
// produce entries with Chunk 0. The root covering span [0,span) may
// itself be 0 for a completely empty tree.
//
// The walk is a level-order frontier descent: every node of one tree
// level that overlaps [lo,hi) is resolved in a single round. With a
// BatchGetter a round is one GetNodes call — so resolving a range
// costs depth rounds of metadata access instead of one round trip per
// node, which is what keeps the distributed metadata scheme off the
// critical path under concurrent deployment. A plain Getter degrades
// to one GetNode per frontier node in deterministic left-to-right
// order.
func CollectLeaves(g Getter, root NodeRef, span, lo, hi int64) ([]LeafEntry, error) {
	if lo < 0 || hi > span || lo > hi {
		return nil, fmt.Errorf("blob: leaf range [%d,%d) outside span %d: %w", lo, hi, span, ErrOutOfRange)
	}
	// Every index in [lo,hi) is covered exactly once (by a leaf or by a
	// sparse subtree), so the result is preallocated from span math and
	// entries are placed at Index-lo. Sparse indices keep Chunk 0.
	out := make([]LeafEntry, hi-lo)
	for i := range out {
		out[i].Index = lo + int64(i)
	}

	type frame struct {
		ref      NodeRef
		nlo, nhi int64
	}
	bg, batched := g.(BatchGetter)
	frontier := make([]frame, 0, 2)
	push := func(fs []frame, ref NodeRef, nlo, nhi int64) []frame {
		if nhi <= lo || nlo >= hi || ref == 0 {
			// Outside the range, or a sparse subtree: its indices keep
			// the zero Chunk already in place.
			return fs
		}
		return append(fs, frame{ref, nlo, nhi})
	}
	frontier = push(frontier, root, 0, span)
	var next []frame
	var refs []NodeRef
	var nodes []TreeNode
	for len(frontier) > 0 {
		if batched {
			refs = refs[:0]
			for _, fr := range frontier {
				refs = append(refs, fr.ref)
			}
			var err error
			nodes, err = bg.GetNodes(refs)
			if err != nil {
				return nil, err
			}
		}
		next = next[:0]
		for fi, fr := range frontier {
			var n TreeNode
			if batched {
				n = nodes[fi]
			} else {
				var err error
				n, err = g.GetNode(fr.ref)
				if err != nil {
					return nil, err
				}
			}
			if n.Lo != fr.nlo || n.Hi != fr.nhi {
				return nil, fmt.Errorf("blob: node %d covers [%d,%d), expected [%d,%d): %w", fr.ref, n.Lo, n.Hi, fr.nlo, fr.nhi, ErrCorruptTree)
			}
			if n.Leaf() {
				out[n.Lo-lo].Chunk = n.Chunk
				continue
			}
			mid := (fr.nlo + fr.nhi) / 2
			next = push(next, n.Left, fr.nlo, mid)
			next = push(next, n.Right, mid, fr.nhi)
		}
		frontier, next = next, frontier
	}
	return out, nil
}

// DirtyLeaf names a chunk index to be replaced in a new version.
type DirtyLeaf struct {
	Index int64
	Chunk ChunkKey
}

// NewNode is a freshly built tree node awaiting storage.
type NewNode struct {
	Ref  NodeRef
	Node TreeNode
}

// BuildVersion constructs the metadata of a shadowed snapshot: a new
// tree that references the chunks in `dirty` at their indices and
// shares every other subtree with the tree under oldRoot. Only the
// nodes on root-to-leaf paths that contain a dirty index are created;
// this is the mechanism of Fig. 3(c) in the paper.
//
// alloc must return fresh unique refs. The returned slice lists every
// created node (the last entry is the new root). dirty must be sorted
// by index, without duplicates, all within [0,span).
func BuildVersion(g Getter, oldRoot NodeRef, span int64, dirty []DirtyLeaf, alloc func() NodeRef) (NodeRef, []NewNode, error) {
	if len(dirty) == 0 {
		return oldRoot, nil, nil
	}
	if err := validateDirty(span, dirty); err != nil {
		return 0, nil, err
	}
	var created []NewNode
	// rebuild returns the ref of the subtree for [nlo,nhi) in the new
	// version, given the dirty leaves di[lo:hi) falling in that range.
	var rebuild func(oldRef NodeRef, nlo, nhi int64, d []DirtyLeaf) (NodeRef, error)
	rebuild = func(oldRef NodeRef, nlo, nhi int64, d []DirtyLeaf) (NodeRef, error) {
		if len(d) == 0 {
			return oldRef, nil // share the old subtree unchanged
		}
		ref := alloc()
		if nhi-nlo == 1 {
			created = append(created, NewNode{Ref: ref, Node: TreeNode{Lo: nlo, Hi: nhi, Chunk: d[0].Chunk}})
			return ref, nil
		}
		mid := (nlo + nhi) / 2
		var oldLeft, oldRight NodeRef
		if oldRef != 0 {
			old, err := g.GetNode(oldRef)
			if err != nil {
				return 0, err
			}
			if old.Leaf() {
				return 0, fmt.Errorf("blob: leaf %d at inner range [%d,%d): %w", oldRef, nlo, nhi, ErrCorruptTree)
			}
			oldLeft, oldRight = old.Left, old.Right
		}
		split := 0
		for split < len(d) && d[split].Index < mid {
			split++
		}
		left, err := rebuild(oldLeft, nlo, mid, d[:split])
		if err != nil {
			return 0, err
		}
		right, err := rebuild(oldRight, mid, nhi, d[split:])
		if err != nil {
			return 0, err
		}
		created = append(created, NewNode{Ref: ref, Node: TreeNode{Lo: nlo, Hi: nhi, Left: left, Right: right}})
		return ref, nil
	}
	root, err := rebuild(oldRoot, 0, span, dirty)
	if err != nil {
		return 0, nil, err
	}
	return root, created, nil
}

// validateDirty checks the BuildVersion precondition: every dirty index
// within [0,span), sorted, no duplicates.
func validateDirty(span int64, dirty []DirtyLeaf) error {
	for i, d := range dirty {
		if d.Index < 0 || d.Index >= span {
			return fmt.Errorf("blob: dirty index %d outside span %d: %w", d.Index, span, ErrOutOfRange)
		}
		if i > 0 && dirty[i-1].Index >= d.Index {
			return fmt.Errorf("blob: dirty indices not sorted/unique at %d: %w", i, ErrInvalidWrite)
		}
	}
	return nil
}

// BuildVersionBatched is BuildVersion over a BatchGetter: the old-tree
// nodes on dirty root-to-leaf paths are prefetched level by level — one
// GetNodes round per level, the write-side twin of CollectLeaves'
// frontier descent — and the rebuild then runs against the prefetched
// nodes. Building a shadowed version therefore costs depth rounds of
// metadata access instead of one round trip per shared inner node. The
// result (new root, created nodes and their order, allocation order) is
// identical to BuildVersion's.
func BuildVersionBatched(g BatchGetter, oldRoot NodeRef, span int64, dirty []DirtyLeaf, alloc func() NodeRef) (NodeRef, []NewNode, error) {
	if len(dirty) == 0 {
		return oldRoot, nil, nil
	}
	if err := validateDirty(span, dirty); err != nil {
		return 0, nil, err
	}
	// Level-order prefetch of exactly the old nodes the rebuild will
	// read: an inner node is on a dirty path iff its range holds a dirty
	// index; leaves and sparse subtrees need no fetch.
	type frame struct {
		ref      NodeRef
		nlo, nhi int64
		d        []DirtyLeaf
	}
	prefetched := make(map[NodeRef]TreeNode)
	var frontier, next []frame
	if oldRoot != 0 && span > 1 {
		frontier = append(frontier, frame{oldRoot, 0, span, dirty})
	}
	var refs []NodeRef
	for len(frontier) > 0 {
		refs = refs[:0]
		for _, fr := range frontier {
			refs = append(refs, fr.ref)
		}
		nodes, err := g.GetNodes(refs)
		if err != nil {
			return 0, nil, err
		}
		next = next[:0]
		for fi, fr := range frontier {
			n := nodes[fi]
			prefetched[fr.ref] = n
			if n.Leaf() {
				// A leaf at an inner range is corruption; the rebuild
				// below reports it with BuildVersion's exact error.
				continue
			}
			mid := (fr.nlo + fr.nhi) / 2
			split := 0
			for split < len(fr.d) && fr.d[split].Index < mid {
				split++
			}
			if left := fr.d[:split]; n.Left != 0 && len(left) > 0 && mid-fr.nlo > 1 {
				next = append(next, frame{n.Left, fr.nlo, mid, left})
			}
			if right := fr.d[split:]; n.Right != 0 && len(right) > 0 && fr.nhi-mid > 1 {
				next = append(next, frame{n.Right, mid, fr.nhi, right})
			}
		}
		frontier, next = next, frontier
	}
	return BuildVersion(GetterFunc(func(ref NodeRef) (TreeNode, error) {
		if n, ok := prefetched[ref]; ok {
			return n, nil
		}
		return g.GetNode(ref)
	}), oldRoot, span, dirty, alloc)
}

// CloneRoot builds the single new node that makes blob B version 1 an
// alias of blob A's snapshot under srcRoot — Fig. 3(b) of the paper.
// For a leaf-rooted (single chunk) tree the clone shares the chunk key.
func CloneRoot(g Getter, srcRoot NodeRef, span int64, alloc func() NodeRef) (NodeRef, []NewNode, error) {
	if srcRoot == 0 {
		return 0, nil, nil // cloning an empty tree is an empty tree
	}
	src, err := g.GetNode(srcRoot)
	if err != nil {
		return 0, nil, err
	}
	if src.Lo != 0 || src.Hi != span {
		return 0, nil, fmt.Errorf("blob: clone source root covers [%d,%d), want [0,%d): %w", src.Lo, src.Hi, span, ErrCorruptTree)
	}
	ref := alloc()
	n := TreeNode{Lo: 0, Hi: span, Left: src.Left, Right: src.Right, Chunk: src.Chunk}
	return ref, []NewNode{{Ref: ref, Node: n}}, nil
}

// WalkReachable visits every tree node and chunk key reachable from
// root, pruning subtrees whose root the caller has already seen:
// visitNode returns false to stop descending (the ref was reached from
// another version's tree — shadowing and cloning share whole subtrees,
// so a mark phase over many roots visits each node exactly once).
// Sparse subtrees (ref 0) are skipped. This is the pure mark primitive
// of the snapshot garbage collector; like CollectLeaves it validates
// the range invariants as it walks, so corruption surfaces as an error
// instead of an under- or over-mark.
func WalkReachable(g Getter, root NodeRef, span int64, visitNode func(NodeRef) bool, visitChunk func(ChunkKey)) error {
	var walk func(ref NodeRef, nlo, nhi int64) error
	walk = func(ref NodeRef, nlo, nhi int64) error {
		if ref == 0 {
			return nil
		}
		if !visitNode(ref) {
			return nil
		}
		n, err := g.GetNode(ref)
		if err != nil {
			return err
		}
		if n.Lo != nlo || n.Hi != nhi {
			return fmt.Errorf("blob: node %d covers [%d,%d), expected [%d,%d): %w", ref, n.Lo, n.Hi, nlo, nhi, ErrCorruptTree)
		}
		if n.Leaf() {
			if n.Chunk != 0 {
				visitChunk(n.Chunk)
			}
			return nil
		}
		mid := (nlo + nhi) / 2
		if err := walk(n.Left, nlo, mid); err != nil {
			return err
		}
		return walk(n.Right, mid, nhi)
	}
	return walk(root, 0, span)
}
