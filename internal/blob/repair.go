package blob

import (
	"slices"
	"sort"

	"blobvfs/internal/cluster"
)

// This file is the data plane's half of the fault-injection subsystem
// (cluster/faults.go): when the liveness registry reports a provider
// transition, the set updates its liveness flags and re-replicates
// every chunk left under-replicated onto surviving providers, so a
// second failure does not take the last copy. Repair locations live in
// ProviderSet.repairs and are consulted by Get after the placement
// ring.

// NodeChanged is the cluster liveness hook: wire it with
// Liveness.OnChange. A death marks the provider failed, a revival
// brings its own chunks back into service; both are followed by a
// repair sweep (ReReplicate) — after a death the chunks the dead node
// held are under-replicated, and after a revival the freed capacity
// can host copies for chunks that could not be repaired while too few
// providers were up. The sweep registers the substitute locations
// under one lock acquisition immediately after the transition, so a
// read arriving after the listener ran already fails over to them; the
// copy transfers are then charged on the fabric. Non-provider nodes
// are ignored.
func (ps *ProviderSet) NodeChanged(ctx *cluster.Ctx, node cluster.NodeID, alive bool) {
	if _, ok := ps.alive[node]; !ok {
		return
	}
	if alive {
		ps.Revive(node)
	} else {
		ps.Kill(node)
	}
	ps.ReReplicate(ctx)
}

// repairJob is one pending chunk copy: pull size bytes of key from src
// onto dst.
type repairJob struct {
	key  ChunkKey
	size int32
	src  cluster.NodeID
	dst  cluster.NodeID
}

// ReReplicate restores the replication degree of every under-
// replicated stored chunk: for each chunk whose live location count
// (ring replicas that actually hold it, plus earlier substitutes)
// fell below the replication degree, new holders are chosen walking
// the placement ring — live nodes not already in the location set,
// void ring members first — until the degree is restored or no
// eligible provider remains. The substitutions are
// registered first (one lock acquisition, so reads fail over to them
// immediately), then the copies are charged: one puller activity per
// substitute provider, each pulling its chunks from the first
// surviving copy. Chunks whose last copy is already gone cannot be
// repaired and are skipped — the cohort sharing layer is then the only
// remaining source. Returns how many copies were created.
//
// Chunk order is sorted and puller order is ring order, so repair is
// deterministic regardless of map iteration.
func (ps *ProviderSet) ReReplicate(ctx *cluster.Ctx) int {
	ps.mu.Lock()
	keys := make([]ChunkKey, 0, len(ps.chunks))
	for key := range ps.chunks {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	perDst := make(map[cluster.NodeID][]repairJob)
	created := 0
	for _, key := range keys {
		ring := ps.Replicas(key)
		locs := ps.locationsLocked(key)
		live := make([]cluster.NodeID, 0, len(locs))
		for _, n := range locs {
			if ps.isAlive(n) {
				live = append(live, n)
			}
		}
		if len(live) == 0 || len(live) >= ps.replicas {
			continue
		}
		size := ps.chunks[key].Size
		src := live[0]
		// Walk the ring from the chunk's primary slot for substitutes.
		// A live ring replica that never got its copy (a void from a
		// degraded write) is backfilled first — it is the chunk's
		// rightful home; then live nodes outside the location set.
		n := len(ps.nodes)
		first := ps.primarySlot(key)
		for i := 0; i < n && len(live) < ps.replicas; i++ {
			cand := ps.nodes[(first+i)%n]
			if !ps.isAlive(cand) || containsProvider(locs, cand) {
				continue
			}
			if containsProvider(ring, cand) {
				// A void ring member receiving its copy stops being a
				// void — it is a ring location again.
				ps.voids[key] = removeProvider(ps.voids[key], cand)
				if len(ps.voids[key]) == 0 {
					delete(ps.voids, key)
				}
			} else {
				ps.repairs[key] = append(ps.repairs[key], cand)
			}
			locs = append(locs, cand)
			live = append(live, cand)
			perDst[cand] = append(perDst[cand], repairJob{key: key, size: size, src: src, dst: cand})
			created++
		}
	}
	ps.mu.Unlock()
	if created == 0 {
		return 0
	}
	ps.Rereplicated.Add(int64(created))

	// Charge the copies: one puller per substitute provider, in ring
	// order, each pulling its chunks sequentially from the surviving
	// source (disk read there, transfer over, local write-back here).
	tasks := make([]cluster.Task, 0, len(perDst))
	for _, dst := range ps.nodes {
		jobs := perDst[dst]
		if len(jobs) == 0 {
			continue
		}
		tasks = append(tasks, ctx.Go("rereplicate", dst, func(cc *cluster.Ctx) {
			for _, j := range jobs {
				cc.DiskRead(j.src, int64(j.size))
				cc.RPC(j.src, 32, int64(j.size))
				cc.DiskWriteAsync(j.dst, int64(j.size))
			}
		}))
	}
	ctx.WaitAll(tasks)
	return created
}

// LiveLocations returns the providers currently able to serve key —
// live ring replicas plus live repair copies — in failover order.
// Aliased keys resolve to their canonical chunk. It is a zero-cost
// inspection hook for invariant tests and diagnostics.
func (ps *ProviderSet) LiveLocations(key ChunkKey) []cluster.NodeID {
	ps.mu.RLock()
	if canon, ok := ps.aliases[key]; ok {
		key = canon
	}
	if _, ok := ps.chunks[key]; !ok {
		ps.mu.RUnlock()
		return nil
	}
	locs := ps.locationsLocked(key)
	ps.mu.RUnlock()
	out := make([]cluster.NodeID, 0, len(locs))
	for _, n := range locs {
		if ps.isAlive(n) {
			out = append(out, n)
		}
	}
	return out
}

func containsProvider(nodes []cluster.NodeID, n cluster.NodeID) bool {
	return slices.Contains(nodes, n)
}

// removeProvider deletes the first occurrence of n, in place.
func removeProvider(nodes []cluster.NodeID, n cluster.NodeID) []cluster.NodeID {
	if i := slices.Index(nodes, n); i >= 0 {
		return slices.Delete(nodes, i, i+1)
	}
	return nodes
}
