package blob

import (
	"testing"
	"testing/quick"
)

// mapStore is an in-memory Getter plus allocator for pure tree tests.
type mapStore struct {
	nodes map[NodeRef]TreeNode
	next  NodeRef
}

func newMapStore() *mapStore {
	return &mapStore{nodes: make(map[NodeRef]TreeNode)}
}

func (m *mapStore) GetNode(ref NodeRef) (TreeNode, error) {
	n, ok := m.nodes[ref]
	if !ok {
		return TreeNode{}, notFound("node", ref)
	}
	return n, nil
}

func (m *mapStore) alloc() NodeRef {
	m.next++
	return m.next
}

func (m *mapStore) commit(nodes []NewNode) {
	for _, nn := range nodes {
		m.nodes[nn.Ref] = nn.Node
	}
}

// buildFull creates a version with every chunk in [0,chunks) set to the
// given distinct keys and returns its root.
func buildFull(t *testing.T, m *mapStore, span int64, keys []ChunkKey) NodeRef {
	t.Helper()
	dirty := make([]DirtyLeaf, len(keys))
	for i, k := range keys {
		dirty[i] = DirtyLeaf{Index: int64(i), Chunk: k}
	}
	root, created, err := BuildVersion(m, 0, span, dirty, m.alloc)
	if err != nil {
		t.Fatalf("BuildVersion: %v", err)
	}
	m.commit(created)
	return root
}

func leavesOf(t *testing.T, m *mapStore, root NodeRef, span, lo, hi int64) []LeafEntry {
	t.Helper()
	ls, err := CollectLeaves(m, root, span, lo, hi)
	if err != nil {
		t.Fatalf("CollectLeaves: %v", err)
	}
	return ls
}

func TestSpan2(t *testing.T) {
	cases := map[int64]int64{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 8192: 8192}
	for in, want := range cases {
		if got := span2(in); got != want {
			t.Errorf("span2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBuildAndCollectFullTree(t *testing.T) {
	m := newMapStore()
	keys := []ChunkKey{101, 102, 103, 104}
	root := buildFull(t, m, 4, keys)
	ls := leavesOf(t, m, root, 4, 0, 4)
	if len(ls) != 4 {
		t.Fatalf("got %d leaves, want 4", len(ls))
	}
	for i, lf := range ls {
		if lf.Index != int64(i) || lf.Chunk != keys[i] {
			t.Fatalf("leaf %d = %+v, want index %d chunk %d", i, lf, i, keys[i])
		}
	}
	// A full binary tree over 4 leaves has 7 nodes.
	if len(m.nodes) != 7 {
		t.Fatalf("node count = %d, want 7", len(m.nodes))
	}
}

func TestCollectSubrangeAndSparse(t *testing.T) {
	m := newMapStore()
	// Only chunk 2 written in a span of 8.
	root, created, err := BuildVersion(m, 0, 8, []DirtyLeaf{{Index: 2, Chunk: 42}}, m.alloc)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(created)
	// Dirty path only: depth log2(8)+1 = 4 nodes.
	if len(created) != 4 {
		t.Fatalf("created %d nodes, want 4 (single root-leaf path)", len(created))
	}
	ls := leavesOf(t, m, root, 8, 0, 8)
	for _, lf := range ls {
		want := ChunkKey(0)
		if lf.Index == 2 {
			want = 42
		}
		if lf.Chunk != want {
			t.Fatalf("leaf %d chunk = %d, want %d", lf.Index, lf.Chunk, want)
		}
	}
	// Subrange queries return exactly the requested window.
	ls = leavesOf(t, m, root, 8, 3, 6)
	if len(ls) != 3 || ls[0].Index != 3 || ls[2].Index != 5 {
		t.Fatalf("subrange leaves = %+v, want indices 3..5", ls)
	}
}

func TestCollectLeavesEmptyTree(t *testing.T) {
	m := newMapStore()
	ls := leavesOf(t, m, 0, 16, 4, 8)
	if len(ls) != 4 {
		t.Fatalf("got %d leaves, want 4 sparse entries", len(ls))
	}
	for _, lf := range ls {
		if lf.Chunk != 0 {
			t.Fatalf("empty tree leaf %d has chunk %d", lf.Index, lf.Chunk)
		}
	}
}

func TestCollectLeavesRangeValidation(t *testing.T) {
	m := newMapStore()
	if _, err := CollectLeaves(m, 0, 8, -1, 4); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := CollectLeaves(m, 0, 8, 0, 9); err == nil {
		t.Error("hi beyond span accepted")
	}
	if _, err := CollectLeaves(m, 0, 8, 5, 4); err == nil {
		t.Error("lo > hi accepted")
	}
}

func TestBuildVersionValidation(t *testing.T) {
	m := newMapStore()
	if _, _, err := BuildVersion(m, 0, 4, []DirtyLeaf{{Index: 4, Chunk: 1}}, m.alloc); err == nil {
		t.Error("out-of-span dirty index accepted")
	}
	if _, _, err := BuildVersion(m, 0, 4, []DirtyLeaf{{Index: 1, Chunk: 1}, {Index: 1, Chunk: 2}}, m.alloc); err == nil {
		t.Error("duplicate dirty index accepted")
	}
	if _, _, err := BuildVersion(m, 0, 4, []DirtyLeaf{{Index: 2, Chunk: 1}, {Index: 1, Chunk: 2}}, m.alloc); err == nil {
		t.Error("unsorted dirty indices accepted")
	}
	root, created, err := BuildVersion(m, 77, 4, nil, m.alloc)
	if err != nil || root != 77 || created != nil {
		t.Errorf("empty dirty set: got (%d,%v,%v), want (77,nil,nil)", root, created, err)
	}
}

// TestFig3Shadowing reproduces Fig. 3(c): committing chunk C2' on a
// 4-chunk image creates exactly the 3 nodes of one root-leaf path, and
// the (2,4) subtree is shared with the previous version.
func TestFig3Shadowing(t *testing.T) {
	m := newMapStore()
	rootA := buildFull(t, m, 4, []ChunkKey{1, 2, 3, 4})
	before := len(m.nodes)

	rootA2, created, err := BuildVersion(m, rootA, 4, []DirtyLeaf{{Index: 1, Chunk: 22}}, m.alloc)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(created)
	if len(created) != 3 {
		t.Fatalf("created %d nodes, want 3 (root + inner + leaf)", len(created))
	}
	if len(m.nodes) != before+3 {
		t.Fatalf("store grew by %d, want 3", len(m.nodes)-before)
	}
	// The new root's right child must be the old root's right child.
	oldRoot, _ := m.GetNode(rootA)
	newRoot, _ := m.GetNode(rootA2)
	if newRoot.Right != oldRoot.Right {
		t.Fatalf("right subtree not shared: old %d, new %d", oldRoot.Right, newRoot.Right)
	}
	if newRoot.Left == oldRoot.Left {
		t.Fatal("left subtree unexpectedly shared despite dirty chunk 1")
	}
	// Old version still reads its original chunks.
	for i, lf := range leavesOf(t, m, rootA, 4, 0, 4) {
		if lf.Chunk != ChunkKey(i+1) {
			t.Fatalf("old version leaf %d = %d, want %d (isolation violated)", i, lf.Chunk, i+1)
		}
	}
	// New version reads the updated chunk 1 and shares the rest.
	want := []ChunkKey{1, 22, 3, 4}
	for i, lf := range leavesOf(t, m, rootA2, 4, 0, 4) {
		if lf.Chunk != want[i] {
			t.Fatalf("new version leaf %d = %d, want %d", i, lf.Chunk, want[i])
		}
	}
}

// TestFig3Clone reproduces Fig. 3(b): cloning creates exactly one new
// node whose children are shared with the source snapshot.
func TestFig3Clone(t *testing.T) {
	m := newMapStore()
	rootA := buildFull(t, m, 4, []ChunkKey{1, 2, 3, 4})
	before := len(m.nodes)

	rootB, created, err := CloneRoot(m, rootA, 4, m.alloc)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(created)
	if len(created) != 1 || len(m.nodes) != before+1 {
		t.Fatalf("clone created %d nodes, want exactly 1", len(created))
	}
	a, _ := m.GetNode(rootA)
	b, _ := m.GetNode(rootB)
	if b.Left != a.Left || b.Right != a.Right {
		t.Fatalf("clone root children (%d,%d) != source (%d,%d)", b.Left, b.Right, a.Left, a.Right)
	}
	// Clone reads identically to the source.
	la := leavesOf(t, m, rootA, 4, 0, 4)
	lb := leavesOf(t, m, rootB, 4, 0, 4)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("clone leaf %d = %+v, want %+v", i, lb[i], la[i])
		}
	}
}

func TestCloneEmptyTree(t *testing.T) {
	m := newMapStore()
	root, created, err := CloneRoot(m, 0, 8, m.alloc)
	if err != nil || root != 0 || created != nil {
		t.Fatalf("clone of empty tree: got (%d,%v,%v), want (0,nil,nil)", root, created, err)
	}
}

func TestCloneThenDivergence(t *testing.T) {
	// Fig. 3(b)+(c) combined: clone A→B, then commit twice on B; A is
	// untouched and B's second commit shares B's first commit's nodes.
	m := newMapStore()
	rootA := buildFull(t, m, 4, []ChunkKey{1, 2, 3, 4})
	rootB1, created, err := CloneRoot(m, rootA, 4, m.alloc)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(created)
	rootB2, created, err := BuildVersion(m, rootB1, 4, []DirtyLeaf{{Index: 1, Chunk: 22}, {Index: 2, Chunk: 33}}, m.alloc)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(created)
	rootB3, created, err := BuildVersion(m, rootB2, 4, []DirtyLeaf{{Index: 3, Chunk: 44}}, m.alloc)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(created)
	if len(created) != 3 {
		t.Fatalf("third commit created %d nodes, want 3", len(created))
	}

	check := func(root NodeRef, want []ChunkKey) {
		t.Helper()
		for i, lf := range leavesOf(t, m, root, 4, 0, 4) {
			if lf.Chunk != want[i] {
				t.Fatalf("root %d leaf %d = %d, want %d", root, i, lf.Chunk, want[i])
			}
		}
	}
	check(rootA, []ChunkKey{1, 2, 3, 4})
	check(rootB1, []ChunkKey{1, 2, 3, 4})
	check(rootB2, []ChunkKey{1, 22, 33, 4})
	check(rootB3, []ChunkKey{1, 22, 33, 44})
}

// TestTreeMatchesFlatModel drives random commit sequences against a
// flat per-version chunk map and checks that every historical version
// still reads exactly as the model says (shadowing preserves history).
func TestTreeMatchesFlatModel(t *testing.T) {
	type op struct {
		Indices []uint16
	}
	f := func(ops []op, spanPow uint8) bool {
		span := int64(1) << (spanPow%6 + 1) // 2..64
		m := newMapStore()
		var nextKey ChunkKey
		model := make([]map[int64]ChunkKey, 0) // one map per version
		roots := make([]NodeRef, 0)
		cur := map[int64]ChunkKey{}
		root := NodeRef(0)
		for _, o := range ops {
			if len(o.Indices) == 0 {
				continue
			}
			seen := map[int64]bool{}
			var dirty []DirtyLeaf
			newCur := make(map[int64]ChunkKey, len(cur))
			for k, v := range cur {
				newCur[k] = v
			}
			for _, raw := range o.Indices {
				idx := int64(raw) % span
				if seen[idx] {
					continue
				}
				seen[idx] = true
				nextKey++
				dirty = append(dirty, DirtyLeaf{Index: idx, Chunk: nextKey})
				newCur[idx] = nextKey
			}
			sortDirty(dirty)
			newRoot, created, err := BuildVersion(m, root, span, dirty, m.alloc)
			if err != nil {
				return false
			}
			m.commit(created)
			root, cur = newRoot, newCur
			roots = append(roots, root)
			model = append(model, newCur)
		}
		// Every version must match its model snapshot.
		for v := range roots {
			ls, err := CollectLeaves(m, roots[v], span, 0, span)
			if err != nil {
				return false
			}
			for _, lf := range ls {
				if lf.Chunk != model[v][lf.Index] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func sortDirty(d []DirtyLeaf) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j-1].Index > d[j].Index; j-- {
			d[j-1], d[j] = d[j], d[j-1]
		}
	}
}

// TestMetadataSharingIsLogarithmic checks the core scaling claim: a
// single-chunk commit on a large image creates O(log chunks) metadata,
// not O(chunks).
func TestMetadataSharingIsLogarithmic(t *testing.T) {
	m := newMapStore()
	const span = 8192 // 2 GB / 256 KB
	keys := make([]ChunkKey, span)
	for i := range keys {
		keys[i] = ChunkKey(i + 1)
	}
	root := buildFull(t, m, span, keys)
	_, created, err := BuildVersion(m, root, span, []DirtyLeaf{{Index: 4096, Chunk: 99999}}, m.alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 14 { // log2(8192)+1 path nodes
		t.Fatalf("single-chunk commit created %d nodes, want 14", len(created))
	}
}
