package blob

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"blobvfs/internal/cluster"
)

// liveSystem deploys a System over a live fabric of n nodes with the
// version manager on node 0 and all nodes as providers.
func liveSystem(n, replicas int) (*cluster.Live, *System) {
	fab := cluster.NewLive(n)
	provs := make([]cluster.NodeID, n)
	for i := range provs {
		provs[i] = cluster.NodeID(i)
	}
	return fab, NewSystem(provs, 0, replicas)
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*7)
	}
	return b
}

func TestCreateWriteRead(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, err := c.Create(ctx, 1<<20, 64<<10)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		data := pattern(1<<20, 3)
		v, err := c.WriteAt(ctx, id, 0, data, 0)
		if err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		if v != 1 {
			t.Fatalf("first version = %d, want 1", v)
		}
		got := make([]byte, 1<<20)
		if err := c.ReadAt(ctx, id, v, got, 0); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("read back != written")
		}
	})
}

func TestUnalignedWritesReadModifyWrite(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 1000, 100)
		base := pattern(1000, 1)
		v1, err := c.WriteAt(ctx, id, 0, base, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Overwrite [150, 370): crosses three chunks, none aligned.
		patch := pattern(220, 9)
		v2, err := c.WriteAt(ctx, id, v1, patch, 150)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), base...)
		copy(want[150:], patch)
		got := make([]byte, 1000)
		if err := c.ReadAt(ctx, id, v2, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("v2 contents wrong after unaligned overwrite")
		}
		// v1 unchanged (shadowing).
		if err := c.ReadAt(ctx, id, v1, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatal("v1 changed by later write")
		}
	})
}

func TestSparseReadsAsZeros(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 500, 100)
		// Write only chunk 2.
		v, err := c.WriteChunks(ctx, id, 0, []ChunkWrite{{Index: 2, Payload: RealPayload(pattern(100, 5))}})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 500)
		if err := c.ReadAt(ctx, id, v, got, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if got[i] != 0 {
				t.Fatalf("byte %d = %d, want 0 (sparse)", i, got[i])
			}
		}
		if !bytes.Equal(got[200:300], pattern(100, 5)) {
			t.Fatal("written chunk wrong")
		}
		for i := 300; i < 500; i++ {
			if got[i] != 0 {
				t.Fatalf("byte %d = %d, want 0 (sparse)", i, got[i])
			}
		}
	})
}

func TestCloneSharesContentAndDiverges(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 400, 100)
		base := pattern(400, 2)
		v1, _ := c.WriteAt(ctx, id, 0, base, 0)

		chunksBefore := sys.Providers.ChunkCount()
		clone, err := c.Clone(ctx, id, v1)
		if err != nil {
			t.Fatalf("Clone: %v", err)
		}
		if sys.Providers.ChunkCount() != chunksBefore {
			t.Fatal("clone duplicated chunk data")
		}
		cv, err := c.Latest(ctx, clone)
		if err != nil || cv != 1 {
			t.Fatalf("clone latest = %d,%v; want 1", cv, err)
		}
		got := make([]byte, 400)
		if err := c.ReadAt(ctx, clone, 1, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatal("clone contents differ from source")
		}
		// Diverge the clone; the original must not change.
		patch := pattern(100, 77)
		cv2, err := c.WriteAt(ctx, clone, 1, patch, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ReadAt(ctx, clone, cv2, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[100:200], patch) {
			t.Fatal("clone write lost")
		}
		if err := c.ReadAt(ctx, id, v1, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatal("source changed by clone write")
		}
	})
}

func TestSnapshotsShareUnmodifiedChunks(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		const size, cs = 10 << 20, 256 << 10 // 40 chunks
		id, _ := c.Create(ctx, size, cs)
		v := Version(0)
		var err error
		v, err = c.WriteFull(ctx, id, v, 1)
		if err != nil {
			t.Fatal(err)
		}
		full := sys.Providers.ChunkCount()
		// Ten successive 1-chunk snapshots: storage grows by 1 chunk each.
		for i := 0; i < 10; i++ {
			v, err = c.WriteChunks(ctx, id, v, []ChunkWrite{
				{Index: int64(i), Payload: SyntheticPayload(cs, uint64(100+i))},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if got := sys.Providers.ChunkCount(); got != full+10 {
			t.Fatalf("chunk count = %d, want %d (one new chunk per snapshot)", got, full+10)
		}
		if pub := sys.VM.Published(id); pub != 11 {
			t.Fatalf("published versions = %d, want 11", pub)
		}
	})
}

func TestWriteChunksValidation(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 400, 100)
		if _, err := c.WriteChunks(ctx, id, 0, nil); err == nil {
			t.Error("empty write set accepted")
		}
		if _, err := c.WriteChunks(ctx, id, 0, []ChunkWrite{{Index: 4, Payload: SyntheticPayload(100, 0)}}); err == nil {
			t.Error("out-of-range chunk accepted")
		}
		if _, err := c.WriteChunks(ctx, id, 0, []ChunkWrite{
			{Index: 1, Payload: SyntheticPayload(100, 0)},
			{Index: 1, Payload: SyntheticPayload(100, 1)},
		}); err == nil {
			t.Error("duplicate chunk accepted")
		}
		if _, err := c.WriteChunks(ctx, id, 0, []ChunkWrite{{Index: 0, Payload: SyntheticPayload(200, 0)}}); err == nil {
			t.Error("oversized payload accepted")
		}
	})
}

func TestReadValidation(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 400, 100)
		v, _ := c.WriteFull(ctx, id, 0, 1)
		buf := make([]byte, 100)
		if err := c.ReadAt(ctx, id, v, buf, 350); err == nil {
			t.Error("read past end accepted")
		}
		if err := c.ReadAt(ctx, id, v, buf, -1); err == nil {
			t.Error("negative offset accepted")
		}
		if err := c.ReadAt(ctx, id, v+1, buf, 0); err == nil {
			t.Error("unknown version accepted")
		}
		if err := c.ReadAt(ctx, 999, 1, buf, 0); err == nil {
			t.Error("unknown blob accepted")
		}
		if err := c.ReadAt(ctx, id, v, nil, 0); err != nil {
			t.Errorf("zero-length read failed: %v", err)
		}
	})
}

func TestVersionTotalOrderUnderConcurrentCommits(t *testing.T) {
	// Many goroutines commit to the same blob concurrently on the live
	// fabric; published versions must be a gapless sequence and every
	// version must be readable.
	fab, sys := liveSystem(8, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 1<<20, 64<<10)
		v1, _ := c.WriteFull(ctx, id, 0, 1)
		const writers = 16
		var tasks []cluster.Task
		for w := 0; w < writers; w++ {
			w := w
			tasks = append(tasks, ctx.Go("w", cluster.NodeID(w%8), func(cc *cluster.Ctx) {
				cw := NewClient(sys)
				_, err := cw.WriteChunks(cc, id, v1, []ChunkWrite{
					{Index: int64(w), Payload: SyntheticPayload(64<<10, uint64(w))},
				})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
				}
			}))
		}
		ctx.WaitAll(tasks)
		if pub := sys.VM.Published(id); pub != 1+writers {
			t.Fatalf("published = %d, want %d", pub, 1+writers)
		}
		for v := Version(1); v <= Version(1+writers); v++ {
			if _, err := sys.VM.Root(ctx, id, v); err != nil {
				t.Fatalf("version %d unreadable: %v", v, err)
			}
		}
	})
}

func TestReplicationSurvivesProviderFailure(t *testing.T) {
	fab, sys := liveSystem(4, 2)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 1<<20, 64<<10)
		data := pattern(1<<20, 8)
		v, err := c.WriteAt(ctx, id, 0, data, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Kill two non-adjacent providers; every chunk keeps >= 1 replica
		// because replicas land on consecutive nodes.
		sys.Providers.Kill(0)
		sys.Providers.Kill(2)
		got := make([]byte, 1<<20)
		if err := c.ReadAt(ctx, id, v, got, 0); err != nil {
			t.Fatalf("read after failures: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("data corrupted after provider failure")
		}
	})
}

func TestNoReplicationFailsAfterProviderLoss(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 200, 100)
		v, _ := c.WriteAt(ctx, id, 0, pattern(200, 1), 0)
		sys.Providers.Kill(0)
		sys.Providers.Kill(1)
		buf := make([]byte, 200)
		if err := c.ReadAt(ctx, id, v, buf, 0); err == nil {
			t.Fatal("read succeeded with all providers dead")
		}
		sys.Providers.Revive(0)
		sys.Providers.Revive(1)
		if err := c.ReadAt(ctx, id, v, buf, 0); err != nil {
			t.Fatalf("read after revival: %v", err)
		}
	})
}

func TestRoundRobinPlacementSpreadsChunks(t *testing.T) {
	ps := NewProviderSet([]cluster.NodeID{0, 1, 2, 3}, 1)
	counts := make(map[cluster.NodeID]int)
	for i := 0; i < 400; i++ {
		key := ps.AllocKey()
		counts[ps.Replicas(key)[0]]++
	}
	for n, c := range counts {
		if c != 100 {
			t.Fatalf("provider %d holds %d primaries, want 100 (round-robin)", n, c)
		}
	}
}

func TestReplicasAreDistinctNodes(t *testing.T) {
	ps := NewProviderSet([]cluster.NodeID{0, 1, 2, 3, 4}, 3)
	for i := 0; i < 50; i++ {
		reps := ps.Replicas(ps.AllocKey())
		seen := map[cluster.NodeID]bool{}
		for _, r := range reps {
			if seen[r] {
				t.Fatalf("replica list %v has duplicates", reps)
			}
			seen[r] = true
		}
	}
}

// TestBlobMatchesReferenceModel is the package's end-to-end property
// test: random interleavings of WriteAt/Clone against a flat reference
// of full image contents per (blob, version).
func TestBlobMatchesReferenceModel(t *testing.T) {
	type wop struct {
		Off, Len uint16
		Seed     byte
		Clone    bool
	}
	const size, cs = 4096, 512
	f := func(ops []wop) bool {
		fab, sys := liveSystem(3, 1)
		ok := true
		fab.Run(func(ctx *cluster.Ctx) {
			c := NewClient(sys)
			type snap struct {
				id  ID
				v   Version
				img []byte
			}
			id0, err := c.Create(ctx, size, cs)
			if err != nil {
				ok = false
				return
			}
			v0, err := c.WriteAt(ctx, id0, 0, pattern(size, 0), 0)
			if err != nil {
				ok = false
				return
			}
			snaps := []snap{{id0, v0, pattern(size, 0)}}
			heads := map[ID]snap{id0: snaps[0]}
			for _, o := range ops {
				if len(snaps) > 24 {
					break
				}
				if o.Clone {
					src := snaps[int(o.Seed)%len(snaps)]
					nid, err := c.Clone(ctx, src.id, src.v)
					if err != nil {
						ok = false
						return
					}
					ns := snap{nid, 1, append([]byte(nil), src.img...)}
					snaps = append(snaps, ns)
					heads[nid] = ns
					continue
				}
				// Pick a blob head and overwrite a random range.
				var hs []snap
				for _, h := range heads {
					hs = append(hs, h)
				}
				// map order: normalize by choosing min id for determinism
				// of the test body itself (quick feeds the randomness).
				hmin := hs[0]
				for _, h := range hs {
					if h.id < hmin.id {
						hmin = h
					}
				}
				h := hmin
				off := int64(o.Off) % size
				l := int(o.Len)%1024 + 1
				if off+int64(l) > size {
					l = int(size - off)
				}
				data := pattern(l, o.Seed|1)
				nv, err := c.WriteAt(ctx, h.id, h.v, data, off)
				if err != nil {
					ok = false
					return
				}
				img := append([]byte(nil), h.img...)
				copy(img[off:], data)
				ns := snap{h.id, nv, img}
				snaps = append(snaps, ns)
				heads[h.id] = ns
			}
			// Verify every snapshot ever taken, in full.
			buf := make([]byte, size)
			for _, s := range snaps {
				if err := c.ReadAt(ctx, s.id, s.v, buf, 0); err != nil {
					ok = false
					return
				}
				if !bytes.Equal(buf, s.img) {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestErrNotFoundMessage(t *testing.T) {
	err := notFound("blob", ID(7))
	if err.Error() != "blob: blob 7 not found" {
		t.Fatalf("message = %q", err.Error())
	}
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatal("not a *NotFoundError")
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatal("does not unwrap to ErrNotFound")
	}
}

func TestSimFabricSmokeTest(t *testing.T) {
	// The full blob stack on the sim fabric: 16 nodes concurrently read
	// a striped image; time must advance and traffic must be counted.
	cfg := cluster.DefaultConfig(16)
	fab := cluster.NewSim(cfg)
	provs := make([]cluster.NodeID, 16)
	for i := range provs {
		provs[i] = cluster.NodeID(i)
	}
	sys := NewSystem(provs, 0, 1)
	const size = 64 << 20
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, size, 256<<10)
		v, err := c.WriteFull(ctx, id, 0, 1)
		if err != nil {
			t.Fatalf("upload: %v", err)
		}
		upload := ctx.Now()
		if upload <= 0 {
			t.Fatal("upload took no virtual time")
		}
		var tasks []cluster.Task
		for n := 0; n < 16; n++ {
			node := cluster.NodeID(n)
			tasks = append(tasks, ctx.Go("reader", node, func(cc *cluster.Ctx) {
				rc := NewClient(sys)
				if _, err := rc.FetchChunks(cc, id, v, 0, 64); err != nil {
					t.Errorf("fetch: %v", err)
				}
			}))
		}
		ctx.WaitAll(tasks)
	})
	if fab.NetTraffic() <= size {
		t.Fatalf("traffic = %d, want > image size %d", fab.NetTraffic(), size)
	}
	if fab.Now() <= 0 {
		t.Fatal(fmt.Sprintf("virtual clock = %v, want > 0", fab.Now()))
	}
}
