package blob

import (
	"errors"
	"fmt"
)

// The package's error taxonomy: every failure path wraps one of these
// sentinels with %w, so callers — including the public blobvfs façade,
// which re-exports them — can branch with errors.Is/errors.As without
// ever matching message text.
var (
	// ErrNotFound reports a missing blob, version, metadata node or
	// chunk. Structured detail (what kind of object, which one) rides
	// along as *NotFoundError.
	ErrNotFound = errors.New("not found")

	// ErrOutOfRange reports an offset, length, chunk index or version
	// number outside the addressed object's bounds.
	ErrOutOfRange = errors.New("out of range")

	// ErrVersionRetired reports an access to a version that was
	// logically deleted by retirement: it existed, but retention removed
	// it and its storage is (or will be) reclaimed.
	ErrVersionRetired = errors.New("version retired")

	// ErrVersionPinned reports an attempt to retire a version something
	// still holds open. Structured detail rides along as *PinnedError.
	ErrVersionPinned = errors.New("version pinned")

	// ErrAlreadyPublished reports a publication of a version number that
	// is already visible.
	ErrAlreadyPublished = errors.New("already published")

	// ErrCorruptTree reports a segment-tree invariant violation — a node
	// whose recorded range disagrees with its position, or a leaf where
	// an inner node must be.
	ErrCorruptTree = errors.New("corrupt metadata tree")

	// ErrInvalidWrite reports a malformed write set: empty, duplicate
	// chunk indices, unsorted dirty leaves, or oversized payloads.
	ErrInvalidWrite = errors.New("invalid write set")

	// ErrNoReplica reports that no live provider replica could serve a
	// chunk operation (all replicas of its placement group are down).
	ErrNoReplica = errors.New("no live replica")
)

// NotFoundError carries the kind ("blob", "version", "metadata node",
// "chunk") and identity of a missing object. It wraps ErrNotFound.
type NotFoundError struct {
	Kind string
	What any
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("blob: %s %v not found", e.Kind, e.What)
}

// Unwrap makes errors.Is(err, ErrNotFound) true for every miss.
func (e *NotFoundError) Unwrap() error { return ErrNotFound }

// notFound builds a *NotFoundError.
func notFound(kind string, what any) error { return &NotFoundError{Kind: kind, What: what} }

// retired builds the error for an access to a retired version.
func retired(id ID, v Version) error {
	return fmt.Errorf("blob: version %d@%d: %w", id, v, ErrVersionRetired)
}
