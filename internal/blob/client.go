package blob

import (
	"fmt"
	"sort"
	"sync"

	"blobvfs/internal/cluster"
)

// System bundles the three BlobSeer services. One System is deployed
// per cluster; any number of clients attach to it.
type System struct {
	Meta      *MetaService
	VM        *VersionManager
	Providers *ProviderSet
}

// NewSystem deploys the storage service over the given provider nodes
// (used for both data and metadata, aggregating the compute nodes'
// local disks per §3.1.1) with the version manager on vmNode.
func NewSystem(providers []cluster.NodeID, vmNode cluster.NodeID, replicas int) *System {
	return &System{
		Meta:      NewMetaService(providers),
		VM:        NewVersionManager(vmNode),
		Providers: NewProviderSet(providers, replicas),
	}
}

// clientParallel bounds a client's concurrent chunk transfers, modeling
// its connection pool. Parallel work is assigned round-robin so runs
// are deterministic.
const clientParallel = 16

// nodeCacheShards stripes the client's tree-node cache so the
// clientParallel concurrent fetchers (plus a prefetcher) it feeds
// never serialize on one mutex. Power of two; refs are sequential, so
// masking spreads them evenly.
const nodeCacheShards = 16

type nodeCacheShard struct {
	mu sync.RWMutex
	m  map[NodeRef]TreeNode
}

// Client is a BlobSeer access library instance. Tree nodes and blob
// geometry are immutable, so the client caches them without any
// invalidation protocol; this is what makes metadata overhead drop
// sharply after first access, as in the real system.
//
// The caches are built for concurrent readers: the node cache is
// hash-striped with shared locks on the read path, cold fetches of the
// same ref are deduplicated through singleflight, and fully resolved
// [lo,hi) ranges are kept in a per-version extent cache (extents.go)
// that lets repeated reads of a deployed snapshot skip tree descent
// entirely.
type Client struct {
	sys    *System
	sharer ChunkSharer // optional p2p chunk source (see sharing.go)

	// writeBatching switches WriteChunks to the batched commit path:
	// chunk payloads grouped into one provider RPC per provider per
	// round (ProviderSet.PutBatch), the shadowed tree built with
	// level-order batched fetches of the old nodes (BuildVersionBatched)
	// overlapped with the chunk publish. Off by default — the unbatched
	// path's costs are pinned byte-identically by the figure scenarios.
	writeBatching bool

	nodeCache [nodeCacheShards]nodeCacheShard

	infoMu sync.RWMutex
	infos  map[ID]Info

	// Singleflight groups (flight.go): concurrent cold misses on the
	// same tree node, blob info, or whole-image prefetch share one
	// fetch instead of each paying the RPC.
	nodeFlights *flightGroup[NodeRef, TreeNode]
	infoFlights *flightGroup[ID, Info]
	prefFlights *flightGroup[extentKey, struct{}]

	extents *extentCache
}

// NewClient attaches a client to a system.
func NewClient(sys *System) *Client {
	c := &Client{
		sys:         sys,
		infos:       make(map[ID]Info),
		nodeFlights: newFlightGroup[NodeRef, TreeNode](),
		infoFlights: newFlightGroup[ID, Info](),
		prefFlights: newFlightGroup[extentKey, struct{}](),
		extents:     newExtentCache(),
	}
	for i := range c.nodeCache {
		c.nodeCache[i].m = make(map[NodeRef]TreeNode)
	}
	return c
}

// System returns the system this client is attached to.
func (c *Client) System() *System { return c.sys }

func (c *Client) nodeShard(ref NodeRef) *nodeCacheShard {
	return &c.nodeCache[uint64(ref)&(nodeCacheShards-1)]
}

func (c *Client) cachedNode(ref NodeRef) (TreeNode, bool) {
	sh := c.nodeShard(ref)
	sh.mu.RLock()
	n, ok := sh.m[ref]
	sh.mu.RUnlock()
	return n, ok
}

func (c *Client) storeNode(ref NodeRef, n TreeNode) {
	sh := c.nodeShard(ref)
	sh.mu.Lock()
	sh.m[ref] = n
	sh.mu.Unlock()
}

// Info returns blob geometry, cached after the first fetch. Concurrent
// first fetches of the same blob share one RPC.
func (c *Client) Info(ctx *cluster.Ctx, id ID) (Info, error) {
	c.infoMu.RLock()
	inf, ok := c.infos[id]
	c.infoMu.RUnlock()
	if ok {
		return inf, nil
	}
	return c.infoFlights.do(ctx, id,
		func() (Info, bool) {
			c.infoMu.RLock()
			inf, ok := c.infos[id]
			c.infoMu.RUnlock()
			return inf, ok
		},
		func() (Info, error) {
			inf, err := c.sys.VM.Info(ctx, id)
			if err == nil {
				c.infoMu.Lock()
				c.infos[id] = inf
				c.infoMu.Unlock()
			}
			return inf, err
		})
}

// getNode fetches a metadata node through the cache. Concurrent cold
// misses on the same ref are coalesced into one RPC.
func (c *Client) getNode(ctx *cluster.Ctx, ref NodeRef) (TreeNode, error) {
	if n, ok := c.cachedNode(ref); ok {
		return n, nil
	}
	return c.nodeFlights.do(ctx, ref,
		func() (TreeNode, bool) { return c.cachedNode(ref) },
		func() (TreeNode, error) {
			n, err := c.sys.Meta.Get(ctx, ref)
			if err == nil {
				c.storeNode(ref, n)
			}
			return n, err
		})
}

// getNodes resolves a batch of refs through the cache: cached refs are
// free, refs another activity is already fetching are joined, and the
// remaining cold refs go to the metadata service as one GetBatch (one
// RPC per distinct home provider). The result is aligned with refs;
// missing refs produce the same not-found error Get reports.
func (c *Client) getNodes(ctx *cluster.Ctx, refs []NodeRef) ([]TreeNode, error) {
	out := make([]TreeNode, len(refs))
	var missIdx []int
	for i, ref := range refs {
		if n, ok := c.cachedNode(ref); ok {
			out[i] = n
		} else {
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) == 0 {
		return out, nil
	}

	// Partition the misses under one group-lock acquisition: flights
	// this call will lead (mine) vs flights led by another activity
	// (theirs, joined through their gates after our own batch is out).
	var mine []NodeRef
	var mineIdx []int
	var mineFlights []*flight[TreeNode]
	var theirIdx []int
	var theirGates []*cluster.Gate
	var theirs []*flight[TreeNode]
	c.nodeFlights.mu.Lock()
	for _, i := range missIdx {
		ref := refs[i]
		if n, ok := c.cachedNode(ref); ok {
			out[i] = n
			continue
		}
		if f, ok := c.nodeFlights.flights[ref]; ok {
			theirIdx = append(theirIdx, i)
			theirGates = append(theirGates, f.follow())
			theirs = append(theirs, f)
			continue
		}
		f := &flight[TreeNode]{}
		c.nodeFlights.flights[ref] = f
		mine = append(mine, ref)
		mineIdx = append(mineIdx, i)
		mineFlights = append(mineFlights, f)
	}
	c.nodeFlights.mu.Unlock()

	var firstErr error
	if len(mine) > 0 {
		nodes := make([]TreeNode, len(mine))
		err := c.sys.Meta.GetBatchInto(ctx, mine, nodes)
		for j, ref := range mine {
			f := mineFlights[j]
			if err != nil && !nodes[j].valid() {
				// Only the refs the service actually misses fail; a
				// flight for a present ref — possibly a subtree shared
				// with a live version — must not be poisoned by a
				// sibling lost to a GC race.
				f.err = notFound("metadata node", ref)
				if firstErr == nil {
					firstErr = f.err
				}
				continue
			}
			f.val = nodes[j]
			c.storeNode(ref, nodes[j])
			out[mineIdx[j]] = nodes[j]
		}
		c.nodeFlights.finishAll(ctx, mine, mineFlights)
	}
	for j, f := range theirs {
		theirGates[j].Wait(ctx)
		if f.err != nil {
			if firstErr == nil {
				firstErr = f.err
			}
			continue
		}
		out[theirIdx[j]] = f.val
	}
	return out, firstErr
}

// cacheNew primes the cache with nodes this client just created.
func (c *Client) cacheNew(nodes []NewNode) {
	for _, nn := range nodes {
		c.storeNode(nn.Ref, nn.Node)
	}
}

// pendingAllocator returns a node-ref allocator that registers every
// ref as pending (exempt from GC sweeps while the version is in
// flight) and a done function that clears the marks once the version
// is published or the operation abandoned.
func (c *Client) pendingAllocator() (alloc func() NodeRef, done func()) {
	var refs []NodeRef
	alloc = func() NodeRef {
		r := c.sys.Meta.AllocPendingRef()
		refs = append(refs, r)
		return r
	}
	done = func() { c.sys.Meta.ClearPending(refs) }
	return alloc, done
}

// boundGetter adapts the client's caches to the segment-tree getter
// interfaces; CollectLeaves detects the BatchGetter side and descends
// level by level, one batched metadata round per level.
type boundGetter struct {
	c   *Client
	ctx *cluster.Ctx
}

func (g boundGetter) GetNode(ref NodeRef) (TreeNode, error) { return g.c.getNode(g.ctx, ref) }

func (g boundGetter) GetNodes(refs []NodeRef) ([]TreeNode, error) {
	return g.c.getNodes(g.ctx, refs)
}

// Create registers a new blob of the given size and chunk size. The
// blob has no published versions until the first WriteChunks.
func (c *Client) Create(ctx *cluster.Ctx, size int64, chunkSize int) (ID, error) {
	return c.sys.VM.CreateBlob(ctx, size, chunkSize)
}

// Latest returns the newest published version of the blob (0 if none).
func (c *Client) Latest(ctx *cluster.Ctx, id ID) (Version, error) {
	return c.sys.VM.Latest(ctx, id)
}

// PinVersion pins snapshot (id, v) against retirement and garbage
// collection; long-lived holders (the mirroring module, for as long as
// an image is open) pin what they read from. See VersionManager.Pin.
func (c *Client) PinVersion(id ID, v Version) error {
	return c.sys.VM.Pin(id, v)
}

// UnpinVersion releases a pin taken with PinVersion.
func (c *Client) UnpinVersion(id ID, v Version) {
	c.sys.VM.Unpin(id, v)
}

// Retire retires snapshot (id, v) at the version manager, making its
// exclusive storage reclaimable by the next collection. Callers that
// create a version and then fail to adopt it (the mirroring module's
// CLONE error path) use this to avoid leaking a zombie blob.
func (c *Client) Retire(ctx *cluster.Ctx, id ID, v Version) error {
	return c.sys.VM.Retire(ctx, id, v)
}

// SetWriteBatching toggles the batched commit path (see the
// writeBatching field). Flip it before issuing writes.
func (c *Client) SetWriteBatching(on bool) { c.writeBatching = on }

// ChunkWrite names a chunk index and its new payload for WriteChunks.
type ChunkWrite struct {
	Index   int64
	Payload Payload
}

// WriteChunks is the COMMIT data path: it stores the given chunk
// payloads on the providers (bounded-parallel), builds the shadowed
// segment tree against base, and publishes the result as the blob's
// next version in total order. base is the version whose unmodified
// content the snapshot shares; base 0 builds over an empty tree.
func (c *Client) WriteChunks(ctx *cluster.Ctx, id ID, base Version, writes []ChunkWrite) (Version, error) {
	v, _, err := c.WriteChunksKeyed(ctx, id, base, writes)
	return v, err
}

// WriteChunksKeyed is WriteChunks, additionally reporting the provider
// key allocated for each written chunk index. The mirroring module
// uses the keys to retract-track the chunks it announces at COMMIT.
func (c *Client) WriteChunksKeyed(ctx *cluster.Ctx, id ID, base Version, writes []ChunkWrite) (Version, map[int64]ChunkKey, error) {
	if len(writes) == 0 {
		return 0, nil, fmt.Errorf("blob: WriteChunks with no chunks: %w", ErrInvalidWrite)
	}
	inf, err := c.Info(ctx, id)
	if err != nil {
		return 0, nil, err
	}
	sorted := make([]ChunkWrite, len(writes))
	copy(sorted, writes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	nchunks := inf.Chunks()
	for i, w := range sorted {
		if w.Index < 0 || w.Index >= nchunks {
			return 0, nil, fmt.Errorf("blob: chunk index %d outside blob of %d chunks: %w", w.Index, nchunks, ErrOutOfRange)
		}
		if i > 0 && sorted[i-1].Index == w.Index {
			return 0, nil, fmt.Errorf("blob: duplicate chunk index %d: %w", w.Index, ErrInvalidWrite)
		}
		if int(w.Payload.Size) > inf.ChunkSize {
			return 0, nil, fmt.Errorf("blob: payload of %d bytes exceeds chunk size %d: %w", w.Payload.Size, inf.ChunkSize, ErrInvalidWrite)
		}
	}

	// Phase 1: push chunk payloads to the providers. Keys are allocated
	// as pending: until the version publishes, no tree references the
	// new chunks, and the pending mark is what keeps a concurrent
	// garbage-collection sweep from reclaiming them in that window.
	dirty := make([]DirtyLeaf, len(sorted))
	keys := make([]ChunkKey, len(sorted))
	for i := range sorted {
		keys[i] = c.sys.Providers.AllocPendingKey()
		dirty[i] = DirtyLeaf{Index: sorted[i].Index, Chunk: keys[i]}
	}
	defer c.sys.Providers.ClearPending(keys)

	// On the batched path the whole round goes to the providers as one
	// PutBatch — one RPC per distinct provider — running as its own
	// activity so the transfer overlaps the metadata build of phase 2.
	// The unbatched path pushes every chunk as an individual Put and
	// completes before any metadata work, as the figure scenarios pin.
	var pub cluster.Task
	var pubErr error
	joined := false
	if c.writeBatching {
		puts := make([]ChunkPut, len(sorted))
		for i := range sorted {
			puts[i] = ChunkPut{Key: keys[i], Payload: sorted[i].Payload}
		}
		pub = ctx.Go("put-chunks", ctx.Node(), func(cc *cluster.Ctx) {
			pubErr = c.sys.Providers.PutBatch(cc, puts)
		})
		defer func() {
			// Error unwinds must not leave the publish activity running
			// against keys whose pending marks are about to clear.
			if !joined {
				ctx.WaitAll([]cluster.Task{pub})
			}
		}()
	} else {
		putErrs := make([]error, len(sorted))
		c.forEachParallel(ctx, "put-chunk", len(sorted), func(cc *cluster.Ctx, i int) {
			putErrs[i] = c.sys.Providers.Put(cc, keys[i], sorted[i].Payload)
		})
		if err := firstError(putErrs); err != nil {
			return 0, nil, err
		}
		// The writer holds the full content of every chunk it just
		// pushed, so it can serve siblings as an alternate source from
		// now on.
		if c.sharer != nil {
			c.sharer.Announce(ctx, keys)
		}
	}
	keyOf := make(map[int64]ChunkKey, len(sorted))
	for i := range sorted {
		keyOf[sorted[i].Index] = keys[i]
	}

	// Phase 2: ticket, shadowed metadata, publication. The base version
	// is pinned for the duration of the build so a concurrent retention
	// sweep cannot retire it (and the garbage collector cannot reclaim
	// the subtrees the new version is about to share).
	var oldRoot NodeRef
	if base > 0 {
		if err := c.sys.VM.Pin(id, base); err != nil {
			return 0, nil, err
		}
		defer c.sys.VM.Unpin(id, base)
	}
	ticket, err := c.sys.VM.Ticket(ctx, id)
	if err != nil {
		return 0, nil, err
	}
	if base > 0 {
		oldRoot, err = c.sys.VM.Root(ctx, id, base)
		if err != nil {
			return 0, nil, err
		}
	}
	// The new tree nodes are pending for the same reason as the keys.
	alloc, done := c.pendingAllocator()
	defer done()
	var root NodeRef
	var created []NewNode
	if c.writeBatching {
		root, created, err = BuildVersionBatched(boundGetter{c, ctx}, oldRoot, inf.Span, dirty, alloc)
	} else {
		root, created, err = BuildVersion(boundGetter{c, ctx}, oldRoot, inf.Span, dirty, alloc)
	}
	if err != nil {
		return 0, nil, err
	}
	if pub != nil {
		// Join the chunk publish before the version becomes visible: a
		// published snapshot must never reference in-flight chunks, and
		// the cohort announcement must wait for the content to exist.
		ctx.WaitAll([]cluster.Task{pub})
		joined = true
		if pubErr != nil {
			return 0, nil, pubErr
		}
		if c.sharer != nil {
			c.sharer.Announce(ctx, keys)
		}
	}
	c.sys.Meta.PutBatch(ctx, created)
	c.cacheNew(created)
	if err := c.sys.VM.Publish(ctx, id, ticket, root); err != nil {
		return 0, nil, err
	}
	return ticket, keyOf, nil
}

// Clone duplicates snapshot (id, v) as a new blob that shares all
// content and metadata with the source — the CLONE primitive of §3.2,
// implemented as the single extra root node of Fig. 3(b).
func (c *Client) Clone(ctx *cluster.Ctx, id ID, v Version) (ID, error) {
	inf, err := c.Info(ctx, id)
	if err != nil {
		return 0, err
	}
	// Pin the source snapshot while the clone root is built and
	// published, for the same reason WriteChunksKeyed pins its base.
	if err := c.sys.VM.Pin(id, v); err != nil {
		return 0, err
	}
	defer c.sys.VM.Unpin(id, v)
	srcRoot, err := c.sys.VM.Root(ctx, id, v)
	if err != nil {
		return 0, err
	}
	clone, err := c.sys.VM.CreateBlob(ctx, inf.Size, inf.ChunkSize)
	if err != nil {
		return 0, err
	}
	alloc, done := c.pendingAllocator()
	defer done()
	root, created, err := CloneRoot(boundGetter{c, ctx}, srcRoot, inf.Span, alloc)
	if err != nil {
		return 0, err
	}
	c.sys.Meta.PutBatch(ctx, created)
	c.cacheNew(created)
	ticket, err := c.sys.VM.Ticket(ctx, clone)
	if err != nil {
		return 0, err
	}
	if err := c.sys.VM.Publish(ctx, clone, ticket, root); err != nil {
		return 0, err
	}
	return clone, nil
}

// FetchedChunk is one chunk of a read range. Key 0 marks a sparse
// (all-zero) chunk, whose payload has the right size and no data.
type FetchedChunk struct {
	Index   int64
	Key     ChunkKey
	Payload Payload
}

// resolveLeaves returns the leaf entries covering [lo,hi) of (id, v):
// from the extent cache when the range was fully resolved before
// (skipping the root lookup and the whole tree descent — versions are
// immutable), and by a batched level-order descent otherwise, priming
// the extent cache for the next reader.
func (c *Client) resolveLeaves(ctx *cluster.Ctx, id ID, v Version, span, lo, hi int64) ([]LeafEntry, error) {
	epoch := c.sys.VM.RetireEpoch()
	if leaves := c.extents.lookup(id, v, lo, hi, epoch, c.sys.VM.IsLive); leaves != nil {
		return leaves, nil
	}
	root, err := c.sys.VM.Root(ctx, id, v)
	if err != nil {
		return nil, err
	}
	leaves, err := CollectLeaves(boundGetter{c, ctx}, root, span, lo, hi)
	if err != nil {
		return nil, err
	}
	c.extents.insert(id, v, lo, hi, leaves, epoch)
	return leaves, nil
}

// leanGetter is the bulk-prefetch variant of boundGetter: cache hits
// are shared, but cold refs go straight to GetBatch without
// singleflight registration and without node-cache insertion. A
// whole-image prefetch resolves every node exactly once into the
// extent cache — that interval map is the durable product of the
// descent, and skipping the per-ref bookkeeping (a flight struct and a
// cache insert per node) keeps the prefetch allocation-light. Inner
// nodes a later partial descent might want simply refetch.
type leanGetter struct {
	c   *Client
	ctx *cluster.Ctx
}

func (g leanGetter) GetNode(ref NodeRef) (TreeNode, error) { return g.c.getNode(g.ctx, ref) }

func (g leanGetter) GetNodes(refs []NodeRef) ([]TreeNode, error) {
	out := make([]TreeNode, len(refs))
	var missIdx []int
	var misses []NodeRef
	for i, ref := range refs {
		if n, ok := g.c.cachedNode(ref); ok {
			out[i] = n
		} else {
			missIdx = append(missIdx, i)
			misses = append(misses, ref)
		}
	}
	if len(misses) == 0 {
		return out, nil
	}
	if len(misses) == len(refs) {
		// Nothing cached (the normal case mid-prefetch): resolve
		// straight into the aligned result, one allocation per level.
		if err := g.c.sys.Meta.GetBatchInto(g.ctx, refs, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	nodes, err := g.c.sys.Meta.GetBatch(g.ctx, misses)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		out[i] = nodes[j]
	}
	return out, nil
}

// PrefetchExtents resolves the complete chunk map of snapshot (id, v)
// — every leaf of its segment tree — in one batched level-order
// descent, priming the extent cache. Total metadata for even a large
// image is small (a 2 GB image at 256 KB chunks is ~16 K nodes of 64
// bytes, ~1 MB), so a long-lived reader such as the mirroring module
// pays depth rounds once at open and every subsequent
// ReadAt/FetchChunks over the snapshot skips tree descent entirely.
func (c *Client) PrefetchExtents(ctx *cluster.Ctx, id ID, v Version) error {
	inf, err := c.Info(ctx, id)
	if err != nil {
		return err
	}
	epoch := c.sys.VM.RetireEpoch()
	if leaves := c.extents.lookup(id, v, 0, inf.Chunks(), epoch, c.sys.VM.IsLive); leaves != nil {
		return nil
	}
	// Whole-image descents are the most expensive metadata operation a
	// client performs, so concurrent prefetches of the same snapshot
	// (two instances opening one image on a node) share one flight.
	_, err = c.prefFlights.do(ctx, extentKey{id, v}, nil, func() (struct{}, error) {
		root, err := c.sys.VM.Root(ctx, id, v)
		if err != nil {
			return struct{}{}, err
		}
		leaves, err := CollectLeaves(leanGetter{c, ctx}, root, inf.Span, 0, inf.Chunks())
		if err != nil {
			return struct{}{}, err
		}
		c.extents.insert(id, v, 0, inf.Chunks(), leaves, epoch)
		return struct{}{}, nil
	})
	return err
}

// FetchChunks retrieves the chunks covering indices [lo,hi) of (id,v),
// fetching distinct chunks in parallel. Each chunk comes from a cohort
// peer when the client has a ChunkSharer and a peer holds it, and from
// its home providers otherwise. This is the primitive the mirroring
// module's remote reads are built on.
func (c *Client) FetchChunks(ctx *cluster.Ctx, id ID, v Version, lo, hi int64) ([]FetchedChunk, error) {
	inf, err := c.Info(ctx, id)
	if err != nil {
		return nil, err
	}
	nchunks := inf.Chunks()
	if lo < 0 || hi > nchunks || lo > hi {
		return nil, fmt.Errorf("blob: chunk range [%d,%d) outside blob of %d chunks: %w", lo, hi, nchunks, ErrOutOfRange)
	}
	// Empty ranges flow through resolution too: the version-existence
	// check (extent-cache liveness or VM.Root) must not be skipped.
	leaves, err := c.resolveLeaves(ctx, id, v, inf.Span, lo, hi)
	if err != nil {
		return nil, err
	}
	out := make([]FetchedChunk, len(leaves))
	// Fetch each distinct key once; duplicate keys (shared chunks at
	// multiple indices) reuse the first fetch.
	firstAt := make(map[ChunkKey]int, len(leaves))
	fetchIdx := make([]int, 0, len(leaves))
	for i, lf := range leaves {
		out[i] = FetchedChunk{Index: lf.Index, Key: lf.Chunk}
		if lf.Chunk == 0 {
			out[i].Payload = Payload{Size: int32(c.chunkLen(inf, lf.Index))}
			continue
		}
		if _, seen := firstAt[lf.Chunk]; !seen {
			firstAt[lf.Chunk] = i
			fetchIdx = append(fetchIdx, i)
		}
	}
	fetchErrs := make([]error, len(fetchIdx))
	c.forEachParallel(ctx, "get-chunk", len(fetchIdx), func(cc *cluster.Ctx, j int) {
		i := fetchIdx[j]
		p, err := c.getChunk(cc, out[i].Key)
		fetchErrs[j] = err
		out[i].Payload = p
	})
	if err := firstError(fetchErrs); err != nil {
		return nil, err
	}
	for i := range out {
		if out[i].Key != 0 {
			out[i].Payload = out[firstAt[out[i].Key]].Payload
		}
	}
	return out, nil
}

// ReadAt reads len(buf) bytes at offset off from snapshot (id, v) into
// buf. Sparse regions read as zeros. With synthetic payloads the time
// and traffic costs are charged but buf receives zeros.
func (c *Client) ReadAt(ctx *cluster.Ctx, id ID, v Version, buf []byte, off int64) error {
	if len(buf) == 0 {
		return nil
	}
	inf, err := c.Info(ctx, id)
	if err != nil {
		return err
	}
	end := off + int64(len(buf))
	if off < 0 || end > inf.Size {
		return fmt.Errorf("blob: read [%d,%d) outside blob size %d: %w", off, end, inf.Size, ErrOutOfRange)
	}
	cs := int64(inf.ChunkSize)
	chunks, err := c.FetchChunks(ctx, id, v, off/cs, (end+cs-1)/cs)
	if err != nil {
		return err
	}
	for _, fc := range chunks {
		cstart := fc.Index * cs
		from := max(off, cstart)
		to := min(end, cstart+cs)
		dst := buf[from-off : to-off]
		if fc.Payload.Real() {
			src := fc.Payload.Data
			inChunk := from - cstart
			for i := range dst {
				j := inChunk + int64(i)
				if j < int64(len(src)) {
					dst[i] = src[j]
				} else {
					dst[i] = 0
				}
			}
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
	}
	return nil
}

// WriteAt writes buf at offset off on top of version base, producing a
// new version. Partially covered chunks are read-modify-written so the
// new chunk payloads are complete. This is the path used to upload
// initial images; the mirroring module uses WriteChunks directly.
func (c *Client) WriteAt(ctx *cluster.Ctx, id ID, base Version, buf []byte, off int64) (Version, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("blob: empty write: %w", ErrInvalidWrite)
	}
	inf, err := c.Info(ctx, id)
	if err != nil {
		return 0, err
	}
	end := off + int64(len(buf))
	if off < 0 || end > inf.Size {
		return 0, fmt.Errorf("blob: write [%d,%d) outside blob size %d: %w", off, end, inf.Size, ErrOutOfRange)
	}
	cs := int64(inf.ChunkSize)
	loC, hiC := off/cs, (end+cs-1)/cs

	// Read-modify-write boundary chunks that exist in the base version.
	var oldFirst, oldLast []FetchedChunk
	if base > 0 {
		if off%cs != 0 || (loC == hiC-1 && end%cs != 0) {
			oldFirst, err = c.FetchChunks(ctx, id, base, loC, loC+1)
			if err != nil {
				return 0, err
			}
		}
		if end%cs != 0 && hiC-1 > loC {
			oldLast, err = c.FetchChunks(ctx, id, base, hiC-1, hiC)
			if err != nil {
				return 0, err
			}
		}
	}
	oldData := func(idx int64) []byte {
		for _, fc := range append(oldFirst, oldLast...) {
			if fc.Index == idx && fc.Payload.Real() {
				return fc.Payload.Data
			}
		}
		return nil
	}

	writes := make([]ChunkWrite, 0, hiC-loC)
	for ci := loC; ci < hiC; ci++ {
		clen := c.chunkLen(inf, ci)
		data := make([]byte, clen)
		if old := oldData(ci); old != nil {
			copy(data, old)
		}
		cstart := ci * cs
		from := max(off, cstart)
		to := min(end, cstart+int64(clen))
		copy(data[from-cstart:to-cstart], buf[from-off:to-off])
		writes = append(writes, ChunkWrite{Index: ci, Payload: RealPayload(data)})
	}
	return c.WriteChunks(ctx, id, base, writes)
}

// WriteFull publishes a complete synthetic image of the blob's size as
// its next version: every chunk gets a synthetic payload tagged with
// tag. This stands in for uploading a real 2 GB image in experiments.
func (c *Client) WriteFull(ctx *cluster.Ctx, id ID, base Version, tag uint64) (Version, error) {
	inf, err := c.Info(ctx, id)
	if err != nil {
		return 0, err
	}
	writes := make([]ChunkWrite, inf.Chunks())
	for i := range writes {
		writes[i] = ChunkWrite{
			Index:   int64(i),
			Payload: SyntheticPayload(int32(c.chunkLen(inf, int64(i))), tag),
		}
	}
	return c.WriteChunks(ctx, id, base, writes)
}

// chunkLen returns the length of chunk ci (the last chunk may be short).
func (c *Client) chunkLen(inf Info, ci int64) int {
	cs := int64(inf.ChunkSize)
	if (ci+1)*cs <= inf.Size {
		return inf.ChunkSize
	}
	l := inf.Size - ci*cs
	if l < 0 {
		l = 0
	}
	return int(l)
}

// firstError returns the first non-nil error in errs.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachParallel runs fn(i) for i in [0,n) with at most clientParallel
// concurrent activities on the caller's node. Work is striped across
// workers (worker w handles w, w+P, ...), which is deterministic.
func (c *Client) forEachParallel(ctx *cluster.Ctx, name string, n int, fn func(cc *cluster.Ctx, i int)) {
	if n == 0 {
		return
	}
	if n == 1 {
		fn(ctx, 0)
		return
	}
	workers := clientParallel
	if n < workers {
		workers = n
	}
	tasks := make([]cluster.Task, 0, workers)
	for w := 0; w < workers; w++ {
		w := w
		tasks = append(tasks, ctx.Go(name, ctx.Node(), func(cc *cluster.Ctx) {
			for i := w; i < n; i += workers {
				fn(cc, i)
			}
		}))
	}
	ctx.WaitAll(tasks)
}
