package blob

import (
	"fmt"
	"sort"
	"sync"

	"blobvfs/internal/cluster"
)

// System bundles the three BlobSeer services. One System is deployed
// per cluster; any number of clients attach to it.
type System struct {
	Meta      *MetaService
	VM        *VersionManager
	Providers *ProviderSet
}

// NewSystem deploys the storage service over the given provider nodes
// (used for both data and metadata, aggregating the compute nodes'
// local disks per §3.1.1) with the version manager on vmNode.
func NewSystem(providers []cluster.NodeID, vmNode cluster.NodeID, replicas int) *System {
	return &System{
		Meta:      NewMetaService(providers),
		VM:        NewVersionManager(vmNode),
		Providers: NewProviderSet(providers, replicas),
	}
}

// clientParallel bounds a client's concurrent chunk transfers, modeling
// its connection pool. Parallel work is assigned round-robin so runs
// are deterministic.
const clientParallel = 16

// Client is a BlobSeer access library instance. Tree nodes and blob
// geometry are immutable, so the client caches them without any
// invalidation protocol; this is what makes metadata overhead drop
// sharply after first access, as in the real system.
type Client struct {
	sys    *System
	sharer ChunkSharer // optional p2p chunk source (see sharing.go)

	mu    sync.Mutex
	nodes map[NodeRef]TreeNode
	infos map[ID]Info
}

// NewClient attaches a client to a system.
func NewClient(sys *System) *Client {
	return &Client{
		sys:   sys,
		nodes: make(map[NodeRef]TreeNode),
		infos: make(map[ID]Info),
	}
}

// System returns the system this client is attached to.
func (c *Client) System() *System { return c.sys }

// Info returns blob geometry, cached after the first fetch.
func (c *Client) Info(ctx *cluster.Ctx, id ID) (Info, error) {
	c.mu.Lock()
	inf, ok := c.infos[id]
	c.mu.Unlock()
	if ok {
		return inf, nil
	}
	inf, err := c.sys.VM.Info(ctx, id)
	if err != nil {
		return Info{}, err
	}
	c.mu.Lock()
	c.infos[id] = inf
	c.mu.Unlock()
	return inf, nil
}

// getNode fetches a metadata node through the cache.
func (c *Client) getNode(ctx *cluster.Ctx, ref NodeRef) (TreeNode, error) {
	c.mu.Lock()
	n, ok := c.nodes[ref]
	c.mu.Unlock()
	if ok {
		return n, nil
	}
	n, err := c.sys.Meta.Get(ctx, ref)
	if err != nil {
		return TreeNode{}, err
	}
	c.mu.Lock()
	c.nodes[ref] = n
	c.mu.Unlock()
	return n, nil
}

// cacheNew primes the cache with nodes this client just created.
func (c *Client) cacheNew(nodes []NewNode) {
	c.mu.Lock()
	for _, nn := range nodes {
		c.nodes[nn.Ref] = nn.Node
	}
	c.mu.Unlock()
}

// pendingAllocator returns a node-ref allocator that registers every
// ref as pending (exempt from GC sweeps while the version is in
// flight) and a done function that clears the marks once the version
// is published or the operation abandoned.
func (c *Client) pendingAllocator() (alloc func() NodeRef, done func()) {
	var refs []NodeRef
	alloc = func() NodeRef {
		r := c.sys.Meta.AllocPendingRef()
		refs = append(refs, r)
		return r
	}
	done = func() { c.sys.Meta.ClearPending(refs) }
	return alloc, done
}

type boundGetter struct {
	c   *Client
	ctx *cluster.Ctx
}

func (g boundGetter) GetNode(ref NodeRef) (TreeNode, error) { return g.c.getNode(g.ctx, ref) }

// Create registers a new blob of the given size and chunk size. The
// blob has no published versions until the first WriteChunks.
func (c *Client) Create(ctx *cluster.Ctx, size int64, chunkSize int) (ID, error) {
	return c.sys.VM.CreateBlob(ctx, size, chunkSize)
}

// Latest returns the newest published version of the blob (0 if none).
func (c *Client) Latest(ctx *cluster.Ctx, id ID) (Version, error) {
	return c.sys.VM.Latest(ctx, id)
}

// PinVersion pins snapshot (id, v) against retirement and garbage
// collection; long-lived holders (the mirroring module, for as long as
// an image is open) pin what they read from. See VersionManager.Pin.
func (c *Client) PinVersion(id ID, v Version) error {
	return c.sys.VM.Pin(id, v)
}

// UnpinVersion releases a pin taken with PinVersion.
func (c *Client) UnpinVersion(id ID, v Version) {
	c.sys.VM.Unpin(id, v)
}

// ChunkWrite names a chunk index and its new payload for WriteChunks.
type ChunkWrite struct {
	Index   int64
	Payload Payload
}

// WriteChunks is the COMMIT data path: it stores the given chunk
// payloads on the providers (bounded-parallel), builds the shadowed
// segment tree against base, and publishes the result as the blob's
// next version in total order. base is the version whose unmodified
// content the snapshot shares; base 0 builds over an empty tree.
func (c *Client) WriteChunks(ctx *cluster.Ctx, id ID, base Version, writes []ChunkWrite) (Version, error) {
	v, _, err := c.WriteChunksKeyed(ctx, id, base, writes)
	return v, err
}

// WriteChunksKeyed is WriteChunks, additionally reporting the provider
// key allocated for each written chunk index. The mirroring module
// uses the keys to retract-track the chunks it announces at COMMIT.
func (c *Client) WriteChunksKeyed(ctx *cluster.Ctx, id ID, base Version, writes []ChunkWrite) (Version, map[int64]ChunkKey, error) {
	if len(writes) == 0 {
		return 0, nil, fmt.Errorf("blob: WriteChunks with no chunks")
	}
	inf, err := c.Info(ctx, id)
	if err != nil {
		return 0, nil, err
	}
	sorted := make([]ChunkWrite, len(writes))
	copy(sorted, writes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	nchunks := inf.Chunks()
	for i, w := range sorted {
		if w.Index < 0 || w.Index >= nchunks {
			return 0, nil, fmt.Errorf("blob: chunk index %d outside blob of %d chunks", w.Index, nchunks)
		}
		if i > 0 && sorted[i-1].Index == w.Index {
			return 0, nil, fmt.Errorf("blob: duplicate chunk index %d in write set", w.Index)
		}
		if int(w.Payload.Size) > inf.ChunkSize {
			return 0, nil, fmt.Errorf("blob: payload of %d bytes exceeds chunk size %d", w.Payload.Size, inf.ChunkSize)
		}
	}

	// Phase 1: push chunk payloads to the providers. Keys are allocated
	// as pending: until the version publishes, no tree references the
	// new chunks, and the pending mark is what keeps a concurrent
	// garbage-collection sweep from reclaiming them in that window.
	dirty := make([]DirtyLeaf, len(sorted))
	keys := make([]ChunkKey, len(sorted))
	for i := range sorted {
		keys[i] = c.sys.Providers.AllocPendingKey()
		dirty[i] = DirtyLeaf{Index: sorted[i].Index, Chunk: keys[i]}
	}
	defer c.sys.Providers.ClearPending(keys)
	putErrs := make([]error, len(sorted))
	c.forEachParallel(ctx, "put-chunk", len(sorted), func(cc *cluster.Ctx, i int) {
		putErrs[i] = c.sys.Providers.Put(cc, keys[i], sorted[i].Payload)
	})
	if err := firstError(putErrs); err != nil {
		return 0, nil, err
	}
	keyOf := make(map[int64]ChunkKey, len(sorted))
	for i := range sorted {
		keyOf[sorted[i].Index] = keys[i]
	}
	// The writer holds the full content of every chunk it just pushed,
	// so it can serve siblings as an alternate source from now on.
	if c.sharer != nil {
		c.sharer.Announce(ctx, keys)
	}

	// Phase 2: ticket, shadowed metadata, publication. The base version
	// is pinned for the duration of the build so a concurrent retention
	// sweep cannot retire it (and the garbage collector cannot reclaim
	// the subtrees the new version is about to share).
	var oldRoot NodeRef
	if base > 0 {
		if err := c.sys.VM.Pin(id, base); err != nil {
			return 0, nil, err
		}
		defer c.sys.VM.Unpin(id, base)
	}
	ticket, err := c.sys.VM.Ticket(ctx, id)
	if err != nil {
		return 0, nil, err
	}
	if base > 0 {
		oldRoot, err = c.sys.VM.Root(ctx, id, base)
		if err != nil {
			return 0, nil, err
		}
	}
	// The new tree nodes are pending for the same reason as the keys.
	alloc, done := c.pendingAllocator()
	defer done()
	root, created, err := BuildVersion(boundGetter{c, ctx}, oldRoot, inf.Span, dirty, alloc)
	if err != nil {
		return 0, nil, err
	}
	c.sys.Meta.PutBatch(ctx, created)
	c.cacheNew(created)
	if err := c.sys.VM.Publish(ctx, id, ticket, root); err != nil {
		return 0, nil, err
	}
	return ticket, keyOf, nil
}

// Clone duplicates snapshot (id, v) as a new blob that shares all
// content and metadata with the source — the CLONE primitive of §3.2,
// implemented as the single extra root node of Fig. 3(b).
func (c *Client) Clone(ctx *cluster.Ctx, id ID, v Version) (ID, error) {
	inf, err := c.Info(ctx, id)
	if err != nil {
		return 0, err
	}
	// Pin the source snapshot while the clone root is built and
	// published, for the same reason WriteChunksKeyed pins its base.
	if err := c.sys.VM.Pin(id, v); err != nil {
		return 0, err
	}
	defer c.sys.VM.Unpin(id, v)
	srcRoot, err := c.sys.VM.Root(ctx, id, v)
	if err != nil {
		return 0, err
	}
	clone, err := c.sys.VM.CreateBlob(ctx, inf.Size, inf.ChunkSize)
	if err != nil {
		return 0, err
	}
	alloc, done := c.pendingAllocator()
	defer done()
	root, created, err := CloneRoot(boundGetter{c, ctx}, srcRoot, inf.Span, alloc)
	if err != nil {
		return 0, err
	}
	c.sys.Meta.PutBatch(ctx, created)
	c.cacheNew(created)
	ticket, err := c.sys.VM.Ticket(ctx, clone)
	if err != nil {
		return 0, err
	}
	if err := c.sys.VM.Publish(ctx, clone, ticket, root); err != nil {
		return 0, err
	}
	return clone, nil
}

// FetchedChunk is one chunk of a read range. Key 0 marks a sparse
// (all-zero) chunk, whose payload has the right size and no data.
type FetchedChunk struct {
	Index   int64
	Key     ChunkKey
	Payload Payload
}

// FetchChunks retrieves the chunks covering indices [lo,hi) of (id,v),
// fetching distinct chunks in parallel. Each chunk comes from a cohort
// peer when the client has a ChunkSharer and a peer holds it, and from
// its home providers otherwise. This is the primitive the mirroring
// module's remote reads are built on.
func (c *Client) FetchChunks(ctx *cluster.Ctx, id ID, v Version, lo, hi int64) ([]FetchedChunk, error) {
	inf, err := c.Info(ctx, id)
	if err != nil {
		return nil, err
	}
	nchunks := inf.Chunks()
	if lo < 0 || hi > nchunks || lo > hi {
		return nil, fmt.Errorf("blob: chunk range [%d,%d) outside blob of %d chunks", lo, hi, nchunks)
	}
	root, err := c.sys.VM.Root(ctx, id, v)
	if err != nil {
		return nil, err
	}
	leaves, err := CollectLeaves(boundGetter{c, ctx}, root, inf.Span, lo, hi)
	if err != nil {
		return nil, err
	}
	out := make([]FetchedChunk, len(leaves))
	// Fetch each distinct key once; duplicate keys (shared chunks at
	// multiple indices) reuse the first fetch.
	firstAt := make(map[ChunkKey]int)
	var fetchIdx []int
	for i, lf := range leaves {
		out[i] = FetchedChunk{Index: lf.Index, Key: lf.Chunk}
		if lf.Chunk == 0 {
			out[i].Payload = Payload{Size: int32(c.chunkLen(inf, lf.Index))}
			continue
		}
		if _, seen := firstAt[lf.Chunk]; !seen {
			firstAt[lf.Chunk] = i
			fetchIdx = append(fetchIdx, i)
		}
	}
	fetchErrs := make([]error, len(fetchIdx))
	c.forEachParallel(ctx, "get-chunk", len(fetchIdx), func(cc *cluster.Ctx, j int) {
		i := fetchIdx[j]
		p, err := c.getChunk(cc, out[i].Key)
		fetchErrs[j] = err
		out[i].Payload = p
	})
	if err := firstError(fetchErrs); err != nil {
		return nil, err
	}
	for i := range out {
		if out[i].Key != 0 {
			out[i].Payload = out[firstAt[out[i].Key]].Payload
		}
	}
	return out, nil
}

// ReadAt reads len(buf) bytes at offset off from snapshot (id, v) into
// buf. Sparse regions read as zeros. With synthetic payloads the time
// and traffic costs are charged but buf receives zeros.
func (c *Client) ReadAt(ctx *cluster.Ctx, id ID, v Version, buf []byte, off int64) error {
	if len(buf) == 0 {
		return nil
	}
	inf, err := c.Info(ctx, id)
	if err != nil {
		return err
	}
	end := off + int64(len(buf))
	if off < 0 || end > inf.Size {
		return fmt.Errorf("blob: read [%d,%d) outside blob size %d", off, end, inf.Size)
	}
	cs := int64(inf.ChunkSize)
	chunks, err := c.FetchChunks(ctx, id, v, off/cs, (end+cs-1)/cs)
	if err != nil {
		return err
	}
	for _, fc := range chunks {
		cstart := fc.Index * cs
		from := max64(off, cstart)
		to := min64(end, cstart+cs)
		dst := buf[from-off : to-off]
		if fc.Payload.Real() {
			src := fc.Payload.Data
			inChunk := from - cstart
			for i := range dst {
				j := inChunk + int64(i)
				if j < int64(len(src)) {
					dst[i] = src[j]
				} else {
					dst[i] = 0
				}
			}
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
	}
	return nil
}

// WriteAt writes buf at offset off on top of version base, producing a
// new version. Partially covered chunks are read-modify-written so the
// new chunk payloads are complete. This is the path used to upload
// initial images; the mirroring module uses WriteChunks directly.
func (c *Client) WriteAt(ctx *cluster.Ctx, id ID, base Version, buf []byte, off int64) (Version, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("blob: empty write")
	}
	inf, err := c.Info(ctx, id)
	if err != nil {
		return 0, err
	}
	end := off + int64(len(buf))
	if off < 0 || end > inf.Size {
		return 0, fmt.Errorf("blob: write [%d,%d) outside blob size %d", off, end, inf.Size)
	}
	cs := int64(inf.ChunkSize)
	loC, hiC := off/cs, (end+cs-1)/cs

	// Read-modify-write boundary chunks that exist in the base version.
	var oldFirst, oldLast []FetchedChunk
	if base > 0 {
		if off%cs != 0 || (loC == hiC-1 && end%cs != 0) {
			oldFirst, err = c.FetchChunks(ctx, id, base, loC, loC+1)
			if err != nil {
				return 0, err
			}
		}
		if end%cs != 0 && hiC-1 > loC {
			oldLast, err = c.FetchChunks(ctx, id, base, hiC-1, hiC)
			if err != nil {
				return 0, err
			}
		}
	}
	oldData := func(idx int64) []byte {
		for _, fc := range append(oldFirst, oldLast...) {
			if fc.Index == idx && fc.Payload.Real() {
				return fc.Payload.Data
			}
		}
		return nil
	}

	writes := make([]ChunkWrite, 0, hiC-loC)
	for ci := loC; ci < hiC; ci++ {
		clen := c.chunkLen(inf, ci)
		data := make([]byte, clen)
		if old := oldData(ci); old != nil {
			copy(data, old)
		}
		cstart := ci * cs
		from := max64(off, cstart)
		to := min64(end, cstart+int64(clen))
		copy(data[from-cstart:to-cstart], buf[from-off:to-off])
		writes = append(writes, ChunkWrite{Index: ci, Payload: RealPayload(data)})
	}
	return c.WriteChunks(ctx, id, base, writes)
}

// WriteFull publishes a complete synthetic image of the blob's size as
// its next version: every chunk gets a synthetic payload tagged with
// tag. This stands in for uploading a real 2 GB image in experiments.
func (c *Client) WriteFull(ctx *cluster.Ctx, id ID, base Version, tag uint64) (Version, error) {
	inf, err := c.Info(ctx, id)
	if err != nil {
		return 0, err
	}
	writes := make([]ChunkWrite, inf.Chunks())
	for i := range writes {
		writes[i] = ChunkWrite{
			Index:   int64(i),
			Payload: SyntheticPayload(int32(c.chunkLen(inf, int64(i))), tag),
		}
	}
	return c.WriteChunks(ctx, id, base, writes)
}

// chunkLen returns the length of chunk ci (the last chunk may be short).
func (c *Client) chunkLen(inf Info, ci int64) int {
	cs := int64(inf.ChunkSize)
	if (ci+1)*cs <= inf.Size {
		return inf.ChunkSize
	}
	l := inf.Size - ci*cs
	if l < 0 {
		l = 0
	}
	return int(l)
}

// firstError returns the first non-nil error in errs.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachParallel runs fn(i) for i in [0,n) with at most clientParallel
// concurrent activities on the caller's node. Work is striped across
// workers (worker w handles w, w+P, ...), which is deterministic.
func (c *Client) forEachParallel(ctx *cluster.Ctx, name string, n int, fn func(cc *cluster.Ctx, i int)) {
	if n == 0 {
		return
	}
	if n == 1 {
		fn(ctx, 0)
		return
	}
	workers := clientParallel
	if n < workers {
		workers = n
	}
	tasks := make([]cluster.Task, 0, workers)
	for w := 0; w < workers; w++ {
		w := w
		tasks = append(tasks, ctx.Go(name, ctx.Node(), func(cc *cluster.Ctx) {
			for i := w; i < n; i += workers {
				fn(cc, i)
			}
		}))
	}
	ctx.WaitAll(tasks)
}
