package blob

import (
	"sync"
	"testing"

	"blobvfs/internal/cluster"
)

// fakeSharer scripts the peer-selection policy for client tests: it
// serves the configured keys from a fixed peer and records calls.
type fakeSharer struct {
	peer cluster.NodeID

	mu        sync.Mutex
	has       map[ChunkKey]bool
	locates   int
	served    int
	released  int
	announced []ChunkKey
}

func (f *fakeSharer) Locate(ctx *cluster.Ctx, key ChunkKey) (cluster.NodeID, func(), bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.locates++
	if !f.has[key] {
		return 0, nil, false
	}
	f.served++
	return f.peer, func() {
		f.mu.Lock()
		f.released++
		f.mu.Unlock()
	}, true
}

func (f *fakeSharer) Announce(ctx *cluster.Ctx, keys []ChunkKey) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.announced = append(f.announced, keys...)
}

func (f *fakeSharer) Retract(ctx *cluster.Ctx, keys []ChunkKey) {}

// newShareRig uploads a 4-chunk blob and returns a reader client with
// the sharer attached.
func newShareRig(t *testing.T, s ChunkSharer) (*cluster.Live, *System, *Client, ID, Version) {
	t.Helper()
	fab := cluster.NewLive(4)
	sys := NewSystem([]cluster.NodeID{0, 1, 2, 3}, 0, 1)
	var id ID
	var v Version
	fab.Run(func(ctx *cluster.Ctx) {
		w := NewClient(sys)
		var err error
		id, err = w.Create(ctx, 32<<10, 8<<10)
		if err != nil {
			t.Fatal(err)
		}
		v, err = w.WriteFull(ctx, id, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
	})
	c := NewClient(sys)
	c.SetSharer(s)
	return fab, sys, c, id, v
}

// TestFetchFallsBackToProvidersWithoutPeer: when the sharer has no
// holder for any chunk, every read is served by the providers, exactly
// as with no sharer at all.
func TestFetchFallsBackToProvidersWithoutPeer(t *testing.T) {
	s := &fakeSharer{peer: 2, has: map[ChunkKey]bool{}}
	fab, sys, c, id, v := newShareRig(t, s)
	fab.Run(func(ctx *cluster.Ctx) {
		fetched, err := c.FetchChunks(ctx, id, v, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(fetched) != 4 {
			t.Fatalf("fetched %d chunks, want 4", len(fetched))
		}
	})
	if got := sys.Providers.Reads.Load(); got != 4 {
		t.Errorf("provider reads = %d, want 4 (full fallback)", got)
	}
	if s.locates != 4 || s.served != 0 {
		t.Errorf("sharer saw %d locates, served %d; want 4 and 0", s.locates, s.served)
	}
}

// TestFetchPrefersPeerAndReleasesSlot: chunks a peer holds are served
// by the peer (no provider read), and the upload slot is released.
func TestFetchPrefersPeerAndReleasesSlot(t *testing.T) {
	s := &fakeSharer{peer: 2, has: map[ChunkKey]bool{}}
	fab, sys, c, id, v := newShareRig(t, s)
	// Mark every stored chunk as peer-held.
	var keys []ChunkKey
	fab.Run(func(ctx *cluster.Ctx) {
		probe := NewClient(sys)
		fetched, err := probe.FetchChunks(ctx, id, v, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, fc := range fetched {
			keys = append(keys, fc.Key)
			s.has[fc.Key] = true
		}
	})
	before := sys.Providers.Reads.Load()
	fab.Run(func(ctx *cluster.Ctx) {
		if _, err := c.FetchChunks(ctx, id, v, 0, 4); err != nil {
			t.Fatal(err)
		}
	})
	if got := sys.Providers.Reads.Load() - before; got != 0 {
		t.Errorf("provider reads = %d, want 0 (all peer-served)", got)
	}
	if s.served != 4 || s.released != 4 {
		t.Errorf("served %d, released %d; want 4 and 4", s.served, s.released)
	}
}

// TestWriteChunksAnnouncesWrittenKeys: a writer with a sharer offers
// the chunks it just pushed (it holds their full content locally).
func TestWriteChunksAnnouncesWrittenKeys(t *testing.T) {
	s := &fakeSharer{peer: 1, has: map[ChunkKey]bool{}}
	fab, _, c, id, v := newShareRig(t, s)
	fab.Run(func(ctx *cluster.Ctx) {
		_, err := c.WriteChunks(ctx, id, v, []ChunkWrite{
			{Index: 1, Payload: SyntheticPayload(8<<10, 9)},
			{Index: 3, Payload: SyntheticPayload(8<<10, 9)},
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if len(s.announced) != 2 {
		t.Errorf("announced %d keys, want 2", len(s.announced))
	}
}
