package blob

import (
	"bytes"
	"testing"

	"blobvfs/internal/cluster"
)

// TestDedupStoresIdenticalContentOnce: N instances committing the
// same contextualization data (the multisnapshotting scenario of
// §5.3) store it once under deduplication — the storage-reduction
// extension §7 proposes.
func TestDedupStoresIdenticalContentOnce(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	sys.Providers.EnableDedup()
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		common := pattern(4096, 9) // identical config written by all
		var blobs []ID
		for i := 0; i < 8; i++ {
			id, _ := c.Create(ctx, 16<<10, 4<<10)
			v, err := c.WriteAt(ctx, id, 0, common, 0)
			if err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, id)
			_ = v
		}
		if got := sys.Providers.DedupHits.Load(); got != 7 {
			t.Fatalf("dedup hits = %d, want 7 (first stores, rest alias)", got)
		}
		if got := sys.Providers.ChunkCount(); got != 1 {
			t.Fatalf("stored chunks = %d, want 1", got)
		}
		// Every blob still reads the right content through its alias.
		buf := make([]byte, 4096)
		for _, id := range blobs {
			if err := c.ReadAt(ctx, id, 1, buf, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, common) {
				t.Fatal("aliased chunk read wrong content")
			}
		}
	})
}

func TestDedupDistinguishesContent(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	sys.Providers.EnableDedup()
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 8<<10, 4<<10)
		v1, err := c.WriteAt(ctx, id, 0, pattern(4096, 1), 0)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := c.WriteAt(ctx, id, v1, pattern(4096, 2), 0)
		if err != nil {
			t.Fatal(err)
		}
		if sys.Providers.DedupHits.Load() != 0 {
			t.Fatal("distinct contents were deduplicated")
		}
		buf := make([]byte, 4096)
		if err := c.ReadAt(ctx, id, v2, buf, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pattern(4096, 2)) {
			t.Fatal("v2 content wrong")
		}
		if err := c.ReadAt(ctx, id, v1, buf, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pattern(4096, 1)) {
			t.Fatal("v1 content wrong after v2 write")
		}
	})
}

func TestDedupSyntheticPayloadsByTag(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	sys.Providers.EnableDedup()
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 1<<20, 256<<10)
		// All chunks share tag 7: the image stores one chunk.
		if _, err := c.WriteFull(ctx, id, 0, 7); err != nil {
			t.Fatal(err)
		}
		if got := sys.Providers.ChunkCount(); got != 1 {
			t.Fatalf("stored chunks = %d, want 1 (tag-identical)", got)
		}
		// Tag 0 payloads are never deduplicated.
		id2, _ := c.Create(ctx, 1<<20, 256<<10)
		if _, err := c.WriteFull(ctx, id2, 0, 0); err != nil {
			t.Fatal(err)
		}
		if got := sys.Providers.ChunkCount(); got != 5 {
			t.Fatalf("stored chunks = %d, want 5 (1 + 4 undeduped)", got)
		}
	})
}

func TestDedupDisabledByDefault(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		common := pattern(4096, 3)
		for i := 0; i < 3; i++ {
			id, _ := c.Create(ctx, 4096, 4096)
			if _, err := c.WriteAt(ctx, id, 0, common, 0); err != nil {
				t.Fatal(err)
			}
		}
		if got := sys.Providers.ChunkCount(); got != 3 {
			t.Fatalf("stored chunks = %d, want 3 (no dedup by default)", got)
		}
	})
}
