package blob

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the pure segment-tree algorithms. The fuzz
// input is interpreted as a little program: the first byte picks the
// tree span, every following pair of bytes is a dirty-leaf bitmask for
// one more shadowed version built over the previous one. After every
// step the whole stack of invariants is checked against a flat
// reference model: CollectLeaves must reproduce the model exactly,
// BuildVersion must create only the nodes on dirty root-to-leaf paths,
// and WalkReachable must see exactly the model's chunks. CI runs a
// short -fuzz smoke on both targets; the checked-in seeds keep the
// interesting shapes (empty tree, single leaf, full span, sparse
// holes) in the regression corpus.

// fuzzSpan derives a power-of-two span in [1,16] from a byte.
func fuzzSpan(b byte) int64 { return int64(1) << (b % 5) }

// applyFuzzVersions replays the version program in data over a fresh
// store, validating after each step. It returns the final root, the
// flat model, and the store.
func applyFuzzVersions(t *testing.T, span int64, data []byte) (NodeRef, []ChunkKey, *mapStore) {
	t.Helper()
	m := newMapStore()
	model := make([]ChunkKey, span)
	var root NodeRef
	nextKey := ChunkKey(0)
	const maxRounds = 8
	for r := 0; r+1 < len(data) && r/2 < maxRounds; r += 2 {
		mask := uint16(data[r]) | uint16(data[r+1])<<8
		var dirty []DirtyLeaf
		for i := int64(0); i < span; i++ {
			if mask&(1<<uint(i%16)) == 0 || i >= 16 {
				continue
			}
			nextKey++
			dirty = append(dirty, DirtyLeaf{Index: i, Chunk: nextKey})
		}
		// The batched build must be bit-identical to the plain one:
		// same root, same created nodes in the same order, same refs.
		// Run it first against a snapshot of the allocator counter so
		// both builds allocate from the same state.
		next0 := m.next
		bRoot, bCreated, bErr := BuildVersionBatched(&batchMapStore{mapStore: m}, root, span, dirty, m.alloc)
		m.next = next0
		newRoot, created, err := BuildVersion(m, root, span, dirty, m.alloc)
		if err != nil {
			t.Fatalf("BuildVersion(span=%d, %d dirty): %v", span, len(dirty), err)
		}
		if bErr != nil {
			t.Fatalf("BuildVersionBatched(span=%d, %d dirty): %v", span, len(dirty), bErr)
		}
		if bRoot != newRoot {
			t.Fatalf("batched root %d != plain root %d", bRoot, newRoot)
		}
		if len(bCreated) != len(created) {
			t.Fatalf("batched created %d nodes, plain %d", len(bCreated), len(created))
		}
		for i := range created {
			if bCreated[i] != created[i] {
				t.Fatalf("created[%d]: batched %+v, plain %+v", i, bCreated[i], created[i])
			}
		}
		if len(dirty) == 0 {
			if newRoot != root || len(created) != 0 {
				t.Fatalf("empty dirty set must share the old tree unchanged")
			}
			continue
		}
		if created[len(created)-1].Ref != newRoot {
			t.Fatalf("last created node %d is not the root %d", created[len(created)-1].Ref, newRoot)
		}
		m.commit(created)
		root = newRoot
		for _, d := range dirty {
			model[d.Index] = d.Chunk
		}

		leaves, err := CollectLeaves(m, root, span, 0, span)
		if err != nil {
			t.Fatalf("CollectLeaves after build: %v", err)
		}
		if int64(len(leaves)) != span {
			t.Fatalf("CollectLeaves returned %d entries for span %d", len(leaves), span)
		}
		for _, lf := range leaves {
			if lf.Chunk != model[lf.Index] {
				t.Fatalf("index %d: key %d, model %d", lf.Index, lf.Chunk, model[lf.Index])
			}
		}
		reachable := make(map[ChunkKey]bool)
		err = WalkReachable(m, root, span,
			func(NodeRef) bool { return true },
			func(key ChunkKey) { reachable[key] = true })
		if err != nil {
			t.Fatalf("WalkReachable: %v", err)
		}
		want := make(map[ChunkKey]bool)
		for _, key := range model {
			if key != 0 {
				want[key] = true
			}
		}
		if len(reachable) != len(want) {
			t.Fatalf("WalkReachable saw %d chunks, model has %d", len(reachable), len(want))
		}
		for key := range want {
			if !reachable[key] {
				t.Fatalf("model chunk %d not reached", key)
			}
		}
	}
	return root, model, m
}

func FuzzBuildVersion(f *testing.F) {
	f.Add([]byte{0})                                     // span 1, no versions
	f.Add([]byte{0, 0x01, 0x00})                         // span 1, single leaf
	f.Add([]byte{4, 0xff, 0xff})                         // span 16, fully dirty
	f.Add([]byte{3, 0x05, 0x00, 0xa0, 0x00})             // span 8, sparse holes, two versions
	f.Add([]byte{2, 0x0f, 0x00, 0x03, 0x00, 0x0c, 0x00}) // span 4, three shadowed versions
	f.Add(bytes.Repeat([]byte{4, 0x11}, 8))              // span 16, alternating pattern
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		applyFuzzVersions(t, fuzzSpan(data[0]), data[1:])
	})
}

func FuzzCollectLeaves(f *testing.F) {
	f.Add([]byte{4, 0xff, 0xff}, int64(0), int64(16))
	f.Add([]byte{3, 0x12, 0x00}, int64(2), int64(7))
	f.Add([]byte{2, 0x0f, 0x00}, int64(3), int64(3))  // empty range
	f.Add([]byte{1, 0x03, 0x00}, int64(-1), int64(2)) // invalid: lo < 0
	f.Add([]byte{0, 0x01, 0x00}, int64(0), int64(9))  // invalid: hi > span
	f.Add([]byte{4, 0x00, 0x00}, int64(5), int64(1))  // invalid: lo > hi
	f.Fuzz(func(t *testing.T, data []byte, lo, hi int64) {
		if len(data) == 0 {
			return
		}
		span := fuzzSpan(data[0])
		root, model, m := applyFuzzVersions(t, span, data[1:])
		leaves, err := CollectLeaves(m, root, span, lo, hi)
		if lo < 0 || hi > span || lo > hi {
			if err == nil {
				t.Fatalf("CollectLeaves accepted invalid range [%d,%d) over span %d", lo, hi, span)
			}
			return
		}
		if err != nil {
			t.Fatalf("CollectLeaves([%d,%d)): %v", lo, hi, err)
		}
		if int64(len(leaves)) != hi-lo {
			t.Fatalf("got %d entries for range [%d,%d)", len(leaves), lo, hi)
		}
		for i, lf := range leaves {
			if lf.Index != lo+int64(i) {
				t.Fatalf("entry %d has index %d, want %d (in order)", i, lf.Index, lo+int64(i))
			}
			if lf.Chunk != model[lf.Index] {
				t.Fatalf("index %d: key %d, model %d", lf.Index, lf.Chunk, model[lf.Index])
			}
		}
	})
}
