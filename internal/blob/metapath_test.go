package blob

import (
	"bytes"
	"errors"
	"testing"

	"blobvfs/internal/cluster"
)

// batchMapStore wraps mapStore with a GetNodes implementation, so the
// same pure trees can drive CollectLeaves down its batched path.
type batchMapStore struct {
	*mapStore
	rounds  int // GetNodes calls (descent rounds)
	fetched int // refs resolved through GetNodes
}

func (b *batchMapStore) GetNodes(refs []NodeRef) ([]TreeNode, error) {
	b.rounds++
	b.fetched += len(refs)
	out := make([]TreeNode, len(refs))
	for i, ref := range refs {
		n, ok := b.nodes[ref]
		if !ok {
			return nil, notFound("node", ref)
		}
		out[i] = n
	}
	return out, nil
}

// TestCollectLeavesBatchEquivalence: the level-order batched descent
// must produce exactly the node-by-node result, over full and partial
// ranges of a shadowed two-version history, in depth-bounded rounds.
func TestCollectLeavesBatchEquivalence(t *testing.T) {
	m := newMapStore()
	const span = 64
	keys := make([]ChunkKey, span)
	for i := range keys {
		keys[i] = ChunkKey(1000 + i)
	}
	root := buildFull(t, m, span, keys)
	// Shadow a second version over a few scattered chunks.
	root2, created, err := BuildVersion(m, root, span, []DirtyLeaf{
		{Index: 3, Chunk: 9003}, {Index: 31, Chunk: 9031}, {Index: 32, Chunk: 9032}, {Index: 63, Chunk: 9063},
	}, m.alloc)
	if err != nil {
		t.Fatalf("BuildVersion: %v", err)
	}
	m.commit(created)

	for _, tc := range []struct {
		root   NodeRef
		lo, hi int64
	}{
		{root, 0, span}, {root2, 0, span},
		{root2, 0, 1}, {root2, 31, 33}, {root2, 63, 64},
		{root2, 17, 49}, {root2, 5, 5}, {root2, span, span},
	} {
		plain, err := CollectLeaves(m, tc.root, span, tc.lo, tc.hi)
		if err != nil {
			t.Fatalf("plain CollectLeaves[%d,%d): %v", tc.lo, tc.hi, err)
		}
		bm := &batchMapStore{mapStore: m}
		batched, err := CollectLeaves(bm, tc.root, span, tc.lo, tc.hi)
		if err != nil {
			t.Fatalf("batched CollectLeaves[%d,%d): %v", tc.lo, tc.hi, err)
		}
		if len(plain) != len(batched) {
			t.Fatalf("[%d,%d): %d plain vs %d batched entries", tc.lo, tc.hi, len(plain), len(batched))
		}
		for i := range plain {
			if plain[i] != batched[i] {
				t.Fatalf("[%d,%d) entry %d: plain %+v != batched %+v", tc.lo, tc.hi, i, plain[i], batched[i])
			}
		}
		// Depth rounds, not node-count round trips: span 64 is depth 6,
		// +1 for the root level.
		if bm.rounds > 7 {
			t.Errorf("[%d,%d): %d batch rounds for a depth-6 tree", tc.lo, tc.hi, bm.rounds)
		}
	}
}

// TestMetaGetBatch: refs spanning multiple providers are charged one
// service operation per distinct provider, and a missing ref fails the
// batch with the same not-found error Get reports.
func TestMetaGetBatch(t *testing.T) {
	fab := cluster.NewLive(4)
	providers := []cluster.NodeID{0, 1, 2, 3}
	m := NewMetaService(providers)
	fab.Run(func(ctx *cluster.Ctx) {
		var nodes []NewNode
		for i := 1; i <= 8; i++ {
			nodes = append(nodes, NewNode{
				Ref:  NodeRef(i),
				Node: TreeNode{Lo: int64(i), Hi: int64(i) + 1, Chunk: ChunkKey(100 + i)},
			})
		}
		m.PutBatch(ctx, nodes)
		m.Gets.Store(0)
		m.NodesServed.Store(0)

		// Refs 1..8 home to providers 1,2,3,0,1,2,3,0 → 4 distinct.
		refs := []NodeRef{1, 2, 3, 4, 5, 6, 7, 8}
		got, err := m.GetBatch(ctx, refs)
		if err != nil {
			t.Fatalf("GetBatch: %v", err)
		}
		if len(got) != 8 {
			t.Fatalf("GetBatch returned %d nodes, want 8", len(got))
		}
		for i, ref := range refs {
			if got[i].Chunk != ChunkKey(100+int(ref)) {
				t.Errorf("ref %d: got %+v", ref, got[i])
			}
		}
		if g := m.Gets.Load(); g != 4 {
			t.Errorf("Gets = %d, want 4 (one per distinct provider)", g)
		}
		if n := m.NodesServed.Load(); n != 8 {
			t.Errorf("NodesServed = %d, want 8", n)
		}

		// A missing ref fails the whole batch with not-found; the round
		// is still charged.
		m.Gets.Store(0)
		_, err = m.GetBatch(ctx, []NodeRef{2, 404, 6})
		var nf *NotFoundError
		if !errors.As(err, &nf) {
			t.Fatalf("GetBatch with a missing ref: err = %v, want not-found", err)
		}
		if g := m.Gets.Load(); g == 0 {
			t.Error("failed batch charged no service operation")
		}
		if ns, err := m.GetBatch(ctx, nil); ns != nil || err != nil {
			t.Errorf("empty GetBatch = (%v, %v), want (nil, nil)", ns, err)
		}
	})
}

// TestClientColdFetchSingleflight is the regression test for the
// duplicate cold-fetch bug: concurrent first accesses to the same
// blob/refs used to each pay a full RPC. With singleflight, a
// 16-activity thundering herd over a cold client must not fetch any
// tree node (or the blob info) more than once.
func TestClientColdFetchSingleflight(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	var id ID
	var v Version
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		var err error
		id, err = c.Create(ctx, 1<<20, 64<<10) // 16 chunks
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		v, err = c.WriteAt(ctx, id, 0, pattern(1<<20, 5), 0)
		if err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
	})

	// Reference: a single cold reader's fetched-node count.
	sys.Meta.NodesServed.Store(0)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		if _, err := c.FetchChunks(ctx, id, v, 0, 16); err != nil {
			t.Fatalf("FetchChunks: %v", err)
		}
	})
	serial := sys.Meta.NodesServed.Load()
	if serial == 0 {
		t.Fatal("serial cold read fetched no nodes")
	}

	// Herd: 16 concurrent cold readers on ONE fresh client.
	sys.Meta.NodesServed.Store(0)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		tasks := make([]cluster.Task, 0, 16)
		for w := 0; w < 16; w++ {
			tasks = append(tasks, ctx.Go("herd", ctx.Node(), func(cc *cluster.Ctx) {
				chunks, err := c.FetchChunks(cc, id, v, 0, 16)
				if err != nil {
					t.Errorf("herd FetchChunks: %v", err)
					return
				}
				if len(chunks) != 16 {
					t.Errorf("herd got %d chunks, want 16", len(chunks))
				}
			}))
		}
		ctx.WaitAll(tasks)
	})
	herd := sys.Meta.NodesServed.Load()
	if herd != serial {
		t.Errorf("concurrent cold fetch resolved %d nodes, serial resolved %d — duplicate RPCs leaked", herd, serial)
	}
}

// TestExtentCacheSkipsDescent: a repeated FetchChunks over the same
// snapshot range must not touch the metadata service again, and must
// return identical leaves.
func TestExtentCacheSkipsDescent(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 1<<20, 64<<10)
		v, err := c.WriteAt(ctx, id, 0, pattern(1<<20, 9), 0)
		if err != nil {
			t.Fatalf("WriteAt: %v", err)
		}

		c2 := NewClient(sys)
		first, err := c2.FetchChunks(ctx, id, v, 2, 11)
		if err != nil {
			t.Fatalf("FetchChunks: %v", err)
		}
		gets := sys.Meta.Gets.Load()
		second, err := c2.FetchChunks(ctx, id, v, 2, 11)
		if err != nil {
			t.Fatalf("repeat FetchChunks: %v", err)
		}
		if g := sys.Meta.Gets.Load(); g != gets {
			t.Errorf("repeat fetch paid %d extra metadata ops", g-gets)
		}
		// Sub-ranges of a resolved interval hit too.
		if _, err := c2.FetchChunks(ctx, id, v, 4, 8); err != nil {
			t.Fatalf("sub-range FetchChunks: %v", err)
		}
		if g := sys.Meta.Gets.Load(); g != gets {
			t.Errorf("sub-range fetch paid %d extra metadata ops", g-gets)
		}
		for i := range first {
			if first[i].Index != second[i].Index || first[i].Key != second[i].Key {
				t.Fatalf("chunk %d differs across cached fetches: %+v vs %+v", i, first[i], second[i])
			}
		}
		st := c2.ExtentStats()
		if st.Hits < 2 || st.Versions != 1 {
			t.Errorf("extent stats = %+v, want >=2 hits over 1 version", st)
		}
	})
}

// TestExtentCacheVersionBoundaries: the cache must keep Clone and
// Commit version boundaries apart — a clone's chunk map is its own
// entry, and a new committed version must not serve the base's leaves.
func TestExtentCacheVersionBoundaries(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 512<<10, 64<<10) // 8 chunks
		v1, err := c.WriteAt(ctx, id, 0, pattern(512<<10, 1), 0)
		if err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		// Resolve and cache v1's extents.
		base, err := c.FetchChunks(ctx, id, v1, 0, 8)
		if err != nil {
			t.Fatalf("FetchChunks v1: %v", err)
		}

		// Commit v2 over chunk 3; v2 must serve the new key, v1 the old.
		v2, err := c.WriteChunks(ctx, id, v1, []ChunkWrite{
			{Index: 3, Payload: RealPayload(pattern(64<<10, 77))},
		})
		if err != nil {
			t.Fatalf("WriteChunks: %v", err)
		}
		after, err := c.FetchChunks(ctx, id, v2, 0, 8)
		if err != nil {
			t.Fatalf("FetchChunks v2: %v", err)
		}
		for i := range after {
			if i == 3 {
				if after[i].Key == base[i].Key {
					t.Error("v2 chunk 3 still serves v1's key")
				}
				if !bytes.Equal(after[i].Payload.Data, pattern(64<<10, 77)) {
					t.Error("v2 chunk 3 payload wrong")
				}
			} else if after[i].Key != base[i].Key {
				t.Errorf("v2 chunk %d does not share v1's key", i)
			}
		}
		again, err := c.FetchChunks(ctx, id, v1, 0, 8)
		if err != nil {
			t.Fatalf("re-fetch v1: %v", err)
		}
		if again[3].Key != base[3].Key {
			t.Error("v1 chunk 3 changed after commit — version boundary leaked")
		}

		// Clone: its (id', 1) map must alias v1's keys under its own entry.
		clone, err := c.Clone(ctx, id, v1)
		if err != nil {
			t.Fatalf("Clone: %v", err)
		}
		cl, err := c.FetchChunks(ctx, clone, 1, 0, 8)
		if err != nil {
			t.Fatalf("FetchChunks clone: %v", err)
		}
		for i := range cl {
			if cl[i].Key != base[i].Key {
				t.Errorf("clone chunk %d key %d != source %d", i, cl[i].Key, base[i].Key)
			}
		}
	})
}

// TestExtentCacheLRU: with the cap lowered, reading more versions than
// fit evicts the least-recently-used one, whose next read pays a
// descent again; cached versions stay free.
func TestExtentCacheLRU(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		w := NewClient(sys)
		id, _ := w.Create(ctx, 256<<10, 64<<10) // 4 chunks
		var vs []Version
		for i := 0; i < 3; i++ {
			v, err := w.WriteAt(ctx, id, Version(i), pattern(256<<10, byte(i)), 0)
			if err != nil {
				t.Fatalf("WriteAt %d: %v", i, err)
			}
			vs = append(vs, v)
		}

		c := NewClient(sys)
		c.SetExtentCacheCap(2)
		read := func(v Version) {
			if _, err := c.FetchChunks(ctx, id, v, 0, 4); err != nil {
				t.Fatalf("FetchChunks v%d: %v", v, err)
			}
		}
		read(vs[0])
		read(vs[1])
		if st := c.ExtentStats(); st.Versions != 2 {
			t.Fatalf("cached versions = %d, want 2", st.Versions)
		}
		read(vs[2]) // evicts vs[0]
		if st := c.ExtentStats(); st.Versions != 2 {
			t.Fatalf("cached versions after eviction = %d, want 2", st.Versions)
		}
		misses := c.ExtentStats().Misses
		read(vs[1]) // still cached: extent hit
		if st := c.ExtentStats(); st.Misses != misses {
			t.Errorf("cached version missed the extent cache %d times", st.Misses-misses)
		}
		read(vs[0]) // evicted: must re-resolve (extent miss)
		if st := c.ExtentStats(); st.Misses == misses {
			t.Error("evicted version hit the extent cache — LRU did not evict")
		}
	})
}

// TestExtentCacheRetirementFlush: retiring a version must invalidate
// cached extents — a cached snapshot that is retired afterwards reads
// as not-found again, not from stale cache.
func TestExtentCacheRetirementFlush(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		id, _ := c.Create(ctx, 256<<10, 64<<10)
		v1, _ := c.WriteAt(ctx, id, 0, pattern(256<<10, 1), 0)
		v2, err := c.WriteAt(ctx, id, v1, pattern(128<<10, 2), 0)
		if err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		if _, err := c.FetchChunks(ctx, id, v1, 0, 4); err != nil {
			t.Fatalf("FetchChunks v1: %v", err)
		}
		if err := sys.VM.Retire(ctx, id, v1); err != nil {
			t.Fatalf("Retire: %v", err)
		}
		_, err = c.FetchChunks(ctx, id, v1, 0, 4)
		if !errors.Is(err, ErrVersionRetired) {
			t.Errorf("read of retired cached version: err = %v, want ErrVersionRetired", err)
		}
		if _, err := c.FetchChunks(ctx, id, v2, 0, 2); err != nil {
			t.Errorf("live version after flush: %v", err)
		}
	})
}

// TestExtentCacheSurvivesUnrelatedRetirement: retiring a version of
// one blob must not invalidate cached extents of other live
// snapshots — the entry is revalidated once against the version
// manager and stays hot.
func TestExtentCacheSurvivesUnrelatedRetirement(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		a, _ := c.Create(ctx, 256<<10, 64<<10)
		av, _ := c.WriteAt(ctx, a, 0, pattern(256<<10, 1), 0)
		b, _ := c.Create(ctx, 256<<10, 64<<10)
		bv1, _ := c.WriteAt(ctx, b, 0, pattern(256<<10, 2), 0)
		if _, err := c.WriteAt(ctx, b, bv1, pattern(128<<10, 3), 0); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		if _, err := c.FetchChunks(ctx, a, av, 0, 4); err != nil {
			t.Fatalf("FetchChunks a: %v", err)
		}
		if err := sys.VM.Retire(ctx, b, bv1); err != nil {
			t.Fatalf("Retire: %v", err)
		}
		gets := sys.Meta.Gets.Load()
		hits := c.ExtentStats().Hits
		if _, err := c.FetchChunks(ctx, a, av, 0, 4); err != nil {
			t.Fatalf("re-fetch a after unrelated retirement: %v", err)
		}
		if g := sys.Meta.Gets.Load(); g != gets {
			t.Errorf("unrelated retirement forced %d metadata ops on a live snapshot", g-gets)
		}
		if h := c.ExtentStats().Hits; h != hits+1 {
			t.Errorf("extent hit count %d, want %d — entry was evicted by unrelated retirement", h, hits+1)
		}
	})
}

// TestFetchChunksClampedRanges covers the empty and edge ranges the
// resolver special-cases: lo==hi is free and empty; the last chunk of
// a blob whose chunk count is below the padded span resolves fine.
func TestFetchChunksClampedRanges(t *testing.T) {
	fab, sys := liveSystem(2, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := NewClient(sys)
		// 5 chunks of 64K → span padded to 8.
		id, _ := c.Create(ctx, 320<<10, 64<<10)
		v, err := c.WriteAt(ctx, id, 0, pattern(320<<10, 4), 0)
		if err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		gets := sys.Meta.Gets.Load()
		for _, lohi := range [][2]int64{{0, 0}, {3, 3}, {5, 5}} {
			chunks, err := c.FetchChunks(ctx, id, v, lohi[0], lohi[1])
			if err != nil {
				t.Fatalf("empty range [%d,%d): %v", lohi[0], lohi[1], err)
			}
			if len(chunks) != 0 {
				t.Fatalf("empty range [%d,%d) returned %d chunks", lohi[0], lohi[1], len(chunks))
			}
		}
		if g := sys.Meta.Gets.Load(); g != gets {
			t.Errorf("empty ranges paid %d metadata ops", g-gets)
		}
		last, err := c.FetchChunks(ctx, id, v, 4, 5)
		if err != nil {
			t.Fatalf("edge chunk: %v", err)
		}
		if len(last) != 1 || last[0].Index != 4 {
			t.Fatalf("edge chunk = %+v", last)
		}
		if _, err := c.FetchChunks(ctx, id, v, 4, 6); err == nil {
			t.Error("range past chunk count must fail")
		}
		// CollectLeaves itself at the padded-span edge: [5,8) is sparse.
		bg := boundGetter{c, ctx}
		root, err := sys.VM.Root(ctx, id, v)
		if err != nil {
			t.Fatalf("Root: %v", err)
		}
		leaves, err := CollectLeaves(bg, root, 8, 5, 8)
		if err != nil {
			t.Fatalf("CollectLeaves at span edge: %v", err)
		}
		for i, lf := range leaves {
			if lf.Chunk != 0 {
				t.Errorf("padded leaf %d = %+v, want sparse", i, lf)
			}
		}
	})
}

// TestPrefetchExtents: after one full-span prefetch, arbitrary reads
// over the snapshot cost zero metadata operations, and the prefetch
// itself completes in depth rounds per provider.
func TestPrefetchExtents(t *testing.T) {
	fab, sys := liveSystem(4, 1)
	fab.Run(func(ctx *cluster.Ctx) {
		w := NewClient(sys)
		id, _ := w.Create(ctx, 1<<20, 64<<10) // 16 chunks
		v, err := w.WriteAt(ctx, id, 0, pattern(1<<20, 6), 0)
		if err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		c := NewClient(sys)
		if err := c.PrefetchExtents(ctx, id, v); err != nil {
			t.Fatalf("PrefetchExtents: %v", err)
		}
		gets := sys.Meta.Gets.Load()
		for lo := int64(0); lo < 16; lo += 3 {
			hi := min(lo+3, 16)
			if _, err := c.FetchChunks(ctx, id, v, lo, hi); err != nil {
				t.Fatalf("FetchChunks [%d,%d): %v", lo, hi, err)
			}
		}
		if g := sys.Meta.Gets.Load(); g != gets {
			t.Errorf("reads after prefetch paid %d metadata ops", g-gets)
		}
	})
}

// TestGetBatchDeterministicOrder: the per-provider charge order of a
// batch is the provider ring, independent of ref order.
func TestGetBatchDeterministicOrder(t *testing.T) {
	fab := cluster.NewLive(3)
	m := NewMetaService([]cluster.NodeID{0, 1, 2})
	fab.Run(func(ctx *cluster.Ctx) {
		var nodes []NewNode
		for i := 1; i <= 6; i++ {
			nodes = append(nodes, NewNode{Ref: NodeRef(i), Node: TreeNode{Lo: int64(i), Hi: int64(i) + 1}})
		}
		m.PutBatch(ctx, nodes)
		a, errA := m.GetBatch(ctx, []NodeRef{1, 2, 3, 4, 5, 6})
		b, errB := m.GetBatch(ctx, []NodeRef{6, 5, 4, 3, 2, 1})
		if errA != nil || errB != nil {
			t.Fatalf("GetBatch: %v / %v", errA, errB)
		}
		for i := range a {
			if a[i] != b[len(b)-1-i] {
				t.Fatalf("batch results differ at %d: %+v vs %+v", i, a[i], b[len(b)-1-i])
			}
		}
	})
}
