package cluster

import (
	"sync"

	"blobvfs/internal/sim"
)

// Gate is a one-shot latch usable from both fabrics: activities Wait
// until some other activity Opens it. On the live fabric it is a closed
// channel; on the sim fabric it is a condition variable in virtual
// time. Opening an already-open gate is a no-op.
type Gate struct {
	mu   sync.Mutex
	open bool
	ch   chan struct{}
	cond sim.Cond
}

// NewGate returns a closed gate.
func NewGate() *Gate {
	return &Gate{ch: make(chan struct{})}
}

// Opened reports whether the gate has been opened.
func (g *Gate) Opened() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.open
}

// Wait blocks the activity until the gate opens.
func (g *Gate) Wait(ctx *Ctx) {
	if ctx.Proc != nil {
		// Simulation: single-threaded, no locking needed.
		if g.open {
			return
		}
		g.cond.Wait(ctx.Proc)
		return
	}
	g.mu.Lock()
	if g.open {
		g.mu.Unlock()
		return
	}
	ch := g.ch
	g.mu.Unlock()
	<-ch
}

// Open releases all current and future waiters.
func (g *Gate) Open(ctx *Ctx) {
	g.mu.Lock()
	if g.open {
		g.mu.Unlock()
		return
	}
	g.open = true
	close(g.ch)
	g.mu.Unlock()
	if ctx.Proc != nil {
		g.cond.Broadcast(ctx.Proc.Env())
	}
}
