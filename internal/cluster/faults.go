package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the fault-injection substrate: a per-node liveness
// registry and a schedulable fault plan. The IaaS clouds the paper
// targets lose repository nodes mid-deployment; the plan lets a
// scenario kill (and revive) nodes at fixed points in virtual time, so
// "handles node failure" becomes a measurable property of a run
// instead of an assumption. Everything is deterministic: events fire
// in sorted time order from one injector activity, and listeners run
// in registration order.

// FaultKind says what a FaultEvent does to its node.
type FaultKind uint8

const (
	// FaultKill marks the node failed: services subscribed to the
	// liveness registry stop using it (providers stop serving reads,
	// cohort peers stop being selected) until a FaultRevive.
	FaultKill FaultKind = iota
	// FaultRevive brings a killed node back.
	FaultRevive
)

// String renders the kind for plan dumps and test failures.
func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultRevive:
		return "revive"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// FaultScope says what a FaultEvent's Node field addresses: a single
// node, or a whole failure domain of the cluster topology that expands
// to its member nodes when the plan is armed.
type FaultScope uint8

const (
	// ScopeNode targets one node; Node is a NodeID. The zero value, so
	// plans built before scoped events existed keep their meaning.
	ScopeNode FaultScope = iota
	// ScopeRack targets every node of one rack; Node holds the global
	// rack index (see Topology.Rack).
	ScopeRack
	// ScopeZone targets every node of one zone; Node holds the zone
	// index.
	ScopeZone
)

// String renders the scope for plan dumps and test failures.
func (s FaultScope) String() string {
	switch s {
	case ScopeNode:
		return "node"
	case ScopeRack:
		return "rack"
	case ScopeZone:
		return "zone"
	}
	return fmt.Sprintf("FaultScope(%d)", uint8(s))
}

// FaultEvent schedules one liveness transition at an absolute virtual
// time (seconds since the run started). Scoped events (ScopeRack,
// ScopeZone) stand for one transition per member node and require an
// enabled topology to resolve; ExpandFaults performs the expansion.
type FaultEvent struct {
	At    float64
	Node  NodeID
	Kind  FaultKind
	Scope FaultScope
}

// KillAt returns the event that fails node at time t.
func KillAt(t float64, node NodeID) FaultEvent {
	return FaultEvent{At: t, Node: node, Kind: FaultKill}
}

// ReviveAt returns the event that brings node back at time t.
func ReviveAt(t float64, node NodeID) FaultEvent {
	return FaultEvent{At: t, Node: node, Kind: FaultRevive}
}

// KillRackAt returns the event that fails every node of the given rack
// (global rack index) at time t.
func KillRackAt(t float64, rack int) FaultEvent {
	return FaultEvent{At: t, Node: NodeID(rack), Kind: FaultKill, Scope: ScopeRack}
}

// ReviveRackAt returns the event that brings a whole rack back at time t.
func ReviveRackAt(t float64, rack int) FaultEvent {
	return FaultEvent{At: t, Node: NodeID(rack), Kind: FaultRevive, Scope: ScopeRack}
}

// KillZoneAt returns the event that fails every node of the given zone
// at time t.
func KillZoneAt(t float64, zone int) FaultEvent {
	return FaultEvent{At: t, Node: NodeID(zone), Kind: FaultKill, Scope: ScopeZone}
}

// ReviveZoneAt returns the event that brings a whole zone back at time t.
func ReviveZoneAt(t float64, zone int) FaultEvent {
	return FaultEvent{At: t, Node: NodeID(zone), Kind: FaultRevive, Scope: ScopeZone}
}

// ExpandFaults resolves scoped events into one node-scoped event per
// member node (ascending node order, all at the scoped event's time),
// leaving node-scoped events untouched. A plan with no scoped events is
// returned as-is. Execute's time sort is stable, so the ascending
// member order survives into execution and the expansion is
// deterministic.
func ExpandFaults(events []FaultEvent, topo Topology) []FaultEvent {
	scoped := false
	for _, ev := range events {
		if ev.Scope != ScopeNode {
			scoped = true
			break
		}
	}
	if !scoped {
		return events
	}
	out := make([]FaultEvent, 0, len(events))
	for _, ev := range events {
		first, count := 0, 0
		switch ev.Scope {
		case ScopeNode:
			out = append(out, ev)
			continue
		case ScopeRack:
			count = topo.NodesPerRack
			first = int(ev.Node) * count
		case ScopeZone:
			count = topo.RacksPerZone * topo.NodesPerRack
			first = int(ev.Node) * count
		}
		for n := first; n < first+count; n++ {
			out = append(out, FaultEvent{At: ev.At, Node: NodeID(n), Kind: ev.Kind})
		}
	}
	return out
}

// FaultPlanError reports a redundant transition in a fault plan: a
// kill of a node already dead at that point in the plan (kill+kill) or
// a revive of a node that is up (revive-before-kill). Such plans are
// almost always a scenario bug — the duplicate event would silently
// execute as a no-op — so validation rejects them.
type FaultPlanError struct {
	Node NodeID
	At   float64
	Kind FaultKind
}

// Error renders the redundant transition.
func (e *FaultPlanError) Error() string {
	state := "dead"
	if e.Kind == FaultRevive {
		state = "up"
	}
	return fmt.Sprintf("cluster: redundant fault event: %s of node %d at t=%g, but the node is already %s there",
		e.Kind, e.Node, e.At, state)
}

// ValidateFaults checks a fault plan against a cluster size and
// topology. Scoped events need an enabled topology to name their
// failure domain. The plan is then expanded and simulated in execution
// order (the stable time sort Execute applies); a redundant transition
// is rejected with a *FaultPlanError rather than left to silently
// no-op at run time.
func ValidateFaults(events []FaultEvent, nodes int, topo Topology) error {
	for _, ev := range events {
		if ev.At < 0 {
			return fmt.Errorf("cluster: fault event at negative time %g", ev.At)
		}
		if ev.Kind != FaultKill && ev.Kind != FaultRevive {
			return fmt.Errorf("cluster: fault event with unknown kind %d", ev.Kind)
		}
		switch ev.Scope {
		case ScopeNode:
			if int(ev.Node) < 0 || int(ev.Node) >= nodes {
				return fmt.Errorf("cluster: fault event for node %d outside cluster of %d", ev.Node, nodes)
			}
		case ScopeRack:
			if !topo.Enabled() {
				return fmt.Errorf("cluster: rack-scoped fault event needs a topology")
			}
			if int(ev.Node) < 0 || int(ev.Node) >= topo.Racks() {
				return fmt.Errorf("cluster: fault event for rack %d outside topology of %d racks", ev.Node, topo.Racks())
			}
		case ScopeZone:
			if !topo.Enabled() {
				return fmt.Errorf("cluster: zone-scoped fault event needs a topology")
			}
			if int(ev.Node) < 0 || int(ev.Node) >= topo.Zones {
				return fmt.Errorf("cluster: fault event for zone %d outside topology of %d zones", ev.Node, topo.Zones)
			}
		default:
			return fmt.Errorf("cluster: fault event with unknown scope %d", ev.Scope)
		}
	}
	plan := append([]FaultEvent(nil), ExpandFaults(events, topo)...)
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].At < plan[j].At })
	up := make([]bool, nodes)
	for i := range up {
		up[i] = true
	}
	for _, ev := range plan {
		// A kill of a dead node or a revive of a live one would no-op.
		after := ev.Kind == FaultRevive
		if up[ev.Node] == after {
			return &FaultPlanError{Node: ev.Node, At: ev.At, Kind: ev.Kind}
		}
		up[ev.Node] = after
	}
	return nil
}

// Liveness tracks which nodes of a cluster are up. Services subscribe
// with OnChange; Kill and Revive flip a node's state and invoke every
// listener — in registration order, outside any lock, so a listener
// may perform fabric operations (re-replication transfers, retraction
// broadcasts) without stalling the discrete-event scheduler. State is
// one atomic flag per node: Alive sits on the p2p holder-selection
// hot path of every fetch, so it must stay contention-free even on a
// repo that never configures a fault plan.
type Liveness struct {
	alive []atomic.Bool

	mu        sync.Mutex // guards listeners and serializes transitions
	listeners []func(ctx *Ctx, node NodeID, alive bool)
}

// NewLiveness returns a registry with all nodes up.
func NewLiveness(nodes int) *Liveness {
	l := &Liveness{alive: make([]atomic.Bool, nodes)}
	for i := range l.alive {
		l.alive[i].Store(true)
	}
	return l
}

// Nodes returns the cluster size the registry covers.
func (l *Liveness) Nodes() int { return len(l.alive) }

// Alive reports whether node is up. Nodes outside the registry are
// reported down.
func (l *Liveness) Alive(node NodeID) bool {
	return int(node) >= 0 && int(node) < len(l.alive) && l.alive[node].Load()
}

// AliveCount returns how many nodes are currently up.
func (l *Liveness) AliveCount() int {
	n := 0
	for i := range l.alive {
		if l.alive[i].Load() {
			n++
		}
	}
	return n
}

// OnChange subscribes fn to liveness transitions. Listeners run in
// registration order on the activity that performs the Kill or Revive.
func (l *Liveness) OnChange(fn func(ctx *Ctx, node NodeID, alive bool)) {
	l.mu.Lock()
	l.listeners = append(l.listeners, fn)
	l.mu.Unlock()
}

// Kill marks node failed and notifies the listeners. It reports
// whether the state changed (killing a dead or out-of-range node is a
// no-op).
func (l *Liveness) Kill(ctx *Ctx, node NodeID) bool { return l.set(ctx, node, false) }

// Revive marks node up again and notifies the listeners.
func (l *Liveness) Revive(ctx *Ctx, node NodeID) bool { return l.set(ctx, node, true) }

func (l *Liveness) set(ctx *Ctx, node NodeID, alive bool) bool {
	if int(node) < 0 || int(node) >= len(l.alive) {
		return false
	}
	// The mutex serializes concurrent transitions (so two racing kills
	// invoke the listeners once) without being touched by Alive readers.
	l.mu.Lock()
	if !l.alive[node].CompareAndSwap(!alive, alive) {
		l.mu.Unlock()
		return false
	}
	listeners := make([]func(ctx *Ctx, node NodeID, alive bool), len(l.listeners))
	copy(listeners, l.listeners)
	l.mu.Unlock()
	for _, fn := range listeners {
		fn(ctx, node, alive)
	}
	return true
}

// Execute spawns the fault-injector activity: it walks the plan in
// time order, sleeps until each event is due and applies it. Events
// already due fire immediately; equal-time events keep their plan
// order (sort is stable). The returned task finishes after the last
// event's listeners have run.
//
// Times are virtual: on the Live fabric, which has no clock (Sleep is
// a no-op and Now is always 0), the whole plan fires back-to-back in
// time order as soon as Execute runs. Timed outage windows need the
// Sim fabric.
func (l *Liveness) Execute(ctx *Ctx, events []FaultEvent) Task {
	plan := append([]FaultEvent(nil), events...)
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].At < plan[j].At })
	return ctx.Go("fault-injector", ctx.Node(), func(cc *Ctx) {
		for _, ev := range plan {
			if d := ev.At - cc.Now(); d > 0 {
				cc.Sleep(d)
			}
			switch ev.Kind {
			case FaultKill:
				l.Kill(cc, ev.Node)
			case FaultRevive:
				l.Revive(cc, ev.Node)
			}
		}
	})
}
