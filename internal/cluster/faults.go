package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the fault-injection substrate: a per-node liveness
// registry and a schedulable fault plan. The IaaS clouds the paper
// targets lose repository nodes mid-deployment; the plan lets a
// scenario kill (and revive) nodes at fixed points in virtual time, so
// "handles node failure" becomes a measurable property of a run
// instead of an assumption. Everything is deterministic: events fire
// in sorted time order from one injector activity, and listeners run
// in registration order.

// FaultKind says what a FaultEvent does to its node.
type FaultKind uint8

const (
	// FaultKill marks the node failed: services subscribed to the
	// liveness registry stop using it (providers stop serving reads,
	// cohort peers stop being selected) until a FaultRevive.
	FaultKill FaultKind = iota
	// FaultRevive brings a killed node back.
	FaultRevive
)

// String renders the kind for plan dumps and test failures.
func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultRevive:
		return "revive"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// FaultEvent schedules one liveness transition at an absolute virtual
// time (seconds since the run started).
type FaultEvent struct {
	At   float64
	Node NodeID
	Kind FaultKind
}

// KillAt returns the event that fails node at time t.
func KillAt(t float64, node NodeID) FaultEvent {
	return FaultEvent{At: t, Node: node, Kind: FaultKill}
}

// ReviveAt returns the event that brings node back at time t.
func ReviveAt(t float64, node NodeID) FaultEvent {
	return FaultEvent{At: t, Node: node, Kind: FaultRevive}
}

// ValidateFaults checks a fault plan against a cluster size.
func ValidateFaults(events []FaultEvent, nodes int) error {
	for _, ev := range events {
		if ev.At < 0 {
			return fmt.Errorf("cluster: fault event at negative time %g", ev.At)
		}
		if int(ev.Node) < 0 || int(ev.Node) >= nodes {
			return fmt.Errorf("cluster: fault event for node %d outside cluster of %d", ev.Node, nodes)
		}
		if ev.Kind != FaultKill && ev.Kind != FaultRevive {
			return fmt.Errorf("cluster: fault event with unknown kind %d", ev.Kind)
		}
	}
	return nil
}

// Liveness tracks which nodes of a cluster are up. Services subscribe
// with OnChange; Kill and Revive flip a node's state and invoke every
// listener — in registration order, outside any lock, so a listener
// may perform fabric operations (re-replication transfers, retraction
// broadcasts) without stalling the discrete-event scheduler. State is
// one atomic flag per node: Alive sits on the p2p holder-selection
// hot path of every fetch, so it must stay contention-free even on a
// repo that never configures a fault plan.
type Liveness struct {
	alive []atomic.Bool

	mu        sync.Mutex // guards listeners and serializes transitions
	listeners []func(ctx *Ctx, node NodeID, alive bool)
}

// NewLiveness returns a registry with all nodes up.
func NewLiveness(nodes int) *Liveness {
	l := &Liveness{alive: make([]atomic.Bool, nodes)}
	for i := range l.alive {
		l.alive[i].Store(true)
	}
	return l
}

// Nodes returns the cluster size the registry covers.
func (l *Liveness) Nodes() int { return len(l.alive) }

// Alive reports whether node is up. Nodes outside the registry are
// reported down.
func (l *Liveness) Alive(node NodeID) bool {
	return int(node) >= 0 && int(node) < len(l.alive) && l.alive[node].Load()
}

// AliveCount returns how many nodes are currently up.
func (l *Liveness) AliveCount() int {
	n := 0
	for i := range l.alive {
		if l.alive[i].Load() {
			n++
		}
	}
	return n
}

// OnChange subscribes fn to liveness transitions. Listeners run in
// registration order on the activity that performs the Kill or Revive.
func (l *Liveness) OnChange(fn func(ctx *Ctx, node NodeID, alive bool)) {
	l.mu.Lock()
	l.listeners = append(l.listeners, fn)
	l.mu.Unlock()
}

// Kill marks node failed and notifies the listeners. It reports
// whether the state changed (killing a dead or out-of-range node is a
// no-op).
func (l *Liveness) Kill(ctx *Ctx, node NodeID) bool { return l.set(ctx, node, false) }

// Revive marks node up again and notifies the listeners.
func (l *Liveness) Revive(ctx *Ctx, node NodeID) bool { return l.set(ctx, node, true) }

func (l *Liveness) set(ctx *Ctx, node NodeID, alive bool) bool {
	if int(node) < 0 || int(node) >= len(l.alive) {
		return false
	}
	// The mutex serializes concurrent transitions (so two racing kills
	// invoke the listeners once) without being touched by Alive readers.
	l.mu.Lock()
	if !l.alive[node].CompareAndSwap(!alive, alive) {
		l.mu.Unlock()
		return false
	}
	listeners := make([]func(ctx *Ctx, node NodeID, alive bool), len(l.listeners))
	copy(listeners, l.listeners)
	l.mu.Unlock()
	for _, fn := range listeners {
		fn(ctx, node, alive)
	}
	return true
}

// Execute spawns the fault-injector activity: it walks the plan in
// time order, sleeps until each event is due and applies it. Events
// already due fire immediately; equal-time events keep their plan
// order (sort is stable). The returned task finishes after the last
// event's listeners have run.
//
// Times are virtual: on the Live fabric, which has no clock (Sleep is
// a no-op and Now is always 0), the whole plan fires back-to-back in
// time order as soon as Execute runs. Timed outage windows need the
// Sim fabric.
func (l *Liveness) Execute(ctx *Ctx, events []FaultEvent) Task {
	plan := append([]FaultEvent(nil), events...)
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].At < plan[j].At })
	return ctx.Go("fault-injector", ctx.Node(), func(cc *Ctx) {
		for _, ev := range plan {
			if d := ev.At - cc.Now(); d > 0 {
				cc.Sleep(d)
			}
			switch ev.Kind {
			case FaultKill:
				l.Kill(cc, ev.Node)
			case FaultRevive:
				l.Revive(cc, ev.Node)
			}
		}
	})
}
