package cluster

import "testing"

func TestGateSimFabric(t *testing.T) {
	fab := NewSim(DefaultConfig(2))
	g := NewGate()
	var wakeAt float64
	fab.Run(func(ctx *Ctx) {
		w := ctx.Go("waiter", 0, func(cc *Ctx) {
			g.Wait(cc)
			wakeAt = cc.Now()
		})
		o := ctx.Go("opener", 1, func(cc *Ctx) {
			cc.Sleep(3)
			g.Open(cc)
		})
		ctx.Wait(w)
		ctx.Wait(o)
		// Waiting on an open gate returns immediately.
		g.Wait(ctx)
	})
	if wakeAt != 3 {
		t.Fatalf("waiter woke at %v, want 3", wakeAt)
	}
	if !g.Opened() {
		t.Fatal("gate not opened")
	}
}

func TestGateLiveFabric(t *testing.T) {
	fab := NewLive(2)
	g := NewGate()
	order := make(chan string, 2)
	fab.Run(func(ctx *Ctx) {
		w := ctx.Go("waiter", 0, func(cc *Ctx) {
			g.Wait(cc)
			order <- "woke"
		})
		o := ctx.Go("opener", 1, func(cc *Ctx) {
			order <- "opening"
			g.Open(cc)
		})
		ctx.Wait(o)
		ctx.Wait(w)
	})
	if first := <-order; first != "opening" {
		t.Fatalf("first event %q, want opening", first)
	}
	// Double open is a no-op.
	fab.Run(func(ctx *Ctx) { g.Open(ctx) })
}
