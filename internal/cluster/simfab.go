package cluster

import (
	"fmt"
	"os"
	"strconv"

	"blobvfs/internal/sim"
	"blobvfs/internal/sim/flownet"
)

// Sim is the discrete-event fabric: it charges every network, disk and
// CPU operation on shared, contended resources in virtual time.
//
// Network: each node has a full-duplex NIC modeled as an uplink and a
// downlink in a max-min fair flow network; the switch core is assumed
// non-blocking (Gigabit Ethernet cluster, §5.1 of the paper).
//
// Disk: each node's disk is a processor-sharing pool; per-operation
// positioning (seek) is charged as equivalent bandwidth consumption.
//
// Asynchronous writes: each node has a bounded write-back buffer drained
// to disk in the background, giving the fast-then-degrading COMMIT
// latencies the paper observes for BlobSeer (§5.3).
type Sim struct {
	cfg     Config
	env     *sim.Env
	net     *flownet.Net
	up      []*flownet.Link
	down    []*flownet.Link
	disks   []*sim.PSPool
	wbuf    []*sim.Semaphore
	traffic int64

	// Tier links of the configured topology (nil slices on the flat
	// cluster): per-rack uplink/downlink pairs indexed by global rack,
	// and per-zone interconnect pairs indexed by zone. Cross-rack
	// traffic traverses both endpoints' rack links; cross-zone traffic
	// additionally traverses both zones' interconnect links.
	rackUp, rackDown []*flownet.Link
	zoneUp, zoneDown []*flownet.Link
	// tierBytes accounts off-node traffic by locality tier (the flat
	// cluster books everything under TierRack). Fixed-size array, so
	// iteration over tiers is inherently ordered.
	tierBytes [NumTiers]int64
}

// linkName builds a link's diagnostic name without fmt: NewSim creates
// four named resources per node (plus tier links), and Sprintf on that
// setup path is measurable at the 10k-node scale.
func linkName(prefix string, i int, suffix string) string {
	return prefix + strconv.Itoa(i) + suffix
}

// NewSim returns a simulated fabric with the given configuration.
func NewSim(cfg Config) *Sim {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	env := sim.New()
	f := &Sim{
		cfg:   cfg,
		env:   env,
		net:   flownet.New(env),
		up:    make([]*flownet.Link, cfg.Nodes),
		down:  make([]*flownet.Link, cfg.Nodes),
		disks: make([]*sim.PSPool, cfg.Nodes),
		wbuf:  make([]*sim.Semaphore, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		f.up[i] = f.net.NewLink(linkName("n", i, ".up"), cfg.NICBandwidth)
		f.down[i] = f.net.NewLink(linkName("n", i, ".down"), cfg.NICBandwidth)
		f.disks[i] = sim.NewPSPool(env, linkName("n", i, ".disk"), cfg.DiskBandwidth)
		f.wbuf[i] = sim.NewSemaphore(env, cfg.WriteBuffer)
	}
	// Tier links are created after every node link, so node link
	// identities (the flownet tie-break order) are unchanged whether or
	// not a topology is configured.
	if topo := cfg.Topology; topo.Enabled() {
		racks := topo.Racks()
		f.rackUp = make([]*flownet.Link, racks)
		f.rackDown = make([]*flownet.Link, racks)
		for r := 0; r < racks; r++ {
			f.rackUp[r] = f.net.NewLink(linkName("r", r, ".up"), topo.RackBandwidth)
			f.rackDown[r] = f.net.NewLink(linkName("r", r, ".down"), topo.RackBandwidth)
		}
		f.zoneUp = make([]*flownet.Link, topo.Zones)
		f.zoneDown = make([]*flownet.Link, topo.Zones)
		for z := 0; z < topo.Zones; z++ {
			f.zoneUp[z] = f.net.NewLink(linkName("z", z, ".up"), topo.ZoneBandwidth)
			f.zoneDown[z] = f.net.NewLink(linkName("z", z, ".down"), topo.ZoneBandwidth)
		}
	}
	return f
}

// Env exposes the underlying simulation environment (for custom models
// and tests).
func (f *Sim) Env() *sim.Env { return f.env }

// Net exposes the flow network (for custom transfer paths, e.g. the
// broadcast trees of the prepropagation baseline).
func (f *Sim) Net() *flownet.Net { return f.net }

// Uplink returns node n's NIC uplink.
func (f *Sim) Uplink(n NodeID) *flownet.Link { return f.up[n] }

// Downlink returns node n's NIC downlink.
func (f *Sim) Downlink(n NodeID) *flownet.Link { return f.down[n] }

// Disk returns node n's disk pool.
func (f *Sim) Disk(n NodeID) *sim.PSPool { return f.disks[n] }

// Nodes returns the cluster size.
func (f *Sim) Nodes() int { return f.cfg.Nodes }

// Config returns the physical constants in force.
func (f *Sim) Config() Config { return f.cfg }

// Now returns the current virtual time in seconds.
func (f *Sim) Now() float64 { return f.env.Now() }

// NetTraffic returns cumulative off-node traffic in bytes.
func (f *Sim) NetTraffic() int64 { return f.traffic }

// TierTraffic returns cumulative off-node traffic in bytes that
// crossed the given locality tier: TierRack for intra-rack exchanges
// (all off-node traffic of a flat cluster), TierZone for cross-rack,
// TierRemote for cross-zone — the scarce bytes of a multi-zone
// deployment.
func (f *Sim) TierTraffic(t Tier) int64 { return f.tierBytes[t] }

// CrossZoneBytes returns the cumulative traffic that crossed a zone
// interconnect. It is the headline metric of topology-aware placement:
// shorthand for TierTraffic(TierRemote).
func (f *Sim) CrossZoneBytes() int64 { return f.tierBytes[TierRemote] }

// RackUplink returns rack r's uplink (nil without a topology); its
// TotalBytes is the per-rack egress, indexed in sorted rack order.
func (f *Sim) RackUplink(r int) *flownet.Link { return f.rackUp[r] }

// ZoneUplink returns zone z's interconnect uplink (nil without a
// topology).
func (f *Sim) ZoneUplink(z int) *flownet.Link { return f.zoneUp[z] }

// ResetTraffic zeroes the traffic counters (total and per-tier).
func (f *Sim) ResetTraffic() {
	f.traffic = 0
	f.tierBytes = [NumTiers]int64{}
}

// Run executes fn as the root activity on node 0 and drives the
// simulation until the event queue drains. Setting BLOBVFS_SIM_DEBUG
// makes Run log virtual-time progress to stderr, which helps diagnose
// event storms in models.
func (f *Sim) Run(fn func(*Ctx)) {
	f.env.Go("main", func(p *sim.Proc) {
		fn(&Ctx{fab: f, node: 0, Proc: p})
	})
	if os.Getenv("BLOBVFS_SIM_DEBUG") != "" {
		for f.env.Pending() > 0 {
			f.env.RunUntil(f.env.Now() + 5)
			fmt.Fprintf(os.Stderr, "sim: now=%10.3f pending=%8d procs=%6d steps=%12d next=%v\n",
				f.env.Now(), f.env.Pending(), f.env.Procs(), f.env.Steps(), f.env.PendingTimes(6))
		}
	} else {
		f.env.Run()
	}
	if n := f.env.Procs(); n != 0 {
		panic(fmt.Sprintf("cluster: simulation deadlock, %d processes still blocked", n))
	}
}

type simTask struct {
	proc *sim.Proc
}

func (*simTask) isTask() {}

func (f *Sim) spawn(name string, node NodeID, _ *Ctx, fn func(*Ctx)) Task {
	f.checkNode(node)
	p := f.env.Go(name, func(p *sim.Proc) {
		fn(&Ctx{fab: f, node: node, Proc: p})
	})
	return &simTask{proc: p}
}

func (f *Sim) wait(ctx *Ctx, t Task) {
	ctx.Proc.Join(t.(*simTask).proc)
}

func (f *Sim) sleep(ctx *Ctx, d float64)   { ctx.Proc.Sleep(d) }
func (f *Sim) compute(ctx *Ctx, d float64) { ctx.Proc.Sleep(d) }

// smallPayload is the cutoff below which an RPC payload is charged as
// serialization delay instead of occupying the flow network: a message
// of a few KB fits in the socket buffers and never contends for
// sustained bandwidth, while creating a flow for it would make the
// max-min recomputation the simulation's bottleneck under metadata
// chatter.
const smallPayload = 8 << 10

func (f *Sim) rpc(ctx *Ctx, from, to NodeID, reqBytes, respBytes int64) {
	f.checkNode(from)
	f.checkNode(to)
	p := ctx.Proc
	if from == to {
		p.Sleep(f.cfg.LocalRPC)
		return
	}
	tier := f.cfg.Topology.Tier(from, to)
	f.traffic += reqBytes + respBytes
	f.tierBytes[tier] += reqBytes + respBytes
	delay := f.cfg.RTT + f.cfg.ReqOverhead + f.tierLatency(tier)
	if reqBytes > 0 && reqBytes <= smallPayload {
		delay += float64(reqBytes) / f.cfg.NICBandwidth
		reqBytes = 0
	}
	if respBytes > 0 && respBytes <= smallPayload {
		delay += float64(respBytes) / f.cfg.NICBandwidth
		respBytes = 0
	}
	p.Sleep(delay)
	if reqBytes > 0 {
		f.net.Transfer(p, float64(reqBytes), f.pathLinks(from, to, tier, nil)...)
	}
	if respBytes > 0 {
		f.net.Transfer(p, float64(respBytes), f.pathLinks(to, from, tier, nil)...)
	}
}

// tierLatency returns the extra round-trip cost of a path's locality
// tier: zero within a rack (and on the flat cluster), the topology's
// rack latency for cross-rack paths, its zone latency for cross-zone.
func (f *Sim) tierLatency(tier Tier) float64 {
	switch tier {
	case TierZone:
		return f.cfg.Topology.RackLatency
	case TierRemote:
		return f.cfg.Topology.ZoneLatency
	}
	return 0
}

// pathLinks assembles the constraint links of a one-way transfer from
// src to dst whose locality tier is already known: the endpoint NICs
// always, the two rack uplinks when the path leaves a rack, and the
// two zone interconnects when it leaves a zone. extra links (caller
// throttles) are appended last. On the flat cluster this is exactly
// the historical up/down pair.
func (f *Sim) pathLinks(src, dst NodeID, tier Tier, extra []*flownet.Link) []*flownet.Link {
	links := make([]*flownet.Link, 0, 6+len(extra))
	links = append(links, f.up[src])
	if tier >= TierZone {
		topo := f.cfg.Topology
		links = append(links, f.rackUp[topo.Rack(src)])
		if tier == TierRemote {
			links = append(links, f.zoneUp[topo.Zone(src)], f.zoneDown[topo.Zone(dst)])
		}
		links = append(links, f.rackDown[topo.Rack(dst)])
	}
	links = append(links, f.down[dst])
	return append(links, extra...)
}

// TransferVia performs a raw one-way bulk transfer from one node to
// another through any extra constraint links (e.g. a per-edge throttle
// modeling a pipelined broadcast chain's effective rate). The transfer
// is charged as network traffic. Callers on the live fabric should use
// Ctx.RPC instead; this entry point exists for transport models such as
// the prepropagation broadcast tree.
func (f *Sim) TransferVia(ctx *Ctx, from, to NodeID, bytes int64, extra ...*flownet.Link) {
	f.checkNode(from)
	f.checkNode(to)
	if bytes <= 0 || from == to {
		return
	}
	tier := f.cfg.Topology.Tier(from, to)
	f.traffic += bytes
	f.tierBytes[tier] += bytes
	ctx.Proc.Sleep(f.cfg.RTT + f.tierLatency(tier))
	f.net.Transfer(ctx.Proc, float64(bytes), f.pathLinks(from, to, tier, extra)...)
}

// seekCost converts positioning time into equivalent bandwidth units so
// seeks occupy the disk alongside streaming transfers.
func (f *Sim) seekCost() float64 { return f.cfg.DiskSeek * f.cfg.DiskBandwidth }

func (f *Sim) diskRead(ctx *Ctx, node NodeID, bytes int64) {
	f.checkNode(node)
	if bytes <= 0 {
		return
	}
	f.disks[node].Use(ctx.Proc, float64(bytes)+f.seekCost())
}

func (f *Sim) diskWrite(ctx *Ctx, node NodeID, bytes int64, async bool) {
	f.checkNode(node)
	if bytes <= 0 {
		return
	}
	if !async {
		f.disks[node].Use(ctx.Proc, float64(bytes)+f.seekCost())
		return
	}
	// Reserve buffer space (blocking only under backpressure), then
	// drain to disk in the background and release the reservation.
	buf := f.wbuf[node]
	disk := f.disks[node]
	work := float64(bytes) + f.seekCost()
	if bytes > buf.Capacity() {
		// Oversized writes bypass the buffer and go straight to disk.
		disk.Use(ctx.Proc, work)
		return
	}
	buf.Acquire(ctx.Proc, bytes)
	// The drainer is a GoLite state machine, not a process: a flash
	// crowd issues one write-back per committed chunk, and parking a
	// goroutine for each made this the hottest spawn site in the tree.
	// The async completion fires at the same event position the blocked
	// drainer would have resumed at, so schedules are unchanged.
	f.env.GoLite("write-back", func() {
		disk.UseAsync(work, func() { buf.Release(bytes) })
	})
}

func (f *Sim) checkNode(n NodeID) {
	if n < 0 || int(n) >= f.cfg.Nodes {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", n, f.cfg.Nodes))
	}
}
