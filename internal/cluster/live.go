package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Live is the zero-cost fabric: activities are real goroutines, every
// charge operation returns immediately, and only traffic is accounted.
// It exists so that the entire storage stack (blob store, mirroring
// module, qcow2, PVFS, middleware) can be exercised with real bytes and
// real concurrency in unit tests and examples, independent of the
// simulator.
type Live struct {
	cfg     Config
	wg      sync.WaitGroup
	traffic atomic.Int64
}

// NewLive returns a live fabric with the given number of nodes.
func NewLive(nodes int) *Live {
	cfg := DefaultConfig(nodes)
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Live{cfg: cfg}
}

// Nodes returns the cluster size.
func (f *Live) Nodes() int { return f.cfg.Nodes }

// Config returns the physical constants (unused for costing on Live).
func (f *Live) Config() Config { return f.cfg }

// Now returns 0: the live fabric has no virtual clock.
func (f *Live) Now() float64 { return 0 }

// NetTraffic returns cumulative off-node traffic in bytes.
func (f *Live) NetTraffic() int64 { return f.traffic.Load() }

// ResetTraffic zeroes the traffic counter.
func (f *Live) ResetTraffic() { f.traffic.Store(0) }

// Run executes fn on node 0 and waits for all spawned activities.
func (f *Live) Run(fn func(*Ctx)) {
	fn(&Ctx{fab: f, node: 0})
	f.wg.Wait()
}

type liveTask struct {
	done chan struct{}
}

func (*liveTask) isTask() {}

func (f *Live) spawn(name string, node NodeID, _ *Ctx, fn func(*Ctx)) Task {
	f.checkNode(node)
	t := &liveTask{done: make(chan struct{})}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer close(t.done)
		fn(&Ctx{fab: f, node: node})
	}()
	return t
}

func (f *Live) wait(_ *Ctx, t Task) { <-t.(*liveTask).done }

func (f *Live) sleep(_ *Ctx, d float64)   {}
func (f *Live) compute(_ *Ctx, d float64) {}

func (f *Live) rpc(_ *Ctx, from, to NodeID, reqBytes, respBytes int64) {
	f.checkNode(from)
	f.checkNode(to)
	if from != to {
		f.traffic.Add(reqBytes + respBytes)
	}
}

func (f *Live) diskRead(_ *Ctx, node NodeID, bytes int64)           { f.checkNode(node) }
func (f *Live) diskWrite(_ *Ctx, node NodeID, bytes int64, _a bool) { f.checkNode(node) }

func (f *Live) checkNode(n NodeID) {
	if n < 0 || int(n) >= f.cfg.Nodes {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", n, f.cfg.Nodes))
	}
}
