package cluster

import (
	"errors"
	"reflect"
	"testing"
)

// TestLivenessTransitions: kill/revive flip state exactly once each
// and notify listeners in registration order.
func TestLivenessTransitions(t *testing.T) {
	fab := NewLive(4)
	lv := NewLiveness(4)
	var log []string
	lv.OnChange(func(_ *Ctx, n NodeID, alive bool) {
		if alive {
			log = append(log, "a:up")
		} else {
			log = append(log, "a:down")
		}
	})
	lv.OnChange(func(_ *Ctx, n NodeID, alive bool) {
		log = append(log, "b")
	})
	fab.Run(func(ctx *Ctx) {
		if !lv.Alive(2) {
			t.Fatal("fresh registry must report nodes alive")
		}
		if !lv.Kill(ctx, 2) {
			t.Fatal("first kill must report a transition")
		}
		if lv.Kill(ctx, 2) {
			t.Fatal("second kill of a dead node must be a no-op")
		}
		if lv.Alive(2) {
			t.Fatal("killed node still alive")
		}
		if got := lv.AliveCount(); got != 3 {
			t.Fatalf("AliveCount = %d, want 3", got)
		}
		if !lv.Revive(ctx, 2) || lv.Revive(ctx, 2) {
			t.Fatal("revive must transition exactly once")
		}
		if lv.Kill(ctx, 99) || lv.Revive(ctx, -1) {
			t.Fatal("out-of-range nodes must be no-ops")
		}
	})
	want := []string{"a:down", "b", "a:up", "b"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("listener log = %v, want %v", log, want)
	}
	if lv.Alive(99) {
		t.Fatal("out-of-range node reported alive")
	}
}

// TestFaultPlanExecution: events fire in time order at their scheduled
// virtual times, including events already due when the injector
// starts.
func TestFaultPlanExecution(t *testing.T) {
	fab := NewSim(DefaultConfig(4))
	lv := NewLiveness(4)
	type hit struct {
		at    float64
		node  NodeID
		alive bool
	}
	var hits []hit
	fab.Run(func(ctx *Ctx) {
		lv.OnChange(func(cc *Ctx, n NodeID, alive bool) {
			hits = append(hits, hit{cc.Now(), n, alive})
		})
		ctx.Sleep(1.0)
		// Plan deliberately out of order; the 0.5s event is already due.
		task := lv.Execute(ctx, []FaultEvent{
			KillAt(3.0, 1),
			ReviveAt(4.5, 1),
			KillAt(0.5, 2),
		})
		ctx.Wait(task)
		if got := ctx.Now(); got != 4.5 {
			t.Errorf("injector finished at %g, want 4.5", got)
		}
	})
	want := []hit{{1.0, 2, false}, {3.0, 1, false}, {4.5, 1, true}}
	if !reflect.DeepEqual(hits, want) {
		t.Fatalf("events = %v, want %v", hits, want)
	}
}

// TestValidateFaults rejects malformed plans.
func TestValidateFaults(t *testing.T) {
	flat := Topology{}
	if err := ValidateFaults([]FaultEvent{KillAt(1, 3)}, 4, flat); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for _, bad := range [][]FaultEvent{
		{KillAt(-1, 0)},
		{KillAt(1, 4)},
		{ReviveAt(1, -1)},
		{{At: 1, Node: 0, Kind: FaultKind(9)}},
		{{At: 1, Node: 0, Kind: FaultKill, Scope: FaultScope(9)}},
		{KillRackAt(1, 0)}, // scoped event on a flat cluster
		{KillZoneAt(1, 0)},
	} {
		if err := ValidateFaults(bad, 4, flat); err == nil {
			t.Errorf("plan %v accepted", bad)
		}
	}
	if FaultKill.String() != "kill" || FaultRevive.String() != "revive" {
		t.Error("FaultKind strings wrong")
	}
	if ScopeNode.String() != "node" || ScopeRack.String() != "rack" || ScopeZone.String() != "zone" {
		t.Error("FaultScope strings wrong")
	}
}

// TestValidateFaultsRedundantTransitions: plans whose events would
// silently no-op — a kill of a node already dead at that point or a
// revive of a live one — are rejected with a typed *FaultPlanError.
func TestValidateFaultsRedundantTransitions(t *testing.T) {
	topo := Topology{Zones: 2, RacksPerZone: 2, NodesPerRack: 2,
		RackBandwidth: 1, ZoneBandwidth: 1}
	cases := []struct {
		name string
		plan []FaultEvent
		bad  bool
	}{
		{"kill then revive then kill", []FaultEvent{KillAt(1, 0), ReviveAt(2, 0), KillAt(3, 0)}, false},
		{"kill twice", []FaultEvent{KillAt(1, 0), KillAt(2, 0)}, true},
		{"revive before kill", []FaultEvent{ReviveAt(1, 0)}, true},
		{"revive twice", []FaultEvent{KillAt(1, 0), ReviveAt(2, 0), ReviveAt(3, 0)}, true},
		{"out-of-order times still simulate in time order", []FaultEvent{ReviveAt(2, 0), KillAt(1, 0)}, false},
		{"two nodes independent", []FaultEvent{KillAt(1, 0), KillAt(1, 1), ReviveAt(2, 1)}, false},
		{"node kill inside killed rack", []FaultEvent{KillRackAt(1, 0), KillAt(2, 1)}, true},
		{"rack kill then zone kill overlapping", []FaultEvent{KillRackAt(1, 0), KillZoneAt(2, 0)}, true},
		{"rack kill then rack revive", []FaultEvent{KillRackAt(1, 1), ReviveRackAt(2, 1)}, false},
		{"zone kill then zone revive", []FaultEvent{KillZoneAt(1, 0), ReviveZoneAt(2, 0)}, false},
		{"zone revive over a live zone", []FaultEvent{ReviveZoneAt(1, 1)}, true},
		{"zone kill disjoint from rack kill", []FaultEvent{KillRackAt(1, 0), KillZoneAt(2, 1)}, false},
	}
	for _, tc := range cases {
		err := ValidateFaults(tc.plan, 8, topo)
		if tc.bad {
			var planErr *FaultPlanError
			if !errors.As(err, &planErr) {
				t.Errorf("%s: err = %v, want *FaultPlanError", tc.name, err)
			} else if planErr.Error() == "" {
				t.Errorf("%s: empty error text", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: valid plan rejected: %v", tc.name, err)
		}
	}
}

// TestExpandFaults: rack- and zone-scoped events expand to their
// member nodes in ascending order; plain plans pass through untouched.
func TestExpandFaults(t *testing.T) {
	topo := Topology{Zones: 2, RacksPerZone: 2, NodesPerRack: 2,
		RackBandwidth: 1, ZoneBandwidth: 1}
	plain := []FaultEvent{KillAt(1, 3)}
	if got := ExpandFaults(plain, topo); !reflect.DeepEqual(got, plain) {
		t.Fatalf("plain plan changed: %v", got)
	}
	got := ExpandFaults([]FaultEvent{KillRackAt(1, 1), KillZoneAt(2, 1), ReviveAt(3, 0)}, topo)
	want := []FaultEvent{
		KillAt(1, 2), KillAt(1, 3),
		KillAt(2, 4), KillAt(2, 5), KillAt(2, 6), KillAt(2, 7),
		ReviveAt(3, 0),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expansion = %v, want %v", got, want)
	}
	// The expanded plan executes like any other: the whole rack dies.
	fab := NewSim(DefaultConfig(8))
	lv := NewLiveness(8)
	if lv.Nodes() != 8 {
		t.Fatalf("Nodes() = %d, want 8", lv.Nodes())
	}
	fab.Run(func(ctx *Ctx) {
		ctx.Wait(lv.Execute(ctx, ExpandFaults([]FaultEvent{KillRackAt(1, 1)}, topo)))
	})
	for n := NodeID(0); n < 8; n++ {
		wantAlive := n != 2 && n != 3
		if lv.Alive(n) != wantAlive {
			t.Errorf("node %d alive = %v, want %v", n, lv.Alive(n), wantAlive)
		}
	}
}
