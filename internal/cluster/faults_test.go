package cluster

import (
	"reflect"
	"testing"
)

// TestLivenessTransitions: kill/revive flip state exactly once each
// and notify listeners in registration order.
func TestLivenessTransitions(t *testing.T) {
	fab := NewLive(4)
	lv := NewLiveness(4)
	var log []string
	lv.OnChange(func(_ *Ctx, n NodeID, alive bool) {
		if alive {
			log = append(log, "a:up")
		} else {
			log = append(log, "a:down")
		}
	})
	lv.OnChange(func(_ *Ctx, n NodeID, alive bool) {
		log = append(log, "b")
	})
	fab.Run(func(ctx *Ctx) {
		if !lv.Alive(2) {
			t.Fatal("fresh registry must report nodes alive")
		}
		if !lv.Kill(ctx, 2) {
			t.Fatal("first kill must report a transition")
		}
		if lv.Kill(ctx, 2) {
			t.Fatal("second kill of a dead node must be a no-op")
		}
		if lv.Alive(2) {
			t.Fatal("killed node still alive")
		}
		if got := lv.AliveCount(); got != 3 {
			t.Fatalf("AliveCount = %d, want 3", got)
		}
		if !lv.Revive(ctx, 2) || lv.Revive(ctx, 2) {
			t.Fatal("revive must transition exactly once")
		}
		if lv.Kill(ctx, 99) || lv.Revive(ctx, -1) {
			t.Fatal("out-of-range nodes must be no-ops")
		}
	})
	want := []string{"a:down", "b", "a:up", "b"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("listener log = %v, want %v", log, want)
	}
	if lv.Alive(99) {
		t.Fatal("out-of-range node reported alive")
	}
}

// TestFaultPlanExecution: events fire in time order at their scheduled
// virtual times, including events already due when the injector
// starts.
func TestFaultPlanExecution(t *testing.T) {
	fab := NewSim(DefaultConfig(4))
	lv := NewLiveness(4)
	type hit struct {
		at    float64
		node  NodeID
		alive bool
	}
	var hits []hit
	fab.Run(func(ctx *Ctx) {
		lv.OnChange(func(cc *Ctx, n NodeID, alive bool) {
			hits = append(hits, hit{cc.Now(), n, alive})
		})
		ctx.Sleep(1.0)
		// Plan deliberately out of order; the 0.5s event is already due.
		task := lv.Execute(ctx, []FaultEvent{
			KillAt(3.0, 1),
			ReviveAt(4.5, 1),
			KillAt(0.5, 2),
		})
		ctx.Wait(task)
		if got := ctx.Now(); got != 4.5 {
			t.Errorf("injector finished at %g, want 4.5", got)
		}
	})
	want := []hit{{1.0, 2, false}, {3.0, 1, false}, {4.5, 1, true}}
	if !reflect.DeepEqual(hits, want) {
		t.Fatalf("events = %v, want %v", hits, want)
	}
}

// TestValidateFaults rejects malformed plans.
func TestValidateFaults(t *testing.T) {
	if err := ValidateFaults([]FaultEvent{KillAt(1, 3)}, 4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for _, bad := range [][]FaultEvent{
		{KillAt(-1, 0)},
		{KillAt(1, 4)},
		{ReviveAt(1, -1)},
		{{At: 1, Node: 0, Kind: FaultKind(9)}},
	} {
		if err := ValidateFaults(bad, 4); err == nil {
			t.Errorf("plan %v accepted", bad)
		}
	}
	if FaultKill.String() != "kill" || FaultRevive.String() != "revive" {
		t.Error("FaultKind strings wrong")
	}
}
