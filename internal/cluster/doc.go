// Package cluster models the IaaS datacenter of the paper's §2.1: a set
// of commodity nodes, each with a local disk and a full-duplex NIC,
// interconnected by a non-blocking Ethernet switch.
//
// The package's central abstraction is Fabric, the execution substrate
// the storage stacks run on. Two implementations are provided:
//
//   - Live: zero-cost, real goroutines. Every operation completes
//     immediately in virtual-time terms; data paths still move real
//     bytes. This is what unit tests and the runnable examples use.
//
//   - Sim: a discrete-event simulation calibrated to the paper's
//     Grid'5000 testbed (117.5 MB/s TCP, 0.1 ms RTT, 55 MB/s disks).
//     Time costs are charged on shared resources (max-min fair NIC
//     links, processor-shared disks), which is what reproduces the
//     contention behaviour of the paper's figures.
//
// Storage code is written once against Ctx and runs unchanged on both.
package cluster
