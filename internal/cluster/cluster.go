package cluster

import (
	"fmt"

	"blobvfs/internal/sim"
)

// NodeID identifies a node in the cluster. Valid IDs are 0..Nodes()-1.
type NodeID int

// Config carries the physical constants of the modeled cluster. The
// defaults (see DefaultConfig) come from §5.1 of the paper; a few are
// calibrated, as documented in DESIGN.md §6.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// NICBandwidth is per-direction NIC capacity in bytes/s.
	NICBandwidth float64
	// RTT is the network round-trip latency in seconds.
	RTT float64
	// ReqOverhead is the fixed per-request processing cost in seconds
	// (marshaling, syscalls, server dispatch) charged on every RPC.
	ReqOverhead float64
	// LocalRPC is the cost of an RPC whose endpoints share a node.
	LocalRPC float64
	// DiskBandwidth is local-disk streaming bandwidth in bytes/s.
	DiskBandwidth float64
	// DiskSeek is the per-operation positioning time in seconds. It is
	// charged as equivalent disk-capacity consumption, so seeks compete
	// with streaming transfers for the disk like they do in reality.
	DiskSeek float64
	// WriteBuffer is the per-node asynchronous write-back buffer in
	// bytes. Writers reserve buffer space and a background drainer pays
	// the disk cost, which is the mechanism behind BlobSeer's fast
	// asynchronous COMMIT acknowledgements (paper §5.3).
	WriteBuffer int64
	// Topology optionally arranges the nodes into zones and racks with
	// tiered links (see Topology). The zero value keeps the flat
	// single-switch cluster of §5.1.
	Topology Topology
}

// DefaultConfig returns the Grid'5000 Nancy cluster constants of §5.1.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		NICBandwidth:  117.5e6,
		RTT:           1e-4,
		ReqOverhead:   3e-4,
		LocalRPC:      2e-5,
		DiskBandwidth: 55e6,
		DiskSeek:      6e-3,
		WriteBuffer:   64 << 20,
	}
}

func (c Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: Nodes = %d, need > 0", c.Nodes)
	}
	if c.NICBandwidth <= 0 || c.DiskBandwidth <= 0 {
		return fmt.Errorf("cluster: bandwidths must be positive")
	}
	if c.WriteBuffer <= 0 {
		return fmt.Errorf("cluster: WriteBuffer must be positive")
	}
	if err := c.Topology.Validate(c.Nodes); err != nil {
		return err
	}
	return nil
}

// Task is a handle to an activity spawned with Ctx.Go; join it with
// Ctx.Wait.
type Task interface {
	isTask()
}

// Fabric is the execution substrate: it spawns activities on nodes,
// charges time for network, disk and CPU use, and accounts traffic.
type Fabric interface {
	// Nodes returns the cluster size.
	Nodes() int
	// Config returns the physical constants in force.
	Config() Config
	// Run executes fn as the root activity on node 0 and blocks until
	// every activity spawned (transitively) has finished.
	Run(fn func(*Ctx))
	// Now returns the current virtual time in seconds (always 0 on the
	// live fabric, which has no notion of time).
	Now() float64

	// NetTraffic returns cumulative off-node network traffic in bytes.
	NetTraffic() int64
	// ResetTraffic zeroes the traffic counter.
	ResetTraffic()

	spawn(name string, node NodeID, parent *Ctx, fn func(*Ctx)) Task
	wait(ctx *Ctx, t Task)
	sleep(ctx *Ctx, d float64)
	compute(ctx *Ctx, d float64)
	rpc(ctx *Ctx, from, to NodeID, reqBytes, respBytes int64)
	diskRead(ctx *Ctx, node NodeID, bytes int64)
	diskWrite(ctx *Ctx, node NodeID, bytes int64, async bool)
}

// Ctx is the context of one activity (a simulated thread of control):
// it knows which node it runs on and charges costs through its fabric.
// A Ctx must only be used by the activity it was created for.
type Ctx struct {
	fab  Fabric
	node NodeID
	// Proc is the underlying simulation process on the Sim fabric and
	// nil on the Live fabric. Exposed for advanced models (e.g. custom
	// resources); normal code should use the Ctx methods.
	Proc *sim.Proc
}

// Node returns the node this activity runs on.
func (c *Ctx) Node() NodeID { return c.node }

// Fabric returns the underlying fabric.
func (c *Ctx) Fabric() Fabric { return c.fab }

// Now returns the current virtual time.
func (c *Ctx) Now() float64 { return c.fab.Now() }

// Sleep suspends the activity for d seconds of virtual time.
func (c *Ctx) Sleep(d float64) { c.fab.sleep(c, d) }

// Compute charges d seconds of CPU work on the activity's node.
func (c *Ctx) Compute(d float64) { c.fab.compute(c, d) }

// RPC charges a request/response exchange from this activity's node to
// `to`, with the given payload sizes in each direction. The charge
// covers latency, fixed per-request overhead, and fair-shared bandwidth
// along the sender's uplink and receiver's downlink. Node-local calls
// cost Config.LocalRPC and generate no network traffic.
func (c *Ctx) RPC(to NodeID, reqBytes, respBytes int64) {
	c.fab.rpc(c, c.node, to, reqBytes, respBytes)
}

// DiskRead charges a read of the given size on node's local disk.
func (c *Ctx) DiskRead(node NodeID, bytes int64) { c.fab.diskRead(c, node, bytes) }

// DiskWrite charges a synchronous write on node's local disk.
func (c *Ctx) DiskWrite(node NodeID, bytes int64) { c.fab.diskWrite(c, node, bytes, false) }

// DiskWriteAsync buffers a write in node's write-back buffer. The call
// blocks only while the buffer is full; draining to disk proceeds in
// the background. This models the asynchronous write strategy BlobSeer
// uses to acknowledge COMMIT before data reaches the platters.
func (c *Ctx) DiskWriteAsync(node NodeID, bytes int64) { c.fab.diskWrite(c, node, bytes, true) }

// Go spawns a new activity running fn on the given node.
func (c *Ctx) Go(name string, node NodeID, fn func(*Ctx)) Task {
	return c.fab.spawn(name, node, c, fn)
}

// Wait blocks until the task finishes.
func (c *Ctx) Wait(t Task) { c.fab.wait(c, t) }

// WaitAll blocks until every task finishes.
func (c *Ctx) WaitAll(ts []Task) {
	for _, t := range ts {
		c.fab.wait(c, t)
	}
}

// Parallel runs the functions as concurrent activities on this node and
// returns when all have finished.
func (c *Ctx) Parallel(name string, fns ...func(*Ctx)) {
	if len(fns) == 1 {
		fns[0](c)
		return
	}
	tasks := make([]Task, 0, len(fns))
	for _, fn := range fns {
		tasks = append(tasks, c.Go(name, c.node, fn))
	}
	c.WaitAll(tasks)
}
