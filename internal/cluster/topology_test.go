package cluster

import "testing"

// testTopo8 is the smallest topology exercising every tier: 2 zones ×
// 2 racks × 2 nodes. Tier bandwidths default to comfortably above the
// test NIC so the NIC stays the bottleneck unless a test lowers them.
func testTopo8() Topology {
	return Topology{
		Zones: 2, RacksPerZone: 2, NodesPerRack: 2,
		RackBandwidth: 200e6, RackLatency: 5e-4,
		ZoneBandwidth: 400e6, ZoneLatency: 2e-3,
	}
}

func TestTopologyValidate(t *testing.T) {
	ok := testTopo8()
	for _, tc := range []struct {
		name  string
		topo  Topology
		nodes int
		valid bool
	}{
		{"zero topology any cluster", Topology{}, 17, true},
		{"exact cover", ok, 8, true},
		{"single domain", Topology{Zones: 1, RacksPerZone: 1, NodesPerRack: 5,
			RackBandwidth: 1, ZoneBandwidth: 1}, 5, true},
		{"non-divisible node count", ok, 10, false},
		{"undersized cluster", ok, 7, false},
		{"negative zones", Topology{Zones: -2, RacksPerZone: 2, NodesPerRack: 2,
			RackBandwidth: 1, ZoneBandwidth: 1}, 8, false},
		{"zero racks per zone", Topology{Zones: 2, RacksPerZone: 0, NodesPerRack: 2,
			RackBandwidth: 1, ZoneBandwidth: 1}, 8, false},
		{"zero nodes per rack", Topology{Zones: 2, RacksPerZone: 2, NodesPerRack: 0,
			RackBandwidth: 1, ZoneBandwidth: 1}, 8, false},
		{"zero rack bandwidth", Topology{Zones: 2, RacksPerZone: 2, NodesPerRack: 2,
			RackBandwidth: 0, ZoneBandwidth: 1}, 8, false},
		{"negative zone bandwidth", Topology{Zones: 2, RacksPerZone: 2, NodesPerRack: 2,
			RackBandwidth: 1, ZoneBandwidth: -1}, 8, false},
		{"negative rack latency", Topology{Zones: 2, RacksPerZone: 2, NodesPerRack: 2,
			RackBandwidth: 1, ZoneBandwidth: 1, RackLatency: -1e-3}, 8, false},
		{"negative zone latency", Topology{Zones: 2, RacksPerZone: 2, NodesPerRack: 2,
			RackBandwidth: 1, ZoneBandwidth: 1, ZoneLatency: -1e-3}, 8, false},
	} {
		err := tc.topo.Validate(tc.nodes)
		if tc.valid && err != nil {
			t.Errorf("%s: Validate(%d) = %v, want nil", tc.name, tc.nodes, err)
		}
		if !tc.valid && err == nil {
			t.Errorf("%s: Validate(%d) = nil, want error", tc.name, tc.nodes)
		}
	}
}

func TestTopologyAddressing(t *testing.T) {
	topo := testTopo8()
	for n, want := range []struct{ zone, rack int }{
		{0, 0}, {0, 0}, {0, 1}, {0, 1}, {1, 2}, {1, 2}, {1, 3}, {1, 3},
	} {
		if z := topo.Zone(NodeID(n)); z != want.zone {
			t.Errorf("Zone(%d) = %d, want %d", n, z, want.zone)
		}
		if r := topo.Rack(NodeID(n)); r != want.rack {
			t.Errorf("Rack(%d) = %d, want %d", n, r, want.rack)
		}
	}
	if topo.Racks() != 4 {
		t.Errorf("Racks() = %d, want 4", topo.Racks())
	}
	for _, tc := range []struct {
		a, b NodeID
		want Tier
	}{
		{0, 0, TierLocal}, {0, 1, TierRack}, {0, 2, TierZone},
		{0, 3, TierZone}, {0, 4, TierRemote}, {3, 7, TierRemote},
		{6, 7, TierRack}, {4, 6, TierZone},
	} {
		if got := topo.Tier(tc.a, tc.b); got != tc.want {
			t.Errorf("Tier(%d, %d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := topo.Tier(tc.b, tc.a); got != tc.want {
			t.Errorf("Tier(%d, %d) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
	// The flat cluster: same node is local, everything else one hop.
	var flat Topology
	if flat.Tier(3, 3) != TierLocal || flat.Tier(0, 7) != TierRack {
		t.Errorf("flat Tier: got (%v, %v), want (local, rack)",
			flat.Tier(3, 3), flat.Tier(0, 7))
	}
	if flat.Zone(5) != 0 || flat.Rack(5) != 0 || flat.Racks() != 1 {
		t.Errorf("flat addressing: zone %d rack %d racks %d, want 0/0/1",
			flat.Zone(5), flat.Rack(5), flat.Racks())
	}
}

func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{
		TierLocal: "local", TierRack: "rack", TierZone: "zone",
		TierRemote: "remote", Tier(9): "Tier(9)",
	} {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", uint8(tier), got, want)
		}
	}
}

// TestSimTierLatencyAndAccounting checks that the simulated fabric
// charges the per-tier extra latency and books traffic under the
// right tier counter for each locality class.
func TestSimTierLatencyAndAccounting(t *testing.T) {
	cfg := testConfig(8)
	cfg.Topology = testTopo8()
	f := NewSim(cfg)
	// Base cost of a 10 MB response at the 100 MB/s test NIC (tier
	// links are wider, so the NIC stays the bottleneck): RTT 1e-3 +
	// overhead 1e-3 + 0.1 s transfer.
	const base = 0.102
	steps := []struct {
		to    NodeID
		tier  Tier
		extra float64
	}{
		{1, TierRack, 0},      // same rack
		{2, TierZone, 5e-4},   // cross-rack, same zone
		{4, TierRemote, 2e-3}, // cross-zone
	}
	var got [3]float64
	f.Run(func(ctx *Ctx) {
		for i, s := range steps {
			before := ctx.Now()
			ctx.RPC(s.to, 0, 10e6)
			got[i] = ctx.Now() - before
		}
	})
	for i, s := range steps {
		if want := base + s.extra; !almostEq(got[i], want) {
			t.Errorf("RPC 0->%d took %v, want %v", s.to, got[i], want)
		}
		if b := f.TierTraffic(s.tier); b != 10e6 {
			t.Errorf("TierTraffic(%v) = %d, want 10e6", s.tier, b)
		}
	}
	if f.TierTraffic(TierLocal) != 0 {
		t.Errorf("TierTraffic(local) = %d, want 0", f.TierTraffic(TierLocal))
	}
	if f.CrossZoneBytes() != 10e6 {
		t.Errorf("CrossZoneBytes = %d, want 10e6", f.CrossZoneBytes())
	}
	if f.NetTraffic() != 30e6 {
		t.Errorf("NetTraffic = %d, want 30e6", f.NetTraffic())
	}
	f.ResetTraffic()
	for tier := Tier(0); tier < NumTiers; tier++ {
		if f.TierTraffic(tier) != 0 {
			t.Errorf("after reset, TierTraffic(%v) = %d", tier, f.TierTraffic(tier))
		}
	}
}

// TestSimRackUplinkBottleneck lowers the rack uplink below the NIC and
// checks that cross-rack transfers slow down to it while same-rack
// transfers don't — i.e. the tier links actually sit on the path.
func TestSimRackUplinkBottleneck(t *testing.T) {
	cfg := testConfig(8)
	topo := testTopo8()
	topo.RackBandwidth = 50e6 // half the test NIC
	topo.RackLatency = 0
	cfg.Topology = topo
	f := NewSim(cfg)
	var sameRack, crossRack float64
	f.Run(func(ctx *Ctx) {
		before := ctx.Now()
		ctx.RPC(1, 0, 10e6)
		sameRack = ctx.Now() - before
		before = ctx.Now()
		ctx.RPC(2, 0, 10e6)
		crossRack = ctx.Now() - before
	})
	if !almostEq(sameRack, 0.102) {
		t.Errorf("same-rack RPC took %v, want 0.102 (NIC-bound)", sameRack)
	}
	if !almostEq(crossRack, 0.202) {
		t.Errorf("cross-rack RPC took %v, want 0.202 (uplink-bound)", crossRack)
	}
	// The 10 MB flowed as the response, node 2 -> node 0: out through
	// rack 1's uplink, in through rack 0's downlink.
	if f.RackUplink(1).TotalBytes != 10e6 {
		t.Errorf("rack 1 uplink carried %v, want 10e6", f.RackUplink(1).TotalBytes)
	}
	if f.ZoneUplink(0).TotalBytes != 0 {
		t.Errorf("zone 0 uplink carried %v, want 0", f.ZoneUplink(0).TotalBytes)
	}
}

// TestSimSingleDomainTopologyMatchesFlat pins the degenerate case: a
// cluster whose whole population shares one zone and one rack behaves
// byte- and clock-identically to the flat, topology-less cluster.
func TestSimSingleDomainTopologyMatchesFlat(t *testing.T) {
	run := func(topo Topology) (elapsed float64, traffic int64) {
		cfg := testConfig(6)
		cfg.Topology = topo
		f := NewSim(cfg)
		f.Run(func(ctx *Ctx) {
			for i := 1; i < 6; i++ {
				ctx.RPC(NodeID(i), 4096, 10e6)
			}
			elapsed = ctx.Now()
		})
		return elapsed, f.NetTraffic()
	}
	single := Topology{Zones: 1, RacksPerZone: 1, NodesPerRack: 6,
		RackBandwidth: 1e6, RackLatency: 9, ZoneBandwidth: 1e6, ZoneLatency: 9}
	fe, ft := run(Topology{})
	se, st := run(single)
	if fe != se || ft != st {
		t.Fatalf("single-domain topology diverged from flat: (%v, %d) vs (%v, %d)",
			se, st, fe, ft)
	}
}
