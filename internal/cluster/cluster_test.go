package cluster

import (
	"math"
	"sync/atomic"
	"testing"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func testConfig(nodes int) Config {
	cfg := DefaultConfig(nodes)
	// Round numbers make the expected costs below easy to derive.
	cfg.NICBandwidth = 100e6
	cfg.RTT = 1e-3
	cfg.ReqOverhead = 1e-3
	cfg.LocalRPC = 1e-4
	cfg.DiskBandwidth = 50e6
	cfg.DiskSeek = 10e-3
	return cfg
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(120)
	if cfg.NICBandwidth != 117.5e6 {
		t.Errorf("NICBandwidth = %v, want 117.5e6 (paper §5.1)", cfg.NICBandwidth)
	}
	if cfg.DiskBandwidth != 55e6 {
		t.Errorf("DiskBandwidth = %v, want 55e6 (paper §5.1)", cfg.DiskBandwidth)
	}
	if cfg.RTT != 1e-4 {
		t.Errorf("RTT = %v, want 1e-4 (paper §5.1)", cfg.RTT)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Nodes: 0, NICBandwidth: 1, DiskBandwidth: 1, WriteBuffer: 1},
		{Nodes: 1, NICBandwidth: 0, DiskBandwidth: 1, WriteBuffer: 1},
		{Nodes: 1, NICBandwidth: 1, DiskBandwidth: 1, WriteBuffer: 0},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("config %+v validated, want error", bad)
		}
	}
}

func TestSimRPCCost(t *testing.T) {
	cfg := testConfig(4)
	f := NewSim(cfg)
	var elapsed float64
	f.Run(func(ctx *Ctx) {
		// 10 MB response at 100 MB/s = 0.1 s, plus RTT+overhead 2 ms.
		ctx.RPC(1, 0, 10e6)
		elapsed = ctx.Now()
	})
	if !almostEq(elapsed, 0.102) {
		t.Fatalf("RPC took %v, want 0.102", elapsed)
	}
	if f.NetTraffic() != 10e6 {
		t.Fatalf("traffic = %d, want 10e6", f.NetTraffic())
	}
}

func TestSimLocalRPCIsCheapAndUncounted(t *testing.T) {
	f := NewSim(testConfig(2))
	var elapsed float64
	f.Run(func(ctx *Ctx) {
		ctx.RPC(0, 1e6, 1e6) // node-local
		elapsed = ctx.Now()
	})
	if !almostEq(elapsed, 1e-4) {
		t.Fatalf("local RPC took %v, want 1e-4", elapsed)
	}
	if f.NetTraffic() != 0 {
		t.Fatalf("local RPC counted traffic: %d", f.NetTraffic())
	}
}

func TestSimDiskReadCost(t *testing.T) {
	f := NewSim(testConfig(2))
	var elapsed float64
	f.Run(func(ctx *Ctx) {
		// 50 MB at 50 MB/s = 1 s plus one 10 ms seek.
		ctx.DiskRead(0, 50e6)
		elapsed = ctx.Now()
	})
	if !almostEq(elapsed, 1.01) {
		t.Fatalf("disk read took %v, want 1.01", elapsed)
	}
}

func TestSimAsyncWriteReturnsBeforeDiskDrains(t *testing.T) {
	cfg := testConfig(2)
	cfg.WriteBuffer = 100 << 20
	f := NewSim(cfg)
	var ackAt float64
	f.Run(func(ctx *Ctx) {
		ctx.DiskWriteAsync(0, 50e6)
		ackAt = ctx.Now()
	})
	if ackAt != 0 {
		t.Fatalf("async write acked at %v, want 0 (buffered)", ackAt)
	}
	// The background drain still costs disk time.
	if f.Now() < 1.0 {
		t.Fatalf("simulation ended at %v, want >= 1.0 (drain)", f.Now())
	}
}

func TestSimAsyncWriteBackpressure(t *testing.T) {
	cfg := testConfig(2)
	cfg.WriteBuffer = 10e6
	f := NewSim(cfg)
	var secondAck float64
	f.Run(func(ctx *Ctx) {
		ctx.DiskWriteAsync(0, 10e6) // fills the buffer; drain takes ~0.21 s
		ctx.DiskWriteAsync(0, 10e6) // must wait for the first drain
		secondAck = ctx.Now()
	})
	if secondAck <= 0.2 {
		t.Fatalf("second ack at %v, want > 0.2 (backpressure)", secondAck)
	}
}

func TestSimDiskSharing(t *testing.T) {
	f := NewSim(testConfig(2))
	var d1, d2 float64
	f.Run(func(ctx *Ctx) {
		t1 := ctx.Go("r1", 0, func(c *Ctx) { c.DiskRead(0, 50e6); d1 = c.Now() })
		t2 := ctx.Go("r2", 0, func(c *Ctx) { c.DiskRead(0, 50e6); d2 = c.Now() })
		ctx.Wait(t1)
		ctx.Wait(t2)
	})
	// Two 1.01 s jobs sharing the disk: both complete at ~2.02 s.
	if !almostEq(d1, 2.02) || !almostEq(d2, 2.02) {
		t.Fatalf("done at %v, %v; want 2.02 each (PS sharing)", d1, d2)
	}
}

func TestSimUplinkContention(t *testing.T) {
	// N nodes all fetch 10 MB from node 0 concurrently: node 0's uplink
	// (100 MB/s) is the bottleneck, so total time ~= N*10MB/100MB/s.
	cfg := testConfig(9)
	f := NewSim(cfg)
	var last float64
	f.Run(func(ctx *Ctx) {
		var tasks []Task
		for n := 1; n <= 8; n++ {
			node := NodeID(n)
			tasks = append(tasks, ctx.Go("fetch", node, func(c *Ctx) {
				c.RPC(0, 64, 10e6)
				if c.Now() > last {
					last = c.Now()
				}
			}))
		}
		ctx.WaitAll(tasks)
	})
	want := 8 * 10e6 / 100e6 // 0.8 s transfer, plus RTT+overhead
	if last < want || last > want+0.01 {
		t.Fatalf("last fetch at %v, want ~%v (uplink contention)", last, want)
	}
}

func TestSimParallelJoins(t *testing.T) {
	f := NewSim(testConfig(2))
	var doneAt float64
	f.Run(func(ctx *Ctx) {
		ctx.Parallel("p",
			func(c *Ctx) { c.Sleep(1) },
			func(c *Ctx) { c.Sleep(3) },
			func(c *Ctx) { c.Sleep(2) },
		)
		doneAt = ctx.Now()
	})
	if !almostEq(doneAt, 3) {
		t.Fatalf("Parallel returned at %v, want 3", doneAt)
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		f := NewSim(testConfig(16))
		f.Run(func(ctx *Ctx) {
			var tasks []Task
			for n := 0; n < 16; n++ {
				node := NodeID(n)
				tasks = append(tasks, ctx.Go("w", node, func(c *Ctx) {
					for i := 0; i < 10; i++ {
						c.RPC(NodeID((int(node)+i+1)%16), 256, 1e6)
						c.DiskWriteAsync(node, 512<<10)
					}
				}))
			}
			ctx.WaitAll(tasks)
		})
		return f.Now(), f.NetTraffic()
	}
	t1, tr1 := run()
	t2, tr2 := run()
	if t1 != t2 || tr1 != tr2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, tr1, t2, tr2)
	}
}

func TestLiveRunsRealGoroutines(t *testing.T) {
	f := NewLive(8)
	var count atomic.Int64
	f.Run(func(ctx *Ctx) {
		var tasks []Task
		for n := 0; n < 8; n++ {
			tasks = append(tasks, ctx.Go("w", NodeID(n), func(c *Ctx) {
				c.Sleep(1) // free on the live fabric
				c.RPC(0, 100, 100)
				count.Add(1)
			}))
		}
		ctx.WaitAll(tasks)
		if count.Load() != 8 {
			t.Errorf("count = %d before WaitAll returned, want 8", count.Load())
		}
	})
	if f.Now() != 0 {
		t.Fatalf("live Now() = %v, want 0", f.Now())
	}
	// 7 of 8 RPCs are off-node (node 0's is local).
	if f.NetTraffic() != 7*200 {
		t.Fatalf("traffic = %d, want 1400", f.NetTraffic())
	}
}

func TestLiveTrafficReset(t *testing.T) {
	f := NewLive(2)
	f.Run(func(ctx *Ctx) { ctx.RPC(1, 10, 20) })
	if f.NetTraffic() != 30 {
		t.Fatalf("traffic = %d, want 30", f.NetTraffic())
	}
	f.ResetTraffic()
	if f.NetTraffic() != 0 {
		t.Fatalf("traffic after reset = %d, want 0", f.NetTraffic())
	}
}

func TestNodeRangeChecks(t *testing.T) {
	f := NewLive(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range node did not panic")
		}
	}()
	f.Run(func(ctx *Ctx) { ctx.DiskRead(5, 10) })
}
