package cluster

import "fmt"

// This file is the hierarchical-topology model: zone/rack addressing
// over the flat NodeID space, the locality query the placement and
// peer-selection layers use, and the per-tier link constants the
// simulated fabric turns into shared rack-uplink and zone-interconnect
// links. The zero Topology keeps today's flat single-switch cluster:
// every fabric without an explicit topology behaves byte-identically
// to one built before this model existed.

// Tier classifies the network distance between two nodes, nearest
// first. Comparing tiers with < orders candidates by locality.
type Tier uint8

const (
	// TierLocal: the two endpoints are the same node.
	TierLocal Tier = iota
	// TierRack: distinct nodes under the same top-of-rack switch (or
	// any two distinct nodes of a flat, topology-less cluster).
	TierRack
	// TierZone: same zone, different racks — the path crosses both
	// rack uplinks.
	TierZone
	// TierRemote: different zones — the path additionally crosses the
	// zone interconnect.
	TierRemote

	// NumTiers is the number of locality tiers (for per-tier counters).
	NumTiers = 4
)

// String renders the tier for tables and test failures.
func (t Tier) String() string {
	switch t {
	case TierLocal:
		return "local"
	case TierRack:
		return "rack"
	case TierZone:
		return "zone"
	case TierRemote:
		return "remote"
	}
	return fmt.Sprintf("Tier(%d)", uint8(t))
}

// Topology describes a hierarchical cluster: Zones zones, each holding
// RacksPerZone racks of NodesPerRack nodes. Node IDs map onto the
// hierarchy in order: node n lives in rack n/NodesPerRack and zone
// n/(RacksPerZone*NodesPerRack). The zero value means "no topology" —
// a flat cluster where every pair of distinct nodes is TierRack and no
// tier links exist.
type Topology struct {
	Zones        int
	RacksPerZone int
	NodesPerRack int

	// RackBandwidth is the per-direction capacity of each rack's
	// uplink to the zone fabric, in bytes/s. Cross-rack traffic
	// traverses the sender's and receiver's rack uplinks.
	RackBandwidth float64
	// RackLatency is the extra one-way round-trip cost of leaving a
	// rack, in seconds, added to Config.RTT on cross-rack RPCs.
	RackLatency float64
	// ZoneBandwidth is the per-direction capacity of each zone's
	// interconnect (the WAN/spine egress), in bytes/s.
	ZoneBandwidth float64
	// ZoneLatency is the extra round-trip cost of crossing zones, in
	// seconds, added instead of (not on top of) RackLatency.
	ZoneLatency float64
}

// Enabled reports whether a topology was configured: the zero value is
// the flat cluster and disables all tier machinery.
func (t Topology) Enabled() bool { return t.Zones != 0 }

// Validate checks the topology against a cluster size, mirroring the
// Config.validate conventions. The zero (disabled) topology is valid
// for any cluster.
func (t Topology) Validate(nodes int) error {
	if !t.Enabled() {
		return nil
	}
	if t.Zones < 0 || t.RacksPerZone <= 0 || t.NodesPerRack <= 0 {
		return fmt.Errorf("cluster: topology %dz × %dr × %dn, need positive counts",
			t.Zones, t.RacksPerZone, t.NodesPerRack)
	}
	if total := t.Zones * t.RacksPerZone * t.NodesPerRack; total != nodes {
		return fmt.Errorf("cluster: topology covers %d nodes (%dz × %dr × %dn), cluster has %d",
			total, t.Zones, t.RacksPerZone, t.NodesPerRack, nodes)
	}
	if t.RackBandwidth <= 0 || t.ZoneBandwidth <= 0 {
		return fmt.Errorf("cluster: topology tier bandwidths must be positive")
	}
	if t.RackLatency < 0 || t.ZoneLatency < 0 {
		return fmt.Errorf("cluster: topology tier latencies must be non-negative")
	}
	return nil
}

// Zone returns the zone index of a node (0 on the flat cluster).
func (t Topology) Zone(n NodeID) int {
	if !t.Enabled() {
		return 0
	}
	return int(n) / (t.RacksPerZone * t.NodesPerRack)
}

// Rack returns the global rack index of a node (0 on the flat
// cluster). Racks are numbered across zones: zone z holds racks
// [z*RacksPerZone, (z+1)*RacksPerZone).
func (t Topology) Rack(n NodeID) int {
	if !t.Enabled() {
		return 0
	}
	return int(n) / t.NodesPerRack
}

// Racks returns the total rack count (1 on the flat cluster).
func (t Topology) Racks() int {
	if !t.Enabled() {
		return 1
	}
	return t.Zones * t.RacksPerZone
}

// Tier returns the locality tier between two nodes: TierLocal for the
// same node, then TierRack/TierZone/TierRemote walking outward. On the
// flat (disabled) topology every pair of distinct nodes is TierRack.
func (t Topology) Tier(a, b NodeID) Tier {
	if a == b {
		return TierLocal
	}
	if !t.Enabled() {
		return TierRack
	}
	if t.Rack(a) == t.Rack(b) {
		return TierRack
	}
	if t.Zone(a) == t.Zone(b) {
		return TierZone
	}
	return TierRemote
}
