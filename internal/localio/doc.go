// Package localio models the node-local I/O paths compared in §5.4 of
// the paper (Fig. 6 and Fig. 7): the hypervisor accessing a raw image
// file directly, versus accessing it through the FUSE-based mirroring
// module whose local file is mmap'ed by the module.
//
// Both figures measure purely local behaviour (Bonnie++ writes then
// reads back its own data, so no remote fetches are involved); what
// differs between the two paths is per-operation software overhead and
// the write-back strategy:
//
//   - the direct path pays the hypervisor's block-layer syscall cost
//     on every operation and uses the hypervisor's default writeback;
//   - the mirror path pays an extra user/kernel FUSE crossing on every
//     operation, but absorbs writes via mmap — the kernel's write-back
//     runs asynchronously and batches much better, which the paper
//     measures as roughly doubled write throughput (Fig. 6), while
//     metadata-ish operations (seeks, create, delete) get slower
//     (Fig. 7).
//
// The model is a virtual-time accumulator, not a DES: Bonnie++ is a
// single sequential process, so costs simply add.
package localio
