package localio

// Path is one local I/O path model with a virtual-time accumulator.
type Path struct {
	// PerOp is the fixed software cost of one data operation (syscall,
	// virtio exit, block layer) in seconds.
	PerOp float64
	// ExtraCrossing is the additional FUSE user/kernel crossing cost
	// per operation (0 for the direct path).
	ExtraCrossing float64
	// CopyRate is the memory copy bandwidth in bytes/s.
	CopyRate float64
	// WriteFactor scales the per-byte cost of writes relative to a pure
	// memory copy: the direct path's default hypervisor write-back
	// throttles harder (>1); the mmap path approaches 1.
	WriteFactor float64
	// MetaOp is the base cost of one metadata operation (create,
	// delete, seek) in seconds.
	MetaOp float64
	// MetaCrossings is the number of FUSE crossings a metadata
	// operation pays on this path.
	MetaCrossings int

	clock float64
}

// DirectPath returns the hypervisor-direct model (the "local" bars of
// Fig. 6/7), calibrated to the paper's Bonnie++ measurements on the
// Grid'5000 nodes.
func DirectPath() *Path {
	return &Path{
		PerOp:       17e-6,
		CopyRate:    2.5e9,
		WriteFactor: 5.2,
		MetaOp:      28e-6,
	}
}

// MirrorPath returns the FUSE + mmap model (the "our-approach" bars).
// Cached data operations go through the kernel VFS cache and cost the
// same as the direct path (§4.1: FUSE "benefits of the cache
// management implemented in the kernel"); writes are absorbed by the
// mmap write-back (WriteFactor < 1); metadata operations pay the FUSE
// user/kernel crossings.
func MirrorPath() *Path {
	return &Path{
		PerOp:         17e-6,
		ExtraCrossing: 20e-6,
		CopyRate:      2.5e9,
		WriteFactor:   0.5,
		MetaOp:        28e-6,
		MetaCrossings: 2,
	}
}

// Now returns the accumulated virtual time in seconds.
func (p *Path) Now() float64 { return p.clock }

// Reset zeroes the accumulated time.
func (p *Path) Reset() { p.clock = 0 }

// WriteBlock charges one block write of n bytes.
func (p *Path) WriteBlock(n int64) {
	p.clock += p.PerOp + float64(n)/p.CopyRate*p.WriteFactor
}

// ReadBlock charges one cached block read of n bytes (Bonnie++ reads
// back data it just wrote, so reads hit the page cache on both paths).
func (p *Path) ReadBlock(n int64) {
	p.clock += p.PerOp + float64(n)/p.CopyRate
}

// OverwriteBlock charges one read-modify-write block update.
func (p *Path) OverwriteBlock(n int64) {
	// Bonnie++ overwrite: read the block, lseek back, write it.
	p.clock += p.PerOp + float64(n)/p.CopyRate*(1+p.WriteFactor)
}

// Seek charges one random seek (plus the read Bonnie++ issues there).
func (p *Path) Seek() {
	p.clock += p.MetaOp + float64(p.MetaCrossings)*p.ExtraCrossing
}

// CreateFile charges one file creation.
func (p *Path) CreateFile() {
	p.clock += p.MetaOp + float64(p.MetaCrossings)*p.ExtraCrossing
}

// DeleteFile charges one file deletion. Deletions walk more FUSE
// round trips (lookup + unlink + forget), which is why the paper sees
// the biggest gap here.
func (p *Path) DeleteFile() {
	p.clock += p.MetaOp + float64(p.MetaCrossings+1)*p.ExtraCrossing
}
