package localio

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorAddsCosts(t *testing.T) {
	p := &Path{PerOp: 10e-6, CopyRate: 1e9, WriteFactor: 2, MetaOp: 5e-6}
	p.WriteBlock(1000) // 10µs + 1µs*2 = 12µs
	if !almost(p.Now(), 12e-6, 1e-9) {
		t.Fatalf("clock = %v, want 12µs", p.Now())
	}
	p.ReadBlock(1000) // +11µs
	if !almost(p.Now(), 23e-6, 1e-9) {
		t.Fatalf("clock = %v, want 23µs", p.Now())
	}
	p.Reset()
	if p.Now() != 0 {
		t.Fatal("Reset did not zero the clock")
	}
	p.Seek()
	if !almost(p.Now(), 5e-6, 1e-9) {
		t.Fatalf("seek cost %v, want 5µs", p.Now())
	}
}

func TestCrossingsMultiplyForMetadataOps(t *testing.T) {
	p := &Path{MetaOp: 10e-6, ExtraCrossing: 20e-6, MetaCrossings: 2}
	p.CreateFile() // 10 + 2*20 = 50µs
	if !almost(p.Now(), 50e-6, 1e-9) {
		t.Fatalf("create = %v, want 50µs", p.Now())
	}
	p.Reset()
	p.DeleteFile() // 10 + 3*20 = 70µs (one extra crossing)
	if !almost(p.Now(), 70e-6, 1e-9) {
		t.Fatalf("delete = %v, want 70µs", p.Now())
	}
}

func TestDirectVsMirrorOrdering(t *testing.T) {
	d, m := DirectPath(), MirrorPath()
	d.WriteBlock(8 << 10)
	m.WriteBlock(8 << 10)
	if m.Now() >= d.Now() {
		t.Fatalf("mirror write (%v) not faster than direct (%v)", m.Now(), d.Now())
	}
	d.Reset()
	m.Reset()
	d.Seek()
	m.Seek()
	if m.Now() <= d.Now() {
		t.Fatalf("mirror seek (%v) not slower than direct (%v)", m.Now(), d.Now())
	}
}
