package middleware

import (
	"fmt"
	"sync"

	"blobvfs"
	"blobvfs/internal/broadcast"
	"blobvfs/internal/cluster"
	"blobvfs/internal/nfs"
	"blobvfs/internal/pvfs"
	"blobvfs/internal/qcow2"
	"blobvfs/internal/vmmodel"
)

// Backend abstracts how an instance's image is provisioned and
// snapshotted.
type Backend interface {
	// Name identifies the backend in results ("our-approach", ...).
	Name() string
	// Prepare runs the global initialization phase before any instance
	// starts (the broadcast for prepropagation; a no-op for the lazy
	// schemes).
	Prepare(ctx *cluster.Ctx, nodes []cluster.NodeID) error
	// Provision makes instance i's virtual disk available on node and
	// returns it; called once per instance at hypervisor launch.
	Provision(ctx *cluster.Ctx, i int, node cluster.NodeID) (vmmodel.VirtualDisk, error)
	// Snapshot persists instance i's local modifications to the
	// repository.
	Snapshot(ctx *cluster.Ctx, i int, node cluster.NodeID, disk vmmodel.VirtualDisk) error
}

// MirrorBackend is the paper's approach: lazy mirroring over the
// versioning blob store, CLONE+COMMIT snapshotting. It consumes only
// the public blobvfs façade — the repository wiring (per-node modules,
// sharing cohorts, retention primitives) lives behind blobvfs.Repo.
type MirrorBackend struct {
	Repo *blobvfs.Repo
	// Base is the shared image every instance deploys from.
	Base blobvfs.Snapshot
}

// NewMirrorBackend creates the backend for a base image already stored
// in repo.
func NewMirrorBackend(repo *blobvfs.Repo, base blobvfs.Snapshot) *MirrorBackend {
	return &MirrorBackend{Repo: repo, Base: base}
}

// Name implements Backend.
func (b *MirrorBackend) Name() string { return "our-approach" }

// Prepare implements Backend: the lazy scheme itself needs no
// initialization; with p2p sharing enabled on the repo, the
// deployment's nodes are registered as a cohort so they can serve each
// other's demand fetches (a no-op without WithP2P). A repo carries one
// cohort, so a refused registration — the slot already belongs to a
// different image — is an error rather than a silent loss of sharing.
func (b *MirrorBackend) Prepare(ctx *cluster.Ctx, nodes []cluster.NodeID) error {
	if !b.Repo.Share(ctx, b.Base.Image, nodes) && b.Repo.P2PEnabled() {
		return fmt.Errorf("middleware: repo's sharing cohort already belongs to another image (one p2p deployment per repo; image %d)", b.Base.Image)
	}
	return nil
}

// Provision implements Backend: expose the snapshot as a local raw
// file through the node's mirroring module. Experiment deployments are
// synthetic — costs are modeled, no bytes move.
func (b *MirrorBackend) Provision(ctx *cluster.Ctx, i int, node cluster.NodeID) (vmmodel.VirtualDisk, error) {
	d, err := b.Repo.OpenDisk(ctx, node, b.Base, blobvfs.Synthetic())
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Snapshot implements Backend: first CLONE (so every instance gets its
// own lineage), then COMMIT; later snapshots of the same instance only
// COMMIT, per §3.2.
func (b *MirrorBackend) Snapshot(ctx *cluster.Ctx, i int, node cluster.NodeID, disk vmmodel.VirtualDisk) error {
	d, ok := disk.(*blobvfs.Disk)
	if !ok {
		return fmt.Errorf("middleware: mirror snapshot of foreign disk %T", disk)
	}
	_, err := b.Repo.Snapshot(ctx, d, d.Image() == b.Base.Image)
	return err
}

// OpenOn mirrors an arbitrary snapshot on an arbitrary node: this is
// how a terminated instance resumes on a fresh node from the
// standalone image its CLONE+COMMIT produced (§5.5's suspend/resume
// setting, and the migration scenario of §3.2).
func (b *MirrorBackend) OpenOn(ctx *cluster.Ctx, node cluster.NodeID, s blobvfs.Snapshot) (*blobvfs.Disk, error) {
	return b.Repo.OpenDisk(ctx, node, s, blobvfs.Synthetic())
}

// RetireOld implements VersionRetirer for the orchestrator's retention
// policy: it retires every unpinned snapshot of the disk's lineage
// older than the newest keep versions. The version the disk currently
// mirrors is pinned for as long as it is open, so it can never retire
// out from under the instance even if keep is 1 and later commits have
// advanced the lineage. The base image (shared by every instance
// before its first CLONE) is never touched: retention starts once an
// instance has its own lineage.
func (b *MirrorBackend) RetireOld(ctx *cluster.Ctx, disk vmmodel.VirtualDisk, keep int) (int, error) {
	d, ok := disk.(*blobvfs.Disk)
	if !ok {
		return 0, fmt.Errorf("middleware: retention on foreign disk %T", disk)
	}
	if keep < 1 {
		return 0, fmt.Errorf("middleware: retention must keep at least 1 version, got %d", keep)
	}
	if d.Image() == b.Base.Image {
		return 0, nil // not snapshotted yet; still on the shared base
	}
	// The backend knows every non-base lineage is privately owned by
	// its instance (CLONE+COMMIT created it), so it uses the raw
	// primitive: retention must keep working on a disk that was
	// resumed directly onto its own lineage (OpenOn), which the
	// façade's forked-lineage guard in RetireOld would exempt.
	upTo := d.Version() - blobvfs.Version(keep)
	if upTo < 1 {
		return 0, nil
	}
	return b.Repo.RetireUpTo(ctx, d.Image(), upTo)
}

// QcowBackend is the qcow2-over-PVFS baseline: the raw base image is
// striped on PVFS; each instance gets a local qcow2 CoW file backed by
// it; a snapshot copies the qcow2 file back into PVFS as a new
// (dependent) file.
type QcowBackend struct {
	FS          *pvfs.FS
	BackingName string
	ClusterSize int

	mu     sync.Mutex
	rounds map[int]int
}

// NewQcowBackend creates the baseline over an image already stored in
// fs under backingName.
func NewQcowBackend(fs *pvfs.FS, backingName string) *QcowBackend {
	return &QcowBackend{
		FS:          fs,
		BackingName: backingName,
		ClusterSize: qcow2.DefaultClusterSize,
		rounds:      make(map[int]int),
	}
}

// SnapName returns the deterministic PVFS name of instance i's round-th
// snapshot (rounds start at 1).
func (b *QcowBackend) SnapName(i, round int) string {
	return fmt.Sprintf("%s.snap-%d-%d", b.BackingName, i, round)
}

// LastSnapshot returns the name of instance i's most recent snapshot,
// or "" if it has none.
func (b *QcowBackend) LastSnapshot(i int) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rounds[i] == 0 {
		return ""
	}
	return b.SnapName(i, b.rounds[i])
}

// Name implements Backend.
func (b *QcowBackend) Name() string { return "qcow2-over-pvfs" }

// Prepare implements Backend: creating qcow2 files is per-instance and
// cheap, so there is no global phase.
func (b *QcowBackend) Prepare(ctx *cluster.Ctx, nodes []cluster.NodeID) error { return nil }

// Provision implements Backend.
func (b *QcowBackend) Provision(ctx *cluster.Ctx, i int, node cluster.NodeID) (vmmodel.VirtualDisk, error) {
	backing, err := b.FS.Open(ctx, b.BackingName)
	if err != nil {
		return nil, err
	}
	// Creating the empty qcow2 file costs one local-disk metadata write.
	ctx.DiskWrite(node, 64<<10)
	return qcow2.Create(node, backing, b.ClusterSize, false)
}

// Snapshot implements Backend: read the local qcow2 file and copy it
// into PVFS under a fresh name (the paper's concurrent qcow2 copy).
func (b *QcowBackend) Snapshot(ctx *cluster.Ctx, i int, node cluster.NodeID, disk vmmodel.VirtualDisk) error {
	img, ok := disk.(*qcow2.Image)
	if !ok {
		return fmt.Errorf("middleware: qcow2 snapshot of foreign disk %T", disk)
	}
	bytes := img.FileBytes()
	b.mu.Lock()
	b.rounds[i]++
	name := b.SnapName(i, b.rounds[i])
	b.mu.Unlock()
	ctx.DiskRead(node, bytes)
	f, err := b.FS.Create(ctx, name, bytes, false)
	if err != nil {
		return err
	}
	return f.WriteAt(ctx, nil, 0, bytes)
}

// PrepropBackend is the taktuk-prepropagation baseline: the image is
// broadcast from a central NFS server to every node's local disk
// before any instance starts; boots are then purely local. Snapshots
// copy the full image back to the server — the operation the paper
// rules out as infeasible at scale, kept here so the cost can be
// demonstrated.
type PrepropBackend struct {
	Server    *nfs.Server
	ImageName string
	ImageSize int64
	EffRate   float64

	mu       sync.Mutex
	snapshot int
}

// NewPrepropBackend creates the baseline for an image stored on srv.
func NewPrepropBackend(srv *nfs.Server, name string, size int64) *PrepropBackend {
	return &PrepropBackend{Server: srv, ImageName: name, ImageSize: size, EffRate: broadcast.DefaultEffRate}
}

// Name implements Backend.
func (b *PrepropBackend) Name() string { return "taktuk-preprop" }

// Prepare implements Backend: the full broadcast.
func (b *PrepropBackend) Prepare(ctx *cluster.Ctx, nodes []cluster.NodeID) error {
	targets := make([]cluster.NodeID, 0, len(nodes))
	for _, n := range nodes {
		if n != b.Server.Node() {
			targets = append(targets, n)
		}
	}
	broadcast.Binomial(ctx, b.Server.Node(), targets, b.ImageSize, b.EffRate)
	return nil
}

// Provision implements Backend: the image is already local.
func (b *PrepropBackend) Provision(ctx *cluster.Ctx, i int, node cluster.NodeID) (vmmodel.VirtualDisk, error) {
	return &vmmodel.LocalRaw{NodeID: node, Bytes: b.ImageSize}, nil
}

// Snapshot implements Backend: ship the whole image back.
func (b *PrepropBackend) Snapshot(ctx *cluster.Ctx, i int, node cluster.NodeID, disk vmmodel.VirtualDisk) error {
	ctx.DiskRead(node, b.ImageSize)
	b.mu.Lock()
	b.snapshot++
	name := fmt.Sprintf("%s.snap-%d-%d", b.ImageName, i, b.snapshot)
	b.mu.Unlock()
	return b.Server.Put(ctx, name, b.ImageSize, nil)
}
