// Package middleware models the cloud middleware layer of Fig. 1 in
// the paper: it coordinates compute nodes to deploy a set of VM
// instances from an initial image (multideployment) and to snapshot
// them concurrently (multisnapshotting), issuing CLONE and COMMIT to
// the mirroring modules exactly as §3.2 describes.
//
// Three interchangeable storage backends implement the Backend
// interface — the paper's approach and its two baselines — so the
// experiment harness runs identical deployment logic over all three.
package middleware

import (
	"fmt"
	"sync"

	"blobvfs/internal/blob"
	"blobvfs/internal/broadcast"
	"blobvfs/internal/cluster"
	"blobvfs/internal/mirror"
	"blobvfs/internal/nfs"
	"blobvfs/internal/p2p"
	"blobvfs/internal/pvfs"
	"blobvfs/internal/qcow2"
	"blobvfs/internal/vmmodel"
)

// Backend abstracts how an instance's image is provisioned and
// snapshotted.
type Backend interface {
	// Name identifies the backend in results ("our-approach", ...).
	Name() string
	// Prepare runs the global initialization phase before any instance
	// starts (the broadcast for prepropagation; a no-op for the lazy
	// schemes).
	Prepare(ctx *cluster.Ctx, nodes []cluster.NodeID) error
	// Provision makes instance i's virtual disk available on node and
	// returns it; called once per instance at hypervisor launch.
	Provision(ctx *cluster.Ctx, i int, node cluster.NodeID) (vmmodel.VirtualDisk, error)
	// Snapshot persists instance i's local modifications to the
	// repository.
	Snapshot(ctx *cluster.Ctx, i int, node cluster.NodeID, disk vmmodel.VirtualDisk) error
}

// MirrorBackend is the paper's approach: lazy mirroring over the
// versioning blob store, CLONE+COMMIT snapshotting.
type MirrorBackend struct {
	Sys     *blob.System
	ImageID blob.ID
	ImageV  blob.Version
	Cfg     mirror.Config

	// Sharing, when set, enables peer-to-peer chunk sharing: Prepare
	// registers the deployment's nodes as a cohort for the image, and
	// every module provisioned afterwards announces the chunks it
	// mirrors and fetches from cohort peers before the providers.
	Sharing *p2p.Registry

	mu      sync.Mutex
	modules map[cluster.NodeID]*mirror.Module
	cohort  *p2p.Cohort
}

// NewMirrorBackend creates the backend for a base image already
// uploaded to sys.
func NewMirrorBackend(sys *blob.System, id blob.ID, v blob.Version) *MirrorBackend {
	return &MirrorBackend{
		Sys:     sys,
		ImageID: id,
		ImageV:  v,
		Cfg:     mirror.DefaultConfig(),
		modules: make(map[cluster.NodeID]*mirror.Module),
	}
}

// Name implements Backend.
func (b *MirrorBackend) Name() string { return "our-approach" }

// Prepare implements Backend: the lazy scheme itself needs no
// initialization; with sharing enabled the deployment cohort is
// registered so the nodes can serve each other's demand fetches.
func (b *MirrorBackend) Prepare(ctx *cluster.Ctx, nodes []cluster.NodeID) error {
	if b.Sharing != nil {
		co := b.Sharing.Register(ctx, b.ImageID, nodes)
		b.mu.Lock()
		b.cohort = co
		b.mu.Unlock()
	}
	return nil
}

// Cohort returns the sharing cohort registered by Prepare (nil when
// sharing is disabled or Prepare has not run).
func (b *MirrorBackend) Cohort() *p2p.Cohort {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cohort
}

// module returns (creating on demand) the node's mirroring module.
// Each module gets its own blob client, hence its own metadata cache —
// caching is per node, as in the real deployment.
func (b *MirrorBackend) module(node cluster.NodeID) *mirror.Module {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.modules[node]
	if !ok {
		m = mirror.NewModule(node, blob.NewClient(b.Sys), b.Cfg)
		if b.cohort != nil {
			m.SetSharer(b.cohort)
		}
		b.modules[node] = m
	}
	return m
}

// Provision implements Backend: expose the snapshot as a local raw
// file through the node's mirroring module.
func (b *MirrorBackend) Provision(ctx *cluster.Ctx, i int, node cluster.NodeID) (vmmodel.VirtualDisk, error) {
	return b.module(node).Open(ctx, b.ImageID, b.ImageV, false)
}

// Snapshot implements Backend: first CLONE (so every instance gets its
// own lineage), then COMMIT; later snapshots of the same instance only
// COMMIT, per §3.2.
func (b *MirrorBackend) Snapshot(ctx *cluster.Ctx, i int, node cluster.NodeID, disk vmmodel.VirtualDisk) error {
	im, ok := disk.(*mirror.Image)
	if !ok {
		return fmt.Errorf("middleware: mirror snapshot of foreign disk %T", disk)
	}
	if im.BlobID() == b.ImageID {
		if err := im.Clone(ctx); err != nil {
			return err
		}
	}
	_, err := im.Commit(ctx)
	return err
}

// OpenOn mirrors an arbitrary snapshot on an arbitrary node: this is
// how a terminated instance resumes on a fresh node from the
// standalone image its CLONE+COMMIT produced (§5.5's suspend/resume
// setting, and the migration scenario of §3.2).
func (b *MirrorBackend) OpenOn(ctx *cluster.Ctx, node cluster.NodeID, id blob.ID, v blob.Version) (*mirror.Image, error) {
	return b.module(node).Open(ctx, id, v, false)
}

// RetireOld implements VersionRetirer for the orchestrator's retention
// policy: it retires every unpinned snapshot of the disk's blob older
// than the newest keep versions. The version the image currently
// mirrors is pinned by the mirroring module, so it can never retire
// out from under the instance even if keep is 1 and later commits have
// advanced the blob. The base image blob (shared by every instance
// before its first CLONE) is never touched: retention starts once an
// instance has its own lineage.
func (b *MirrorBackend) RetireOld(ctx *cluster.Ctx, disk vmmodel.VirtualDisk, keep int) (int, error) {
	im, ok := disk.(*mirror.Image)
	if !ok {
		return 0, fmt.Errorf("middleware: retention on foreign disk %T", disk)
	}
	if keep < 1 {
		return 0, fmt.Errorf("middleware: retention must keep at least 1 version, got %d", keep)
	}
	id := im.BlobID()
	if id == b.ImageID {
		return 0, nil // not snapshotted yet; still on the shared base
	}
	upTo := im.Version() - blob.Version(keep)
	if upTo < 1 {
		return 0, nil
	}
	return b.Sys.VM.RetireUpTo(ctx, id, upTo)
}

// QcowBackend is the qcow2-over-PVFS baseline: the raw base image is
// striped on PVFS; each instance gets a local qcow2 CoW file backed by
// it; a snapshot copies the qcow2 file back into PVFS as a new
// (dependent) file.
type QcowBackend struct {
	FS          *pvfs.FS
	BackingName string
	ClusterSize int

	mu     sync.Mutex
	rounds map[int]int
}

// NewQcowBackend creates the baseline over an image already stored in
// fs under backingName.
func NewQcowBackend(fs *pvfs.FS, backingName string) *QcowBackend {
	return &QcowBackend{
		FS:          fs,
		BackingName: backingName,
		ClusterSize: qcow2.DefaultClusterSize,
		rounds:      make(map[int]int),
	}
}

// SnapName returns the deterministic PVFS name of instance i's round-th
// snapshot (rounds start at 1).
func (b *QcowBackend) SnapName(i, round int) string {
	return fmt.Sprintf("%s.snap-%d-%d", b.BackingName, i, round)
}

// LastSnapshot returns the name of instance i's most recent snapshot,
// or "" if it has none.
func (b *QcowBackend) LastSnapshot(i int) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rounds[i] == 0 {
		return ""
	}
	return b.SnapName(i, b.rounds[i])
}

// Name implements Backend.
func (b *QcowBackend) Name() string { return "qcow2-over-pvfs" }

// Prepare implements Backend: creating qcow2 files is per-instance and
// cheap, so there is no global phase.
func (b *QcowBackend) Prepare(ctx *cluster.Ctx, nodes []cluster.NodeID) error { return nil }

// Provision implements Backend.
func (b *QcowBackend) Provision(ctx *cluster.Ctx, i int, node cluster.NodeID) (vmmodel.VirtualDisk, error) {
	backing, err := b.FS.Open(ctx, b.BackingName)
	if err != nil {
		return nil, err
	}
	// Creating the empty qcow2 file costs one local-disk metadata write.
	ctx.DiskWrite(node, 64<<10)
	return qcow2.Create(node, backing, b.ClusterSize, false)
}

// Snapshot implements Backend: read the local qcow2 file and copy it
// into PVFS under a fresh name (the paper's concurrent qcow2 copy).
func (b *QcowBackend) Snapshot(ctx *cluster.Ctx, i int, node cluster.NodeID, disk vmmodel.VirtualDisk) error {
	img, ok := disk.(*qcow2.Image)
	if !ok {
		return fmt.Errorf("middleware: qcow2 snapshot of foreign disk %T", disk)
	}
	bytes := img.FileBytes()
	b.mu.Lock()
	b.rounds[i]++
	name := b.SnapName(i, b.rounds[i])
	b.mu.Unlock()
	ctx.DiskRead(node, bytes)
	f, err := b.FS.Create(ctx, name, bytes, false)
	if err != nil {
		return err
	}
	return f.WriteAt(ctx, nil, 0, bytes)
}

// PrepropBackend is the taktuk-prepropagation baseline: the image is
// broadcast from a central NFS server to every node's local disk
// before any instance starts; boots are then purely local. Snapshots
// copy the full image back to the server — the operation the paper
// rules out as infeasible at scale, kept here so the cost can be
// demonstrated.
type PrepropBackend struct {
	Server    *nfs.Server
	ImageName string
	ImageSize int64
	EffRate   float64

	mu       sync.Mutex
	snapshot int
}

// NewPrepropBackend creates the baseline for an image stored on srv.
func NewPrepropBackend(srv *nfs.Server, name string, size int64) *PrepropBackend {
	return &PrepropBackend{Server: srv, ImageName: name, ImageSize: size, EffRate: broadcast.DefaultEffRate}
}

// Name implements Backend.
func (b *PrepropBackend) Name() string { return "taktuk-preprop" }

// Prepare implements Backend: the full broadcast.
func (b *PrepropBackend) Prepare(ctx *cluster.Ctx, nodes []cluster.NodeID) error {
	targets := make([]cluster.NodeID, 0, len(nodes))
	for _, n := range nodes {
		if n != b.Server.Node() {
			targets = append(targets, n)
		}
	}
	broadcast.Binomial(ctx, b.Server.Node(), targets, b.ImageSize, b.EffRate)
	return nil
}

// Provision implements Backend: the image is already local.
func (b *PrepropBackend) Provision(ctx *cluster.Ctx, i int, node cluster.NodeID) (vmmodel.VirtualDisk, error) {
	return &vmmodel.LocalRaw{NodeID: node, Bytes: b.ImageSize}, nil
}

// Snapshot implements Backend: ship the whole image back.
func (b *PrepropBackend) Snapshot(ctx *cluster.Ctx, i int, node cluster.NodeID, disk vmmodel.VirtualDisk) error {
	ctx.DiskRead(node, b.ImageSize)
	b.mu.Lock()
	b.snapshot++
	name := fmt.Sprintf("%s.snap-%d-%d", b.ImageName, i, b.snapshot)
	b.mu.Unlock()
	return b.Server.Put(ctx, name, b.ImageSize, nil)
}
