// Package middleware models the cloud middleware layer of Fig. 1 in
// the paper: it coordinates compute nodes to deploy a set of VM
// instances from an initial image (multideployment) and to snapshot
// them concurrently (multisnapshotting), issuing CLONE and COMMIT to
// the mirroring modules exactly as §3.2 describes.
//
// Three interchangeable storage backends implement the Backend
// interface — the paper's approach and its two baselines — so the
// experiment harness runs identical deployment logic over all three.
package middleware
