package middleware

import (
	"fmt"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/vmmodel"
)

// Instance is one deployed VM instance under orchestration.
type Instance struct {
	Index int
	Node  cluster.NodeID
	Disk  vmmodel.VirtualDisk
	VM    *vmmodel.VM

	ProvisionTime float64 // seconds spent in Provision
	BootTime      float64 // hypervisor launch → fully booted (§5.2 metric)
	BootDoneAt    float64 // absolute virtual time boot finished
}

// DeployResult aggregates a multideployment run.
type DeployResult struct {
	Backend   string
	Instances []*Instance
	// PrepareTime is the initialization phase (broadcast) duration.
	PrepareTime float64
	// Completion is deploy start → last instance booted (§5.2's
	// "time-to-complete booting for all instances").
	Completion float64
}

// BootTimes extracts per-instance boot durations.
func (r *DeployResult) BootTimes() []float64 {
	out := make([]float64, len(r.Instances))
	for i, inst := range r.Instances {
		out[i] = inst.BootTime
	}
	return out
}

// SnapshotResult aggregates a multisnapshotting run.
type SnapshotResult struct {
	Backend string
	// Times holds per-instance snapshot durations.
	Times []float64
	// Completion is the duration until the last snapshot finished.
	Completion float64
	// Retired counts snapshot versions retired by the retention policy
	// in this round (0 when no policy is set).
	Retired int
	// GC holds the garbage-collection report of the cycle that ran
	// after retention (nil when no collector is attached).
	GC *blob.GCReport
}

// RetentionPolicy bounds the stored snapshot history per instance:
// after each multisnapshotting round, only the newest KeepLast
// versions of every instance's blob stay live; older ones are retired
// and their exclusively-held storage is reclaimed by the next garbage
// collection. KeepLast 0 disables retention (versions accumulate, as
// in the paper's experiments).
type RetentionPolicy struct {
	KeepLast int
}

// VersionRetirer is the optional backend capability the retention
// policy needs: retiring a disk's old snapshot versions. Only the
// mirror backend implements it; retention over the baseline backends
// is a silent no-op, like their other missing lifecycle features.
type VersionRetirer interface {
	RetireOld(ctx *cluster.Ctx, disk vmmodel.VirtualDisk, keep int) (int, error)
}

// Orchestrator drives the deployment/snapshot patterns over a backend.
type Orchestrator struct {
	Backend Backend
	// Nodes lists the compute node of each instance (one VM per node,
	// as in the paper's experiments).
	Nodes []cluster.NodeID
	// TraceFor returns instance i's boot trace. Traces should differ
	// per instance only in their generator stream; the natural skew is
	// modeled by StartJitter plus think-time jitter in the trace.
	TraceFor func(i int) []vmmodel.TraceOp
	// StartJitter returns how long after deployment start the
	// hypervisor of instance i is launched (models staggered launch
	// and hypervisor initialization; §3.1.3).
	StartJitter func(i int) float64
	// Retention, when KeepLast > 0, retires old snapshot versions after
	// every SnapshotAll round (backend permitting).
	Retention RetentionPolicy
	// Pipeline overlaps the commit pipeline across instances: each
	// instance's retention runs on its own node as soon as its snapshot
	// completes, instead of behind the round's global barrier, so a
	// fast instance's lifecycle work proceeds while slow instances are
	// still publishing chunks. The single garbage-collection cycle
	// still runs after every instance finished (a blob's "last K" is
	// per instance, so per-instance retirement needs no barrier, but
	// reclaiming shared chunks does). Off by default: the barrier
	// ordering is what the existing scenarios measure.
	Pipeline bool
	// Collector, when set, runs one garbage-collection cycle after each
	// SnapshotAll round's retention, reclaiming the storage the retired
	// versions held exclusively.
	Collector *blob.Collector
}

// Deploy runs the multideployment pattern: the backend's global
// initialization, then all instances provisioned and booted
// concurrently, one per node.
func (o *Orchestrator) Deploy(ctx *cluster.Ctx) (*DeployResult, error) {
	if len(o.Nodes) == 0 {
		return nil, fmt.Errorf("middleware: no instances to deploy")
	}
	res := &DeployResult{Backend: o.Backend.Name(), Instances: make([]*Instance, len(o.Nodes))}
	start := ctx.Now()
	if err := o.Backend.Prepare(ctx, o.Nodes); err != nil {
		return nil, err
	}
	res.PrepareTime = ctx.Now() - start

	errs := make([]error, len(o.Nodes))
	tasks := make([]cluster.Task, 0, len(o.Nodes))
	for i, node := range o.Nodes {
		i, node := i, node
		tasks = append(tasks, ctx.Go("deploy", node, func(cc *cluster.Ctx) {
			if o.StartJitter != nil {
				if d := o.StartJitter(i); d > 0 {
					cc.Sleep(d)
				}
			}
			inst := &Instance{Index: i, Node: node}
			t0 := cc.Now()
			disk, err := o.Backend.Provision(cc, i, node)
			if err != nil {
				errs[i] = err
				return
			}
			inst.Disk = disk
			inst.ProvisionTime = cc.Now() - t0
			inst.VM = &vmmodel.VM{Node: node, Disk: disk}
			t1 := cc.Now()
			if err := inst.VM.Boot(cc, o.TraceFor(i)); err != nil {
				errs[i] = err
				return
			}
			inst.BootTime = cc.Now() - t1
			inst.BootDoneAt = cc.Now()
			res.Instances[i] = inst
		}))
	}
	ctx.WaitAll(tasks)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Completion = ctx.Now() - start
	return res, nil
}

// SnapshotAll runs the multisnapshotting pattern: every instance's
// local modifications are persisted concurrently, synchronized to
// start at the same time (§5.3).
func (o *Orchestrator) SnapshotAll(ctx *cluster.Ctx, instances []*Instance) (*SnapshotResult, error) {
	res := &SnapshotResult{Backend: o.Backend.Name(), Times: make([]float64, len(instances))}
	errs := make([]error, len(instances))
	start := ctx.Now()
	var vr VersionRetirer
	if o.Retention.KeepLast > 0 {
		vr, _ = o.Backend.(VersionRetirer)
	}
	retired := make([]int, len(instances))
	tasks := make([]cluster.Task, 0, len(instances))
	for k, inst := range instances {
		k, inst := k, inst
		tasks = append(tasks, ctx.Go("snapshot", inst.Node, func(cc *cluster.Ctx) {
			t0 := cc.Now()
			errs[k] = o.Backend.Snapshot(cc, inst.Index, inst.Node, inst.Disk)
			res.Times[k] = cc.Now() - t0
			if o.Pipeline && errs[k] == nil && vr != nil {
				retired[k], errs[k] = vr.RetireOld(cc, inst.Disk, o.Retention.KeepLast)
			}
		}))
	}
	ctx.WaitAll(tasks)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Lifecycle epilogue: retention retires versions that fell out of
	// the keep-last-K window, and the collector reclaims what they held
	// exclusively. With Pipeline each instance already retired its own
	// versions inline above; otherwise both run after every instance's
	// snapshot completed, so the "last K" of each blob is well defined
	// for the round. (Per-instance retirement is safe to pipeline: a
	// lineage is private to its instance. The collector is not — it
	// reclaims shared chunks — so it always runs behind the barrier.)
	if vr != nil && !o.Pipeline {
		for k, inst := range instances {
			n, err := vr.RetireOld(ctx, inst.Disk, o.Retention.KeepLast)
			if err != nil {
				return nil, err
			}
			retired[k] = n
		}
	}
	for _, n := range retired {
		res.Retired += n
	}
	if o.Collector != nil {
		rep, err := o.Collector.Collect(ctx)
		if err != nil {
			return nil, err
		}
		res.GC = &rep
	}
	res.Completion = ctx.Now() - start
	return res, nil
}

// RunOnAll executes fn concurrently on every instance's node (the
// application phase of the deployment) and waits for completion.
func (o *Orchestrator) RunOnAll(ctx *cluster.Ctx, instances []*Instance, fn func(cc *cluster.Ctx, inst *Instance) error) error {
	errs := make([]error, len(instances))
	tasks := make([]cluster.Task, 0, len(instances))
	for k, inst := range instances {
		k, inst := k, inst
		tasks = append(tasks, ctx.Go("app", inst.Node, func(cc *cluster.Ctx) {
			errs[k] = fn(cc, inst)
		}))
	}
	ctx.WaitAll(tasks)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
