package middleware

import (
	"testing"

	"blobvfs"
	"blobvfs/internal/cluster"
	"blobvfs/internal/nfs"
	"blobvfs/internal/pvfs"
	"blobvfs/internal/sim"
	"blobvfs/internal/vmmodel"
)

// simCluster builds an 8+1-node sim fabric with a boot trace.
func simCluster() (*cluster.Sim, []cluster.NodeID, []vmmodel.TraceOp) {
	fab := cluster.NewSim(cluster.DefaultConfig(9))
	nodes := make([]cluster.NodeID, 8)
	for i := range nodes {
		nodes[i] = cluster.NodeID(i)
	}
	trace := vmmodel.GenBootTrace(sim.NewRNG(5), vmmodel.BootConfig{
		ImageSize:    64 << 20,
		TouchedBytes: 8 << 20,
		Extents:      16,
		MeanOpLen:    64 << 10,
		WriteOps:     4,
		WriteLen:     4 << 10,
		TotalThink:   0.5,
	})
	return fab, nodes, trace
}

func orchFor(b Backend, nodes []cluster.NodeID, trace []vmmodel.TraceOp) *Orchestrator {
	return &Orchestrator{
		Backend:     b,
		Nodes:       nodes,
		TraceFor:    func(i int) []vmmodel.TraceOp { return trace },
		StartJitter: func(i int) float64 { return float64(i) * 0.01 },
	}
}

func mirrorBackend(t *testing.T, fab *cluster.Sim, nodes []cluster.NodeID) *MirrorBackend {
	t.Helper()
	repo, err := blobvfs.Open(fab,
		blobvfs.WithProviders(nodes...),
		blobvfs.WithManager(cluster.NodeID(8)),
		blobvfs.WithChunkSize(256<<10))
	if err != nil {
		t.Fatal(err)
	}
	var base blobvfs.Snapshot
	fab.Run(func(ctx *cluster.Ctx) {
		base, err = repo.CreateSynthetic(ctx, "base", 64<<20)
		if err != nil {
			t.Fatal(err)
		}
	})
	return NewMirrorBackend(repo, base)
}

func TestMirrorBackendDeployAndSnapshot(t *testing.T) {
	fab, nodes, trace := simCluster()
	b := mirrorBackend(t, fab, nodes)
	orch := orchFor(b, nodes, trace)
	fab.Run(func(ctx *cluster.Ctx) {
		dep, err := orch.Deploy(ctx)
		if err != nil {
			t.Fatalf("deploy: %v", err)
		}
		if len(dep.Instances) != 8 {
			t.Fatalf("instances = %d", len(dep.Instances))
		}
		if dep.PrepareTime != 0 {
			t.Fatalf("lazy backend has prepare time %v", dep.PrepareTime)
		}
		for _, inst := range dep.Instances {
			if inst.BootTime <= 0 {
				t.Fatalf("instance %d boot time %v", inst.Index, inst.BootTime)
			}
		}
		// Write some per-instance state, then global snapshot.
		err = orch.RunOnAll(ctx, dep.Instances, func(cc *cluster.Ctx, inst *Instance) error {
			return inst.Disk.Write(cc, int64(inst.Index)*1<<20, 512<<10)
		})
		if err != nil {
			t.Fatal(err)
		}
		snap, err := orch.SnapshotAll(ctx, dep.Instances)
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		if snap.Completion <= 0 || len(snap.Times) != 8 {
			t.Fatalf("snapshot result %+v", snap)
		}
		// Each instance must now own its own lineage (CLONE happened),
		// with one committed version on top of the clone.
		seen := map[blobvfs.ImageID]bool{}
		for _, inst := range dep.Instances {
			d := inst.Disk.(*blobvfs.Disk)
			if d.Image() == b.Base.Image {
				t.Fatal("instance still points at the base image after snapshot")
			}
			if seen[d.Image()] {
				t.Fatal("two instances share a clone lineage")
			}
			seen[d.Image()] = true
			if d.Version() != 2 {
				t.Fatalf("clone version = %d, want 2 (clone v1 + commit v2)", d.Version())
			}
		}
		// A second global snapshot with fresh modifications must not
		// clone again — only commit onto the same lineage.
		err = orch.RunOnAll(ctx, dep.Instances, func(cc *cluster.Ctx, inst *Instance) error {
			return inst.Disk.Write(cc, 2<<20, 256<<10)
		})
		if err != nil {
			t.Fatal(err)
		}
		lineages := map[int]blobvfs.ImageID{}
		for _, inst := range dep.Instances {
			lineages[inst.Index] = inst.Disk.(*blobvfs.Disk).Image()
		}
		if _, err := orch.SnapshotAll(ctx, dep.Instances); err != nil {
			t.Fatal(err)
		}
		for _, inst := range dep.Instances {
			d := inst.Disk.(*blobvfs.Disk)
			if d.Image() != lineages[inst.Index] {
				t.Fatal("second snapshot cloned again")
			}
			if d.Version() != 3 {
				t.Fatalf("second snapshot version = %d, want 3", d.Version())
			}
		}
		// A snapshot with no new modifications is a no-op commit.
		if _, err := orch.SnapshotAll(ctx, dep.Instances); err != nil {
			t.Fatal(err)
		}
		for _, inst := range dep.Instances {
			if inst.Disk.(*blobvfs.Disk).Version() != 3 {
				t.Fatal("no-op snapshot changed the version")
			}
		}
	})
}

func TestQcowBackendDeployAndSnapshot(t *testing.T) {
	fab, nodes, trace := simCluster()
	fs := pvfs.New(nodes, 256<<10)
	fab.Run(func(ctx *cluster.Ctx) {
		if _, err := fs.Create(ctx, "base.raw", 64<<20, false); err != nil {
			t.Fatal(err)
		}
	})
	b := NewQcowBackend(fs, "base.raw")
	orch := orchFor(b, nodes, trace)
	fab.Run(func(ctx *cluster.Ctx) {
		dep, err := orch.Deploy(ctx)
		if err != nil {
			t.Fatalf("deploy: %v", err)
		}
		err = orch.RunOnAll(ctx, dep.Instances, func(cc *cluster.Ctx, inst *Instance) error {
			return inst.Disk.Write(cc, 1<<20, 256<<10)
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := orch.SnapshotAll(ctx, dep.Instances); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		// Snapshot files must exist in PVFS under deterministic names.
		for i := range dep.Instances {
			name := b.SnapName(i, 1)
			if !fs.Exists(name) {
				t.Fatalf("snapshot file %q missing", name)
			}
			if b.LastSnapshot(i) != name {
				t.Fatalf("LastSnapshot(%d) = %q, want %q", i, b.LastSnapshot(i), name)
			}
		}
		if b.LastSnapshot(99) != "" {
			t.Fatal("LastSnapshot of unsnapshotted instance not empty")
		}
	})
}

func TestPrepropBackendBroadcastsBeforeBoot(t *testing.T) {
	fab, nodes, trace := simCluster()
	srv := nfs.NewServer(cluster.NodeID(8))
	fab.Run(func(ctx *cluster.Ctx) {
		if err := srv.Put(ctx, "base.raw", 64<<20, nil); err != nil {
			t.Fatal(err)
		}
	})
	b := NewPrepropBackend(srv, "base.raw", 64<<20)
	orch := orchFor(b, nodes, trace)
	fab.Run(func(ctx *cluster.Ctx) {
		start := ctx.Now()
		dep, err := orch.Deploy(ctx)
		if err != nil {
			t.Fatalf("deploy: %v", err)
		}
		if dep.PrepareTime <= 0 {
			t.Fatal("broadcast took no time")
		}
		// No instance may start booting before the broadcast finishes.
		for _, inst := range dep.Instances {
			if inst.BootDoneAt-inst.BootTime < start+dep.PrepareTime {
				t.Fatalf("instance %d booted during the broadcast", inst.Index)
			}
		}
		// Prepropagation moves at least n full images.
		if got := fab.NetTraffic(); got < int64(len(nodes))*64<<20 {
			t.Fatalf("traffic = %d, want >= %d (full prepropagation)", got, int64(len(nodes))*64<<20)
		}
	})
}

func TestDeployValidation(t *testing.T) {
	fab, nodes, trace := simCluster()
	b := mirrorBackend(t, fab, nodes)
	orch := orchFor(b, nil, trace)
	fab.Run(func(ctx *cluster.Ctx) {
		if _, err := orch.Deploy(ctx); err == nil {
			t.Error("deploy with no instances succeeded")
		}
	})
}

func TestSnapshotRejectsForeignDisk(t *testing.T) {
	fab, nodes, _ := simCluster()
	b := mirrorBackend(t, fab, nodes)
	fab.Run(func(ctx *cluster.Ctx) {
		raw := &vmmodel.LocalRaw{NodeID: 0, Bytes: 1 << 20}
		if err := b.Snapshot(ctx, 0, 0, raw); err == nil {
			t.Error("mirror backend snapshotted a LocalRaw disk")
		}
		fs := pvfs.New(nodes, 256<<10)
		qb := NewQcowBackend(fs, "x")
		if err := qb.Snapshot(ctx, 0, 0, raw); err == nil {
			t.Error("qcow backend snapshotted a LocalRaw disk")
		}
	})
}

func TestMirrorBackendOpenOnFreshNode(t *testing.T) {
	fab, nodes, trace := simCluster()
	b := mirrorBackend(t, fab, nodes)
	orch := orchFor(b, nodes[:1], trace)
	fab.Run(func(ctx *cluster.Ctx) {
		dep, err := orch.Deploy(ctx)
		if err != nil {
			t.Fatal(err)
		}
		inst := dep.Instances[0]
		if err := inst.Disk.Write(ctx, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := b.Snapshot(ctx, 0, inst.Node, inst.Disk); err != nil {
			t.Fatal(err)
		}
		d := inst.Disk.(*blobvfs.Disk)
		// Resume the snapshot on a different node (migration, §3.2).
		done := ctx.Go("resume", nodes[3], func(cc *cluster.Ctx) {
			re, err := b.OpenOn(cc, nodes[3], d.Current())
			if err != nil {
				t.Errorf("OpenOn: %v", err)
				return
			}
			if err := re.Read(cc, 0, 1<<20); err != nil {
				t.Errorf("read resumed image: %v", err)
			}
		})
		ctx.Wait(done)
	})
}
