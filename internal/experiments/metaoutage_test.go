package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestMetaOutageAllInstancesComplete: the headline property — with
// replicated metadata, killing half the metadata providers plus a full
// compute rack mid-deployment must not fail a single descent or lose a
// single instance, and the control-plane resilience machinery must
// actually have engaged.
func TestMetaOutageAllInstancesComplete(t *testing.T) {
	p := Quick()
	healthy := RunMetaOutage(p, MetaOutageConfig{Instances: 24})
	outage := RunMetaOutage(p, MetaOutageConfig{Instances: 24, KillMeta: 8, KillRack: true})

	for _, pt := range []MetaOutagePoint{healthy, outage} {
		if pt.Booted != pt.Instances {
			t.Fatalf("killed=%d: %d of %d instances booted", pt.KilledMeta, pt.Booted, pt.Instances)
		}
		if pt.FailedDescents != 0 {
			t.Fatalf("killed=%d: %d metadata descents found no live replica", pt.KilledMeta, pt.FailedDescents)
		}
	}
	if healthy.MetaFailovers != 0 || healthy.MetaRereplicated != 0 || healthy.Failovers != 0 {
		t.Fatalf("healthy run exercised the failure path: %+v", healthy)
	}
	if outage.MetaFailovers == 0 {
		t.Error("outage run recorded no metadata failovers")
	}
	if outage.MetaRereplicated == 0 {
		t.Error("outage run re-replicated no metadata")
	}
	// Losing half the control plane costs time, but not completeness.
	if outage.Completion <= healthy.Completion {
		t.Errorf("the outage did not slow completion: %.2f vs %.2f",
			outage.Completion, healthy.Completion)
	}

	tab := MetaOutageTable([]MetaOutagePoint{healthy, outage}).String()
	for _, want := range []string{"failed descents", "meta failovers", "yes", "no"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

// TestMetaOutageDeterministic: the scenario is bit-for-bit repeatable —
// same seed, same kills, same counters — fault injection, rack
// expansion and repair sweeps included.
func TestMetaOutageDeterministic(t *testing.T) {
	p := Quick()
	mc := MetaOutageConfig{Instances: 16, KillMeta: 6, KillRack: true, Sharing: true}
	a := RunMetaOutage(p, mc)
	b := RunMetaOutage(p, mc)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}
