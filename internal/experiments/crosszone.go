package experiments

import (
	"fmt"

	"blobvfs"
	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/middleware"
	"blobvfs/internal/p2p"
	"blobvfs/internal/sim"
	"blobvfs/internal/vmmodel"
)

// This file implements the cross-zone flash-crowd scenario: the same
// image deployed simultaneously across several availability zones
// connected by scarce interconnects. The paper's cluster is a flat
// Gigabit switch (§5.1), but the IaaS clouds it targets span failure
// domains whose cross-domain bytes are the expensive ones. The
// scenario deploys one image to Zones × InstancesPerZone instances
// over a provider pool with members in every zone, and measures where
// the bytes went — per locality tier, with the zone-interconnect
// traffic (Sim.CrossZoneBytes) as the headline. Run it twice, flat
// policy vs. topology-aware (WithTopology), over the *same physical
// fabric*: awareness spreads each chunk's replicas one-per-zone at
// write time, serves each read from the reader's own zone, and keeps
// p2p exchanges rack- or zone-local, so the interconnect carries only
// the first seeding of each zone instead of two thirds of the crowd.

// crossZoneNodesPerRack picks the rack size for a zone of the given
// node count: the largest of the standard sizes that divides it
// evenly, so the topology always covers the cluster exactly.
func crossZoneNodesPerRack(zoneSize int) int {
	for _, n := range []int{8, 4, 2} {
		if zoneSize%n == 0 {
			return n
		}
	}
	return 1
}

// CrossZoneTopology returns the scenario's fabric arrangement for the
// given shape: zones of zoneSize nodes in racks of up to 8, rack
// uplinks at 4× the node NIC (a 2:1 oversubscribed top-of-rack
// switch), and zone interconnects at 2× the node NIC — the scarce
// resource a whole zone's external traffic squeezes through — with
// 50µs extra RTT across racks and 1ms across zones.
func CrossZoneTopology(zones, zoneSize int) cluster.Topology {
	nic := cluster.DefaultConfig(1).NICBandwidth
	perRack := crossZoneNodesPerRack(zoneSize)
	return cluster.Topology{
		Zones:         zones,
		RacksPerZone:  zoneSize / perRack,
		NodesPerRack:  perRack,
		RackBandwidth: 4 * nic,
		RackLatency:   5e-5,
		ZoneBandwidth: 2 * nic,
		ZoneLatency:   1e-3,
	}
}

// CrossZoneConfig parameterizes one cross-zone run.
type CrossZoneConfig struct {
	// Zones is the number of availability zones (default 3).
	Zones int
	// InstancesPerZone is the per-zone deployment fan-out.
	InstancesPerZone int
	// ProvidersPerZone is the per-zone share of the storage pool
	// (default 3); the pool spans all zones.
	ProvidersPerZone int
	// Replicas is the chunk replication degree (default Zones, so
	// aware placement can pin one copy in every zone).
	Replicas int
	// Aware turns on topology-aware placement, replica selection and
	// peer selection (blobvfs.WithTopology). Off is the flat-policy
	// baseline over the identical physical fabric.
	Aware bool
	// Sharing toggles the p2p chunk-sharing layer.
	Sharing bool
	// P2P carries the sharing protocol constants (zero value →
	// p2p.DefaultConfig).
	P2P p2p.Config
}

// CrossZonePoint reports one cross-zone run.
type CrossZonePoint struct {
	Zones            int
	InstancesPerZone int
	ProvidersPerZone int
	Replicas         int
	Aware            bool
	Sharing          bool

	AvgBoot    float64 // mean per-instance boot time (s)
	Completion float64 // deploy start → last instance booted (s)
	TrafficGB  float64 // total network traffic (GB)

	// CrossZoneBytes is the headline: traffic that crossed a zone
	// interconnect (== TierBytes[TierRemote]).
	CrossZoneBytes int64
	// TierBytes breaks all off-node traffic down by locality tier.
	TierBytes [cluster.NumTiers]int64

	ProviderReads    int64 // chunk reads served by the provider pool
	MaxProviderReads int64 // ... by its hottest member (the hot-spot)
	// ProviderTierReads splits provider reads by reader→provider
	// distance. Only the aware run can attribute tiers (the flat
	// policy has no topology), so baseline runs book everything under
	// TierRack like the flat cluster does.
	ProviderTierReads [cluster.NumTiers]int64
	PeerReads         int64 // chunk reads served by cohort peers
	P2P               p2p.Stats
}

// RunCrossZone deploys one image to cz.Zones × cz.InstancesPerZone
// instances spread over a zoned fabric and reports the traffic per
// locality tier. Node layout: zone z occupies the contiguous ID block
// [z·S, (z+1)·S) with S = InstancesPerZone + ProvidersPerZone + 1 —
// instances first, then providers, then one auxiliary node; zone 0's
// auxiliary node runs the version manager and the p2p tracker. The
// image upload is excluded from the measurements, as in the other
// experiments.
func RunCrossZone(p Params, cz CrossZoneConfig) CrossZonePoint {
	if cz.Zones <= 0 {
		cz.Zones = 3
	}
	if cz.InstancesPerZone < 1 {
		panic("experiments: cross-zone deployment needs at least one instance per zone")
	}
	if cz.ProvidersPerZone <= 0 {
		cz.ProvidersPerZone = 3
	}
	if cz.Replicas <= 0 {
		cz.Replicas = cz.Zones
	}
	if cz.P2P == (p2p.Config{}) {
		cz.P2P = p2p.DefaultConfig()
	}

	zoneSize := cz.InstancesPerZone + cz.ProvidersPerZone + 1
	topo := CrossZoneTopology(cz.Zones, zoneSize)

	// The physical fabric is identical for both policies: tier links
	// and per-tier accounting are always on. Only the repo's placement
	// and selection policy switches with cz.Aware.
	cfg := cluster.DefaultConfig(cz.Zones * zoneSize)
	if p.WriteBuffer > 0 {
		cfg.WriteBuffer = p.WriteBuffer
	}
	cfg.Topology = topo
	fab := cluster.NewSim(cfg)

	var instNodes, provNodes []cluster.NodeID
	for z := 0; z < cz.Zones; z++ {
		base := z * zoneSize
		for i := 0; i < cz.InstancesPerZone; i++ {
			instNodes = append(instNodes, cluster.NodeID(base+i))
		}
		for i := 0; i < cz.ProvidersPerZone; i++ {
			provNodes = append(provNodes, cluster.NodeID(base+cz.InstancesPerZone+i))
		}
	}
	service := cluster.NodeID(cz.InstancesPerZone + cz.ProvidersPerZone) // zone 0's auxiliary node

	opts := []blobvfs.Option{
		blobvfs.WithProviders(provNodes...),
		blobvfs.WithManager(service),
		blobvfs.WithReplicas(cz.Replicas),
		blobvfs.WithChunkSize(p.ChunkSize),
	}
	if cz.Sharing {
		opts = append(opts, blobvfs.WithP2P(cz.P2P))
	}
	if cz.Aware {
		opts = append(opts, blobvfs.WithTopology(topo))
	}
	repo, err := blobvfs.Open(fab, opts...)
	if err != nil {
		panic(err)
	}
	sys := repo.System()

	var base blobvfs.Snapshot
	var backend *middleware.MirrorBackend
	fab.Run(func(ctx *cluster.Ctx) {
		b, err := repo.CreateSynthetic(ctx, "base", p.ImageSize)
		if err != nil {
			panic(err)
		}
		base = b
		backend = middleware.NewMirrorBackend(repo, base)
	})
	fab.ResetTraffic()

	baseOps := p.baseTrace()
	traceRNG := sim.NewRNG(p.Seed + 1)
	jitRNG := sim.NewRNG(p.Seed + 2)
	orch := &middleware.Orchestrator{
		Backend: backend,
		Nodes:   instNodes,
		TraceFor: func(i int) []vmmodel.TraceOp {
			return vmmodel.WithThinkJitter(baseOps, traceRNG.Fork(), p.Boot.TotalThink)
		},
		StartJitter: func(i int) float64 {
			return jitRNG.Uniform(p.JitterMin, p.JitterMax)
		},
	}

	var dep *middleware.DeployResult
	fab.Run(func(ctx *cluster.Ctx) {
		var err error
		dep, err = orch.Deploy(ctx)
		if err != nil {
			panic(err)
		}
	})

	pt := CrossZonePoint{
		Zones:            cz.Zones,
		InstancesPerZone: cz.InstancesPerZone,
		ProvidersPerZone: cz.ProvidersPerZone,
		Replicas:         cz.Replicas,
		Aware:            cz.Aware,
		Sharing:          cz.Sharing,
		AvgBoot:          metrics.Summarize(dep.BootTimes()).Mean,
		Completion:       dep.Completion,
		TrafficGB:        float64(fab.NetTraffic()) / 1e9,
		CrossZoneBytes:   fab.CrossZoneBytes(),
	}
	for t := 0; t < cluster.NumTiers; t++ {
		pt.TierBytes[t] = fab.TierTraffic(cluster.Tier(t))
	}
	pt.ProviderReads = sys.Providers.Reads.Load()
	pt.MaxProviderReads = sys.Providers.MaxNodeReads()
	pt.ProviderTierReads = sys.Providers.TierReads()
	if st, ok := repo.SharingStats(base.Image); ok {
		pt.P2P = st
		pt.PeerReads = st.PeerHits
	}
	return pt
}

// CrossZoneTable renders a flat-vs-aware comparison; the cross-zone
// column is the headline.
func CrossZoneTable(points []CrossZonePoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Cross-zone flash crowd: one image deployed over " +
			"zoned fabric, flat policy vs topology-aware",
		Columns: []string{
			"zones", "inst/zone", "aware", "p2p sharing", "completion (s)",
			"cross-zone (GB)", "zone-local (GB)", "rack-local (GB)",
			"provider reads", "hottest provider", "peer reads",
		},
	}
	for _, pt := range points {
		aware, sharing := "off", "off"
		if pt.Aware {
			aware = "on"
		}
		if pt.Sharing {
			sharing = "on"
		}
		t.AddRow(
			itoa(pt.Zones),
			itoa(pt.InstancesPerZone),
			aware,
			sharing,
			ftoa(pt.Completion),
			gbs(pt.CrossZoneBytes),
			gbs(pt.TierBytes[cluster.TierZone]),
			gbs(pt.TierBytes[cluster.TierRack]),
			fmt.Sprintf("%d", pt.ProviderReads),
			fmt.Sprintf("%d", pt.MaxProviderReads),
			fmt.Sprintf("%d", pt.PeerReads),
		)
	}
	return t
}

// gbs renders a byte count as GB with table precision.
func gbs(b int64) string { return ftoa(float64(b) / 1e9) }
