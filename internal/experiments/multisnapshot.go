package experiments

import (
	"fmt"

	"blobvfs"
	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/middleware"
	"blobvfs/internal/p2p"
	"blobvfs/internal/sim"
)

// This file implements the multisnapshot write-path scenario: the
// paper's §5.3 workload (every instance commits a local diff at the
// same instant) run against a small dedicated provider pool, measured
// on the axis the write-path overhaul moves — provider write RPCs per
// commit round. The unbatched path pushes every dirty chunk as an
// individual provider Put and walks the old metadata tree one GetNode
// at a time; the batched path groups a commit's chunk publishes by
// target provider (one RPC per provider per round, mirroring the
// metadata service's PutBatch) and prefetches the dirty tree paths
// level by level. Bytes, versions and metadata are identical either
// way; only the round-trip count changes, which is why the scenario
// reports RPC counts rather than times as its headline.

// MultisnapshotConfig parameterizes one multisnapshot run.
type MultisnapshotConfig struct {
	// Instances is the number of concurrently committing VMs.
	Instances int
	// Providers is the dedicated provider pool size (default 4).
	Providers int
	// Rounds is how many write→snapshot-all cycles run (default 2;
	// the first round CLONEs, later rounds only COMMIT).
	Rounds int
	// DiffBytes overrides the per-instance local modification size per
	// round (default Params.SnapshotDiff).
	DiffBytes int64
	// Batched selects the batched write path (WithBatchedCommit) and
	// the orchestrator's pipelined lifecycle epilogue.
	Batched bool
}

// MultisnapshotPoint reports one run. RPC counts are per commit round,
// averaged over the configured rounds and measured from the provider
// and metadata service counters (setup excluded).
type MultisnapshotPoint struct {
	Instances int
	Providers int
	Rounds    int
	Batched   bool

	ChunkWrites  float64 // logical chunk writes published per round
	ChunkPutRPCs float64 // provider chunk-put RPCs per round
	MetaPutRPCs  float64 // metadata-put RPCs per round (after batching)
	WriteRPCs    float64 // ChunkPutRPCs + MetaPutRPCs — the gated quantity

	AvgTime    float64 // mean per-instance snapshot time, last round (s)
	Completion float64 // last round's snapshot-all completion (s)
}

// RunMultisnapshot provisions mc.Instances synthetic disks from one
// base image, applies the §5.3 modification pattern, and snapshots all
// instances concurrently for mc.Rounds rounds, reporting the provider
// write-RPC cost per round. The base upload is excluded from the
// counters, as in the other experiments.
func RunMultisnapshot(p Params, mc MultisnapshotConfig) MultisnapshotPoint {
	if mc.Instances < 1 {
		panic("experiments: multisnapshot needs at least one instance")
	}
	if mc.Providers <= 0 {
		mc.Providers = 4
	}
	if mc.Rounds <= 0 {
		mc.Rounds = 2
	}
	diff := p.SnapshotDiff
	if mc.DiffBytes > 0 {
		diff = mc.DiffBytes
	}
	var extra []blobvfs.Option
	if mc.Batched {
		extra = append(extra, blobvfs.WithBatchedCommit())
	}
	sp := newSmallPool(p, mc.Instances, mc.Providers, false, p2p.Config{}, cluster.Topology{}, extra...)
	sp.Orch.Pipeline = mc.Batched

	writes0 := sp.Sys.Providers.Writes.Load()
	puts0 := sp.Sys.Providers.PutRPCs.Load()
	metaPuts0 := sp.Sys.Meta.Puts.Load()

	var snap *middleware.SnapshotResult
	sp.Fab.Run(func(ctx *cluster.Ctx) {
		instances := make([]*middleware.Instance, mc.Instances)
		errs := make([]error, mc.Instances)
		var tasks []cluster.Task
		for i := 0; i < mc.Instances; i++ {
			i := i
			node := sp.InstNodes[i]
			tasks = append(tasks, ctx.Go("prep", node, func(cc *cluster.Ctx) {
				disk, err := sp.Backend.Provision(cc, i, node)
				if err != nil {
					errs[i] = err
					return
				}
				instances[i] = &middleware.Instance{Index: i, Node: node, Disk: disk}
			}))
		}
		ctx.WaitAll(tasks)
		for _, err := range errs {
			if err != nil {
				panic(err)
			}
		}
		wrRNG := sim.NewRNG(p.Seed + 7)
		for round := 0; round < mc.Rounds; round++ {
			tasks = tasks[:0]
			for i := 0; i < mc.Instances; i++ {
				i := i
				rng := wrRNG.Fork()
				inst := instances[i]
				tasks = append(tasks, ctx.Go("dirty", inst.Node, func(cc *cluster.Ctx) {
					errs[i] = SnapshotWrites(cc, inst.Disk, diff, int64(p.ChunkSize), rng)
				}))
			}
			ctx.WaitAll(tasks)
			for _, err := range errs {
				if err != nil {
					panic(err)
				}
			}
			var err error
			snap, err = sp.Orch.SnapshotAll(ctx, instances)
			if err != nil {
				panic(err)
			}
		}
	})

	rounds := float64(mc.Rounds)
	pt := MultisnapshotPoint{
		Instances:    mc.Instances,
		Providers:    mc.Providers,
		Rounds:       mc.Rounds,
		Batched:      mc.Batched,
		ChunkWrites:  float64(sp.Sys.Providers.Writes.Load()-writes0) / rounds,
		ChunkPutRPCs: float64(sp.Sys.Providers.PutRPCs.Load()-puts0) / rounds,
		MetaPutRPCs:  float64(sp.Sys.Meta.Puts.Load()-metaPuts0) / rounds,
		AvgTime:      metrics.Summarize(snap.Times).Mean,
		Completion:   snap.Completion,
	}
	pt.WriteRPCs = pt.ChunkPutRPCs + pt.MetaPutRPCs
	return pt
}

// MultisnapshotTable renders an unbatched/batched comparison with the
// write-RPC reduction factor.
func MultisnapshotTable(points []MultisnapshotPoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Multisnapshot write path: provider write RPCs per commit round",
		Columns: []string{
			"instances", "providers", "batched", "chunk writes",
			"chunk-put RPCs", "meta-put RPCs", "write RPCs", "completion (s)",
		},
	}
	var base float64
	for _, pt := range points {
		batched := "off"
		if pt.Batched {
			batched = "on"
		}
		t.AddRow(
			itoa(pt.Instances),
			itoa(pt.Providers),
			batched,
			fmt.Sprintf("%.0f", pt.ChunkWrites),
			fmt.Sprintf("%.0f", pt.ChunkPutRPCs),
			fmt.Sprintf("%.0f", pt.MetaPutRPCs),
			fmt.Sprintf("%.0f", pt.WriteRPCs),
			ftoa(pt.Completion),
		)
		if !pt.Batched {
			base = pt.WriteRPCs
		} else if base > 0 && pt.WriteRPCs > 0 {
			t.AddRow("", "", "reduction", "", "", "", fmt.Sprintf("%.1fx", base/pt.WriteRPCs), "")
		}
	}
	return t
}
