package experiments

import (
	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/middleware"
	"blobvfs/internal/sim"
)

// Fig5Point is one sweep point of the multisnapshotting experiment.
type Fig5Point struct {
	Instances  int
	AvgTime    float64 // Fig. 5(a): mean per-instance snapshot time (s)
	Completion float64 // Fig. 5(b): time until all snapshots done (s)
}

// Fig5Result holds the multisnapshotting sweep. Prepropagation is
// excluded, exactly as in the paper ("it is infeasible to copy back
// ... the whole set of full VM images", §5.3).
type Fig5Result struct {
	Sweep  []int
	Series map[Approach][]Fig5Point
}

// RunFig5 executes the multisnapshotting experiment of §5.3: every
// instance carries ~15 MB of local modifications, and all snapshots
// are triggered at the same instant (CLONE broadcast followed by
// COMMIT for our approach; concurrent qcow2 file copies to PVFS for
// the baseline).
func RunFig5(p Params, sweep []int) *Fig5Result {
	res := &Fig5Result{Sweep: sweep, Series: make(map[Approach][]Fig5Point)}
	for _, a := range []Approach{QcowOverPVFS, OurApproach} {
		for _, n := range sweep {
			res.Series[a] = append(res.Series[a], runFig5Point(p, n, a))
		}
	}
	return res
}

func runFig5Point(p Params, n int, a Approach) Fig5Point {
	env := NewEnv(p, n, a)
	var snap *middleware.SnapshotResult
	env.Run(func(ctx *cluster.Ctx) {
		// Provision all instances and apply the local modifications;
		// this phase is not part of the measured snapshot time.
		instances := make([]*middleware.Instance, n)
		errs := make([]error, n)
		var tasks []cluster.Task
		wrRNG := sim.NewRNG(p.Seed + 7)
		for i := 0; i < n; i++ {
			i := i
			rng := wrRNG.Fork()
			node := env.Nodes[i]
			tasks = append(tasks, ctx.Go("prep", node, func(cc *cluster.Ctx) {
				disk, err := env.Backend.Provision(cc, i, node)
				if err != nil {
					errs[i] = err
					return
				}
				errs[i] = SnapshotWrites(cc, disk, p.SnapshotDiff, int64(p.ChunkSize), rng)
				instances[i] = &middleware.Instance{Index: i, Node: node, Disk: disk}
			}))
		}
		ctx.WaitAll(tasks)
		for _, err := range errs {
			if err != nil {
				panic(err)
			}
		}
		var err error
		snap, err = env.Orch.SnapshotAll(ctx, instances)
		if err != nil {
			panic(err)
		}
	})
	return Fig5Point{
		Instances:  n,
		AvgTime:    metrics.Summarize(snap.Times).Mean,
		Completion: snap.Completion,
	}
}

// Tables renders the two panels of Fig. 5.
func (r *Fig5Result) Tables() []*metrics.Table {
	mk := func(title string, f func(pt Fig5Point) float64) *metrics.Table {
		var series []*metrics.Series
		for _, a := range []Approach{QcowOverPVFS, OurApproach} {
			s := &metrics.Series{Name: a.String()}
			for _, pt := range r.Series[a] {
				s.Add(float64(pt.Instances), f(pt))
			}
			series = append(series, s)
		}
		return metrics.FromSeries(title, "instances", "%.3f", series...)
	}
	return []*metrics.Table{
		mk("Fig 5(a): average time to snapshot an instance (s)", func(pt Fig5Point) float64 { return pt.AvgTime }),
		mk("Fig 5(b): completion time to snapshot all instances (s)", func(pt Fig5Point) float64 { return pt.Completion }),
	}
}
