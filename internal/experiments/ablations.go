package experiments

import (
	"fmt"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/middleware"
)

// This file implements the ablations for the design choices the paper
// argues qualitatively in §3.1.3 but does not plot:
//
//   - chunk size: "a chunk that is too large may lead to false
//     sharing ... a chunk that is too small implies a higher access
//     overhead" — the 256 KB choice "optimizes the trade-off";
//   - replication: "a high degree of replication raises availability
//     ... at the expense of higher storage space requirements".

// ChunkSizePoint is one chunk-size ablation measurement.
type ChunkSizePoint struct {
	ChunkSize  int
	AvgBoot    float64
	Completion float64
	TrafficGB  float64
}

// RunChunkSizeAblation deploys n instances under our approach for each
// chunk size and reports the boot metrics. Expect a U-shape in boot
// time: small chunks pay per-request overhead, large chunks transfer
// unused data and serialize concurrent readers (false sharing).
func RunChunkSizeAblation(p Params, n int, sizes []int) []ChunkSizePoint {
	out := make([]ChunkSizePoint, 0, len(sizes))
	for _, cs := range sizes {
		pc := p
		pc.ChunkSize = cs
		pt := runFig4Point(pc, n, OurApproach)
		out = append(out, ChunkSizePoint{
			ChunkSize:  cs,
			AvgBoot:    pt.AvgBoot,
			Completion: pt.Completion,
			TrafficGB:  pt.TrafficGB,
		})
	}
	return out
}

// ChunkSizeTable renders the ablation.
func ChunkSizeTable(points []ChunkSizePoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Ablation: chunk size trade-off (§3.1.3), our approach",
		Columns: []string{"chunk size (KB)", "avg boot (s)", "completion (s)", "traffic (GB)"},
	}
	for _, pt := range points {
		t.AddRow(
			itoa(pt.ChunkSize>>10),
			ftoa(pt.AvgBoot),
			ftoa(pt.Completion),
			fmt.Sprintf("%.3f", pt.TrafficGB),
		)
	}
	return t
}

// ReplicationPoint is one replication-degree ablation measurement.
type ReplicationPoint struct {
	Replicas    int
	Completion  float64
	StorageGB   float64 // raw provider storage including replicas
	SurvivesOne bool    // all content readable after one provider loss
}

// RunReplicationAblation deploys n instances at each replication
// degree and probes fault tolerance by killing one provider after the
// deployment: with r = 1 some chunks become unreadable; with r ≥ 2
// everything survives, at r× the storage cost.
func RunReplicationAblation(p Params, n int, degrees []int) []ReplicationPoint {
	out := make([]ReplicationPoint, 0, len(degrees))
	for _, r := range degrees {
		pr := p
		pr.Replicas = r
		env := NewEnv(pr, n, OurApproach)
		mb := env.Backend.(*middleware.MirrorBackend)
		var point ReplicationPoint
		point.Replicas = r
		env.Run(func(ctx *cluster.Ctx) {
			dep, err := env.Orch.Deploy(ctx)
			if err != nil {
				panic(err)
			}
			point.Completion = dep.Completion
		})
		point.StorageGB = float64(mb.Repo.System().Providers.StoredBytes()) * float64(r) / 1e9
		// Fault injection: kill provider 0, then try to read a window of
		// the image from a fresh client on another node. With a single
		// replica, chunks homed on the dead provider are lost.
		mb.Repo.System().Providers.Kill(env.Nodes[0])
		point.SurvivesOne = true
		env.Run(func(ctx *cluster.Ctx) {
			done := ctx.Go("probe", env.Nodes[1%len(env.Nodes)], func(cc *cluster.Ctx) {
				c := blob.NewClient(mb.Repo.System())
				if _, err := c.FetchChunks(cc, mb.Base.Image, mb.Base.Version, 0, minI64(256, imageChunks(pr))); err != nil {
					point.SurvivesOne = false
				}
			})
			ctx.Wait(done)
		})
		out = append(out, point)
	}
	return out
}

// ReplicationTable renders the ablation.
func ReplicationTable(points []ReplicationPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Ablation: replication degree (§3.1.3), our approach",
		Columns: []string{"replicas", "deploy completion (s)", "raw storage (GB)", "survives provider loss"},
	}
	for _, pt := range points {
		surv := "no"
		if pt.SurvivesOne {
			surv = "yes"
		}
		t.AddRow(itoa(pt.Replicas), ftoa(pt.Completion), fmt.Sprintf("%.3f", pt.StorageGB), surv)
	}
	return t
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func imageChunks(p Params) int64 {
	return (p.ImageSize + int64(p.ChunkSize) - 1) / int64(p.ChunkSize)
}
