package experiments

import (
	"testing"

	"blobvfs"
	"blobvfs/internal/cluster"
	"blobvfs/internal/middleware"
	"blobvfs/internal/p2p"
	"blobvfs/internal/sim"
)

// herdCommit provisions n instances over a dedicated provider pool,
// dirties each with one round of §5.3 writes, and commits them all
// concurrently (first snapshot, so CLONE+COMMIT). It returns the pool
// for counter inspection.
func herdCommit(t *testing.T, p Params, instances, providers int, batched bool) *smallPool {
	t.Helper()
	var extra []blobvfs.Option
	if batched {
		extra = append(extra, blobvfs.WithBatchedCommit())
	}
	sp := newSmallPool(p, instances, providers, false, p2p.Config{}, cluster.Topology{}, extra...)
	sp.Orch.Pipeline = batched
	sp.Fab.Run(func(ctx *cluster.Ctx) {
		insts := make([]*middleware.Instance, instances)
		errs := make([]error, instances)
		var tasks []cluster.Task
		wrRNG := sim.NewRNG(p.Seed + 7)
		for i := 0; i < instances; i++ {
			i := i
			rng := wrRNG.Fork()
			node := sp.InstNodes[i]
			tasks = append(tasks, ctx.Go("prep", node, func(cc *cluster.Ctx) {
				disk, err := sp.Backend.Provision(cc, i, node)
				if err != nil {
					errs[i] = err
					return
				}
				errs[i] = SnapshotWrites(cc, disk, p.SnapshotDiff, int64(p.ChunkSize), rng)
				insts[i] = &middleware.Instance{Index: i, Node: node, Disk: disk}
			}))
		}
		ctx.WaitAll(tasks)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sp.Orch.SnapshotAll(ctx, insts); err != nil {
			t.Fatal(err)
		}
	})
	return sp
}

// TestHerdCommitPerProviderRPCs pins the write-side RPC accounting of a
// 64-instance concurrent commit round against a 4-node provider pool.
// Batched: every instance pays exactly one chunk-put RPC per provider
// it stores on — with a diff spanning the whole ring, that is one RPC
// per provider per instance, evenly spread. Unbatched: one RPC per
// chunk write. Metadata puts are already batched (one per provider per
// PutBatch) and must be identical in both arms.
func TestHerdCommitPerProviderRPCs(t *testing.T) {
	p := Quick()
	const instances, providers = 64, 4

	plain := herdCommit(t, p, instances, providers, false)
	batched := herdCommit(t, p, instances, providers, true)

	// Unbatched: exactly one provider RPC per logical chunk write.
	plainWrites := plain.Sys.Providers.Writes.Load()
	plainPuts := plain.Sys.Providers.PutRPCs.Load()
	if plainPuts != plainWrites {
		t.Fatalf("unbatched: %d put RPCs for %d chunk writes, want equal", plainPuts, plainWrites)
	}

	// Both arms commit the identical content: same chunk writes, same
	// metadata put RPCs (the metadata path was already batched).
	if bw := batched.Sys.Providers.Writes.Load(); bw != plainWrites {
		t.Fatalf("batched committed %d chunk writes, unbatched %d", bw, plainWrites)
	}
	if bm, pm := batched.Sys.Meta.Puts.Load(), plain.Sys.Meta.Puts.Load(); bm != pm {
		t.Fatalf("meta-put RPCs diverged: batched %d, unbatched %d", bm, pm)
	}

	// Batched: one chunk-put RPC per provider per commit (the base
	// upload, before any instance, is also one batch → one RPC per
	// provider). Each instance's diff spans every ring member, so the
	// per-provider counts are exactly commits+1 each.
	per := batched.Sys.Providers.NodePutRPCs()
	if len(per) != providers {
		t.Fatalf("batched puts landed on %d providers, want %d", len(per), providers)
	}
	var total int64
	for node, n := range per {
		if n != instances+1 {
			t.Fatalf("provider %d served %d put RPCs, want %d (one per commit plus the base upload)", node, n, instances+1)
		}
		total += n
	}
	if got := batched.Sys.Providers.PutRPCs.Load(); got != total {
		t.Fatalf("PutRPCs total %d != per-provider sum %d", got, total)
	}

	// The headline: the batched arm's chunk-put RPCs collapse from one
	// per chunk to one per provider per commit.
	if batchedPuts := batched.Sys.Providers.PutRPCs.Load(); batchedPuts*2 >= plainPuts {
		t.Fatalf("batching saved too little: %d vs %d put RPCs", batchedPuts, plainPuts)
	}
}

// TestMultisnapshotBatchedArmsAgree runs the scenario end to end and
// checks the two arms publish identical logical content (same chunk
// writes per round) while the batched arm cuts write RPCs.
func TestMultisnapshotBatchedArmsAgree(t *testing.T) {
	p := Quick()
	cfg := MultisnapshotConfig{Instances: 16, Providers: 4, Rounds: 2}
	plain := RunMultisnapshot(p, cfg)
	cfg.Batched = true
	batched := RunMultisnapshot(p, cfg)

	if plain.ChunkWrites != batched.ChunkWrites {
		t.Fatalf("chunk writes diverged: unbatched %.0f, batched %.0f", plain.ChunkWrites, batched.ChunkWrites)
	}
	if plain.MetaPutRPCs != batched.MetaPutRPCs {
		t.Fatalf("meta-put RPCs diverged: unbatched %.0f, batched %.0f", plain.MetaPutRPCs, batched.MetaPutRPCs)
	}
	if plain.ChunkPutRPCs != plain.ChunkWrites {
		t.Fatalf("unbatched chunk-put RPCs %.0f != chunk writes %.0f", plain.ChunkPutRPCs, plain.ChunkWrites)
	}
	if batched.WriteRPCs >= plain.WriteRPCs {
		t.Fatalf("batched write RPCs %.0f not below unbatched %.0f", batched.WriteRPCs, plain.WriteRPCs)
	}
}
