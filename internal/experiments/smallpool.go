package experiments

import (
	"blobvfs"
	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/middleware"
	"blobvfs/internal/p2p"
	"blobvfs/internal/sim"
	"blobvfs/internal/vmmodel"
)

// smallPool is the shared scaffolding of the dedicated-provider-pool
// scenarios (flash crowd, churn): `instances` compute nodes each
// hosting one VM, a small `providers` storage pool (unlike the Fig. 4
// setup, where storage aggregates every compute node's disk), and one
// service node running the version manager and — with sharing — the
// p2p tracker. The base image is uploaded during construction and the
// traffic counter reset, so measurements exclude setup, as in the
// other experiments.
type smallPool struct {
	Fab       *cluster.Sim
	InstNodes []cluster.NodeID
	Service   cluster.NodeID
	Repo      *blobvfs.Repo
	Base      blobvfs.Snapshot
	Sys       *blob.System
	Backend   *middleware.MirrorBackend
	Orch      *middleware.Orchestrator
}

// newSmallPool builds the scenario. p2pCfg is only consulted when
// sharing is true; a non-zero topo arranges the fabric's nodes into
// tiers AND makes the repo topology-aware (the two sides always move
// together here — the cross-zone scenario, which needs them split,
// has its own scaffolding); extra options (replication overrides,
// fault plans) are applied after the base ones, so they win.
func newSmallPool(p Params, instances, providers int, sharing bool, p2pCfg p2p.Config, topo cluster.Topology, extra ...blobvfs.Option) *smallPool {
	cfg := cluster.DefaultConfig(instances + providers + 1)
	if p.WriteBuffer > 0 {
		cfg.WriteBuffer = p.WriteBuffer
	}
	cfg.Topology = topo
	sp := &smallPool{Fab: cluster.NewSim(cfg)}
	var provNodes []cluster.NodeID
	for i := 0; i < instances; i++ {
		sp.InstNodes = append(sp.InstNodes, cluster.NodeID(i))
	}
	for i := 0; i < providers; i++ {
		provNodes = append(provNodes, cluster.NodeID(instances+i))
	}
	sp.Service = cluster.NodeID(instances + providers)

	opts := []blobvfs.Option{
		blobvfs.WithProviders(provNodes...),
		blobvfs.WithManager(sp.Service),
		blobvfs.WithReplicas(p.Replicas),
		blobvfs.WithChunkSize(p.ChunkSize),
	}
	if sharing {
		opts = append(opts, blobvfs.WithP2P(p2pCfg))
	}
	if topo.Enabled() {
		opts = append(opts, blobvfs.WithTopology(topo))
	}
	opts = append(opts, extra...)
	repo, err := blobvfs.Open(sp.Fab, opts...)
	if err != nil {
		panic(err)
	}
	sp.Repo = repo
	sp.Sys = repo.System()
	sp.Fab.Run(func(ctx *cluster.Ctx) {
		base, err := repo.CreateSynthetic(ctx, "base", p.ImageSize)
		if err != nil {
			panic(err)
		}
		sp.Base = base
		sp.Backend = middleware.NewMirrorBackend(repo, base)
	})
	sp.Fab.ResetTraffic()

	baseOps := p.baseTrace()
	traceRNG := sim.NewRNG(p.Seed + 1)
	jitRNG := sim.NewRNG(p.Seed + 2)
	sp.Orch = &middleware.Orchestrator{
		Backend: sp.Backend,
		Nodes:   sp.InstNodes,
		TraceFor: func(i int) []vmmodel.TraceOp {
			return vmmodel.WithThinkJitter(baseOps, traceRNG.Fork(), p.Boot.TotalThink)
		},
		StartJitter: func(i int) float64 {
			return jitRNG.Uniform(p.JitterMin, p.JitterMax)
		},
	}
	return sp
}
