package experiments

import (
	"blobvfs/internal/localio"
	"blobvfs/internal/metrics"
	"blobvfs/internal/workloads"
)

// Fig67Result holds the Bonnie++ comparison of §5.4 for both local
// I/O paths.
type Fig67Result struct {
	Local, Ours workloads.BonnieResult
}

// RunFig67 executes the Bonnie++ benchmark of §5.4 against the
// hypervisor-direct path and the FUSE+mmap mirror path. Since the
// workload writes its data before reading it back, no remote accesses
// are involved and a single instance characterizes all (§5.4).
func RunFig67(cfg workloads.BonnieConfig) *Fig67Result {
	return &Fig67Result{
		Local: workloads.RunBonnie(localio.DirectPath(), cfg),
		Ours:  workloads.RunBonnie(localio.MirrorPath(), cfg),
	}
}

// Tables renders Fig. 6 (throughput) and Fig. 7 (operations/s).
func (r *Fig67Result) Tables() []*metrics.Table {
	fig6 := &metrics.Table{
		Title:   "Fig 6: Bonnie++ sustained throughput (KB/s), 8K blocks",
		Columns: []string{"access pattern", "local", "our-approach"},
	}
	fig6.AddRow("BlockW", i64(r.Local.BlockWriteKBps), i64(r.Ours.BlockWriteKBps))
	fig6.AddRow("BlockR", i64(r.Local.BlockReadKBps), i64(r.Ours.BlockReadKBps))
	fig6.AddRow("BlockO", i64(r.Local.BlockRewrKBps), i64(r.Ours.BlockRewrKBps))

	fig7 := &metrics.Table{
		Title:   "Fig 7: Bonnie++ operations per second",
		Columns: []string{"operation type", "local", "our-approach"},
	}
	fig7.AddRow("RndSeek", i64(r.Local.SeeksPerSec), i64(r.Ours.SeeksPerSec))
	fig7.AddRow("CreatF", i64(r.Local.CreatesPerSec), i64(r.Ours.CreatesPerSec))
	fig7.AddRow("DelF", i64(r.Local.DeletesPerSec), i64(r.Ours.DeletesPerSec))
	return []*metrics.Table{fig6, fig7}
}

func i64(v int64) string { return itoa(int(v)) }
