package experiments

import (
	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/middleware"
)

// Fig4Point is one sweep point of the multideployment experiment for
// one approach.
type Fig4Point struct {
	Instances  int
	AvgBoot    float64 // Fig. 4(a): mean per-instance boot time (s)
	Completion float64 // Fig. 4(b): time to boot all instances (s)
	TrafficGB  float64 // Fig. 4(d): total network traffic (GB)
}

// Fig4Result holds the full multideployment sweep.
type Fig4Result struct {
	Sweep  []int
	Series map[Approach][]Fig4Point
}

// RunFig4 executes the multideployment experiment of §5.2 over the
// sweep for all three approaches.
func RunFig4(p Params, sweep []int) *Fig4Result {
	res := &Fig4Result{Sweep: sweep, Series: make(map[Approach][]Fig4Point)}
	for _, a := range []Approach{TaktukPreprop, QcowOverPVFS, OurApproach} {
		for _, n := range sweep {
			res.Series[a] = append(res.Series[a], runFig4Point(p, n, a))
		}
	}
	return res
}

func runFig4Point(p Params, n int, a Approach) Fig4Point {
	env := NewEnv(p, n, a)
	var dep *middleware.DeployResult
	env.Run(func(ctx *cluster.Ctx) {
		var err error
		dep, err = env.Orch.Deploy(ctx)
		if err != nil {
			panic(err)
		}
	})
	return Fig4Point{
		Instances:  n,
		AvgBoot:    metrics.Summarize(dep.BootTimes()).Mean,
		Completion: dep.Completion,
		TrafficGB:  float64(env.Fab.NetTraffic()) / 1e9,
	}
}

// Tables renders the paper's four panels from the sweep.
func (r *Fig4Result) Tables() []*metrics.Table {
	mk := func(title string, f func(pt Fig4Point) float64, format string) *metrics.Table {
		var series []*metrics.Series
		for _, a := range []Approach{TaktukPreprop, QcowOverPVFS, OurApproach} {
			s := &metrics.Series{Name: a.String()}
			for _, pt := range r.Series[a] {
				s.Add(float64(pt.Instances), f(pt))
			}
			series = append(series, s)
		}
		return metrics.FromSeries(title, "instances", format, series...)
	}
	avg := mk("Fig 4(a): average time to boot per instance (s)",
		func(pt Fig4Point) float64 { return pt.AvgBoot }, "%.2f")
	total := mk("Fig 4(b): completion time to boot all instances (s)",
		func(pt Fig4Point) float64 { return pt.Completion }, "%.2f")
	traffic := mk("Fig 4(d): total network traffic (GB)",
		func(pt Fig4Point) float64 { return pt.TrafficGB }, "%.2f")

	// Fig. 4(c): speedup of our approach's completion time.
	speedup := &metrics.Table{
		Title:   "Fig 4(c): speedup of completion time for our approach",
		Columns: []string{"instances", "speedup vs. taktuk", "speedup vs. qcow2 over PVFS"},
	}
	for i := range r.Sweep {
		ours := r.Series[OurApproach][i].Completion
		vsT := r.Series[TaktukPreprop][i].Completion / ours
		vsQ := r.Series[QcowOverPVFS][i].Completion / ours
		speedup.AddRow(
			itoa(r.Sweep[i]),
			ftoa(vsT),
			ftoa(vsQ),
		)
	}
	return []*metrics.Table{avg, total, speedup, traffic}
}
