package experiments

import (
	"fmt"

	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/middleware"
	"blobvfs/internal/p2p"
	"blobvfs/internal/sim"
)

// This file implements the churn scenario: the long-running cloud of
// the paper's "going back and forth" workflow (§3.2), where every
// instance snapshots again and again. Without a lifecycle, each cycle
// adds the diff's chunks and metadata forever — storage grows without
// bound. With keep-last-K retention plus the snapshot garbage
// collector (internal/blob/gc.go), old versions are retired after each
// round and the chunks only they referenced are reclaimed, so the
// provider pool's footprint plateaus no matter how long the cloud
// runs. The scenario exists to demonstrate exactly that bound.

// ChurnConfig parameterizes one churn run.
type ChurnConfig struct {
	// Instances is the deployment fan-out.
	Instances int
	// Cycles is how many write→snapshot→retire→collect rounds run.
	Cycles int
	// KeepLast is the retention window per instance (≥1). 0 disables
	// retention and GC, showing the unbounded baseline.
	KeepLast int
	// Providers is the dedicated provider pool size (default 8).
	Providers int
	// Sharing toggles the p2p chunk-sharing layer; reclaimed chunks are
	// then also retracted from the cohort's location maps.
	Sharing bool
	// DiffBytes is the per-instance local modification size per cycle
	// (default Params.SnapshotDiff).
	DiffBytes int64
	// HotBytes confines each cycle's writes to the first HotBytes of
	// the image (default 4×DiffBytes): a VM's churn concentrates on a
	// working set — logs, spool, configuration — that is rewritten
	// cycle after cycle, which is exactly what makes old snapshots'
	// chunks unreachable and reclaimable. 0 < HotBytes ≤ image size.
	HotBytes int64
}

// ChurnCycle samples the storage footprint after one cycle's
// snapshot + retention + collection.
type ChurnCycle struct {
	Cycle     int
	Chunks    int     // chunk payloads stored after the cycle
	StoredMB  float64 // payload MB stored (one copy per chunk)
	MetaNodes int     // segment-tree nodes stored
	Reclaimed int64   // cumulative chunk payloads reclaimed so far
	Retired   int     // versions retired this cycle
}

// ChurnPoint reports one churn run.
type ChurnPoint struct {
	Instances int
	Cycles    int
	KeepLast  int
	Sharing   bool

	PeakChunks      int   // highest post-cycle chunk count
	FinalChunks     int   // chunk count after the last cycle
	ReclaimedChunks int64 // chunk payloads physically freed in total
	ReclaimedBytes  int64
	FreedNodes      int64   // tree nodes swept in total
	RetiredVersions int     // versions retired in total
	Completion      float64 // virtual time of the whole churn (s)

	PerCycle []ChurnCycle
}

// RunChurn deploys cc.Instances instances against a dedicated
// cc.Providers-node pool, then runs cc.Cycles rounds of local
// modifications + concurrent snapshots under the keep-last-K retention
// policy, collecting garbage after every round. The image upload is
// excluded from the measurements, as in the other experiments.
func RunChurn(p Params, cc ChurnConfig) ChurnPoint {
	if cc.Instances < 1 {
		panic("experiments: churn needs at least one instance")
	}
	if cc.Cycles < 1 {
		panic("experiments: churn needs at least one cycle")
	}
	if cc.Providers <= 0 {
		cc.Providers = 8
	}
	if cc.DiffBytes <= 0 {
		cc.DiffBytes = p.SnapshotDiff
	}
	if cc.HotBytes <= 0 {
		cc.HotBytes = 4 * cc.DiffBytes
	}
	if cc.HotBytes > p.ImageSize {
		cc.HotBytes = p.ImageSize
	}

	sp := newSmallPool(p, cc.Instances, cc.Providers, cc.Sharing, p2p.DefaultConfig(), cluster.Topology{})
	sys := sp.Sys
	if cc.KeepLast > 0 {
		sp.Orch.Retention = middleware.RetentionPolicy{KeepLast: cc.KeepLast}
		// The repo's collector retracts reclaimed chunks from the
		// sharing cohorts when p2p is on.
		sp.Orch.Collector = sp.Repo.Collector()
	}

	pt := ChurnPoint{
		Instances: cc.Instances,
		Cycles:    cc.Cycles,
		KeepLast:  cc.KeepLast,
		Sharing:   cc.Sharing,
	}
	sample := func(cycle, retired int) {
		s := ChurnCycle{
			Cycle:     cycle,
			Chunks:    sys.Providers.ChunkCount(),
			StoredMB:  float64(sys.Providers.StoredBytes()) / (1 << 20),
			MetaNodes: sys.Meta.NodeCount(),
			Reclaimed: sys.Providers.Reclaimed.Load(),
			Retired:   retired,
		}
		pt.PerCycle = append(pt.PerCycle, s)
		if s.Chunks > pt.PeakChunks {
			pt.PeakChunks = s.Chunks
		}
	}

	wrRNG := sim.NewRNG(p.Seed + 7)
	sp.Fab.Run(func(ctx *cluster.Ctx) {
		dep, err := sp.Orch.Deploy(ctx)
		if err != nil {
			panic(err)
		}
		sample(0, 0)
		for cycle := 1; cycle <= cc.Cycles; cycle++ {
			err := sp.Orch.RunOnAll(ctx, dep.Instances, func(icc *cluster.Ctx, inst *middleware.Instance) error {
				return SnapshotWritesIn(icc, inst.Disk, cc.DiffBytes, int64(p.ChunkSize), cc.HotBytes, wrRNG.Fork())
			})
			if err != nil {
				panic(err)
			}
			snap, err := sp.Orch.SnapshotAll(ctx, dep.Instances)
			if err != nil {
				panic(err)
			}
			pt.RetiredVersions += snap.Retired
			sample(cycle, snap.Retired)
		}
		pt.Completion = ctx.Now()
	})

	pt.FinalChunks = sys.Providers.ChunkCount()
	pt.ReclaimedChunks = sys.Providers.Reclaimed.Load()
	pt.ReclaimedBytes = sys.Providers.ReclaimedBytes.Load()
	pt.FreedNodes = sys.Meta.Freed.Load()
	return pt
}

// ChurnTable renders a churn run as a per-cycle footprint trace.
func ChurnTable(pt ChurnPoint) *metrics.Table {
	title := fmt.Sprintf(
		"Churn: %d instances × %d snapshot cycles, keep-last-%d retention (p2p sharing %s)",
		pt.Instances, pt.Cycles, pt.KeepLast, onOff(pt.Sharing))
	if pt.KeepLast == 0 {
		title = fmt.Sprintf(
			"Churn: %d instances × %d snapshot cycles, no retention (unbounded baseline)",
			pt.Instances, pt.Cycles)
	}
	t := &metrics.Table{
		Title: title,
		Columns: []string{
			"cycle", "live chunks", "stored (MB)", "meta nodes",
			"reclaimed chunks (cum)", "retired versions",
		},
	}
	for _, s := range pt.PerCycle {
		t.AddRow(
			itoa(s.Cycle),
			itoa(s.Chunks),
			ftoa(s.StoredMB),
			itoa(s.MetaNodes),
			fmt.Sprintf("%d", s.Reclaimed),
			itoa(s.Retired),
		)
	}
	return t
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
