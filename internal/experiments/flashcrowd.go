package experiments

import (
	"fmt"

	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/middleware"
	"blobvfs/internal/p2p"
)

// This file implements the flash-crowd scenario §7 of the paper points
// at: a very large number of instances of the same image deployed
// concurrently against a storage pool much smaller than the
// deployment. Unlike the Fig. 4 setup — where the storage service
// aggregates every compute node's disk, so provider capacity grows
// with the sweep — the flash crowd keeps a small dedicated provider
// pool (the "registry", as in oc-mirror's mirror-to-disk flow), so
// every demand fetch of a hot boot chunk lands on the same few nodes
// and the per-provider load scales linearly with the crowd. The
// peer-to-peer sharing layer (internal/p2p) is the pressure relief:
// with it enabled, provider reads per chunk drop to the first few
// fetches that seed the cohort.

// FlashCrowdConfig parameterizes one flash-crowd run.
type FlashCrowdConfig struct {
	// Instances is the deployment fan-out (the crowd size).
	Instances int
	// Providers is the dedicated provider pool size (default 8).
	Providers int
	// Sharing toggles the p2p chunk-sharing layer.
	Sharing bool
	// P2P carries the sharing protocol constants (zero value →
	// p2p.DefaultConfig).
	P2P p2p.Config
	// Topology optionally arranges the cluster into zones and racks
	// (fabric tier links + topology-aware placement and peer
	// selection). The zero value keeps the historical flat cluster; a
	// single-zone, single-rack topology reproduces it byte-identically.
	Topology cluster.Topology
}

// FlashCrowdPoint reports one flash-crowd run.
type FlashCrowdPoint struct {
	Instances int
	Providers int
	Sharing   bool

	AvgBoot    float64 // mean per-instance boot time (s)
	Completion float64 // deploy start → last instance booted (s)
	TrafficGB  float64 // total network traffic (GB)

	Booted int   // instances that completed their boot (must be all)
	Steps  int64 // simulator events executed by the deployment

	ProviderReads    int64 // chunk reads served by the provider pool
	MaxProviderReads int64 // ... by its hottest member (the hot-spot)
	PeerReads        int64 // chunk reads served by cohort peers
	MetaGets         int64 // metadata service operations (after batching)
	MetaNodes        int64 // tree nodes served (MetaNodes/MetaGets = batching factor)
	P2P              p2p.Stats
}

// RunFlashCrowd deploys fc.Instances concurrent instances of the same
// image over a cluster with a dedicated fc.Providers-node storage pool
// and one service node (version manager + p2p tracker), and reports
// where the chunk traffic landed. The image upload is excluded from
// the measurements, as in the other experiments.
func RunFlashCrowd(p Params, fc FlashCrowdConfig) FlashCrowdPoint {
	if fc.Instances < 1 {
		panic("experiments: flash crowd needs at least one instance")
	}
	if fc.Providers <= 0 {
		fc.Providers = 8
	}
	if fc.P2P == (p2p.Config{}) {
		fc.P2P = p2p.DefaultConfig()
	}

	sp := newSmallPool(p, fc.Instances, fc.Providers, fc.Sharing, fc.P2P, fc.Topology)
	gets0, nodes0 := sp.Sys.Meta.Gets.Load(), sp.Sys.Meta.NodesServed.Load()
	steps0 := sp.Fab.Env().Steps()

	var dep *middleware.DeployResult
	sp.Fab.Run(func(ctx *cluster.Ctx) {
		var err error
		dep, err = sp.Orch.Deploy(ctx)
		if err != nil {
			panic(err)
		}
	})

	pt := FlashCrowdPoint{
		Instances:  fc.Instances,
		Providers:  fc.Providers,
		Sharing:    fc.Sharing,
		AvgBoot:    metrics.Summarize(dep.BootTimes()).Mean,
		Completion: dep.Completion,
		TrafficGB:  float64(sp.Fab.NetTraffic()) / 1e9,
	}
	pt.Steps = sp.Fab.Env().Steps() - steps0
	for _, inst := range dep.Instances {
		if inst != nil && inst.BootDoneAt > 0 {
			pt.Booted++
		}
	}
	pt.ProviderReads = sp.Sys.Providers.Reads.Load()
	pt.MaxProviderReads = sp.Sys.Providers.MaxNodeReads()
	pt.MetaGets = sp.Sys.Meta.Gets.Load() - gets0
	pt.MetaNodes = sp.Sys.Meta.NodesServed.Load() - nodes0
	if st, ok := sp.Repo.SharingStats(sp.Base.Image); ok {
		pt.P2P = st
		pt.PeerReads = st.PeerHits
	}
	return pt
}

// FlashCrowdTable renders a sharing-off/sharing-on comparison.
func FlashCrowdTable(points []FlashCrowdPoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Flash crowd: concurrent multideployment against a small provider pool",
		Columns: []string{
			"instances", "providers", "p2p sharing", "completion (s)",
			"provider reads", "hottest provider", "peer reads",
		},
	}
	for _, pt := range points {
		sharing := "off"
		if pt.Sharing {
			sharing = "on"
		}
		t.AddRow(
			itoa(pt.Instances),
			itoa(pt.Providers),
			sharing,
			ftoa(pt.Completion),
			fmt.Sprintf("%d", pt.ProviderReads),
			fmt.Sprintf("%d", pt.MaxProviderReads),
			fmt.Sprintf("%d", pt.PeerReads),
		)
	}
	return t
}
