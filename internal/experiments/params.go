package experiments

import (
	"blobvfs/internal/broadcast"
	"blobvfs/internal/sim"
	"blobvfs/internal/vmmodel"
	"blobvfs/internal/workloads"
)

// Params bundles every calibrated constant of the evaluation. All
// values come from §5.1 of the paper unless flagged as calibrated in
// DESIGN.md §6.
type Params struct {
	// MaxInstances is the largest sweep point (one VM per node).
	MaxInstances int
	// ImageSize is the initial VM image size (2 GB, §5.1).
	ImageSize int64
	// ChunkSize is the stripe/chunk unit for both the blob store and
	// PVFS (256 KB, §5.2).
	ChunkSize int
	// Replicas is the chunk replication degree (1: "chunks were not
	// replicated" for fairness, §5.2).
	Replicas int
	// Seed drives every random stream of the experiment.
	Seed int64
	// Boot is the boot-phase model.
	Boot vmmodel.BootConfig
	// SnapshotDiff is the per-instance local modification size for the
	// multisnapshotting experiment (15 MB, §5.3).
	SnapshotDiff int64
	// BcastRate is taktuk's calibrated effective per-hop rate.
	BcastRate float64
	// WriteBuffer is the per-provider asynchronous write-back buffer.
	// BlobSeer acknowledges writes once buffered (§5.3); the bound is
	// what makes average snapshot time degrade gently as concurrent
	// write pressure grows.
	WriteBuffer int64
	// Jitter bounds instance launch staggering (hypervisor
	// initialization skew, §3.1.3).
	JitterMin, JitterMax float64
	// MonteCarlo is the application model of §5.5.
	MonteCarlo workloads.MonteCarloConfig
}

// Default returns the paper's experimental setup.
func Default() Params {
	const imageSize = 2 << 30
	return Params{
		MaxInstances: 110,
		ImageSize:    imageSize,
		ChunkSize:    256 << 10,
		Replicas:     1,
		Seed:         42,
		Boot:         vmmodel.DefaultBootConfig(imageSize),
		SnapshotDiff: 15 << 20,
		BcastRate:    broadcast.DefaultEffRate,
		WriteBuffer:  4 << 20,
		JitterMin:    0.1,
		JitterMax:    0.6,
		MonteCarlo:   workloads.DefaultMonteCarloConfig(),
	}
}

// Quick returns a scaled-down setup for fast tests: a 256 MB image and
// a proportionally smaller boot footprint. Shapes are preserved;
// absolute values are not comparable to the paper.
func Quick() Params {
	p := Default()
	p.ImageSize = 256 << 20
	p.Boot = vmmodel.BootConfig{
		ImageSize:    p.ImageSize,
		TouchedBytes: 16 << 20,
		Extents:      40,
		MeanOpLen:    64 << 10,
		WriteOps:     10,
		WriteLen:     8 << 10,
		TotalThink:   1.0,
	}
	p.SnapshotDiff = 4 << 20
	p.MonteCarlo.ComputeSeconds = 100
	p.MonteCarlo.SaveEvery = 25
	p.MonteCarlo.SaveBytes = 2 << 20
	p.MonteCarlo.SaveOffset = 128 << 20
	return p
}

// DefaultSweep returns the instance counts of the figures' x axes.
func DefaultSweep() []int { return []int{1, 10, 30, 50, 70, 90, 110} }

// baseTrace generates the shared boot access pattern for a parameter
// set (all instances boot the same OS image).
func (p Params) baseTrace() []vmmodel.TraceOp {
	return vmmodel.GenBootTrace(sim.NewRNG(p.Seed), p.Boot)
}
