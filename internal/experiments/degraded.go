package experiments

import (
	"fmt"

	"blobvfs"
	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/middleware"
	"blobvfs/internal/p2p"
	"blobvfs/internal/sim"
)

// This file implements the degraded-deployment scenario: the
// flash-crowd multideployment rerun against a repository that loses
// provider nodes mid-flight. The paper targets IaaS clouds whose
// repository nodes fail during deployment, yet every figure assumes a
// healthy cluster; this scenario makes "all instances still complete"
// a measured property. The fault plan kills K of the providers at
// staggered times (which providers is drawn from the experiment seed,
// so runs are bit-for-bit repeatable); each death triggers failover on
// reads, synchronous re-replication of the chunks the dead node held,
// and retraction of any sharing-cohort state. The p2p layer doubles as
// the last-resort source for chunks whose every provider copy is gone.

// DegradedConfig parameterizes one degraded run.
type DegradedConfig struct {
	// Instances is the deployment fan-out (the crowd size).
	Instances int
	// Providers is the dedicated provider pool size (default 16).
	Providers int
	// Replicas is the chunk replication degree (default 2 — a pool
	// that loses nodes needs redundancy to lose no data).
	Replicas int
	// Kill is how many providers the fault plan kills (default
	// Providers/2). Which ones is drawn from the seed.
	Kill int
	// KillStart is the virtual time of the first kill in seconds
	// (default 2.0, well inside the boot phase).
	KillStart float64
	// KillEvery is the spacing between kills in seconds (default 1.0).
	// Kills are sequential so re-replication can restore the
	// replication degree between failures.
	KillEvery float64
	// Sharing toggles the p2p chunk-sharing layer. Degraded runs
	// normally keep it on: cohort peers are the only source for a
	// chunk whose every provider copy died.
	Sharing bool
	// P2P carries the sharing protocol constants (zero value →
	// p2p.DefaultConfig).
	P2P p2p.Config
}

// DegradedPoint reports one degraded run.
type DegradedPoint struct {
	Instances int
	Providers int
	Replicas  int
	Killed    int
	Sharing   bool

	Booted     int     // instances that completed their boot (must be all)
	AvgBoot    float64 // mean per-instance boot time (s)
	Completion float64 // deploy start → last instance booted (s)
	TrafficGB  float64 // total network traffic (GB)

	ProviderReads    int64 // chunk reads served by the provider pool
	MaxProviderReads int64 // ... by its hottest member
	PeerReads        int64 // chunk reads served by cohort peers
	Failovers        int64 // reads a dead primary pushed onto another copy
	Rereplicated     int64 // chunk copies re-created after a death
	FailedFetches    int64 // reads that found no live provider copy
	FetchRetries     int64 // mirror fetches re-attempted after a failure
	DeadDropped      int64 // cohort location records dropped for dead peers
}

// RunDegraded deploys dc.Instances concurrent instances of one image
// while the fault plan kills dc.Kill of the dc.Providers storage nodes
// mid-deployment, and reports whether (and at what cost) the
// deployment still completed. With dc.Kill = 0 the scenario degenerates
// to the healthy flash crowd — same costs, byte-identical outputs.
func RunDegraded(p Params, dc DegradedConfig) DegradedPoint {
	if dc.Instances < 1 {
		panic("experiments: degraded deployment needs at least one instance")
	}
	if dc.Providers <= 0 {
		dc.Providers = 16
	}
	if dc.Replicas <= 0 {
		dc.Replicas = 2
	}
	if dc.Kill < 0 || dc.Kill >= dc.Providers {
		panic(fmt.Sprintf("experiments: cannot kill %d of %d providers", dc.Kill, dc.Providers))
	}
	if dc.KillStart <= 0 {
		dc.KillStart = 2.0
	}
	if dc.KillEvery <= 0 {
		dc.KillEvery = 1.0
	}
	if dc.P2P == (p2p.Config{}) {
		dc.P2P = p2p.DefaultConfig()
	}

	// The victims are drawn from the experiment seed: a shuffled
	// provider order, first Kill entries lose. Provider node IDs start
	// after the instance nodes (see newSmallPool).
	var extra []blobvfs.Option
	if dc.Kill > 0 {
		victims := sim.NewRNG(p.Seed + 7).Perm(dc.Providers)[:dc.Kill]
		plan := make([]blobvfs.FaultEvent, len(victims))
		for i, v := range victims {
			node := blobvfs.NodeID(dc.Instances + v)
			plan[i] = blobvfs.KillAt(dc.KillStart+float64(i)*dc.KillEvery, node)
		}
		extra = append(extra, blobvfs.WithFaultPlan(plan...))
	}
	extra = append(extra, blobvfs.WithReplicas(dc.Replicas))

	sp := newSmallPool(p, dc.Instances, dc.Providers, dc.Sharing, dc.P2P, cluster.Topology{}, extra...)

	var dep *middleware.DeployResult
	sp.Fab.Run(func(ctx *cluster.Ctx) {
		if dc.Kill > 0 {
			if err := sp.Repo.ArmFaults(ctx); err != nil {
				panic(err)
			}
		}
		var err error
		dep, err = sp.Orch.Deploy(ctx)
		if err != nil {
			panic(fmt.Sprintf("experiments: degraded deployment failed: %v", err))
		}
	})

	pt := DegradedPoint{
		Instances:  dc.Instances,
		Providers:  dc.Providers,
		Replicas:   dc.Replicas,
		Killed:     dc.Kill,
		Sharing:    dc.Sharing,
		AvgBoot:    metrics.Summarize(dep.BootTimes()).Mean,
		Completion: dep.Completion,
		TrafficGB:  float64(sp.Fab.NetTraffic()) / 1e9,
	}
	for _, inst := range dep.Instances {
		if inst == nil {
			continue
		}
		if inst.BootDoneAt > 0 {
			pt.Booted++
		}
		if d, ok := inst.Disk.(*blobvfs.Disk); ok {
			pt.FetchRetries += d.Stats().FetchRetries
		}
	}
	pt.ProviderReads = sp.Sys.Providers.Reads.Load()
	pt.MaxProviderReads = sp.Sys.Providers.MaxNodeReads()
	pt.Failovers = sp.Sys.Providers.Failovers.Load()
	pt.Rereplicated = sp.Sys.Providers.Rereplicated.Load()
	pt.FailedFetches = sp.Sys.Providers.FailedReads.Load()
	if st, ok := sp.Repo.SharingStats(sp.Base.Image); ok {
		pt.PeerReads = st.PeerHits
		pt.DeadDropped = st.DeadDropped
	}
	return pt
}

// DegradedTable renders a healthy-vs-degraded comparison.
func DegradedTable(points []DegradedPoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Degraded deployment: flash crowd while providers fail mid-run",
		Columns: []string{
			"instances", "providers", "killed", "booted", "completion (s)",
			"failovers", "re-replicated", "failed fetches", "peer reads",
		},
	}
	for _, pt := range points {
		t.AddRow(
			itoa(pt.Instances),
			itoa(pt.Providers),
			itoa(pt.Killed),
			itoa(pt.Booted),
			ftoa(pt.Completion),
			fmt.Sprintf("%d", pt.Failovers),
			fmt.Sprintf("%d", pt.Rereplicated),
			fmt.Sprintf("%d", pt.FailedFetches),
			fmt.Sprintf("%d", pt.PeerReads),
		)
	}
	return t
}
