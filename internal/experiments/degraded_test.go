package experiments

import "testing"

// TestDegradedAllInstancesComplete: the headline property — killing
// half the provider pool mid-deployment must not lose a single
// instance, and the resilience machinery must actually have engaged.
func TestDegradedAllInstancesComplete(t *testing.T) {
	p := Quick()
	healthy := RunDegraded(p, DegradedConfig{Instances: 48, Sharing: true})
	hit := RunDegraded(p, DegradedConfig{Instances: 48, Sharing: true, Kill: 8})

	for _, pt := range []DegradedPoint{healthy, hit} {
		if pt.Booted != pt.Instances {
			t.Fatalf("killed=%d: %d of %d instances booted", pt.Killed, pt.Booted, pt.Instances)
		}
	}
	if healthy.Failovers != 0 || healthy.Rereplicated != 0 || healthy.FailedFetches != 0 {
		t.Fatalf("healthy run exercised the failure path: %+v", healthy)
	}
	if hit.Failovers == 0 {
		t.Error("degraded run recorded no failovers")
	}
	if hit.Rereplicated == 0 {
		t.Error("degraded run re-replicated nothing")
	}
	if hit.DeadDropped != 0 {
		t.Errorf("provider kills dropped %d cohort records (providers are not cohort members)", hit.DeadDropped)
	}
	// Failure costs time, but must not cost completeness.
	if hit.Completion <= healthy.Completion {
		t.Errorf("killing providers did not slow completion: %.2f vs %.2f",
			hit.Completion, healthy.Completion)
	}
}

// TestDegradedDeterministic: the scenario is bit-for-bit repeatable —
// same seed, same kills, same counters — fault injection included.
func TestDegradedDeterministic(t *testing.T) {
	p := Quick()
	dc := DegradedConfig{Instances: 16, Providers: 8, Kill: 3, Sharing: true}
	a := RunDegraded(p, dc)
	b := RunDegraded(p, dc)
	if a != b {
		t.Fatalf("degraded scenario not deterministic:\n  %+v\n  %+v", a, b)
	}
}

// TestDegradedNoFaultMatchesFlashCrowd: with no fault plan the
// degraded scenario IS the flash crowd — byte-identical timing,
// traffic and counters. This pins the zero-cost property of the fault
// subsystem: a healthy run pays nothing for the failover machinery.
func TestDegradedNoFaultMatchesFlashCrowd(t *testing.T) {
	p := Quick()
	deg := RunDegraded(p, DegradedConfig{
		Instances: 32, Providers: 8, Replicas: 1, Sharing: true,
	})
	fc := RunFlashCrowd(p, FlashCrowdConfig{
		Instances: 32, Providers: 8, Sharing: true,
	})
	if deg.Booted != deg.Instances {
		t.Fatalf("%d of %d instances booted", deg.Booted, deg.Instances)
	}
	if deg.Completion != fc.Completion || deg.AvgBoot != fc.AvgBoot || deg.TrafficGB != fc.TrafficGB {
		t.Errorf("timing diverged without faults: degraded %.6f/%.6f/%.6f vs flash %.6f/%.6f/%.6f",
			deg.Completion, deg.AvgBoot, deg.TrafficGB, fc.Completion, fc.AvgBoot, fc.TrafficGB)
	}
	if deg.ProviderReads != fc.ProviderReads || deg.PeerReads != fc.PeerReads ||
		deg.MaxProviderReads != fc.MaxProviderReads {
		t.Errorf("read counters diverged without faults: degraded %d/%d/%d vs flash %d/%d/%d",
			deg.ProviderReads, deg.MaxProviderReads, deg.PeerReads,
			fc.ProviderReads, fc.MaxProviderReads, fc.PeerReads)
	}
	if deg.Failovers != 0 || deg.Rereplicated != 0 || deg.FailedFetches != 0 || deg.FetchRetries != 0 {
		t.Errorf("no-fault run touched the failure path: %+v", deg)
	}
}
