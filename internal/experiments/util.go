package experiments

import "strconv"

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
