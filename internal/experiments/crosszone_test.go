package experiments

import (
	"math"
	"testing"

	"blobvfs/internal/cluster"
)

// TestCrossZoneAwarenessCutsInterconnectTraffic is the scenario's
// acceptance property: over the identical zoned fabric, switching the
// repo from the flat policy to topology awareness must cut the bytes
// crossing zone interconnects at least in half, with and without p2p
// sharing (the remaining cross-zone traffic is the tracker and
// version-manager chatter plus the first seeding of each zone).
func TestCrossZoneAwarenessCutsInterconnectTraffic(t *testing.T) {
	p := Quick()
	for _, sharing := range []bool{false, true} {
		cz := CrossZoneConfig{InstancesPerZone: 16, Sharing: sharing}
		flat := RunCrossZone(p, cz)
		cz.Aware = true
		aware := RunCrossZone(p, cz)

		if flat.CrossZoneBytes == 0 {
			t.Fatalf("sharing=%v: flat run crossed no zone boundary", sharing)
		}
		if aware.CrossZoneBytes*2 > flat.CrossZoneBytes {
			t.Errorf("sharing=%v: awareness cut cross-zone bytes only %d -> %d, want >= 2x",
				sharing, flat.CrossZoneBytes, aware.CrossZoneBytes)
		}
		// The per-tier counters must decompose the fabric total.
		for _, pt := range []CrossZonePoint{flat, aware} {
			var sum int64
			for _, b := range pt.TierBytes {
				sum += b
			}
			if total := int64(math.Round(pt.TrafficGB * 1e9)); sum != total {
				t.Errorf("sharing=%v aware=%v: tier bytes sum %d != total traffic %d",
					sharing, pt.Aware, sum, total)
			}
		}
		// Aware placement pins one replica in every zone, so no chunk
		// read has to leave its zone: every provider read books at
		// rack distance or closer except the ones the flat policy
		// cannot classify.
		if aware.ProviderTierReads[cluster.TierRemote] != 0 {
			t.Errorf("sharing=%v: %d aware provider reads crossed zones, want 0",
				sharing, aware.ProviderTierReads[cluster.TierRemote])
		}
	}
}

// TestCrossZoneDeterministic: the scenario is bit-for-bit repeatable
// in both policies, tier counters included.
func TestCrossZoneDeterministic(t *testing.T) {
	p := Quick()
	for _, aware := range []bool{false, true} {
		cz := CrossZoneConfig{InstancesPerZone: 8, Aware: aware, Sharing: true}
		a := RunCrossZone(p, cz)
		b := RunCrossZone(p, cz)
		if a != b {
			t.Errorf("cross-zone (aware=%v) not deterministic:\n  %+v\n  %+v", aware, a, b)
		}
	}
}

// TestFlashCrowdSingleZoneTopologyMatchesFlat pins the tentpole's
// degenerate case end to end: the flash crowd on a fabric whose
// topology puts every node in one zone and one rack — tier links
// created, placement, replica ordering and peer selection all running
// their topology-aware code paths — reproduces the plain flat-cluster
// run byte-identically, p2p statistics included.
func TestFlashCrowdSingleZoneTopologyMatchesFlat(t *testing.T) {
	p := Quick()
	nic := cluster.DefaultConfig(1).NICBandwidth
	fc := FlashCrowdConfig{Instances: 16, Providers: 4, Sharing: true}
	flat := RunFlashCrowd(p, fc)
	fc.Topology = cluster.Topology{
		Zones: 1, RacksPerZone: 1, NodesPerRack: fc.Instances + fc.Providers + 1,
		RackBandwidth: nic, ZoneBandwidth: nic,
	}
	single := RunFlashCrowd(p, fc)
	// Topology is not part of the point; everything measured must be.
	if flat != single {
		t.Errorf("single-zone topology diverged from flat flash crowd:\n  flat:   %+v\n  single: %+v",
			flat, single)
	}
}
