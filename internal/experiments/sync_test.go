package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestSyncScenarioHeadline: the headline property — after the initial
// full ship, every delta round moves a small fraction of the image,
// and the aggregate reduction clears the benchmark gate with room to
// spare.
func TestSyncScenarioHeadline(t *testing.T) {
	p := Quick()
	pt := RunSync(p, SyncConfig{Rounds: 3})

	if got := len(pt.PerRound); got != pt.Rounds+1 {
		t.Fatalf("recorded %d rounds, want full + %d deltas", got, pt.Rounds)
	}
	full := pt.PerRound[0]
	if full.Stage != "full" {
		t.Fatalf("first round is %q, want the full ship", full.Stage)
	}
	if full.ShippedMB < pt.ImageMB {
		t.Errorf("full ship moved %.2f MB for a %.0f MB image", full.ShippedMB, pt.ImageMB)
	}
	for _, r := range pt.PerRound[1:] {
		if r.Versions != 1 {
			t.Errorf("%s carried %d versions, want 1", r.Stage, r.Versions)
		}
		if r.ShippedMB >= full.ShippedMB {
			t.Errorf("%s shipped %.2f MB, no smaller than the full %.2f MB",
				r.Stage, r.ShippedMB, full.ShippedMB)
		}
	}
	if pt.Reduction < 5 {
		t.Errorf("reduction %.2fx below the 5x gate", pt.Reduction)
	}
	// The synthetic base image is uniform, so the full ship dedups all
	// but its first chunk on the importing side; the per-commit deltas
	// carry distinct content and dedup nothing.
	if pt.DedupedChunks != full.Deduped {
		t.Errorf("delta rounds deduped %d chunks, want 0", pt.DedupedChunks-full.Deduped)
	}
	if full.Deduped != full.Chunks-1 {
		t.Errorf("uniform full ship deduped %d of %d chunks, want all but one",
			full.Deduped, full.Chunks)
	}

	tab := SyncTable(pt).String()
	for _, want := range []string{"full", "delta 1", "avg delta", "reduction", "x"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

// TestSyncScenarioDeterministic: same params, same archives, same
// counters — the scenario is bit-for-bit repeatable.
func TestSyncScenarioDeterministic(t *testing.T) {
	p := Quick()
	sc := SyncConfig{Rounds: 2, Providers: 2}
	a := RunSync(p, sc)
	b := RunSync(p, sc)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}
