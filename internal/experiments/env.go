package experiments

import (
	"fmt"

	"blobvfs"
	"blobvfs/internal/cluster"
	"blobvfs/internal/middleware"
	"blobvfs/internal/nfs"
	"blobvfs/internal/pvfs"
	"blobvfs/internal/sim"
	"blobvfs/internal/vmmodel"
)

// Approach selects a storage backend for an experiment run.
type Approach int

// The three compared systems of §5.2.
const (
	OurApproach Approach = iota
	QcowOverPVFS
	TaktukPreprop
)

// String returns the paper's series label.
func (a Approach) String() string {
	switch a {
	case OurApproach:
		return "our approach, 256K chunks"
	case QcowOverPVFS:
		return "qcow2 over PVFS, 256K stripe"
	case TaktukPreprop:
		return "taktuk pre-propagation"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Env is one configured simulation, mirroring the paper's setup: a
// cluster of MaxInstances compute nodes (the full Nancy cluster) plus
// one dedicated service node (NFS server / version manager host). The
// storage service is always deployed over ALL compute nodes (§3.1.1:
// the pool aggregates every local disk), while only the first n nodes
// host VM instances — so per-provider read pressure grows with n,
// which is the contention the paper measures. Setup costs are
// excluded: the traffic counter is reset and times are deltas.
type Env struct {
	P       Params
	Fab     *cluster.Sim
	All     []cluster.NodeID // all compute nodes (storage pool)
	Nodes   []cluster.NodeID // nodes hosting VM instances (first n)
	Service cluster.NodeID   // dedicated service node
	Backend middleware.Backend
	Orch    *middleware.Orchestrator
	// Repo and Base are set for OurApproach runs (the other backends
	// have no repository).
	Repo     *blobvfs.Repo
	Base     blobvfs.Snapshot
	baseOps  []vmmodel.TraceOp
	traceRNG *sim.RNG
	jitRNG   *sim.RNG
}

// NewEnv builds the simulation for n instances under the given
// approach. The heavy lifting (image upload or PVFS/NFS priming) runs
// inside the simulation before the environment is handed back.
func NewEnv(p Params, n int, a Approach) *Env {
	if n < 1 {
		panic("experiments: need at least one instance")
	}
	total := p.MaxInstances
	if n > total {
		total = n
	}
	cfg := cluster.DefaultConfig(total + 1)
	if p.WriteBuffer > 0 {
		cfg.WriteBuffer = p.WriteBuffer
	}
	fab := cluster.NewSim(cfg)
	env := &Env{
		P:        p,
		Fab:      fab,
		Service:  cluster.NodeID(total),
		baseOps:  p.baseTrace(),
		traceRNG: sim.NewRNG(p.Seed + 1),
		jitRNG:   sim.NewRNG(p.Seed + 2),
	}
	for i := 0; i < total; i++ {
		env.All = append(env.All, cluster.NodeID(i))
	}
	for i := 0; i < n; i++ {
		env.Nodes = append(env.Nodes, cluster.NodeID(i))
	}

	if a == OurApproach {
		repo, err := blobvfs.Open(fab,
			blobvfs.WithProviders(env.All...),
			blobvfs.WithManager(env.Service),
			blobvfs.WithReplicas(p.Replicas),
			blobvfs.WithChunkSize(p.ChunkSize))
		if err != nil {
			panic(err)
		}
		env.Repo = repo
	}

	fab.Run(func(ctx *cluster.Ctx) {
		switch a {
		case OurApproach:
			base, err := env.Repo.CreateSynthetic(ctx, "base", p.ImageSize)
			if err != nil {
				panic(err)
			}
			env.Base = base
			env.Backend = middleware.NewMirrorBackend(env.Repo, base)
		case QcowOverPVFS:
			fs := pvfs.New(env.All, p.ChunkSize)
			if _, err := fs.Create(ctx, "base.raw", p.ImageSize, false); err != nil {
				panic(err)
			}
			env.Backend = middleware.NewQcowBackend(fs, "base.raw")
		case TaktukPreprop:
			srv := nfs.NewServer(env.Service)
			if err := srv.Put(ctx, "base.raw", p.ImageSize, nil); err != nil {
				panic(err)
			}
			b := middleware.NewPrepropBackend(srv, "base.raw", p.ImageSize)
			b.EffRate = p.BcastRate
			env.Backend = b
		}
	})
	fab.ResetTraffic()

	env.Orch = &middleware.Orchestrator{
		Backend: env.Backend,
		Nodes:   env.Nodes,
		TraceFor: func(i int) []vmmodel.TraceOp {
			return vmmodel.WithThinkJitter(env.baseOps, env.traceRNG.Fork(), p.Boot.TotalThink)
		},
		StartJitter: func(i int) float64 {
			return env.jitRNG.Uniform(p.JitterMin, p.JitterMax)
		},
	}
	return env
}

// Run executes fn as the root activity of the environment's simulation.
func (e *Env) Run(fn func(ctx *cluster.Ctx)) { e.Fab.Run(fn) }

// SnapshotWrites applies the §5.3 local-modification pattern to a
// disk: ~diff bytes of configuration files and contextualization
// state, written as run-sized sequential bursts at scattered spots.
// Bursts are aligned to the run length: the guest writes whole small
// files, so by snapshot time the dirty chunks are fully local and the
// measured snapshot cost is shipping the diff, exactly as in the
// paper's experiment.
func SnapshotWrites(ctx *cluster.Ctx, disk vmmodel.VirtualDisk, diff int64, runLen int64, rng *sim.RNG) error {
	return SnapshotWritesIn(ctx, disk, diff, runLen, disk.Size(), rng)
}

// SnapshotWritesIn is SnapshotWrites confined to the first window
// bytes of the disk — the churn scenario's hot working set: writes
// that land on the same spots cycle after cycle are what make old
// snapshots' chunks unreachable once retention retires them.
func SnapshotWritesIn(ctx *cluster.Ctx, disk vmmodel.VirtualDisk, diff int64, runLen int64, window int64, rng *sim.RNG) error {
	if runLen <= 0 {
		runLen = 256 << 10
	}
	if window <= 0 || window > disk.Size() {
		window = disk.Size()
	}
	slots := window / runLen
	if slots < 1 {
		slots = 1
	}
	written := int64(0)
	for written < diff {
		l := runLen
		if written+l > diff {
			l = diff - written
		}
		off := rng.Int63n(slots) * runLen
		if err := disk.Write(ctx, off, l); err != nil {
			return err
		}
		written += l
	}
	return nil
}
