// Package experiments reproduces every figure of the paper's
// evaluation (§5) on the simulated cluster: Fig. 4 (multideployment),
// Fig. 5 (multisnapshotting), Fig. 6/7 (local Bonnie++), Fig. 8
// (Monte Carlo application). Each RunFigN function regenerates the
// corresponding figure's data series as a printable table; the
// per-experiment index in DESIGN.md maps figures to the modules
// exercised here.
package experiments
