package experiments

import (
	"fmt"

	"blobvfs"
	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/middleware"
	"blobvfs/internal/vmmodel"
	"blobvfs/internal/workloads"
)

// Fig8Setting is one bar group of Fig. 8.
type Fig8Setting int

// The two settings of §5.5.
const (
	Uninterrupted Fig8Setting = iota
	SuspendResume
)

// String returns the setting's label.
func (s Fig8Setting) String() string {
	if s == Uninterrupted {
		return "Uninterrupted"
	}
	return "Suspend/Resume"
}

// Fig8Result maps (setting, approach) to the Monte Carlo deployment's
// completion time in seconds.
type Fig8Result struct {
	Instances  int
	Completion map[Fig8Setting]map[Approach]float64
}

// RunFig8 executes the real-application experiment of §5.5: a Monte
// Carlo π estimation spread over `instances` workers that periodically
// save intermediate results into their images. In the uninterrupted
// setting the deployment just runs to completion; in suspend/resume
// the deployment is snapshotted halfway, terminated, and resumed on a
// different set of nodes (each instance shifted by one), so all image
// content must be fetched remotely again. Prepropagation is compared
// only in the first setting, as in the paper.
func RunFig8(p Params, instances int) *Fig8Result {
	res := &Fig8Result{
		Instances:  instances,
		Completion: map[Fig8Setting]map[Approach]float64{Uninterrupted: {}, SuspendResume: {}},
	}
	for _, a := range []Approach{TaktukPreprop, QcowOverPVFS, OurApproach} {
		res.Completion[Uninterrupted][a] = runFig8Uninterrupted(p, instances, a)
	}
	for _, a := range []Approach{QcowOverPVFS, OurApproach} {
		res.Completion[SuspendResume][a] = runFig8SuspendResume(p, instances, a)
	}
	return res
}

func runFig8Uninterrupted(p Params, n int, a Approach) float64 {
	env := NewEnv(p, n, a)
	var completion float64
	env.Run(func(ctx *cluster.Ctx) {
		start := ctx.Now()
		dep, err := env.Orch.Deploy(ctx)
		if err != nil {
			panic(err)
		}
		err = env.Orch.RunOnAll(ctx, dep.Instances, func(cc *cluster.Ctx, inst *middleware.Instance) error {
			return workloads.RunMonteCarloPhase(cc, inst.Disk, p.MonteCarlo, p.MonteCarlo.ComputeSeconds)
		})
		if err != nil {
			panic(err)
		}
		completion = ctx.Now() - start
	})
	return completion
}

func runFig8SuspendResume(p Params, n int, a Approach) float64 {
	env := NewEnv(p, n, a)
	half := p.MonteCarlo.ComputeSeconds / 2
	var completion float64
	env.Run(func(ctx *cluster.Ctx) {
		start := ctx.Now()
		dep, err := env.Orch.Deploy(ctx)
		if err != nil {
			panic(err)
		}
		// First half of the computation.
		err = env.Orch.RunOnAll(ctx, dep.Instances, func(cc *cluster.Ctx, inst *middleware.Instance) error {
			return workloads.RunMonteCarloPhase(cc, inst.Disk, p.MonteCarlo, half)
		})
		if err != nil {
			panic(err)
		}
		// Snapshot everything, then terminate.
		if _, err := env.Orch.SnapshotAll(ctx, dep.Instances); err != nil {
			panic(err)
		}
		// Resume every instance on the next node over (fresh caches:
		// nothing of the image is local there), reboot, re-read the
		// saved state, and finish the computation.
		errs := make([]error, n)
		var tasks []cluster.Task
		for i := range dep.Instances {
			i := i
			inst := dep.Instances[i]
			newNode := env.Nodes[(i+1)%len(env.Nodes)]
			tasks = append(tasks, ctx.Go("resume", newNode, func(cc *cluster.Ctx) {
				errs[i] = resumeInstance(cc, env, inst, newNode, i, half)
			}))
		}
		ctx.WaitAll(tasks)
		for _, err := range errs {
			if err != nil {
				panic(err)
			}
		}
		completion = ctx.Now() - start
	})
	return completion
}

// resumeInstance restores one instance from its snapshot on a fresh
// node and runs the remaining computation.
func resumeInstance(cc *cluster.Ctx, env *Env, inst *middleware.Instance, node cluster.NodeID, i int, remaining float64) error {
	p := env.P
	var disk vmmodel.VirtualDisk
	switch b := env.Backend.(type) {
	case *middleware.MirrorBackend:
		d := inst.Disk.(*blobvfs.Disk)
		// The committed snapshot is a standalone raw image: mirror it.
		reopened, err := b.OpenOn(cc, node, d.Current())
		if err != nil {
			return err
		}
		disk = reopened
	case *middleware.QcowBackend:
		// A fresh CoW image over the base; the instance's saved state
		// lives in its snapshot file on PVFS and is read back below.
		nd, err := b.Provision(cc, i, node)
		if err != nil {
			return err
		}
		disk = nd
	default:
		return fmt.Errorf("experiments: resume unsupported for backend %T", env.Backend)
	}
	// Reboot the instance on the fresh node.
	vm := &vmmodel.VM{Node: node, Disk: disk}
	trace := env.Orch.TraceFor(i)
	if err := vm.Boot(cc, trace); err != nil {
		return err
	}
	// Recover the intermediate results.
	switch b := env.Backend.(type) {
	case *middleware.MirrorBackend:
		if err := disk.Read(cc, p.MonteCarlo.SaveOffset, p.MonteCarlo.SaveBytes); err != nil {
			return err
		}
	case *middleware.QcowBackend:
		snap := b.LastSnapshot(i)
		if snap == "" {
			return fmt.Errorf("experiments: instance %d has no snapshot to resume from", i)
		}
		f, err := b.FS.Open(cc, snap)
		if err != nil {
			return err
		}
		if err := f.ReadAt(cc, nil, 0, min(p.MonteCarlo.SaveBytes, f.Size())); err != nil {
			return err
		}
	}
	return workloads.RunMonteCarloPhase(cc, disk, p.MonteCarlo, remaining)
}

// Table renders Fig. 8.
func (r *Fig8Result) Table() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Fig 8: Monte Carlo completion time (s), %d instances", r.Instances),
		Columns: []string{"setting", TaktukPreprop.String(), QcowOverPVFS.String(), OurApproach.String()},
	}
	row := func(s Fig8Setting) {
		cells := []string{s.String()}
		for _, a := range []Approach{TaktukPreprop, QcowOverPVFS, OurApproach} {
			if v, ok := r.Completion[s][a]; ok {
				cells = append(cells, ftoa(v))
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	row(Uninterrupted)
	row(SuspendResume)
	return t
}
