package experiments

import "testing"

// TestFlashCrowdSharingKillsProviderHotSpot: with a provider pool much
// smaller than the crowd, enabling p2p sharing must strictly reduce
// both the total provider load and the hottest provider's load, with
// the difference served by cohort peers.
func TestFlashCrowdSharingKillsProviderHotSpot(t *testing.T) {
	p := Quick()
	fc := FlashCrowdConfig{Instances: 48, Providers: 4}
	off := RunFlashCrowd(p, fc)
	fc.Sharing = true
	on := RunFlashCrowd(p, fc)

	if off.PeerReads != 0 {
		t.Errorf("sharing off but %d peer reads", off.PeerReads)
	}
	if on.PeerReads == 0 {
		t.Error("sharing on but no chunk was served by a peer")
	}
	if on.ProviderReads >= off.ProviderReads {
		t.Errorf("provider reads did not drop: %d with sharing vs %d without",
			on.ProviderReads, off.ProviderReads)
	}
	if on.MaxProviderReads >= off.MaxProviderReads {
		t.Errorf("hottest provider did not cool down: %d with sharing vs %d without",
			on.MaxProviderReads, off.MaxProviderReads)
	}
	// Every demand fetch is served exactly once, by a provider or a peer.
	if got, want := on.ProviderReads+on.PeerReads, off.ProviderReads; got != want {
		t.Errorf("reads not conserved: %d provider + %d peer = %d, want %d",
			on.ProviderReads, on.PeerReads, got, want)
	}
	// Relieving the provider bottleneck must not slow the deployment.
	if on.Completion > off.Completion*1.05 {
		t.Errorf("sharing slowed completion: %.2fs vs %.2fs", on.Completion, off.Completion)
	}
}

// TestFlashCrowd256 runs the acceptance-scale point: 256 concurrent
// deployments against an 8-provider pool. Per-provider chunk traffic
// must be strictly lower with sharing enabled.
func TestFlashCrowd256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-instance flash crowd skipped in -short mode")
	}
	p := Quick()
	fc := FlashCrowdConfig{Instances: 256, Providers: 8}
	off := RunFlashCrowd(p, fc)
	fc.Sharing = true
	on := RunFlashCrowd(p, fc)

	if on.MaxProviderReads >= off.MaxProviderReads {
		t.Errorf("hottest provider at 256 instances: %d with sharing, %d without",
			on.MaxProviderReads, off.MaxProviderReads)
	}
	if on.ProviderReads >= off.ProviderReads {
		t.Errorf("provider reads at 256 instances: %d with sharing, %d without",
			on.ProviderReads, off.ProviderReads)
	}
	if on.Completion > off.Completion {
		t.Errorf("sharing slowed the 256-instance crowd: %.2fs vs %.2fs",
			on.Completion, off.Completion)
	}
}

// TestFlashCrowdMetadataBatching: the metadata read path must resolve
// trees in batched rounds, not one service operation per node — the
// "metadata must not become the bottleneck" property. With level-order
// descent and the open-time extent prefetch, the whole deployment's
// service-operation count stays a small multiple of the per-level
// provider fan-out instead of scaling with tree-node count.
func TestFlashCrowdMetadataBatching(t *testing.T) {
	p := Quick()
	pt := RunFlashCrowd(p, FlashCrowdConfig{Instances: 48, Providers: 4})
	if pt.MetaGets == 0 || pt.MetaNodes == 0 {
		t.Fatalf("no metadata traffic recorded: %+v", pt)
	}
	factor := float64(pt.MetaNodes) / float64(pt.MetaGets)
	if factor < 8 {
		t.Errorf("metadata batching factor = %.1f (%d nodes / %d ops), want >= 8",
			factor, pt.MetaNodes, pt.MetaGets)
	}
	// Roughly depth rounds per provider per instance: span 1024 is
	// depth 10, 4 providers → well under 64 service ops per instance.
	if perInst := pt.MetaGets / int64(pt.Instances); perInst > 64 {
		t.Errorf("metadata ops per instance = %d, want <= 64 (depth-bounded rounds)", perInst)
	}
}

// TestFlashCrowdDeterministic: the scenario is bit-for-bit repeatable,
// p2p layer included.
func TestFlashCrowdDeterministic(t *testing.T) {
	p := Quick()
	fc := FlashCrowdConfig{Instances: 16, Providers: 4, Sharing: true}
	a := RunFlashCrowd(p, fc)
	b := RunFlashCrowd(p, fc)
	if a != b {
		t.Errorf("flash crowd not deterministic:\n  %+v\n  %+v", a, b)
	}
}
