package experiments

import (
	"bytes"
	"fmt"

	"blobvfs"
	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/sim"
)

// This file implements the sync scenario: the disconnected-site
// workflow (docs/sync.md) measured on the axis the differential
// export/import subsystem moves — bytes shipped per synchronization
// round. Two repositories live on one fabric but share no providers:
// the upstream accumulates a snapshot lineage under the §5.3 local-
// modification pattern, and after every commit a delta archive carries
// exactly the chunks the downstream lacks. The headline is the delta
// size against the full-image ship a naive mirror would repeat each
// round, plus how many shipped chunks the importing side deduplicated
// into storage it already had.

// SyncConfig parameterizes one sync run.
type SyncConfig struct {
	// Rounds is how many write→commit→export→import cycles follow the
	// initial full ship (default 4).
	Rounds int
	// Providers is the provider pool size per repository (default 4).
	Providers int
	// DiffBytes is the per-round local modification size (default
	// Params.SnapshotDiff).
	DiffBytes int64
	// HotBytes confines each round's writes to the first HotBytes of
	// the image (default 4×DiffBytes), the churn scenario's working-set
	// model: rewrites land on the same spots round after round.
	HotBytes int64
}

// SyncRound reports one shipped archive.
type SyncRound struct {
	Stage     string  // "full" or "delta N"
	Versions  int     // versions carried by the archive
	Chunks    int     // chunk payloads shipped
	Deduped   int     // shipped chunks the importer already stored
	ShippedMB float64 // logical payload+metadata bytes shipped
	FullMB    float64 // what a full-image ship would carry
	Reduction float64 // FullMB / ShippedMB
}

// SyncPoint reports one sync run.
type SyncPoint struct {
	Rounds    int
	Providers int
	ImageMB   float64

	FullMB     float64 // the initial full ship
	AvgDeltaMB float64 // mean delta round size
	Reduction  float64 // FullMB / AvgDeltaMB — the headline

	ShippedChunks int // total chunks shipped over all rounds
	DedupedChunks int // total import-side dedup hits

	PerRound []SyncRound
}

// RunSync deploys an upstream and a downstream repository on disjoint
// provider pools of one fabric, ships the base image as a full archive,
// then runs sc.Rounds modification→commit→delta-sync cycles, verifying
// after the last round that the downstream can read the newest version
// end to end.
func RunSync(p Params, sc SyncConfig) SyncPoint {
	if sc.Rounds <= 0 {
		sc.Rounds = 4
	}
	if sc.Providers <= 0 {
		sc.Providers = 4
	}
	if sc.DiffBytes <= 0 {
		sc.DiffBytes = p.SnapshotDiff
	}
	if sc.HotBytes <= 0 {
		sc.HotBytes = 4 * sc.DiffBytes
	}
	if sc.HotBytes > p.ImageSize {
		sc.HotBytes = p.ImageSize
	}

	fab := cluster.NewSim(cluster.DefaultConfig(2 * sc.Providers))
	var upNodes, downNodes []cluster.NodeID
	for i := 0; i < sc.Providers; i++ {
		upNodes = append(upNodes, cluster.NodeID(i))
		downNodes = append(downNodes, cluster.NodeID(sc.Providers+i))
	}
	open := func(nodes []cluster.NodeID, uuid uint64) *blobvfs.Repo {
		r, err := blobvfs.Open(fab,
			blobvfs.WithProviders(nodes...),
			blobvfs.WithManager(nodes[0]),
			blobvfs.WithChunkSize(p.ChunkSize),
			blobvfs.WithDedup(),
			blobvfs.WithSyncUUID(uuid))
		if err != nil {
			panic(err)
		}
		return r
	}
	up := open(upNodes, 1)
	down := open(downNodes, 2)

	pt := SyncPoint{
		Rounds:    sc.Rounds,
		Providers: sc.Providers,
		ImageMB:   float64(p.ImageSize) / (1 << 20),
	}
	record := func(stage string, est blobvfs.ExportStats, ist blobvfs.ImportStats) {
		r := SyncRound{
			Stage:     stage,
			Versions:  est.Versions,
			Chunks:    est.Chunks,
			Deduped:   ist.DedupedChunks,
			ShippedMB: float64(est.DeltaBytes()) / (1 << 20),
			FullMB:    float64(est.FullBytes) / (1 << 20),
		}
		if r.ShippedMB > 0 {
			r.Reduction = r.FullMB / r.ShippedMB
		}
		pt.PerRound = append(pt.PerRound, r)
		pt.ShippedChunks += r.Chunks
		pt.DedupedChunks += r.Deduped
	}

	wrRNG := sim.NewRNG(p.Seed + 11)
	fab.Run(func(ctx *cluster.Ctx) {
		base, err := up.CreateSynthetic(ctx, "image", p.ImageSize)
		if err != nil {
			panic(err)
		}

		var localID blobvfs.ImageID
		ship := func(stage string, from, to blobvfs.Version) {
			var buf bytes.Buffer
			est, err := up.Export(ctx, &buf, base.Image, from, to)
			if err != nil {
				panic(err)
			}
			ist, err := down.Import(ctx, &buf)
			if err != nil {
				panic(err)
			}
			localID = ist.Image
			record(stage, est, ist)
		}
		ship("full", 0, base.Version)

		disk, err := up.OpenDisk(ctx, upNodes[0], base, blobvfs.Synthetic())
		if err != nil {
			panic(err)
		}
		cur := base.Version
		for round := 1; round <= sc.Rounds; round++ {
			if err := SnapshotWritesIn(ctx, disk, sc.DiffBytes, int64(p.ChunkSize), sc.HotBytes, wrRNG.Fork()); err != nil {
				panic(err)
			}
			snap, err := disk.Commit(ctx)
			if err != nil {
				panic(err)
			}
			ship(fmt.Sprintf("delta %d", round), cur, snap.Version)
			cur = snap.Version
		}
		if err := disk.Close(ctx); err != nil {
			panic(err)
		}

		// End-to-end check: the downstream must be able to read the
		// newest imported version across the whole image.
		verify := ctx.Go("verify", downNodes[0], func(cc *cluster.Ctx) {
			ddisk, err := down.OpenDisk(cc, downNodes[0], blobvfs.Snapshot{Image: localID, Version: cur}, blobvfs.Synthetic())
			if err != nil {
				panic(err)
			}
			if err := ddisk.Read(cc, 0, ddisk.Size()); err != nil {
				panic(err)
			}
			if err := ddisk.Close(cc); err != nil {
				panic(err)
			}
		})
		ctx.WaitAll([]cluster.Task{verify})
	})

	pt.FullMB = pt.PerRound[0].ShippedMB
	var deltaSum float64
	for _, r := range pt.PerRound[1:] {
		deltaSum += r.ShippedMB
	}
	if sc.Rounds > 0 {
		pt.AvgDeltaMB = deltaSum / float64(sc.Rounds)
	}
	if pt.AvgDeltaMB > 0 {
		pt.Reduction = pt.PerRound[0].FullMB / pt.AvgDeltaMB
	}
	return pt
}

// SyncTable renders a sync run as a per-round shipping trace.
func SyncTable(pt SyncPoint) *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Differential sync: %.0f MB image, %d delta rounds, disjoint %d-provider pools",
			pt.ImageMB, pt.Rounds, pt.Providers),
		Columns: []string{
			"stage", "versions", "chunks shipped", "chunks deduped",
			"shipped (MB)", "full ship (MB)", "reduction",
		},
	}
	for _, r := range pt.PerRound {
		red := ""
		if r.Stage != "full" && r.Reduction > 0 {
			red = fmt.Sprintf("%.1fx", r.Reduction)
		}
		t.AddRow(
			r.Stage,
			itoa(r.Versions),
			itoa(r.Chunks),
			itoa(r.Deduped),
			ftoa(r.ShippedMB),
			ftoa(r.FullMB),
			red,
		)
	}
	if pt.Reduction > 0 {
		t.AddRow("avg delta", "", itoa(pt.ShippedChunks), itoa(pt.DedupedChunks),
			ftoa(pt.AvgDeltaMB), ftoa(pt.FullMB), fmt.Sprintf("%.1fx", pt.Reduction))
	}
	return t
}
