package experiments

import (
	"bytes"
	"testing"
	"testing/quick"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/mirror"
	"blobvfs/internal/pvfs"
	"blobvfs/internal/qcow2"
)

// TestMirrorAndQcow2AreContentEquivalent drives the paper's system and
// its baseline through identical random operation sequences over the
// same base image, with real bytes on the live fabric: whatever the
// hypervisor would observe must be byte-identical on both stacks —
// the two differ in cost and manageability, never in content.
func TestMirrorAndQcow2AreContentEquivalent(t *testing.T) {
	type op struct {
		Off, Len uint16
		Write    bool
		Seed     byte
	}
	const size, chunk = 64 << 10, 8 << 10
	f := func(ops []op) bool {
		fab := cluster.NewLive(4)
		nodes := []cluster.NodeID{0, 1, 2, 3}
		base := make([]byte, size)
		for i := range base {
			base[i] = byte(i*7 + 3)
		}
		ok := true
		fab.Run(func(ctx *cluster.Ctx) {
			// Paper's stack.
			sys := blob.NewSystem(nodes, 0, 1)
			bc := blob.NewClient(sys)
			id, err := bc.Create(ctx, size, chunk)
			if err != nil {
				ok = false
				return
			}
			v, err := bc.WriteAt(ctx, id, 0, base, 0)
			if err != nil {
				ok = false
				return
			}
			mod := mirror.NewModule(0, blob.NewClient(sys), mirror.DefaultConfig())
			mi, err := mod.Open(ctx, id, v, true)
			if err != nil {
				ok = false
				return
			}
			// Baseline stack.
			fs := pvfs.New(nodes, chunk)
			bf, err := fs.Create(ctx, "base", size, true)
			if err != nil {
				ok = false
				return
			}
			if err := bf.WriteAt(ctx, base, 0, size); err != nil {
				ok = false
				return
			}
			qi, err := qcow2.Create(0, pvfsBacking{bf}, 4096, true)
			if err != nil {
				ok = false
				return
			}

			for _, o := range ops {
				off := int64(o.Off) % size
				l := int64(o.Len)%9000 + 1
				if off+l > size {
					l = size - off
				}
				if o.Write {
					data := bytes.Repeat([]byte{o.Seed | 1}, int(l))
					if _, err := mi.WriteAt(ctx, data, off); err != nil {
						ok = false
						return
					}
					if err := qi.WriteAt(ctx, data, off, l); err != nil {
						ok = false
						return
					}
				} else {
					a := make([]byte, l)
					b := make([]byte, l)
					if _, err := mi.ReadAt(ctx, a, off); err != nil {
						ok = false
						return
					}
					if err := qi.ReadAt(ctx, b, off, l); err != nil {
						ok = false
						return
					}
					if !bytes.Equal(a, b) {
						ok = false
						return
					}
				}
			}
			// Full-image comparison at the end.
			a := make([]byte, size)
			b := make([]byte, size)
			if _, err := mi.ReadAt(ctx, a, 0); err != nil {
				ok = false
				return
			}
			if err := qi.ReadAt(ctx, b, 0, size); err != nil {
				ok = false
				return
			}
			if !bytes.Equal(a, b) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// pvfsBacking adapts a PVFS file to the qcow2 backing interface.
type pvfsBacking struct {
	f *pvfs.File
}

func (b pvfsBacking) ReadAt(ctx *cluster.Ctx, p []byte, off, n int64) error {
	return b.f.ReadAt(ctx, p, off, n)
}

func (b pvfsBacking) Size() int64 { return b.f.Size() }

// TestSuspendResumeCycleWithRealBytes runs the full §5.5 state machine
// with actual data: deploy, compute state, snapshot, resume the
// snapshot on a different node, and verify the state survived.
func TestSuspendResumeCycleWithRealBytes(t *testing.T) {
	fab := cluster.NewLive(4)
	nodes := []cluster.NodeID{0, 1, 2, 3}
	fab.Run(func(ctx *cluster.Ctx) {
		sys := blob.NewSystem(nodes, 0, 1)
		c := blob.NewClient(sys)
		id, _ := c.Create(ctx, 128<<10, 8<<10)
		base := bytes.Repeat([]byte{0xEE}, 128<<10)
		v, err := c.WriteAt(ctx, id, 0, base, 0)
		if err != nil {
			t.Fatal(err)
		}
		mods := map[cluster.NodeID]*mirror.Module{}
		for _, n := range nodes {
			mods[n] = mirror.NewModule(n, blob.NewClient(sys), mirror.DefaultConfig())
		}
		// Phase 1 on node 1: compute and save intermediate state.
		var snapID blob.ID
		var snapV blob.Version
		t1 := ctx.Go("phase1", 1, func(cc *cluster.Ctx) {
			im, err := mods[1].Open(cc, id, v, true)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := im.WriteAt(cc, []byte("pi=3.14159 after 5e8 samples"), 64<<10); err != nil {
				t.Error(err)
				return
			}
			if err := im.Clone(cc); err != nil {
				t.Error(err)
				return
			}
			nv, err := im.Commit(cc)
			if err != nil {
				t.Error(err)
				return
			}
			snapID, snapV = im.BlobID(), nv
		})
		ctx.Wait(t1)
		// Phase 2 on node 3 (nothing local there): resume and verify.
		t2 := ctx.Go("phase2", 3, func(cc *cluster.Ctx) {
			im, err := mods[3].Open(cc, snapID, snapV, true)
			if err != nil {
				t.Error(err)
				return
			}
			got := make([]byte, 28)
			if _, err := im.ReadAt(cc, got, 64<<10); err != nil {
				t.Error(err)
				return
			}
			if string(got) != "pi=3.14159 after 5e8 samples" {
				t.Errorf("resumed state = %q", got)
			}
			// And untouched regions still carry the base image.
			rest := make([]byte, 100)
			if _, err := im.ReadAt(cc, rest, 0); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(rest, base[:100]) {
				t.Error("base content corrupted across suspend/resume")
			}
		})
		ctx.Wait(t2)
	})
}
