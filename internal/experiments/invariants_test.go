package experiments

import "testing"

// TestFlashCrowdDeterministicUnderPooling runs the same 1k-instance
// flash crowd twice and demands bit-identical results — same event
// count, same completion times, same traffic and sharing stats. The
// sim core recycles events, worker goroutines, waiter buffers and
// flows through free lists and recomputes flow rates incrementally;
// this pins that none of that reuse ever changes event ordering.
func TestFlashCrowdDeterministicUnderPooling(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 192
	}
	p := Quick()
	fc := FlashCrowdConfig{Instances: instances, Providers: 8, Sharing: true}
	a := RunFlashCrowd(p, fc)
	b := RunFlashCrowd(p, fc)
	if a.Booted != instances {
		t.Fatalf("first run booted %d of %d instances", a.Booted, instances)
	}
	if a.Steps == 0 {
		t.Fatal("run reported zero simulator steps")
	}
	if a != b {
		t.Errorf("identical runs diverged:\n first: %+v\nsecond: %+v", a, b)
	}
	if a.Steps != b.Steps {
		t.Errorf("event counts diverged: %d vs %d steps", a.Steps, b.Steps)
	}
	if a.Completion != b.Completion {
		t.Errorf("completion diverged: %v vs %v", a.Completion, b.Completion)
	}
}
