package experiments

import "testing"

func TestChunkSizeAblationShowsTradeoff(t *testing.T) {
	p := Quick()
	p.MaxInstances = 16
	pts := RunChunkSizeAblation(p, 16, []int{16 << 10, 256 << 10, 4 << 20})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	small, mid, big := pts[0], pts[1], pts[2]
	// Small chunks pay per-request overhead: slower than the default.
	if small.Completion <= mid.Completion {
		t.Errorf("16K chunks (%.2f s) not slower than 256K (%.2f s)", small.Completion, mid.Completion)
	}
	// Huge chunks waste bandwidth: much more traffic than the default.
	if big.TrafficGB <= mid.TrafficGB*1.3 {
		t.Errorf("4M chunks traffic %.3f GB not ≫ 256K's %.3f GB", big.TrafficGB, mid.TrafficGB)
	}
	// And they also slow the boot down (false sharing / excess transfer).
	if big.Completion <= mid.Completion {
		t.Errorf("4M chunks (%.2f s) not slower than 256K (%.2f s)", big.Completion, mid.Completion)
	}
	tab := ChunkSizeTable(pts).String()
	if tab == "" {
		t.Fatal("empty table")
	}
}

func TestReplicationAblationFaultTolerance(t *testing.T) {
	p := Quick()
	p.MaxInstances = 8
	pts := RunReplicationAblation(p, 8, []int{1, 2})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].SurvivesOne {
		t.Error("replication 1 survived a provider loss")
	}
	if !pts[1].SurvivesOne {
		t.Error("replication 2 did not survive a provider loss")
	}
	if pts[1].StorageGB <= pts[0].StorageGB*1.5 {
		t.Errorf("replication 2 storage %.3f GB not ~2x of %.3f GB", pts[1].StorageGB, pts[0].StorageGB)
	}
	// Writing replicas costs more during deployment-time fetch? Reads
	// pick one replica, so completion should be in the same ballpark.
	if pts[1].Completion > pts[0].Completion*2 {
		t.Errorf("replication 2 completion %.2f ≫ replication 1 %.2f", pts[1].Completion, pts[0].Completion)
	}
	tab := ReplicationTable(pts).String()
	if tab == "" {
		t.Fatal("empty table")
	}
}
