package experiments

import (
	"fmt"

	"blobvfs"
	"blobvfs/internal/cluster"
	"blobvfs/internal/metrics"
	"blobvfs/internal/middleware"
	"blobvfs/internal/p2p"
	"blobvfs/internal/sim"
	"blobvfs/internal/vmmodel"
)

// This file implements the metadata-outage scenario: the flash-crowd
// multideployment rerun against a repository whose *control plane*
// fails mid-flight. The degraded scenario (degraded.go) proved the
// chunk data path survives provider deaths; here the same pool hosts
// the metadata tier, the repo runs with metadata replication degree 2
// (WithMetaReplicas), and the fault plan kills half the metadata
// providers one by one plus — through a single rack-scoped plan entry —
// one full compute rack. Every segment-tree descent that lands on a
// dead replica must fail over and every lost tree-node copy must be
// re-replicated; the acceptance gate is that all instances still
// complete with zero failed descents. The healthy twin (no kills, same
// replication) is the completion-time baseline the outage is judged
// against.

// metaOutageNodesPerRack is the rack size of the scenario's fabric.
const metaOutageNodesPerRack = 8

// metaOutageLayout is the node arrangement of one run: instance racks
// first, then provider racks, then one auxiliary rack whose first node
// hosts the version manager and the p2p tracker; idle racks pad the
// total to a multiple of the zone count so the topology covers the
// cluster exactly.
type metaOutageLayout struct {
	topo      cluster.Topology
	instNodes []cluster.NodeID
	provNodes []cluster.NodeID
	service   cluster.NodeID
	instRacks int
}

// metaOutageLayoutFor arranges instances and providers on the
// scenario's fabric: racks of metaOutageNodesPerRack with the
// cross-zone link constants (rack uplinks at 4× the node NIC with 50µs
// extra RTT, zone interconnects at 2× with 1ms), grouped into 4 zones.
func metaOutageLayoutFor(instances, providers int) metaOutageLayout {
	per := metaOutageNodesPerRack
	instRacks := (instances + per - 1) / per
	provRacks := (providers + per - 1) / per
	racks := instRacks + provRacks + 1 // one auxiliary rack
	const zones = 4
	for racks%zones != 0 {
		racks++ // idle pad racks
	}
	nic := cluster.DefaultConfig(1).NICBandwidth
	l := metaOutageLayout{
		topo: cluster.Topology{
			Zones:         zones,
			RacksPerZone:  racks / zones,
			NodesPerRack:  per,
			RackBandwidth: 4 * nic,
			RackLatency:   5e-5,
			ZoneBandwidth: 2 * nic,
			ZoneLatency:   1e-3,
		},
		instRacks: instRacks,
	}
	for i := 0; i < instances; i++ {
		l.instNodes = append(l.instNodes, cluster.NodeID(i))
	}
	provBase := instRacks * per
	for i := 0; i < providers; i++ {
		l.provNodes = append(l.provNodes, cluster.NodeID(provBase+i))
	}
	l.service = cluster.NodeID((instRacks + provRacks) * per)
	return l
}

// MetaOutageConfig parameterizes one metadata-outage run.
type MetaOutageConfig struct {
	// Instances is the deployment fan-out (the crowd size).
	Instances int
	// Providers is the pool that stores chunks AND hosts the metadata
	// tier (default 16).
	Providers int
	// Replicas is the chunk replication degree (default 2).
	Replicas int
	// MetaReplicas is the metadata replication degree (default 2; the
	// version manager gets MetaReplicas-1 journal standbys as well).
	MetaReplicas int
	// KillMeta is how many providers the fault plan kills, staggered
	// (which ones is drawn from the seed). 0 together with
	// KillRack=false is the healthy baseline.
	KillMeta int
	// KillRack additionally fails one full compute rack — the middle
	// instance rack — as a single rack-scoped plan entry.
	KillRack bool
	// KillStart is the virtual time of the first provider kill in
	// seconds (default 0.4: inside the disk-open wave, where the batched
	// metadata descents happen, so reads actually race the outage);
	// KillEvery is the spacing (default 0.15).
	KillStart float64
	KillEvery float64
	// RackKillAt is the virtual time of the rack kill (default
	// KillStart + 0.3, between the provider kills).
	RackKillAt float64
	// Sharing toggles the p2p chunk-sharing layer.
	Sharing bool
	// P2P carries the sharing protocol constants (zero value →
	// p2p.DefaultConfig).
	P2P p2p.Config
}

// MetaOutagePoint reports one metadata-outage run.
type MetaOutagePoint struct {
	Instances    int
	Providers    int
	MetaReplicas int
	KilledMeta   int
	RackKilled   bool

	Booted     int     // instances that completed their boot (must be all)
	AvgBoot    float64 // mean per-instance boot time (s)
	Completion float64 // deploy start → last instance booted (s)

	MetaFailovers    int64 // metadata gets a dead replica pushed onto a survivor
	MetaRereplicated int64 // tree-node copies restored by repair sweeps
	FailedDescents   int64 // metadata gets with no live replica (must be 0)
	VMFailovers      int64 // manager ops served by a journal standby

	Failovers     int64 // chunk-path failovers (for context)
	Rereplicated  int64 // chunk copies re-created after a death
	FailedFetches int64 // chunk reads with no live provider copy
	PeerReads     int64 // chunk reads served by cohort peers
}

// RunMetaOutage deploys mc.Instances concurrent instances of one image
// with replicated metadata while the fault plan takes out mc.KillMeta
// of the metadata providers and (with mc.KillRack) one full compute
// rack, and reports whether the control plane rode it out: failed
// descents must stay zero while every instance completes. With no
// kills the scenario is the healthy baseline at the same replication
// degrees.
func RunMetaOutage(p Params, mc MetaOutageConfig) MetaOutagePoint {
	if mc.Instances < 1 {
		panic("experiments: metadata-outage deployment needs at least one instance")
	}
	if mc.Providers <= 0 {
		mc.Providers = 16
	}
	if mc.Replicas <= 0 {
		mc.Replicas = 2
	}
	if mc.MetaReplicas <= 0 {
		mc.MetaReplicas = 2
	}
	if mc.KillMeta < 0 || mc.KillMeta >= mc.Providers {
		panic(fmt.Sprintf("experiments: cannot kill %d of %d metadata providers", mc.KillMeta, mc.Providers))
	}
	if mc.KillStart <= 0 {
		mc.KillStart = 0.4
	}
	if mc.KillEvery <= 0 {
		mc.KillEvery = 0.15
	}
	if mc.RackKillAt <= 0 {
		mc.RackKillAt = mc.KillStart + 0.3
	}
	if mc.P2P == (p2p.Config{}) {
		mc.P2P = p2p.DefaultConfig()
	}

	l := metaOutageLayoutFor(mc.Instances, mc.Providers)
	cfg := cluster.DefaultConfig(l.topo.Zones * l.topo.RacksPerZone * l.topo.NodesPerRack)
	if p.WriteBuffer > 0 {
		cfg.WriteBuffer = p.WriteBuffer
	}
	cfg.Topology = l.topo
	fab := cluster.NewSim(cfg)

	// The victims are drawn from the experiment seed, like the degraded
	// scenario's; the rack kill is one scoped plan entry the topology
	// expands — deliberately a compute rack (the middle instance rack),
	// so the metadata tier loses exactly the KillMeta staggered members
	// and the rack loss stresses the data and sharing paths.
	var plan []blobvfs.FaultEvent
	if mc.KillMeta > 0 {
		victims := sim.NewRNG(p.Seed + 11).Perm(mc.Providers)[:mc.KillMeta]
		for i, v := range victims {
			plan = append(plan, blobvfs.KillAt(mc.KillStart+float64(i)*mc.KillEvery, l.provNodes[v]))
		}
	}
	if mc.KillRack {
		plan = append(plan, blobvfs.KillRackAt(mc.RackKillAt, l.instRacks/2))
	}

	opts := []blobvfs.Option{
		blobvfs.WithProviders(l.provNodes...),
		blobvfs.WithManager(l.service),
		blobvfs.WithReplicas(mc.Replicas),
		blobvfs.WithMetaReplicas(mc.MetaReplicas),
		blobvfs.WithChunkSize(p.ChunkSize),
		blobvfs.WithTopology(l.topo),
	}
	if mc.Sharing {
		opts = append(opts, blobvfs.WithP2P(mc.P2P))
	}
	if len(plan) > 0 {
		opts = append(opts, blobvfs.WithFaultPlan(plan...))
	}
	repo, err := blobvfs.Open(fab, opts...)
	if err != nil {
		panic(err)
	}
	sys := repo.System()

	var base blobvfs.Snapshot
	var backend *middleware.MirrorBackend
	fab.Run(func(ctx *cluster.Ctx) {
		b, err := repo.CreateSynthetic(ctx, "base", p.ImageSize)
		if err != nil {
			panic(err)
		}
		base = b
		backend = middleware.NewMirrorBackend(repo, base)
	})
	fab.ResetTraffic()

	baseOps := p.baseTrace()
	traceRNG := sim.NewRNG(p.Seed + 1)
	jitRNG := sim.NewRNG(p.Seed + 2)
	orch := &middleware.Orchestrator{
		Backend: backend,
		Nodes:   l.instNodes,
		TraceFor: func(i int) []vmmodel.TraceOp {
			return vmmodel.WithThinkJitter(baseOps, traceRNG.Fork(), p.Boot.TotalThink)
		},
		StartJitter: func(i int) float64 {
			return jitRNG.Uniform(p.JitterMin, p.JitterMax)
		},
	}

	var dep *middleware.DeployResult
	fab.Run(func(ctx *cluster.Ctx) {
		// Rebased arming: image population already consumed virtual
		// seconds, and the kill schedule must land inside the
		// deployment's disk-open wave (where the metadata descents
		// happen), not before it.
		if len(plan) > 0 {
			if err := repo.ArmFaultsRebased(ctx); err != nil {
				panic(err)
			}
		}
		var err error
		dep, err = orch.Deploy(ctx)
		if err != nil {
			panic(fmt.Sprintf("experiments: metadata-outage deployment failed: %v", err))
		}
	})

	pt := MetaOutagePoint{
		Instances:    mc.Instances,
		Providers:    mc.Providers,
		MetaReplicas: mc.MetaReplicas,
		KilledMeta:   mc.KillMeta,
		RackKilled:   mc.KillRack,
		AvgBoot:      metrics.Summarize(dep.BootTimes()).Mean,
		Completion:   dep.Completion,
	}
	for _, inst := range dep.Instances {
		if inst != nil && inst.BootDoneAt > 0 {
			pt.Booted++
		}
	}
	pt.MetaFailovers = sys.Meta.Failovers.Load()
	pt.MetaRereplicated = sys.Meta.Rereplicated.Load()
	pt.FailedDescents = sys.Meta.FailedGets.Load()
	pt.VMFailovers = sys.VM.Failovers.Load()
	pt.Failovers = sys.Providers.Failovers.Load()
	pt.Rereplicated = sys.Providers.Rereplicated.Load()
	pt.FailedFetches = sys.Providers.FailedReads.Load()
	if st, ok := repo.SharingStats(base.Image); ok {
		pt.PeerReads = st.PeerHits
	}
	return pt
}

// MetaOutageTable renders a healthy-vs-outage comparison; the first
// row is the healthy baseline the delta column is computed against.
func MetaOutageTable(points []MetaOutagePoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Metadata outage: flash crowd with replicated metadata " +
			"while metadata providers and a rack fail",
		Columns: []string{
			"instances", "meta replicas", "killed meta", "rack killed", "booted",
			"completion (s)", "delta (s)", "meta failovers", "meta re-replicated",
			"failed descents",
		},
	}
	base := 0.0
	for i, pt := range points {
		if i == 0 {
			base = pt.Completion
		}
		rack := "no"
		if pt.RackKilled {
			rack = "yes"
		}
		t.AddRow(
			itoa(pt.Instances),
			itoa(pt.MetaReplicas),
			itoa(pt.KilledMeta),
			rack,
			itoa(pt.Booted),
			ftoa(pt.Completion),
			ftoa(pt.Completion-base),
			fmt.Sprintf("%d", pt.MetaFailovers),
			fmt.Sprintf("%d", pt.MetaRereplicated),
			fmt.Sprintf("%d", pt.FailedDescents),
		)
	}
	return t
}
