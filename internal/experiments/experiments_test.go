package experiments

import (
	"strings"
	"testing"

	"blobvfs/internal/workloads"
)

// TestFig4ShapesQuick verifies the qualitative claims of §5.2 on the
// scaled-down parameter set: prepropagation's flat per-instance boot
// but enormous completion time; our approach beating qcow2-over-PVFS;
// ~90% traffic reduction for the lazy schemes.
func TestFig4ShapesQuick(t *testing.T) {
	p := Quick()
	p.MaxInstances = 24
	sweep := []int{4, 24}
	res := RunFig4(p, sweep)

	ours := res.Series[OurApproach]
	qcow := res.Series[QcowOverPVFS]
	prep := res.Series[TaktukPreprop]

	for i := range sweep {
		// Fig 4(a): prepropagation boots locally; at the scaled-down
		// working set it is comparable to the lazy schemes (the local
		// advantage needs the full 110 MB boot footprint, asserted at
		// paper scale in TestFig4PaperScalePoint).
		if prep[i].AvgBoot > 2*ours[i].AvgBoot {
			t.Errorf("n=%d: preprop avg boot %.2f ≫ ours %.2f", sweep[i], prep[i].AvgBoot, ours[i].AvgBoot)
		}
		// Fig 4(a): our lazy boot beats qcow2's (chunk prefetch).
		if ours[i].AvgBoot >= qcow[i].AvgBoot {
			t.Errorf("n=%d: ours avg boot %.2f >= qcow2 %.2f", sweep[i], ours[i].AvgBoot, qcow[i].AvgBoot)
		}
		// Fig 4(b): completion: ours < qcow2 < preprop.
		if !(ours[i].Completion < qcow[i].Completion && qcow[i].Completion < prep[i].Completion) {
			t.Errorf("n=%d: completion ordering wrong: ours=%.1f qcow=%.1f prep=%.1f",
				sweep[i], ours[i].Completion, qcow[i].Completion, prep[i].Completion)
		}
		// Fig 4(d): lazy traffic is a small fraction of prepropagation's.
		if ours[i].TrafficGB > 0.5*prep[i].TrafficGB {
			t.Errorf("n=%d: ours traffic %.2f GB not ≪ preprop %.2f GB",
				sweep[i], ours[i].TrafficGB, prep[i].TrafficGB)
		}
	}
	// Fig 4(a): preprop flat; the lazy schemes' boots grow with n.
	flatDelta := prep[1].AvgBoot - prep[0].AvgBoot
	if flatDelta < -1 || flatDelta > 1 {
		t.Errorf("preprop avg boot not flat: %.2f -> %.2f", prep[0].AvgBoot, prep[1].AvgBoot)
	}
	if ours[1].AvgBoot <= ours[0].AvgBoot {
		t.Errorf("ours avg boot did not grow with contention: %.2f -> %.2f", ours[0].AvgBoot, ours[1].AvgBoot)
	}
	// Fig 4(c): the speedup table renders and speedups exceed 1.
	tables := res.Tables()
	if len(tables) != 4 {
		t.Fatalf("Tables() = %d tables, want 4", len(tables))
	}
	sp := tables[2].String()
	if !strings.Contains(sp, "speedup") {
		t.Fatalf("speedup table malformed:\n%s", sp)
	}
	// Traffic scales ~linearly with n for preprop (n × image).
	wantRatio := float64(sweep[1]) / float64(sweep[0])
	gotRatio := prep[1].TrafficGB / prep[0].TrafficGB
	if gotRatio < 0.7*wantRatio || gotRatio > 1.3*wantRatio {
		t.Errorf("preprop traffic ratio %.2f, want ~%.2f (linear in n)", gotRatio, wantRatio)
	}
}

// TestFig4PaperScalePoint runs the flagship configuration (110
// instances, full parameters) and checks the headline numbers of the
// paper's abstract: multideployment speedup in the ~20-25× range vs
// prepropagation, ~2-3× vs qcow2-over-PVFS, and ≥85% bandwidth
// reduction.
func TestFig4PaperScalePoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale point in -short mode")
	}
	p := Default()
	ours := runFig4Point(p, 110, OurApproach)
	qcow := runFig4Point(p, 110, QcowOverPVFS)
	prep := runFig4Point(p, 110, TaktukPreprop)

	vsPrep := prep.Completion / ours.Completion
	if vsPrep < 15 || vsPrep > 35 {
		t.Errorf("speedup vs preprop = %.1f, want 15-35 (paper: up to 25)", vsPrep)
	}
	vsQcow := qcow.Completion / ours.Completion
	if vsQcow < 1.5 || vsQcow > 4 {
		t.Errorf("speedup vs qcow2 = %.1f, want 1.5-4 (paper: ~2)", vsQcow)
	}
	// Fig 4(a) at full scale: local boot is fastest and ours beats qcow2.
	if !(prep.AvgBoot < ours.AvgBoot && ours.AvgBoot < qcow.AvgBoot) {
		t.Errorf("avg boot ordering wrong: prep=%.1f ours=%.1f qcow=%.1f",
			prep.AvgBoot, ours.AvgBoot, qcow.AvgBoot)
	}
	reduction := 1 - ours.TrafficGB/prep.TrafficGB
	if reduction < 0.85 {
		t.Errorf("traffic reduction = %.0f%%, want >= 85%% (paper: ~90%%)", reduction*100)
	}
	// Absolute sanity: per-instance traffic ≈ the touched working set.
	perInstanceMB := ours.TrafficGB * 1e3 / 110
	if perInstanceMB < 80 || perInstanceMB > 250 {
		t.Errorf("ours traffic/instance = %.0f MB, want 80-250 (boot touches ~110 MB)", perInstanceMB)
	}
}

// TestFig5ShapesQuick verifies §5.3: our asynchronous COMMIT starts
// faster than the qcow2 file copy and both stay within a few seconds,
// with our average degrading toward the baseline as write pressure
// grows.
func TestFig5ShapesQuick(t *testing.T) {
	p := Quick()
	p.MaxInstances = 24
	// A tight write-back buffer recreates, at this scale, the write
	// pressure that degrades BlobSeer's acknowledgement latency.
	p.WriteBuffer = 512 << 10
	sweep := []int{4, 24}
	res := RunFig5(p, sweep)
	ours := res.Series[OurApproach]
	qcow := res.Series[QcowOverPVFS]
	for i := range sweep {
		if ours[i].AvgTime >= qcow[i].AvgTime {
			t.Errorf("n=%d: ours avg snapshot %.3f >= qcow2 %.3f", sweep[i], ours[i].AvgTime, qcow[i].AvgTime)
		}
		if ours[i].Completion <= 0 || qcow[i].Completion <= 0 {
			t.Errorf("n=%d: non-positive completion", sweep[i])
		}
		if ours[i].AvgTime > ours[i].Completion+1e-9 {
			t.Errorf("n=%d: avg > completion", sweep[i])
		}
	}
	// Write pressure degrades our average as n grows.
	if ours[1].AvgTime <= ours[0].AvgTime {
		t.Errorf("ours avg snapshot did not degrade: %.3f -> %.3f", ours[0].AvgTime, ours[1].AvgTime)
	}
	if len(res.Tables()) != 2 {
		t.Fatal("Fig5 must render two panels")
	}
}

// TestFig67Shapes verifies §5.4's claims end to end through the
// harness: equal reads, ~2× writes, lower ops/s for the mirror path.
func TestFig67Shapes(t *testing.T) {
	res := RunFig67(workloads.DefaultBonnieConfig())
	if res.Ours.BlockWriteKBps < res.Local.BlockWriteKBps*3/2 {
		t.Errorf("mirror write %d not ~2x local %d", res.Ours.BlockWriteKBps, res.Local.BlockWriteKBps)
	}
	rr := float64(res.Ours.BlockReadKBps) / float64(res.Local.BlockReadKBps)
	if rr < 0.85 || rr > 1.15 {
		t.Errorf("read ratio %.2f, want ~1", rr)
	}
	if res.Ours.SeeksPerSec >= res.Local.SeeksPerSec || res.Ours.DeletesPerSec >= res.Local.DeletesPerSec {
		t.Error("mirror metadata ops not slower than local")
	}
	tables := res.Tables()
	if len(tables) != 2 {
		t.Fatal("Fig67 must render two tables")
	}
	if !strings.Contains(tables[0].String(), "BlockW") || !strings.Contains(tables[1].String(), "RndSeek") {
		t.Fatal("Fig6/7 tables missing rows")
	}
}

// TestFig8ShapesQuick verifies §5.5 on the scaled-down setup:
// uninterrupted completion ordering (ours < qcow2 < preprop) and a
// modest advantage for ours in the suspend/resume setting.
func TestFig8ShapesQuick(t *testing.T) {
	p := Quick()
	p.MaxInstances = 16
	res := RunFig8(p, 16)
	u := res.Completion[Uninterrupted]
	if !(u[OurApproach] < u[QcowOverPVFS] && u[QcowOverPVFS] < u[TaktukPreprop]) {
		t.Errorf("uninterrupted ordering wrong: ours=%.1f qcow=%.1f prep=%.1f",
			u[OurApproach], u[QcowOverPVFS], u[TaktukPreprop])
	}
	// Compute dominates: completions exceed the pure compute time.
	if u[OurApproach] < p.MonteCarlo.ComputeSeconds {
		t.Errorf("ours completion %.1f < compute %.1f", u[OurApproach], p.MonteCarlo.ComputeSeconds)
	}
	s := res.Completion[SuspendResume]
	if s[OurApproach] >= s[QcowOverPVFS] {
		t.Errorf("suspend/resume: ours %.1f not faster than qcow2 %.1f", s[OurApproach], s[QcowOverPVFS])
	}
	// Suspend/resume costs more than uninterrupted for both.
	for _, a := range []Approach{OurApproach, QcowOverPVFS} {
		if s[a] <= u[a] {
			t.Errorf("%v: suspend/resume %.1f <= uninterrupted %.1f", a, s[a], u[a])
		}
	}
	out := res.Table().String()
	if !strings.Contains(out, "Uninterrupted") || !strings.Contains(out, "Suspend/Resume") {
		t.Fatalf("Fig8 table malformed:\n%s", out)
	}
}

// TestDeterministicExperiments: identical parameters produce identical
// results bit for bit.
func TestDeterministicExperiments(t *testing.T) {
	p := Quick()
	p.MaxInstances = 8
	a := runFig4Point(p, 8, OurApproach)
	b := runFig4Point(p, 8, OurApproach)
	if a != b {
		t.Fatalf("nondeterministic fig4 point: %+v vs %+v", a, b)
	}
	sa := runFig5Point(p, 8, QcowOverPVFS)
	sb := runFig5Point(p, 8, QcowOverPVFS)
	if sa != sb {
		t.Fatalf("nondeterministic fig5 point: %+v vs %+v", sa, sb)
	}
	// The degraded scenario must be deterministic fault injection and
	// all: same seed, same victims, same kill times, same counters.
	dc := DegradedConfig{Instances: 8, Providers: 6, Kill: 2, Sharing: true}
	da := RunDegraded(p, dc)
	db := RunDegraded(p, dc)
	if da != db {
		t.Fatalf("nondeterministic degraded point: %+v vs %+v", da, db)
	}
}

// TestSeedSensitivity: a different seed changes details but not the
// qualitative outcome.
func TestSeedSensitivity(t *testing.T) {
	p := Quick()
	p.MaxInstances = 8
	p.Seed = 4242
	ours := runFig4Point(p, 8, OurApproach)
	qcow := runFig4Point(p, 8, QcowOverPVFS)
	if ours.Completion >= qcow.Completion {
		t.Fatalf("seed 4242 flipped the outcome: ours %.2f >= qcow %.2f", ours.Completion, qcow.Completion)
	}
}
