// Package qcow2 implements the copy-on-write image format of the
// paper's second baseline (§5.2 "qcow2 over PVFS"): a local image file
// holding a two-level cluster mapping (L1 → L2 tables → data clusters)
// over a read-only backing file.
//
// Behavioural fidelity to qemu's qcow2 matters for the comparison, so
// this implementation keeps the properties the paper's evaluation
// exercises:
//
//   - reads of unallocated clusters go to the backing file for exactly
//     the requested byte range — there is no copy-on-read and no
//     prefetching, so each scattered small read pays a backing-store
//     round trip (the root cause of Fig. 4(a)'s gap);
//   - the first write to a cluster triggers copy-on-write of the whole
//     cluster from the backing file;
//   - a snapshot is the qcow2 file itself (header + tables + allocated
//     clusters), which depends on the backing file — snapshots are not
//     standalone, unlike the mirror module's committed blobs.
package qcow2
