package qcow2

import (
	"bytes"
	"testing"
	"testing/quick"

	"blobvfs/internal/cluster"
)

// memBacking is a trivial in-memory backing file that counts accesses.
type memBacking struct {
	data  []byte
	reads int64
	bytes int64
}

func (m *memBacking) ReadAt(_ *cluster.Ctx, p []byte, off, n int64) error {
	m.reads++
	m.bytes += n
	if p != nil {
		copy(p[:n], m.data[off:off+n])
	}
	return nil
}

func (m *memBacking) Size() int64 { return int64(len(m.data)) }

func baseImage(size int) *memBacking {
	d := make([]byte, size)
	for i := range d {
		d[i] = byte(i*31 + 5)
	}
	return &memBacking{data: d}
}

func TestReadThroughExactRange(t *testing.T) {
	fab := cluster.NewLive(1)
	back := baseImage(1 << 20)
	fab.Run(func(ctx *cluster.Ctx) {
		img, err := Create(0, back, 64<<10, true)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 100)
		if _, err := 0, img.ReadAt(ctx, got, 5000, 100); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, back.data[5000:5100]) {
			t.Fatal("read-through data wrong")
		}
		// Exactly the requested bytes came from the backing store — no
		// prefetch (the defining difference from the mirror module).
		if back.bytes != 100 {
			t.Fatalf("backing bytes = %d, want 100 (no prefetch)", back.bytes)
		}
		// Reading again goes remote again: no copy-on-read.
		if _, err := 0, img.ReadAt(ctx, got, 5000, 100); err != nil {
			t.Fatal(err)
		}
		if back.reads != 2 {
			t.Fatalf("backing reads = %d, want 2 (no copy-on-read)", back.reads)
		}
	})
}

func TestCopyOnWriteFillsWholeCluster(t *testing.T) {
	fab := cluster.NewLive(1)
	back := baseImage(1 << 20)
	fab.Run(func(ctx *cluster.Ctx) {
		img, _ := Create(0, back, 64<<10, true)
		// Small write into cluster 3.
		if err := img.WriteAt(ctx, []byte{1, 2, 3}, 3*64<<10+100, 3); err != nil {
			t.Fatal(err)
		}
		st := img.Stats()
		if st.CoWFills != 1 {
			t.Fatalf("CoW fills = %d, want 1", st.CoWFills)
		}
		if back.bytes != 64<<10 {
			t.Fatalf("backing bytes = %d, want full cluster %d", back.bytes, 64<<10)
		}
		// Read around the write: cluster content = base except the patch.
		got := make([]byte, 64<<10)
		if err := img.ReadAt(ctx, got, 3*64<<10, 64<<10); err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), back.data[3*64<<10:4*64<<10]...)
		copy(want[100:], []byte{1, 2, 3})
		if !bytes.Equal(got, want) {
			t.Fatal("CoW cluster content wrong")
		}
		// The read was served locally: no new backing traffic.
		if back.reads != 1 {
			t.Fatalf("backing reads = %d, want 1 (allocated cluster reads are local)", back.reads)
		}
	})
}

func TestFullClusterWriteSkipsCoWFill(t *testing.T) {
	fab := cluster.NewLive(1)
	back := baseImage(1 << 20)
	fab.Run(func(ctx *cluster.Ctx) {
		img, _ := Create(0, back, 64<<10, true)
		if err := img.WriteAt(ctx, bytes.Repeat([]byte{9}, 64<<10), 0, 64<<10); err != nil {
			t.Fatal(err)
		}
		if img.Stats().CoWFills != 0 {
			t.Fatal("aligned full-cluster write triggered CoW fill")
		}
		if back.reads != 0 {
			t.Fatal("aligned full-cluster write read the backing store")
		}
	})
}

func TestFileBytesGrowsWithAllocation(t *testing.T) {
	fab := cluster.NewLive(1)
	back := baseImage(4 << 20)
	fab.Run(func(ctx *cluster.Ctx) {
		img, _ := Create(0, back, 64<<10, false)
		empty := img.FileBytes()
		// Dirty 15 MB worth? image only 4 MB; dirty 30 clusters.
		for i := 0; i < 30; i++ {
			if err := img.Write(ctx, int64(i)*64<<10, 1024); err != nil {
				t.Fatal(err)
			}
		}
		grown := img.FileBytes()
		wantMin := empty + 30*64<<10
		if grown < wantMin {
			t.Fatalf("FileBytes = %d after 30 allocations, want >= %d", grown, wantMin)
		}
		st := img.Stats()
		if st.AllocatedClusters != 30 {
			t.Fatalf("allocated = %d, want 30", st.AllocatedClusters)
		}
		if st.L2TablesAllocated != 1 {
			t.Fatalf("L2 tables = %d, want 1", st.L2TablesAllocated)
		}
	})
}

func TestValidation(t *testing.T) {
	fab := cluster.NewLive(1)
	back := baseImage(1 << 20)
	if _, err := Create(0, back, 1000, true); err == nil {
		t.Error("non-512-multiple cluster size accepted")
	}
	fab.Run(func(ctx *cluster.Ctx) {
		img, _ := Create(0, back, 64<<10, false)
		if err := img.Read(ctx, 1<<20-10, 100); err == nil {
			t.Error("read past end accepted")
		}
		if err := img.ReadAt(ctx, make([]byte, 10), 0, 10); err == nil {
			t.Error("data read on synthetic image accepted")
		}
	})
}

// TestMatchesFlatModel: random read/write sequences against the qcow2
// image must match a flat file initialized from the backing content.
func TestMatchesFlatModel(t *testing.T) {
	type op struct {
		Off, Len uint16
		Write    bool
		Seed     byte
	}
	const size = 48 << 10
	f := func(ops []op, csPow uint8) bool {
		clusterSize := 512 << (csPow % 5) // 512..8192
		fab := cluster.NewLive(1)
		back := baseImage(size)
		ok := true
		fab.Run(func(ctx *cluster.Ctx) {
			img, err := Create(0, back, clusterSize, true)
			if err != nil {
				ok = false
				return
			}
			model := append([]byte(nil), back.data...)
			for _, o := range ops {
				off := int64(o.Off) % size
				l := int64(o.Len)%7000 + 1
				if off+l > size {
					l = size - off
				}
				if o.Write {
					data := bytes.Repeat([]byte{o.Seed | 1}, int(l))
					if err := img.WriteAt(ctx, data, off, l); err != nil {
						ok = false
						return
					}
					copy(model[off:off+l], data)
				} else {
					got := make([]byte, l)
					if err := img.ReadAt(ctx, got, off, l); err != nil {
						ok = false
						return
					}
					if !bytes.Equal(got, model[off:off+l]) {
						ok = false
						return
					}
				}
			}
			got := make([]byte, size)
			if err := img.ReadAt(ctx, got, 0, size); err != nil {
				ok = false
				return
			}
			if !bytes.Equal(got, model) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
