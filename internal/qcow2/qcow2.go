package qcow2

import (
	"fmt"

	"blobvfs/internal/cluster"
)

// DefaultClusterSize is qemu's default qcow2 cluster size.
const DefaultClusterSize = 64 << 10

// l2Entries is the number of cluster mappings per L2 table: qemu packs
// clusterSize/8 eight-byte entries per table (an L2 table of 64 KiB
// clusters maps 512 MiB). Keeping the real geometry means table counts
// — and thus snapshot file sizes — scale like the real format.
func l2Entries(clusterSize int) int64 { return int64(clusterSize) / 8 }

// Backing is the read-only base image interface (implemented by a PVFS
// file in the baseline and by anything else in tests).
type Backing interface {
	// ReadAt reads [off, off+n) into p; p may be nil for cost-only reads.
	ReadAt(ctx *cluster.Ctx, p []byte, off, n int64) error
	// Size returns the backing image size.
	Size() int64
}

// Image is an open qcow2 image on a node's local disk.
type Image struct {
	node        cluster.NodeID
	clusterSize int64
	size        int64
	backing     Backing

	l1    []int32   // L1 entry → L2 table index, -1 if absent
	l2    [][]int64 // L2 tables → host cluster index, -1 if unallocated
	local []byte    // real mode data clusters, indexed by host cluster
	hosts int64     // allocated host clusters

	stats Stats
}

// Stats counts the image's I/O activity.
type Stats struct {
	Reads, Writes     int64
	BackingReads      int64 // requests to the backing store
	BackingBytes      int64 // bytes fetched from the backing store
	CoWFills          int64 // whole-cluster copy-on-write fills
	AllocatedClusters int64
	L2TablesAllocated int64
}

// Create makes an empty qcow2 image over backing on the given node.
// When real is true the image materializes data clusters in memory and
// serves actual bytes.
func Create(node cluster.NodeID, backing Backing, clusterSize int, real bool) (*Image, error) {
	if clusterSize <= 0 || clusterSize%512 != 0 {
		return nil, fmt.Errorf("qcow2: invalid cluster size %d", clusterSize)
	}
	size := backing.Size()
	clusters := (size + int64(clusterSize) - 1) / int64(clusterSize)
	l1len := (clusters + l2Entries(clusterSize) - 1) / l2Entries(clusterSize)
	img := &Image{
		node:        node,
		clusterSize: int64(clusterSize),
		size:        size,
		backing:     backing,
		l1:          make([]int32, l1len),
	}
	for i := range img.l1 {
		img.l1[i] = -1
	}
	if real {
		img.local = make([]byte, 0)
	}
	return img, nil
}

// Size returns the image's virtual size.
func (q *Image) Size() int64 { return q.size }

// Node returns the node holding the local qcow2 file.
func (q *Image) Node() cluster.NodeID { return q.node }

// Stats returns a copy of the counters.
func (q *Image) Stats() Stats { return q.stats }

// FileBytes returns the size of the qcow2 file itself: header, L1, L2
// tables and allocated data clusters. This is what the baseline copies
// to shared storage when snapshotting (§5.3).
func (q *Image) FileBytes() int64 {
	const header = 64 << 10 // header cluster + refcount structures, modeled flat
	tables := int64(len(q.l2)) * q.clusterSize
	return header + tables + q.hosts*q.clusterSize
}

// lookup returns the host cluster index for virtual cluster vc, or -1.
func (q *Image) lookup(vc int64) int64 {
	l2i := vc / l2Entries(int(q.clusterSize))
	if q.l1[l2i] < 0 {
		return -1
	}
	return q.l2[q.l1[l2i]][vc%l2Entries(int(q.clusterSize))]
}

// allocate maps virtual cluster vc to a fresh host cluster.
func (q *Image) allocate(vc int64) int64 {
	l2i := vc / l2Entries(int(q.clusterSize))
	if q.l1[l2i] < 0 {
		table := make([]int64, l2Entries(int(q.clusterSize)))
		for i := range table {
			table[i] = -1
		}
		q.l1[l2i] = int32(len(q.l2))
		q.l2 = append(q.l2, table)
		q.stats.L2TablesAllocated++
	}
	host := q.hosts
	q.hosts++
	q.l2[q.l1[l2i]][vc%l2Entries(int(q.clusterSize))] = host
	q.stats.AllocatedClusters++
	if q.local != nil {
		q.local = append(q.local, make([]byte, q.clusterSize)...)
	}
	return host
}

func (q *Image) check(p []byte, off, n int64) error {
	if off < 0 || n < 0 || off+n > q.size {
		return fmt.Errorf("qcow2: access [%d,%d) outside image of size %d", off, off+n, q.size)
	}
	if p != nil && q.local == nil {
		return fmt.Errorf("qcow2: data access on synthetic image")
	}
	if p != nil && int64(len(p)) < n {
		return fmt.Errorf("qcow2: buffer of %d bytes for %d-byte access", len(p), n)
	}
	return nil
}

// ReadAt reads [off, off+n) into p (nil ⇒ cost-only). Allocated
// clusters are served from the local file; unallocated ranges are read
// through to the backing store at request granularity.
func (q *Image) ReadAt(ctx *cluster.Ctx, p []byte, off, n int64) error {
	if err := q.check(p, off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	q.stats.Reads++
	pos := off
	for pos < off+n {
		vc := pos / q.clusterSize
		in := pos % q.clusterSize
		take := q.clusterSize - in
		if take > off+n-pos {
			take = off + n - pos
		}
		host := q.lookup(vc)
		if host >= 0 {
			// Local file read; page cache + local disk, charged cheap.
			if p != nil {
				copy(p[pos-off:pos-off+take], q.local[host*q.clusterSize+in:])
			}
		} else {
			var dst []byte
			if p != nil {
				dst = p[pos-off : pos-off+take]
			}
			if err := q.backing.ReadAt(ctx, dst, pos, take); err != nil {
				return err
			}
			q.stats.BackingReads++
			q.stats.BackingBytes += take
		}
		pos += take
	}
	return nil
}

// WriteAt writes [off, off+n) from p (nil ⇒ cost-only). First writes to
// a cluster copy the full cluster content from the backing store
// (copy-on-write), then overlay the new data; the local write is
// absorbed by the host write-back cache.
func (q *Image) WriteAt(ctx *cluster.Ctx, p []byte, off, n int64) error {
	if err := q.check(p, off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	q.stats.Writes++
	pos := off
	for pos < off+n {
		vc := pos / q.clusterSize
		in := pos % q.clusterSize
		take := q.clusterSize - in
		if take > off+n-pos {
			take = off + n - pos
		}
		host := q.lookup(vc)
		if host < 0 {
			host = q.allocate(vc)
			cstart := vc * q.clusterSize
			clen := q.clusterSize
			if cstart+clen > q.size {
				clen = q.size - cstart
			}
			if in != 0 || take < clen {
				// Partial cluster write: copy-on-write fill from backing.
				var fill []byte
				if q.local != nil {
					fill = q.local[host*q.clusterSize : host*q.clusterSize+clen]
				}
				if err := q.backing.ReadAt(ctx, fill, cstart, clen); err != nil {
					return err
				}
				q.stats.CoWFills++
				q.stats.BackingReads++
				q.stats.BackingBytes += clen
			}
		}
		if p != nil {
			copy(q.local[host*q.clusterSize+in:], p[pos-off:pos-off+take])
		}
		pos += take
	}
	// Local file write-back.
	ctx.DiskWriteAsync(q.node, n)
	return nil
}

// Read charges a cost-only read (synthetic workloads).
func (q *Image) Read(ctx *cluster.Ctx, off, n int64) error { return q.ReadAt(ctx, nil, off, n) }

// Write charges a cost-only write.
func (q *Image) Write(ctx *cluster.Ctx, off, n int64) error { return q.WriteAt(ctx, nil, off, n) }
