// Package blobvfs is the public façade of the repository: a versioned
// virtual file system for VM images, reproducing the HPDC'11 design of
// a BlobSeer-backed image store with per-node lazy mirroring
// (multideployment) and CLONE+COMMIT snapshotting (multisnapshotting).
//
// It is the single supported API. Everything underneath —
// internal/blob (the versioning chunk store), internal/mirror (the
// mirroring module), internal/p2p (cohort chunk sharing) — is wired
// together here and must not be imported directly; see docs/api.md for
// the surface and the migration table from the old internal wiring.
//
// # Model
//
// A Repo is an image repository deployed over a cluster Fabric: the
// provider nodes' local disks store fixed-size chunks, a version
// manager publishes immutable snapshots in total order, and segment
// trees shared across versions (shadowing) and lineages (cloning) make
// both COMMIT and CLONE metadata-cheap. Every Snapshot names one
// immutable image: a lineage (ImageID) and a version within it.
//
// A Disk is a snapshot mirrored on one node as the raw file a
// hypervisor would mount: reads fetch missing chunks lazily from the
// repository (or from cohort peers, with WithP2P), writes stay local
// until Commit publishes them as a new snapshot. Disks adapt to the
// standard library's io interfaces through Disk.IO.
//
// All cost-bearing operations take a *Ctx from the fabric the repo was
// opened on: a live fabric (real goroutines, real bytes, zero cost)
// for production-style use and tests, or the calibrated discrete-event
// simulation for the paper's experiments.
//
// # A minimal session
//
//	fab := blobvfs.NewLiveCluster(8)
//	repo, err := blobvfs.Open(fab, blobvfs.WithChunkSize(256<<10))
//	...
//	fab.Run(func(ctx *blobvfs.Ctx) {
//		base, _ := repo.Create(ctx, "debian", imageBytes)
//		disk, _ := repo.OpenDisk(ctx, ctx.Node(), base)
//		disk.WriteAt(ctx, patch, off)            // local modification
//		snap, _ := repo.Snapshot(ctx, disk, true) // CLONE+COMMIT → own lineage
//		repo.Tag("debian-configured", snap)
//		disk.Close(ctx)
//	})
//
// Failures carry typed sentinels (ErrNotFound, ErrOutOfRange,
// ErrVersionRetired, ...) wrapped with %w, so callers branch with
// errors.Is end-to-end through the façade.
package blobvfs

import (
	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/mirror"
	"blobvfs/internal/p2p"
)

// Aliases re-export the types that cross the façade boundary, so
// callers import only this package.
type (
	// Fabric is the cluster substrate a Repo deploys on (live or
	// simulated).
	Fabric = cluster.Fabric
	// Ctx is the context of one activity on a fabric; every
	// cost-bearing call takes one.
	Ctx = cluster.Ctx
	// NodeID numbers the cluster's nodes from 0.
	NodeID = cluster.NodeID
	// Task joins an activity spawned with Ctx.Go.
	Task = cluster.Task
	// LiveCluster is the zero-cost in-process fabric.
	LiveCluster = cluster.Live

	// ImageID identifies an image lineage.
	ImageID = blob.ID
	// Version is a 1-based snapshot number within a lineage.
	Version = blob.Version

	// FaultEvent schedules one node kill or revival at an absolute
	// virtual time; build plans with KillAt/ReviveAt (or, with a
	// topology, KillRackAt/KillZoneAt and their revive twins) and
	// install them with WithFaultPlan.
	FaultEvent = cluster.FaultEvent
	// FaultPlanError reports a redundant fault-plan transition (a kill
	// of a node already dead at that point in the plan, or a revive of
	// a live one); Open and ValidateFaults reject such plans with it.
	FaultPlanError = cluster.FaultPlanError

	// Topology arranges a cluster's nodes into zones and racks with
	// tiered links; install it with WithTopology (and, for modeled
	// tier contention, in the simulated fabric's cluster config).
	Topology = cluster.Topology
	// Tier is the locality distance between two nodes (TierLocal,
	// TierRack, TierZone, TierRemote); it indexes the per-tier
	// counters of P2PStats.TierHits.
	Tier = cluster.Tier

	// DiskStats is an open disk's access accounting.
	DiskStats = mirror.Stats
	// GCReport summarizes one garbage-collection cycle.
	GCReport = blob.GCReport
	// P2PConfig carries the cohort sharing protocol constants.
	P2PConfig = p2p.Config
	// P2PStats is a sharing cohort's hit/traffic accounting.
	P2PStats = p2p.Stats
)

// Locality tiers, nearest first; see Tier.
const (
	TierLocal  = cluster.TierLocal
	TierRack   = cluster.TierRack
	TierZone   = cluster.TierZone
	TierRemote = cluster.TierRemote
	// NumTiers sizes per-tier counter arrays (P2PStats.TierHits).
	NumTiers = cluster.NumTiers
)

// NewLiveCluster creates an in-process cluster of n nodes: real
// goroutines, real bytes, zero modeled cost.
func NewLiveCluster(nodes int) *LiveCluster { return cluster.NewLive(nodes) }

// KillAt returns the fault-plan event that fails node at virtual time
// t (seconds).
func KillAt(t float64, node NodeID) FaultEvent { return cluster.KillAt(t, node) }

// ReviveAt returns the fault-plan event that brings node back at
// virtual time t (seconds).
func ReviveAt(t float64, node NodeID) FaultEvent { return cluster.ReviveAt(t, node) }

// KillRackAt returns the fault-plan event that fails every node of the
// given rack (global rack index, see Topology.Rack) at virtual time t.
// Rack- and zone-scoped events need a repo opened with WithTopology;
// they expand to one event per member node when the plan is armed.
func KillRackAt(t float64, rack int) FaultEvent { return cluster.KillRackAt(t, rack) }

// ReviveRackAt returns the event that brings a whole rack back at
// virtual time t.
func ReviveRackAt(t float64, rack int) FaultEvent { return cluster.ReviveRackAt(t, rack) }

// KillZoneAt returns the fault-plan event that fails every node of the
// given zone at virtual time t. See KillRackAt for the topology
// requirement.
func KillZoneAt(t float64, zone int) FaultEvent { return cluster.KillZoneAt(t, zone) }

// ReviveZoneAt returns the event that brings a whole zone back at
// virtual time t.
func ReviveZoneAt(t float64, zone int) FaultEvent { return cluster.ReviveZoneAt(t, zone) }

// ValidateFaults checks a fault plan against a cluster size and
// topology without opening a repo — the same validation Open performs
// for WithFaultPlan: event times, node/rack/zone ranges, the topology
// requirement of scoped events, and redundant transitions (rejected
// with a typed *FaultPlanError). Pass the zero Topology for a flat
// cluster.
func ValidateFaults(events []FaultEvent, nodes int, topo Topology) error {
	return cluster.ValidateFaults(events, nodes, topo)
}
