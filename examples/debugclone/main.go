// Debugclone reenacts the debugging scenario of the paper's §3.2:
// a distributed application is about to hit a bug that only appears
// in large deployments; re-running it from scratch for every fix
// attempt would be prohibitively expensive. Instead, the deployment
// is snapshotted right before the bug triggers; each fix attempt
// CLONEs that snapshot (an O(1) metadata operation — no data is
// copied), patches the clone, and resumes from it. Broken attempts
// are simply discarded.
//
// The "application" here computes a running checksum into its image;
// the "bug" is a corrupted configuration block that makes the final
// stage fail. Fix candidates overwrite that block with different
// values; only one is correct.
//
// Run with: go run ./examples/debugclone
package main

import (
	"fmt"
	"log"

	"blobvfs"
)

const (
	imageSize = 1 << 20
	configOff = 64 << 10 // the corrupted configuration block
	stateOff  = 512 << 10
)

// runStage1 simulates the long first phase of the application: it
// produces state the later phase depends on.
func runStage1(ctx *blobvfs.Ctx, disk *blobvfs.Disk) error {
	state := []byte("expensive-intermediate-state")
	_, err := disk.WriteAt(ctx, state, stateOff)
	return err
}

// runStage2 is the phase that crashes when the config block is bad.
func runStage2(ctx *blobvfs.Ctx, disk *blobvfs.Disk) error {
	cfg := make([]byte, 8)
	if _, err := disk.ReadAt(ctx, cfg, configOff); err != nil {
		return err
	}
	if string(cfg) != "magic=42" {
		return fmt.Errorf("stage 2 crashed: bad config %q", cfg)
	}
	state := make([]byte, 28)
	if _, err := disk.ReadAt(ctx, state, stateOff); err != nil {
		return err
	}
	if string(state) != "expensive-intermediate-state" {
		return fmt.Errorf("stage 2 crashed: lost intermediate state")
	}
	return nil
}

func main() {
	fab := blobvfs.NewLiveCluster(4)
	repo, err := blobvfs.Open(fab, blobvfs.WithChunkSize(16<<10))
	if err != nil {
		log.Fatal(err)
	}

	fab.Run(func(ctx *blobvfs.Ctx) {
		// Ship an image whose config block is corrupted — the bug.
		base := make([]byte, imageSize)
		copy(base[configOff:], "magic=7!") // wrong
		ref, err := repo.Create(ctx, "app", base)
		if err != nil {
			log.Fatal(err)
		}

		// Run stage 1 and snapshot right before the failing stage.
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			log.Fatal(err)
		}
		if err := runStage1(ctx, disk); err != nil {
			log.Fatal(err)
		}
		preBug, err := repo.Snapshot(ctx, disk, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint taken before the bug: image %d v%d\n", preBug.Image, preBug.Version)

		// Confirm the bug reproduces from the checkpoint.
		if err := runStage2(ctx, disk); err != nil {
			fmt.Println("reproduced:", err)
		} else {
			log.Fatal("bug did not reproduce?")
		}

		// Iterate fix candidates, each on its own clone of the
		// checkpoint. Clones share all content: three attempts cost
		// three metadata nodes, not three images.
		fixes := [][]byte{[]byte("magic=41"), []byte("magic=43"), []byte("magic=42")}
		for i, fix := range fixes {
			clone, err := repo.Clone(ctx, preBug)
			if err != nil {
				log.Fatal(err)
			}
			attempt, err := repo.OpenDisk(ctx, ctx.Node(), clone)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := attempt.WriteAt(ctx, fix, configOff); err != nil {
				log.Fatal(err)
			}
			if err := runStage2(ctx, attempt); err != nil {
				fmt.Printf("fix %d (%q): still broken: %v\n", i+1, fix, err)
				continue
			}
			fixed, err := attempt.Commit(ctx)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("fix %d (%q): works — published as image %d v%d; application resumes\n",
				i+1, fix, fixed.Image, fixed.Version)
			break
		}
		fmt.Printf("repository now stores %d chunks for %d logical images\n",
			repo.Stats().Chunks, 1+1+len(fixes))
	})
}
