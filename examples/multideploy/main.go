// Multideploy: the paper's headline experiment in miniature. It
// simulates concurrently instantiating a cluster of VMs from one
// image under the three strategies of §5.2 — taktuk prepropagation,
// qcow2 over PVFS, and the lazy mirroring approach — and prints the
// per-instance boot time, completion time, and network traffic for
// each, as in Fig. 4.
//
// Run with: go run ./examples/multideploy [-n 24]
package main

import (
	"flag"
	"fmt"
	"os"

	"blobvfs"
	"blobvfs/internal/experiments"
	"blobvfs/internal/metrics"
)

func main() {
	n := flag.Int("n", 24, "number of VM instances to deploy")
	full := flag.Bool("full", false, "use the paper's full parameters (2 GB image; slower)")
	flag.Parse()

	p := experiments.Quick()
	p.MaxInstances = *n
	if *full {
		p = experiments.Default()
		if *n > p.MaxInstances {
			p.MaxInstances = *n
		}
	}

	table := &metrics.Table{
		Title:   fmt.Sprintf("multideployment of %d instances (image %d MB)", *n, p.ImageSize>>20),
		Columns: []string{"strategy", "avg boot (s)", "completion (s)", "traffic (GB)"},
	}
	for _, a := range []experiments.Approach{
		experiments.TaktukPreprop, experiments.QcowOverPVFS, experiments.OurApproach,
	} {
		env := experiments.NewEnv(p, *n, a)
		env.Run(func(ctx *blobvfs.Ctx) {
			dep, err := env.Orch.Deploy(ctx)
			if err != nil {
				fmt.Fprintln(os.Stderr, "deploy failed:", err)
				os.Exit(1)
			}
			boots := metrics.Summarize(dep.BootTimes())
			table.AddRow(a.String(),
				fmt.Sprintf("%.2f", boots.Mean),
				fmt.Sprintf("%.2f", dep.Completion),
				fmt.Sprintf("%.3f", float64(env.Fab.NetTraffic())/1e9))
		})
	}
	table.Fprint(os.Stdout)
	fmt.Println("\nNote how the lazy schemes skip the broadcast entirely and fetch")
	fmt.Println("only the boot working set; the mirroring module's whole-chunk")
	fmt.Println("prefetch is what separates it from qcow2's read-through.")
}
