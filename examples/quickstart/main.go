// Quickstart: the smallest end-to-end tour of the library's public
// API. It deploys the storage service on an in-process "live" cluster
// with real bytes, uploads a VM image, mirrors it on a node, makes
// local modifications, takes a CLONE+COMMIT snapshot, and downloads
// the snapshot back — verifying shadowing and isolation along the way.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"blobvfs/internal/cluster"
	"blobvfs/internal/core"
)

func main() {
	// An 8-node cluster whose local disks form the image repository.
	fab := cluster.NewLive(8)
	store := core.New(core.Options{Fabric: fab, ChunkSize: 64 << 10})

	fab.Run(func(ctx *cluster.Ctx) {
		// 1. The cloud client uploads a (toy) 4 MB base image.
		base := make([]byte, 4<<20)
		for i := range base {
			base[i] = byte(i % 251)
		}
		ref, err := store.UploadBytes(ctx, "debian-base", base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("uploaded %q as blob %d v%d (%d bytes, striped over %d nodes)\n",
			"debian-base", ref.Blob, ref.Version, len(base), fab.Nodes())

		// 2. A compute node mirrors the image: the hypervisor sees a
		// plain raw file; content is fetched lazily on first access.
		task := ctx.Go("vm", 3, func(cc *cluster.Ctx) {
			img, err := store.Open(cc, ref, true)
			if err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, 512)
			if _, err := img.ReadAt(cc, buf, 0); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("boot sector read; %d chunk(s) fetched on demand\n",
				img.Stats().RemoteChunkFetches)

			// 3. The instance modifies its disk locally.
			patch := []byte("instance-local configuration data")
			if _, err := img.WriteAt(cc, patch, 1<<20); err != nil {
				log.Fatal(err)
			}

			// 4. CLONE + COMMIT: the instance's state becomes a fully
			// independent snapshot that shares all unmodified content.
			snap, err := store.Snapshot(cc, img, true)
			if err != nil {
				log.Fatal(err)
			}
			store.Tag("debian-configured", snap)
			fmt.Printf("snapshot published as blob %d v%d (committed %d chunk(s), %d shared)\n",
				snap.Blob, snap.Version, img.Stats().CommittedChunks,
				int64(len(base)/(64<<10))-img.Stats().CommittedChunks)

			// 5. Download the snapshot anywhere and verify.
			got := make([]byte, len(base))
			if err := store.Download(cc, snap, got); err != nil {
				log.Fatal(err)
			}
			want := append([]byte(nil), base...)
			copy(want[1<<20:], patch)
			if !bytes.Equal(got, want) {
				log.Fatal("snapshot contents wrong")
			}
			if err := store.Download(cc, ref, got); err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, base) {
				log.Fatal("base image was modified — shadowing broken")
			}
			fmt.Println("verified: snapshot standalone, base image untouched")
		})
		ctx.Wait(task)
	})
	fmt.Printf("total network traffic: %.1f KB\n", float64(fab.NetTraffic())/1024)
}
