// Quickstart: the smallest end-to-end tour of the public blobvfs API.
// It deploys the storage service on an in-process "live" cluster with
// real bytes, uploads a VM image, mirrors it on a node, makes local
// modifications, takes a CLONE+COMMIT snapshot, and downloads the
// snapshot back — verifying shadowing and isolation along the way.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"blobvfs"
)

func main() {
	// An 8-node cluster whose local disks form the image repository.
	fab := blobvfs.NewLiveCluster(8)
	repo, err := blobvfs.Open(fab, blobvfs.WithChunkSize(64<<10))
	if err != nil {
		log.Fatal(err)
	}

	fab.Run(func(ctx *blobvfs.Ctx) {
		// 1. The cloud client uploads a (toy) 4 MB base image.
		base := make([]byte, 4<<20)
		for i := range base {
			base[i] = byte(i % 251)
		}
		ref, err := repo.Create(ctx, "debian-base", base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("uploaded %q as image %d v%d (%d bytes, striped over %d nodes)\n",
			"debian-base", ref.Image, ref.Version, len(base), fab.Nodes())

		// 2. A compute node mirrors the image: the hypervisor sees a
		// plain raw file; content is fetched lazily on first access.
		task := ctx.Go("vm", 3, func(cc *blobvfs.Ctx) {
			disk, err := repo.OpenDisk(cc, 3, ref)
			if err != nil {
				log.Fatal(err)
			}
			// The std-io binding composes with the standard library:
			// read the boot sector through an io.SectionReader.
			buf := make([]byte, 512)
			if _, err := io.ReadFull(io.NewSectionReader(disk.IO(cc), 0, 512), buf); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("boot sector read; %d chunk(s) fetched on demand\n",
				disk.Stats().RemoteChunkFetches)

			// 3. The instance modifies its disk locally.
			patch := []byte("instance-local configuration data")
			if _, err := disk.WriteAt(cc, patch, 1<<20); err != nil {
				log.Fatal(err)
			}

			// 4. CLONE + COMMIT: the instance's state becomes a fully
			// independent snapshot that shares all unmodified content.
			snap, err := repo.Snapshot(cc, disk, true)
			if err != nil {
				log.Fatal(err)
			}
			repo.Tag("debian-configured", snap)
			fmt.Printf("snapshot published as image %d v%d (committed %d chunk(s), %d shared)\n",
				snap.Image, snap.Version, disk.Stats().CommittedChunks,
				int64(len(base)/(64<<10))-disk.Stats().CommittedChunks)

			// 5. Download the snapshot anywhere and verify.
			got := make([]byte, len(base))
			if err := repo.Download(cc, snap, got); err != nil {
				log.Fatal(err)
			}
			want := append([]byte(nil), base...)
			copy(want[1<<20:], patch)
			if !bytes.Equal(got, want) {
				log.Fatal("snapshot contents wrong")
			}
			if err := repo.Download(cc, ref, got); err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, base) {
				log.Fatal("base image was modified — shadowing broken")
			}
			fmt.Println("verified: snapshot standalone, base image untouched")
			disk.Close(cc)
		})
		ctx.Wait(task)
	})
	fmt.Printf("total network traffic: %.1f KB\n", float64(fab.NetTraffic())/1024)
}
