// Webfarm exercises the read-your-writes access pattern of the
// paper's §2.3 and §5.4: a fleet of virtualized web servers, each
// appending request logs and maintaining an object cache inside its
// VM image, with periodic global snapshots of the whole deployment
// (checkpointing, §3.2). All instances mirror the same base image;
// each snapshot stores only that instance's modifications. At the
// end, keep-last-K retention retires the older snapshot rounds and a
// garbage-collection cycle reclaims the storage only they referenced.
//
// Run with: go run ./examples/webfarm [-servers 6] [-requests 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"blobvfs"
)

const (
	imageSize = 2 << 20
	logOff    = 1 << 20 // log region inside the image
	cacheOff  = 1536 << 10
)

func main() {
	servers := flag.Int("servers", 6, "number of web server instances")
	requests := flag.Int("requests", 200, "requests handled per server")
	rounds := flag.Int("snapshots", 3, "global snapshot rounds")
	keep := flag.Int("keep", 1, "keep-last-K retention window applied at the end")
	flag.Parse()

	fab := blobvfs.NewLiveCluster(*servers)
	repo, err := blobvfs.Open(fab,
		blobvfs.WithChunkSize(32<<10),
		blobvfs.WithRetention(*keep))
	if err != nil {
		log.Fatal(err)
	}

	fab.Run(func(ctx *blobvfs.Ctx) {
		base := make([]byte, imageSize)
		copy(base, "web-server-os-image")
		ref, err := repo.Create(ctx, "webserver", base)
		if err != nil {
			log.Fatal(err)
		}

		// Launch the farm: one instance per node.
		disks := make([]*blobvfs.Disk, *servers)
		var boot []blobvfs.Task
		for s := 0; s < *servers; s++ {
			s := s
			boot = append(boot, ctx.Go("server", blobvfs.NodeID(s), func(cc *blobvfs.Ctx) {
				disk, err := repo.OpenDisk(cc, blobvfs.NodeID(s), ref)
				if err != nil {
					log.Fatal(err)
				}
				disks[s] = disk
			}))
		}
		ctx.WaitAll(boot)

		// Serve traffic with periodic global snapshots.
		for round := 1; round <= *rounds; round++ {
			var serve []blobvfs.Task
			for s := 0; s < *servers; s++ {
				s := s
				serve = append(serve, ctx.Go("traffic", blobvfs.NodeID(s), func(cc *blobvfs.Ctx) {
					disk := disks[s]
					logPos := int64(logOff)
					for r := 0; r < *requests; r++ {
						// Append a log line...
						line := []byte(fmt.Sprintf("srv%d round%d req%04d GET /item/%d\n", s, round, r, r%17))
						if _, err := disk.WriteAt(cc, line, logPos); err != nil {
							log.Fatal(err)
						}
						logPos += int64(len(line))
						// ...update the object cache...
						entry := []byte(fmt.Sprintf("obj-%02d:v%d", r%13, round))
						if _, err := disk.WriteAt(cc, entry, cacheOff+int64(r%13)*64); err != nil {
							log.Fatal(err)
						}
						// ...and read our own cache back (read-your-writes).
						got := make([]byte, len(entry))
						if _, err := disk.ReadAt(cc, got, cacheOff+int64(r%13)*64); err != nil {
							log.Fatal(err)
						}
						if string(got) != string(entry) {
							log.Fatalf("read-your-writes violated: %q != %q", got, entry)
						}
					}
				}))
			}
			ctx.WaitAll(serve)

			// Global snapshot: CLONE (first round) then COMMIT on every
			// instance, concurrently — the multisnapshotting pattern.
			var snap []blobvfs.Task
			for s := 0; s < *servers; s++ {
				s := s
				snap = append(snap, ctx.Go("snapshot", blobvfs.NodeID(s), func(cc *blobvfs.Ctx) {
					fresh := disks[s].Image() == ref.Image
					r, err := repo.Snapshot(cc, disks[s], fresh)
					if err != nil {
						log.Fatal(err)
					}
					repo.Tag(fmt.Sprintf("webserver-%d-round-%d", s, round), r)
				}))
			}
			ctx.WaitAll(snap)
			st := repo.Stats()
			fmt.Printf("round %d: snapshotted %d instances; repository holds %d chunks (%.1f MB) for %d snapshots\n",
				round, *servers, st.Chunks, float64(st.StoredBytes)/1e6, *servers*round+1)
		}

		// Show per-instance mirroring statistics.
		var fetches, gapFills, committed int64
		for _, disk := range disks {
			st := disk.Stats()
			fetches += st.RemoteChunkFetches
			gapFills += st.GapFills
			committed += st.CommittedChunks
		}
		fmt.Printf("totals: %d remote chunk fetches, %d gap fills, %d chunks committed\n",
			fetches, gapFills, committed)
		full := int64(*servers*(*rounds))*int64(imageSize)/1e6 + int64(imageSize)/1e6
		fmt.Printf("naive full-image snapshots would have stored ~%d MB; shadowing stored %.1f MB\n",
			full, float64(repo.Stats().StoredBytes)/1e6)

		// Lifecycle epilogue: retire everything older than the newest
		// keep snapshots of each server (the disks pin what they still
		// mirror) and reclaim the storage only those rounds referenced.
		retiredTotal := 0
		for _, disk := range disks {
			n, err := repo.RetireOld(ctx, disk, 0) // 0 → the WithRetention default
			if err != nil {
				log.Fatal(err)
			}
			retiredTotal += n
		}
		rep, err := repo.GC(ctx)
		if err != nil {
			log.Fatal(err)
		}
		st := repo.Stats()
		fmt.Printf("retention retired %d old snapshot versions; GC reclaimed %d chunks (%.1f MB) — %d chunks (%.1f MB) remain\n",
			retiredTotal, rep.FreedChunks, float64(rep.FreedBytes)/1e6, st.Chunks, float64(st.StoredBytes)/1e6)
	})
}
