// Webfarm exercises the read-your-writes access pattern of the
// paper's §2.3 and §5.4: a fleet of virtualized web servers, each
// appending request logs and maintaining an object cache inside its
// VM image, with periodic global snapshots of the whole deployment
// (checkpointing, §3.2). All instances mirror the same base image;
// each snapshot stores only that instance's modifications.
//
// Run with: go run ./examples/webfarm [-servers 6] [-requests 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"blobvfs/internal/cluster"
	"blobvfs/internal/core"
	"blobvfs/internal/mirror"
)

const (
	imageSize = 2 << 20
	logOff    = 1 << 20 // log region inside the image
	cacheOff  = 1536 << 10
)

func main() {
	servers := flag.Int("servers", 6, "number of web server instances")
	requests := flag.Int("requests", 200, "requests handled per server")
	rounds := flag.Int("snapshots", 3, "global snapshot rounds")
	flag.Parse()

	fab := cluster.NewLive(*servers)
	store := core.New(core.Options{Fabric: fab, ChunkSize: 32 << 10})

	fab.Run(func(ctx *cluster.Ctx) {
		base := make([]byte, imageSize)
		copy(base, "web-server-os-image")
		ref, err := store.UploadBytes(ctx, "webserver", base)
		if err != nil {
			log.Fatal(err)
		}

		// Launch the farm: one instance per node.
		images := make([]*mirror.Image, *servers)
		var boot []cluster.Task
		for s := 0; s < *servers; s++ {
			s := s
			boot = append(boot, ctx.Go("server", cluster.NodeID(s), func(cc *cluster.Ctx) {
				img, err := store.Open(cc, ref, true)
				if err != nil {
					log.Fatal(err)
				}
				images[s] = img
			}))
		}
		ctx.WaitAll(boot)

		// Serve traffic with periodic global snapshots.
		for round := 1; round <= *rounds; round++ {
			var serve []cluster.Task
			for s := 0; s < *servers; s++ {
				s := s
				serve = append(serve, ctx.Go("traffic", cluster.NodeID(s), func(cc *cluster.Ctx) {
					img := images[s]
					logPos := int64(logOff)
					for r := 0; r < *requests; r++ {
						// Append a log line...
						line := []byte(fmt.Sprintf("srv%d round%d req%04d GET /item/%d\n", s, round, r, r%17))
						if _, err := img.WriteAt(cc, line, logPos); err != nil {
							log.Fatal(err)
						}
						logPos += int64(len(line))
						// ...update the object cache...
						entry := []byte(fmt.Sprintf("obj-%02d:v%d", r%13, round))
						if _, err := img.WriteAt(cc, entry, cacheOff+int64(r%13)*64); err != nil {
							log.Fatal(err)
						}
						// ...and read our own cache back (read-your-writes).
						got := make([]byte, len(entry))
						if _, err := img.ReadAt(cc, got, cacheOff+int64(r%13)*64); err != nil {
							log.Fatal(err)
						}
						if string(got) != string(entry) {
							log.Fatalf("read-your-writes violated: %q != %q", got, entry)
						}
					}
				}))
			}
			ctx.WaitAll(serve)

			// Global snapshot: CLONE (first round) then COMMIT on every
			// instance, concurrently — the multisnapshotting pattern.
			var snap []cluster.Task
			for s := 0; s < *servers; s++ {
				s := s
				snap = append(snap, ctx.Go("snapshot", cluster.NodeID(s), func(cc *cluster.Ctx) {
					fresh := images[s].BlobID() == ref.Blob
					r, err := store.Snapshot(cc, images[s], fresh)
					if err != nil {
						log.Fatal(err)
					}
					store.Tag(fmt.Sprintf("webserver-%d-round-%d", s, round), r)
				}))
			}
			ctx.WaitAll(snap)
			fmt.Printf("round %d: snapshotted %d instances; repository holds %d chunks (%.1f MB) for %d snapshots\n",
				round, *servers, store.System().Providers.ChunkCount(),
				float64(store.System().Providers.StoredBytes())/1e6, *servers*round+1)
		}

		// Show per-instance mirroring statistics.
		var fetches, gapFills, committed int64
		for _, img := range images {
			st := img.Stats()
			fetches += st.RemoteChunkFetches
			gapFills += st.GapFills
			committed += st.CommittedChunks
		}
		fmt.Printf("totals: %d remote chunk fetches, %d gap fills, %d chunks committed\n",
			fetches, gapFills, committed)
		full := int64(*servers*(*rounds))*int64(imageSize)/1e6 + int64(imageSize)/1e6
		fmt.Printf("naive full-image snapshots would have stored ~%d MB; shadowing stored %.1f MB\n",
			full, float64(store.System().Providers.StoredBytes())/1e6)
	})
}
