package blobvfs_test

import (
	"context"
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestExamplesBuildAndRun builds and runs every examples/* program on
// the live fabric. The examples are executable documentation of the
// public API (quickstart, debugclone, multideploy, webfarm); this
// smoke test is their only coverage, so a refactor that breaks one
// fails here instead of on a reader's machine. Each program must exit
// cleanly and print something within the timeout.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out; output:\n%s", name, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\noutput:\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s printed nothing", name)
			}
		})
	}
}
