package blobvfs

import (
	"io"

	reposync "blobvfs/internal/sync"
)

// ExportStats summarizes an exported archive: what the delta shipped
// (chunks, tree nodes, logical bytes) versus the full-image baseline.
type ExportStats = reposync.ExportStats

// ImportStats summarizes an applied archive, including how many
// shipped chunks deduplicated against content already present.
type ImportStats = reposync.ImportStats

// SyncUUID returns the identity this repository stamps into exported
// archives (see WithSyncUUID).
func (r *Repo) SyncUUID() uint64 { return r.syncer.UUID() }

// Export serializes the delta between two versions of an image into a
// portable archive: everything versions (from, to] reference that the
// base version `from` does not — the exact set of tree nodes and
// chunks shadowing created for those commits. from 0 exports the full
// lineage through `to`. Base, target and every live intermediate are
// pinned for the duration of the stream, so a concurrent GC cannot
// reclaim content the archive still needs; intermediates already
// retired here ship as placeholders that keep the version numbering
// aligned on the importing side. Each successful export advances the
// image's monotone sequence number (stamped into the header; failed
// exports burn none), which is what lets the importer detect gaps.
func (r *Repo) Export(ctx *Ctx, w io.Writer, id ImageID, from, to Version) (ExportStats, error) {
	if err := r.checkOpen(); err != nil {
		return ExportStats{}, err
	}
	return reposync.Export(ctx, r.sys, r.syncer, w, id, from, to)
}

// Import validates and applies an archive produced by another
// repository's Export. Validation runs strictly before mutation — a
// rejected archive (ErrArchiveCorrupt, ErrSourceMismatch,
// ErrSequenceGap, ErrBaseMissing) leaves the repository untouched. A
// full archive (base 0) creates a new image; a delta must be the
// exact successor of the last archive applied for that image, and its
// base version must still be live here. Shipped chunks dedup against
// content already present (zero provider writes for shared content,
// with WithDedup), everything publishes through the batched write
// path, and the imported versions register with the version manager —
// OpenDisk, retention and GC treat them exactly like local commits.
func (r *Repo) Import(ctx *Ctx, src io.Reader) (ImportStats, error) {
	if err := r.checkOpen(); err != nil {
		return ImportStats{}, err
	}
	return reposync.Import(ctx, r.sys, r.syncer, src)
}
