// Package bench regenerates every table and figure of the paper's
// evaluation (§5) as Go benchmarks. Each benchmark runs the
// corresponding experiment on the simulated cluster and reports the
// figure's headline values as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints, for every panel of Fig. 4/5/6/7/8, the same quantities the
// paper plots. Benchmarks default to the scaled-down Quick parameter
// set so the full suite stays fast; the *PaperScale benchmarks run the
// flagship 110-instance configuration with the full 2 GB image.
package blobvfs_test

import (
	"fmt"
	"testing"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/experiments"
	"blobvfs/internal/sim"
	"blobvfs/internal/sim/flownet"
	"blobvfs/internal/workloads"
)

func quickParams(maxInstances int) experiments.Params {
	p := experiments.Quick()
	p.MaxInstances = maxInstances
	return p
}

// BenchmarkFig4MultiDeployment regenerates Fig. 4(a), (b) and (d) at
// one sweep point per approach: average boot time, completion time and
// network traffic of a concurrent deployment.
func BenchmarkFig4MultiDeployment(b *testing.B) {
	const n = 16
	for _, a := range []experiments.Approach{
		experiments.TaktukPreprop, experiments.QcowOverPVFS, experiments.OurApproach,
	} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			p := quickParams(n)
			var last experiments.Fig4Result
			for i := 0; i < b.N; i++ {
				last = *experiments.RunFig4(p, []int{n})
			}
			pt := last.Series[a][0]
			b.ReportMetric(pt.AvgBoot, "avgBoot-s")
			b.ReportMetric(pt.Completion, "completion-s")
			b.ReportMetric(pt.TrafficGB*1e3, "traffic-MB")
		})
	}
}

// BenchmarkFig4PaperScale runs the flagship point of the paper's
// abstract: 110 concurrent instances, 2 GB image. The reported
// speedups are Fig. 4(c)'s rightmost values.
func BenchmarkFig4PaperScale(b *testing.B) {
	p := experiments.Default()
	var ours, qcow, prep experiments.Fig4Point
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig4(p, []int{110})
		ours = r.Series[experiments.OurApproach][0]
		qcow = r.Series[experiments.QcowOverPVFS][0]
		prep = r.Series[experiments.TaktukPreprop][0]
	}
	b.ReportMetric(prep.Completion/ours.Completion, "speedup-vs-taktuk")
	b.ReportMetric(qcow.Completion/ours.Completion, "speedup-vs-qcow2")
	b.ReportMetric((1-ours.TrafficGB/prep.TrafficGB)*100, "traffic-reduction-%")
	b.ReportMetric(ours.Completion, "ours-completion-s")
}

// BenchmarkFig5MultiSnapshotting regenerates Fig. 5(a)/(b): the
// concurrent snapshot of all instances, ~15 MB of local modifications
// each (scaled down under Quick parameters).
func BenchmarkFig5MultiSnapshotting(b *testing.B) {
	const n = 16
	for _, a := range []experiments.Approach{
		experiments.QcowOverPVFS, experiments.OurApproach,
	} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			p := quickParams(n)
			var last experiments.Fig5Result
			for i := 0; i < b.N; i++ {
				last = *experiments.RunFig5(p, []int{n})
			}
			pt := last.Series[a][0]
			b.ReportMetric(pt.AvgTime, "avgSnapshot-s")
			b.ReportMetric(pt.Completion, "completion-s")
		})
	}
}

// BenchmarkFig5PaperScale runs the 110-instance multisnapshotting
// point with full parameters (15 MB diffs).
func BenchmarkFig5PaperScale(b *testing.B) {
	p := experiments.Default()
	var ours, qcow experiments.Fig5Point
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig5(p, []int{110})
		ours = r.Series[experiments.OurApproach][0]
		qcow = r.Series[experiments.QcowOverPVFS][0]
	}
	b.ReportMetric(ours.AvgTime, "ours-avg-s")
	b.ReportMetric(qcow.AvgTime, "qcow2-avg-s")
	b.ReportMetric(ours.Completion, "ours-completion-s")
	b.ReportMetric(qcow.Completion, "qcow2-completion-s")
}

// BenchmarkFig6Bonnie regenerates Fig. 6: Bonnie++ sustained
// throughput through both local I/O paths (KB/s, 8 KB blocks).
func BenchmarkFig6Bonnie(b *testing.B) {
	var r *experiments.Fig67Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig67(workloads.DefaultBonnieConfig())
	}
	b.ReportMetric(float64(r.Local.BlockWriteKBps), "local-BlockW-KBps")
	b.ReportMetric(float64(r.Ours.BlockWriteKBps), "ours-BlockW-KBps")
	b.ReportMetric(float64(r.Local.BlockReadKBps), "local-BlockR-KBps")
	b.ReportMetric(float64(r.Ours.BlockReadKBps), "ours-BlockR-KBps")
	b.ReportMetric(float64(r.Local.BlockRewrKBps), "local-BlockO-KBps")
	b.ReportMetric(float64(r.Ours.BlockRewrKBps), "ours-BlockO-KBps")
}

// BenchmarkFig7BonnieOps regenerates Fig. 7: Bonnie++ metadata
// operations per second through both paths.
func BenchmarkFig7BonnieOps(b *testing.B) {
	var r *experiments.Fig67Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig67(workloads.DefaultBonnieConfig())
	}
	b.ReportMetric(float64(r.Local.SeeksPerSec), "local-RndSeek-ops")
	b.ReportMetric(float64(r.Ours.SeeksPerSec), "ours-RndSeek-ops")
	b.ReportMetric(float64(r.Local.CreatesPerSec), "local-CreatF-ops")
	b.ReportMetric(float64(r.Ours.CreatesPerSec), "ours-CreatF-ops")
	b.ReportMetric(float64(r.Local.DeletesPerSec), "local-DelF-ops")
	b.ReportMetric(float64(r.Ours.DeletesPerSec), "ours-DelF-ops")
}

// BenchmarkFig8MonteCarlo regenerates Fig. 8: completion time of the
// Monte Carlo deployment in the uninterrupted and suspend/resume
// settings (Quick parameters, 16 workers).
func BenchmarkFig8MonteCarlo(b *testing.B) {
	p := quickParams(16)
	var r *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig8(p, 16)
	}
	u := r.Completion[experiments.Uninterrupted]
	s := r.Completion[experiments.SuspendResume]
	b.ReportMetric(u[experiments.TaktukPreprop], "uninterrupted-preprop-s")
	b.ReportMetric(u[experiments.QcowOverPVFS], "uninterrupted-qcow2-s")
	b.ReportMetric(u[experiments.OurApproach], "uninterrupted-ours-s")
	b.ReportMetric(s[experiments.QcowOverPVFS], "resume-qcow2-s")
	b.ReportMetric(s[experiments.OurApproach], "resume-ours-s")
}

// BenchmarkFlashCrowd256 runs the flash-crowd scenario at the
// acceptance scale: 256 instances of the same image deployed
// concurrently against an 8-node provider pool, with the p2p
// chunk-sharing layer off and on. The headline metrics are where the
// chunk traffic landed — total provider reads, the hottest provider's
// reads (the hot-spot), and peer-served reads — plus the deployment
// completion time. With sharing enabled, per-provider traffic must be
// strictly lower: provider load stops scaling with the crowd.
func BenchmarkFlashCrowd256(b *testing.B) {
	for _, sharing := range []bool{false, true} {
		sharing := sharing
		name := "sharing-off"
		if sharing {
			name = "sharing-on"
		}
		b.Run(name, func(b *testing.B) {
			p := experiments.Quick()
			var pt experiments.FlashCrowdPoint
			for i := 0; i < b.N; i++ {
				pt = experiments.RunFlashCrowd(p, experiments.FlashCrowdConfig{
					Instances: 256,
					Providers: 8,
					Sharing:   sharing,
				})
			}
			b.ReportMetric(float64(pt.ProviderReads), "provider-reads")
			b.ReportMetric(float64(pt.MaxProviderReads), "hottest-provider-reads")
			b.ReportMetric(float64(pt.PeerReads), "peer-reads")
			b.ReportMetric(float64(pt.MetaGets), "meta-gets")
			b.ReportMetric(pt.Completion, "completion-s")
			b.ReportMetric(pt.TrafficGB*1e3, "traffic-MB")
		})
	}
}

// BenchmarkFlashCrowdScale sweeps the flash crowd across instance
// counts toward the ROADMAP's paper-scale ×100 target. Together with
// BenchmarkFlashCrowd10k it feeds the BENCH_scale.json trajectory:
// instances vs wall-clock ns/op and allocs/op, the curve that shows
// whether the simulator itself scales. Every point runs with p2p
// sharing on — the churn-heavy path — and fails the benchmark if any
// instance does not boot.
func BenchmarkFlashCrowdScale(b *testing.B) {
	for _, n := range []int{256, 1024} {
		n := n
		b.Run(fmt.Sprintf("inst-%d", n), func(b *testing.B) {
			benchFlashCrowdScale(b, n)
		})
	}
}

// BenchmarkFlashCrowd10k is the paper-scale ×100 point: a 10k-instance
// flash crowd against the same 8-provider pool. Skipped under -short
// (CI runs the quick scale points; run the full sweep locally via
// scripts/bench.sh).
func BenchmarkFlashCrowd10k(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping 10k flash crowd in -short mode")
	}
	benchFlashCrowdScale(b, 10000)
}

func benchFlashCrowdScale(b *testing.B, instances int) {
	p := experiments.Quick()
	var pt experiments.FlashCrowdPoint
	for i := 0; i < b.N; i++ {
		pt = experiments.RunFlashCrowd(p, experiments.FlashCrowdConfig{
			Instances: instances,
			Providers: 8,
			Sharing:   true,
		})
		if pt.Booted != instances {
			b.Fatalf("only %d of %d instances booted", pt.Booted, instances)
		}
	}
	b.ReportMetric(float64(instances), "instances")
	b.ReportMetric(float64(pt.Booted), "booted")
	b.ReportMetric(float64(pt.Steps), "sim-steps")
	b.ReportMetric(pt.Completion, "completion-s")
	b.ReportMetric(float64(pt.ProviderReads), "provider-reads")
	b.ReportMetric(float64(pt.PeerReads), "peer-reads")
	b.ReportMetric(pt.TrafficGB*1e3, "traffic-MB")
}

// BenchmarkFlashCrowdDegraded reruns the 256-instance flash crowd
// while the fault plan kills half the (replicated) provider pool
// mid-deployment, against the healthy baseline of the same
// configuration. The headline metrics are the resilience costs: the
// completion-time penalty of losing 8 providers, how many reads failed
// over, and how many chunk copies re-replication recreated. Every
// instance must still complete — RunDegraded panics otherwise, failing
// the benchmark.
func BenchmarkFlashCrowdDegraded(b *testing.B) {
	for _, kill := range []int{0, 8} {
		kill := kill
		name := "healthy"
		if kill > 0 {
			name = "kill-8"
		}
		b.Run(name, func(b *testing.B) {
			p := experiments.Quick()
			var pt experiments.DegradedPoint
			for i := 0; i < b.N; i++ {
				pt = experiments.RunDegraded(p, experiments.DegradedConfig{
					Instances: 256,
					Sharing:   true,
					Kill:      kill,
				})
			}
			b.ReportMetric(float64(pt.Booted), "booted")
			b.ReportMetric(float64(pt.Failovers), "failovers")
			b.ReportMetric(float64(pt.Rereplicated), "re-replicated")
			b.ReportMetric(float64(pt.FailedFetches), "failed-fetches")
			b.ReportMetric(float64(pt.PeerReads), "peer-reads")
			b.ReportMetric(pt.Completion, "completion-s")
		})
	}
}

// BenchmarkFlashCrowdCrossZone runs the flash crowd over a zoned
// fabric: 3 availability zones × 64 instances deploying one image from
// a provider pool with 3 members per zone (p2p sharing on), with the
// flat policy vs topology-aware placement and peer selection
// (WithTopology) over the identical physical fabric. The headline
// metric is the traffic that crossed a zone interconnect — the scarce,
// expensive bytes — which awareness must cut by at least 2×; the guard
// fails the benchmark if it ever regresses below that.
func BenchmarkFlashCrowdCrossZone(b *testing.B) {
	const perZone = 64
	run := func(aware bool) experiments.CrossZonePoint {
		return experiments.RunCrossZone(experiments.Quick(), experiments.CrossZoneConfig{
			InstancesPerZone: perZone,
			Aware:            aware,
			Sharing:          true,
		})
	}
	var flat, awarePt experiments.CrossZonePoint
	for _, aware := range []bool{false, true} {
		aware := aware
		name := "flat"
		if aware {
			name = "aware"
		}
		b.Run(name, func(b *testing.B) {
			var pt experiments.CrossZonePoint
			for i := 0; i < b.N; i++ {
				pt = run(aware)
			}
			if aware {
				awarePt = pt
			} else {
				flat = pt
			}
			b.ReportMetric(float64(pt.CrossZoneBytes)/1e6, "cross-zone-MB")
			b.ReportMetric(float64(pt.TierBytes[cluster.TierZone])/1e6, "zone-local-MB")
			b.ReportMetric(float64(pt.ProviderReads), "provider-reads")
			b.ReportMetric(float64(pt.PeerReads), "peer-reads")
			b.ReportMetric(pt.Completion, "completion-s")
		})
	}
	if flat.CrossZoneBytes > 0 && awarePt.CrossZoneBytes > 0 {
		ratio := float64(flat.CrossZoneBytes) / float64(awarePt.CrossZoneBytes)
		b.ReportMetric(ratio, "cross-zone-reduction-x")
		if ratio < 2 {
			b.Fatalf("topology awareness cut cross-zone bytes only %.2fx (flat %d, aware %d), want >= 2x",
				ratio, flat.CrossZoneBytes, awarePt.CrossZoneBytes)
		}
	}
}

// BenchmarkFlashCrowdMetaOutage runs the metadata-outage scenario at
// acceptance scale: a 256-instance flash crowd (p2p sharing on) with
// metadata replication degree 2, healthy vs an outage that kills half
// of the 16 metadata providers plus one full compute rack mid-run. The
// headline metrics are the metadata failovers and re-replicated tree
// nodes the outage forces, the failed descents (the guard: must be 0 —
// the control plane never loses a metadata lookup), and the completion
// delta against the healthy baseline. Every instance must boot in both
// arms.
func BenchmarkFlashCrowdMetaOutage(b *testing.B) {
	const instances = 256
	run := func(outage bool) experiments.MetaOutagePoint {
		mc := experiments.MetaOutageConfig{Instances: instances, Sharing: true}
		if outage {
			mc.KillMeta = 8
			mc.KillRack = true
		}
		return experiments.RunMetaOutage(experiments.Quick(), mc)
	}
	var healthy, hit experiments.MetaOutagePoint
	for _, outage := range []bool{false, true} {
		outage := outage
		name := "healthy"
		if outage {
			name = "outage"
		}
		b.Run(name, func(b *testing.B) {
			var pt experiments.MetaOutagePoint
			for i := 0; i < b.N; i++ {
				pt = run(outage)
			}
			if outage {
				hit = pt
			} else {
				healthy = pt
			}
			b.ReportMetric(float64(pt.Booted), "booted")
			b.ReportMetric(float64(pt.MetaFailovers), "meta-failovers")
			b.ReportMetric(float64(pt.MetaRereplicated), "meta-re-replicated")
			b.ReportMetric(float64(pt.FailedDescents), "failed-descents")
			b.ReportMetric(pt.Completion, "completion-s")
			if pt.Booted != pt.Instances {
				b.Fatalf("%s: %d of %d instances booted", name, pt.Booted, pt.Instances)
			}
			if pt.FailedDescents != 0 {
				b.Fatalf("%s: %d metadata descents found no live replica, want 0", name, pt.FailedDescents)
			}
		})
	}
	if healthy.Completion > 0 && hit.Completion > 0 {
		b.ReportMetric(hit.Completion-healthy.Completion, "completion-delta-s")
		if hit.MetaFailovers == 0 {
			b.Fatal("the outage run exercised no metadata failover")
		}
	}
}

// BenchmarkMultisnapshot1024 runs the paper's headline workload at
// full fan-out: 1024 instances each committing a 16 MB diff (64 dirty
// chunks) concurrently against a 4-node provider pool, over two rounds
// (CLONE+COMMIT, then COMMIT), with the write path unbatched vs
// batched (WithBatchedCommit). The headline metric is provider write
// RPCs per commit round — chunk Puts plus metadata Puts — which
// batching must cut by at least 4×; the guard fails the benchmark if
// it ever regresses below that. The committed bytes and versions are
// identical in both arms, so the RPC ratio is a pure protocol win.
func BenchmarkMultisnapshot1024(b *testing.B) {
	const (
		instances = 1024
		providers = 4
		diffBytes = 16 << 20 // 64 dirty chunks of 256 KB per instance per round
	)
	run := func(batched bool) experiments.MultisnapshotPoint {
		return experiments.RunMultisnapshot(experiments.Quick(), experiments.MultisnapshotConfig{
			Instances: instances,
			Providers: providers,
			DiffBytes: diffBytes,
			Batched:   batched,
		})
	}
	var plain, batched experiments.MultisnapshotPoint
	for _, on := range []bool{false, true} {
		on := on
		name := "unbatched"
		if on {
			name = "batched"
		}
		b.Run(name, func(b *testing.B) {
			var pt experiments.MultisnapshotPoint
			for i := 0; i < b.N; i++ {
				pt = run(on)
			}
			if on {
				batched = pt
			} else {
				plain = pt
			}
			b.ReportMetric(pt.WriteRPCs, "write-RPCs/round")
			b.ReportMetric(pt.ChunkPutRPCs, "chunk-put-RPCs/round")
			b.ReportMetric(pt.MetaPutRPCs, "meta-put-RPCs/round")
			b.ReportMetric(pt.ChunkWrites, "chunk-writes/round")
			b.ReportMetric(pt.Completion, "completion-s")
		})
	}
	if plain.WriteRPCs > 0 && batched.WriteRPCs > 0 {
		ratio := plain.WriteRPCs / batched.WriteRPCs
		b.ReportMetric(ratio, "write-RPC-reduction-x")
		if ratio < 4 {
			b.Fatalf("batched commit cut write RPCs only %.2fx (unbatched %.0f, batched %.0f per round), want >= 4x",
				ratio, plain.WriteRPCs, batched.WriteRPCs)
		}
	}
}

// BenchmarkChurn runs the snapshot-lifecycle scenario at acceptance
// scale: 32 instances, 8 write→snapshot cycles under keep-last-2
// retention with garbage collection after every round. The headline
// metrics are the reclaimed-chunk count (must be positive — the
// lifecycle works) and the peak/final provider chunk counts (final ≈
// peak — storage is bounded; without retention it grows every cycle).
func BenchmarkChurn(b *testing.B) {
	p := experiments.Quick()
	var pt experiments.ChurnPoint
	for i := 0; i < b.N; i++ {
		pt = experiments.RunChurn(p, experiments.ChurnConfig{
			Instances: 32,
			Cycles:    8,
			KeepLast:  2,
		})
	}
	b.ReportMetric(float64(pt.ReclaimedChunks), "reclaimed-chunks")
	b.ReportMetric(float64(pt.ReclaimedBytes)/1e6, "reclaimed-MB")
	b.ReportMetric(float64(pt.PeakChunks), "peak-chunks")
	b.ReportMetric(float64(pt.FinalChunks), "final-chunks")
	b.ReportMetric(float64(pt.FreedNodes), "freed-meta-nodes")
	b.ReportMetric(pt.Completion, "completion-s")
}

// BenchmarkExportImport runs the differential-sync scenario: a base
// image shipped once in full, then four commit rounds each shipped as
// a delta archive to a downstream repository on a disjoint provider
// pool. The headline is the reduction factor — how many times smaller
// the average delta is than re-shipping the full image — gated at 5x:
// if deltas stop being deltas, the subsystem lost its point.
func BenchmarkExportImport(b *testing.B) {
	p := experiments.Quick()
	var pt experiments.SyncPoint
	for i := 0; i < b.N; i++ {
		pt = experiments.RunSync(p, experiments.SyncConfig{})
	}
	b.ReportMetric(pt.AvgDeltaMB, "delta-MB")
	b.ReportMetric(pt.FullMB, "full-MB")
	b.ReportMetric(pt.Reduction, "reduction-x")
	b.ReportMetric(float64(pt.ShippedChunks), "shipped-chunks")
	b.ReportMetric(float64(pt.DedupedChunks), "deduped-chunks")
	if pt.Reduction < 5 {
		b.Fatalf("delta sync shipped only %.2fx less than full re-ships (full %.2f MB, avg delta %.2f MB), want >= 5x",
			pt.Reduction, pt.FullMB, pt.AvgDeltaMB)
	}
}

// BenchmarkCommitDataStructures measures the in-memory cost of the
// COMMIT primitive itself (no simulation): shadowing a 2 GB image's
// segment tree (8192 chunks) with a 60-chunk diff on a live fabric —
// the pure-algorithm core behind Fig. 3 and Fig. 5.
func BenchmarkCommitDataStructures(b *testing.B) {
	fab := cluster.NewLive(8)
	sys := blob.NewSystem([]cluster.NodeID{0, 1, 2, 3, 4, 5, 6, 7}, 0, 1)
	var id blob.ID
	var v blob.Version
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		var err error
		id, err = c.Create(ctx, 2<<30, 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		v, err = c.WriteFull(ctx, id, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		for i := 0; i < b.N; i++ {
			// Each iteration derives its write set from an RNG seeded
			// with a constant plus the iteration index, so any -benchtime
			// (1x included) produces the identical op sequence on every
			// machine — the reported metadata-nodes/op is comparable
			// across runs and hosts.
			rng := sim.NewRNG(9000 + int64(i))
			seen := map[int64]bool{}
			writes := make([]blob.ChunkWrite, 0, 60)
			for len(writes) < 60 {
				idx := rng.Int63n(8192)
				if seen[idx] {
					continue
				}
				seen[idx] = true
				writes = append(writes, blob.ChunkWrite{
					Index:   idx,
					Payload: blob.SyntheticPayload(256<<10, uint64(i)+1),
				})
			}
			nv, err := c.WriteChunks(ctx, id, v, writes)
			if err != nil {
				b.Fatal(err)
			}
			v = nv
		}
	})
	b.ReportMetric(float64(sys.Meta.NodeCount())/float64(b.N), "metadata-nodes/op")
}

// BenchmarkMetadataHotPath measures the client's warm metadata read
// path under real goroutine parallelism (run with -cpu 1,8 to see the
// contention win of the sharded caches): concurrent FetchChunks over a
// fully cached snapshot of a 2 GB image resolve their leaf sets from
// the extent cache with no RPCs — the pure lock/lookup cost the 16-way
// chunk fetchers of every mirroring module pay on every read.
func BenchmarkMetadataHotPath(b *testing.B) {
	fab := cluster.NewLive(8)
	sys := blob.NewSystem([]cluster.NodeID{0, 1, 2, 3, 4, 5, 6, 7}, 0, 1)
	var id blob.ID
	var v blob.Version
	c := blob.NewClient(sys)
	fab.Run(func(ctx *cluster.Ctx) {
		var err error
		id, err = c.Create(ctx, 2<<30, 256<<10) // 8192 chunks
		if err != nil {
			b.Fatal(err)
		}
		v, err = c.WriteFull(ctx, id, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.PrefetchExtents(ctx, id, v); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each parallel worker drives the shared client from its own
		// live fabric (fabrics are stateless execution scaffolding; the
		// system and client are what is contended).
		wfab := cluster.NewLive(8)
		wfab.Run(func(ctx *cluster.Ctx) {
			var lo int64
			for pb.Next() {
				hi := lo + 8
				if _, err := c.FetchChunks(ctx, id, v, lo, hi); err != nil {
					b.Error(err)
					return
				}
				lo = (lo + 127) % (8192 - 8)
			}
		})
	})
}

// BenchmarkMetadataColdDescent measures a cold client's first
// resolution of a whole 2 GB image — the open-time prefetch path: one
// level-order batched descent over 16383 tree nodes.
func BenchmarkMetadataColdDescent(b *testing.B) {
	fab := cluster.NewLive(8)
	sys := blob.NewSystem([]cluster.NodeID{0, 1, 2, 3, 4, 5, 6, 7}, 0, 1)
	var id blob.ID
	var v blob.Version
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		var err error
		id, err = c.Create(ctx, 2<<30, 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		v, err = c.WriteFull(ctx, id, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.Run(func(ctx *cluster.Ctx) {
			c := blob.NewClient(sys)
			if err := c.PrefetchExtents(ctx, id, v); err != nil {
				b.Fatal(err)
			}
		})
	}
	b.ReportMetric(float64(sys.Meta.Gets.Load())/float64(b.N), "meta-gets/op")
}

// BenchmarkMaxMinRecompute measures the flow network's rate
// recomputation under a boot-storm-sized flow set — the hot path of
// the large simulations.
func BenchmarkMaxMinRecompute(b *testing.B) {
	env := sim.New()
	net := flownet.New(env)
	up := make([]*flownet.Link, 111)
	down := make([]*flownet.Link, 111)
	for i := range up {
		up[i] = net.NewLink("up", 117.5e6)
		down[i] = net.NewLink("down", 117.5e6)
	}
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 110; i++ {
			net.Start(1e12, up[i%111], down[(i*37+1)%111])
		}
	})
	env.RunUntil(0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each Start triggers one full recomputation over ~110 flows.
		f := net.Start(1e12, up[i%111], down[(i*53+7)%111])
		_ = f
	}
}

// BenchmarkAblationChunkSize sweeps the chunk-size trade-off of
// §3.1.3: too-small chunks pay request overhead, too-large chunks pay
// false sharing and wasted transfer. The default 256 KB sits at the
// knee.
func BenchmarkAblationChunkSize(b *testing.B) {
	p := quickParams(16)
	var pts []experiments.ChunkSizePoint
	for i := 0; i < b.N; i++ {
		pts = experiments.RunChunkSizeAblation(p, 16, []int{16 << 10, 256 << 10, 4 << 20})
	}
	b.ReportMetric(pts[0].Completion, "16K-completion-s")
	b.ReportMetric(pts[1].Completion, "256K-completion-s")
	b.ReportMetric(pts[2].Completion, "4M-completion-s")
	b.ReportMetric(pts[2].TrafficGB*1e3, "4M-traffic-MB")
	b.ReportMetric(pts[1].TrafficGB*1e3, "256K-traffic-MB")
}

// BenchmarkAblationReplication sweeps the replication degree of
// §3.1.3: storage cost doubles per extra replica while deployment
// completion stays in the same ballpark (reads use one replica).
func BenchmarkAblationReplication(b *testing.B) {
	p := quickParams(8)
	var pts []experiments.ReplicationPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.RunReplicationAblation(p, 8, []int{1, 2, 3})
	}
	b.ReportMetric(pts[0].StorageGB*1e3, "r1-storage-MB")
	b.ReportMetric(pts[1].StorageGB*1e3, "r2-storage-MB")
	b.ReportMetric(pts[2].StorageGB*1e3, "r3-storage-MB")
	b.ReportMetric(pts[0].Completion, "r1-completion-s")
	b.ReportMetric(pts[2].Completion, "r3-completion-s")
}
