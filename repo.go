package blobvfs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/mirror"
	"blobvfs/internal/p2p"
	reposync "blobvfs/internal/sync"
)

// Snapshot names one immutable image: a lineage and a version within
// it. Every Snapshot is a standalone raw image regardless of how much
// storage it physically shares with others through shadowing and
// cloning.
type Snapshot struct {
	Image   ImageID
	Version Version
}

// Repo is an image repository deployed over a fabric, plus the
// per-node mirroring modules that expose its snapshots as local raw
// files. It is the façade's root object and is safe for concurrent use
// from multiple activities.
type Repo struct {
	fab     Fabric
	cfg     config
	sys     *blob.System
	sharing *p2p.Registry     // nil without WithP2P
	syncer  *reposync.Tracker // disconnected-sync identity + sequence state
	// liveness is the repo's node up/down registry: the provider set
	// (failover + re-replication), the metadata service and version
	// manager (with WithMetaReplicas), and the sharing tracker
	// (dead-peer retraction) subscribe to it at Open; ArmFaults feeds
	// it the WithFaultPlan schedule, expanding rack- and zone-scoped
	// events to their member nodes first.
	liveness *cluster.Liveness

	closed      atomic.Bool
	faultsArmed atomic.Bool

	mu      sync.Mutex
	modules map[NodeID]*mirror.Module
	// The repo's single sharing cohort (see Share): shareImage claims
	// the slot before the registration RPCs run; cohort is attached to
	// every module created afterwards.
	shareImage ImageID
	cohort     *p2p.Cohort
	names      map[string]Snapshot
	collector  *blob.Collector
}

// Open deploys a Repo on a fabric. The zero-option call aggregates
// every node's local disk into the storage pool with the version
// manager on node 0, 256 KB chunks and no replication — the paper's
// baseline deployment; functional options adjust each knob.
func Open(fab Fabric, opts ...Option) (*Repo, error) {
	if fab == nil {
		return nil, fmt.Errorf("blobvfs: nil fabric: %w", ErrOutOfRange)
	}
	cfg := config{
		replicas:     1,
		metaReplicas: 1,
		chunkSize:    256 << 10,
		mirror:       mirror.DefaultConfig(),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.providers == nil {
		for i := 0; i < fab.Nodes(); i++ {
			cfg.providers = append(cfg.providers, NodeID(i))
		}
	}
	if err := cfg.validate(fab.Nodes()); err != nil {
		return nil, err
	}
	syncUUID := cfg.syncUUID
	if syncUUID == 0 {
		syncUUID = nextSyncUUID.Add(1)
	}
	r := &Repo{
		fab:     fab,
		cfg:     cfg,
		sys:     blob.NewSystem(cfg.providers, cfg.manager, cfg.replicas),
		syncer:  reposync.NewTracker(syncUUID),
		modules: make(map[NodeID]*mirror.Module),
		names:   make(map[string]Snapshot),
	}
	if cfg.dedup {
		r.sys.Providers.EnableDedup()
	}
	if cfg.topo.Enabled() {
		r.sys.Providers.SetTopology(cfg.topo)
	}
	r.liveness = cluster.NewLiveness(fab.Nodes())
	// The control-plane listeners register before the provider set's:
	// listeners run in registration order and block the injector, and
	// a chunk re-replication sweep can take virtual seconds — the
	// metadata and version-manager flags must flip (and the cheap
	// metadata sweep run) before that, or reads issued right after a
	// kill would still be routed to the dead control-plane replica.
	if cfg.metaReplicas > 1 {
		r.sys.Meta.SetReplication(cfg.metaReplicas)
		if cfg.topo.Enabled() {
			r.sys.Meta.SetTopology(cfg.topo)
		}
		r.liveness.OnChange(r.sys.Meta.NodeChanged)
		// The version manager's journal standbys: the first r-1
		// providers distinct from its own host.
		var standbys []NodeID
		for _, n := range cfg.providers {
			if n == cfg.manager {
				continue
			}
			standbys = append(standbys, n)
			if len(standbys) == cfg.metaReplicas-1 {
				break
			}
		}
		r.sys.VM.SetStandbys(standbys)
		r.liveness.OnChange(r.sys.VM.NodeChanged)
	}
	r.liveness.OnChange(r.sys.Providers.NodeChanged)
	if cfg.p2p != nil {
		r.sharing = p2p.NewRegistry(cfg.manager, *cfg.p2p)
		r.sharing.SetLiveness(r.liveness)
		if cfg.topo.Enabled() {
			r.sharing.SetTopology(cfg.topo)
		}
		r.liveness.OnChange(r.sharing.NodeChanged)
	}
	return r, nil
}

// nextSyncUUID auto-assigns sync identities to repos opened without
// WithSyncUUID: unique within the process, which is all the identity
// is compared against.
var nextSyncUUID atomic.Uint64

// defaultP2PConfig returns the sharing protocol defaults (see WithP2P).
func defaultP2PConfig() P2PConfig { return p2p.DefaultConfig() }

// Fabric returns the cluster the repo is deployed on.
func (r *Repo) Fabric() Fabric { return r.fab }

// System exposes the underlying storage services. It exists for the
// experiment harness and advanced instrumentation (service counters);
// application code should not need it.
func (r *Repo) System() *blob.System { return r.sys }

// owns rejects a disk opened on a different repo: image IDs are
// per-repository, so acting on a foreign disk's numerically-equal ID
// would silently hit an unrelated image here.
func (r *Repo) owns(d *Disk) error {
	if d.repo != r {
		return fmt.Errorf("blobvfs: disk belongs to a different repository: %w", ErrNotFound)
	}
	return nil
}

// checkOpen fails with ErrClosed once the repo has been closed.
func (r *Repo) checkOpen() error {
	if r.closed.Load() {
		return fmt.Errorf("blobvfs: repository %w", ErrClosed)
	}
	return nil
}

// client returns a fresh lifecycle client for one repo-level call.
// Lifecycle operations run from arbitrary nodes, so they must not
// share a client: its metadata caches would physically span machines
// and under-charge the modeled RPCs. Caching is per node, and lives in
// the per-node modules (see module).
func (r *Repo) client() *blob.Client {
	c := blob.NewClient(r.sys)
	if r.cfg.batched {
		c.SetWriteBatching(true)
	}
	return c
}

// module returns (creating on first use) the mirroring module of a
// node. Each module owns a blob client, hence its own metadata cache —
// caching is per node, as in the real deployment. Modules created
// after Share attach to the deployment's sharing cohort.
func (r *Repo) module(node NodeID) *mirror.Module {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.modules[node]
	if !ok {
		c := blob.NewClient(r.sys)
		if r.cfg.extentCap > 0 {
			c.SetExtentCacheCap(r.cfg.extentCap)
		}
		if r.cfg.batched {
			c.SetWriteBatching(true)
		}
		m = mirror.NewModule(node, c, r.cfg.mirror)
		if r.cohort != nil {
			m.SetSharer(r.cohort)
		}
		r.modules[node] = m
	}
	return m
}

// Create stores data as a new image — the repository's upload path —
// and registers it under name (empty name skips registration). The
// returned Snapshot is the image's first published version.
func (r *Repo) Create(ctx *Ctx, name string, data []byte) (Snapshot, error) {
	if err := r.checkOpen(); err != nil {
		return Snapshot{}, err
	}
	if len(data) == 0 {
		return Snapshot{}, fmt.Errorf("blobvfs: empty image: %w", ErrInvalidWrite)
	}
	c := r.client()
	id, err := c.Create(ctx, int64(len(data)), r.cfg.chunkSize)
	if err != nil {
		return Snapshot{}, err
	}
	v, err := c.WriteAt(ctx, id, 0, data, 0)
	if err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{Image: id, Version: v}
	if name != "" {
		r.Tag(name, s)
	}
	return s, nil
}

// CreateSynthetic registers an image of the given size whose content
// is synthetic: every operation is costed on the fabric, but no bytes
// are materialized. This is how simulation-scale experiments upload
// their 2 GB base images.
func (r *Repo) CreateSynthetic(ctx *Ctx, name string, size int64) (Snapshot, error) {
	if err := r.checkOpen(); err != nil {
		return Snapshot{}, err
	}
	c := r.client()
	id, err := c.Create(ctx, size, r.cfg.chunkSize)
	if err != nil {
		return Snapshot{}, err
	}
	v, err := c.WriteFull(ctx, id, 0, uint64(id))
	if err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{Image: id, Version: v}
	if name != "" {
		r.Tag(name, s)
	}
	return s, nil
}

// Clone duplicates a snapshot into a new independent lineage — the
// CLONE primitive: O(1) metadata, no data copied.
func (r *Repo) Clone(ctx *Ctx, s Snapshot) (Snapshot, error) {
	if err := r.checkOpen(); err != nil {
		return Snapshot{}, err
	}
	id, err := r.client().Clone(ctx, s.Image, s.Version)
	if err != nil {
		return Snapshot{}, err
	}
	return Snapshot{Image: id, Version: 1}, nil
}

// OpenDisk mirrors snapshot s on the given node and returns the raw
// disk the hypervisor would mount. node must be the calling activity's
// node (a disk is strictly node-local, like the FUSE mount it models).
// The snapshot is pinned against retirement for as long as the disk is
// open; Close releases it.
func (r *Repo) OpenDisk(ctx *Ctx, node NodeID, s Snapshot, opts ...DiskOption) (*Disk, error) {
	if err := r.checkOpen(); err != nil {
		return nil, err
	}
	do := diskOptions{real: true}
	for _, opt := range opts {
		opt(&do)
	}
	im, err := r.module(node).Open(ctx, s.Image, s.Version, do.real)
	if err != nil {
		return nil, err
	}
	return &Disk{repo: r, im: im, origin: s}, nil
}

// Snapshot publishes d's local modifications as a new snapshot — the
// COMMIT primitive — and returns it. With fork true the disk first
// CLONEs into a fresh lineage, so the result is independent of the
// image the disk was opened from; this is how the first snapshot of an
// instance provisioned from a shared base gets its own history (§3.2).
// Without local modifications (and without fork) the current snapshot
// is returned unchanged.
func (r *Repo) Snapshot(ctx *Ctx, d *Disk, fork bool) (Snapshot, error) {
	if err := r.checkOpen(); err != nil {
		return Snapshot{}, err
	}
	if err := r.owns(d); err != nil {
		return Snapshot{}, err
	}
	id, v, err := d.im.Snapshot(ctx, fork)
	if err != nil {
		return Snapshot{}, err
	}
	return Snapshot{Image: id, Version: v}, nil
}

// Retire logically deletes a snapshot: it disappears from Latest and
// Versions immediately, and the storage it holds exclusively is
// reclaimed by the next GC. Retiring a snapshot some disk has open (or
// a commit is building on) fails with ErrVersionPinned.
func (r *Repo) Retire(ctx *Ctx, s Snapshot) error {
	if err := r.checkOpen(); err != nil {
		return err
	}
	return r.sys.VM.Retire(ctx, s.Image, s.Version)
}

// RetireOld applies keep-last-K retention to a disk's lineage: every
// unpinned version older than the newest keep is retired (pinned ones
// retire on a later sweep, once their holders close). keep <= 0 falls
// back to the WithRetention default; if that is unset too, RetireOld
// is a no-op. It returns how many versions it retired.
//
// Retention only ever touches a lineage the disk forked into (a
// Repo.Snapshot with fork true): while the disk still mirrors the
// lineage it was opened from — possibly an image shared with every
// other user of the repo — RetireOld is a no-op. Use Retire to delete
// versions of a shared lineage explicitly.
func (r *Repo) RetireOld(ctx *Ctx, d *Disk, keep int) (int, error) {
	if err := r.checkOpen(); err != nil {
		return 0, err
	}
	if err := r.owns(d); err != nil {
		return 0, err
	}
	if keep <= 0 {
		keep = r.cfg.retainLast
	}
	if keep <= 0 {
		return 0, nil
	}
	if d.Image() == d.origin.Image {
		return 0, nil // not forked; the lineage predates (and may outlive) this disk
	}
	upTo := d.Version() - Version(keep)
	if upTo < 1 {
		return 0, nil
	}
	return r.RetireUpTo(ctx, d.Image(), upTo)
}

// RetireUpTo retires every published, unpinned version of an image up
// to and including upTo, skipping pinned ones (they retire on a later
// sweep, once their holders close), and returns how many it retired.
// This is the raw primitive behind RetireOld, without its forked-
// lineage guard: callers that know a lineage is privately owned — the
// deployment middleware tracks the shared base image explicitly, so a
// resumed instance's own lineage keeps its retention — use it
// directly. On a lineage other users still deploy from it deletes
// their history; prefer RetireOld when in doubt.
func (r *Repo) RetireUpTo(ctx *Ctx, id ImageID, upTo Version) (int, error) {
	if err := r.checkOpen(); err != nil {
		return 0, err
	}
	return r.sys.VM.RetireUpTo(ctx, id, upTo)
}

// Versions lists the live (published, unretired) versions of an image
// in ascending order.
func (r *Repo) Versions(ctx *Ctx, id ImageID) ([]Version, error) {
	if err := r.checkOpen(); err != nil {
		return nil, err
	}
	return r.sys.VM.LiveVersions(ctx, id)
}

// Latest returns an image's newest live version (0 if none).
func (r *Repo) Latest(ctx *Ctx, id ImageID) (Version, error) {
	if err := r.checkOpen(); err != nil {
		return 0, err
	}
	return r.client().Latest(ctx, id)
}

// Size returns a snapshot's logical size in bytes.
func (r *Repo) Size(ctx *Ctx, s Snapshot) (int64, error) {
	if err := r.checkOpen(); err != nil {
		return 0, err
	}
	inf, err := r.client().Info(ctx, s.Image)
	if err != nil {
		return 0, err
	}
	return inf.Size, nil
}

// Download reads a whole snapshot into buf (the cloud client's "get
// image" path). buf must hold at least the image size.
func (r *Repo) Download(ctx *Ctx, s Snapshot, buf []byte) error {
	if err := r.checkOpen(); err != nil {
		return err
	}
	c := r.client()
	inf, err := c.Info(ctx, s.Image)
	if err != nil {
		return err
	}
	if int64(len(buf)) < inf.Size {
		return fmt.Errorf("blobvfs: buffer %d < image size %d: %w", len(buf), inf.Size, ErrOutOfRange)
	}
	return c.ReadAt(ctx, s.Image, s.Version, buf[:inf.Size], 0)
}

// Tag registers (or moves) a name to a snapshot.
func (r *Repo) Tag(name string, s Snapshot) {
	r.mu.Lock()
	r.names[name] = s
	r.mu.Unlock()
}

// Resolve looks a name up.
func (r *Repo) Resolve(name string) (Snapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.names[name]
	return s, ok
}

// Names returns all registered image names.
func (r *Repo) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.names))
	for n := range r.names {
		out = append(out, n)
	}
	return out
}

// P2PEnabled reports whether the repo was opened with WithP2P.
func (r *Repo) P2PEnabled() bool { return r.sharing != nil }

// ArmFaults starts the repo's fault-injection plan (WithFaultPlan): a
// fault-injector activity is spawned from ctx that kills and revives
// nodes on the configured schedule. Killed providers stop serving
// chunks — reads fail over to surviving replicas, and the chunks the
// dead node held are re-replicated onto substitutes — and killed
// cohort peers are retracted from the sharing layer. Without a
// configured plan ArmFaults fails with ErrNotFound; arming twice is a
// no-op (the plan runs once).
func (r *Repo) ArmFaults(ctx *Ctx) error { return r.armFaults(ctx, false) }

// ArmFaultsRebased is ArmFaults with the plan's event times read as
// offsets from the arming instant instead of absolute virtual time.
// On a simulated fabric whose clock already advanced — image
// population alone can consume virtual seconds — an absolute plan
// written for "t seconds into the experiment" is often entirely in
// the past by the time the measured phase starts, so every event
// fires immediately back-to-back; rebasing keeps the configured
// spacing relative to the phase the caller arms it from.
func (r *Repo) ArmFaultsRebased(ctx *Ctx) error { return r.armFaults(ctx, true) }

func (r *Repo) armFaults(ctx *Ctx, rebase bool) error {
	if err := r.checkOpen(); err != nil {
		return err
	}
	if len(r.cfg.faults) == 0 {
		return fmt.Errorf("blobvfs: no fault plan configured: %w", ErrNotFound)
	}
	if !r.faultsArmed.CompareAndSwap(false, true) {
		return nil
	}
	plan := cluster.ExpandFaults(r.cfg.faults, r.cfg.topo)
	if rebase {
		now := ctx.Now()
		shifted := make([]FaultEvent, len(plan))
		for i, ev := range plan {
			ev.At += now
			shifted[i] = ev
		}
		plan = shifted
	}
	r.liveness.Execute(ctx, plan)
	return nil
}

// NodeAlive reports whether the fault subsystem currently considers a
// node up (always true for every node unless a fault plan killed it).
func (r *Repo) NodeAlive(node NodeID) bool { return r.liveness.Alive(node) }

// Share registers nodes as a peer-to-peer sharing cohort for an image:
// disks of that deployment opened afterwards announce the chunks they
// mirror and serve each other's demand fetches before the providers.
// It reports whether sharing is active for the image (false without
// WithP2P). Call it before OpenDisk — modules already created on a
// node keep their previous attachment.
//
// A repo carries at most one cohort: a node's mirroring module (and
// its chunk fetch path) attaches to a single sharing group, so a
// Share for a second image is refused rather than silently cross-
// wiring the first cohort's location maps. Deployments that share
// several images each open their own Repo, as the experiment
// scenarios do.
func (r *Repo) Share(ctx *Ctx, image ImageID, nodes []NodeID) bool {
	if r.sharing == nil {
		return false
	}
	// Claim the repo's cohort slot before the registration RPCs run
	// (the lock must not be held across fabric operations). Re-Shares
	// of the claimed image register again: the tracker merges the new
	// members into the cohort, so a later deployment wave of the same
	// image joins rather than hammering the providers.
	r.mu.Lock()
	if r.shareImage != 0 && r.shareImage != image {
		r.mu.Unlock()
		return false
	}
	r.shareImage = image
	r.mu.Unlock()
	co := r.sharing.Register(ctx, image, nodes)
	r.mu.Lock()
	r.cohort = co
	r.mu.Unlock()
	return true
}

// SharingStats returns the accounting of the cohort registered for an
// image (false when sharing is off or Share never registered it).
func (r *Repo) SharingStats(image ImageID) (P2PStats, bool) {
	r.mu.Lock()
	co := r.cohort
	mine := r.shareImage == image
	r.mu.Unlock()
	if co == nil || !mine {
		return P2PStats{}, false
	}
	return co.Stats(), true
}

// Collector returns the repo's garbage collector, creating it on first
// use. With sharing enabled, reclaimed chunks are retracted from the
// cohorts' location maps. The experiment harness hands this to its
// orchestrator; application code normally just calls GC.
func (r *Repo) Collector() *blob.Collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.collector == nil {
		r.collector = blob.NewCollector(r.sys)
		if r.sharing != nil {
			r.collector.SetListener(r.sharing)
		}
	}
	return r.collector
}

// GC runs one garbage-collection cycle: a concurrent mark over every
// live snapshot root, then a sweep of the chunks and metadata nodes
// nothing references anymore (retired versions' exclusive storage).
func (r *Repo) GC(ctx *Ctx) (GCReport, error) {
	if err := r.checkOpen(); err != nil {
		return GCReport{}, err
	}
	return r.Collector().Collect(ctx)
}

// RepoStats samples the repository's storage footprint and its
// failure-resilience counters.
type RepoStats struct {
	Chunks          int   // distinct chunk payloads stored
	StoredBytes     int64 // payload bytes (one copy per chunk)
	MetaNodes       int   // segment-tree nodes stored
	ReclaimedChunks int64 // chunk payloads freed by GC so far
	ReclaimedBytes  int64
	DedupHits       int64 // writes absorbed by an identical stored chunk

	// FailedFetches counts chunk reads that found no live copy at all
	// (before any retry through the sharing cohort); Failovers counts
	// reads a dead primary pushed onto a surviving replica or repair
	// copy; Rereplicated counts chunk copies re-created on substitute
	// providers after a node death. All three stay zero without a
	// fault plan.
	FailedFetches int64
	Failovers     int64
	Rereplicated  int64

	// The metadata-tier twins, live with WithMetaReplicas(r > 1):
	// FailedDescents counts metadata gets that found no live replica
	// (each one fails a client descent), MetaFailovers counts gets a
	// dead replica pushed onto a surviving one, MetaRereplicated
	// counts tree-node copies restored by repair sweeps, and
	// VMFailovers counts version-manager operations a journal standby
	// served in place of the dead manager host. All stay zero at
	// metadata replication degree 1.
	FailedDescents   int64
	MetaFailovers    int64
	MetaRereplicated int64
	VMFailovers      int64
}

// Stats samples the repository's current storage footprint.
func (r *Repo) Stats() RepoStats {
	return RepoStats{
		Chunks:          r.sys.Providers.ChunkCount(),
		StoredBytes:     r.sys.Providers.StoredBytes(),
		MetaNodes:       r.sys.Meta.NodeCount(),
		ReclaimedChunks: r.sys.Providers.Reclaimed.Load(),
		ReclaimedBytes:  r.sys.Providers.ReclaimedBytes.Load(),
		DedupHits:       r.sys.Providers.DedupHits.Load(),
		FailedFetches:   r.sys.Providers.FailedReads.Load(),
		Failovers:       r.sys.Providers.Failovers.Load(),
		Rereplicated:    r.sys.Providers.Rereplicated.Load(),

		FailedDescents:   r.sys.Meta.FailedGets.Load(),
		MetaFailovers:    r.sys.Meta.Failovers.Load(),
		MetaRereplicated: r.sys.Meta.Rereplicated.Load(),
		VMFailovers:      r.sys.VM.Failovers.Load(),
	}
}

// Close marks the repository closed: subsequent lifecycle calls fail
// with ErrClosed. Open disks stay usable until closed individually
// (their pins outlive the repo handle by design — a hypervisor does
// not crash because a control connection went away). Close is
// idempotent and safe to call concurrently.
func (r *Repo) Close() error {
	r.closed.CompareAndSwap(false, true)
	return nil
}
