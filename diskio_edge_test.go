package blobvfs_test

import (
	"errors"
	"io"
	"testing"

	"blobvfs"
)

// Table-driven edge cases for the std-io binding: seek arithmetic
// around SeekEnd, negative offsets, the read-at/after-EOF conventions,
// and the typed-error contract once the disk is closed. The happy
// paths live in TestDiskIOStandardInterfaces; this file pins the
// corners.

const edgeSize = 16 << 10 // image size used by every case below

func TestDiskIOSeekTable(t *testing.T) {
	cases := []struct {
		name    string
		whence  int
		off     int64
		pre     int64 // position set before the seek (SeekCurrent base)
		want    int64
		wantErr bool
	}{
		{name: "start", whence: io.SeekStart, off: 100, want: 100},
		{name: "start-zero", whence: io.SeekStart, off: 0, want: 0},
		{name: "start-negative", whence: io.SeekStart, off: -1, wantErr: true},
		{name: "current-forward", whence: io.SeekCurrent, off: 50, pre: 100, want: 150},
		{name: "current-back", whence: io.SeekCurrent, off: -70, pre: 100, want: 30},
		{name: "current-underflow", whence: io.SeekCurrent, off: -101, pre: 100, wantErr: true},
		{name: "end", whence: io.SeekEnd, off: 0, want: edgeSize},
		{name: "end-back", whence: io.SeekEnd, off: -edgeSize, want: 0},
		{name: "end-past", whence: io.SeekEnd, off: 10, want: edgeSize + 10}, // seeking past EOF is legal
		{name: "end-underflow", whence: io.SeekEnd, off: -edgeSize - 1, wantErr: true},
		{name: "bad-whence", whence: 3, off: 0, wantErr: true},
	}
	fab, repo := newRepo(t, 1)
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, err := repo.Create(ctx, "img", img(edgeSize, 9))
		if err != nil {
			t.Fatal(err)
		}
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		defer disk.Close(ctx)
		for _, tc := range cases {
			f := disk.IO(ctx)
			if tc.pre != 0 {
				if _, err := f.Seek(tc.pre, io.SeekStart); err != nil {
					t.Fatalf("%s: pre-seek: %v", tc.name, err)
				}
			}
			pos, err := f.Seek(tc.off, tc.whence)
			if tc.wantErr {
				if !errors.Is(err, blobvfs.ErrOutOfRange) {
					t.Errorf("%s: err = %v, want ErrOutOfRange", tc.name, err)
				}
				// A failed seek must not move the position.
				if cur, _ := f.Seek(0, io.SeekCurrent); cur != tc.pre {
					t.Errorf("%s: failed seek moved position to %d (was %d)", tc.name, cur, tc.pre)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s: %v", tc.name, err)
				continue
			}
			if pos != tc.want {
				t.Errorf("%s: pos = %d, want %d", tc.name, pos, tc.want)
			}
		}
	})
}

func TestDiskIOReadEdgeTable(t *testing.T) {
	cases := []struct {
		name    string
		off     int64
		len     int
		wantN   int
		wantErr error
	}{
		{name: "inside", off: 4096, len: 512, wantN: 512},
		{name: "to-exact-end", off: edgeSize - 512, len: 512, wantN: 512},
		{name: "crossing-end", off: edgeSize - 100, len: 512, wantN: 100, wantErr: io.EOF},
		{name: "at-end", off: edgeSize, len: 1, wantN: 0, wantErr: io.EOF},
		{name: "past-end", off: edgeSize + 7, len: 1, wantN: 0, wantErr: io.EOF},
		{name: "negative-offset", off: -1, len: 1, wantN: 0, wantErr: blobvfs.ErrOutOfRange},
		{name: "empty-read-inside", off: 128, len: 0, wantN: 0},
	}
	fab, repo := newRepo(t, 1)
	fab.Run(func(ctx *blobvfs.Ctx) {
		base := img(edgeSize, 11)
		ref, err := repo.Create(ctx, "img", base)
		if err != nil {
			t.Fatal(err)
		}
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		defer disk.Close(ctx)
		f := disk.IO(ctx)
		for _, tc := range cases {
			buf := make([]byte, tc.len)
			n, err := f.ReadAt(buf, tc.off)
			if n != tc.wantN {
				t.Errorf("%s: n = %d, want %d", tc.name, n, tc.wantN)
			}
			switch {
			case tc.wantErr == nil && err != nil:
				t.Errorf("%s: err = %v, want nil", tc.name, err)
			case tc.wantErr == io.EOF && err != io.EOF:
				// ReadAt must return io.EOF itself (not a wrapper), per
				// the io.ReaderAt contract.
				t.Errorf("%s: err = %v, want io.EOF", tc.name, err)
			case tc.wantErr != nil && tc.wantErr != io.EOF && !errors.Is(err, tc.wantErr):
				t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
			}
			for i := 0; i < n; i++ {
				if buf[i] != base[tc.off+int64(i)] {
					t.Errorf("%s: byte %d differs", tc.name, i)
					break
				}
			}
		}

		// Sequential Read drains to EOF and then keeps returning EOF.
		if _, err := f.Seek(-100, io.SeekEnd); err != nil {
			t.Fatal(err)
		}
		n, err := io.ReadFull(f, make([]byte, 200))
		if n != 100 || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("short sequential read = %d, %v; want 100, ErrUnexpectedEOF", n, err)
		}
		if n, err := f.Read(make([]byte, 1)); n != 0 || err != io.EOF {
			t.Errorf("read at drained position = %d, %v; want 0, io.EOF", n, err)
		}
	})
}

// TestDiskIOClosedTable: after Close every data path fails with a
// typed ErrClosed (reachable via errors.Is), on both the binding used
// to close and a second binding of the same disk; Seek stays purely
// positional and keeps working; Close is idempotent through the
// binding too.
func TestDiskIOClosedTable(t *testing.T) {
	fab, repo := newRepo(t, 1)
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, err := repo.Create(ctx, "img", img(edgeSize, 13))
		if err != nil {
			t.Fatal(err)
		}
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		f := disk.IO(ctx)
		other := disk.IO(ctx)
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("second close through binding: %v", err)
		}
		ops := []struct {
			name string
			do   func(io *blobvfs.DiskIO) error
		}{
			{"ReadAt", func(io *blobvfs.DiskIO) error { _, err := io.ReadAt(make([]byte, 1), 0); return err }},
			{"WriteAt", func(io *blobvfs.DiskIO) error { _, err := io.WriteAt([]byte{1}, 0); return err }},
			{"Read", func(io *blobvfs.DiskIO) error { _, err := io.Read(make([]byte, 1)); return err }},
			{"Write", func(io *blobvfs.DiskIO) error { _, err := io.Write([]byte{1}); return err }},
		}
		for _, binding := range []*blobvfs.DiskIO{f, other} {
			for _, op := range ops {
				if err := op.do(binding); !errors.Is(err, blobvfs.ErrClosed) {
					t.Errorf("%s after Close = %v, want ErrClosed", op.name, err)
				}
			}
		}
		// Seek is pure position arithmetic; it needs no live disk.
		if pos, err := f.Seek(0, io.SeekEnd); err != nil || pos != edgeSize {
			t.Errorf("Seek after Close = %d, %v; want %d, nil", pos, err, edgeSize)
		}
	})
}
