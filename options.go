package blobvfs

import (
	"errors"
	"fmt"

	"blobvfs/internal/cluster"
	"blobvfs/internal/mirror"
)

// config is the resolved Repo configuration; Open applies defaults,
// then options, then validates.
type config struct {
	providers    []NodeID
	manager      NodeID
	replicas     int
	metaReplicas int
	chunkSize    int
	mirror       mirror.Config
	extentCap    int // 0 keeps the client default
	p2p          *P2PConfig
	retainLast   int // 0 disables the repo-level retention default
	dedup        bool
	batched      bool
	faults       []FaultEvent
	topo         Topology
	syncUUID     uint64 // 0 auto-assigns a process-unique identity
}

// Option configures a Repo at Open.
type Option func(*config)

// WithProviders selects the nodes whose local disks form the storage
// pool. Default: every node of the fabric (§3.1.1: aggregate all local
// disks).
func WithProviders(nodes ...NodeID) Option {
	return func(c *config) { c.providers = nodes }
}

// WithManager places the version manager (and, with WithP2P, the
// sharing tracker) on the given node. Default: node 0.
func WithManager(node NodeID) Option {
	return func(c *config) { c.manager = node }
}

// WithReplicas sets the chunk replication degree. Default: 1.
func WithReplicas(k int) Option {
	return func(c *config) { c.replicas = k }
}

// WithMetaReplicas sets the metadata replication degree: each segment-
// tree node ref maps to an r-replica ring over the metadata providers
// (spread across failure domains with WithTopology), writes fan out to
// every live ring member and write around dead ones, reads probe the
// nearest live replica first and fail over down the ring, and every
// liveness transition triggers a metadata repair sweep that restores
// the degree. The version manager's records are journaled to r-1
// standby nodes the same way, so control-plane state survives the
// death of its host. Default: 1 — today's single-home layout with the
// control plane assumed fault-free, byte-identical to a repo opened
// before metadata replication existed.
func WithMetaReplicas(r int) Option {
	return func(c *config) { c.metaReplicas = r }
}

// WithChunkSize sets the stripe unit in bytes. Default: 256 KB (the
// paper's §5.2 setting).
func WithChunkSize(bytes int) Option {
	return func(c *config) { c.chunkSize = bytes }
}

// WithMetadataPrefetch toggles resolving a snapshot's complete chunk
// map in one batched descent when a disk opens, so demand fetches skip
// tree descent entirely. Default: on.
func WithMetadataPrefetch(on bool) Option {
	return func(c *config) { c.mirror.MetadataPrefetch = on }
}

// WithOpOverhead sets the per-operation user/kernel crossing cost of
// the mirroring layer in seconds. Default: the calibrated FUSE cost.
func WithOpOverhead(seconds float64) Option {
	return func(c *config) { c.mirror.OpOverhead = seconds }
}

// WithP2P enables peer-to-peer chunk sharing: deployment cohorts
// registered with Repo.Share serve each other's demand fetches before
// falling back to the providers. At most one P2PConfig may be given;
// omitted, the protocol defaults apply. The tracker runs on the
// manager node.
func WithP2P(cfg ...P2PConfig) Option {
	return func(c *config) {
		p := defaultP2PConfig()
		if len(cfg) > 0 {
			p = cfg[0]
		}
		c.p2p = &p
	}
}

// WithRetention sets the repo's default keep-last-K retention window:
// Repo.RetireOld calls with keep <= 0 fall back to it. 0 (the
// default) means no implicit retention.
func WithRetention(keepLast int) Option {
	return func(c *config) { c.retainLast = keepLast }
}

// WithExtentCacheCap bounds how many (image, version) flattened chunk
// maps each node's client keeps cached. Default: the client's
// built-in cap.
func WithExtentCacheCap(n int) Option {
	return func(c *config) { c.extentCap = n }
}

// WithDedup enables content deduplication on the provider set:
// identical chunk payloads are stored once and aliased.
func WithDedup() Option {
	return func(c *config) { c.dedup = true }
}

// WithBatchedCommit turns on the batched multisnapshot write path:
// a commit groups its chunk publishes by target provider (one RPC per
// provider per round instead of one per chunk), resolves metadata tree
// nodes level-by-level in batched reads, and — when Repo.Snapshot is
// asked to fork — overlaps the CLONE with the commit's local prepare
// work. The committed bytes, versions, and metadata are identical to
// the unbatched path; only the fabric round-trip count changes.
// Deliberately opt-in so existing scenarios stay byte-identical.
func WithBatchedCommit() Option {
	return func(c *config) {
		c.batched = true
		c.mirror.BatchedCommit = true
	}
}

// WithTopology makes the repository topology-aware: chunk placement
// spreads a key's replicas across failure domains (distinct zones
// first, then distinct racks), reads probe the reader's nearest live
// copy first, and — with WithP2P — cohort peer selection prefers a
// same-rack holder, then same-zone, then remote, with load only
// breaking ties within a tier. The topology describes the whole
// fabric (Zones × RacksPerZone × NodesPerRack must equal the cluster
// size) and normally mirrors the simulated fabric's cluster-config
// topology, so the policy matches the modeled tier links.
//
// Awareness is deliberately opt-in: a repo opened without WithTopology
// keeps flat round-robin placement and pure least-loaded peer picks
// even on a fabric that models tiered links — that flat-policy
// baseline is what the cross-zone scenario measures against. A
// single-zone, single-rack topology is the degenerate case and
// reproduces the flat behavior byte-identically.
func WithTopology(t Topology) Option {
	return func(c *config) { c.topo = t }
}

// WithSyncUUID sets the identity this repository presents to its
// disconnected-sync peers: Export stamps it into every archive
// header, and Import accepts archives from exactly one source UUID
// (the first one seen; others fail with ErrSourceMismatch), the
// strict-source rule of the oc-mirror workflow the subsystem models.
// Default: a process-unique identity assigned at Open. Set it
// explicitly when repositories on different fabrics (or in different
// processes) must recognize each other across export/import runs.
func WithSyncUUID(uuid uint64) Option {
	return func(c *config) { c.syncUUID = uuid }
}

// WithFaultPlan configures a fault-injection plan: each event kills or
// revives one node — or a whole rack or zone — at an absolute virtual
// time (build them with KillAt/ReviveAt and, on a repo opened with
// WithTopology, KillRackAt/ReviveRackAt/KillZoneAt/ReviveZoneAt, which
// expand to their member nodes when the plan is armed). Open rejects
// plans whose events are redundant for some node — a kill of a node
// already dead at that point, or a revive of a live one — with a typed
// *FaultPlanError instead of silently executing the no-op.
// The plan does not run by itself — call Repo.ArmFaults
// from an activity to start the injector. While armed, a killed
// provider stops serving chunks (reads fail over to surviving replicas
// and the chunks it held are re-replicated), and a killed cohort peer
// is retracted from the sharing layer so it is never selected as an
// uploader. With the zero-value plan (no WithFaultPlan) every run is
// byte-identical to a repo without the fault subsystem. Repeated
// options concatenate their events.
//
// Event times are virtual-clock seconds, so timed outage windows need
// a simulated fabric: the live fabric has no clock, and a plan armed
// there fires all its events back-to-back, in time order, immediately.
func WithFaultPlan(events ...FaultEvent) Option {
	return func(c *config) { c.faults = append(c.faults, events...) }
}

// validate checks the resolved configuration against the fabric size.
func (c *config) validate(nodes int) error {
	if c.chunkSize <= 0 {
		return fmt.Errorf("blobvfs: chunk size %d: %w", c.chunkSize, ErrOutOfRange)
	}
	if len(c.providers) == 0 {
		return fmt.Errorf("blobvfs: no provider nodes: %w", ErrOutOfRange)
	}
	for _, n := range c.providers {
		if int(n) < 0 || int(n) >= nodes {
			return fmt.Errorf("blobvfs: provider node %d outside cluster of %d: %w", n, nodes, ErrOutOfRange)
		}
	}
	if int(c.manager) < 0 || int(c.manager) >= nodes {
		return fmt.Errorf("blobvfs: manager node %d outside cluster of %d: %w", c.manager, nodes, ErrOutOfRange)
	}
	if c.replicas < 1 || c.replicas > len(c.providers) {
		return fmt.Errorf("blobvfs: replication degree %d invalid for %d providers: %w",
			c.replicas, len(c.providers), ErrOutOfRange)
	}
	if c.metaReplicas < 1 || c.metaReplicas > len(c.providers) {
		return fmt.Errorf("blobvfs: metadata replication degree %d invalid for %d providers: %w",
			c.metaReplicas, len(c.providers), ErrOutOfRange)
	}
	if c.retainLast < 0 {
		return fmt.Errorf("blobvfs: retention window %d: %w", c.retainLast, ErrOutOfRange)
	}
	// The topology validates first: fault validation needs it to
	// resolve rack- and zone-scoped events.
	if err := c.topo.Validate(nodes); err != nil {
		return fmt.Errorf("blobvfs: %w: %w", err, ErrOutOfRange)
	}
	if err := cluster.ValidateFaults(c.faults, nodes, c.topo); err != nil {
		var planErr *cluster.FaultPlanError
		if errors.As(err, &planErr) {
			return fmt.Errorf("blobvfs: %w", err)
		}
		return fmt.Errorf("blobvfs: %w: %w", err, ErrOutOfRange)
	}
	return nil
}
