package blobvfs_test

import (
	"bytes"
	"sync"
	"testing"

	"blobvfs"
	"blobvfs/internal/blob"
)

const (
	syncChunk = 4 << 10
	syncSize  = 64 << 10 // 16 chunks
)

// twoRepos deploys an upstream and a downstream repository on one
// fabric, dedup-enabled, with fixed sync identities.
func twoRepos(t *testing.T, opts ...blobvfs.Option) (*blobvfs.LiveCluster, *blobvfs.Repo, *blobvfs.Repo) {
	t.Helper()
	fab := blobvfs.NewLiveCluster(4)
	common := append([]blobvfs.Option{
		blobvfs.WithChunkSize(syncChunk),
		blobvfs.WithDedup(),
	}, opts...)
	up, err := blobvfs.Open(fab, append(common, blobvfs.WithSyncUUID(0xA))...)
	if err != nil {
		t.Fatal(err)
	}
	down, err := blobvfs.Open(fab, append(common, blobvfs.WithSyncUUID(0xB))...)
	if err != nil {
		t.Fatal(err)
	}
	if up.SyncUUID() != 0xA || down.SyncUUID() != 0xB {
		t.Fatalf("SyncUUID: got %#x/%#x, want 0xa/0xb", up.SyncUUID(), down.SyncUUID())
	}
	return fab, up, down
}

// buildLineage creates a 5-version lineage on the upstream repo: v1
// is the full image, v2..v5 each rewrite a few chunks in place
// (Commit without fork, so the lineage grows). Two of the rewrites
// carry identical content, so the delta dedups within the lineage.
// It returns the image and the expected full contents per version.
func buildLineage(t *testing.T, ctx *blobvfs.Ctx, up *blobvfs.Repo) (blobvfs.ImageID, map[blobvfs.Version][]byte) {
	t.Helper()
	base := img(syncSize, 1)
	ref, err := up.Create(ctx, "", base)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := up.OpenDisk(ctx, ctx.Node(), ref)
	if err != nil {
		t.Fatal(err)
	}
	want := map[blobvfs.Version][]byte{1: append([]byte(nil), base...)}
	cur := append([]byte(nil), base...)
	patches := []struct {
		off  int64
		data []byte
	}{
		{0, img(syncChunk, 50)},               // v2: rewrite chunk 0
		{3 * syncChunk, img(2*syncChunk, 60)}, // v3: rewrite chunks 3-4
		{8 * syncChunk, img(syncChunk, 50)},   // v4: same content as v2's chunk → dedups
		{15 * syncChunk, img(syncChunk, 70)},  // v5: rewrite the last chunk
	}
	for i, p := range patches {
		if _, err := disk.WriteAt(ctx, p.data, p.off); err != nil {
			t.Fatal(err)
		}
		snap, err := disk.Commit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Version != blobvfs.Version(i+2) {
			t.Fatalf("commit %d published v%d", i, snap.Version)
		}
		copy(cur[p.off:], p.data)
		want[snap.Version] = append([]byte(nil), cur...)
	}
	if err := disk.Close(ctx); err != nil {
		t.Fatal(err)
	}
	return ref.Image, want
}

// leafKeys flattens a version's chunk map on a repo.
func leafKeys(t *testing.T, ctx *blobvfs.Ctx, r *blobvfs.Repo, id blobvfs.ImageID, v blobvfs.Version) []blob.ChunkKey {
	t.Helper()
	sys := r.System()
	info, err := sys.VM.Info(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	root, err := sys.VM.Root(ctx, id, v)
	if err != nil {
		t.Fatal(err)
	}
	getter := blob.GetterFunc(func(ref blob.NodeRef) (blob.TreeNode, error) {
		return sys.Meta.Get(ctx, ref)
	})
	leaves, err := blob.CollectLeaves(getter, root, info.Span, 0, info.Span)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]blob.ChunkKey, len(leaves))
	for i, l := range leaves {
		keys[i] = l.Chunk
	}
	return keys
}

// TestExportImportRoundTrip is the round-trip property test: a
// 5-version lineage (one version retired upstream mid-lineage) ships
// as a full archive plus a delta; every imported version must read
// byte-identical downstream, and shared chunks must land with the
// same refcounts as upstream.
func TestExportImportRoundTrip(t *testing.T) {
	fab, up, down := twoRepos(t)
	fab.Run(func(ctx *blobvfs.Ctx) {
		id, want := buildLineage(t, ctx, up)

		// Retire v4 upstream before the export: it must ship as a
		// placeholder and come out retired downstream too.
		if err := up.Retire(ctx, blobvfs.Snapshot{Image: id, Version: 4}); err != nil {
			t.Fatal(err)
		}

		var full bytes.Buffer
		est, err := up.Export(ctx, &full, id, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if est.Seq != 1 || est.Versions != 2 || est.Retired != 0 {
			t.Fatalf("full export stats %+v", est)
		}
		ist, err := down.Import(ctx, &full)
		if err != nil {
			t.Fatal(err)
		}
		localID := ist.Image
		if ist.Versions != 2 || ist.Chunks != est.Chunks {
			t.Fatalf("full import stats %+v", ist)
		}

		var delta bytes.Buffer
		est2, err := up.Export(ctx, &delta, id, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		if est2.Seq != 2 || est2.Versions != 2 || est2.Retired != 1 {
			t.Fatalf("delta export stats %+v", est2)
		}
		// The delta rewrote 4 chunks across v3..v5 (v4 is retired but
		// its surviving chunks ride with v5's tree); far fewer than
		// the 16 a full ship would carry.
		if est2.Chunks >= est.Chunks/2 {
			t.Fatalf("delta shipped %d chunks, full %d", est2.Chunks, est.Chunks)
		}
		ist2, err := down.Import(ctx, &delta)
		if err != nil {
			t.Fatal(err)
		}
		if ist2.Image != localID || ist2.Retired != 1 {
			t.Fatalf("delta import stats %+v", ist2)
		}
		// v4's rewritten chunk repeats v2's content, already imported
		// with the full archive — it must dedup to zero new storage.
		if ist2.DedupedChunks == 0 {
			t.Fatal("identical shipped content did not dedup downstream")
		}

		// Byte-identical reads for every live version, both via the
		// whole-image download and via a mounted disk.
		vsUp, err := up.Versions(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		vsDown, err := down.Versions(ctx, localID)
		if err != nil {
			t.Fatal(err)
		}
		if len(vsUp) != 4 || len(vsDown) != len(vsUp) {
			t.Fatalf("live versions up %v down %v", vsUp, vsDown)
		}
		for i := range vsUp {
			if vsUp[i] != vsDown[i] {
				t.Fatalf("version sets diverge: up %v down %v", vsUp, vsDown)
			}
			v := vsDown[i]
			buf := make([]byte, syncSize)
			if err := down.Download(ctx, blobvfs.Snapshot{Image: localID, Version: v}, buf); err != nil {
				t.Fatalf("download v%d: %v", v, err)
			}
			if !bytes.Equal(buf, want[v]) {
				t.Fatalf("v%d differs after import", v)
			}
		}
		disk, err := down.OpenDisk(ctx, ctx.Node(), blobvfs.Snapshot{Image: localID, Version: 5})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, syncSize)
		if _, err := disk.ReadAt(ctx, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[5]) {
			t.Fatal("disk ReadAt differs from upstream contents")
		}
		if err := disk.Close(ctx); err != nil {
			t.Fatal(err)
		}

		// RefCount parity for the newest version's chunk map: the
		// shared-content aliases upstream (v4's chunk deduping v2's)
		// must reproduce downstream.
		ku := leafKeys(t, ctx, up, id, 5)
		kd := leafKeys(t, ctx, down, localID, 5)
		if len(ku) != len(kd) {
			t.Fatalf("chunk maps differ in length: %d vs %d", len(ku), len(kd))
		}
		for i := range ku {
			if (ku[i] == 0) != (kd[i] == 0) {
				t.Fatalf("sparseness differs at index %d", i)
			}
			if ku[i] == 0 {
				continue
			}
			rcU := up.System().Providers.RefCount(ku[i])
			rcD := down.System().Providers.RefCount(kd[i])
			if rcU != rcD {
				t.Fatalf("refcount at index %d: up %d down %d", i, rcU, rcD)
			}
		}

		// The retired-then-imported edge: v4 is unreadable on both
		// sides, and downstream GC can run over the imported lineage.
		for _, r := range []*blobvfs.Repo{up, down} {
			rid := id
			if r == down {
				rid = localID
			}
			if _, err := r.System().VM.Root(ctx, rid, 4); err == nil {
				t.Fatal("retired v4 still resolvable")
			}
		}
		if _, err := down.GC(ctx); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, syncSize)
		if err := down.Download(ctx, blobvfs.Snapshot{Image: localID, Version: 5}, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want[5]) {
			t.Fatal("v5 differs after downstream GC")
		}
	})
}

// TestExportCloneSharedLineage covers the cross-lineage sharing edge:
// a clone's tree shares every node below its root with the source
// image, so a full export of the clone lineage must ship the shared
// subtrees and the importer must accept leaf chunks it has never seen
// under that image.
func TestExportCloneSharedLineage(t *testing.T) {
	fab, up, down := twoRepos(t)
	fab.Run(func(ctx *blobvfs.Ctx) {
		base := img(syncSize, 9)
		ref, err := up.Create(ctx, "", base)
		if err != nil {
			t.Fatal(err)
		}
		clone, err := up.Clone(ctx, ref)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := up.Export(ctx, &buf, clone.Image, 0, 1); err != nil {
			t.Fatal(err)
		}
		ist, err := down.Import(ctx, &buf)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, syncSize)
		if err := down.Download(ctx, blobvfs.Snapshot{Image: ist.Image, Version: 1}, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatal("imported clone differs from source image")
		}
	})
}

// gateWriter runs fire exactly once, on the first Write — mid-export,
// after the header hits the stream but before the chunk payloads are
// fetched.
type gateWriter struct {
	bytes.Buffer
	once sync.Once
	fire func()
}

func (w *gateWriter) Write(p []byte) (int, error) {
	w.once.Do(w.fire)
	return w.Buffer.Write(p)
}

// TestExportPinsAgainstConcurrentGC is the regression test for the
// export pinning: retirement plus a GC cycle racing a slow export
// must not reclaim chunks the archive still needs.
func TestExportPinsAgainstConcurrentGC(t *testing.T) {
	fab, up, down := twoRepos(t)
	fab.Run(func(ctx *blobvfs.Ctx) {
		id, want := buildLineage(t, ctx, up)

		// Seed the downstream at v2.
		var seed bytes.Buffer
		if _, err := up.Export(ctx, &seed, id, 0, 2); err != nil {
			t.Fatal(err)
		}
		ist, err := down.Import(ctx, &seed)
		if err != nil {
			t.Fatal(err)
		}

		// Export (2,5] through a writer that, mid-stream, retires
		// everything below v5 and runs a GC cycle. The export holds
		// pins on v2..v5, so only v1 — which the archive does not
		// need — may actually retire.
		w := &gateWriter{fire: func() {
			n, err := up.RetireUpTo(ctx, id, 4)
			if err != nil {
				t.Errorf("mid-export retire: %v", err)
			}
			if n != 1 {
				t.Errorf("mid-export retire reclaimed %d versions, want 1 (just the unpinned v1)", n)
			}
			if _, err := up.GC(ctx); err != nil {
				t.Errorf("mid-export GC: %v", err)
			}
		}}
		if _, err := up.Export(ctx, w, id, 2, 5); err != nil {
			t.Fatal(err)
		}

		// The archive must be whole: the downstream import succeeds
		// and serves v5 byte-identical.
		ist2, err := down.Import(ctx, bytes.NewReader(w.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if ist2.Image != ist.Image {
			t.Fatalf("delta landed on image %d, want %d", ist2.Image, ist.Image)
		}
		got := make([]byte, syncSize)
		if err := down.Download(ctx, blobvfs.Snapshot{Image: ist.Image, Version: 5}, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[5]) {
			t.Fatal("v5 differs after GC-racing export")
		}

		// Once the export's pins are gone, the same retirement works.
		if n, err := up.RetireUpTo(ctx, id, 4); err != nil || n != 3 {
			t.Fatalf("post-export retire: n=%d err=%v, want v2..v4 retired", n, err)
		}
		if _, err := up.GC(ctx); err != nil {
			t.Fatal(err)
		}
	})
}
