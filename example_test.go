package blobvfs_test

import (
	"fmt"
	"log"

	"blobvfs"
)

// ExampleRepo_Create uploads a raw image into the repository and tags
// it by name.
func ExampleRepo_Create() {
	fab := blobvfs.NewLiveCluster(4)
	repo, err := blobvfs.Open(fab, blobvfs.WithChunkSize(64<<10))
	if err != nil {
		log.Fatal(err)
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		image := make([]byte, 256<<10)
		base, err := repo.Create(ctx, "debian", image)
		if err != nil {
			log.Fatal(err)
		}
		size, _ := repo.Size(ctx, base)
		fmt.Printf("image %d v%d, %d KB in %d chunks\n",
			base.Image, base.Version, size>>10, size/(64<<10))
	})
	// Output:
	// image 1 v1, 256 KB in 4 chunks
}

// ExampleRepo_OpenDisk mirrors a snapshot on a compute node; content
// arrives lazily, so only the chunks actually read are fetched.
func ExampleRepo_OpenDisk() {
	fab := blobvfs.NewLiveCluster(4)
	repo, err := blobvfs.Open(fab, blobvfs.WithChunkSize(64<<10))
	if err != nil {
		log.Fatal(err)
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		base, err := repo.Create(ctx, "debian", make([]byte, 1<<20))
		if err != nil {
			log.Fatal(err)
		}
		task := ctx.Go("vm", 2, func(cc *blobvfs.Ctx) {
			disk, err := repo.OpenDisk(cc, 2, base)
			if err != nil {
				log.Fatal(err)
			}
			defer disk.Close(cc)
			// Read the "boot sector": one chunk of sixteen is fetched.
			if _, err := disk.ReadAt(cc, make([]byte, 512), 0); err != nil {
				log.Fatal(err)
			}
			st := disk.Stats()
			fmt.Printf("%d of %d chunks fetched on demand\n",
				st.RemoteChunkFetches, disk.Size()/(64<<10))
		})
		ctx.Wait(task)
	})
	// Output:
	// 1 of 16 chunks fetched on demand
}

// ExampleDisk_Commit publishes a disk's local modifications as a new
// snapshot of its lineage; unmodified chunks are shared with the base
// version (shadowing), so only the dirty chunk is stored.
func ExampleDisk_Commit() {
	fab := blobvfs.NewLiveCluster(4)
	repo, err := blobvfs.Open(fab, blobvfs.WithChunkSize(64<<10))
	if err != nil {
		log.Fatal(err)
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		base, err := repo.Create(ctx, "debian", make([]byte, 512<<10))
		if err != nil {
			log.Fatal(err)
		}
		disk, err := repo.OpenDisk(ctx, ctx.Node(), base)
		if err != nil {
			log.Fatal(err)
		}
		defer disk.Close(ctx)
		if _, err := disk.WriteAt(ctx, []byte("local change"), 100<<10); err != nil {
			log.Fatal(err)
		}
		snap, err := disk.Commit(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published v%d: %d chunk committed, %d shared\n",
			snap.Version, disk.Stats().CommittedChunks,
			disk.Size()/(64<<10)-disk.Stats().CommittedChunks)
	})
	// Output:
	// published v2: 1 chunk committed, 7 shared
}
