package blobvfs

import (
	"fmt"
	"io"
	"sync/atomic"

	"blobvfs/internal/mirror"
)

// diskOptions is the resolved per-disk configuration.
type diskOptions struct {
	real bool
}

// DiskOption configures one OpenDisk call.
type DiskOption func(*diskOptions)

// Synthetic opens the disk without materializing bytes: every access
// is charged on the fabric (lazy fetches, local hits, commits) but no
// data moves. This is what simulation-scale deployments use; a
// synthetic disk rejects ReadAt/WriteAt data access with ErrSynthetic
// while Read/Write (charge-only) work normally.
func Synthetic() DiskOption {
	return func(o *diskOptions) { o.real = false }
}

// Disk is an open mirrored image: the raw file the hypervisor sees on
// one node. Content is fetched lazily from the repository (or cohort
// peers) on first access; writes stay in the local mirror until
// Commit. Hypervisor-facing methods must be called from the owning
// activity, with one sanctioned exception: Prefetch may run from a
// concurrent activity to overlap with a boot.
type Disk struct {
	repo   *Repo
	im     *mirror.Image
	origin Snapshot
	closed atomic.Bool
}

// Size returns the image size in bytes.
func (d *Disk) Size() int64 { return d.im.Size() }

// Image returns the lineage currently backing the disk (it changes
// when Repo.Snapshot forks).
func (d *Disk) Image() ImageID { return d.im.BlobID() }

// Version returns the snapshot version the disk currently mirrors (it
// advances on Commit).
func (d *Disk) Version() Version { return d.im.Version() }

// Current returns the snapshot the disk currently mirrors.
func (d *Disk) Current() Snapshot {
	return Snapshot{Image: d.im.BlobID(), Version: d.im.Version()}
}

// Origin returns the snapshot the disk was opened from.
func (d *Disk) Origin() Snapshot { return d.origin }

// Dirty reports whether the disk has uncommitted local modifications.
func (d *Disk) Dirty() bool { return d.im.Dirty() }

// Stats returns a copy of the disk's access counters.
func (d *Disk) Stats() DiskStats { return d.im.Stats() }

// ReadAt reads len(p) bytes at offset off into p, fetching missing
// chunks from the repository. It fails with ErrOutOfRange beyond the
// image and ErrSynthetic on a synthetic disk; for the std-io
// contract (short reads, io.EOF) use IO.
func (d *Disk) ReadAt(ctx *Ctx, p []byte, off int64) (int, error) {
	return d.im.ReadAt(ctx, p, off)
}

// WriteAt writes p at offset off into the local mirror; the
// modification stays node-local until Commit.
func (d *Disk) WriteAt(ctx *Ctx, p []byte, off int64) (int, error) {
	return d.im.WriteAt(ctx, p, off)
}

// Read charges a read of [off, off+n) without moving data — the
// synthetic-disk access path the boot-trace driver uses.
func (d *Disk) Read(ctx *Ctx, off, n int64) error { return d.im.Read(ctx, off, n) }

// Write charges a write of [off, off+n) without moving data.
func (d *Disk) Write(ctx *Ctx, off, n int64) error { return d.im.Write(ctx, off, n) }

// Commit publishes the disk's local modifications as a new snapshot of
// its current lineage and returns it — the COMMIT primitive. Without
// local modifications the current snapshot is returned unchanged. To
// fork into a fresh lineage first, use Repo.Snapshot.
func (d *Disk) Commit(ctx *Ctx) (Snapshot, error) {
	v, err := d.im.Commit(ctx)
	if err != nil {
		return Snapshot{}, err
	}
	return Snapshot{Image: d.im.BlobID(), Version: v}, nil
}

// Prefetch walks an access profile (chunk indices in first-access
// order, as returned by AccessOrder) and fetches every not-yet-local
// chunk, so a boot following the same pattern finds its working set
// already mirrored. Run it from a concurrent activity to overlap with
// the boot.
func (d *Disk) Prefetch(ctx *Ctx, profile []int64) error {
	return d.im.Prefetch(ctx, profile)
}

// AccessOrder returns the chunk indices this disk fetched on demand,
// in first-access order — a reusable profile for Prefetch on later
// deployments of the same image.
func (d *Disk) AccessOrder() []int64 { return d.im.AccessOrder() }

// Close releases the disk: its local modification metadata is
// persisted on the node (a later OpenDisk of the same snapshot there
// resumes where it left off) and the snapshot's open-pin is released,
// making it eligible for retirement. Close is idempotent and safe to
// call concurrently — a second Close neither double-unpins nor
// re-writes the modification metadata.
func (d *Disk) Close(ctx *Ctx) error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	d.im.Close(ctx)
	return nil
}

// IO binds the disk to an activity context, adapting it to the
// standard library's io interfaces: io.ReaderAt, io.WriterAt,
// io.ReadWriteSeeker and io.Closer. The binding follows std-io
// conventions — reads at or beyond the image end return io.EOF, a read
// crossing the end is short — so the disk composes with
// io.SectionReader, io.Copy, io.ReadFull and friends. Like the disk
// itself, a binding belongs to the bound activity.
func (d *Disk) IO(ctx *Ctx) *DiskIO {
	return &DiskIO{d: d, ctx: ctx}
}

// DiskIO is a Disk bound to one activity's context, satisfying the
// standard library's io interfaces. See Disk.IO.
//
// A binding belongs to the bound activity: like the disk's own
// methods, Read/Write/Seek must not be called from concurrent
// activities (the sequential position is deliberately unguarded — a
// bare mutex held across the demand-fetch fabric operations would
// stall the discrete-event scheduler; share the Disk and bind per
// activity instead).
type DiskIO struct {
	d   *Disk
	ctx *Ctx
	off int64 // sequential Read/Write/Seek position
}

var (
	_ io.ReaderAt        = (*DiskIO)(nil)
	_ io.WriterAt        = (*DiskIO)(nil)
	_ io.ReadWriteSeeker = (*DiskIO)(nil)
	_ io.Closer          = (*DiskIO)(nil)
)

// ReadAt implements io.ReaderAt.
func (f *DiskIO) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("blobvfs: read at negative offset %d: %w", off, ErrOutOfRange)
	}
	size := f.d.Size()
	if off >= size {
		return 0, io.EOF
	}
	eof := false
	if off+int64(len(p)) > size {
		p = p[:size-off]
		eof = true
	}
	n, err := f.d.ReadAt(f.ctx, p, off)
	if err != nil {
		return 0, err
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt. Writes past the image end fail with
// ErrOutOfRange: a virtual disk does not grow.
func (f *DiskIO) WriteAt(p []byte, off int64) (int, error) {
	return f.d.WriteAt(f.ctx, p, off)
}

// Read implements io.Reader at the binding's sequential position.
func (f *DiskIO) Read(p []byte) (int, error) {
	n, err := f.ReadAt(p, f.off)
	f.off += int64(n)
	return n, err
}

// Write implements io.Writer at the binding's sequential position.
func (f *DiskIO) Write(p []byte) (int, error) {
	n, err := f.WriteAt(p, f.off)
	f.off += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (f *DiskIO) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = f.d.Size()
	default:
		return 0, fmt.Errorf("blobvfs: seek whence %d: %w", whence, ErrOutOfRange)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("blobvfs: seek to negative offset %d: %w", pos, ErrOutOfRange)
	}
	f.off = pos
	return pos, nil
}

// Close implements io.Closer by closing the underlying disk with the
// bound context.
func (f *DiskIO) Close() error { return f.d.Close(f.ctx) }
