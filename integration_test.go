package blobvfs_test

import (
	"testing"

	"blobvfs"
	"blobvfs/internal/blob"
	"blobvfs/internal/cluster"
	"blobvfs/internal/mirror"
)

// lifecycleCounters samples everything the figure scenarios measure:
// virtual time, network traffic, and the service-side counters.
type lifecycleCounters struct {
	Now        float64
	Traffic    int64
	ProvReads  int64
	ProvWrites int64
	MetaGets   int64
	MetaNodes  int64
	Chunks     int
	Reclaimed  int64
	FreedNodes int64
}

func sampleCounters(fab *cluster.Sim, sys *blob.System) lifecycleCounters {
	return lifecycleCounters{
		Now:        fab.Now(),
		Traffic:    fab.NetTraffic(),
		ProvReads:  sys.Providers.Reads.Load(),
		ProvWrites: sys.Providers.Writes.Load(),
		MetaGets:   sys.Meta.Gets.Load(),
		MetaNodes:  sys.Meta.NodesServed.Load(),
		Chunks:     sys.Providers.ChunkCount(),
		Reclaimed:  sys.Providers.Reclaimed.Load(),
		FreedNodes: sys.Meta.Freed.Load(),
	}
}

const (
	lcNodes     = 4        // compute nodes, one instance each
	lcImageSize = 64 << 20 // synthetic base image
	lcChunk     = 256 << 10
	lcCycles    = 3 // write→commit rounds per instance
	lcKeep      = 1 // retention window
)

// runLifecycleFacade drives create → deploy-on-N-nodes → write →
// commit → clone → retire → GC purely through the blobvfs façade.
func runLifecycleFacade(t *testing.T) lifecycleCounters {
	t.Helper()
	fab := cluster.NewSim(cluster.DefaultConfig(lcNodes + 1))
	provs := make([]blobvfs.NodeID, lcNodes)
	for i := range provs {
		provs[i] = blobvfs.NodeID(i)
	}
	repo, err := blobvfs.Open(fab,
		blobvfs.WithProviders(provs...),
		blobvfs.WithManager(blobvfs.NodeID(lcNodes)),
		blobvfs.WithChunkSize(lcChunk))
	if err != nil {
		t.Fatal(err)
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		base, err := repo.CreateSynthetic(ctx, "base", lcImageSize)
		if err != nil {
			t.Fatal(err)
		}
		var tasks []blobvfs.Task
		for n := 0; n < lcNodes; n++ {
			node := blobvfs.NodeID(n)
			tasks = append(tasks, ctx.Go("vm", node, func(cc *blobvfs.Ctx) {
				disk, err := repo.OpenDisk(cc, node, base, blobvfs.Synthetic())
				if err != nil {
					t.Error(err)
					return
				}
				// Boot-ish read of the image head, then churn cycles:
				// rewrite the same hot region, snapshot, retire, so old
				// versions accumulate exclusive garbage.
				if err := disk.Read(cc, 0, 8<<20); err != nil {
					t.Error(err)
					return
				}
				for cyc := 0; cyc < lcCycles; cyc++ {
					if err := disk.Write(cc, 0, 2<<20); err != nil {
						t.Error(err)
						return
					}
					if _, err := repo.Snapshot(cc, disk, disk.Image() == base.Image); err != nil {
						t.Error(err)
						return
					}
					if disk.Image() != base.Image {
						if _, err := repo.RetireOld(cc, disk, lcKeep); err != nil {
							t.Error(err)
							return
						}
					}
				}
				if err := disk.Close(cc); err != nil {
					t.Error(err)
				}
			}))
		}
		ctx.WaitAll(tasks)
		if _, err := repo.GC(ctx); err != nil {
			t.Error(err)
		}
	})
	return sampleCounters(fab, repo.System())
}

// runLifecycleDirect is the same scenario hand-wired over the internal
// layers, exactly as callers did before the façade existed.
func runLifecycleDirect(t *testing.T) lifecycleCounters {
	t.Helper()
	fab := cluster.NewSim(cluster.DefaultConfig(lcNodes + 1))
	provs := make([]cluster.NodeID, lcNodes)
	for i := range provs {
		provs[i] = cluster.NodeID(i)
	}
	sys := blob.NewSystem(provs, cluster.NodeID(lcNodes), 1)
	fab.Run(func(ctx *cluster.Ctx) {
		c := blob.NewClient(sys)
		baseID, err := c.Create(ctx, lcImageSize, lcChunk)
		if err != nil {
			t.Fatal(err)
		}
		baseV, err := c.WriteFull(ctx, baseID, 0, uint64(baseID))
		if err != nil {
			t.Fatal(err)
		}
		var tasks []cluster.Task
		for n := 0; n < lcNodes; n++ {
			node := cluster.NodeID(n)
			tasks = append(tasks, ctx.Go("vm", node, func(cc *cluster.Ctx) {
				mod := mirror.NewModule(node, blob.NewClient(sys), mirror.DefaultConfig())
				im, err := mod.Open(cc, baseID, baseV, false)
				if err != nil {
					t.Error(err)
					return
				}
				if err := im.Read(cc, 0, 8<<20); err != nil {
					t.Error(err)
					return
				}
				for cyc := 0; cyc < lcCycles; cyc++ {
					if err := im.Write(cc, 0, 2<<20); err != nil {
						t.Error(err)
						return
					}
					if im.BlobID() == baseID {
						if err := im.Clone(cc); err != nil {
							t.Error(err)
							return
						}
					}
					if _, err := im.Commit(cc); err != nil {
						t.Error(err)
						return
					}
					if im.BlobID() != baseID {
						if upTo := im.Version() - lcKeep; upTo >= 1 {
							if _, err := sys.VM.RetireUpTo(cc, im.BlobID(), upTo); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}
				im.Close(cc)
			}))
		}
		ctx.WaitAll(tasks)
		if _, err := blob.NewCollector(sys).Collect(ctx); err != nil {
			t.Error(err)
		}
	})
	return sampleCounters(fab, sys)
}

// TestFacadeMatchesDirectWiring proves the façade adds no hidden cost:
// the full image lifecycle driven through blobvfs produces exactly the
// counters of the hand-wired internal path — same virtual time, same
// traffic, same provider/metadata operation counts, same reclamation.
func TestFacadeMatchesDirectWiring(t *testing.T) {
	facade := runLifecycleFacade(t)
	direct := runLifecycleDirect(t)
	if facade != direct {
		t.Fatalf("façade lifecycle diverges from direct wiring:\n  facade: %+v\n  direct: %+v", facade, direct)
	}
	// Sanity: the scenario actually exercised every phase.
	if facade.Reclaimed == 0 || facade.FreedNodes == 0 {
		t.Fatalf("scenario reclaimed nothing: %+v", facade)
	}
	if facade.ProvReads == 0 || facade.MetaGets == 0 {
		t.Fatalf("scenario fetched nothing: %+v", facade)
	}
}
