package blobvfs_test

import (
	"bytes"
	"errors"
	"testing"

	"blobvfs"
)

// TestWithFaultPlanEndToEnd: the façade surface of the fault
// subsystem — a plan installed with WithFaultPlan, armed with
// ArmFaults, kills a provider; reads keep working through failover,
// the chunks the dead node held are re-replicated, and the Stats
// counters expose all of it.
func TestWithFaultPlanEndToEnd(t *testing.T) {
	fab, repo := newRepo(t, 4,
		blobvfs.WithReplicas(2),
		blobvfs.WithFaultPlan(blobvfs.KillAt(0, 1)),
	)
	base := img(32<<10, 3)
	var ref blobvfs.Snapshot
	fab.Run(func(ctx *blobvfs.Ctx) {
		var err error
		ref, err = repo.Create(ctx, "img", base)
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.ArmFaults(ctx); err != nil {
			t.Fatal(err)
		}
		if err := repo.ArmFaults(ctx); err != nil {
			t.Fatalf("second arm must be a no-op, got %v", err)
		}
	})
	// Run returned, so the injector finished: node 1 is down and its
	// chunks were re-replicated.
	if repo.NodeAlive(1) {
		t.Fatal("node 1 still alive after the plan ran")
	}
	st := repo.Stats()
	if st.Rereplicated == 0 {
		t.Fatal("no chunks re-replicated after the provider death")
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		defer disk.Close(ctx)
		got := make([]byte, len(base))
		if _, err := disk.ReadAt(ctx, got, 0); err != nil {
			t.Fatalf("read with a dead provider: %v", err)
		}
		if !bytes.Equal(got, base) {
			t.Fatal("failover read returned wrong bytes")
		}
	})
	st = repo.Stats()
	if st.Failovers == 0 {
		t.Fatal("reads over a dead primary recorded no failovers")
	}
	if st.FailedFetches != 0 {
		t.Fatalf("FailedFetches = %d, want 0 (replication must absorb one death)", st.FailedFetches)
	}
}

// TestFaultPlanValidationAndArming: malformed plans are rejected at
// Open, and ArmFaults demands a configured plan on an open repo.
func TestFaultPlanValidationAndArming(t *testing.T) {
	fab := blobvfs.NewLiveCluster(2)
	if _, err := blobvfs.Open(fab, blobvfs.WithFaultPlan(blobvfs.KillAt(1, 7))); !errors.Is(err, blobvfs.ErrOutOfRange) {
		t.Fatalf("out-of-range fault node: %v, want ErrOutOfRange", err)
	}
	if _, err := blobvfs.Open(fab, blobvfs.WithFaultPlan(blobvfs.ReviveAt(-1, 0))); !errors.Is(err, blobvfs.ErrOutOfRange) {
		t.Fatalf("negative fault time: %v, want ErrOutOfRange", err)
	}

	repo, err := blobvfs.Open(fab)
	if err != nil {
		t.Fatal(err)
	}
	if !repo.NodeAlive(0) || !repo.NodeAlive(1) {
		t.Fatal("fresh repo must report all nodes alive")
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		if err := repo.ArmFaults(ctx); !errors.Is(err, blobvfs.ErrNotFound) {
			t.Fatalf("arming without a plan: %v, want ErrNotFound", err)
		}
		repo.Close()
		if err := repo.ArmFaults(ctx); !errors.Is(err, blobvfs.ErrClosed) {
			t.Fatalf("arming a closed repo: %v, want ErrClosed", err)
		}
	})
}
