package blobvfs_test

import (
	"bytes"
	"errors"
	"testing"

	"blobvfs"
)

// TestWithFaultPlanEndToEnd: the façade surface of the fault
// subsystem — a plan installed with WithFaultPlan, armed with
// ArmFaults, kills a provider; reads keep working through failover,
// the chunks the dead node held are re-replicated, and the Stats
// counters expose all of it.
func TestWithFaultPlanEndToEnd(t *testing.T) {
	fab, repo := newRepo(t, 4,
		blobvfs.WithReplicas(2),
		blobvfs.WithFaultPlan(blobvfs.KillAt(0, 1)),
	)
	base := img(32<<10, 3)
	var ref blobvfs.Snapshot
	fab.Run(func(ctx *blobvfs.Ctx) {
		var err error
		ref, err = repo.Create(ctx, "img", base)
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.ArmFaults(ctx); err != nil {
			t.Fatal(err)
		}
		if err := repo.ArmFaults(ctx); err != nil {
			t.Fatalf("second arm must be a no-op, got %v", err)
		}
	})
	// Run returned, so the injector finished: node 1 is down and its
	// chunks were re-replicated.
	if repo.NodeAlive(1) {
		t.Fatal("node 1 still alive after the plan ran")
	}
	st := repo.Stats()
	if st.Rereplicated == 0 {
		t.Fatal("no chunks re-replicated after the provider death")
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		defer disk.Close(ctx)
		got := make([]byte, len(base))
		if _, err := disk.ReadAt(ctx, got, 0); err != nil {
			t.Fatalf("read with a dead provider: %v", err)
		}
		if !bytes.Equal(got, base) {
			t.Fatal("failover read returned wrong bytes")
		}
	})
	st = repo.Stats()
	if st.Failovers == 0 {
		t.Fatal("reads over a dead primary recorded no failovers")
	}
	if st.FailedFetches != 0 {
		t.Fatalf("FailedFetches = %d, want 0 (replication must absorb one death)", st.FailedFetches)
	}
}

// TestWithMetaReplicasEndToEnd: the replicated control plane through
// the façade — a repo opened with WithMetaReplicas(2) loses a
// metadata provider, the tree nodes it held are re-replicated, reads
// keep resolving metadata through failover, and not a single descent
// fails.
func TestWithMetaReplicasEndToEnd(t *testing.T) {
	fab, repo := newRepo(t, 4,
		blobvfs.WithReplicas(2),
		blobvfs.WithMetaReplicas(2),
		blobvfs.WithFaultPlan(blobvfs.KillAt(0, 1)),
	)
	base := img(32<<10, 5)
	var ref blobvfs.Snapshot
	fab.Run(func(ctx *blobvfs.Ctx) {
		var err error
		ref, err = repo.Create(ctx, "img", base)
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.ArmFaults(ctx); err != nil {
			t.Fatal(err)
		}
	})
	st := repo.Stats()
	if st.MetaRereplicated == 0 {
		t.Fatal("no metadata re-replicated after the provider death")
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		defer disk.Close(ctx)
		got := make([]byte, len(base))
		if _, err := disk.ReadAt(ctx, got, 0); err != nil {
			t.Fatalf("read with a dead metadata provider: %v", err)
		}
		if !bytes.Equal(got, base) {
			t.Fatal("failover read returned wrong bytes")
		}
	})
	st = repo.Stats()
	if st.MetaFailovers == 0 {
		t.Fatal("descents over a dead metadata primary recorded no failovers")
	}
	if st.FailedDescents != 0 {
		t.Fatalf("FailedDescents = %d, want 0 (metadata replication must absorb one death)", st.FailedDescents)
	}
}

// TestWithMetaReplicasValidation: the degree must fit the provider
// pool, like WithReplicas.
func TestWithMetaReplicasValidation(t *testing.T) {
	fab := blobvfs.NewLiveCluster(3)
	for _, r := range []int{0, -1, 4} {
		if _, err := blobvfs.Open(fab, blobvfs.WithMetaReplicas(r)); !errors.Is(err, blobvfs.ErrOutOfRange) {
			t.Errorf("WithMetaReplicas(%d): err = %v, want ErrOutOfRange", r, err)
		}
	}
}

// TestScopedFaultEventsEndToEnd: rack- and zone-scoped plan events
// expand to their member nodes when armed, and need a topology to
// resolve at Open.
func TestScopedFaultEventsEndToEnd(t *testing.T) {
	topo := blobvfs.Topology{
		Zones: 2, RacksPerZone: 2, NodesPerRack: 2,
		RackBandwidth: 1e9, ZoneBandwidth: 1e9,
	}
	fab := blobvfs.NewLiveCluster(8)
	repo, err := blobvfs.Open(fab,
		blobvfs.WithTopology(topo),
		blobvfs.WithFaultPlan(blobvfs.KillRackAt(0, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		if err := repo.ArmFaults(ctx); err != nil {
			t.Fatal(err)
		}
	})
	for n := blobvfs.NodeID(0); n < 8; n++ {
		want := n != 2 && n != 3 // rack 1 = nodes 2,3
		if repo.NodeAlive(n) != want {
			t.Errorf("node %d alive = %v after rack kill, want %v", n, repo.NodeAlive(n), want)
		}
	}

	// Scoped events without a topology cannot resolve.
	if _, err := blobvfs.Open(fab, blobvfs.WithFaultPlan(blobvfs.KillZoneAt(0, 0))); !errors.Is(err, blobvfs.ErrOutOfRange) {
		t.Fatalf("zone-scoped event on a flat repo: %v, want ErrOutOfRange", err)
	}
}

// TestRedundantFaultPlanRejected: a plan that kills an already-dead
// node (or revives a live one) is a scenario bug; Open rejects it with
// the typed *FaultPlanError naming the offending transition.
func TestRedundantFaultPlanRejected(t *testing.T) {
	fab := blobvfs.NewLiveCluster(4)
	_, err := blobvfs.Open(fab, blobvfs.WithFaultPlan(
		blobvfs.KillAt(1, 2), blobvfs.KillAt(3, 2),
	))
	var planErr *blobvfs.FaultPlanError
	if !errors.As(err, &planErr) {
		t.Fatalf("kill+kill plan: err = %v, want *FaultPlanError", err)
	}
	if planErr.Node != 2 || planErr.At != 3 {
		t.Fatalf("FaultPlanError = %+v, want node 2 at t=3", planErr)
	}
	if _, err := blobvfs.Open(fab, blobvfs.WithFaultPlan(blobvfs.ReviveAt(0, 1))); err == nil {
		t.Fatal("revive-before-kill plan accepted")
	}
}

// TestFaultPlanValidationAndArming: malformed plans are rejected at
// Open, and ArmFaults demands a configured plan on an open repo.
func TestFaultPlanValidationAndArming(t *testing.T) {
	fab := blobvfs.NewLiveCluster(2)
	if _, err := blobvfs.Open(fab, blobvfs.WithFaultPlan(blobvfs.KillAt(1, 7))); !errors.Is(err, blobvfs.ErrOutOfRange) {
		t.Fatalf("out-of-range fault node: %v, want ErrOutOfRange", err)
	}
	if _, err := blobvfs.Open(fab, blobvfs.WithFaultPlan(blobvfs.ReviveAt(-1, 0))); !errors.Is(err, blobvfs.ErrOutOfRange) {
		t.Fatalf("negative fault time: %v, want ErrOutOfRange", err)
	}

	repo, err := blobvfs.Open(fab)
	if err != nil {
		t.Fatal(err)
	}
	if !repo.NodeAlive(0) || !repo.NodeAlive(1) {
		t.Fatal("fresh repo must report all nodes alive")
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		if err := repo.ArmFaults(ctx); !errors.Is(err, blobvfs.ErrNotFound) {
			t.Fatalf("arming without a plan: %v, want ErrNotFound", err)
		}
		repo.Close()
		if err := repo.ArmFaults(ctx); !errors.Is(err, blobvfs.ErrClosed) {
			t.Fatalf("arming a closed repo: %v, want ErrClosed", err)
		}
	})
}
