package blobvfs_test

import (
	"bytes"
	"errors"
	"testing"

	"blobvfs"
)

// TestImportTypedErrors drives every documented import failure through
// the public Repo.Export/Import surface and checks that each one is
// errors.Is-able against its sentinel, and that a failed import leaves
// the downstream version set untouched.
func TestImportTypedErrors(t *testing.T) {
	fab := blobvfs.NewLiveCluster(4)
	common := []blobvfs.Option{
		blobvfs.WithChunkSize(syncChunk),
		blobvfs.WithDedup(),
	}
	up, err := blobvfs.Open(fab, append(common[:len(common):len(common)], blobvfs.WithSyncUUID(0xA))...)
	if err != nil {
		t.Fatal(err)
	}
	// A third repository with its own identity, for the wrong-source case.
	other, err := blobvfs.Open(fab, append(common[:len(common):len(common)], blobvfs.WithSyncUUID(0xC))...)
	if err != nil {
		t.Fatal(err)
	}

	fab.Run(func(ctx *blobvfs.Ctx) {
		id, _ := buildLineage(t, ctx, up)

		// Three archives in sequence: full (0,2], delta (2,3], delta (3,5].
		var full, d23, d35 bytes.Buffer
		if _, err := up.Export(ctx, &full, id, 0, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := up.Export(ctx, &d23, id, 2, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := up.Export(ctx, &d35, id, 3, 5); err != nil {
			t.Fatal(err)
		}

		// A full archive from the unrelated source repository.
		foreignRef, err := other.Create(ctx, "", img(syncSize, 99))
		if err != nil {
			t.Fatal(err)
		}
		var foreign bytes.Buffer
		if _, err := other.Export(ctx, &foreign, foreignRef.Image, 0, 1); err != nil {
			t.Fatal(err)
		}

		corrupt := append([]byte(nil), full.Bytes()...)
		corrupt[len(corrupt)/2] ^= 0x01

		cases := []struct {
			name string
			// prep imports prerequisites and/or mutates the downstream;
			// it returns the image the archives land on locally (0 if
			// none imported yet).
			prep    func(t *testing.T, ctx *blobvfs.Ctx, down *blobvfs.Repo) blobvfs.ImageID
			archive []byte
			want    error
		}{
			{
				name:    "truncated header",
				archive: full.Bytes()[:10],
				want:    blobvfs.ErrArchiveCorrupt,
			},
			{
				name:    "checksum mismatch",
				archive: corrupt,
				want:    blobvfs.ErrArchiveCorrupt,
			},
			{
				name: "sequence gap",
				prep: func(t *testing.T, ctx *blobvfs.Ctx, down *blobvfs.Repo) blobvfs.ImageID {
					ist, err := down.Import(ctx, bytes.NewReader(full.Bytes()))
					if err != nil {
						t.Fatal(err)
					}
					return ist.Image
				},
				archive: d35.Bytes(), // skips the (2,3] delta
				want:    blobvfs.ErrSequenceGap,
			},
			{
				name: "wrong source repository",
				prep: func(t *testing.T, ctx *blobvfs.Ctx, down *blobvfs.Repo) blobvfs.ImageID {
					ist, err := down.Import(ctx, bytes.NewReader(full.Bytes()))
					if err != nil {
						t.Fatal(err)
					}
					return ist.Image
				},
				archive: foreign.Bytes(),
				want:    blobvfs.ErrSourceMismatch,
			},
			{
				name: "base retired on importing side",
				prep: func(t *testing.T, ctx *blobvfs.Ctx, down *blobvfs.Repo) blobvfs.ImageID {
					ist, err := down.Import(ctx, bytes.NewReader(full.Bytes()))
					if err != nil {
						t.Fatal(err)
					}
					if _, err := down.Import(ctx, bytes.NewReader(d23.Bytes())); err != nil {
						t.Fatal(err)
					}
					// Retire the delta's base version locally.
					if err := down.Retire(ctx, blobvfs.Snapshot{Image: ist.Image, Version: 3}); err != nil {
						t.Fatal(err)
					}
					return ist.Image
				},
				archive: d35.Bytes(),
				want:    blobvfs.ErrBaseMissing,
			},
			{
				name:    "delta into fresh repository",
				archive: d23.Bytes(),
				want:    blobvfs.ErrBaseMissing,
			},
		}

		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				down, err := blobvfs.Open(fab, append(common[:len(common):len(common)], blobvfs.WithSyncUUID(0xB))...)
				if err != nil {
					t.Fatal(err)
				}
				var localID blobvfs.ImageID
				if tc.prep != nil {
					localID = tc.prep(t, ctx, down)
				}
				var before []blobvfs.Version
				if localID != 0 {
					if before, err = down.Versions(ctx, localID); err != nil {
						t.Fatal(err)
					}
				}
				_, err = down.Import(ctx, bytes.NewReader(tc.archive))
				if !errors.Is(err, tc.want) {
					t.Fatalf("Import err = %v, want %v", err, tc.want)
				}
				if localID != 0 {
					after, err := down.Versions(ctx, localID)
					if err != nil {
						t.Fatal(err)
					}
					if len(after) != len(before) {
						t.Fatalf("failed import changed the version set: %v -> %v", before, after)
					}
					for i := range after {
						if after[i] != before[i] {
							t.Fatalf("failed import changed the version set: %v -> %v", before, after)
						}
					}
				}
			})
		}
	})
}
