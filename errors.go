package blobvfs

import (
	"blobvfs/internal/blob"
	"blobvfs/internal/mirror"
	reposync "blobvfs/internal/sync"
)

// The façade's error taxonomy. These are the same sentinel values the
// internal layers wrap with %w, re-exported so that
// errors.Is(err, blobvfs.ErrNotFound) (and peers) holds for any error
// that crosses the façade, no matter how deep it originated.
var (
	// ErrNotFound reports a missing image, version, metadata node or
	// chunk. Detail rides along as *NotFoundError.
	ErrNotFound = blob.ErrNotFound
	// ErrOutOfRange reports an offset, length, chunk index or version
	// outside the addressed object's bounds.
	ErrOutOfRange = blob.ErrOutOfRange
	// ErrVersionRetired reports an access to a snapshot deleted by
	// retention; its storage is (or is about to be) reclaimed.
	ErrVersionRetired = blob.ErrVersionRetired
	// ErrVersionPinned reports a retirement blocked by an open holder
	// (a mounted disk, or an in-flight commit building on the version).
	ErrVersionPinned = blob.ErrVersionPinned
	// ErrAlreadyPublished reports a duplicate version publication.
	ErrAlreadyPublished = blob.ErrAlreadyPublished
	// ErrCorruptTree reports a metadata segment-tree invariant
	// violation.
	ErrCorruptTree = blob.ErrCorruptTree
	// ErrInvalidWrite reports a malformed write set (empty, duplicate
	// or unsorted indices, oversized payload).
	ErrInvalidWrite = blob.ErrInvalidWrite
	// ErrNoReplica reports that every replica of a chunk's placement
	// group is down.
	ErrNoReplica = blob.ErrNoReplica

	// ErrClosed reports an operation on a closed Disk or Repo.
	ErrClosed = mirror.ErrClosed
	// ErrWrongNode reports a Disk operation from an activity on a
	// different node than the disk (disks are strictly node-local).
	ErrWrongNode = mirror.ErrWrongNode
	// ErrSynthetic reports a data-carrying operation on a synthetic
	// disk (costs modeled, no bytes materialized).
	ErrSynthetic = mirror.ErrSynthetic

	// ErrArchiveCorrupt reports a sync archive that fails structural
	// validation: truncation, a bad magic or format version, a
	// checksum mismatch, or records that violate their invariants.
	ErrArchiveCorrupt = reposync.ErrArchiveCorrupt
	// ErrSequenceGap reports a sync archive that is not the exact
	// successor of the last one imported (a skipped delta, a replay,
	// or a full archive for an image already tracked).
	ErrSequenceGap = reposync.ErrSequenceGap
	// ErrBaseMissing reports a delta archive whose base version the
	// importing repository never imported or has retired.
	ErrBaseMissing = reposync.ErrBaseMissing
	// ErrSourceMismatch reports a sync archive from a different
	// source repository than the one this importer syncs from.
	ErrSourceMismatch = reposync.ErrSourceMismatch
)

// NotFoundError carries the kind and identity of a missing object; it
// wraps ErrNotFound. Reach it with errors.As.
type NotFoundError = blob.NotFoundError

// PinnedError identifies which version a blocked retirement was pinned
// by; it wraps ErrVersionPinned. Reach it with errors.As.
type PinnedError = blob.PinnedError
