#!/usr/bin/env sh
# bench.sh runs the repository's key benchmarks — the paper-scale
# figure regenerations plus the metadata hot-path microbenchmarks —
# with allocation reporting, and writes the raw output to bench.txt
# (the artifact CI uploads, and the input `benchstat old.txt new.txt`
# compares across commits). It then distills the flash-crowd family
# (flash, degraded, crosszone) into BENCH_flashcrowd.json via
# cmd/benchjson: provider reads, cross-zone bytes (flat vs
# topology-aware, with the reduction factor) and ns/op, for dashboards
# that don't want to parse Go benchmark output.
#
# Usage: scripts/bench.sh [output-file] [json-file]
set -eu

out="${1:-bench.txt}"
json="${2:-BENCH_flashcrowd.json}"

go test -run '^$' \
  -bench 'BenchmarkFig4PaperScale|BenchmarkFlashCrowd256|BenchmarkFlashCrowdDegraded|BenchmarkFlashCrowdCrossZone|BenchmarkChurn|BenchmarkCommitDataStructures|BenchmarkMetadataHotPath|BenchmarkMetadataColdDescent' \
  -benchmem -count=1 -cpu 1,8 -timeout 30m . | tee "$out"

go run ./cmd/benchjson -in "$out" -out "$json"
