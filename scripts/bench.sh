#!/usr/bin/env sh
# bench.sh runs the repository's key benchmarks — the paper-scale
# figure regenerations plus the metadata hot-path microbenchmarks —
# with allocation reporting, and writes the raw output to bench.txt
# (the artifact CI uploads, and the input `benchstat old.txt new.txt`
# compares across commits).
#
# Usage: scripts/bench.sh [output-file]
set -eu

out="${1:-bench.txt}"

go test -run '^$' \
  -bench 'BenchmarkFig4PaperScale|BenchmarkFlashCrowd256|BenchmarkFlashCrowdDegraded|BenchmarkChurn|BenchmarkCommitDataStructures|BenchmarkMetadataHotPath|BenchmarkMetadataColdDescent' \
  -benchmem -count=1 -cpu 1,8 -timeout 30m . | tee "$out"
