#!/usr/bin/env sh
# bench.sh runs the repository's key benchmarks — the paper-scale
# figure regenerations plus the metadata hot-path microbenchmarks —
# with allocation reporting, and writes the raw output to bench.txt
# (the artifact CI uploads, and the input `benchstat old.txt new.txt`
# compares across commits). It then distills two families via
# cmd/benchjson for dashboards that don't want to parse Go benchmark
# output: the flash-crowd family (flash, degraded, crosszone) into
# BENCH_flashcrowd.json — provider reads, cross-zone bytes (flat vs
# topology-aware, with the reduction factor) and ns/op — and the
# multisnapshot write path into BENCH_multisnapshot.json — provider
# write RPCs per commit round, unbatched vs batched, with the
# reduction factor and ns/op — and the metadata-outage family into
# BENCH_metaoutage.json — flash-crowd completion healthy vs with half
# the metadata providers and a compute rack down, with the failover,
# re-replication and failed-descent counts — and the differential-sync
# family into BENCH_export.json — average delta vs full-image bytes
# shipped per sync round, with the reduction factor (gated at 5x) and
# the shipped/deduplicated chunk counts.
#
# Usage: scripts/bench.sh [output-file] [json-file] [multisnap-json-file] [metaoutage-json-file] [export-json-file]
set -eu

out="${1:-bench.txt}"
json="${2:-BENCH_flashcrowd.json}"
msjson="${3:-BENCH_multisnapshot.json}"
mojson="${4:-BENCH_metaoutage.json}"
exjson="${5:-BENCH_export.json}"

go test -run '^$' \
  -bench 'BenchmarkFig4PaperScale|BenchmarkFlashCrowd256|BenchmarkFlashCrowdDegraded|BenchmarkFlashCrowdCrossZone|BenchmarkFlashCrowdMetaOutage|BenchmarkMultisnapshot1024|BenchmarkChurn|BenchmarkExportImport|BenchmarkCommitDataStructures|BenchmarkMetadataHotPath|BenchmarkMetadataColdDescent' \
  -benchmem -count=1 -cpu 1,8 -timeout 30m . | tee "$out"

go run ./cmd/benchjson -in "$out" -family flashcrowd -out "$json"
go run ./cmd/benchjson -in "$out" -family multisnapshot -out "$msjson"
go run ./cmd/benchjson -in "$out" -family metaoutage -out "$mojson"
go run ./cmd/benchjson -in "$out" -family export -out "$exjson"
