#!/usr/bin/env sh
# bench.sh runs the repository's key benchmarks — the paper-scale
# figure regenerations plus the metadata hot-path microbenchmarks —
# with allocation reporting, and writes the raw output to bench.txt
# (the artifact CI uploads, and the input `benchstat old.txt new.txt`
# compares across commits). It then distills the families via
# cmd/benchjson for dashboards that don't want to parse Go benchmark
# output: the flash-crowd family (flash, degraded, crosszone) into
# BENCH_flashcrowd.json — provider reads, cross-zone bytes (flat vs
# topology-aware, with the reduction factor) and ns/op — and the
# multisnapshot write path into BENCH_multisnapshot.json — provider
# write RPCs per commit round, unbatched vs batched, with the
# reduction factor and ns/op — and the metadata-outage family into
# BENCH_metaoutage.json — flash-crowd completion healthy vs with half
# the metadata providers and a compute rack down, with the failover,
# re-replication and failed-descent counts — and the differential-sync
# family into BENCH_export.json — average delta vs full-image bytes
# shipped per sync round, with the reduction factor (gated at 5x) and
# the shipped/deduplicated chunk counts — and the scale sweep into
# BENCH_scale.json — instances vs ns/op and allocs/op across
# 256/1k/10k, the curve that shows the simulator itself scales.
#
# BENCH_SHORT=1 adds -short to the run: BenchmarkFlashCrowd10k skips
# itself, so CI charts the quick scale points (256/1k) while a local
# run produces the full sweep including the 10k point.
#
# Usage: scripts/bench.sh [output-file] [json-file] [multisnap-json-file] [metaoutage-json-file] [export-json-file] [scale-json-file]
set -eu

out="${1:-bench.txt}"
json="${2:-BENCH_flashcrowd.json}"
msjson="${3:-BENCH_multisnapshot.json}"
mojson="${4:-BENCH_metaoutage.json}"
exjson="${5:-BENCH_export.json}"
scjson="${6:-BENCH_scale.json}"

go test -run '^$' \
  -bench 'BenchmarkFig4PaperScale|BenchmarkFlashCrowd256|BenchmarkFlashCrowdDegraded|BenchmarkFlashCrowdCrossZone|BenchmarkFlashCrowdMetaOutage|BenchmarkFlashCrowdScale|BenchmarkMultisnapshot1024|BenchmarkChurn|BenchmarkExportImport|BenchmarkCommitDataStructures|BenchmarkMetadataHotPath|BenchmarkMetadataColdDescent' \
  -benchmem -count=1 -cpu 1,8 -timeout 30m . | tee "$out"

# The 10k point runs in its own invocation, once and at -cpu 1: the
# simulation is deterministic, so the -cpu 8 rerun of the main sweep
# adds nothing here and would double a ~20-minute benchmark.
# BENCH_SHORT=1 (CI) skips it; the scale trajectory then carries the
# quick points only.
if [ "${BENCH_SHORT:-0}" != "1" ]; then
  go test -run '^$' -bench 'BenchmarkFlashCrowd10k' \
    -benchmem -count=1 -cpu 1 -timeout 120m . | tee -a "$out"
fi

go run ./cmd/benchjson -in "$out" -family flashcrowd -out "$json"
go run ./cmd/benchjson -in "$out" -family multisnapshot -out "$msjson"
go run ./cmd/benchjson -in "$out" -family metaoutage -out "$mojson"
go run ./cmd/benchjson -in "$out" -family export -out "$exjson"
go run ./cmd/benchjson -in "$out" -family scale -out "$scjson"
