# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check` locally means a
# green pipeline.

.PHONY: build test race check fmt vet bench fuzz

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	gofmt -l .

vet:
	go vet ./...

check: vet build race

# bench records the perf trajectory: paper-scale figure regenerations
# plus the metadata hot-path microbenchmarks, with -cpu 1,8 so lock
# contention regressions show up. Output lands in bench.txt; compare
# two runs with `benchstat old.txt new.txt`.
bench:
	sh scripts/bench.sh

fuzz:
	go test -run '^$$' -fuzz FuzzBuildVersion -fuzztime 20s ./internal/blob
	go test -run '^$$' -fuzz FuzzCollectLeaves -fuzztime 20s ./internal/blob
